package rendezvous

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/prog"
)

// TestSimulateBatchDeterminism asserts the public batch API's
// guarantee: parallel results are identical to the serial ones, job by
// job, field by field.
func TestSimulateBatchDeterminism(t *testing.T) {
	ins := []Instance{
		{R: 0.8, X: 1.2, Y: 0.5, Phi: 1.0, Tau: 1, V: 1, T: 0.5, Chi: 1},
		{R: 0.7, X: 1.0, Y: 0.4, Phi: 2.0, Tau: 1, V: 1.5, T: 1, Chi: 1},
		{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1},
		{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0.2, Chi: 1}, // infeasible: capped run
	}
	serial := DefaultSettings()
	serial.MaxSegments = 500_000
	serial.Parallelism = 1
	parallel := serial
	parallel.Parallelism = 8

	alg := AlmostUniversalRV()
	sres := SimulateBatch(ins, alg, serial)
	pres := SimulateBatch(ins, alg, parallel)
	if !reflect.DeepEqual(sres, pres) {
		t.Errorf("batch results depend on Parallelism:\nserial:   %v\nparallel: %v", sres, pres)
	}
	// And both match one-at-a-time Simulate.
	for i, in := range ins {
		if one := Simulate(in, alg, serial); !reflect.DeepEqual(one, sres[i]) {
			t.Errorf("job %d batch result differs from Simulate: %v vs %v", i, sres[i], one)
		}
	}
}

func TestQuickstartFlow(t *testing.T) {
	in := Instance{R: 0.8, X: 1.2, Y: 0.5, Phi: 1.0, Tau: 1, V: 1, T: 0.5, Chi: 1}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Simulate(in, AlmostUniversalRV(), DefaultSettings())
	if !res.Met {
		t.Fatalf("quickstart instance did not meet: %v", res)
	}
}

func TestAlgorithmNames(t *testing.T) {
	if AlmostUniversalRV().Name != "AlmostUniversalRV(compact)" {
		t.Errorf("name = %q", AlmostUniversalRV().Name)
	}
	if CGKK().Name != "CGKK" || Latecomers().Name != "Latecomers" {
		t.Error("substrate names")
	}
	if AlmostUniversalRVWith(FaithfulSchedule()).Name != "AlmostUniversalRV(faithful)" {
		t.Error("faithful name")
	}
}

func TestDedicatedFacade(t *testing.T) {
	in := Instance{R: 0.5, X: 2, Y: 1, Phi: 0.8, Tau: 1, V: 1, Chi: -1}
	in.T = in.ProjGap() - in.R
	alg, ok := Dedicated(in)
	if !ok {
		t.Fatal("dedicated rejected boundary instance")
	}
	res := Simulate(in, alg, DefaultSettings())
	if !res.Met {
		t.Fatalf("dedicated failed: %v", res)
	}
	// Infeasible instances have no dedicated algorithm.
	bad := Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	if _, ok := Dedicated(bad); ok {
		t.Error("dedicated accepted infeasible instance")
	}
}

func TestPredictPhaseFacade(t *testing.T) {
	in := Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1}
	p, ok := PredictPhase(in, CompactSchedule())
	if !ok || p.Phase < 1 {
		t.Fatalf("prediction: %+v, %v", p, ok)
	}
	res := Simulate(in, AlmostUniversalRV(), DefaultSettings())
	if !res.Met || res.MeetTime.Float64() > p.TimeBound {
		t.Fatalf("met=%v at %v vs bound %v", res.Met, res.MeetTime.Float64(), p.TimeBound)
	}
}

// Section 5 extension through the facade: distinct radii, staged stop.
func TestSimulateRadii(t *testing.T) {
	in := Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1}
	res := SimulateRadii(in, AlmostUniversalRV(), 1.5, 0.5, DefaultSettings())
	if !res.Met {
		t.Fatalf("distinct radii: %v", res)
	}
	// Rendezvous is at the smaller radius.
	if gap := res.EndA.Dist(res.EndB); gap > 0.5*(1+1e-6) {
		t.Errorf("meeting gap %v above smaller radius", gap)
	}
}

func TestFaithfulScheduleSmallPhase(t *testing.T) {
	// An instance meeting in phase 1 works even under the faithful
	// schedule (the 2^15 wait of phase 1 is harmless).
	in := Instance{R: 0.8, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: 1}
	res := Simulate(in, AlmostUniversalRVWith(FaithfulSchedule()), DefaultSettings())
	if !res.Met {
		t.Fatalf("faithful schedule phase-1 instance did not meet: %v", res)
	}
}

func TestMeetGapNeverExceedsR(t *testing.T) {
	in := Instance{R: 0.7, X: 1.0, Y: 0.4, Phi: 2.0, Tau: 1, V: 1.5, T: 1, Chi: 1}
	res := Simulate(in, AlmostUniversalRV(), DefaultSettings())
	if !res.Met {
		t.Fatalf("no meet: %v", res)
	}
	if gap := res.EndA.Dist(res.EndB); gap > in.R*(1+1e-6) {
		t.Errorf("meeting gap %v exceeds r %v", gap, in.R)
	}
	if math.IsNaN(res.MinGap) || res.MinGap > in.R*(1+1e-6) {
		t.Errorf("min gap %v", res.MinGap)
	}
}

// TestSimulateBatchMemoizesDuplicates: a batch that revisits the same
// instance returns identical results in every slot, byte-identical to
// the serial one-at-a-time loop (the memoized duplicates share the
// first occurrence's pure result).
func TestSimulateBatchMemoizesDuplicates(t *testing.T) {
	base := Instance{R: 0.8, X: 1.2, Y: 0.5, Phi: 1.0, Tau: 1, V: 1, T: 0.5, Chi: 1}
	other := Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1}
	ins := []Instance{base, other, base, base, other}
	set := DefaultSettings()
	set.MaxSegments = 500_000
	set.Parallelism = 4

	alg := AlmostUniversalRV()
	res := SimulateBatch(ins, alg, set)
	for i, in := range ins {
		if one := Simulate(in, alg, set); !reflect.DeepEqual(one, res[i]) {
			t.Errorf("slot %d differs from direct Simulate", i)
		}
	}
	if !reflect.DeepEqual(res[0], res[2]) || !reflect.DeepEqual(res[0], res[3]) {
		t.Errorf("duplicate slots differ")
	}
}

// TestNoBatchMemoizeRunsEveryJob: algorithms with per-job observers can
// opt out of memoization so duplicates execute (and their observers
// fire) individually.
func TestNoBatchMemoizeRunsEveryJob(t *testing.T) {
	in := Instance{R: 0.8, X: 1.2, Y: 0.5, Phi: 1.0, Tau: 1, V: 1, T: 0.5, Chi: 1}
	set := DefaultSettings()
	set.MaxSegments = 500_000
	set.Parallelism = 2

	run := func(s Settings) []*core.Progress {
		var pgs []*core.Progress
		alg := Algorithm{
			Name: "observed",
			Program: func(Instance) prog.Program {
				pg := new(core.Progress)
				pgs = append(pgs, pg)
				return core.Program(core.Compact(), pg)
			},
		}
		SimulateBatch([]Instance{in, in}, alg, s)
		return pgs
	}

	memo := run(set)
	if memo[0].Phase == 0 || memo[1].Phase == 0 {
		t.Fatalf("first occurrence's observers did not fire: %+v %+v", memo[0], memo[1])
	}
	if memo[2].Phase != 0 || memo[3].Phase != 0 {
		t.Fatalf("memoized duplicate executed: %+v %+v", memo[2], memo[3])
	}

	set.NoBatchMemoize = true
	all := run(set)
	for i, pg := range all {
		if pg.Phase == 0 {
			t.Fatalf("NoBatchMemoize: observer %d did not fire: %+v", i, pg)
		}
	}
}
