package rendezvous

// BatchJobsForTest exposes the internal job builder to the differential
// tests, which need raw batch.Job lists (with keys and wire forms) to
// drive the batch and dist engines directly and compare their Stats.
var BatchJobsForTest = batchJobs
