package rendezvous_test

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/batch"
	"repro/internal/dist"
	"repro/internal/inst"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/rendezvous"
)

// TestMain lets this test binary serve as its own worker fleet: the
// coordinator's default WorkerCmd re-executes the current executable
// with the worker marker set, and MaybeServeStdio diverts that copy
// into the worker loop before any test runs.
func TestMain(m *testing.M) {
	dist.MaybeServeStdio()
	os.Exit(m.Run())
}

// TestWireNamesRegistered pins the correspondence between the Name
// fields this package puts on its Algorithm values and the wire
// registry filled by internal/dist: if they drift apart, batches
// silently lose their wire forms and stop distributing.
func TestWireNamesRegistered(t *testing.T) {
	ins := []rendezvous.Instance{{R: 0.8, X: 1.2, Y: 0.5, Phi: 1.0, Tau: 1, V: 1, T: 0.5, Chi: 1}}
	for _, alg := range []rendezvous.Algorithm{
		rendezvous.AlmostUniversalRV(),
		rendezvous.AlmostUniversalRVWith(rendezvous.FaithfulSchedule()),
		rendezvous.CGKK(),
		rendezvous.Latecomers(),
	} {
		if !wire.Registered(alg.Name) {
			t.Errorf("algorithm %q has no wire registration: its jobs cannot distribute", alg.Name)
		}
		jobs := rendezvous.BatchJobsForTest(ins, alg, rendezvous.DefaultSettings())
		if jobs[0].Wire == nil {
			t.Errorf("algorithm %q produced no wire form: its jobs cannot distribute", alg.Name)
		}
	}
}

// TestTweakedScheduleDoesNotDistribute is the spoof-protection
// regression: a caller-modified schedule keeps its standard Name, but
// its program no longer matches what workers would rebuild from the
// registry — such an algorithm must produce NO wire form (and so run
// in-process) rather than silently distribute the wrong program.
func TestTweakedScheduleDoesNotDistribute(t *testing.T) {
	s := rendezvous.CompactSchedule()
	s.Type3WaitExp = func(i int) float64 { return 7 * float64(i) } // custom, Name still "compact"
	alg := rendezvous.AlmostUniversalRVWith(s)
	if alg.Name != "AlmostUniversalRV(compact)" {
		t.Fatalf("precondition: tweaked schedule changed the name to %q", alg.Name)
	}
	ins := []rendezvous.Instance{{R: 0.8, X: 1.2, Y: 0.5, Phi: 1.0, Tau: 1, V: 1, T: 0.5, Chi: 1}}
	jobs := rendezvous.BatchJobsForTest(ins, alg, rendezvous.DefaultSettings())
	if jobs[0].Wire != nil {
		t.Fatal("tweaked schedule got a wire form: workers would run a different program under the same name")
	}
	// A hand-built Algorithm borrowing a registered name must not
	// distribute either.
	handmade := rendezvous.Algorithm{Name: "CGKK", Program: alg.Program}
	jobs = rendezvous.BatchJobsForTest(ins, handmade, rendezvous.DefaultSettings())
	if jobs[0].Wire != nil {
		t.Fatal("hand-built Algorithm with a registered name got a wire form")
	}
}

// distInstances draws the T2-style workload: all four instance types,
// plus duplicates so the memoization path is exercised across the
// process boundary.
func distInstances(t *testing.T) []rendezvous.Instance {
	t.Helper()
	g := inst.NewGen(11)
	var ins []rendezvous.Instance
	for _, c := range []inst.Class{
		inst.ClassMirrorInterior, inst.ClassLatecomer,
		inst.ClassClockDrift, inst.ClassRotatedDelayed,
	} {
		ins = append(ins, g.DrawN(c, 3)...)
	}
	// Duplicates: the last two instances again, out of order.
	ins = append(ins, ins[1], ins[7])
	return ins
}

func distSettings() rendezvous.Settings {
	s := rendezvous.DefaultSettings()
	s.MaxSegments = 120_000_000
	return s
}

// encodeAll renders a result slice through the canonical codec — the
// byte-identity witness for comparing engines.
func encodeAll(t *testing.T, res []sim.Result) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, r := range res {
		b.Write(wire.EncodeResult(r))
	}
	return b.Bytes()
}

// TestDistMatchesInProcess is the cross-process determinism
// differential: the same T2 batch run (a) in-process serially, (b)
// in-process on 4 workers, and (c) distributed over 2 local worker
// subprocesses must produce byte-identical result slices and identical
// memoization accounting.
func TestDistMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	ins := distInstances(t)
	set := distSettings()
	alg := rendezvous.AlmostUniversalRV()

	mkJobs := func() []batch.Job { return rendezvous.BatchJobsForTest(ins, alg, set) }

	serialRes, serialStats := batch.Run(mkJobs(), 1)
	parallelRes, parallelStats := batch.Run(mkJobs(), 4)
	distRes, distStats, err := dist.Run(mkJobs(), 1, dist.Config{Procs: 2})
	if err != nil {
		t.Fatalf("distributed run failed: %v", err)
	}

	serialBytes := encodeAll(t, serialRes)
	if got := encodeAll(t, parallelRes); !bytes.Equal(got, serialBytes) {
		t.Error("in-process parallel results differ from serial")
	}
	if got := encodeAll(t, distRes); !bytes.Equal(got, serialBytes) {
		t.Error("distributed results differ from in-process serial")
	}
	if serialStats.Executed != len(ins)-2 {
		t.Errorf("serial Executed = %d, want %d (memoization)", serialStats.Executed, len(ins)-2)
	}
	if parallelStats.Executed != serialStats.Executed || distStats.Executed != serialStats.Executed {
		t.Errorf("Executed disagrees: serial %d, parallel %d, dist %d",
			serialStats.Executed, parallelStats.Executed, distStats.Executed)
	}
	for _, r := range distRes {
		if !r.Met {
			t.Fatalf("distributed job did not meet: %v", r)
		}
	}
}

// TestSimulateBatchDistributed exercises the public surface: the
// Settings.WorkerProcs knob must hand back exactly the slice the
// in-process path produces.
func TestSimulateBatchDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	ins := distInstances(t)
	alg := rendezvous.AlmostUniversalRV()

	local := rendezvous.SimulateBatch(ins, alg, distSettings())
	dset := distSettings()
	dset.WorkerProcs = 2
	distributed := rendezvous.SimulateBatch(ins, alg, dset)

	if !bytes.Equal(encodeAll(t, local), encodeAll(t, distributed)) {
		t.Fatal("SimulateBatch with WorkerProcs=2 differs from in-process")
	}
}

// TestSimulateBatchStreamOrder checks the public streaming API delivers
// the full batch in input order, byte-identical to the slice API.
func TestSimulateBatchStreamOrder(t *testing.T) {
	ins := distInstances(t)
	set := distSettings()
	set.Parallelism = 4
	alg := rendezvous.AlmostUniversalRV()

	want := rendezvous.SimulateBatch(ins, alg, set)
	var got []sim.Result
	for r := range rendezvous.SimulateBatchStream(ins, alg, set) {
		got = append(got, r)
	}
	if len(got) != len(want) {
		t.Fatalf("stream delivered %d results, want %d", len(got), len(want))
	}
	if !bytes.Equal(encodeAll(t, got), encodeAll(t, want)) {
		t.Fatal("streamed results differ from batch results")
	}
}

// TestFleetSessionMatchesOneShot exercises the public session API:
// DialFleet once, several SimulateBatch and SimulateBatchStream calls
// over it, Close once — every call byte-identical to the package-level
// entry points (the determinism guarantee, session reuse included).
func TestFleetSessionMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	ins := distInstances(t)
	alg := rendezvous.AlmostUniversalRV()
	set := distSettings()
	want := rendezvous.SimulateBatch(ins, alg, set)

	dset := distSettings()
	dset.WorkerProcs = 2
	f, err := rendezvous.DialFleet(dset)
	if err != nil {
		t.Fatalf("DialFleet failed: %v", err)
	}
	defer f.Close()
	for k := 0; k < 2; k++ {
		got := f.SimulateBatch(ins, alg, set)
		if !bytes.Equal(encodeAll(t, got), encodeAll(t, want)) {
			t.Fatalf("fleet batch %d differs from one-shot SimulateBatch", k)
		}
	}
	var streamed []sim.Result
	for r := range f.SimulateBatchStream(ins, alg, set) {
		streamed = append(streamed, r)
	}
	if !bytes.Equal(encodeAll(t, streamed), encodeAll(t, want)) {
		t.Fatal("fleet stream differs from one-shot SimulateBatch")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close failed: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close failed: %v", err)
	}
}

// TestDialFleetRejectsBadSettings: no fleet named, or a malformed
// host:port*pool hint, must error at dial time — not silently degrade.
func TestDialFleetRejectsBadSettings(t *testing.T) {
	if _, err := rendezvous.DialFleet(rendezvous.DefaultSettings()); err == nil {
		t.Error("DialFleet with no fleet settings did not error")
	}
	bad := rendezvous.DefaultSettings()
	bad.Hosts = "127.0.0.1:9101*zero"
	if _, err := rendezvous.DialFleet(bad); err == nil {
		t.Error("DialFleet with a malformed pool hint did not error")
	}
}

// TestMalformedHostsFallsBackInProcess: the batch entry points degrade
// a malformed Hosts string to an in-process run (with a warning),
// byte-identically — the same policy as an unreachable fleet.
func TestMalformedHostsFallsBackInProcess(t *testing.T) {
	ins := distInstances(t)[:4]
	alg := rendezvous.AlmostUniversalRV()

	want := rendezvous.SimulateBatch(ins, alg, distSettings())
	bad := distSettings()
	bad.Hosts = "127.0.0.1:1*oops"
	got := rendezvous.SimulateBatch(ins, alg, bad)
	if !bytes.Equal(encodeAll(t, want), encodeAll(t, got)) {
		t.Fatal("malformed-hosts fallback differs from in-process")
	}
}

// TestDistFallback points the fleet at a port nobody listens on: the
// batch must still complete in-process with identical output.
func TestDistFallback(t *testing.T) {
	ins := distInstances(t)[:4]
	alg := rendezvous.AlmostUniversalRV()

	want := rendezvous.SimulateBatch(ins, alg, distSettings())
	bad := distSettings()
	bad.Hosts = "127.0.0.1:1" // reserved port: connection refused
	got := rendezvous.SimulateBatch(ins, alg, bad)
	if !bytes.Equal(encodeAll(t, want), encodeAll(t, got)) {
		t.Fatal("fallback results differ from in-process")
	}
}
