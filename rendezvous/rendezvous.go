// Package rendezvous is the public API of the reproduction of
// "Almost Universal Anonymous Rendezvous in the Plane" (Bouchard,
// Dieudonné, Pelc, Petit — SPAA 2020).
//
// It exposes the instance model, the algorithms (the paper's
// AlmostUniversalRV, the CGKK and Latecomers substrates, and the
// dedicated boundary algorithms), and an exact event-driven simulator
// that decides whether two agents executing an algorithm ever come
// within sight radius r of each other.
//
// Quick start:
//
//	in := rendezvous.Instance{R: 0.8, X: 1.2, Y: 0.5, Phi: 1.0,
//	    Tau: 1, V: 1, T: 0.5, Chi: 1}
//	res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(),
//	    rendezvous.DefaultSettings())
//	fmt.Println(res.Met, res.MeetTime.Float64())
//
// # Batch execution
//
// SimulateBatch runs many instances at once on a worker pool sized by
// Settings.Parallelism (0 selects GOMAXPROCS). The batch engine is
// deterministic by construction: every job is an independent pure
// simulation, results are written by input index, and aggregates are
// folded serially afterwards — so the result slice is byte-identical
// to calling Simulate in a loop, for every worker count. Use it
// whenever throughput matters (experiment tables, parameter sweeps,
// benchmark fleets); use Simulate when one answer does.
//
// Batches also distribute across processes and hosts
// (Settings.WorkerProcs spawns local worker subprocesses,
// Settings.Hosts names a TCP fleet of cmd/rvworker processes) and
// stream (SimulateBatchStream delivers results in input order as the
// completed prefix grows) — in every case byte-identical to the
// in-process serial run; see DESIGN.md §6. Distributed dispatch is
// pipelined: each worker connection keeps a window of jobs in flight
// (fixed at Settings.Window, or adaptive from observed latency up to
// Settings.MaxWindow — hiding network latency either way) and each
// worker process runs its own Settings.Parallelism-sized pool (or the
// per-host pool a "host:port*pool" entry in Settings.Hosts hints), so
// one worker saturates one host; lost workers are re-dialed or
// respawned mid-run (DESIGN.md §7). The dispatch engine carries a full
// failure model (DESIGN.md §10): workers that hang without closing
// their connection are detected by liveness pings and a stall deadline
// (Settings.StallTimeout), jobs that repeatedly kill the workers they
// land on are quarantined as per-job errors (Settings.MaxJobRequeues),
// and when the whole fleet is lost the batch entry points degrade to
// in-process execution — byte-identical by the same determinism
// guarantee. Callers that run many batches
// should hold the fleet open across them: DialFleet dials the session
// once, Fleet.SimulateBatch reuses it per call (DESIGN.md §8).
package rendezvous

import (
	"errors"
	"log/slog"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/cgkk"
	"repro/internal/core"
	"repro/internal/dedicated"
	"repro/internal/dist"
	"repro/internal/inst"
	"repro/internal/latecomers"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Instance is the rendezvous instance tuple (r, x, y, φ, τ, v, t, χ) of
// §1.2 of the paper: agent B's private attributes relative to agent A.
type Instance = inst.Instance

// Type is the four-way instance categorization of §3.1.1.
type Type = inst.Type

// Result is the outcome of a simulation run.
type Result = sim.Result

// Settings bound a simulation run.
type Settings = sim.Settings

// Schedule collects the tunable constants of Algorithm 1.
type Schedule = core.Schedule

// DefaultSettings returns permissive simulation bounds.
func DefaultSettings() Settings { return sim.DefaultSettings() }

// CompactSchedule is the simulable schedule (see DESIGN.md §3).
func CompactSchedule() Schedule { return core.Compact() }

// FaithfulSchedule reproduces the paper's printed constants.
func FaithfulSchedule() Schedule { return core.Faithful() }

// Algorithm is a deterministic anonymous rendezvous algorithm: both
// agents execute Program(in), each in its own private frame. Universal
// algorithms ignore the instance; dedicated algorithms may use it (the
// agents still do not know which of them is which).
type Algorithm struct {
	Name    string
	Program func(in Instance) prog.Program
	// wireName is the algorithm's identity in the wire registry, set
	// only by this package's constructors when Program provably matches
	// the registered constructor — the Name field alone is not enough
	// (a caller can hand AlmostUniversalRVWith a tweaked schedule whose
	// Name still reads "compact"). Algorithms without a wireName simply
	// run in-process; they are never shipped to workers under a name
	// that might mean something else there.
	wireName string
}

// AlmostUniversalRV returns the paper's Algorithm 1 under the compact
// schedule.
func AlmostUniversalRV() Algorithm { return AlmostUniversalRVWith(core.Compact()) }

// AlmostUniversalRVWith returns Algorithm 1 under an explicit schedule.
// Only a schedule still exactly as a standard constructor built it
// (Schedule.Canonical) gets a wire identity: a tweaked schedule keeps
// working in-process but is never shipped to workers under a name that
// would rebuild the untweaked program there.
func AlmostUniversalRVWith(s Schedule) Algorithm {
	alg := Algorithm{
		Name:    "AlmostUniversalRV(" + s.Name + ")",
		Program: func(Instance) prog.Program { return core.Program(s, nil) },
	}
	if s.Canonical() {
		alg.wireName = alg.Name
	}
	return alg
}

// CGKK returns the substrate procedure with the contract of [18]:
// rendezvous for t = 0 instances that are non-synchronous or have
// φ ≠ 0 ∧ χ = 1.
func CGKK() Algorithm {
	return Algorithm{
		Name:     "CGKK",
		Program:  func(Instance) prog.Program { return cgkk.Program(cgkk.Compact()) },
		wireName: "CGKK",
	}
}

// Latecomers returns the substrate procedure with the contract of [38]:
// rendezvous for synchronous, same-frame instances with t > d − r.
func Latecomers() Algorithm {
	return Algorithm{
		Name:     "Latecomers",
		Program:  func(Instance) prog.Program { return latecomers.Program() },
		wireName: "Latecomers",
	}
}

// Dedicated returns a per-instance algorithm witnessing Theorem 3.1
// feasibility, including the S1/S2 boundary algorithms; ok is false for
// infeasible instances.
func Dedicated(in Instance) (Algorithm, bool) {
	p, ok := dedicated.ForInstance(in, core.Compact())
	if !ok {
		return Algorithm{}, false
	}
	return Algorithm{
		Name:    "Dedicated",
		Program: func(Instance) prog.Program { return p },
	}, true
}

// Simulate runs the two agents of the instance under the algorithm.
func Simulate(in Instance, alg Algorithm, s Settings) Result {
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: alg.Program(in), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: alg.Program(in), Radius: in.R}
	return sim.Run(a, b, s)
}

// Compile-time guards on memo-key comparability. The batch memo key is
// the bare Instance (see batchJobs); wire.Job values (Instance +
// algorithm name + Settings) are used as map keys by callers memoizing
// across dispatches. Adding a non-comparable field (a callback, a
// slice) to either struct would turn those uses into runtime "hash of
// unhashable type" panics; these lines move that failure to build time.
var (
	_ = map[Instance]struct{}{}
	_ = map[Settings]struct{}{}
)

// batchJobs builds the batch job list for a SimulateBatch-style call:
// per-instance agent specs, the memoization key (unless disabled), and
// — when the algorithm carries a wire identity that is registered — the
// serializable wire form that lets the job execute in a worker process.
func batchJobs(ins []Instance, alg Algorithm, s Settings) []batch.Job {
	registered := alg.wireName != "" && wire.Registered(alg.wireName)
	jobs := make([]batch.Job, len(ins))
	for i, in := range ins {
		jobs[i] = batch.Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: alg.Program(in), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: alg.Program(in), Radius: in.R},
			Settings: s,
		}
		if !s.NoBatchMemoize {
			// The algorithm and settings are constants of this call, and
			// memo keys never outlive one batch run (Dedup's map is local
			// to it), so the Instance alone fully identifies the
			// simulation input. Keying on the bare Instance keeps the
			// dedup map hashing a small scalar struct; the old composite
			// key re-hashed the full Settings — Hosts and WorkerCmd
			// strings included — for every job in the batch.
			jobs[i].Key = in
		}
		if registered {
			jobs[i].Wire = &wire.Job{In: in, Alg: alg.wireName, Set: s}
		}
	}
	return jobs
}

// distConfig translates the distribution knobs of Settings into a
// worker-fleet config; ok is false when the settings request none. A
// malformed Hosts entry (a bad host:port*pool hint) is an error — the
// batch entry points warn and run in-process, DialFleet propagates it.
func distConfig(s Settings) (dist.Config, bool, error) {
	if s.Hosts == "" && s.WorkerProcs <= 0 {
		return dist.Config{}, false, nil
	}
	hosts, err := dist.ParseHosts(s.Hosts)
	if err != nil {
		return dist.Config{}, false, err
	}
	cfg := dist.Config{
		Procs:          s.WorkerProcs,
		Hosts:          hosts,
		Window:         s.Window,
		MaxWindow:      s.MaxWindow,
		StallTimeout:   s.StallTimeout,
		MaxJobRequeues: s.MaxJobRequeues,
		Compress:       s.Compress,
	}
	if s.WorkerCmd != "" {
		cfg.Cmd = strings.Fields(s.WorkerCmd)
	}
	return cfg, cfg.Enabled(), nil
}

// batchConfig is distConfig with the batch entry points' degradation
// policy applied to parse errors: warn and run in-process (the same
// policy an unreachable fleet gets).
func batchConfig(s Settings) dist.Config {
	cfg, _, err := distConfig(s)
	if err != nil {
		mSettingsFallbacks.Inc()
		slog.Warn("rendezvous: malformed distribution settings; running in-process",
			"err", err, "hosts", s.Hosts)
		return dist.Config{}
	}
	return cfg
}

// SimulateBatch runs every instance under the algorithm on a pool of
// s.Parallelism workers (0 or negative selects GOMAXPROCS) and returns
// the results in input order. When s.Hosts or s.WorkerProcs request a
// worker fleet, execution is distributed across those worker processes
// instead (see internal/dist and cmd/rvworker); if the fleet cannot be
// reached or fails mid-run the batch transparently falls back to
// in-process execution, which purity makes invisible in the output (a
// warning lands on stderr).
//
// Determinism guarantee: the returned slice is byte-identical to
// calling Simulate(ins[i], alg, s) serially for each i, regardless of
// worker count, process count, or host fleet — scheduling changes
// wall-clock time and nothing else.
//
// Duplicate instances are memoized: within one call, each distinct
// instance is simulated once and its result shared (simulation is a
// pure function of the instance, the algorithm, and the settings, so
// sharing is invisible in the output — sweeps that revisit parameter
// points simply finish sooner). Memoized duplicates never execute, so
// an Algorithm whose Program factory wires per-job observers (e.g. a
// core.Progress per job) would see them fire only for the first
// occurrence — set Settings.NoBatchMemoize to run every job.
func SimulateBatch(ins []Instance, alg Algorithm, s Settings) []Result {
	start := batchStart()
	res, _ := dist.RunOrFallback(batchJobs(ins, alg, s), s.Parallelism, batchConfig(s))
	recordBatch(len(ins), start)
	return res
}

// SimulateBatchStream is SimulateBatch with ordered streaming delivery:
// the returned channel yields the results in input order — result i is
// sent as soon as jobs 0..i have all completed — and is closed after
// the last one. The sequence of delivered results is byte-identical to
// SimulateBatch's slice; streaming only changes when a consumer gets to
// see each entry, which lets sweeps emit their first rows while the
// slow tail of the batch is still running. The channel is buffered to
// len(ins), so an abandoned stream leaks nothing.
//
// Distribution (s.Hosts / s.WorkerProcs) applies as in SimulateBatch;
// a mid-run fleet failure falls back to in-process execution for the
// undelivered suffix, seamlessly — determinism makes the splice exact.
func SimulateBatchStream(ins []Instance, alg Algorithm, s Settings) <-chan Result {
	mBatches.Inc()
	mSims.Add(uint64(len(ins)))
	return dist.StreamOrFallback(batchJobs(ins, alg, s), s.Parallelism, batchConfig(s))
}

// Fleet is a persistent worker session for batch simulation: dial the
// fleet a Settings value names once (DialFleet), run any number of
// SimulateBatch / SimulateBatchStream calls over the open connections,
// and Close once — one dial and one protocol handshake per host for
// the whole session instead of one per batch. The session is
// multi-tenant: concurrent calls from different goroutines share the
// workers through one scheduler, each call keeping its own result
// space (DESIGN.md §13). Session reuse, tenancy, and live membership
// (AddHost / Retire / WatchHosts) are all pure scheduling: every batch
// remains byte-identical to the in-process serial run, exactly as for
// the one-shot entry points.
type Fleet struct {
	f *dist.Fleet
}

// DialFleet assembles the worker fleet the settings name (Hosts — with
// optional host:port*pool hints — and/or WorkerProcs) and returns the
// open session. It fails when the settings name no fleet, a Hosts
// entry is malformed, or no worker is reachable.
func DialFleet(s Settings) (*Fleet, error) {
	cfg, ok, err := distConfig(s)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errors.New("rendezvous: settings name no worker fleet (set Hosts or WorkerProcs)")
	}
	df, err := dist.Dial(cfg)
	if err != nil {
		return nil, err
	}
	return &Fleet{f: df}, nil
}

// SimulateBatch is the package-level SimulateBatch over the session's
// fleet: identical results (the determinism guarantee), amortized
// connection setup. The distribution knobs of s (Hosts, WorkerProcs,
// Window, …) are ignored here — the session fixed them at dial time.
func (f *Fleet) SimulateBatch(ins []Instance, alg Algorithm, s Settings) []Result {
	start := batchStart()
	res, _ := f.f.RunOrFallback(batchJobs(ins, alg, s), s.Parallelism)
	recordBatch(len(ins), start)
	return res
}

// SimulateBatchStream is the package-level SimulateBatchStream over
// the session's fleet.
func (f *Fleet) SimulateBatchStream(ins []Instance, alg Algorithm, s Settings) <-chan Result {
	mBatches.Inc()
	mSims.Add(uint64(len(ins)))
	return f.f.StreamOrFallback(batchJobs(ins, alg, s), s.Parallelism)
}

// Snapshot reports the session's flight-recorder state: per-slot
// dispatch status (liveness, breaker, adaptive window) with each live
// worker's own counters freshly probed over the wire, plus the
// process-wide metrics registry. Observation only — the probe rides
// the liveness ping machinery and perturbs no batch.
func (f *Fleet) Snapshot() dist.FleetSnapshot { return f.f.Snapshot() }

// AddHost dials one "host:port" (optionally "host:port*pool") TCP
// worker endpoint and adds it to the running session; its connection
// starts serving live batches immediately. Adding an address that
// already has an active slot is an error.
func (f *Fleet) AddHost(addr string) error {
	hosts, err := dist.ParseHosts(addr)
	if err != nil {
		return err
	}
	if len(hosts) != 1 {
		return errors.New("rendezvous: AddHost takes exactly one host address")
	}
	return f.f.AddHost(hosts[0])
}

// Retire drains the worker at addr out of the session: in-flight jobs
// requeue to the remaining workers and the slot leaves service. It
// blocks until the drain completes.
func (f *Fleet) Retire(addr string) error { return f.f.Retire(addr) }

// WatchHosts keeps the session's TCP membership reconciled against a
// hosts file (ParseHosts syntax, newline- or comma-separated, '#'
// comments), polling every interval (0 selects 2s). Call the returned
// stop function before Close.
func (f *Fleet) WatchHosts(path string, interval time.Duration) (stop func(), err error) {
	return f.f.WatchHosts(path, interval)
}

// Close ends the session, closing every worker connection. Any still-
// running batches are stranded with an error (their OrFallback
// variants then finish in-process). Closing twice is a no-op.
func (f *Fleet) Close() error { return f.f.Close() }

// SimulateRadii runs the Section 5 extension with distinct sight radii.
func SimulateRadii(in Instance, alg Algorithm, rA, rB float64, s Settings) Result {
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: alg.Program(in), Radius: rA}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: alg.Program(in), Radius: rB}
	return sim.Run(a, b, s)
}

// PredictPhase derives the phase of Algorithm 1 by whose end rendezvous
// is guaranteed for the instance (Lemmas 3.2–3.5 instantiated with this
// implementation's block durations).
func PredictPhase(in Instance, s Schedule) (core.Prediction, bool) {
	return core.PredictPhase(in, s)
}
