// The public surface's flight-recorder instruments (internal/obs):
// simulation throughput at the API boundary, plus the
// degraded-to-in-process events an operator most wants to see.
// Observation only — recording is gated, allocation-free, and never
// touches the batch inputs, so the byte-identity guarantee of
// SimulateBatch is untouched (pinned by the differential test in
// internal/dist).

package rendezvous

import (
	"time"

	"repro/internal/obs"
)

var (
	mSims = obs.NewCounter("rv_sims_total",
		"Simulations requested through the batch entry points (memoized duplicates included).")
	mBatches = obs.NewCounter("rv_sim_batches_total",
		"SimulateBatch / SimulateBatchStream calls.")
	mSettingsFallbacks = obs.NewCounter("rv_settings_fallbacks_total",
		"Batch calls that degraded to in-process execution because the distribution settings failed to parse.")
	gSimRate = obs.NewGauge("rv_sims_per_second",
		"Logical simulations per wall-clock second of the most recent SimulateBatch call.")
)

// batchStart opens a throughput measurement: the clock is read only
// when the recorder is enabled, so a metrics-off run performs not one
// extra syscall.
func batchStart() time.Time {
	if !obs.Enabled() {
		return time.Time{}
	}
	return time.Now()
}

// recordBatch closes it: n logical sims over the elapsed wall clock.
func recordBatch(n int, start time.Time) {
	if !obs.Enabled() || start.IsZero() {
		return
	}
	mBatches.Inc()
	mSims.Add(uint64(n))
	if el := time.Since(start).Seconds(); el > 0 {
		gSimRate.Set(float64(n) / el)
	}
}
