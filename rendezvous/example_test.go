package rendezvous_test

import (
	"fmt"

	"repro/rendezvous"
)

// Classify an instance and run the universal algorithm on it.
func Example() {
	in := rendezvous.Instance{
		R: 0.8, X: 1.1, Y: 0.3,
		Phi: 1.2, Tau: 1, V: 1, T: 1.0, Chi: 1,
	}
	fmt.Println("feasible:", in.Feasible())
	fmt.Println("type:    ", in.TypeOf())

	res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(),
		rendezvous.DefaultSettings())
	fmt.Println("met:     ", res.Met)
	// Output:
	// feasible: true
	// type:     type4(cgkk-interleave)
	// met:      true
}

// Boundary instances need their dedicated algorithms.
func ExampleDedicated() {
	in := rendezvous.Instance{R: 0.5, X: 2, Y: 1, Phi: 0.8, Tau: 1, V: 1, Chi: -1}
	in.T = in.ProjGap() - in.R // the S2 boundary exactly

	alg, ok := rendezvous.Dedicated(in)
	if !ok {
		fmt.Println("infeasible")
		return
	}
	res := rendezvous.Simulate(in, alg, rendezvous.DefaultSettings())
	fmt.Printf("met: %v at gap %.2f\n", res.Met, res.EndA.Dist(res.EndB))
	// Output:
	// met: true at gap 0.50
}

// Batch execution fans many instances over a worker pool. Results come
// back in input order and are byte-identical to serial simulation, so
// the worker count is purely a throughput knob.
func ExampleSimulateBatch() {
	ins := []rendezvous.Instance{
		{R: 0.8, X: 1.2, Y: 0.5, Phi: 1.0, Tau: 1, V: 1, T: 0.5, Chi: 1},
		{R: 0.7, X: 1.0, Y: 0.4, Phi: 2.0, Tau: 1, V: 1.5, T: 1, Chi: 1},
		{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1},
	}
	s := rendezvous.DefaultSettings()
	s.Parallelism = 4
	for i, res := range rendezvous.SimulateBatch(ins, rendezvous.AlmostUniversalRV(), s) {
		fmt.Printf("job %d: met=%v\n", i, res.Met)
	}
	// Output:
	// job 0: met=true
	// job 1: met=true
	// job 2: met=true
}

// The phase predictor instantiates the paper's lemmas per instance.
func ExamplePredictPhase() {
	in := rendezvous.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8,
		Tau: 2, V: 0.5, T: 0.5, Chi: 1}
	p, ok := rendezvous.PredictPhase(in, rendezvous.CompactSchedule())
	fmt.Println(ok, p.Type, p.Phase)
	// Output:
	// true type3(clock-drift) 1
}
