package inst

import (
	"math"
	"testing"
)

// Each generator class must produce instances with the advertised
// classification properties.
func TestGeneratorsProduceTheirClass(t *testing.T) {
	g := NewGen(41)
	const n = 200
	checks := map[Class]func(Instance) bool{
		ClassSimultaneousNonSync: func(in Instance) bool {
			return in.T == 0 && !in.Synchronous()
		},
		ClassSimultaneousRotated: func(in Instance) bool {
			return in.T == 0 && in.Synchronous() && in.Chi == 1 && in.Phi != 0
		},
		ClassLatecomer: func(in Instance) bool {
			return in.TypeOf() == Type2
		},
		ClassMirrorInterior: func(in Instance) bool {
			return in.TypeOf() == Type1
		},
		ClassClockDrift: func(in Instance) bool {
			return in.TypeOf() == Type3
		},
		ClassSpeedOnly: func(in Instance) bool {
			return in.Tau == 1 && in.V != 1 && in.TypeOf() != TypeNone
		},
		ClassRotatedDelayed: func(in Instance) bool {
			return in.TypeOf() == Type4 && in.Synchronous() && in.T > 0
		},
		ClassBoundaryS1: func(in Instance) bool {
			return in.InS1() && in.Feasible() && !in.CoveredByAURV()
		},
		ClassBoundaryS2: func(in Instance) bool {
			return in.InS2() && in.Feasible() && !in.CoveredByAURV() && in.T > 0
		},
		ClassInfeasibleShift: func(in Instance) bool {
			return !in.Feasible()
		},
		ClassInfeasibleMirror: func(in Instance) bool {
			return !in.Feasible()
		},
	}
	for c, check := range checks {
		for i, in := range g.DrawN(c, n) {
			if err := in.Validate(); err != nil {
				t.Fatalf("class %v draw %d invalid: %v", c, i, err)
			}
			if in.Trivial() {
				t.Fatalf("class %v draw %d trivial: %v", c, i, in)
			}
			if !check(in) {
				t.Fatalf("class %v draw %d fails class check: %v", c, i, in)
			}
		}
	}
}

func TestClassesEnumeration(t *testing.T) {
	cs := Classes()
	if len(cs) != int(numClasses) {
		t.Fatalf("Classes() returned %d entries", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		s := c.String()
		if s == "unknown" || seen[s] {
			t.Errorf("class %d has bad name %q", c, s)
		}
		seen[s] = true
	}
}

func TestGenDeterministic(t *testing.T) {
	a := NewGen(7).DrawN(ClassLatecomer, 10)
	b := NewGen(7).DrawN(ClassLatecomer, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic for equal seeds")
		}
	}
}

func TestGenMarginsPositive(t *testing.T) {
	g := NewGen(42)
	for _, in := range g.DrawN(ClassLatecomer, 100) {
		if m := in.Margin(); m <= 0 {
			t.Fatalf("latecomer margin %v not positive: %v", m, in)
		}
	}
	for _, in := range g.DrawN(ClassMirrorInterior, 100) {
		if m := in.Margin(); m <= 0 {
			t.Fatalf("mirror margin %v not positive: %v", m, in)
		}
	}
	for _, in := range g.DrawN(ClassBoundaryS2, 100) {
		if m := in.Margin(); math.Abs(m) > 1e-12 {
			t.Fatalf("S2 margin %v not zero: %v", m, in)
		}
	}
}
