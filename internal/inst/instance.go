// Package inst defines the instance model of the rendezvous problem and
// its classification per the paper.
//
// An instance I = (r, x, y, φ, τ, v, t, χ) lists the private attributes
// of agent B relative to agent A (whose attributes are the absolute
// reference). The package implements:
//
//   - the synchronous / non-synchronous split (§2),
//   - the feasibility characterization of Theorem 3.1,
//   - the four instance types of §3.1.1 that drive the four blocks of
//     Algorithm AlmostUniversalRV,
//   - membership in the exception sets S1 and S2 of Section 4,
//   - the canonical line and the projection gap of Definition 2.1.
package inst

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/phys"
)

// Instance is the tuple (r, x, y, φ, τ, v, t, χ) of §1.2.
type Instance struct {
	R   float64 `json:"r"`   // visibility radius, r > 0
	X   float64 `json:"x"`   // B's start x in A's frame
	Y   float64 `json:"y"`   // B's start y in A's frame
	Phi float64 `json:"phi"` // rotation between x-axes, [0, 2π)
	Tau float64 `json:"tau"` // B's clock period in A's units, τ > 0
	V   float64 `json:"v"`   // B's speed in A's units, v > 0
	T   float64 `json:"t"`   // B's wake-up delay, t ≥ 0
	Chi int     `json:"chi"` // chirality agreement: +1 or -1
}

// B0 returns B's start position in the absolute frame.
func (in Instance) B0() geom.Vec2 { return geom.V(in.X, in.Y) }

// Dist returns d = dist((0,0),(x,y)), the initial distance between the
// agents.
func (in Instance) Dist() float64 { return in.B0().Norm() }

// Validate checks the domain constraints of §1.2.
func (in Instance) Validate() error {
	switch {
	case !(in.R > 0):
		return fmt.Errorf("inst: r = %v, need r > 0", in.R)
	case !(in.Tau > 0):
		return fmt.Errorf("inst: τ = %v, need τ > 0", in.Tau)
	case !(in.V > 0):
		return fmt.Errorf("inst: v = %v, need v > 0", in.V)
	case in.T < 0:
		return fmt.Errorf("inst: t = %v, need t ≥ 0", in.T)
	case in.Chi != 1 && in.Chi != -1:
		return fmt.Errorf("inst: χ = %d, need ±1", in.Chi)
	case in.Phi < 0 || in.Phi >= 2*math.Pi:
		return fmt.Errorf("inst: φ = %v, need 0 ≤ φ < 2π", in.Phi)
	case !in.B0().IsFinite():
		return fmt.Errorf("inst: non-finite start (%v, %v)", in.X, in.Y)
	}
	return nil
}

// Trivial reports whether r ≥ d, in which case rendezvous holds at time 0
// (the paper assumes r < d without loss of generality).
func (in Instance) Trivial() bool { return in.R >= in.Dist() }

// Synchronous reports whether τ = v = 1 (§2): same clock rates and same
// speeds, hence lockstep execution up to the delay t.
func (in Instance) Synchronous() bool { return in.Tau == 1 && in.V == 1 }

// CanonicalLine returns the canonical line of Definition 2.1.
func (in Instance) CanonicalLine() geom.Line {
	return geom.CanonicalLine(in.B0(), in.Phi)
}

// ProjGap returns dist(proj_A, proj_B), the distance between the
// projections of the two start positions onto the canonical line.
func (in Instance) ProjGap() float64 { return geom.ProjGap(in.B0(), in.Phi) }

// AgentA returns the attributes of the reference agent.
func (in Instance) AgentA() phys.Attributes { return phys.Reference() }

// AgentB returns the attributes of agent B in absolute terms.
func (in Instance) AgentB() phys.Attributes {
	return phys.Attributes{
		Origin: in.B0(),
		Phi:    in.Phi,
		Chi:    in.Chi,
		Tau:    in.Tau,
		Speed:  in.V,
		Wake:   in.T,
	}
}

// Feasible implements the characterization of Theorem 3.1: an instance is
// feasible iff a rendezvous algorithm dedicated to it exists.
func (in Instance) Feasible() bool {
	if in.Trivial() {
		return true
	}
	if !in.Synchronous() {
		return true // Theorem 3.1(1)
	}
	switch {
	case in.Chi == 1 && in.Phi != 0:
		return true // 2(a)
	case in.Chi == 1 && in.Phi == 0:
		return in.T >= in.Dist()-in.R // 2(b)
	default: // χ = -1
		return in.T >= in.ProjGap()-in.R // 2(c)
	}
}

// InS1 reports membership in the exception set S1 (Section 4):
// synchronous, χ = 1, φ = 0, t = d − r. Feasible but not handled by the
// universal algorithm.
func (in Instance) InS1() bool {
	return in.Synchronous() && in.Chi == 1 && in.Phi == 0 &&
		in.T == in.Dist()-in.R
}

// InS2 reports membership in the exception set S2 (Section 4):
// synchronous, χ = -1, t = dist(proj_A, proj_B) − r.
func (in Instance) InS2() bool {
	return in.Synchronous() && in.Chi == -1 &&
		in.T == in.ProjGap()-in.R
}

// Type is the four-way categorization of §3.1.1 driving the blocks of
// Algorithm AlmostUniversalRV.
type Type int

const (
	// TypeNone marks instances not guaranteed by Theorem 3.2 (either
	// infeasible or in an exception set).
	TypeNone Type = iota
	// Type1: synchronous, χ = -1, t > dist(proj_A, proj_B) − r.
	Type1
	// Type2: synchronous, χ = 1, φ = 0, t > d − r.
	Type2
	// Type3: τ ≠ 1.
	Type3
	// Type4: every instance of Theorem 3.2 that is not of type 1–3
	// (non-synchronous with τ = 1, or synchronous with χ = 1, φ ≠ 0).
	Type4
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Type1:
		return "type1(mirror)"
	case Type2:
		return "type2(latecomer)"
	case Type3:
		return "type3(clock-drift)"
	case Type4:
		return "type4(cgkk-interleave)"
	default:
		return "none"
	}
}

// TypeOf classifies the instance per §3.1.1. TypeNone is returned for
// instances outside the guarantee of Theorem 3.2 (infeasible instances
// and the exception sets S1, S2).
func (in Instance) TypeOf() Type {
	if in.Synchronous() {
		if in.Chi == -1 {
			if in.T > in.ProjGap()-in.R {
				return Type1
			}
			return TypeNone
		}
		// χ = 1, synchronous.
		if in.Phi == 0 {
			if in.T > in.Dist()-in.R {
				return Type2
			}
			return TypeNone
		}
		return Type4 // synchronous, χ = 1, φ ≠ 0
	}
	if in.Tau != 1 {
		return Type3
	}
	return Type4 // non-synchronous with τ = 1 (so v ≠ 1)
}

// CoveredByAURV reports whether Theorem 3.2 guarantees rendezvous for the
// instance under Algorithm AlmostUniversalRV.
func (in Instance) CoveredByAURV() bool { return in.TypeOf() != TypeNone }

// Margin returns the slack e of the instance's binding feasibility
// inequality: t − (d − r) for χ=1 φ=0, t − (projGap − r) for χ=-1, and
// +Inf for classes with no delay constraint. Negative margin means
// infeasible (for synchronous instances).
func (in Instance) Margin() float64 {
	if !in.Synchronous() {
		return math.Inf(1)
	}
	if in.Chi == -1 {
		return in.T - (in.ProjGap() - in.R)
	}
	if in.Phi == 0 {
		return in.T - (in.Dist() - in.R)
	}
	return math.Inf(1)
}

// String renders the tuple compactly.
func (in Instance) String() string {
	return fmt.Sprintf("I(r=%g, b0=(%g,%g), φ=%g, τ=%g, v=%g, t=%g, χ=%+d)",
		in.R, in.X, in.Y, in.Phi, in.Tau, in.V, in.T, in.Chi)
}

// plain is an alias without methods, so the JSON encoder does not
// re-enter MarshalText.
type plain Instance

// MarshalText implements encoding.TextMarshaler via JSON.
func (in Instance) MarshalText() ([]byte, error) { return json.Marshal(plain(in)) }

// UnmarshalText implements encoding.TextUnmarshaler via JSON.
func (in *Instance) UnmarshalText(b []byte) error {
	return json.Unmarshal(b, (*plain)(in))
}
