package inst

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Class names the stratified instance families used throughout the
// experiment tables. They mirror the case analysis of Theorems 3.1/3.2
// and the comparison classes of §1.3.
type Class int

const (
	// ClassSimultaneousNonSync: t = 0, non-synchronous — the first half of
	// the CGKK contract.
	ClassSimultaneousNonSync Class = iota
	// ClassSimultaneousRotated: t = 0, synchronous, χ = 1, φ ≠ 0 — the
	// second half of the CGKK contract.
	ClassSimultaneousRotated
	// ClassLatecomer: synchronous, χ = 1, φ = 0, t > d − r — the
	// Latecomers contract (type 2).
	ClassLatecomer
	// ClassMirrorInterior: synchronous, χ = -1, t > projGap − r (type 1).
	ClassMirrorInterior
	// ClassClockDrift: τ ≠ 1, arbitrary delay (type 3).
	ClassClockDrift
	// ClassSpeedOnly: τ = 1, v ≠ 1, arbitrary delay (type 4, non-sync).
	ClassSpeedOnly
	// ClassRotatedDelayed: synchronous, χ = 1, φ ≠ 0, t > 0 (type 4,
	// synchronous — beyond both CGKK and Latecomers).
	ClassRotatedDelayed
	// ClassBoundaryS1: the exception set S1 (t = d − r exactly).
	ClassBoundaryS1
	// ClassBoundaryS2: the exception set S2 (t = projGap − r exactly).
	ClassBoundaryS2
	// ClassInfeasibleShift: synchronous, χ = 1, φ = 0, t < d − r
	// (infeasible by Theorem 3.1 2(b)).
	ClassInfeasibleShift
	// ClassInfeasibleMirror: synchronous, χ = -1, t < projGap − r
	// (infeasible by Theorem 3.1 2(c)).
	ClassInfeasibleMirror

	numClasses
)

// Classes lists every generator class in order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassSimultaneousNonSync:
		return "t=0 non-sync"
	case ClassSimultaneousRotated:
		return "t=0 sync φ≠0 χ=1"
	case ClassLatecomer:
		return "sync φ=0 χ=1 t>d-r"
	case ClassMirrorInterior:
		return "sync χ=-1 t>gap-r"
	case ClassClockDrift:
		return "τ≠1 any t"
	case ClassSpeedOnly:
		return "τ=1 v≠1 any t"
	case ClassRotatedDelayed:
		return "sync φ≠0 χ=1 t>0"
	case ClassBoundaryS1:
		return "S1 boundary"
	case ClassBoundaryS2:
		return "S2 boundary"
	case ClassInfeasibleShift:
		return "infeasible φ=0"
	case ClassInfeasibleMirror:
		return "infeasible χ=-1"
	}
	return "unknown"
}

// Gen draws random instances from the stratified classes. Parameters are
// kept in a moderate range so that the universal algorithm meets within
// its first few phases — the schedules grow so fast that this is the
// regime every experiment (and any practical run) lives in.
type Gen struct {
	Rng *rand.Rand
	// RMin, RMax bound the visibility radius (default 0.3, 1.2).
	RMin, RMax float64
	// DMax bounds the initial distance multiplier (default 4).
	DMax float64
}

// NewGen returns a generator with the default parameter ranges and the
// given seed.
func NewGen(seed int64) *Gen {
	return &Gen{Rng: rand.New(rand.NewSource(seed)), RMin: 0.3, RMax: 1.2, DMax: 4}
}

func (g *Gen) radius() float64 { return g.RMin + g.Rng.Float64()*(g.RMax-g.RMin) }

// start draws a start position for B at distance in (r, r+DMax·r].
func (g *Gen) start(r float64) geom.Vec2 {
	d := r * (1.05 + g.Rng.Float64()*g.DMax)
	ang := g.Rng.Float64() * geom.TwoPi
	return geom.Polar(ang).Scale(d)
}

// phiNonZero draws φ bounded away from 0 and 2π so the rotated classes
// stay rotated under float rounding.
func (g *Gen) phiNonZero() float64 {
	return 0.15 + g.Rng.Float64()*(geom.TwoPi-0.3)
}

// Draw returns one random instance of the class.
func (g *Gen) Draw(c Class) Instance {
	r := g.radius()
	b0 := g.start(r)
	in := Instance{R: r, X: b0.X, Y: b0.Y, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	switch c {
	case ClassSimultaneousNonSync:
		// Non-synchronous: perturb τ or v (or both); keep t = 0.
		switch g.Rng.Intn(3) {
		case 0:
			in.Tau = pick(g.Rng, 1.3, 2.5)
		case 1:
			in.V = pick(g.Rng, 1.4, 2.5)
		default:
			in.Tau = pick(g.Rng, 1.3, 2.0)
			in.V = pick(g.Rng, 1.4, 2.0)
		}
		in.Phi = g.Rng.Float64() * geom.TwoPi
		in.Chi = g.chi()
	case ClassSimultaneousRotated:
		in.Phi = g.phiNonZero()
	case ClassLatecomer:
		d := in.Dist()
		in.T = d - r + (0.2+g.Rng.Float64())*r // healthy positive margin
	case ClassMirrorInterior:
		in.Chi = -1
		in.Phi = g.Rng.Float64() * geom.TwoPi
		gap := in.ProjGap()
		in.T = math.Max(0, gap-r) + (0.2+g.Rng.Float64())*r
	case ClassClockDrift:
		in.Tau = pick(g.Rng, 1.3, 2.5)
		in.V = 1 / in.Tau * pick(g.Rng, 0.8, 1.2) // vary the unit too
		in.Phi = g.Rng.Float64() * geom.TwoPi
		in.Chi = g.chi()
		in.T = g.Rng.Float64() * 2
	case ClassSpeedOnly:
		in.V = pick(g.Rng, 1.4, 2.5)
		in.Phi = g.Rng.Float64() * geom.TwoPi
		in.Chi = g.chi()
		in.T = g.Rng.Float64() * 2
	case ClassRotatedDelayed:
		in.Phi = g.phiNonZero()
		in.T = 0.2 + g.Rng.Float64()*2
	case ClassBoundaryS1:
		d := in.Dist()
		in.T = d - r
	case ClassBoundaryS2:
		in.Chi = -1
		in.Phi = g.Rng.Float64() * geom.TwoPi
		// Ensure a strictly positive boundary delay: redraw until the
		// projection gap exceeds r.
		for in.ProjGap() <= r*1.05 {
			b0 = g.start(r)
			in.X, in.Y = b0.X, b0.Y
			in.Phi = g.Rng.Float64() * geom.TwoPi
		}
		in.T = in.ProjGap() - r
	case ClassInfeasibleShift:
		d := in.Dist()
		in.T = math.Max(0, (d-r)*(0.2+0.6*g.Rng.Float64()))
	case ClassInfeasibleMirror:
		in.Chi = -1
		in.Phi = g.Rng.Float64() * geom.TwoPi
		for in.ProjGap() <= r*1.1 {
			b0 = g.start(r)
			in.X, in.Y = b0.X, b0.Y
			in.Phi = g.Rng.Float64() * geom.TwoPi
		}
		in.T = (in.ProjGap() - r) * (0.2 + 0.6*g.Rng.Float64())
	}
	return in
}

// DrawN returns n instances of the class.
func (g *Gen) DrawN(c Class, n int) []Instance {
	out := make([]Instance, n)
	for i := range out {
		out[i] = g.Draw(c)
	}
	return out
}

func (g *Gen) chi() int {
	if g.Rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

func pick(rng *rand.Rand, lo, hi float64) float64 {
	x := lo + rng.Float64()*(hi-lo)
	if rng.Intn(2) == 0 {
		return 1 / x // also exercise values below 1
	}
	return x
}
