package inst

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// base returns a generic feasible-looking synchronous instance to mutate.
func base() Instance {
	return Instance{R: 0.5, X: 2, Y: 1, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
}

func TestValidate(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Fatalf("base invalid: %v", err)
	}
	for _, mut := range []func(*Instance){
		func(in *Instance) { in.R = 0 },
		func(in *Instance) { in.R = -1 },
		func(in *Instance) { in.Tau = 0 },
		func(in *Instance) { in.V = -2 },
		func(in *Instance) { in.T = -0.1 },
		func(in *Instance) { in.Chi = 0 },
		func(in *Instance) { in.Chi = 2 },
		func(in *Instance) { in.Phi = -0.1 },
		func(in *Instance) { in.Phi = 2 * math.Pi },
		func(in *Instance) { in.X = math.NaN() },
	} {
		in := base()
		mut(&in)
		if err := in.Validate(); err == nil {
			t.Errorf("mutated instance accepted: %+v", in)
		}
	}
}

func TestSynchronousAndTrivial(t *testing.T) {
	in := base()
	if !in.Synchronous() {
		t.Error("τ=v=1 not synchronous")
	}
	in.Tau = 2
	if in.Synchronous() {
		t.Error("τ=2 synchronous")
	}
	in = base()
	in.V = 0.5
	if in.Synchronous() {
		t.Error("v=0.5 synchronous")
	}
	in = base()
	in.R = 5
	if !in.Trivial() {
		t.Error("r ≥ d not trivial")
	}
}

func TestDistAndProjGap(t *testing.T) {
	in := base() // b0 = (2,1)
	if got := in.Dist(); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Errorf("Dist = %v", got)
	}
	// φ=0: projection gap is |x| = 2.
	if got := in.ProjGap(); math.Abs(got-2) > 1e-12 {
		t.Errorf("ProjGap(φ=0) = %v", got)
	}
	// φ=π: canonical line has inclination π/2 → gap = |y| = 1.
	in.Phi = math.Pi
	if got := in.ProjGap(); math.Abs(got-1) > 1e-12 {
		t.Errorf("ProjGap(φ=π) = %v", got)
	}
}

// Feasibility truth table straight out of Theorem 3.1.
func TestFeasibleTheorem31(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Instance)
		want bool
	}{
		{"non-sync τ", func(in *Instance) { in.Tau = 2 }, true},
		{"non-sync v", func(in *Instance) { in.V = 2 }, true},
		{"sync χ=1 φ≠0", func(in *Instance) { in.Phi = 1 }, true},
		{"sync χ=1 φ=0 t=d-r", func(in *Instance) { in.T = in.Dist() - in.R }, true},
		{"sync χ=1 φ=0 t>d-r", func(in *Instance) { in.T = in.Dist() }, true},
		{"sync χ=1 φ=0 t<d-r", func(in *Instance) { in.T = (in.Dist() - in.R) / 2 }, false},
		{"sync χ=1 φ=0 t=0", func(in *Instance) {}, false},
		{"sync χ=-1 t=gap-r", func(in *Instance) {
			in.Chi = -1
			in.T = in.ProjGap() - in.R
		}, true},
		{"sync χ=-1 t>gap-r", func(in *Instance) {
			in.Chi = -1
			in.T = in.ProjGap()
		}, true},
		{"sync χ=-1 t<gap-r", func(in *Instance) {
			in.Chi = -1
			in.T = (in.ProjGap() - in.R) / 2
		}, false},
		{"sync χ=-1 φ≠0 t<gap-r", func(in *Instance) {
			in.Chi = -1
			in.Phi = 0.6
			in.T = math.Max(0, (in.ProjGap()-in.R)/2)
		}, false},
		{"trivial r≥d", func(in *Instance) { in.R = 10 }, true},
	}
	for _, tc := range cases {
		in := base()
		tc.mut(&in)
		if got := in.Feasible(); got != tc.want {
			t.Errorf("%s: Feasible = %v, want %v (%v)", tc.name, got, tc.want, in)
		}
	}
}

func TestExceptionSets(t *testing.T) {
	in := base()
	in.T = in.Dist() - in.R
	if !in.InS1() {
		t.Error("S1 boundary not detected")
	}
	if in.InS2() {
		t.Error("S1 instance reported in S2")
	}
	if in.CoveredByAURV() {
		t.Error("S1 instance covered by AURV")
	}
	if !in.Feasible() {
		t.Error("S1 instance must be feasible")
	}

	in = base()
	in.Chi = -1
	in.Phi = 0.8
	in.T = in.ProjGap() - in.R
	if in.T <= 0 {
		t.Fatalf("test setup: boundary delay %v not positive", in.T)
	}
	if !in.InS2() {
		t.Error("S2 boundary not detected")
	}
	if in.CoveredByAURV() {
		t.Error("S2 instance covered by AURV")
	}
	if !in.Feasible() {
		t.Error("S2 instance must be feasible")
	}

	// Non-synchronous instances are never in the exception sets.
	in.Tau = 2
	if in.InS2() || in.InS1() {
		t.Error("non-sync instance in exception set")
	}
}

// Type classification per §3.1.1.
func TestTypeOf(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Instance)
		want Type
	}{
		{"type1 mirror interior", func(in *Instance) {
			in.Chi = -1
			in.Phi = 1.0
			in.T = in.ProjGap() - in.R + 0.3
		}, Type1},
		{"type2 latecomer", func(in *Instance) { in.T = in.Dist() - in.R + 0.3 }, Type2},
		{"type3 clock", func(in *Instance) { in.Tau = 1.5 }, Type3},
		{"type3 clock with delay", func(in *Instance) { in.Tau = 0.5; in.T = 3 }, Type3},
		{"type4 speed only", func(in *Instance) { in.V = 2; in.T = 1 }, Type4},
		{"type4 sync rotated", func(in *Instance) { in.Phi = 1.2; in.T = 2 }, Type4},
		{"none: S1", func(in *Instance) { in.T = in.Dist() - in.R }, TypeNone},
		{"none: S2", func(in *Instance) {
			in.Chi = -1
			in.Phi = 0.5
			in.T = in.ProjGap() - in.R
		}, TypeNone},
		{"none: infeasible shift", func(in *Instance) {}, TypeNone},
		{"none: infeasible mirror", func(in *Instance) {
			in.Chi = -1
			in.T = 0
		}, TypeNone},
	}
	for _, tc := range cases {
		in := base()
		tc.mut(&in)
		if got := in.TypeOf(); got != tc.want {
			t.Errorf("%s: TypeOf = %v, want %v (%v)", tc.name, got, tc.want, in)
		}
	}
}

// Every typed instance must be feasible (Theorem 3.2 ⊂ Theorem 3.1).
func TestTypedImpliesFeasible(t *testing.T) {
	g := NewGen(40)
	for _, c := range []Class{
		ClassSimultaneousNonSync, ClassSimultaneousRotated, ClassLatecomer,
		ClassMirrorInterior, ClassClockDrift, ClassSpeedOnly, ClassRotatedDelayed,
	} {
		for _, in := range g.DrawN(c, 100) {
			if in.TypeOf() == TypeNone {
				t.Fatalf("class %v produced untyped instance %v", c, in)
			}
			if !in.Feasible() {
				t.Fatalf("typed instance infeasible: %v", in)
			}
		}
	}
}

func TestMargin(t *testing.T) {
	in := base()
	in.T = in.Dist() - in.R + 0.25
	if got := in.Margin(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("shift margin = %v", got)
	}
	in = base()
	in.Chi = -1
	in.T = 0
	want := -(in.ProjGap() - in.R)
	if got := in.Margin(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mirror margin = %v, want %v", got, want)
	}
	in = base()
	in.Tau = 2
	if !math.IsInf(in.Margin(), 1) {
		t.Error("non-sync margin not +Inf")
	}
}

func TestAgentAttributes(t *testing.T) {
	in := Instance{R: 0.5, X: 3, Y: -1, Phi: 1.2, Tau: 1.5, V: 2, T: 0.7, Chi: -1}
	a, b := in.AgentA(), in.AgentB()
	if !a.Valid() || !b.Valid() {
		t.Fatal("agent attributes invalid")
	}
	if b.Origin != geom.V(3, -1) || b.Phi != 1.2 || b.Chi != -1 ||
		b.Tau != 1.5 || b.Speed != 2 || b.Wake != 0.7 {
		t.Errorf("AgentB = %+v", b)
	}
	if b.Unit() != 3 {
		t.Errorf("unit = %v", b.Unit())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := Instance{R: 0.5, X: 3, Y: -1, Phi: 1.2, Tau: 1.5, V: 2, T: 0.7, Chi: -1}
	b, err := in.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var out Instance
	if err := out.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("roundtrip %v -> %v", in, out)
	}
}
