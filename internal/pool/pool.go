// Package pool provides the indexed-parallelism primitive shared by
// every fan-out engine of the reproduction: run fn(i) for i in [0, n)
// on a fixed pool of goroutines that claim indices from an atomic
// counter. It carries no policy beyond scheduling — determinism is the
// caller's affair (the batch engine writes results by index and folds
// aggregates serially; the Monte-Carlo sweep derives per-chunk RNG
// streams from the chunk index) — which is what lets packages as far
// apart as internal/batch and internal/measure share it without
// depending on each other.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism degree: values ≤ 0 mean
// GOMAXPROCS, and the result is clamped to n so a small workload never
// spawns idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(i) for every i in [0, n) on a pool of `workers` goroutines
// (callers should pre-resolve the count with Workers). fn must be safe
// to call concurrently for distinct i; Do returns after every index has
// been processed. With workers ≤ 1 the loop runs inline — no goroutines,
// no atomics — so a serial caller pays nothing for the generality.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	mRuns.Inc()
	mTasks.Add(uint64(n))
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	claim := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	// The calling goroutine is worker zero: spawning `workers` helpers
	// and then blocking on the WaitGroup would leave one runnable
	// goroutine doing nothing — on a machine where workers equals the
	// core count that parks a core's worth of parallelism (and on one
	// core it turns every "parallel" run into pure overhead: spawn,
	// park, hand the whole batch to the helper).
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			claim()
		}()
	}
	claim()
	wg.Wait()
}
