// The pool's flight-recorder instruments (internal/obs). Two atomic
// adds per Do call — not per task — so the primitive stays as close
// to free as its no-policy charter promises.

package pool

import "repro/internal/obs"

var (
	mRuns = obs.NewCounter("rv_pool_runs_total",
		"Pool fan-out invocations (Do calls with work to do).")
	mTasks = obs.NewCounter("rv_pool_tasks_total",
		"Tasks claimed across all pool invocations.")
)
