package svg

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestDocumentStructure(t *testing.T) {
	c := New(400, 300, -2, -2, 2, 2)
	c.Line(geom.V(0, 0), geom.V(1, 1), Style{})
	c.Circle(geom.V(0, 0), 1, Style{Stroke: "red"})
	c.Dot(geom.V(1, 0), 3, "blue")
	c.Text(geom.V(0, 1), "L", 14, "")
	c.Arrow(geom.V(0, 0), geom.V(1, 0), Style{})
	c.Polyline([]geom.Vec2{geom.V(0, 0), geom.V(1, 0), geom.V(1, 1)}, Style{Dash: "4,2"})
	c.InfiniteLine(geom.LineAtAngle(geom.V(0, 0), 0.5), Style{})

	out := c.String()
	for _, want := range []string{"<svg", "</svg>", "<line", "<circle", "<text", "<polyline", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	if c.Elements() < 7 {
		t.Errorf("elements = %d", c.Elements())
	}
}

func TestYAxisUp(t *testing.T) {
	c := New(100, 100, 0, 0, 10, 10)
	x, y := c.pt(geom.V(0, 10))
	if x != 0 || y != 0 {
		t.Errorf("top-left mapping got (%v, %v)", x, y)
	}
	x, y = c.pt(geom.V(10, 0))
	if x != 100 || y != 100 {
		t.Errorf("bottom-right mapping got (%v, %v)", x, y)
	}
}

func TestEscape(t *testing.T) {
	c := New(100, 100, 0, 0, 1, 1)
	c.Text(geom.V(0, 0), "a<b&c", 10, "")
	out := c.String()
	if !strings.Contains(out, "a&lt;b&amp;c") {
		t.Errorf("text not escaped: %s", out)
	}
}

func TestPolylineTooShort(t *testing.T) {
	c := New(100, 100, 0, 0, 1, 1)
	c.Polyline([]geom.Vec2{geom.V(0, 0)}, Style{})
	if c.Elements() != 0 {
		t.Error("single-point polyline emitted")
	}
}
