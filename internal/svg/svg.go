// Package svg is a minimal SVG emitter used to regenerate the paper's
// figures from computed geometry and simulated trajectories. It supports
// exactly the primitives the figures need: lines, polylines, circles,
// arrows, dashed strokes and text labels, in a y-up world coordinate
// system mapped onto the y-down SVG canvas.
package svg

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
)

// Canvas accumulates SVG elements over a world-coordinate viewport.
type Canvas struct {
	W, H     float64 // pixel dimensions
	minX     float64
	minY     float64
	scale    float64
	elements []string
}

// New creates a canvas of w×h pixels showing the world rectangle
// [x0, x1] × [y0, y1] (y up).
func New(w, h, x0, y0, x1, y1 float64) *Canvas {
	sx := w / (x1 - x0)
	sy := h / (y1 - y0)
	s := math.Min(sx, sy)
	return &Canvas{W: w, H: h, minX: x0, minY: y0, scale: s}
}

// pt maps world coordinates to pixel coordinates.
func (c *Canvas) pt(p geom.Vec2) (float64, float64) {
	return (p.X - c.minX) * c.scale, c.H - (p.Y-c.minY)*c.scale
}

// Style is a stroke/fill description.
type Style struct {
	Stroke string
	Width  float64
	Dash   string // e.g. "6,4"; empty for solid
	Fill   string // empty means none
}

func (s Style) attrs() string {
	if s.Stroke == "" {
		s.Stroke = "black"
	}
	if s.Width == 0 {
		s.Width = 1.5
	}
	fill := s.Fill
	if fill == "" {
		fill = "none"
	}
	a := fmt.Sprintf(`stroke=%q stroke-width="%g" fill=%q`, s.Stroke, s.Width, fill)
	if s.Dash != "" {
		a += fmt.Sprintf(` stroke-dasharray=%q`, s.Dash)
	}
	return a
}

// Line draws a segment.
func (c *Canvas) Line(a, b geom.Vec2, st Style) {
	x1, y1 := c.pt(a)
	x2, y2 := c.pt(b)
	c.elements = append(c.elements,
		fmt.Sprintf(`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" %s/>`, x1, y1, x2, y2, st.attrs()))
}

// InfiniteLine draws the visible part of a line across the canvas.
func (c *Canvas) InfiniteLine(l geom.Line, st Style) {
	// Extend far beyond the viewport and clip visually.
	span := (c.W + c.H) / c.scale
	a := l.Point.Add(l.Dir.Scale(-span))
	b := l.Point.Add(l.Dir.Scale(span))
	c.Line(a, b, st)
}

// Polyline draws connected segments.
func (c *Canvas) Polyline(pts []geom.Vec2, st Style) {
	if len(pts) < 2 {
		return
	}
	var b strings.Builder
	for i, p := range pts {
		x, y := c.pt(p)
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f,%.2f", x, y)
	}
	c.elements = append(c.elements,
		fmt.Sprintf(`<polyline points="%s" %s/>`, b.String(), st.attrs()))
}

// Circle draws a circle of world radius r.
func (c *Canvas) Circle(center geom.Vec2, r float64, st Style) {
	x, y := c.pt(center)
	c.elements = append(c.elements,
		fmt.Sprintf(`<circle cx="%.2f" cy="%.2f" r="%.2f" %s/>`, x, y, r*c.scale, st.attrs()))
}

// Dot draws a filled dot of pixel radius px.
func (c *Canvas) Dot(center geom.Vec2, px float64, color string) {
	x, y := c.pt(center)
	c.elements = append(c.elements,
		fmt.Sprintf(`<circle cx="%.2f" cy="%.2f" r="%.2f" fill=%q stroke="none"/>`, x, y, px, color))
}

// Arrow draws a segment with a terminal arrowhead.
func (c *Canvas) Arrow(a, b geom.Vec2, st Style) {
	c.Line(a, b, st)
	dir := b.Sub(a).Unit()
	headLen := 10 / c.scale
	left := geom.Rotation(2.7).Apply(dir).Scale(headLen)
	right := geom.Rotation(-2.7).Apply(dir).Scale(headLen)
	c.Line(b, b.Add(left), st)
	c.Line(b, b.Add(right), st)
}

// Text places a label at the world position.
func (c *Canvas) Text(p geom.Vec2, s string, size float64, color string) {
	x, y := c.pt(p)
	if color == "" {
		color = "black"
	}
	c.elements = append(c.elements,
		fmt.Sprintf(`<text x="%.2f" y="%.2f" font-size="%g" fill=%q font-family="serif">%s</text>`,
			x, y, size, color, escape(s)))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// String renders the complete SVG document.
func (c *Canvas) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`,
		c.W, c.H, c.W, c.H)
	b.WriteString("\n")
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	b.WriteString("\n")
	for _, e := range c.elements {
		b.WriteString(e)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Elements returns the number of emitted elements (testing aid).
func (c *Canvas) Elements() int { return len(c.elements) }
