package exps

import (
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dist"
)

// TestMain lets this test binary serve as its own worker fleet: the
// coordinator's default WorkerCmd re-executes the current executable
// and MaybeServeStdio diverts that copy into the worker loop (see
// TestT5DistributedMatchesInProcess).
func TestMain(m *testing.M) {
	dist.MaybeServeStdio()
	os.Exit(m.Run())
}

// smallBudgets keeps the test-suite runtime in check while preserving
// every assertion the tables make. Workers 0 fans the per-instance runs
// over GOMAXPROCS — by the batch determinism guarantee the tables are
// byte-identical to the serial run (asserted by the
// TestT*ParallelMatchesSerial tests below).
func smallBudgets() Budgets {
	return Budgets{MeetSegments: 120_000_000, MissSegments: 1_000_000}
}

func TestT1AllAgree(t *testing.T) {
	tb := T1(1, 3, smallBudgets())
	out := tb.String()
	for _, row := range tb.Rows {
		agree := row[len(row)-1]
		if agree != "3/3" {
			t.Errorf("T1 row %q agreement %s:\n%s", row[0], agree, out)
		}
	}
}

func TestT2AllMeet(t *testing.T) {
	tb := T2(2, 4, smallBudgets())
	for _, row := range tb.Rows {
		met := row[2]
		if !strings.HasPrefix(met, row[1]+"/") || !strings.HasSuffix(met, "/"+row[1]) {
			t.Errorf("T2 type %q met %s of %s:\n%s", row[0], met, row[1], tb.String())
		}
	}
}

func TestT3CoveragePattern(t *testing.T) {
	tb := T3(3, 2, smallBudgets())
	// Columns: class, CGKK, Latecomers, AURV, Dedicated. Only provable
	// cells are asserted: an algorithm's contract classes must be full,
	// the boundary classes must be empty for the universal algorithms
	// (the generic-direction invariant), and Dedicated covers everything
	// feasible. Cells outside any guarantee are informative only — the
	// procedures share planar-sweep machinery and often meet
	// opportunistically beyond their contracts.
	full := "2/2"
	zero := "0/2"
	expect := map[string][4]string{
		"t=0 non-sync":       {full, "", full, full},
		"t=0 sync φ≠0 χ=1":   {full, "", full, full},
		"sync φ=0 χ=1 t>d-r": {"", full, full, full},
		"sync χ=-1 t>gap-r":  {"", "", full, full},
		"τ≠1 any t":          {"", "", full, full},
		"sync φ≠0 χ=1 t>0":   {"", "", full, full},
		"S1 boundary":        {zero, zero, zero, full},
		"S2 boundary":        {"", zero, zero, full},
	}
	for _, row := range tb.Rows {
		want, ok := expect[row[0]]
		if !ok {
			t.Errorf("unexpected class %q", row[0])
			continue
		}
		for i, w := range want {
			if w == "" {
				continue // cell outside any guarantee: value is informative only
			}
			if row[i+1] != w {
				t.Errorf("T3 %q column %d = %s, want %s\n%s", row[0], i+1, row[i+1], w, tb.String())
			}
		}
	}
}

func TestT4Checks(t *testing.T) {
	tb := T4(4, smallBudgets())
	for _, row := range tb.Rows {
		res := row[len(row)-1]
		if strings.Contains(res, "FAILED") {
			t.Errorf("T4 %q: %s\n%s", row[0], res, tb.String())
		}
		if strings.Contains(row[0], "S2:") || strings.Contains(row[0], "S1:") {
			if !strings.HasSuffix(res, "/5") || !strings.HasPrefix(res, "5/") {
				t.Errorf("T4 %q = %s, want 5/5", row[0], res)
			}
		}
	}
	// The aligned caveat row must report a meeting.
	last := tb.Rows[len(tb.Rows)-1]
	if !strings.Contains(last[2], "met") {
		t.Errorf("aligned S1 row: %v", last)
	}
}

func TestT5Measure(t *testing.T) {
	tb := T5(300_000, 5, Budgets{})
	out := tb.String()
	if !strings.Contains(out, "feasible share") {
		t.Fatalf("missing rows:\n%s", out)
	}
	for _, row := range tb.Rows {
		if row[0] == "exact S1 hits" || row[0] == "exact S2 hits" {
			if row[1] != "0" {
				t.Errorf("%s = %s, want 0", row[0], row[1])
			}
		}
	}
}

func TestT6BoundarySharpness(t *testing.T) {
	tb := T6(6, smallBudgets())
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		delta, feasible, aurv, ded := row[0], row[1], row[2], row[3]
		neg := strings.HasPrefix(delta, "-")
		zero := delta == "+0.00"
		switch {
		case neg:
			if feasible != "false" || strings.HasPrefix(aurv, "met") || ded != "n/a (infeasible)" {
				t.Errorf("δ=%s: %v", delta, row)
			}
		case zero:
			if feasible != "true" || strings.HasPrefix(aurv, "met") || !strings.HasPrefix(ded, "met") {
				t.Errorf("δ=0: %v", row)
			}
		default:
			if feasible != "true" || !strings.HasPrefix(aurv, "met") || !strings.HasPrefix(ded, "met") {
				t.Errorf("δ=%s: %v", delta, row)
			}
		}
	}
}

// TestT2ParallelMatchesSerial is the table-level determinism assertion:
// the rendered T2 report must be byte-equal whether the per-instance
// runs execute serially or on 8 workers.
func TestT2ParallelMatchesSerial(t *testing.T) {
	serial := smallBudgets()
	serial.Workers = 1
	parallel := smallBudgets()
	parallel.Workers = 8
	s := T2(2, 4, serial).String()
	p := T2(2, 4, parallel).String()
	if s != p {
		t.Errorf("T2 output depends on worker count:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", s, p)
	}
}

// TestT5ParallelMatchesSerial pins the worker-count independence of the
// chunked Monte-Carlo sweep.
func TestT5ParallelMatchesSerial(t *testing.T) {
	s := T5(200_000, 5, Budgets{Workers: 1}).String()
	p := T5(200_000, 5, Budgets{Workers: 8}).String()
	if s != p {
		t.Errorf("T5 output depends on worker count:\n%s\nvs\n%s", s, p)
	}
}

// TestT5DistributedMatchesInProcess pins the distributed T5 table to
// the in-process one: shipping the Monte-Carlo chunks to worker
// subprocesses must not change a character of the rendered table.
func TestT5DistributedMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	local := T5(200_000, 5, Budgets{Workers: 2}).String()
	var distLog strings.Builder
	d := T5(200_000, 5, Budgets{Workers: 2, Dist: dist.Config{Procs: 2, Window: 2, Stderr: &distLog}}).String()
	if local != d {
		t.Errorf("T5 output depends on distribution:\n%s\nvs\n%s", local, d)
	}
	// Identical output via the in-process fallback would prove nothing:
	// the chunks must actually have crossed the process boundary.
	if log := distLog.String(); strings.Contains(log, "falling back") {
		t.Errorf("distributed sweep silently fell back in-process:\n%s", log)
	}
}

// TestSharedFleetAcrossTables is the session acceptance criterion at
// the experiment-suite level: T2, T3, and T5 run over ONE dialed fleet
// (Budgets.Fleet, the rvtable path) must render byte-identically to
// the in-process tables AND cost exactly one worker connection, where
// the per-table path (Budgets.Dist, a fleet per b.run/b.sweep call)
// pays one per table.
func TestSharedFleetAcrossTables(t *testing.T) {
	if testing.Short() {
		t.Skip("dials TCP worker fleets")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	var conns atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func() {
				defer conn.Close()
				dist.Serve(conn, conn)
			}()
		}
	}()

	b := smallBudgets()
	b.Workers = 2
	run := func(bud Budgets) (string, string, string) {
		return T2(2, 3, bud).String(), T3(3, 2, bud).String(), T5(200_000, 5, bud).String()
	}
	wantT2, wantT3, wantT5 := run(b)

	cfg := dist.Config{Hosts: []dist.Host{{Addr: l.Addr().String()}}}
	shared := b
	f, err := dist.Dial(cfg)
	if err != nil {
		t.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()
	shared.Fleet = f
	gotT2, gotT3, gotT5 := run(shared)
	if gotT2 != wantT2 || gotT3 != wantT3 || gotT5 != wantT5 {
		t.Fatal("shared-fleet tables differ from in-process tables")
	}
	if n := conns.Load(); n != 1 {
		t.Fatalf("shared fleet used %d connections for 3 tables, want exactly 1", n)
	}

	// Per-table path: every table that reaches the fleet dials afresh.
	// T2's jobs all carry Progress observers (no wire form), so only T3
	// and T5 touch the fleet — still two dials where the session needed
	// one, and the gap widens with every table and rerun.
	perTable := b
	perTable.Dist = cfg
	gotT2, gotT3, gotT5 = run(perTable)
	if gotT2 != wantT2 || gotT3 != wantT3 || gotT5 != wantT5 {
		t.Fatal("per-table-fleet tables differ from in-process tables")
	}
	if n := conns.Load() - 1; n != 2 {
		t.Fatalf("per-table path used %d connections, want 2 (T3 and T5 each dial)", n)
	}
}

// TestFiguresParallelMatchesSerial: the simulated figures are identical
// for any pool size.
func TestFiguresParallelMatchesSerial(t *testing.T) {
	s := FiguresWith(1)
	p := FiguresWith(8)
	for name := range s {
		if s[name] != p[name] {
			t.Errorf("%s depends on worker count", name)
		}
	}
}

func TestFiguresProduceSVG(t *testing.T) {
	figs := Figures()
	if len(figs) != 5 {
		t.Fatalf("%d figures", len(figs))
	}
	for name, doc := range figs {
		if !strings.HasPrefix(doc, "<svg") || !strings.Contains(doc, "</svg>") {
			t.Errorf("%s: not an SVG document", name)
		}
		if len(doc) < 500 {
			t.Errorf("%s: suspiciously small (%d bytes)", name, len(doc))
		}
	}
	// Fig4 and Fig5 draw simulated meetings: the rendezvous marker must be
	// present.
	if !strings.Contains(figs["fig4"], "rendezvous") {
		t.Error("fig4 missing rendezvous marker (simulation did not meet?)")
	}
	if !strings.Contains(figs["fig5"], "gap = r") {
		t.Error("fig5 missing meeting marker")
	}
}
