// Package exps regenerates every experiment table (T1–T5) and figure
// (F1–F5) of the reproduction, as indexed in DESIGN.md §4. The paper is a
// theory paper; each of its theorems becomes a table of empirical checks
// and each of its illustrative figures is redrawn from computed geometry
// and actually simulated trajectories.
package exps

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/adversary"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dedicated"
	"repro/internal/dist"
	"repro/internal/inst"
	"repro/internal/latecomers"
	"repro/internal/measure"
	"repro/internal/prog"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/wire"

	"repro/internal/cgkk"
)

// Budgets bound each simulation of the experiment suite and size its
// worker pool.
type Budgets struct {
	MeetSegments int // budget for runs expected to meet
	MissSegments int // budget for runs expected not to meet
	// Workers is the batch-pool size for the per-instance simulations of
	// T2–T5 and the simulated figures; 0 selects GOMAXPROCS. Tables are
	// byte-identical for every value (see internal/batch).
	Workers int
	// Dist, when enabled, distributes wire-formed jobs over the worker
	// fleet it names (internal/dist). Jobs that carry observers — every
	// AURV job whose phase/block progress feeds a table column — have no
	// wire form and stay in-process, so tables remain byte-identical
	// with or without a fleet.
	Dist dist.Config
	// Fleet, when non-nil, is a dialed persistent worker session
	// (dist.Dial) shared by every batch and sweep of the suite: one
	// handshake per host for the whole T1–T6 run instead of one per
	// table. It takes precedence over Dist for dispatch (the caller
	// typically dialed it from Dist) and stays open — closing it is the
	// caller's job.
	Fleet *dist.Fleet
}

// run executes a job batch through the shared fleet session when one
// is attached, through an ephemeral fleet when Dist names one, and
// in-process otherwise; a fleet failure falls back in-process (purity
// makes the fallback invisible in the tables).
func (b Budgets) run(jobs []batch.Job) ([]sim.Result, batch.Stats) {
	if b.Fleet != nil {
		return b.Fleet.RunOrFallback(jobs, b.Workers)
	}
	return dist.RunOrFallback(jobs, b.Workers, b.Dist)
}

// sweep routes the T5 Monte-Carlo sweep the same way run routes
// batches: shared session, ephemeral fleet, or in-process pool.
func (b Budgets) sweep(n int, eps []float64, box measure.Box, seed int64) measure.Stats {
	if b.Fleet != nil {
		return b.Fleet.SweepOrFallback(n, eps, box, seed, b.Workers)
	}
	return dist.SweepOrFallback(n, eps, box, seed, b.Workers, b.Dist)
}

// DefaultBudgets returns budgets that finish the whole suite in minutes,
// fanned out over all cores.
func DefaultBudgets() Budgets {
	return Budgets{MeetSegments: 120_000_000, MissSegments: 2_000_000}
}

func settings(maxSeg int) sim.Settings {
	s := sim.DefaultSettings()
	s.MaxSegments = maxSeg
	return s
}

// aurvJob builds the batch job simulating AlmostUniversalRV on the
// instance; the returned Progress observer reports the phase/block in
// which generation stopped (= where the meeting happened, programs
// being lazy) once the job has run.
func aurvJob(in inst.Instance, maxSeg int) (batch.Job, *core.Progress) {
	pg := new(core.Progress)
	s := core.Compact()
	return batch.Job{
		A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: core.Program(s, pg), Radius: in.R},
		B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: core.Program(s, nil), Radius: in.R},
		Settings: settings(maxSeg),
	}, pg
}

// runAURV simulates AlmostUniversalRV on the instance serially.
func runAURV(in inst.Instance, maxSeg int) (sim.Result, core.Progress) {
	j, pg := aurvJob(in, maxSeg)
	return sim.Run(j.A, j.B, j.Settings), *pg
}

// progJob builds the batch job running the program on the instance.
func progJob(in inst.Instance, mk func() prog.Program, maxSeg int) batch.Job {
	return batch.Job{
		A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: mk(), Radius: in.R},
		B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: mk(), Radius: in.R},
		Settings: settings(maxSeg),
	}
}

func runProg(in inst.Instance, mk func() prog.Program, maxSeg int) sim.Result {
	j := progJob(in, mk, maxSeg)
	return sim.Run(j.A, j.B, j.Settings)
}

// T1 validates Theorem 3.1: for every instance class, the feasibility
// predicate must agree with simulation ground truth — feasible classes
// meet under their dedicated (or universal) algorithm, infeasible classes
// keep the gap above the analytic lower bound and never meet.
func T1(seed int64, nPerClass int, b Budgets) *report.Table {
	t := report.New("T1 — Theorem 3.1: feasibility characterization vs simulation",
		"class", "n", "predicted", "sim outcome", "agree")
	g := inst.NewGen(seed)
	type row struct {
		class    inst.Class
		feasible bool
	}
	rows := []row{
		{inst.ClassSimultaneousNonSync, true},
		{inst.ClassSimultaneousRotated, true},
		{inst.ClassLatecomer, true},
		{inst.ClassMirrorInterior, true},
		{inst.ClassClockDrift, true},
		{inst.ClassSpeedOnly, true},
		{inst.ClassRotatedDelayed, true},
		{inst.ClassBoundaryS1, true},
		{inst.ClassBoundaryS2, true},
		{inst.ClassInfeasibleShift, false},
		{inst.ClassInfeasibleMirror, false},
	}
	for _, r := range rows {
		met, agree := 0, 0
		for _, in := range g.DrawN(r.class, nPerClass) {
			if in.Feasible() != r.feasible {
				continue // predicate disagrees with the class label: counted as non-agree
			}
			if r.feasible {
				p, ok := dedicated.ForInstance(in, core.Compact())
				if !ok {
					continue
				}
				res := runProg(in, func() prog.Program { return p }, b.MeetSegments)
				if res.Met {
					met++
					agree++
				}
			} else {
				res := runProg(in, func() prog.Program { return core.Program(core.Compact(), nil) }, b.MissSegments)
				bound := gapLowerBound(in)
				if !res.Met && res.MinGap >= bound-1e-6 {
					agree++
				}
			}
		}
		outcome := fmt.Sprintf("met %d/%d", met, nPerClass)
		if !r.feasible {
			outcome = fmt.Sprintf("no meet, gap ≥ bound (%d/%d)", agree, nPerClass)
		}
		pred := "feasible"
		if !r.feasible {
			pred = "infeasible"
		}
		t.Add(r.class.String(), nPerClass, pred, outcome,
			fmt.Sprintf("%d/%d", agree, nPerClass))
	}
	t.Note("feasible classes run their Theorem-3.1 witness algorithm; infeasible classes run AlmostUniversalRV under a %d-segment budget with the analytic gap bound asserted", b.MissSegments)
	return t
}

// gapLowerBound returns the provable all-time gap lower bound for
// infeasible synchronous instances (from the proofs of Lemmas 3.8/3.9).
func gapLowerBound(in inst.Instance) float64 {
	if in.Chi == 1 {
		return in.Dist() - in.T // φ = 0 shift case
	}
	// Mirror case: projections can close by at most t.
	return 0 // position gap can get small; the projection bound is separate
}

// T2 validates Theorem 3.2: AlmostUniversalRV meets on every sampled
// instance of each type, with the phase it needed.
func T2(seed int64, nPerType int, b Budgets) *report.Table {
	t := report.New("T2 — Theorem 3.2: AlmostUniversalRV per instance type",
		"type", "n", "met", "median time", "max time", "max phase")
	g := inst.NewGen(seed)
	classes := map[inst.Type][]inst.Class{
		inst.Type1: {inst.ClassMirrorInterior},
		inst.Type2: {inst.ClassLatecomer},
		inst.Type3: {inst.ClassClockDrift},
		inst.Type4: {inst.ClassSpeedOnly, inst.ClassRotatedDelayed},
	}
	// Build every run of the table up front, fan them through the worker
	// pool, then fold per type in input order — the fold sees exactly the
	// sequence the serial loop produced, so the table is byte-identical
	// for any worker count.
	types := []inst.Type{inst.Type1, inst.Type2, inst.Type3, inst.Type4}
	var (
		jobs  []batch.Job
		jobTy []inst.Type
		jobPg []*core.Progress
	)
	for _, ty := range types {
		for _, c := range classes[ty] {
			for _, in := range g.DrawN(c, nPerType/len(classes[ty])) {
				j, pg := aurvJob(in, b.MeetSegments)
				jobs = append(jobs, j)
				jobTy = append(jobTy, ty)
				jobPg = append(jobPg, pg)
			}
		}
	}
	results, _ := b.run(jobs)
	for _, ty := range types {
		var times []float64
		met, maxPhase := 0, 0
		n := 0
		for i, res := range results {
			if jobTy[i] != ty {
				continue
			}
			n++
			if res.Met {
				met++
				times = append(times, res.MeetTime.Float64())
				if jobPg[i].Phase > maxPhase {
					maxPhase = jobPg[i].Phase
				}
			}
		}
		sort.Float64s(times)
		med, max := math.NaN(), math.NaN()
		if len(times) > 0 {
			med = times[len(times)/2]
			max = times[len(times)-1]
		}
		t.Add(ty.String(), n, fmt.Sprintf("%d/%d", met, n), med, max, maxPhase)
	}
	t.Note("compact schedule; success must be n/n for every type (Theorem 3.2)")
	return t
}

// T3 reproduces the coverage comparison of §1.3 ("Our results"): which
// algorithm handles which instance class. AURV strictly contains the
// union of CGKK and Latecomers and misses only the boundary sets.
func T3(seed int64, nPerCell int, b Budgets) *report.Table {
	t := report.New("T3 — §1.3 coverage matrix (met k/n per cell)",
		"instance class", "CGKK", "Latecomers", "AURV", "Dedicated")
	g := inst.NewGen(seed)
	classes := []inst.Class{
		inst.ClassSimultaneousNonSync,
		inst.ClassSimultaneousRotated,
		inst.ClassLatecomer,
		inst.ClassMirrorInterior,
		inst.ClassClockDrift,
		inst.ClassRotatedDelayed,
		inst.ClassBoundaryS1,
		inst.ClassBoundaryS2,
	}
	algs := []struct {
		name string
		// wireName is the registered wire identity of the algorithm
		// (empty for Dedicated, whose per-instance closures cannot cross
		// a process boundary): cells with one may execute on the worker
		// fleet when Budgets.Dist is enabled.
		wireName string
		mk       func(in inst.Instance) (func() prog.Program, bool)
		// guaranteed reports whether the algorithm's contract covers the
		// class; uncovered cells get the miss budget.
		guaranteed func(in inst.Instance) bool
	}{
		{"CGKK", dist.AlgCGKK,
			func(inst.Instance) (func() prog.Program, bool) {
				return func() prog.Program { return cgkk.Program(cgkk.Compact()) }, true
			},
			cgkk.Covered},
		{"Latecomers", dist.AlgLatecomers,
			func(inst.Instance) (func() prog.Program, bool) {
				return func() prog.Program { return latecomers.Program() }, true
			},
			latecomers.Covered},
		{"AURV", dist.AlgAURVCompact,
			func(inst.Instance) (func() prog.Program, bool) {
				return func() prog.Program { return core.Program(core.Compact(), nil) }, true
			},
			inst.Instance.CoveredByAURV},
		{"Dedicated", "",
			func(in inst.Instance) (func() prog.Program, bool) {
				p, ok := dedicated.ForInstance(in, core.Compact())
				if !ok {
					return nil, false
				}
				return func() prog.Program { return p }, true
			},
			inst.Instance.Feasible},
	}
	// Fan the whole coverage matrix through the worker pool: one job per
	// (class, algorithm, sample) cell entry, then fold met counts per
	// cell in input order.
	type cellRef struct{ row, col int }
	var (
		jobs []batch.Job
		refs []cellRef
	)
	for row, c := range classes {
		samples := g.DrawN(c, nPerCell)
		for col, alg := range algs {
			for _, in := range samples {
				mk, ok := alg.mk(in)
				if !ok {
					continue
				}
				budget := b.MissSegments
				if alg.guaranteed(in) {
					budget = b.MeetSegments
				}
				j := progJob(in, mk, budget)
				if alg.wireName != "" && wire.Registered(alg.wireName) {
					j.Wire = &wire.Job{In: in, Alg: alg.wireName, Set: j.Settings}
				}
				jobs = append(jobs, j)
				refs = append(refs, cellRef{row, col})
			}
		}
	}
	results, _ := b.run(jobs)
	met := make(map[cellRef]int, len(classes)*len(algs))
	for i, res := range results {
		if res.Met {
			met[refs[i]]++
		}
	}
	for row, c := range classes {
		cells := make([]any, 0, len(algs)+1)
		cells = append(cells, c.String())
		for col := range algs {
			cells = append(cells, fmt.Sprintf("%d/%d", met[cellRef{row, col}], nPerCell))
		}
		t.Add(cells...)
	}
	t.Note("cells outside an algorithm's contract run under a %d-segment budget; 0/n there means no accidental rendezvous within it", b.MissSegments)
	t.Note("boundary classes use generic (non-dyadic) directions; AURV meets aligned boundary instances only — see T4")
	return t
}

// T4 validates Section 4 and Theorem 4.1: boundary behaviour and the
// adversarial construction.
func T4(seed int64, b Budgets) *report.Table {
	t := report.New("T4 — Section 4: exception sets and Theorem 4.1",
		"check", "detail", "result")
	g := inst.NewGen(seed)

	// All four sections' runs are independent; build them in serial
	// order, run them as one batch, and fold the verdicts afterwards.
	const n = 5
	s2 := g.DrawN(inst.ClassBoundaryS2, n)
	s1 := g.DrawN(inst.ClassBoundaryS1, n)

	var jobs []batch.Job
	for _, in := range s2 {
		j, _ := aurvJob(in, b.MissSegments)
		jobs = append(jobs, j)
		jobs = append(jobs, progJob(in, func() prog.Program { return dedicated.S2Program(in) }, 10_000))
	}
	for _, in := range s1 {
		j, _ := aurvJob(in, b.MissSegments)
		jobs = append(jobs, j)
		jobs = append(jobs, progJob(in, func() prog.Program { return dedicated.S1Program(in) }, 10_000))
	}
	// 3. Theorem 4.1 adversary: a defeating S2 instance for AURV's
	// inspected prefix (the construction itself is serial; only its
	// verification run joins the batch).
	const horizon = 50_000
	d := adversary.DefeatingInstance(core.Program(core.Compact(), nil), horizon, 0.5, 2.0)
	jobs = append(jobs, progJob(d.Instance, func() prog.Program { return core.Program(core.Compact(), nil) }, horizon))
	// 4. The aligned-direction caveat: AURV does meet an S1 instance whose
	// target direction lies exactly on its dyadic grid.
	aligned := inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, Chi: 1}
	aligned.T = aligned.Dist() - aligned.R
	alignedJob, _ := aurvJob(aligned, b.MeetSegments)
	jobs = append(jobs, alignedJob)

	results, _ := b.run(jobs)

	// 1. Generic S2 instances: AURV does not meet; dedicated meets at
	// gap exactly r within the Lemma 3.9 bound.
	okAURV, okDed := 0, 0
	for i, in := range s2 {
		if !results[2*i].Met {
			okAURV++
		}
		dres := results[2*i+1]
		if dres.Met && math.Abs(dres.EndA.Dist(dres.EndB)-in.R) < 1e-5 &&
			dres.MeetTime.Float64() <= dedicated.S2MeetTimeBound(in)+1e-6 {
			okDed++
		}
	}
	t.Add("S2: AURV misses (generic φ)", fmt.Sprintf("budget %d segs", b.MissSegments), fmt.Sprintf("%d/%d", okAURV, n))
	t.Add("S2: dedicated meets at gap=r", "Lemma 3.9 algorithm, time ≤ h+2t", fmt.Sprintf("%d/%d", okDed, n))

	// 2. Same for S1.
	okAURV, okDed = 0, 0
	for i, in := range s1 {
		if !results[2*n+2*i].Met {
			okAURV++
		}
		dres := results[2*n+2*i+1]
		if dres.Met && math.Abs(dres.MeetTime.Float64()-dedicated.S1MeetTime(in)) < 1e-5 {
			okDed++
		}
	}
	t.Add("S1: AURV misses (generic angle)", fmt.Sprintf("budget %d segs", b.MissSegments), fmt.Sprintf("%d/%d", okAURV, n))
	t.Add("S1: dedicated meets at t=d-r", "head-to-target algorithm", fmt.Sprintf("%d/%d", okDed, n))

	res := results[4*n]
	verdict := "defeated"
	if res.Met {
		verdict = "FAILED (met)"
	}
	t.Add("Thm 4.1: adversarial φ/2 defeats AURV",
		fmt.Sprintf("inclination %.4f, margin %.2e rad, horizon %d", d.Inclination, d.Margin, horizon), verdict)

	ares := results[4*n+1]
	verdict = "met at gap exactly r"
	if !ares.Met {
		verdict = "no meet"
	}
	t.Add("S1 aligned (dyadic direction)", "universality fails only on generic directions", verdict)
	return t
}

// T5 validates the measure-theoretic smallness argument of Section 4.
// The Monte-Carlo sweep fans out over b.Workers goroutines (0 selects
// GOMAXPROCS) — or, when b.Dist names a worker fleet, ships its chunks
// to worker processes over the wire — with a worker-count-independent
// chunking, so the table is byte-identical for any parallelism degree
// and any fleet shape.
func T5(samples int, seed int64, b Budgets) *report.Table {
	t := report.New("T5 — Section 4: exception sets are slim",
		"quantity", "value", "theory")
	eps := []float64{0.25, 0.35, 0.5}
	// The Monte-Carlo chunks distribute over the same worker fleet as
	// the simulation batches (b.Fleet / b.Dist); without a fleet — or
	// if the fleet fails — they run on the in-process pool,
	// byte-identically.
	s := b.sweep(samples, eps, measure.DefaultBox(), seed)
	t.Add("samples", s.Samples, "-")
	t.Add("feasible share", fmt.Sprintf("%.3f", s.FeasibleShare), "> 0 (fat set)")
	t.Add("exact S1 hits", s.ExactS1, "0 (measure zero)")
	t.Add("exact S2 hits", s.ExactS2, "0 (measure zero)")
	if sl, ok := measure.FitExponent(s.NearS2ByEps); ok {
		t.Add("S2 ε-neighborhood exponent", fmt.Sprintf("%.2f", sl), fmt.Sprintf("%d (codim)", measure.CodimS2))
	}
	if sl, ok := measure.FitExponent(s.NearS1ByEps); ok {
		t.Add("S1 ε-neighborhood exponent", fmt.Sprintf("%.2f", sl), fmt.Sprintf("%d (codim)", measure.CodimS1))
	}
	for _, e := range eps {
		t.Add(fmt.Sprintf("near-S2 hits (ε=%.2f)", e), s.NearS2ByEps[e], "∝ ε^3")
	}
	t.Note("a continuous box hits the synchronous slice (τ = v = 1) with probability 0, so Theorem 3.1(1) makes almost every sample feasible — the share ≈ 1 restates the theorem")
	t.Note("sampling uses the chunked parallel sweep (fixed %d-sample chunks, per-chunk splitmix streams): values are identical for every worker count but differ from the pre-batch single-stream sampler", measure.SweepChunk)
	return t
}

// T6 probes the sharpness of the feasibility boundary (an ablation this
// reproduction adds): sweeping the delay t across the S2 threshold
// t* = projGap − r, the outcome flips exactly at the boundary —
//
//	δ = t − t* < 0:  infeasible, nobody meets (Theorem 3.1 2c);
//	δ = 0:           only the dedicated algorithm meets (S2, Thm 4.1);
//	δ > 0:           the universal algorithm meets too (Theorem 3.2).
func T6(seed int64, b Budgets) *report.Table {
	t := report.New("T6 — boundary sharpness: delay sweep across t* = projGap − r",
		"δ = t - t*", "feasible", "AURV", "dedicated")
	base := inst.Instance{R: 0.5, X: 2, Y: 1, Phi: 0.8, Tau: 1, V: 1, Chi: -1}
	tStar := base.ProjGap() - base.R
	for _, delta := range []float64{-0.2, -0.05, 0, 0.05, 0.2} {
		in := base
		in.T = tStar + delta
		aurvBudget := b.MissSegments
		if delta > 0 {
			aurvBudget = b.MeetSegments
		}
		res, _ := runAURV(in, aurvBudget)
		aurv := "no meet"
		if res.Met {
			aurv = fmt.Sprintf("met t=%.3g", res.MeetTime.Float64())
		}
		ded := "n/a (infeasible)"
		if p, ok := dedicated.ForInstance(in, core.Compact()); ok {
			budget := b.MissSegments
			if in.Feasible() {
				budget = b.MeetSegments
			}
			dres := runProg(in, func() prog.Program { return p }, budget)
			ded = "no meet"
			if dres.Met {
				ded = fmt.Sprintf("met t=%.3g (gap %.4g)", dres.MeetTime.Float64(), dres.EndA.Dist(dres.EndB))
			}
		}
		t.Add(fmt.Sprintf("%+.2f", delta), in.Feasible(), aurv, ded)
	}
	t.Note("base instance %v, threshold t* = %.4f", base, tStar)
	return t
}
