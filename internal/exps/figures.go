package exps

import (
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dedicated"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/svg"
	"repro/internal/wire"
)

// Figures regenerates the paper's five figures as SVG documents, keyed
// "fig1" … "fig5". Each is drawn from computed geometry or actually
// simulated trajectories, not hand-placed artwork.
func Figures() map[string]string { return FiguresWith(0) }

// FiguresWith regenerates the figures, fanning the simulated runs
// behind Fig4 and Fig5 through the batch pool with the given worker
// count (0 selects GOMAXPROCS). Output is identical for every count.
func FiguresWith(workers int) map[string]string {
	return FiguresDist(Budgets{Workers: workers})
}

// FiguresDist is FiguresWith with an optional worker fleet
// (Budgets.Dist): Fig4's wire-formed AURV run may execute in a worker
// process — its recorded trajectory crosses the codec bit-exactly —
// while Fig5's closure-built dedicated algorithm stays in-process.
// Output is identical either way.
func FiguresDist(b Budgets) map[string]string {
	jobs := []batch.Job{fig4Job(), fig5Job()}
	res, _ := b.run(jobs)
	return map[string]string{
		"fig1": Fig1(),
		"fig2": Fig2(),
		"fig3": Fig3(),
		"fig4": fig4Render(res[0]),
		"fig5": fig5Render(res[1]),
	}
}

// axes draws a small coordinate frame at p: x-axis along angle a, y-axis
// rotated by +90° (χ=1) or -90° (χ=-1).
func axes(c *svg.Canvas, p geom.Vec2, a float64, chi int, size float64, color, label string) {
	x := geom.Polar(a).Scale(size)
	y := x.Perp()
	if chi < 0 {
		y = y.Neg()
	}
	st := svg.Style{Stroke: color, Width: 1.6}
	c.Arrow(p, p.Add(x), st)
	c.Arrow(p, p.Add(y), st)
	c.Text(p.Add(x).Add(geom.V(0.06, 0.06)), "x", 13, color)
	c.Text(p.Add(y).Add(geom.V(0.06, 0.06)), "y", 13, color)
	if label != "" {
		c.Dot(p, 3.5, color)
		c.Text(p.Add(geom.V(-0.16, -0.2)), label, 15, color)
	}
}

// Fig1 — the geometric setting of an instance with different chiralities:
// the two private frames, the bisectrix D of the x-axes, and the
// canonical line L (Definition 2.1).
func Fig1() string {
	in := inst.Instance{R: 0.4, X: 2.2, Y: 1.0, Phi: 1.9, Tau: 1, V: 1, T: 0.8, Chi: -1}
	c := svg.New(640, 480, -1.6, -1.2, 3.8, 2.8)
	a := geom.V(0, 0)
	b := in.B0()
	axes(c, a, 0, 1, 0.9, "black", "A")
	axes(c, b, in.Phi, in.Chi, 0.9, "black", "B")
	// Bisectrix D: through A's origin at angle φ/2 (dashed).
	c.InfiniteLine(geom.LineAtAngle(a, in.Phi/2), svg.Style{Stroke: "#666", Dash: "6,5", Width: 1.2})
	c.Text(geom.V(-1.3, -0.9), "D", 15, "#666")
	// Canonical line L (solid).
	L := in.CanonicalLine()
	c.InfiniteLine(L, svg.Style{Stroke: "black", Width: 2})
	c.Text(L.Point.Add(L.Dir.Scale(1.6)).Add(geom.V(0.08, -0.22)), "L", 16, "black")
	return c.String()
}

// Fig2 — the three coordinate systems of Lemma 3.2's proof: Γ (agent A),
// Σ (rotated so its x-axis is parallel to L), and Rot_A(jπ/2^i) forming
// angle α with Σ.
func Fig2() string {
	in := inst.Instance{R: 0.5, X: 2.4, Y: 0.8, Phi: 2.4, Tau: 1, V: 1, T: 1.0, Chi: -1}
	c := svg.New(640, 480, -1.8, -1.5, 4.0, 2.6)
	a := geom.V(0, 0)
	b := in.B0()
	L := in.CanonicalLine()
	c.InfiniteLine(L, svg.Style{Stroke: "black", Width: 2})
	c.Text(L.Point.Add(L.Dir.Scale(1.8)).Add(geom.V(0.06, -0.2)), "L", 16, "black")
	// Projections.
	pa, pb := L.Project(a), L.Project(b)
	c.Dot(pa, 3, "#444")
	c.Dot(pb, 3, "#444")
	c.Text(pa.Add(geom.V(0.05, -0.28)), "projA", 12, "#444")
	c.Text(pb.Add(geom.V(0.05, -0.28)), "projB", 12, "#444")
	c.Line(a, pa, svg.Style{Stroke: "#bbb", Dash: "3,3", Width: 1})
	c.Line(b, pb, svg.Style{Stroke: "#bbb", Dash: "3,3", Width: 1})
	// Γ: A's frame (solid black). Σ: rotated to match L (dashed). Rot_A at
	// angle α from Σ (dotted → rendered dash "2,3").
	axes(c, a, 0, 1, 0.85, "black", "A")
	sigma := L.Inclination()
	alpha := math.Pi / 16
	xs := geom.Polar(sigma).Scale(1.1)
	c.Arrow(a, xs, svg.Style{Stroke: "#1660c8", Width: 1.4, Dash: "7,4"})
	c.Text(xs.Add(geom.V(0.06, 0)), "x (Σ)", 12, "#1660c8")
	xr := geom.Polar(sigma + alpha).Scale(1.1)
	c.Arrow(a, xr, svg.Style{Stroke: "#c22727", Width: 1.4, Dash: "2,3"})
	c.Text(xr.Add(geom.V(0.06, 0.1)), "x Rot(jπ/2^i)", 12, "#c22727")
	axes(c, b, in.Phi, in.Chi, 0.85, "black", "B")
	return c.String()
}

// Fig3 — the geometry of Claim 3.1: the angle α between the y-axis of
// Rot_A(jπ/2^i) and the perpendicular to L, and the intersection o of
// that y-axis with L.
func Fig3() string {
	in := inst.Instance{R: 0.5, X: 2.0, Y: 1.2, Phi: 1.2, Tau: 1, V: 1, T: 1.0, Chi: -1}
	c := svg.New(640, 480, -1.4, -1.4, 3.4, 2.6)
	a := geom.V(0, 0)
	b := in.B0()
	L := in.CanonicalLine()
	c.InfiniteLine(L, svg.Style{Stroke: "black", Width: 2})
	c.Text(L.Point.Add(L.Dir.Scale(1.5)).Add(geom.V(0.05, -0.2)), "L", 16, "black")
	pa, pb := L.Project(a), L.Project(b)
	c.Dot(a, 3.5, "black")
	c.Text(a.Add(geom.V(-0.25, -0.1)), "A", 14, "black")
	c.Dot(b, 3.5, "black")
	c.Text(b.Add(geom.V(0.08, 0.05)), "B", 14, "black")
	c.Dot(pa, 3, "#444")
	c.Text(pa.Add(geom.V(0.04, -0.28)), "projA", 12, "#444")
	c.Dot(pb, 3, "#444")
	c.Text(pb.Add(geom.V(0.04, -0.28)), "projB", 12, "#444")
	c.Line(a, pa, svg.Style{Stroke: "#999", Dash: "3,3", Width: 1})
	// The Rot_A system's y-axis, tilted α from the perpendicular to L,
	// meeting L at o.
	alpha := math.Pi / 14
	perp := L.Inclination() + math.Pi/2
	ydir := geom.Polar(perp + alpha)
	// Intersection o of the line a + s·(-ydir) with L.
	// Solve: signed distance of a to L equals s·cos(angle between -ydir
	// and the normal).
	h := L.SignedDistTo(a)
	s := h / ydir.Dot(geom.Polar(perp))
	o := a.Sub(ydir.Scale(s))
	c.Arrow(a, a.Add(ydir.Scale(1.0)), svg.Style{Stroke: "#c22727", Width: 1.5})
	c.Text(a.Add(ydir.Scale(1.0)).Add(geom.V(0.05, 0.05)), "y", 13, "#c22727")
	c.Line(a, o, svg.Style{Stroke: "#c22727", Width: 1.2, Dash: "5,4"})
	c.Dot(o, 3.2, "#c22727")
	c.Text(o.Add(geom.V(0.06, 0.12)), "o", 14, "#c22727")
	c.Text(a.Add(geom.V(0.12, -0.42)), "α", 14, "#c22727")
	return c.String()
}

// tracedJob builds an AURV batch job on the instance with trajectory
// recording enabled. The job is wire-formed: trace recording is part of
// the settings, so a worker process records (and ships back) exactly
// the trajectory an in-process run would have.
func tracedJob(in inst.Instance, maxSeg, cap int) batch.Job {
	set := settings(maxSeg)
	set.TraceCap = cap
	s := core.Compact()
	j := batch.Job{
		A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: core.Program(s, nil), Radius: in.R},
		B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: core.Program(s, nil), Radius: in.R},
		Settings: set,
	}
	if wire.Registered(dist.AlgAURVCompact) {
		j.Wire = &wire.Job{In: in, Alg: dist.AlgAURVCompact, Set: set}
	}
	return j
}

// fig4Instance is the simulated type-1 instance behind Fig4.
func fig4Instance() inst.Instance {
	return inst.Instance{R: 0.9, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: -1}
}

// fig4Job builds Fig4's simulation run.
func fig4Job() batch.Job { return tracedJob(fig4Instance(), 200_000_000, 4096) }

// Fig4 — Lemma 3.2's endgame on an actually simulated type-1 instance:
// the mirrored trajectories on both sides of the canonical line, the
// meeting point, and the projections.
func Fig4() string {
	j := fig4Job()
	return fig4Render(sim.Run(j.A, j.B, j.Settings))
}

// fig4Render draws the figure from the completed simulation.
func fig4Render(res sim.Result) string {
	in := fig4Instance()
	L := in.CanonicalLine()
	// Viewport around the action.
	minX, maxX := -2.5, 3.5
	minY, maxY := -2.5, 2.5
	c := svg.New(720, 600, minX, minY, maxX, maxY)
	c.InfiniteLine(L, svg.Style{Stroke: "black", Width: 2})
	c.Text(geom.V(maxX-0.5, L.Project(geom.V(maxX-0.5, 0)).Y+0.15), "L", 16, "black")
	plot := func(tr []sim.TracePoint, color string) {
		pts := make([]geom.Vec2, len(tr))
		for i, p := range tr {
			pts[i] = p.Pos
		}
		c.Polyline(pts, svg.Style{Stroke: color, Width: 1})
	}
	plot(res.TraceA, "#1660c8")
	plot(res.TraceB, "#c22727")
	c.Dot(geom.V(0, 0), 4, "#1660c8")
	c.Text(geom.V(-0.3, -0.25), "A", 14, "#1660c8")
	c.Dot(in.B0(), 4, "#c22727")
	c.Text(in.B0().Add(geom.V(0.08, 0.08)), "B", 14, "#c22727")
	if res.Met {
		c.Circle(res.EndA, in.R, svg.Style{Stroke: "#2a8f2a", Width: 1.2, Dash: "4,3"})
		c.Dot(res.EndA, 4, "#2a8f2a")
		c.Dot(res.EndB, 4, "#2a8f2a")
		c.Text(res.EndA.Add(geom.V(0.1, -0.3)), "rendezvous", 13, "#2a8f2a")
	}
	return c.String()
}

// fig5Instance is the S2 boundary instance behind Fig5.
func fig5Instance() inst.Instance {
	in := inst.Instance{R: 0.5, X: 2, Y: 1, Phi: 0.8, Tau: 1, V: 1, Chi: -1}
	in.T = in.ProjGap() - in.R
	return in
}

// fig5Job builds Fig5's simulation run: the dedicated S2 algorithm with
// trajectory recording.
func fig5Job() batch.Job {
	in := fig5Instance()
	set := settings(100_000)
	set.TraceCap = 1024
	mk := func() prog.Program { return dedicated.S2Program(in) }
	return batch.Job{
		A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: mk(), Radius: in.R},
		B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: mk(), Radius: in.R},
		Settings: set,
	}
}

// Fig5 — the two cases of Lemma 3.9 on actually simulated S2 boundary
// runs: the agents walk to their projections on L and slide along it,
// meeting at distance exactly r.
func Fig5() string {
	j := fig5Job()
	return fig5Render(sim.Run(j.A, j.B, j.Settings))
}

// fig5Render draws the figure from the completed simulation.
func fig5Render(res sim.Result) string {
	in := fig5Instance()
	L := in.CanonicalLine()
	c := svg.New(720, 560, -1.2, -1.0, 3.4, 2.6)
	c.InfiniteLine(L, svg.Style{Stroke: "black", Width: 2})
	c.Text(geom.V(3.0, L.Project(geom.V(3.0, 0)).Y+0.18), "L", 16, "black")
	plot := func(tr []sim.TracePoint, color string) {
		pts := make([]geom.Vec2, len(tr))
		for i, p := range tr {
			pts[i] = p.Pos
		}
		c.Polyline(pts, svg.Style{Stroke: color, Width: 1.6})
	}
	plot(res.TraceA, "#1660c8")
	plot(res.TraceB, "#c22727")
	c.Dot(geom.V(0, 0), 4, "#1660c8")
	c.Text(geom.V(-0.25, -0.2), "A", 14, "#1660c8")
	c.Dot(in.B0(), 4, "#c22727")
	c.Text(in.B0().Add(geom.V(0.08, 0.08)), "B", 14, "#c22727")
	pa, pb := L.Project(geom.V(0, 0)), L.Project(in.B0())
	c.Dot(pa, 3, "#444")
	c.Text(pa.Add(geom.V(0.05, -0.3)), "projA", 12, "#444")
	c.Dot(pb, 3, "#444")
	c.Text(pb.Add(geom.V(0.05, -0.3)), "projB", 12, "#444")
	if res.Met {
		c.Circle(res.EndA, in.R, svg.Style{Stroke: "#2a8f2a", Width: 1.2, Dash: "4,3"})
		c.Dot(res.EndA, 4, "#2a8f2a")
		c.Dot(res.EndB, 4, "#2a8f2a")
		c.Text(res.EndA.Add(geom.V(0.1, 0.25)), "gap = r", 13, "#2a8f2a")
	}
	return c.String()
}
