package sim_test

// Differential tests for the cursor fast path: the simulator must
// produce byte-identical Results whether it drains a program through
// the direct-call cursor engine or through the iter.Pull coroutine
// fallback (forced with prog.Opaque). Both engines share the
// wait-coalescing logic in loadSegment, so the comparison is exact in
// both accounting modes; a separate check pins what coalescing is
// allowed to change relative to per-instruction accounting (Segments
// only — the trajectory outcomes must survive).

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cgkk"
	"repro/internal/core"
	"repro/internal/inst"
	"repro/internal/latecomers"
	"repro/internal/prog"
	"repro/internal/sim"
)

// diffCase is one simulation whose cursor and pull runs are compared.
type diffCase struct {
	name string
	in   inst.Instance
	mk   func() prog.Program // fresh program per agent per run
}

func diffCases() []diffCase {
	aurv := func() prog.Program { return core.Program(core.Compact(), nil) }
	return []diffCase{
		{"type2-latecomer", inst.Instance{R: 1.0, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: 1}, aurv},
		{"type3-clock-drift", inst.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1}, aurv},
		{"type4-rotated", inst.Instance{R: 0.8, X: 0.9, Y: 0.2, Phi: 1.1, Tau: 1, V: 1, T: 1.5, Chi: 1}, aurv},
		{"type1-mirror", inst.Instance{R: 0.9, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: -1},
			func() prog.Program { return core.Program(core.Compact(), nil) }},
		{"cgkk-substrate", inst.Instance{R: 0.6, X: 1.0, Y: 0.2, Phi: 1.2, Tau: 1, V: 1, T: 0, Chi: 1},
			func() prog.Program { return cgkk.Program(cgkk.Compact()) }},
		{"latecomers-substrate", inst.Instance{R: 0.8, X: 0.9, Y: 0.3, Phi: 0, Tau: 1, V: 1, T: 1.2, Chi: 1},
			func() prog.Program { return latecomers.Program() }},
		// A non-meeting run: the comparison must also hold when the
		// segment budget, not a rendezvous, ends the run.
		{"no-meet-budget", inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0.7, Chi: 1}, aurv},
	}
}

func runCase(c diffCase, opaque, noCoalesce bool) sim.Result {
	set := sim.DefaultSettings()
	set.MaxSegments = 3_000_000
	set.NoWaitCoalesce = noCoalesce
	mk := func() prog.Program {
		p := c.mk()
		if opaque {
			p = prog.Opaque(p)
		}
		return p
	}
	a := sim.AgentSpec{Attrs: c.in.AgentA(), Prog: mk(), Radius: c.in.R}
	b := sim.AgentSpec{Attrs: c.in.AgentB(), Prog: mk(), Radius: c.in.R}
	return sim.Run(a, b, set)
}

// TestCursorVsPullByteIdentical: the tentpole guarantee. For every case
// and both accounting modes, the cursor engine and the iter.Pull
// fallback produce identical Results in every field.
func TestCursorVsPullByteIdentical(t *testing.T) {
	for _, c := range diffCases() {
		for _, noCoalesce := range []bool{false, true} {
			fast := runCase(c, false, noCoalesce)
			slow := runCase(c, true, noCoalesce)
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("%s (noCoalesce=%v): cursor and pull results differ\ncursor: %+v\npull:   %+v",
					c.name, noCoalesce, fast, slow)
			}
		}
	}
}

// TestWaitCoalescingAccounting pins what coalescing may change versus
// per-instruction accounting: Segments can only shrink, and the
// trajectory outcomes (Met, MeetTime, MinGap) must be preserved to
// analytic tolerance (coalescing merges event intervals, which can move
// float64 rounding by ulps; anything larger is a bug).
func TestWaitCoalescingAccounting(t *testing.T) {
	for _, c := range diffCases() {
		fused := runCase(c, false, false)
		plain := runCase(c, false, true)
		if fused.Met != plain.Met || fused.Reason != plain.Reason {
			t.Errorf("%s: outcome changed by coalescing: %v vs %v", c.name, fused, plain)
			continue
		}
		if fused.Segments > plain.Segments {
			t.Errorf("%s: coalescing increased segments: %d > %d", c.name, fused.Segments, plain.Segments)
		}
		if fused.Met {
			ft, pt := fused.MeetTime.Float64(), plain.MeetTime.Float64()
			if math.Abs(ft-pt) > 1e-9*math.Max(1, math.Abs(pt)) {
				t.Errorf("%s: meet time drifted: %v vs %v", c.name, ft, pt)
			}
		}
		if math.Abs(fused.MinGap-plain.MinGap) > 1e-9*math.Max(1, plain.MinGap) {
			t.Errorf("%s: min gap drifted: %v vs %v", c.name, fused.MinGap, plain.MinGap)
		}
	}
}

// TestProgressEquivalence: the phase/block observer must report the
// same final position on both engines.
func TestProgressEquivalence(t *testing.T) {
	in := inst.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1}
	run := func(opaque bool) core.Progress {
		var pg core.Progress
		p := core.Program(core.Compact(), &pg)
		if opaque {
			p = prog.Opaque(p)
		}
		set := sim.DefaultSettings()
		set.MaxSegments = 3_000_000
		a := sim.AgentSpec{Attrs: in.AgentA(), Prog: p, Radius: in.R}
		b := sim.AgentSpec{Attrs: in.AgentB(), Prog: core.Program(core.Compact(), nil), Radius: in.R}
		sim.Run(a, b, set)
		return pg
	}
	fast, slow := run(false), run(true)
	if fast != slow {
		t.Errorf("progress differs between engines: %+v vs %+v", fast, slow)
	}
	if fast.Phase == 0 || fast.Block == 0 {
		t.Errorf("progress never fired: %+v", fast)
	}
}

// TestCoalescedWaitRunKept: a program ending in a run of waits must
// still execute them (the fused segment plays out; exhaustion is only
// reported afterwards). The moving agent reaches the target during the
// fused wait window.
func TestCoalescedWaitRunKept(t *testing.T) {
	waits := prog.Instrs(prog.Wait(3), prog.Wait(3), prog.Wait(3), prog.Wait(100))
	mover := prog.Instrs(prog.Wait(5), prog.Move(prog.East, 50))
	ain := inst.Instance{R: 0.5, X: 10, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	a := sim.AgentSpec{Attrs: ain.AgentA(), Prog: mover, Radius: 0.5}
	b := sim.AgentSpec{Attrs: ain.AgentB(), Prog: waits, Radius: 0.5}
	res := sim.Run(a, b, sim.DefaultSettings())
	if !res.Met {
		t.Fatalf("no meeting through fused waits: %v", res)
	}
	// B idles at (10,0); A starts moving at t=5 and closes 10 → 0.5.
	if got := res.MeetTime.Float64(); math.Abs(got-14.5) > 1e-6 {
		t.Errorf("meet time %v, want 14.5", got)
	}
}
