// Package sim is the exact continuous-time simulator for two mobile
// agents executing move/wait programs in the plane.
//
// The simulator is event-driven: each agent's lazy program is converted
// into a stream of absolute-time segments (constant-velocity intervals),
// the two streams are merged by time, and on every overlap interval the
// first time the inter-agent gap reaches the sight radius is computed
// analytically (a quadratic root — see geom.FirstWithin). A wait of
// 2^60 time units therefore costs exactly one event, which is what makes
// the paper's astronomically scheduled algorithms simulable at all.
//
// Instructions are pulled through the prog cursor engine: cursor-backed
// programs (every prog combinator) are drained by direct calls, and only
// opaque hand-written push closures fall back to an iter.Pull coroutine.
// Consecutive wait instructions are fused into a single segment (wait
// coalescing), so a run of padding and scheduling waits costs one event
// and one Segments unit instead of many; Settings.NoWaitCoalesce
// restores the one-segment-per-instruction accounting.
//
// Absolute time is accumulated in double-double precision (internal/dd),
// so sight events remain resolvable long after a float64 clock would have
// lost sub-unit resolution.
//
// Rendezvous semantics follow the paper: agents stop forever as soon as
// they see each other (gap ≤ r). The Section 5 extension with distinct
// radii r₁ ≥ r₂ is supported: the far-sighted agent freezes first, the
// other keeps executing until the gap reaches its own radius.
package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dd"
	"repro/internal/geom"
	"repro/internal/phys"
	"repro/internal/prog"
)

// AgentSpec describes one agent: its physical attributes, the program it
// executes, and its sight radius.
type AgentSpec struct {
	Attrs  phys.Attributes
	Prog   prog.Program
	Radius float64
}

// Settings bound a simulation run.
type Settings struct {
	// MaxTime aborts the run when the absolute clock passes it.
	MaxTime float64
	// MaxSegments aborts the run after this many program segments have
	// been consumed across both agents.
	MaxSegments int
	// SightSlack is the relative tolerance added to each radius when
	// detecting sight: the effective radius is r·(1+SightSlack)+1e-12.
	// Boundary instances of the paper attain gap == r exactly in real
	// arithmetic; the slack absorbs float64 rounding. Default 1e-9.
	SightSlack float64
	// TraceCap, when positive, records up to this many trajectory points
	// per agent (decimated by stride doubling when exceeded).
	TraceCap int
	// Parallelism is the worker count used by batch execution
	// (rendezvous.SimulateBatch and internal/batch); a single Run ignores
	// it. 0 or negative selects GOMAXPROCS. The batch engine guarantees
	// results are identical for every value — scheduling changes only
	// wall-clock time, never an outcome.
	Parallelism int
	// NoBatchMemoize disables batch-level memoization in
	// rendezvous.SimulateBatch (duplicate instances sharing one pure
	// result). Set it when the Algorithm's Program factory wires up
	// per-job observable side effects (e.g. a progress observer per
	// job) that must fire for every duplicate. A single Run ignores it.
	NoBatchMemoize bool
	// NoWaitCoalesce disables the fusing of consecutive wait
	// instructions into a single segment. Coalescing never changes the
	// trajectories — a fused wait occupies exactly the local time of its
	// parts — but it does change Segments accounting (a fused run counts
	// once) and can merge event intervals, which may move float64
	// rounding by ulps on runs whose other agent is moving through the
	// fused span. Set it for instruction-exact differential comparisons.
	NoWaitCoalesce bool
	// Hosts, when non-empty, distributes batch execution over the
	// worker processes listening at these comma-separated TCP
	// endpoints (see internal/dist and cmd/rvworker). Like Parallelism
	// it is a batch-level knob that a single Run ignores, and like
	// every scheduling knob it cannot change a result — a distributed
	// batch is byte-identical to an in-process serial one.
	Hosts string
	// WorkerProcs, when positive, spawns this many local worker
	// subprocesses for batch execution (frames over stdio pipes).
	// Combines with Hosts; a single Run ignores it.
	WorkerProcs int
	// WorkerCmd overrides the command line used to spawn local worker
	// subprocesses (whitespace-split). Empty selects the current
	// executable re-executed in worker mode — single-binary deploys for
	// any main that calls dist.MaybeServeStdio early. A single Run
	// ignores it.
	WorkerCmd string
	// Window is the number of jobs a distributed coordinator keeps in
	// flight per worker connection (pipelined dispatch — see
	// internal/dist): deeper windows hide network latency and keep a
	// worker's in-process pool fed. A positive value fixes the window
	// there; 1 restores strictly synchronous request/response dispatch.
	// 0 selects adaptive windows: each connection starts at the default
	// (currently 4) and grows or shrinks with its observed reply RTT
	// and service rate, bounded by MaxWindow. Like every scheduling
	// knob it cannot change a result, and both a single Run and an
	// in-process batch ignore it.
	Window int
	// MaxWindow bounds how far an adaptive window (Window == 0) may
	// grow per connection. 0 selects the default (currently 32);
	// negative disables adaptation, pinning every connection at the
	// default window. Ignored when Window is positive. Pure scheduling:
	// no value can change a result.
	MaxWindow int
	// StallTimeout is the distributed coordinator's liveness deadline:
	// a worker connection with jobs in flight that produces no frame —
	// not even a heartbeat echo — for max(StallTimeout, a multiple of
	// the observed RTT) is declared hung, its window requeued to the
	// survivors. 0 selects the default (currently 30s); negative
	// disables stall detection. Failure handling is pure scheduling: a
	// requeued job recomputes the identical pure result elsewhere, so
	// no value can change a byte of output. A single Run and an
	// in-process batch ignore it.
	StallTimeout time.Duration
	// MaxJobRequeues is the distributed coordinator's poison-job
	// quarantine threshold: a job whose dispatch has been requeued by
	// the deaths or stalls of this many distinct fleet slots is
	// quarantined — surfaced as a deterministic per-job error — instead
	// of being retried into every remaining worker's respawn budget.
	// 0 selects the default (currently 2); negative disables the
	// quarantine. A single Run and an in-process batch ignore it.
	MaxJobRequeues int
	// Compress asks the distributed coordinator to negotiate flate
	// frame compression with every worker that advertises the
	// capability (wire v6), shrinking large frames — trace-carrying
	// results above all — on bandwidth-starved links. Transport only:
	// payloads decode bit-exactly, so no value can change a byte of
	// output. A single Run and an in-process batch ignore it.
	Compress bool
}

// DefaultSettings returns permissive bounds suitable for tests:
// MaxTime 1e18, 50M segments, 1e-9 slack, no trace.
func DefaultSettings() Settings {
	return Settings{MaxTime: 1e18, MaxSegments: 50_000_000, SightSlack: 1e-9}
}

// StopReason tells why a run ended.
type StopReason int

const (
	// ReasonMet: rendezvous achieved.
	ReasonMet StopReason = iota
	// ReasonMaxTime: the absolute clock exceeded Settings.MaxTime.
	ReasonMaxTime
	// ReasonMaxSegments: the segment budget was exhausted.
	ReasonMaxSegments
	// ReasonProgramsEnded: both programs terminated (or froze) without
	// rendezvous; the gap can never change again.
	ReasonProgramsEnded
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case ReasonMet:
		return "met"
	case ReasonMaxTime:
		return "max-time"
	case ReasonMaxSegments:
		return "max-segments"
	case ReasonProgramsEnded:
		return "programs-ended"
	}
	return "unknown"
}

// TracePoint is one recorded trajectory sample.
type TracePoint struct {
	T   float64
	Pos geom.Vec2
}

// Result summarizes a run.
type Result struct {
	Met        bool
	Reason     StopReason
	MeetTime   dd.T      // absolute meeting time (valid when Met)
	MinGap     float64   // minimum gap ever observed
	MinGapTime dd.T      // when the minimum occurred
	EndA, EndB geom.Vec2 // final positions
	Segments   int       // total program segments consumed
	EndTime    dd.T      // absolute time when the run stopped
	TraceA     []TracePoint
	TraceB     []TracePoint
}

// CloneTraces returns the result with freshly copied trace slices, so
// the copy can be handed to a caller that may rescale trace points in
// place without corrupting the original (batch memoization shares one
// computed result across duplicate jobs this way).
func (r Result) CloneTraces() Result {
	if r.TraceA != nil {
		r.TraceA = append([]TracePoint(nil), r.TraceA...)
	}
	if r.TraceB != nil {
		r.TraceB = append([]TracePoint(nil), r.TraceB...)
	}
	return r
}

// String renders a one-line summary.
func (r Result) String() string {
	if r.Met {
		return fmt.Sprintf("met at t=%.6g (gap min %.6g, %d segments)",
			r.MeetTime.Float64(), r.MinGap, r.Segments)
	}
	return fmt.Sprintf("no meeting (%v): min gap %.6g at t=%.6g after %d segments",
		r.Reason, r.MinGap, r.MinGapTime.Float64(), r.Segments)
}

// waitFuseLimit caps how many consecutive wait instructions a single
// segment may absorb, bounding the work per loadSegment call on
// pathological all-wait programs when MaxTime is unbounded.
const waitFuseLimit = 4096

// runner is the per-agent execution state.
type runner struct {
	attrs  phys.Attributes
	cur    prog.Cursor // instruction source (cursor fast path or iter.Pull adapter)
	radius float64     // effective sight radius

	pos     geom.Vec2 // position at segStart
	vel     geom.Vec2 // velocity during the current segment
	segEnd  dd.T      // absolute end of the current segment
	local   dd.T      // local time consumed so far (for exact end times)
	frozen  bool      // saw the other agent (or program ended): never moves again
	ended   bool      // no further segments will load
	srcDone bool      // the instruction source is exhausted

	pending    prog.Instr // look-ahead instruction buffered by wait coalescing
	hasPending bool
	coalesce   bool
	maxTime    dd.T // fusing horizon: waits beyond it cannot matter

	trace   []TracePoint
	stride  int
	skipped int
	cap     int
}

func newRunner(spec AgentSpec, slack float64, traceCap int, maxTime dd.T, coalesce bool) *runner {
	r := &runner{
		attrs:    spec.Attrs,
		cur:      prog.NewCursor(spec.Prog),
		radius:   spec.Radius*(1+slack) + 1e-12,
		pos:      spec.Attrs.Origin,
		segEnd:   dd.FromFloat(spec.Attrs.Wake),
		coalesce: coalesce,
		maxTime:  maxTime,
		stride:   1,
		cap:      traceCap,
	}
	r.record(0)
	return r
}

// stop releases the runner's instruction source (idempotent).
func (r *runner) stop() { r.cur.Close() }

// take returns the next program instruction, honoring the look-ahead
// buffer filled by wait coalescing.
func (r *runner) take() (prog.Instr, bool) {
	if r.hasPending {
		r.hasPending = false
		return r.pending, true
	}
	if r.srcDone {
		return prog.Instr{}, false
	}
	ins, ok := r.cur.Next()
	if !ok {
		r.srcDone = true
	}
	return ins, ok
}

// record appends a decimated trace point at absolute time t.
func (r *runner) record(t float64) {
	if r.cap <= 0 {
		return
	}
	r.skipped++
	if r.skipped < r.stride {
		return
	}
	r.skipped = 0
	if len(r.trace) >= r.cap {
		// Halve the density, double the stride.
		kept := r.trace[:0]
		for i := 0; i < len(r.trace); i += 2 {
			kept = append(kept, r.trace[i])
		}
		r.trace = kept
		r.stride *= 2
	}
	r.trace = append(r.trace, TracePoint{t, r.pos})
}

// advanceTo moves the runner's position to absolute time t (≤ segEnd).
func (r *runner) advanceTo(now dd.T, t dd.T) {
	if r.vel == (geom.Vec2{}) {
		return
	}
	dt := t.Sub(now).Float64()
	r.pos = r.pos.Add(r.vel.Scale(dt))
}

// loadSegment pulls the next instruction and installs the segment
// starting at the given absolute time. Returns false when the program is
// exhausted. With coalescing enabled, a wait instruction absorbs every
// immediately following wait (up to waitFuseLimit, and only while the
// segment end stays below the MaxTime horizon), so runs of scheduling
// waits cost a single segment; the first non-wait look-ahead is buffered
// for the next call. Local time is accumulated per instruction either
// way, so fused and unfused runs agree on every boundary exactly.
func (r *runner) loadSegment(start dd.T) bool {
	for {
		ins, ok := r.take()
		if !ok {
			r.ended = true
			r.vel = geom.Vec2{}
			return false
		}
		if ins.Amount <= 0 {
			continue
		}
		r.local = r.local.AddFloat(ins.Duration())
		if ins.Op == prog.OpWait {
			r.vel = geom.Vec2{}
			if r.coalesce {
				r.fuseWaits()
			}
		} else {
			r.vel = r.attrs.AbsVelocity(ins.Theta)
		}
		// Absolute end = wake + τ·local, computed from the exact local
		// accumulator so long schedules do not drift.
		r.segEnd = r.local.MulFloat(r.attrs.Tau).AddFloat(r.attrs.Wake)
		r.record(start.Float64())
		return true
	}
}

// fuseWaits extends the current wait segment over every immediately
// following wait instruction. Each absorbed wait is added to the local
// clock individually, preserving the exact dd accumulation order of the
// unfused path. Fusing stops at the first non-wait (buffered as pending),
// at source exhaustion, at waitFuseLimit, or once the segment end passes
// the MaxTime horizon (later waits cannot influence the run).
func (r *runner) fuseWaits() {
	for fused := 0; fused < waitFuseLimit; fused++ {
		if r.maxTime.LessEq(r.local.MulFloat(r.attrs.Tau).AddFloat(r.attrs.Wake)) {
			return
		}
		ins, ok := r.take()
		if !ok {
			return
		}
		if ins.Amount <= 0 {
			continue
		}
		if ins.Op != prog.OpWait {
			r.pending, r.hasPending = ins, true
			return
		}
		r.local = r.local.AddFloat(ins.Duration())
	}
}

// freeze stops the runner forever at its current position.
func (r *runner) freeze() {
	r.frozen = true
	r.vel = geom.Vec2{}
	r.stop()
}

// Run simulates the two agents until rendezvous or a bound trips.
func Run(a, b AgentSpec, s Settings) Result {
	if s.MaxTime <= 0 {
		s.MaxTime = math.Inf(1)
	}
	if s.MaxSegments <= 0 {
		s.MaxSegments = math.MaxInt
	}
	maxTime := dd.FromFloat(s.MaxTime)
	ra := newRunner(a, s.SightSlack, s.TraceCap, maxTime, !s.NoWaitCoalesce)
	rb := newRunner(b, s.SightSlack, s.TraceCap, maxTime, !s.NoWaitCoalesce)
	defer ra.stop()
	defer rb.stop()

	// rBig/rSmall: staged stopping per Section 5. The far-sighted agent
	// freezes at gap ≤ rBig; rendezvous completes at gap ≤ rSmall.
	rSmall := math.Min(ra.radius, rb.radius)
	rBig := math.Max(ra.radius, rb.radius)

	res := Result{MinGap: math.Inf(1)}
	now := dd.Zero
	segments := 0

	finish := func(reason StopReason, at dd.T) Result {
		res.Reason = reason
		res.Met = reason == ReasonMet
		if res.Met {
			res.MeetTime = at
		}
		res.EndTime = at
		res.EndA, res.EndB = ra.pos, rb.pos
		res.Segments = segments
		ra.record(at.Float64())
		rb.record(at.Float64())
		res.TraceA, res.TraceB = ra.trace, rb.trace
		return res
	}

	noteGap := func(g float64, at dd.T) {
		if g < res.MinGap {
			res.MinGap = g
			res.MinGapTime = at
		}
	}

	for {
		// Ensure both runners have a current segment covering `now`.
		for _, r := range [2]*runner{ra, rb} {
			for !r.frozen && !r.ended && r.segEnd.LessEq(now) {
				if segments++; segments > s.MaxSegments {
					noteGap(ra.pos.Dist(rb.pos), now)
					return finish(ReasonMaxSegments, now)
				}
				if !r.loadSegment(now) {
					break
				}
			}
		}

		// Determine the end of the current homogeneous interval.
		end := maxTime
		active := false
		for _, r := range [2]*runner{ra, rb} {
			if !r.frozen && !r.ended {
				end = dd.Min(end, r.segEnd)
				active = true
			}
		}
		// Analytic sight detection over [now, end].
		T := end.Sub(now).Float64()
		if T < 0 {
			T = 0
		}
		ma := geom.Moving{P: ra.pos, V: ra.vel}
		mb := geom.Moving{P: rb.pos, V: rb.vel}
		app := geom.ClosestApproach(ma, mb, T)
		noteGap(app.DMin, now.AddFloat(app.SMin))

		sSmall, okSmall := geom.FirstWithin(ma, mb, T, rSmall)
		if rBig > rSmall {
			// Section 5 staged stop: the far-sighted agent freezes at gap
			// rBig, which must be processed before any rSmall contact that
			// would only happen with both agents still moving.
			if sBig, okBig := geom.FirstWithin(ma, mb, T, rBig); okBig && (!okSmall || sBig < sSmall) {
				at := now.AddFloat(sBig)
				ra.advanceTo(now, at)
				rb.advanceTo(now, at)
				if ra.radius >= rb.radius && !ra.frozen {
					ra.freeze()
				} else if !rb.frozen {
					rb.freeze()
				}
				rBig = rSmall // staged stop done; only the meet remains
				now = at
				continue
			}
		}
		if okSmall {
			at := now.AddFloat(sSmall)
			ra.advanceTo(now, at)
			rb.advanceTo(now, at)
			noteGap(ra.pos.Dist(rb.pos), at)
			return finish(ReasonMet, at)
		}

		// No sight possible in this interval: if neither agent will ever
		// move again the gap is settled for good.
		if !active {
			return finish(ReasonProgramsEnded, now)
		}
		// Advance to the interval end.
		ra.advanceTo(now, end)
		rb.advanceTo(now, end)
		now = end

		if maxTime.LessEq(now) {
			return finish(ReasonMaxTime, now)
		}
	}
}
