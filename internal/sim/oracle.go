package sim

import (
	"math"

	"repro/internal/dd"
	"repro/internal/geom"
	"repro/internal/phys"
	"repro/internal/prog"
)

// RunStepped is a brute-force reference simulator used as a testing
// oracle for Run: it advances both agents with a fixed time step and
// checks the gap at every step. It is exponentially slower than the
// event-driven engine and misses razor-thin tangencies, but its utter
// simplicity makes it trustworthy — the property tests cross-validate
// Run against it on random programs.
//
// dt is the time step; maxTime bounds the walk. The returned result only
// fills Met, MeetTime, MinGap, EndA, EndB.
func RunStepped(a, b AgentSpec, dt, maxTime float64) Result {
	pa := newSteppedAgent(a)
	pb := newSteppedAgent(b)
	res := Result{MinGap: math.Inf(1)}
	rEff := math.Min(a.Radius, b.Radius)
	for t := 0.0; t <= maxTime; t += dt {
		ga := pa.at(t)
		gb := pb.at(t)
		gap := ga.Dist(gb)
		if gap < res.MinGap {
			res.MinGap = gap
		}
		if gap <= rEff {
			res.Met = true
			res.MeetTime = dd.FromFloat(t)
			res.EndA, res.EndB = ga, gb
			return res
		}
	}
	res.EndA, res.EndB = pa.at(maxTime), pb.at(maxTime)
	return res
}

// steppedAgent pre-materializes an agent's absolute-time polyline.
type steppedAgent struct {
	times []float64   // absolute segment end times
	pts   []geom.Vec2 // positions at those times (pts[0] at time 0)
}

func newSteppedAgent(spec AgentSpec) *steppedAgent {
	s := &steppedAgent{times: []float64{spec.Attrs.Wake}, pts: []geom.Vec2{spec.Attrs.Origin, spec.Attrs.Origin}}
	t := spec.Attrs.Wake
	pos := spec.Attrs.Origin
	spec.Prog(func(ins prog.Instr) bool {
		dur := durAbs(spec.Attrs, ins)
		t += dur
		if ins.Op == prog.OpMove {
			pos = pos.Add(spec.Attrs.DirAbs(ins.Theta).Scale(ins.Amount * spec.Attrs.Unit()))
		}
		s.times = append(s.times, t)
		s.pts = append(s.pts, pos)
		return len(s.times) < 1_000_000 // cap: oracle programs are finite
	})
	return s
}

func durAbs(a phys.Attributes, ins prog.Instr) float64 {
	if ins.Op == prog.OpWait {
		return a.WaitDuration(ins.Amount)
	}
	return a.MoveDuration(ins.Amount)
}

// at returns the agent's position at absolute time t (stationary before
// wake and after the program ends).
func (s *steppedAgent) at(t float64) geom.Vec2 {
	if t <= s.times[0] {
		return s.pts[0]
	}
	// Binary search the segment containing t.
	lo, hi := 0, len(s.times)-1
	if t >= s.times[hi] {
		return s.pts[hi+1]
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := s.times[lo], s.times[hi]
	p0, p1 := s.pts[lo+1], s.pts[hi+1]
	if t1 == t0 {
		return p1
	}
	frac := (t - t0) / (t1 - t0)
	return p0.Lerp(p1, frac)
}
