package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/prog"
)

// randProgram builds a random finite move/wait program.
func randProgram(rng *rand.Rand, n int) prog.Program {
	var list []prog.Instr
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			list = append(list, prog.Wait(0.2+rng.Float64()*2))
		} else {
			list = append(list, prog.Move(rng.Float64()*2*math.Pi, 0.3+rng.Float64()*3))
		}
	}
	return prog.Instrs(list...)
}

// The central property test of the engine: on random programs, the
// event-driven simulator and the brute-force stepped oracle agree on the
// outcome, and when both meet, on the meeting time.
func TestRunVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	agree := 0
	for trial := 0; trial < 120; trial++ {
		aAttrs := refAt(geom.V(0, 0))
		bAttrs := refAt(geom.V(3+rng.Float64()*4, rng.NormFloat64()*2))
		bAttrs.Wake = rng.Float64() * 3
		bAttrs.Phi = rng.Float64() * 2 * math.Pi
		if rng.Intn(2) == 0 {
			bAttrs.Chi = -1
		}
		bAttrs.Tau = 0.5 + rng.Float64()*2
		bAttrs.Speed = 0.5 + rng.Float64()*2
		r := 0.3 + rng.Float64()

		pa := randProgram(rng, 3+rng.Intn(8))
		pb := randProgram(rng, 3+rng.Intn(8))

		a := AgentSpec{aAttrs, pa, r}
		b := AgentSpec{bAttrs, pb, r}
		set := DefaultSettings()
		set.SightSlack = 0
		exact := Run(a, b, set)

		const dt = 1e-3
		ref := RunStepped(AgentSpec{aAttrs, pa, r}, AgentSpec{bAttrs, pb, r}, dt, 60)

		// The oracle samples every dt, so it can miss grazing contacts;
		// near-tangent cases (analytic min within speed*dt of r) are
		// excluded from strict comparison.
		margin := math.Abs(exact.MinGap - r)
		if margin < 0.02 {
			continue
		}
		if exact.Met != ref.Met {
			t.Fatalf("trial %d: engine met=%v oracle met=%v (minGap %v, r %v)",
				trial, exact.Met, ref.Met, exact.MinGap, r)
		}
		if exact.Met {
			if d := math.Abs(exact.MeetTime.Float64() - ref.MeetTime.Float64()); d > 2*dt {
				t.Fatalf("trial %d: meet times differ by %v", trial, d)
			}
		} else if d := math.Abs(exact.MinGap - ref.MinGap); d > 0.05 {
			t.Fatalf("trial %d: min gaps differ: %v vs %v", trial, exact.MinGap, ref.MinGap)
		}
		agree++
	}
	if agree < 60 {
		t.Fatalf("only %d conclusive trials", agree)
	}
}

// The oracle itself: a hand-checked head-on meeting.
func TestOracleHeadOn(t *testing.T) {
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Instrs(prog.Move(prog.East, 100)), 1}
	b := AgentSpec{refAt(geom.V(10, 0)), prog.Instrs(prog.Move(prog.West, 100)), 1}
	res := RunStepped(a, b, 1e-4, 50)
	if !res.Met {
		t.Fatalf("oracle missed head-on: %+v", res)
	}
	if math.Abs(res.MeetTime.Float64()-4.5) > 1e-3 {
		t.Errorf("oracle meet time %v", res.MeetTime.Float64())
	}
}

func TestOracleRespectsWake(t *testing.T) {
	battrs := refAt(geom.V(5, 0))
	battrs.Wake = 10
	b := AgentSpec{battrs, prog.Instrs(prog.Move(prog.East, 3)), 0.1}
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Empty(), 0.1}
	res := RunStepped(a, b, 1e-2, 9) // stop before wake
	if !res.EndB.ApproxEqual(geom.V(5, 0), 1e-9) {
		t.Errorf("B moved before wake: %v", res.EndB)
	}
}
