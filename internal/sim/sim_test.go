package sim

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/phys"
	"repro/internal/prog"
)

func refAt(origin geom.Vec2) phys.Attributes {
	a := phys.Reference()
	a.Origin = origin
	return a
}

// Two agents walking straight at each other meet when the gap first
// reaches r: gap 10 closing at rate 2 reaches r=1 at t=4.5.
func TestHeadOnMeeting(t *testing.T) {
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Instrs(prog.Move(prog.East, 100)), 1}
	b := AgentSpec{refAt(geom.V(10, 0)), prog.Instrs(prog.Move(prog.West, 100)), 1}
	res := Run(a, b, DefaultSettings())
	if !res.Met {
		t.Fatalf("no meeting: %v", res)
	}
	if got := res.MeetTime.Float64(); math.Abs(got-4.5) > 1e-9 {
		t.Errorf("meet time %v, want 4.5", got)
	}
	if gap := res.EndA.Dist(res.EndB); math.Abs(gap-1) > 1e-6 {
		t.Errorf("gap at meeting %v", gap)
	}
}

// A stationary target and a searcher passing at distance exactly r-ε.
func TestPassingDetection(t *testing.T) {
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Instrs(prog.Move(prog.East, 100)), 1}
	b := AgentSpec{refAt(geom.V(50, 0.999)), prog.Empty(), 1}
	res := Run(a, b, DefaultSettings())
	if !res.Met {
		t.Fatalf("near pass missed: %v", res)
	}
	// First contact: x such that hypot(50-x, 0.999) = 1.
	wantX := 50 - math.Sqrt(1-0.999*0.999)
	if got := res.MeetTime.Float64(); math.Abs(got-wantX) > 1e-6 {
		t.Errorf("meet time %v, want %v", got, wantX)
	}
}

func TestMissByMoreThanR(t *testing.T) {
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Instrs(prog.Move(prog.East, 100)), 1}
	b := AgentSpec{refAt(geom.V(50, 1.5)), prog.Empty(), 1}
	res := Run(a, b, DefaultSettings())
	if res.Met {
		t.Fatalf("met unexpectedly: %v", res)
	}
	if res.Reason != ReasonProgramsEnded {
		t.Errorf("reason %v", res.Reason)
	}
	if math.Abs(res.MinGap-1.5) > 1e-9 {
		t.Errorf("min gap %v, want 1.5", res.MinGap)
	}
}

// Delay semantics: B stays at its origin until its wake time.
func TestWakeDelay(t *testing.T) {
	// B at (10,0) walks West but only wakes at t=100. A is stationary.
	battrs := refAt(geom.V(10, 0))
	battrs.Wake = 100
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Empty(), 1}
	b := AgentSpec{battrs, prog.Instrs(prog.Move(prog.East, 0), prog.Move(prog.West, 100)), 1}
	res := Run(a, b, DefaultSettings())
	if !res.Met {
		t.Fatalf("no meeting: %v", res)
	}
	// Gap 10 → closes to 1 after 9 units of travel starting at t=100
	// (up to the sight slack).
	if got := res.MeetTime.Float64(); math.Abs(got-109) > 1e-6 {
		t.Errorf("meet time %v, want 109", got)
	}
}

// Clock-rate and speed semantics: an agent with τ=2, v=3 executing
// go(E, 5) moves for 10 absolute time units covering 30 absolute units.
func TestClockAndSpeedScaling(t *testing.T) {
	battrs := phys.Attributes{Origin: geom.V(100, 0), Phi: 0, Chi: 1, Tau: 2, Speed: 3}
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Empty(), 1}
	b := AgentSpec{battrs, prog.Instrs(prog.Move(prog.West, 5)), 1}
	res := Run(a, b, DefaultSettings())
	if res.Met {
		t.Fatalf("unexpected meeting: %v", res)
	}
	// B ends at 100 - 30 = 70.
	if !res.EndB.ApproxEqual(geom.V(70, 0), 1e-9) {
		t.Errorf("B end %v, want (70,0)", res.EndB)
	}
	if got := res.MinGap; math.Abs(got-70) > 1e-9 {
		t.Errorf("min gap %v", got)
	}
}

// Rotation and chirality: φ=π/2, χ=-1 maps local East to absolute North
// and local North to absolute East.
func TestFrameSemantics(t *testing.T) {
	battrs := phys.Attributes{Origin: geom.V(0, 0), Phi: math.Pi / 2, Chi: -1, Tau: 1, Speed: 1}
	a := AgentSpec{refAt(geom.V(1000, 1000)), prog.Empty(), 0.1}
	b := AgentSpec{battrs, prog.Instrs(prog.Move(prog.East, 2), prog.Move(prog.North, 3)), 0.1}
	res := Run(a, b, DefaultSettings())
	// Local E (1,0) → abs R(π/2)·FlipY·(1,0) = (0,1). Local N (0,1) →
	// R(π/2)·FlipY·(0,1) = R(π/2)·(0,-1) = (1,0).
	if !res.EndB.ApproxEqual(geom.V(3, 2), 1e-9) {
		t.Errorf("B end %v, want (3,2)", res.EndB)
	}
}

// Huge waits cost O(1): a single wait of 2^60 followed by a short
// approach must still resolve the meeting time to sub-unit accuracy.
func TestHugeWaitPrecision(t *testing.T) {
	huge := math.Ldexp(1, 60)
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Instrs(prog.Wait(huge), prog.Move(prog.East, 100)), 1}
	b := AgentSpec{refAt(geom.V(10, 0)), prog.Empty(), 1}
	res := Run(a, b, Settings{MaxTime: math.Inf(1), MaxSegments: 100, SightSlack: 1e-9})
	if !res.Met {
		t.Fatalf("no meeting: %v", res)
	}
	// Meeting at huge + 9: check the dd time resolves the +9 exactly.
	off := res.MeetTime.SubFloat(huge).Float64()
	if math.Abs(off-9) > 1e-6 {
		t.Errorf("offset %v, want 9 (dd resolution lost?)", off)
	}
}

func TestMaxTimeStop(t *testing.T) {
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Instrs(prog.Wait(1e12)), 1}
	b := AgentSpec{refAt(geom.V(10, 0)), prog.Instrs(prog.Wait(1e12)), 1}
	res := Run(a, b, Settings{MaxTime: 1000, MaxSegments: 100, SightSlack: 0})
	if res.Met || res.Reason != ReasonMaxTime {
		t.Fatalf("want max-time stop, got %v", res)
	}
	if got := res.EndTime.Float64(); got != 1000 {
		t.Errorf("end time %v", got)
	}
}

func TestMaxSegmentsStop(t *testing.T) {
	wiggle := prog.Forever(func(i int) prog.Program {
		return prog.Instrs(prog.Move(prog.East, 1), prog.Move(prog.West, 1))
	})
	a := AgentSpec{refAt(geom.V(0, 0)), wiggle, 0.1}
	b := AgentSpec{refAt(geom.V(100, 0)), prog.Empty(), 0.1}
	res := Run(a, b, Settings{MaxTime: math.Inf(1), MaxSegments: 1000, SightSlack: 0})
	if res.Reason != ReasonMaxSegments {
		t.Fatalf("want max-segments, got %v", res)
	}
	if res.Segments < 1000 {
		t.Errorf("segments %d", res.Segments)
	}
}

// Both programs ending without meeting reports ProgramsEnded.
func TestProgramsEnded(t *testing.T) {
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Instrs(prog.Move(prog.East, 1)), 0.5}
	b := AgentSpec{refAt(geom.V(10, 0)), prog.Instrs(prog.Move(prog.East, 1)), 0.5}
	res := Run(a, b, DefaultSettings())
	if res.Met || res.Reason != ReasonProgramsEnded {
		t.Fatalf("want programs-ended, got %v", res)
	}
	if !res.EndA.ApproxEqual(geom.V(1, 0), 1e-12) || !res.EndB.ApproxEqual(geom.V(11, 0), 1e-12) {
		t.Errorf("end positions %v %v", res.EndA, res.EndB)
	}
}

// Section 5 extension: distinct radii. The far-sighted agent freezes at
// gap r1; the other continues and rendezvous completes at gap r2.
func TestDistinctRadiiStagedStop(t *testing.T) {
	// A (radius 5) walks East toward B (radius 1) at (20, 0); B walks
	// West. They close at rate 2 until gap = 5 at t = 7.5, then A freezes
	// (A at 7.5) and B alone closes 5 → 1 during 4 more units: t = 11.5.
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Instrs(prog.Move(prog.East, 100)), 5}
	b := AgentSpec{refAt(geom.V(20, 0)), prog.Instrs(prog.Move(prog.West, 100)), 1}
	res := Run(a, b, DefaultSettings())
	if !res.Met {
		t.Fatalf("no meeting: %v", res)
	}
	if got := res.MeetTime.Float64(); math.Abs(got-11.5) > 1e-6 {
		t.Errorf("meet time %v, want 11.5", got)
	}
	if math.Abs(res.EndA.X-7.5) > 1e-6 {
		t.Errorf("A frozen at %v, want x=7.5", res.EndA)
	}
}

// Simultaneous identical agents at gap > r can never meet (the paper's
// opening observation): the gap is invariant.
func TestSymmetryInvariant(t *testing.T) {
	p := func() prog.Program {
		return prog.Instrs(
			prog.Move(prog.North, 3), prog.Wait(1), prog.Move(prog.East, 2),
			prog.Move(prog.South, 1),
		)
	}
	a := AgentSpec{refAt(geom.V(0, 0)), p(), 1}
	b := AgentSpec{refAt(geom.V(10, 0)), p(), 1}
	res := Run(a, b, DefaultSettings())
	if res.Met {
		t.Fatalf("identical agents met: %v", res)
	}
	if math.Abs(res.MinGap-10) > 1e-9 {
		t.Errorf("gap varied: min %v", res.MinGap)
	}
}

func TestTrivialInstanceMeetsAtZero(t *testing.T) {
	a := AgentSpec{refAt(geom.V(0, 0)), prog.Empty(), 2}
	b := AgentSpec{refAt(geom.V(1, 0)), prog.Empty(), 2}
	res := Run(a, b, DefaultSettings())
	if !res.Met || res.MeetTime.Float64() != 0 {
		t.Fatalf("trivial instance: %v", res)
	}
}

func TestTraceRecording(t *testing.T) {
	var zigs []prog.Instr
	for i := 0; i < 200; i++ {
		zigs = append(zigs, prog.Move(prog.North, 1), prog.Move(prog.South, 1))
	}
	zig := prog.Instrs(zigs...)
	s := DefaultSettings()
	s.TraceCap = 64
	a := AgentSpec{refAt(geom.V(0, 0)), zig, 0.1}
	b := AgentSpec{refAt(geom.V(50, 0)), prog.Empty(), 0.1}
	res := Run(a, b, s)
	if len(res.TraceA) == 0 || len(res.TraceA) > 64+1 {
		t.Fatalf("trace length %d", len(res.TraceA))
	}
	// Trace times must be nondecreasing.
	for i := 1; i < len(res.TraceA); i++ {
		if res.TraceA[i].T < res.TraceA[i-1].T {
			t.Fatal("trace times decreasing")
		}
	}
}

// The glide-reflection symmetry of Lemma 2.1: for a synchronous χ=-1
// instance, B's trajectory is the mirror image (across the canonical
// line) of A's trajectory delayed by t.
func TestLemma21GlideReflection(t *testing.T) {
	phi := 1.1
	b0 := geom.V(3, 1)
	tDelay := 2.0
	mk := func() prog.Program {
		return prog.Instrs(
			prog.Move(0.4, 2), prog.Wait(1), prog.Move(2.2, 3), prog.Move(5.0, 1),
		)
	}
	battrs := phys.Attributes{Origin: b0, Phi: phi, Chi: -1, Tau: 1, Speed: 1, Wake: tDelay}
	s := DefaultSettings()
	s.TraceCap = 1 << 16
	res := Run(
		AgentSpec{refAt(geom.V(0, 0)), mk(), 1e-6},
		AgentSpec{battrs, mk(), 1e-6},
		s,
	)
	if res.Met {
		t.Fatal("unexpected meeting")
	}
	line := geom.CanonicalLine(b0, phi)
	// For every B trace point at time T ≥ tDelay, the corresponding A
	// position at T - tDelay reflected across the canonical line and
	// shifted along it must equal B's position. Equivalent check that is
	// shift-free: distances to the line match, and the along-line spacing
	// of consecutive samples matches.
	posAt := func(tr []TracePoint, q float64) geom.Vec2 {
		// Linear scan: traces are small here.
		for i := 1; i < len(tr); i++ {
			if tr[i].T >= q {
				dt := tr[i].T - tr[i-1].T
				if dt == 0 {
					return tr[i].Pos
				}
				s := (q - tr[i-1].T) / dt
				return tr[i-1].Pos.Lerp(tr[i].Pos, s)
			}
		}
		return tr[len(tr)-1].Pos
	}
	for _, q := range []float64{2, 3, 4.5, 6, 8} {
		pa := posAt(res.TraceA, q-tDelay)
		pb := posAt(res.TraceB, q)
		da := line.SignedDistTo(pa)
		db := line.SignedDistTo(pb)
		// Mirror: signed distances are opposite (A starts on one side, B
		// equidistant on the other).
		if math.Abs(da+db) > 1e-6 {
			t.Fatalf("t=%v: signed dists %v, %v not mirrored", q, da, db)
		}
	}
	// Along-line displacement between A(t-delay) and B(t) is the constant
	// glide vector (Corollary 2.1).
	base := line.Coord(posAt(res.TraceB, 2.5)) - line.Coord(posAt(res.TraceA, 0.5))
	for _, q := range []float64{3, 4, 5.5, 7} {
		d := line.Coord(posAt(res.TraceB, q)) - line.Coord(posAt(res.TraceA, q-tDelay))
		if math.Abs(d-base) > 1e-6 {
			t.Fatalf("glide vector drifted: %v vs %v", d, base)
		}
	}
}

// Determinism: identical runs produce identical results.
func TestDeterminism(t *testing.T) {
	mk := func() (AgentSpec, AgentSpec) {
		a := AgentSpec{refAt(geom.V(0, 0)), prog.Seq(prog.Instrs(prog.Move(0.3, 5)), prog.Instrs(prog.Wait(2), prog.Move(2, 3))), 0.5}
		b := AgentSpec{refAt(geom.V(7, 2)), prog.Instrs(prog.Move(prog.West, 6)), 0.5}
		return a, b
	}
	a1, b1 := mk()
	a2, b2 := mk()
	r1 := Run(a1, b1, DefaultSettings())
	r2 := Run(a2, b2, DefaultSettings())
	if r1.Met != r2.Met || r1.MinGap != r2.MinGap || r1.Segments != r2.Segments ||
		r1.MeetTime != r2.MeetTime {
		t.Fatalf("nondeterministic results:\n%v\n%v", r1, r2)
	}
}

func TestStopReasonString(t *testing.T) {
	for r, want := range map[StopReason]string{
		ReasonMet:           "met",
		ReasonMaxTime:       "max-time",
		ReasonMaxSegments:   "max-segments",
		ReasonProgramsEnded: "programs-ended",
		StopReason(99):      "unknown",
	} {
		if got := r.String(); got != want {
			t.Errorf("String(%d) = %q", r, got)
		}
	}
}
