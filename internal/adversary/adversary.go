// Package adversary implements the impossibility construction of
// Theorem 4.1: no single algorithm achieves rendezvous for every S2
// boundary instance (synchronous, χ = −1, t = dist(proj_A, proj_B) − r).
//
// The proof's engine is Claim 4.1: before rendezvous on such an instance,
// the earlier agent must traverse a non-null segment of inclination φ/2 —
// the inclination of the canonical line. A deterministic algorithm's solo
// trajectory is a countable polyline, so it realizes only countably many
// inclinations, while φ ranges over a continuum: any inclination the
// algorithm misses yields a defeating instance.
//
// Constructively, for a *finite* prefix of the solo trajectory we can
// exhibit the defeating instance: collect the inclinations of the first n
// segments, pick the midpoint of the widest uncovered arc of [0, π), and
// build the S2 instance whose canonical line has that inclination. No
// rendezvous can occur while the algorithm is still inside the inspected
// prefix.
package adversary

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/prog"
)

// Inclinations returns the distinct inclinations (mod π, sorted) of the
// move segments among the first n instructions of a program's solo
// execution. The prefix is drained through the cursor fast path, so
// inspecting even long prefixes of Algorithm 1 stays cheap.
func Inclinations(p prog.Program, n int) []float64 {
	seen := make(map[float64]bool)
	cur := prog.NewCursor(p)
	defer cur.Close()
	for count := 0; count < n; count++ {
		ins, ok := cur.Next()
		if !ok {
			break
		}
		if ins.Op == prog.OpMove && ins.Amount > 0 {
			inc := math.Mod(ins.Theta, math.Pi)
			if inc < 0 {
				inc += math.Pi
			}
			seen[inc] = true
		}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// WidestGapMidpoint returns the midpoint of the widest arc of [0, π) not
// containing any of the given (sorted) inclinations, together with the
// arc's half-width. With no inclinations at all it returns (π/2, π/2).
func WidestGapMidpoint(incs []float64) (mid, halfWidth float64) {
	if len(incs) == 0 {
		return math.Pi / 2, math.Pi / 2
	}
	bestGap, bestLo := -1.0, 0.0
	for i := 0; i < len(incs); i++ {
		lo := incs[i]
		hi := incs[(i+1)%len(incs)]
		if i == len(incs)-1 {
			hi += math.Pi // wrap around
		}
		if g := hi - lo; g > bestGap {
			bestGap, bestLo = g, lo
		}
	}
	m := math.Mod(bestLo+bestGap/2, math.Pi)
	return m, bestGap / 2
}

// Defeat holds a defeating instance and the guarantee horizon.
type Defeat struct {
	Instance inst.Instance
	// Inclination is the canonical-line inclination φ/2 the algorithm's
	// prefix never traverses.
	Inclination float64
	// Margin is the angular distance from Inclination to the nearest
	// inclination the prefix does traverse.
	Margin float64
	// PrefixInstrs is the number of solo instructions inspected: no
	// rendezvous can occur while the earlier agent is still inside this
	// prefix (Claim 4.1).
	PrefixInstrs int
}

// DefeatingInstance constructs an S2 boundary instance that the given
// algorithm program cannot solve within its first n solo instructions.
// The instance has radius r and initial distance d > r along the missed
// canonical direction.
func DefeatingInstance(p prog.Program, n int, r, d float64) Defeat {
	incs := Inclinations(p, n)
	mid, half := WidestGapMidpoint(incs)
	phi := math.Mod(2*mid, 2*math.Pi)
	b0 := geom.Polar(mid).Scale(d) // along the canonical line direction
	in := inst.Instance{
		R: r, X: b0.X, Y: b0.Y, Phi: phi, Tau: 1, V: 1, Chi: -1,
	}
	in.T = in.ProjGap() - r
	return Defeat{
		Instance:     in,
		Inclination:  mid,
		Margin:       half,
		PrefixInstrs: n,
	}
}
