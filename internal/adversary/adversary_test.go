package adversary

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/prog"
	"repro/internal/sim"
)

func TestInclinations(t *testing.T) {
	p := prog.Instrs(
		prog.Move(0, 1),           // inclination 0
		prog.Move(math.Pi, 1),     // inclination 0 again (mod π)
		prog.Move(math.Pi/4, 1),   // π/4
		prog.Move(5*math.Pi/4, 1), // π/4 again
		prog.Wait(3),              // ignored
		prog.Move(1.0, 1),         // 1.0
	)
	incs := Inclinations(p, 100)
	if len(incs) != 3 {
		t.Fatalf("inclinations = %v", incs)
	}
	want := []float64{0, math.Pi / 4, 1.0}
	for i := range want {
		if math.Abs(incs[i]-want[i]) > 1e-12 {
			t.Errorf("inc[%d] = %v, want %v", i, incs[i], want[i])
		}
	}
}

func TestInclinationsRespectsPrefix(t *testing.T) {
	p := prog.Instrs(prog.Move(0, 1), prog.Move(1, 1), prog.Move(2, 1))
	if got := Inclinations(p, 2); len(got) != 2 {
		t.Errorf("prefix-2 inclinations = %v", got)
	}
}

func TestWidestGapMidpoint(t *testing.T) {
	// Single inclination at 0: the gap is all of [0, π), midpoint π/2.
	mid, half := WidestGapMidpoint([]float64{0})
	if math.Abs(mid-math.Pi/2) > 1e-12 || math.Abs(half-math.Pi/2) > 1e-12 {
		t.Errorf("single: mid %v half %v", mid, half)
	}
	// Inclinations at 0 and π/2: two gaps of width π/2; midpoint of the
	// first is π/4.
	mid, half = WidestGapMidpoint([]float64{0, math.Pi / 2})
	if math.Abs(half-math.Pi/4) > 1e-12 {
		t.Errorf("two: half %v", half)
	}
	if math.Abs(mid-math.Pi/4) > 1e-12 && math.Abs(mid-3*math.Pi/4) > 1e-12 {
		t.Errorf("two: mid %v", mid)
	}
	// Empty: the whole circle is free.
	mid, half = WidestGapMidpoint(nil)
	if half != math.Pi/2 {
		t.Errorf("empty: half %v", half)
	}
	_ = mid
}

// The defeating instance's inclination is truly missed by the prefix.
func TestDefeatMargin(t *testing.T) {
	p := core.Program(core.Compact(), nil)
	const n = 20000
	d := DefeatingInstance(p, n, 0.5, 2.0)
	if d.Margin <= 0 {
		t.Fatal("no positive margin")
	}
	if !d.Instance.InS2() {
		t.Fatalf("defeating instance not in S2: %v", d.Instance)
	}
	for _, inc := range Inclinations(p, n) {
		if geom.InclinationDiff(inc, d.Inclination) < d.Margin-1e-9 {
			t.Fatalf("prefix inclination %v within margin of %v", inc, d.Inclination)
		}
	}
}

// End-to-end: the constructed instance defeats AlmostUniversalRV for the
// inspected horizon (Claim 4.1: rendezvous needs a segment of inclination
// φ/2, which the prefix lacks).
func TestDefeatAURV(t *testing.T) {
	algProg := func() prog.Program { return core.Program(core.Compact(), nil) }
	const n = 50000
	d := DefeatingInstance(algProg(), n, 0.5, 2.0)
	in := d.Instance

	set := sim.DefaultSettings()
	set.MaxSegments = n // stay within the guaranteed horizon
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: algProg(), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: algProg(), Radius: in.R}
	res := sim.Run(a, b, set)
	if res.Met {
		t.Fatalf("defeating instance met within the horizon: %v", res)
	}
	// The dedicated algorithm solves the very same instance.
	// (Cross-check that the instance is genuinely feasible.)
	if !in.Feasible() {
		t.Fatal("defeating instance must be feasible")
	}
}

// Doubling the inspected prefix still leaves uncovered inclinations
// (there are only countably many segments — Theorem 4.1's diagonal).
func TestDefeatScalesWithPrefix(t *testing.T) {
	for _, n := range []int{1000, 10000, 100000} {
		p := core.Program(core.Compact(), nil)
		d := DefeatingInstance(p, n, 0.5, 2.0)
		if d.Margin <= 0 {
			t.Fatalf("n=%d: margin %v", n, d.Margin)
		}
	}
}
