package latecomers

import (
	"math"
	"testing"

	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/sim"
)

func simulate(in inst.Instance, maxSeg int) sim.Result {
	set := sim.DefaultSettings()
	set.MaxSegments = maxSeg
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: Program(), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: Program(), Radius: in.R}
	return sim.Run(a, b, set)
}

func latecomer(r, x, y, t float64) inst.Instance {
	return inst.Instance{R: r, X: x, Y: y, Phi: 0, Tau: 1, V: 1, T: t, Chi: 1}
}

func TestCoveredPredicate(t *testing.T) {
	in := latecomer(0.5, 2, 0, 2)
	if !Covered(in) {
		t.Error("good configuration not covered")
	}
	// t exactly at the boundary: not covered (strict inequality).
	if Covered(latecomer(0.5, 2, 0, 1.5)) {
		t.Error("boundary t = d-r covered")
	}
	// Below: not covered.
	if Covered(latecomer(0.5, 2, 0, 1)) {
		t.Error("infeasible covered")
	}
	// Rotated or mirrored or non-sync: outside the contract.
	for _, mut := range []func(*inst.Instance){
		func(in *inst.Instance) { in.Phi = 1 },
		func(in *inst.Instance) { in.Chi = -1 },
		func(in *inst.Instance) { in.Tau = 2 },
		func(in *inst.Instance) { in.V = 2 },
	} {
		in := latecomer(0.5, 2, 0, 2)
		mut(&in)
		if Covered(in) {
			t.Errorf("non-contract instance covered: %v", in)
		}
	}
}

func TestPhaseStructure(t *testing.T) {
	// Phase k = 2^{k+1} run-waits then a planar walk, returning to start.
	for k := 1; k <= 3; k++ {
		p := Phase(k)
		dx, dy := prog.Displacement(p)
		if math.Hypot(dx, dy) > 1e-7 {
			t.Errorf("Phase(%d) displacement %v", k, math.Hypot(dx, dy))
		}
		if got, want := prog.TotalDuration(p), PhaseDuration(k); math.Abs(got-want) > 1e-6*want {
			t.Errorf("Phase(%d) duration %v, want %v", k, got, want)
		}
	}
}

// The sweep mechanism: delay comparable to distance.
func TestRendezvousSweep(t *testing.T) {
	cases := []inst.Instance{
		latecomer(1.0, 1.1, 0, 1.0),      // aligned with East, t ≈ d
		latecomer(1.0, 0, 1.2, 1.1),      // aligned with North
		latecomer(0.8, 1.0, 0.3, 1.2),    // slight angle error
		latecomer(0.7, -0.9, -0.5, 1.05), // third quadrant
		latecomer(0.9, 1.0, 0.0, 3.5),    // t > d + r: later sweep or planar
	}
	for k, in := range cases {
		if !Covered(in) {
			t.Fatalf("case %d not covered: %v", k, in)
		}
		res := simulate(in, 30_000_000)
		if !res.Met {
			t.Fatalf("case %d: no rendezvous: %v\n%v", k, res, in)
		}
	}
}

// The asleep mechanism: enormous delay — B sleeps through a full walk.
func TestRendezvousAsleep(t *testing.T) {
	in := latecomer(0.6, 1.4, 0.7, 5000)
	res := simulate(in, 30_000_000)
	if !res.Met {
		t.Fatalf("no rendezvous: %v", res)
	}
	// B should never have needed to move: meeting while it slept or just
	// after; at minimum the meet time is below t + a couple of phases.
	if got := res.MeetTime.Float64(); got > in.T+1e6 {
		t.Errorf("meet time %v unreasonably late", got)
	}
}

// Razor-thin margin: t barely above d − r.
func TestRendezvousThinMargin(t *testing.T) {
	d := 1.3
	r := 0.8
	in := latecomer(r, d, 0, d-r+0.02)
	res := simulate(in, 60_000_000)
	if !res.Met {
		t.Fatalf("thin margin: no rendezvous: %v\n%v", res, in)
	}
}

// Random contract instances meet, and within the predicted phase bound.
func TestRendezvousSamples(t *testing.T) {
	g := inst.NewGen(80)
	for k := 0; k < 8; k++ {
		in := g.Draw(inst.ClassLatecomer)
		res := simulate(in, 60_000_000)
		if !res.Met {
			t.Fatalf("sample %d: no rendezvous: %v\n%v", k, res, in)
		}
		if ph, mech, ok := PredictPhase(in); ok {
			bound := in.T
			for j := 1; j <= ph; j++ {
				bound += PhaseDuration(j)
			}
			if res.MeetTime.Float64() > bound+1 {
				t.Errorf("sample %d: met at %v after bound %v (phase %d via %s)",
					k, res.MeetTime.Float64(), bound, ph, mech)
			}
		}
	}
}

func TestPredictPhaseMechanisms(t *testing.T) {
	// Small delay → sweep; enormous delay → planar (asleep).
	if _, mech, ok := PredictPhase(latecomer(1.0, 1.1, 0, 1.0)); !ok || mech != "sweep" {
		t.Errorf("small delay mech = %q, ok=%v", mech, ok)
	}
	if _, mech, ok := PredictPhase(latecomer(0.6, 1.4, 0.7, 1e7)); !ok || mech != "planar" {
		t.Errorf("huge delay mech = %q, ok=%v", mech, ok)
	}
	if _, _, ok := PredictPhase(latecomer(0.5, 2, 0, 0.5)); ok {
		t.Error("predicted phase for uncovered instance")
	}
}

// The negative side (from [38] / Lemma 3.8): with t < d − r the gap can
// never close below d − t; the simulation's observed minimum must respect
// that bound.
func TestInfeasibleLowerBound(t *testing.T) {
	in := latecomer(0.5, 2, 0, 0.8) // d = 2, t < 1.5
	set := sim.DefaultSettings()
	set.MaxSegments = 3_000_000
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: Program(), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: Program(), Radius: in.R}
	res := sim.Run(a, b, set)
	if res.Met {
		t.Fatalf("infeasible instance met: %v", res)
	}
	if res.MinGap < in.Dist()-in.T-1e-6 {
		t.Errorf("min gap %v below analytic bound %v", res.MinGap, in.Dist()-in.T)
	}
}
