// Package latecomers implements the Latecomers substrate procedure
// (Algorithm GATHER(2) of reference [38], Pelc–Yadav ICDCN 2020) used by
// block 2 of Algorithm 1.
//
// Only its contract matters to the paper: Latecomers guarantees
// rendezvous for every instance with τ = v = 1, φ = 0, χ = 1 and
// t > d − r (the "good configurations" of [38] for n = 2). The original
// pseudocode is not part of the reproduced text, so we rebuild a
// procedure with exactly this contract (substitution documented in
// DESIGN.md §3).
//
// Construction. Both agents share clocks, speeds, units and axis
// orientations, so B's trajectory is A's delayed by t and shifted by b₀.
// Phase k executes, in order:
//
//  1. a run-wait sweep: for each direction û = angle jπ/2^k
//     (j = 0..2^{k+1}−1): go 2^k along û, wait 2^{2k}, walk back;
//  2. PlanarCowWalk(k).
//
// Mechanism 1 (B awake): while A waits at the far endpoint of the run
// nearest to the direction of b₀, B — lagging t — sweeps its own run, and
// the gap passes through |b₀ − ξû| for ξ ∈ [max(t−2^{2k},0), min(t,2^k)].
// Its minimum drops below r once the angle error δ to b₀'s direction
// satisfies (d−t)²₊ + t·d·δ² ≤ r², which the doubling directional grid
// eventually guarantees for any margin e = t−(d−r) > 0 (with
// 2^k ≥ d and 2^{2k} ≥ t − d).
//
// Mechanism 2 (B asleep): if t exceeds the whole program prefix, B is
// still at b₀ during a complete PlanarCowWalk(k) with 2^k ≥ d and
// 2^{−(k+1)} ≤ r, which passes within r of b₀.
//
// Every t > d − r falls to one of the two mechanisms. The sweep runs
// before the planar walk so that small-t instances meet within the first
// few dozen time units, keeping the enclosing block-2 phase index of
// Algorithm 1 small enough to simulate.
package latecomers

import (
	"math"

	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/walk"
)

// sweepCursor generates the run-wait sweep of phase k procedurally:
// direction j emits go(û_j, l), wait(w), go(û_j+π, l) — the stream of
// walk.RunWait over the doubling direction grid, without constructing
// (and probing) a 3-instruction program per direction.
type sweepCursor struct {
	k, dirs, j, sub int
	l, w            float64
	theta           float64 // û_j angle, computed once per direction
}

func (c *sweepCursor) Next() (prog.Instr, bool) {
	if c.j >= c.dirs {
		return prog.Instr{}, false
	}
	var ins prog.Instr
	switch c.sub {
	case 0:
		c.theta = geom.DyadicAngle(c.j, c.k)
		ins = prog.Move(c.theta, c.l)
	case 1:
		ins = prog.Wait(c.w)
	case 2:
		ins = prog.Move(c.theta+math.Pi, c.l)
	}
	if c.sub++; c.sub == 3 {
		c.sub, c.j = 0, c.j+1
	}
	return ins, true
}

func (c *sweepCursor) Close() { c.j = c.dirs }

// phaseCursor returns phase k as a bare single-use cursor.
func phaseCursor(k int) prog.Cursor {
	l := math.Ldexp(1, k)   // run length 2^k
	w := math.Ldexp(1, 2*k) // far-end wait 2^{2k}
	dirs := 1 << uint(k+1)  // 2^{k+1} directions
	return prog.SeqOf(
		&sweepCursor{k: k, dirs: dirs, l: l, w: w},
		walk.NewPlanar(k),
	)
}

// Phase returns phase k of the procedure (both mechanisms, sweep first).
func Phase(k int) prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return phaseCursor(k) })
}

// Program returns the full infinite procedure.
func Program() prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return ProgramCursor() })
}

// ProgramCursor returns the procedure as a bare single-use cursor (the
// allocation-lean spelling block 2 of Algorithm 1 budgets once per
// phase).
func ProgramCursor() prog.Cursor {
	return prog.ForeverCursor(phaseCursor)
}

// PhaseDuration returns the local-time duration of Phase(k).
func PhaseDuration(k int) float64 {
	l := math.Ldexp(1, k)
	w := math.Ldexp(1, 2*k)
	dirs := math.Ldexp(1, k+1)
	return dirs*walk.RunWaitDuration(l, w) + walk.PlanarDuration(k)
}

// Covered reports whether the instance is inside the Latecomers contract.
func Covered(in inst.Instance) bool {
	return in.Synchronous() && in.Chi == 1 && in.Phi == 0 &&
		in.T > in.Dist()-in.R
}

// PredictPhase returns a phase k by whose end rendezvous is guaranteed
// for a covered instance, along with the mechanism that fires
// ("sweep" or "planar"). It mirrors the analysis above; the returned
// phase is an upper bound — runs usually meet earlier.
func PredictPhase(in inst.Instance) (k int, mech string, ok bool) {
	if !Covered(in) {
		return 0, "", false
	}
	d := in.Dist()
	t := in.T
	cum := 0.0
	for k = 1; k < 40; k++ {
		// Mechanism 2: B asleep through phase k's planar walk. The walk of
		// phase k starts after cum + sweep(k) local time.
		l := math.Ldexp(1, k)
		w := math.Ldexp(1, 2*k)
		sweep := math.Ldexp(1, k+1) * walk.RunWaitDuration(l, w)
		if t >= cum+sweep+walk.PlanarDuration(k) &&
			walk.CoverRadius(k) >= d && walk.CoverGap(k) <= in.R {
			return k, "planar", true
		}
		// Mechanism 1: the sweep direction nearest to b₀.
		delta := nearestDirErr(in.B0(), k)
		if sweepMeets(d, t, in.R, delta, l, w) {
			return k, "sweep", true
		}
		cum += PhaseDuration(k)
	}
	return 0, "", false
}

// nearestDirErr returns the angle between b₀ and the closest sweep
// direction jπ/2^k.
func nearestDirErr(b0 geom.Vec2, k int) float64 {
	theta := b0.Angle()
	step := math.Pi / math.Ldexp(1, k)
	j := math.Round(theta / step)
	return math.Abs(theta - j*step)
}

// sweepMeets checks mechanism 1's gap condition for angle error delta:
// the minimum of |b₀ − ξû| over the reachable ξ range is ≤ r.
func sweepMeets(d, t, r, delta, l, w float64) bool {
	lo := math.Max(t-w, 0)
	hi := math.Min(t, l)
	if lo > hi {
		return false
	}
	xi := d * math.Cos(delta) // unconstrained minimizer
	xi = math.Max(lo, math.Min(hi, xi))
	gap2 := d*d + xi*xi - 2*xi*d*math.Cos(delta)
	return gap2 <= r*r
}
