// Package batch is the parallel batch-execution engine of the
// reproduction: it fans independent simulation jobs out across a
// worker pool while keeping the output deterministic.
//
// Design invariant — parallel == serial, bit for bit. Each job is a
// self-contained simulation (an agent pair plus the settings bounding
// it); sim.Run is a pure function of its inputs, workers only ever
// write the result slot of the job they claimed, and every aggregate
// is computed in a serial post-pass over the results in input order.
// Scheduling therefore changes wall-clock time and nothing else: a
// batch run with 1 worker and with GOMAXPROCS workers produce
// byte-identical results, which is what lets the experiment tables and
// sweeps go parallel without perturbing a single reported number.
//
// The pool is a work-stealing-free claim counter: workers atomically
// take the next unclaimed job index until the slice is exhausted. A
// job that trips its own budget (MaxSegments, MaxTime) simply returns
// with the corresponding StopReason — it cannot wedge the pool,
// because budgets are enforced inside sim.Run per job.
package batch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Job is one unit of batch work: a pair of agents and the settings
// bounding their simulation. Jobs must not share mutable state (each
// needs its own program iterators and, if used, its own progress
// observer); everything else about parallel safety is the pool's
// problem.
type Job struct {
	A, B     sim.AgentSpec
	Settings sim.Settings
}

// Stats is the aggregate accounting of a batch, computed serially in
// input order after all workers have finished (so it is deterministic
// for every worker count).
type Stats struct {
	Jobs     int     // number of jobs executed
	Met      int     // jobs that achieved rendezvous
	Segments int64   // total program segments consumed across all jobs
	SimTime  float64 // total simulated time across all jobs (sum of EndTime)
	Workers  int     // workers actually used
}

// Workers resolves a requested parallelism degree: values ≤ 0 mean
// GOMAXPROCS, and the result is clamped to n so a small batch never
// spawns idle goroutines.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the jobs on a pool of workers (≤ 0 selects GOMAXPROCS)
// and returns the results in input order, plus aggregate accounting.
// Results are identical for every worker count.
func Run(jobs []Job, workers int) ([]sim.Result, Stats) {
	results := make([]sim.Result, len(jobs))
	w := Workers(workers, len(jobs))
	Do(len(jobs), w, func(i int) {
		results[i] = sim.Run(jobs[i].A, jobs[i].B, jobs[i].Settings)
	})

	st := Stats{Jobs: len(jobs), Workers: w}
	for _, r := range results {
		if r.Met {
			st.Met++
		}
		st.Segments += int64(r.Segments)
		st.SimTime += r.EndTime.Float64()
	}
	return results, st
}

// Do runs fn(i) for every i in [0, n) on a pool of `workers`
// goroutines (callers should pre-resolve the count with Workers). It
// is the indexed-parallelism primitive under Run, exported for
// consumers whose work items are not agent pairs (e.g. the
// Monte-Carlo sweep chunks of internal/measure). fn must be safe to
// call concurrently for distinct i; Do returns after every index has
// been processed.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
