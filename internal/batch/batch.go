// Package batch is the parallel batch-execution engine of the
// reproduction: it fans independent simulation jobs out across a
// worker pool while keeping the output deterministic.
//
// Design invariant — parallel == serial, bit for bit. Each job is a
// self-contained simulation (an agent pair plus the settings bounding
// it); sim.Run is a pure function of its inputs, workers only ever
// write the result slot of the job they claimed, and every aggregate
// is computed in a serial post-pass over the results in input order.
// Scheduling therefore changes wall-clock time and nothing else: a
// batch run with 1 worker and with GOMAXPROCS workers produce
// byte-identical results, which is what lets the experiment tables and
// sweeps go parallel without perturbing a single reported number.
//
// The pool is a work-stealing-free claim counter: workers atomically
// take the next unclaimed job index until the slice is exhausted. A
// job that trips its own budget (MaxSegments, MaxTime) simply returns
// with the corresponding StopReason — it cannot wedge the pool,
// because budgets are enforced inside sim.Run per job.
//
// Batch-level memoization: jobs that declare a Key share work — within
// one Run, only the first job of each distinct Key executes and every
// later job with the same Key receives a copy of its result. Because
// sim.Run is a pure function of the job's inputs, the copied result is
// byte-identical to what the duplicate would have computed itself, so
// memoization preserves the parallel == serial determinism guarantee
// and every aggregate in Stats (which is still folded over the logical
// job list, duplicates included).
package batch

import (
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Job is one unit of batch work: a pair of agents and the settings
// bounding their simulation. Jobs must not share mutable state (each
// needs its own program iterators and, if used, its own progress
// observer); everything else about parallel safety is the pool's
// problem.
type Job struct {
	A, B     sim.AgentSpec
	Settings sim.Settings
	// Key, when non-nil, identifies the job's full simulation input for
	// batch-level memoization: jobs with equal Keys inside one Run
	// execute once and share the result. The Key must be comparable and
	// must truthfully cover everything the simulation depends on
	// (instance, algorithm identity, settings) — two jobs with equal
	// Keys but different inputs would silently share a wrong result.
	// Jobs with observers that must fire per job (e.g. a core.Progress
	// hook) should not set a Key: a memoized duplicate never runs, so
	// its observers never fire. nil (the default) disables memoization
	// for the job.
	Key any
	// Wire, when non-nil, is the serializable description of this job
	// (instance + registered algorithm name + settings): the form a
	// worker process can execute. Jobs without a wire form — programs
	// wired to observers, per-instance closure algorithms — always
	// execute in the coordinator process; internal/dist ships only
	// wire-formed jobs across the process boundary. Purity makes the
	// split invisible in the output.
	Wire *wire.Job
}

// Stats is the aggregate accounting of a batch, computed serially in
// input order after all workers have finished (so it is deterministic
// for every worker count).
type Stats struct {
	Jobs     int     // number of logical jobs in the batch
	Executed int     // simulations actually run (< Jobs when memoization shared results)
	Met      int     // jobs that achieved rendezvous
	Segments int64   // total program segments consumed across all jobs
	SimTime  float64 // total simulated time across all jobs (sum of EndTime)
	Workers  int     // workers actually used
}

// Workers resolves a requested parallelism degree: values ≤ 0 mean
// GOMAXPROCS, and the result is clamped to n so a small batch never
// spawns idle goroutines. (It is internal/pool's resolver, re-exported
// because batch callers size their pools through this package.)
func Workers(requested, n int) int { return pool.Workers(requested, n) }

// Run executes the jobs on a pool of workers (≤ 0 selects GOMAXPROCS)
// and returns the results in input order, plus aggregate accounting.
// Results are identical for every worker count. Jobs carrying equal
// non-nil Keys are memoized: the first occurrence (in input order)
// executes and the duplicates receive its result, so the returned slice
// and the Stats aggregates are byte-identical to a memoization-free run.
func Run(jobs []Job, workers int) ([]sim.Result, Stats) {
	results := make([]sim.Result, len(jobs))
	canon, uniq := Dedup(len(jobs), func(i int) any { return jobs[i].Key })

	w := Workers(workers, len(uniq))
	Do(len(uniq), w, func(k int) {
		i := uniq[k]
		results[i] = sim.Run(jobs[i].A, jobs[i].B, jobs[i].Settings)
	})
	for i, c := range canon {
		if c != i {
			// Deep-copy the traces so every slot owns its slices, as it
			// would had it run itself — callers may mutate trace points
			// in place (plot rescaling) without corrupting siblings.
			results[i] = results[c].CloneTraces()
		}
	}
	return results, FoldStats(results, len(uniq), w)
}

// Dedup computes the memoization structure of a job list: canon[i] is
// the index of the job whose result slot i receives (canon[i] == i for
// jobs that execute), and uniq lists the executing indices in input
// order. key(i) returns job i's memoization key; nil disables sharing
// for that job. The canonical index of every job is decided serially in
// input order, so the execution set — and with it every result — is
// independent of how the unique jobs are later scheduled (worker count,
// process count, host count).
func Dedup(n int, key func(i int) any) (canon []int, uniq []int) {
	canon = make([]int, n)
	uniq = make([]int, 0, n)
	var firstByKey map[any]int // nil until a key could still be matched
	for i := 0; i < n; i++ {
		canon[i] = i
		if k := key(i); k != nil {
			if f, ok := firstByKey[k]; ok { // lookup on a nil map is a miss
				canon[i] = f
				continue
			}
			// Remember the key only if a later job could still match it:
			// the final job canonicalizes nothing downstream, so it never
			// inserts — and a batch whose only keyed job is its last (the
			// single-job case in particular) never allocates the map at
			// all. When the map is needed, size it for every job that
			// remains so the hot all-distinct-keys path (auto-keyed
			// sweeps with no duplicates) pays one allocation instead of
			// log(n) rehash-and-grows.
			if i < n-1 {
				if firstByKey == nil {
					firstByKey = make(map[any]int, n-i)
				}
				firstByKey[k] = i
			}
		}
		uniq = append(uniq, i)
	}
	return canon, uniq
}

// FoldStats computes the aggregate accounting of a completed batch by a
// serial fold over the results in input order — the one way to
// aggregate that is deterministic for every execution schedule. It is
// shared by every engine that fills a result slice (Run, RunStream, and
// the distributed coordinator of internal/dist).
func FoldStats(results []sim.Result, executed, workers int) Stats {
	st := Stats{Jobs: len(results), Executed: executed, Workers: workers}
	for _, r := range results {
		if r.Met {
			st.Met++
		}
		st.Segments += int64(r.Segments)
		st.SimTime += r.EndTime.Float64()
	}
	// Every batch engine funnels its accounting through this fold
	// (Run, Producer.Close, the distributed coordinator), so it is the
	// one place the flight recorder learns executed-vs-memoized counts.
	mJobs.Add(uint64(st.Jobs))
	mExecuted.Add(uint64(st.Executed))
	if shared := st.Jobs - st.Executed; shared > 0 {
		mMemoized.Add(uint64(shared))
	}
	mSegments.Add(uint64(max(st.Segments, 0)))
	return st
}

// Do runs fn(i) for every i in [0, n) on a pool of `workers`
// goroutines (callers should pre-resolve the count with Workers). It
// is the indexed-parallelism primitive under Run — internal/pool's
// claim-counter loop, re-exported for consumers whose work items are
// not agent pairs (those use Run). fn must be safe to call
// concurrently for distinct i; Do returns after every index has been
// processed.
func Do(n, workers int, fn func(i int)) { pool.Do(n, workers, fn) }
