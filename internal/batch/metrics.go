// The batch layer's flight-recorder instruments (internal/obs):
// logical-vs-executed accounting, recorded once per completed batch in
// FoldStats — the single funnel every engine's stats pass through.
// Observation only; the fold itself is untouched.

package batch

import "repro/internal/obs"

var (
	mJobs = obs.NewCounter("rv_batch_jobs_total",
		"Logical jobs accounted across completed batches (memoized duplicates included).")
	mExecuted = obs.NewCounter("rv_batch_executed_total",
		"Simulations actually executed; the memoization pre-pass shares the rest.")
	mMemoized = obs.NewCounter("rv_batch_memoized_total",
		"Jobs settled by sharing a memoized duplicate's result instead of executing.")
	mSegments = obs.NewCounter("rv_batch_segments_total",
		"Trajectory segments simulated across completed batches.")
)
