package batch

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/wire"
)

// streamJob builds a quick no-meet job; gate non-nil blocks the
// program (and with it the job) until the gate closes.
func streamJob(gate <-chan struct{}) Job {
	p := prog.Empty()
	if gate != nil {
		p = prog.Program(func(yield func(prog.Instr) bool) { <-gate })
	}
	in := inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	return Job{
		A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: p, Radius: in.R},
		B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: prog.Empty(), Radius: in.R},
		Settings: sim.DefaultSettings(),
	}
}

// TestRunStreamPrefixBeforeDrain pins the streaming contract: with job
// 1 gated, results 0 must be deliverable while the batch is still
// running, and 2 must wait for 1 (input order) even though it finished
// long before.
func TestRunStreamPrefixBeforeDrain(t *testing.T) {
	gate := make(chan struct{})
	jobs := []Job{streamJob(nil), streamJob(gate), streamJob(nil)}

	st := RunStream(jobs, 3)
	select {
	case _, ok := <-st.Results():
		if !ok {
			t.Fatal("stream closed before first result")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("result 0 not streamed while job 1 was still running")
	}
	// Nothing else may arrive while job 1 blocks — in particular not
	// job 2's result, even after it completes.
	select {
	case r, ok := <-st.Results():
		t.Fatalf("out-of-order delivery while job 1 blocked: %v (open %v)", r, ok)
	default:
	}
	close(gate)
	var rest int
	for range st.Results() {
		rest++
	}
	if rest != 2 {
		t.Fatalf("tail delivered %d results, want 2", rest)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Jobs != 3 || s.Executed != 3 {
		t.Fatalf("stats %+v", s)
	}
}

// TestRunStreamMatchesRun: collecting the stream reproduces Run
// exactly — results, order, stats — memoized duplicates included.
func TestRunStreamMatchesRun(t *testing.T) {
	mk := func() []Job {
		jobs := []Job{streamJob(nil), streamJob(nil), streamJob(nil)}
		jobs[0].Key, jobs[1].Key, jobs[2].Key = "a", "b", "a" // 2 executes as dup of 0
		return jobs
	}
	want, wantStats := Run(mk(), 2)
	st := RunStream(mk(), 2)
	var got []sim.Result
	for r := range st.Results() {
		got = append(got, r)
	}
	if len(got) != len(want) {
		t.Fatalf("stream delivered %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(wire.EncodeResult(got[i]), wire.EncodeResult(want[i])) {
			t.Fatalf("result %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if gotStats := st.Stats(); gotStats != wantStats {
		t.Fatalf("stats differ: %+v vs %+v", gotStats, wantStats)
	}
	if wantStats.Executed != 2 {
		t.Fatalf("Executed = %d, want 2 (memoization)", wantStats.Executed)
	}
}

// TestRunStreamEmpty: a zero-job stream closes immediately with clean
// stats.
func TestRunStreamEmpty(t *testing.T) {
	st := RunStream(nil, 4)
	if _, ok := <-st.Results(); ok {
		t.Fatal("empty stream delivered a result")
	}
	if s := st.Stats(); s.Jobs != 0 || s.Executed != 0 {
		t.Fatalf("stats %+v", s)
	}
}
