package batch

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/inst"
	"repro/internal/sim"
)

// testJobs builds a mixed batch from the instance generator: feasible
// instances expected to meet plus infeasible ones capped by a small
// segment budget, so the batch exercises both the met and the
// budget-tripped paths.
func testJobs(t testing.TB, seed int64) []Job {
	t.Helper()
	g := inst.NewGen(seed)
	meet := sim.DefaultSettings()
	meet.MaxSegments = 120_000_000
	miss := sim.DefaultSettings()
	miss.MaxSegments = 200_000

	var jobs []Job
	add := func(in inst.Instance, s sim.Settings) {
		jobs = append(jobs, Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
			Settings: s,
		})
	}
	for _, c := range []inst.Class{
		inst.ClassMirrorInterior, inst.ClassLatecomer,
		inst.ClassClockDrift, inst.ClassRotatedDelayed,
	} {
		for _, in := range g.DrawN(c, 3) {
			add(in, meet)
		}
	}
	for _, in := range g.DrawN(inst.ClassInfeasibleShift, 4) {
		add(in, miss)
	}
	return jobs
}

// TestParallelMatchesSerial is the core determinism assertion: the same
// batch run serially and with 8 workers must produce identical results
// — MeetTime compared exactly in double-double precision, and every
// other field (MinGap, Segments, StopReason, end positions) equal too.
func TestParallelMatchesSerial(t *testing.T) {
	serial, sst := Run(testJobs(t, 7), 1)
	par, pst := Run(testJobs(t, 7), 8)
	if len(serial) != len(par) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.MeetTime != p.MeetTime { // dd.T exact comparison
			t.Errorf("job %d MeetTime: serial %v parallel %v", i, s.MeetTime, p.MeetTime)
		}
		if s.MinGap != p.MinGap {
			t.Errorf("job %d MinGap: %v vs %v", i, s.MinGap, p.MinGap)
		}
		if s.Segments != p.Segments {
			t.Errorf("job %d Segments: %d vs %d", i, s.Segments, p.Segments)
		}
		if s.Reason != p.Reason {
			t.Errorf("job %d StopReason: %v vs %v", i, s.Reason, p.Reason)
		}
		if !reflect.DeepEqual(s, p) {
			t.Errorf("job %d results differ:\nserial:   %v\nparallel: %v", i, s, p)
		}
	}
	// Aggregates are folded serially, so they must match except for the
	// worker count actually used.
	sst.Workers, pst.Workers = 0, 0
	if sst != pst {
		t.Errorf("stats differ: serial %+v parallel %+v", sst, pst)
	}
}

// TestStatsAccounting recomputes the aggregate from the per-job results
// and checks the serial fold.
func TestStatsAccounting(t *testing.T) {
	res, st := Run(testJobs(t, 11), 4)
	if st.Jobs != len(res) {
		t.Fatalf("Jobs = %d, want %d", st.Jobs, len(res))
	}
	met, segs, simTime := 0, int64(0), 0.0
	for _, r := range res {
		if r.Met {
			met++
		}
		segs += int64(r.Segments)
		simTime += r.EndTime.Float64()
	}
	if st.Met != met || st.Segments != segs || st.SimTime != simTime {
		t.Errorf("stats %+v, recomputed met=%d segs=%d time=%g", st, met, segs, simTime)
	}
	if st.Met == 0 {
		t.Error("no job met — batch not exercising the meet path")
	}
	if st.Met == st.Jobs {
		t.Error("every job met — batch not exercising the budget path")
	}
}

// TestShortBudgetDoesNotWedgePool puts a job with a tiny segment budget
// in the middle of a batch: it must stop with ReasonMaxSegments while
// the rest of the pool drains normally.
func TestShortBudgetDoesNotWedgePool(t *testing.T) {
	jobs := testJobs(t, 3)
	strangled := len(jobs) / 2
	s := jobs[strangled].Settings
	s.MaxSegments = 10
	jobs[strangled].Settings = s

	res, st := Run(jobs, 8)
	if got := res[strangled].Reason; got != sim.ReasonMaxSegments {
		t.Errorf("strangled job reason = %v, want max-segments", got)
	}
	if res[strangled].Segments > 10+1 {
		t.Errorf("strangled job consumed %d segments past its budget", res[strangled].Segments)
	}
	if st.Jobs != len(jobs) {
		t.Errorf("pool finished %d of %d jobs", st.Jobs, len(jobs))
	}
	for i, r := range res {
		if i != strangled && r.Reason == sim.ReasonMaxSegments && r.Segments == 0 {
			t.Errorf("job %d looks unexecuted: %v", i, r)
		}
	}
}

// TestWorkersResolution pins the clamping rules of the knob.
func TestWorkersResolution(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Errorf("Workers(0, 100) = %d", w)
	}
	if w := Workers(-3, 100); w < 1 {
		t.Errorf("Workers(-3, 100) = %d", w)
	}
	if w := Workers(16, 4); w != 4 {
		t.Errorf("Workers(16, 4) = %d, want 4 (clamped to batch size)", w)
	}
	if w := Workers(2, 0); w != 1 {
		t.Errorf("Workers(2, 0) = %d, want 1", w)
	}
	if w := Workers(3, 100); w != 3 {
		t.Errorf("Workers(3, 100) = %d, want 3", w)
	}
}

// TestDoCoversEveryIndexOnce hammers the claim counter under -race:
// each index must be visited exactly once, with distinct indices
// written concurrently.
func TestDoCoversEveryIndexOnce(t *testing.T) {
	const n = 10_000
	visits := make([]int, n)
	Do(n, 8, func(i int) { visits[i]++ })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	// Degenerate shapes must not hang or panic.
	Do(0, 4, func(int) { t.Error("fn called for n=0") })
	Do(3, 0, func(int) {})
}

// TestEmptyBatch pins the zero-job edge.
func TestEmptyBatch(t *testing.T) {
	res, st := Run(nil, 8)
	if len(res) != 0 || st.Jobs != 0 || st.Met != 0 {
		t.Errorf("empty batch: res=%v st=%+v", res, st)
	}
}

// memoJobs builds a batch where each underlying simulation appears
// several times under the same Key (duplicated parameter points, as a
// sweep revisiting a grid would produce).
func memoJobs(t testing.TB, seed int64, copies int, keyed bool) []Job {
	t.Helper()
	g := inst.NewGen(seed)
	set := sim.DefaultSettings()
	set.MaxSegments = 2_000_000
	var jobs []Job
	for _, c := range []inst.Class{inst.ClassLatecomer, inst.ClassClockDrift} {
		for _, in := range g.DrawN(c, 2) {
			for k := 0; k < copies; k++ {
				j := Job{
					A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
					B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
					Settings: set,
				}
				if keyed {
					j.Key = in
				}
				jobs = append(jobs, j)
			}
		}
	}
	return jobs
}

// TestMemoizationPreservesResults: keyed runs must return exactly what
// the same batch computes without memoization, for every worker count —
// the determinism guarantee extends to the dedup path.
func TestMemoizationPreservesResults(t *testing.T) {
	baseline, bst := Run(memoJobs(t, 21, 3, false), 1)
	if bst.Executed != bst.Jobs {
		t.Fatalf("unkeyed batch memoized: %+v", bst)
	}
	for _, workers := range []int{1, 2, 8} {
		got, st := Run(memoJobs(t, 21, 3, true), workers)
		if !reflect.DeepEqual(stripTraces(got), stripTraces(baseline)) {
			t.Fatalf("workers=%d: memoized results diverge from baseline", workers)
		}
		if st.Jobs != len(baseline) || st.Executed != len(baseline)/3 {
			t.Errorf("workers=%d: Jobs=%d Executed=%d, want %d and %d",
				workers, st.Jobs, st.Executed, len(baseline), len(baseline)/3)
		}
		// Aggregates fold over logical jobs, so they match the
		// memoization-free accounting exactly.
		if st.Met != bst.Met || st.Segments != bst.Segments || st.SimTime != bst.SimTime {
			t.Errorf("workers=%d: aggregates diverge: %+v vs %+v", workers, st, bst)
		}
	}
}

// stripTraces nils the (aliased) trace slices so DeepEqual compares the
// scalar outcome fields; traces are off in these settings anyway.
func stripTraces(rs []sim.Result) []sim.Result {
	out := make([]sim.Result, len(rs))
	for i, r := range rs {
		r.TraceA, r.TraceB = nil, nil
		out[i] = r
	}
	return out
}

// TestMemoizationMixedKeys: nil-keyed jobs never share, distinct keys
// never collide, and duplicates resolve to the first occurrence in
// input order.
func TestMemoizationMixedKeys(t *testing.T) {
	g := inst.NewGen(33)
	in := g.DrawN(inst.ClassLatecomer, 1)[0]
	set := sim.DefaultSettings()
	set.MaxSegments = 2_000_000
	mk := func(key any) Job {
		return Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
			Settings: set,
			Key:      key,
		}
	}
	jobs := []Job{mk(nil), mk("a"), mk(nil), mk("a"), mk("b")}
	res, st := Run(jobs, 4)
	if st.Executed != 4 { // two nil + "a" + "b"
		t.Fatalf("Executed = %d, want 4", st.Executed)
	}
	if !reflect.DeepEqual(res[1], res[3]) {
		t.Errorf("duplicate key results differ")
	}
	for i, r := range res {
		if !r.Met {
			t.Errorf("job %d did not meet: %v", i, r)
		}
	}
}

// TestMemoizedTracesIndependent: with tracing on, each memoized
// duplicate must own its trace slices — mutating one slot's trace must
// not leak into its siblings (they would have been independent had
// every job run itself).
func TestMemoizedTracesIndependent(t *testing.T) {
	g := inst.NewGen(44)
	in := g.DrawN(inst.ClassLatecomer, 1)[0]
	set := sim.DefaultSettings()
	set.MaxSegments = 2_000_000
	set.TraceCap = 64
	mk := func() Job {
		return Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
			Settings: set,
			Key:      in,
		}
	}
	res, st := Run([]Job{mk(), mk()}, 2)
	if st.Executed != 1 {
		t.Fatalf("Executed = %d, want 1", st.Executed)
	}
	if len(res[0].TraceA) == 0 || !reflect.DeepEqual(res[0].TraceA, res[1].TraceA) {
		t.Fatalf("traces missing or unequal: %d vs %d points", len(res[0].TraceA), len(res[1].TraceA))
	}
	res[1].TraceA[0].T = -1
	if res[0].TraceA[0].T == -1 {
		t.Fatal("memoized duplicate aliases the canonical trace slice")
	}
}
