package batch

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/inst"
	"repro/internal/sim"
)

// testJobs builds a mixed batch from the instance generator: feasible
// instances expected to meet plus infeasible ones capped by a small
// segment budget, so the batch exercises both the met and the
// budget-tripped paths.
func testJobs(t testing.TB, seed int64) []Job {
	t.Helper()
	g := inst.NewGen(seed)
	meet := sim.DefaultSettings()
	meet.MaxSegments = 120_000_000
	miss := sim.DefaultSettings()
	miss.MaxSegments = 200_000

	var jobs []Job
	add := func(in inst.Instance, s sim.Settings) {
		jobs = append(jobs, Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: core.Program(core.Compact(), nil), Radius: in.R},
			Settings: s,
		})
	}
	for _, c := range []inst.Class{
		inst.ClassMirrorInterior, inst.ClassLatecomer,
		inst.ClassClockDrift, inst.ClassRotatedDelayed,
	} {
		for _, in := range g.DrawN(c, 3) {
			add(in, meet)
		}
	}
	for _, in := range g.DrawN(inst.ClassInfeasibleShift, 4) {
		add(in, miss)
	}
	return jobs
}

// TestParallelMatchesSerial is the core determinism assertion: the same
// batch run serially and with 8 workers must produce identical results
// — MeetTime compared exactly in double-double precision, and every
// other field (MinGap, Segments, StopReason, end positions) equal too.
func TestParallelMatchesSerial(t *testing.T) {
	serial, sst := Run(testJobs(t, 7), 1)
	par, pst := Run(testJobs(t, 7), 8)
	if len(serial) != len(par) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.MeetTime != p.MeetTime { // dd.T exact comparison
			t.Errorf("job %d MeetTime: serial %v parallel %v", i, s.MeetTime, p.MeetTime)
		}
		if s.MinGap != p.MinGap {
			t.Errorf("job %d MinGap: %v vs %v", i, s.MinGap, p.MinGap)
		}
		if s.Segments != p.Segments {
			t.Errorf("job %d Segments: %d vs %d", i, s.Segments, p.Segments)
		}
		if s.Reason != p.Reason {
			t.Errorf("job %d StopReason: %v vs %v", i, s.Reason, p.Reason)
		}
		if !reflect.DeepEqual(s, p) {
			t.Errorf("job %d results differ:\nserial:   %v\nparallel: %v", i, s, p)
		}
	}
	// Aggregates are folded serially, so they must match except for the
	// worker count actually used.
	sst.Workers, pst.Workers = 0, 0
	if sst != pst {
		t.Errorf("stats differ: serial %+v parallel %+v", sst, pst)
	}
}

// TestStatsAccounting recomputes the aggregate from the per-job results
// and checks the serial fold.
func TestStatsAccounting(t *testing.T) {
	res, st := Run(testJobs(t, 11), 4)
	if st.Jobs != len(res) {
		t.Fatalf("Jobs = %d, want %d", st.Jobs, len(res))
	}
	met, segs, simTime := 0, int64(0), 0.0
	for _, r := range res {
		if r.Met {
			met++
		}
		segs += int64(r.Segments)
		simTime += r.EndTime.Float64()
	}
	if st.Met != met || st.Segments != segs || st.SimTime != simTime {
		t.Errorf("stats %+v, recomputed met=%d segs=%d time=%g", st, met, segs, simTime)
	}
	if st.Met == 0 {
		t.Error("no job met — batch not exercising the meet path")
	}
	if st.Met == st.Jobs {
		t.Error("every job met — batch not exercising the budget path")
	}
}

// TestShortBudgetDoesNotWedgePool puts a job with a tiny segment budget
// in the middle of a batch: it must stop with ReasonMaxSegments while
// the rest of the pool drains normally.
func TestShortBudgetDoesNotWedgePool(t *testing.T) {
	jobs := testJobs(t, 3)
	strangled := len(jobs) / 2
	s := jobs[strangled].Settings
	s.MaxSegments = 10
	jobs[strangled].Settings = s

	res, st := Run(jobs, 8)
	if got := res[strangled].Reason; got != sim.ReasonMaxSegments {
		t.Errorf("strangled job reason = %v, want max-segments", got)
	}
	if res[strangled].Segments > 10+1 {
		t.Errorf("strangled job consumed %d segments past its budget", res[strangled].Segments)
	}
	if st.Jobs != len(jobs) {
		t.Errorf("pool finished %d of %d jobs", st.Jobs, len(jobs))
	}
	for i, r := range res {
		if i != strangled && r.Reason == sim.ReasonMaxSegments && r.Segments == 0 {
			t.Errorf("job %d looks unexecuted: %v", i, r)
		}
	}
}

// TestWorkersResolution pins the clamping rules of the knob.
func TestWorkersResolution(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Errorf("Workers(0, 100) = %d", w)
	}
	if w := Workers(-3, 100); w < 1 {
		t.Errorf("Workers(-3, 100) = %d", w)
	}
	if w := Workers(16, 4); w != 4 {
		t.Errorf("Workers(16, 4) = %d, want 4 (clamped to batch size)", w)
	}
	if w := Workers(2, 0); w != 1 {
		t.Errorf("Workers(2, 0) = %d, want 1", w)
	}
	if w := Workers(3, 100); w != 3 {
		t.Errorf("Workers(3, 100) = %d, want 3", w)
	}
}

// TestDoCoversEveryIndexOnce hammers the claim counter under -race:
// each index must be visited exactly once, with distinct indices
// written concurrently.
func TestDoCoversEveryIndexOnce(t *testing.T) {
	const n = 10_000
	visits := make([]int, n)
	Do(n, 8, func(i int) { visits[i]++ })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	// Degenerate shapes must not hang or panic.
	Do(0, 4, func(int) { t.Error("fn called for n=0") })
	Do(3, 0, func(int) {})
}

// TestEmptyBatch pins the zero-job edge.
func TestEmptyBatch(t *testing.T) {
	res, st := Run(nil, 8)
	if len(res) != 0 || st.Jobs != 0 || st.Met != 0 {
		t.Errorf("empty batch: res=%v st=%+v", res, st)
	}
}
