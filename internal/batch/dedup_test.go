package batch

import (
	"testing"
)

// Dedup runs once per batch over every logical job, so its allocation
// behavior is part of the batch-pool hot path: the common cases — no
// keys at all (observer-wired jobs) and all-distinct auto-keys (sweep
// batches with no duplicates) — must not pay per-job map traffic.
// These tests pin both the structure (correctness at the edges the
// optimization carved out) and the allocation counts.

func dedupKeys(t *testing.T, keys []any) (canon, uniq []int) {
	t.Helper()
	return Dedup(len(keys), func(i int) any { return keys[i] })
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDedupEdgeCases pins the cases the allocation fix carved out of
// the general path: the final job never inserts (but must still match
// earlier keys), and a lone keyed job builds no map.
func TestDedupEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name  string
		keys  []any
		canon []int
		uniq  []int
	}{
		{"empty", nil, []int{}, []int{}},
		{"single keyed job", []any{"k"}, []int{0}, []int{0}},
		{"all nil", []any{nil, nil, nil}, []int{0, 1, 2}, []int{0, 1, 2}},
		{"all distinct", []any{"a", "b", "c"}, []int{0, 1, 2}, []int{0, 1, 2}},
		{"last job duplicates first", []any{"a", "b", "a"}, []int{0, 1, 0}, []int{0, 1}},
		{"last job distinct", []any{"a", "b", "c"}, []int{0, 1, 2}, []int{0, 1, 2}},
		{"only last job keyed", []any{nil, nil, "a"}, []int{0, 1, 2}, []int{0, 1, 2}},
		{"adjacent duplicates at tail", []any{"a", "b", "b"}, []int{0, 1, 1}, []int{0, 1}},
		{"nil between duplicates", []any{"a", nil, "a"}, []int{0, 1, 0}, []int{0, 1}},
	} {
		canon, uniq := dedupKeys(t, tc.keys)
		if !intsEqual(canon, tc.canon) || !intsEqual(uniq, tc.uniq) {
			t.Errorf("%s: Dedup = (%v, %v), want (%v, %v)", tc.name, canon, uniq, tc.canon, tc.uniq)
		}
	}
}

// TestDedupAllocs pins the allocation budget of the two hot cases. The
// all-nil path allocates exactly its two result slices; the
// all-distinct path adds one presized map (header + buckets), never a
// per-job rehash-and-grow.
func TestDedupAllocs(t *testing.T) {
	const n = 256
	nilKeys := make([]any, n)
	distinct := make([]any, n)
	for i := range distinct {
		distinct[i] = i // pre-boxed: the benchmark measures Dedup, not interface conversion
	}

	if got := testing.AllocsPerRun(20, func() {
		Dedup(n, func(i int) any { return nilKeys[i] })
	}); got > 2 {
		t.Errorf("all-nil-Key Dedup: %.1f allocs per call, want ≤ 2 (canon + uniq)", got)
	}
	if got := testing.AllocsPerRun(20, func() {
		Dedup(n, func(i int) any { return distinct[i] })
	}); got > 6 {
		// The presized map costs a constant handful of allocations
		// (header + bucket arrays) independent of n — the bound guards
		// against reintroducing per-job rehash-and-grow, which scales
		// with log(n).
		t.Errorf("all-distinct-Key Dedup: %.1f allocs per call, want ≤ 6 (slices + one presized map)", got)
	}
	if got := testing.AllocsPerRun(20, func() {
		Dedup(1, func(i int) any { return "only" })
	}); got > 2 {
		t.Errorf("single-keyed-job Dedup: %.1f allocs per call, want ≤ 2 (no map for a job with no successors)", got)
	}
}

// BenchmarkDedup measures the memoization pre-pass over the three key
// populations a batch can present. Allocation counts are what this
// benchmark guards (the time/op of a 256-entry loop is noise-level);
// the assertions live in TestDedupAllocs so a regression fails tests,
// not just the bench record.
func BenchmarkDedup(b *testing.B) {
	const n = 256
	nilKeys := make([]any, n)
	distinct := make([]any, n)
	dupHeavy := make([]any, n)
	for i := range distinct {
		distinct[i] = i
		dupHeavy[i] = i % 8 // 8 canonical jobs, 248 memoized duplicates
	}
	for _, tc := range []struct {
		name string
		keys []any
	}{
		{"NilKeys", nilKeys},
		{"DistinctKeys", distinct},
		{"DupHeavy", dupHeavy},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				Dedup(n, func(i int) any { return tc.keys[i] })
			}
		})
	}
}
