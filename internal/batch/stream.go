package batch

import (
	"sync"

	"repro/internal/sim"
)

// Stream is the ordered-delivery view of a running batch: results are
// released on Results() in input order, each as soon as the whole
// prefix before it has completed. Consumers therefore see exactly the
// sequence a serial loop would produce — byte-identical, in the same
// order — but they see the early entries while the rest of the batch is
// still running, which is what lets a sweep print its first CSV rows
// long before the slowest point finishes.
//
// The channel is buffered to the full batch size, so producers never
// block on a slow (or absent) consumer and an abandoned Stream leaks no
// goroutines.
type Stream struct {
	ch      chan sim.Result
	fin     chan struct{} // closed after stats/err are final
	mu      sync.Mutex
	results []sim.Result
	done    []bool
	front   int // next index to release
	stats   Stats
	err     error
}

// Results returns the ordered delivery channel. It is closed when the
// batch has drained — or, for distributed runs, when the engine failed;
// distinguish with Err.
func (s *Stream) Results() <-chan sim.Result { return s.ch }

// Stats blocks until the batch has drained and returns the aggregate
// accounting (identical to what Run would have returned).
func (s *Stream) Stats() Stats {
	<-s.fin
	return s.stats
}

// Err blocks until the batch has drained and reports how it ended; nil
// means every result was delivered.
func (s *Stream) Err() error {
	<-s.fin
	return s.err
}

// Producer is the filling half of a Stream, handed to the engine that
// executes the jobs. It is safe for concurrent use by many workers.
type Producer struct{ s *Stream }

// NewStream creates a Stream over n result slots plus its Producer.
// Exported for the engines that fill streams (this package's RunStream
// and the distributed coordinator); consumers only ever see the Stream.
func NewStream(n int) (*Stream, *Producer) {
	s := &Stream{
		ch:      make(chan sim.Result, n),
		fin:     make(chan struct{}),
		results: make([]sim.Result, n),
		done:    make([]bool, n),
	}
	return s, &Producer{s: s}
}

// Put records the completed result of slot i and releases every newly
// completed prefix entry to the channel, in order.
func (p *Producer) Put(i int, r sim.Result) {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done[i] {
		return
	}
	s.results[i] = r
	s.done[i] = true
	for s.front < len(s.done) && s.done[s.front] {
		s.ch <- s.results[s.front] // buffered to len(done): never blocks
		s.front++
	}
}

// Results exposes the producer-side result slice (valid after every
// slot is done); engines use it to fold Stats without recollecting.
func (p *Producer) Results() []sim.Result { return p.s.results }

// Close finalizes the stream: err non-nil marks an engine failure (some
// slots undelivered), executed/workers feed the Stats fold. It must be
// called exactly once, after the last Put.
func (p *Producer) Close(executed, workers int, err error) {
	s := p.s
	s.mu.Lock()
	s.stats = FoldStats(s.results, executed, workers)
	s.err = err
	s.mu.Unlock()
	close(s.ch)
	close(s.fin)
}

// RunStream executes the jobs exactly like Run — same pool, same
// claim-counter scheduling, same memoization, byte-identical results —
// but delivers them through a Stream as the completed prefix grows
// instead of all at once. Duplicate (memoized) jobs are released the
// moment their canonical job completes, traces deep-copied as in Run.
func RunStream(jobs []Job, workers int) *Stream {
	s, p := NewStream(len(jobs))
	go func() {
		canon, uniq := Dedup(len(jobs), func(i int) any { return jobs[i].Key })
		dups := dupsOf(canon)
		w := Workers(workers, len(uniq))
		Do(len(uniq), w, func(k int) {
			i := uniq[k]
			res := sim.Run(jobs[i].A, jobs[i].B, jobs[i].Settings)
			p.Put(i, res)
			for _, j := range dups[i] {
				p.Put(j, res.CloneTraces())
			}
		})
		p.Close(len(uniq), w, nil)
	}()
	return s
}

// DupsOf inverts a Dedup canon slice: for every canonical index, the
// indices of the duplicate slots that share its result (always larger
// than the canonical index, since Dedup scans in input order).
func DupsOf(canon []int) map[int][]int { return dupsOf(canon) }

func dupsOf(canon []int) map[int][]int {
	var dups map[int][]int
	for i, c := range canon {
		if c != i {
			if dups == nil {
				dups = make(map[int][]int)
			}
			dups[c] = append(dups[c], i)
		}
	}
	return dups
}
