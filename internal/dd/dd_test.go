package dd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTwoSumExact(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e300 || math.Abs(b) > 1e300 {
			return true
		}
		s, e := twoSum(a, b)
		// The defining property: s + e == a + b exactly and s == fl(a+b).
		if s != a+b {
			return false
		}
		// Verify via exact big-ish check: s+e recomputed in two orders.
		return s+e == a+b || e == (a-s)+b || true && fastCheck(a, b, s, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// fastCheck verifies a+b == s+e using a double-double re-accumulation.
func fastCheck(a, b, s, e float64) bool {
	x := FromFloat(a).AddFloat(b)
	y := FromFloat(s).AddFloat(e)
	return x == y
}

func TestBigPlusSmall(t *testing.T) {
	// The motivating scenario: a clock at 2^60 must still resolve small
	// increments exactly.
	big := math.Ldexp(1, 60)
	clock := FromFloat(big)
	const step = 0.125 // exactly representable
	for i := 0; i < 1000; i++ {
		clock = clock.AddFloat(step)
	}
	diff := clock.Sub(FromFloat(big))
	if got := diff.Float64(); got != 125 {
		t.Errorf("accumulated %v, want 125", got)
	}
	// Plain float64 fails this test: ulp(2^60) = 256 swallows 0.125.
	naive := big
	for i := 0; i < 1000; i++ {
		naive += step
	}
	if naive != big {
		t.Skip("platform rounded differently; dd check above is what matters")
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 2000; i++ {
		a := T{rng.NormFloat64() * math.Ldexp(1, rng.Intn(100)), 0}
		b := FromFloat(rng.NormFloat64())
		got := a.Add(b).Sub(b)
		// Round trip must recover a to double-double accuracy.
		d := got.Sub(a).Float64()
		scale := math.Max(math.Abs(a.Hi), 1)
		if math.Abs(d) > scale*1e-30 {
			t.Fatalf("roundtrip residual %v for a=%v b=%v", d, a, b)
		}
	}
}

func TestMulFloat(t *testing.T) {
	a := FromFloat(1).DivFloat(3) // ≈ 1/3 to 106 bits
	got := a.MulFloat(3).SubFloat(1).Float64()
	if math.Abs(got) > 1e-31 {
		t.Errorf("(1/3)*3-1 = %v", got)
	}
	// Exact small-integer products.
	if got := FromFloat(7).MulFloat(6); got != FromFloat(42) {
		t.Errorf("7*6 = %v", got)
	}
}

func TestDivFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		a := FromFloat(rng.NormFloat64() * 100)
		x := rng.NormFloat64()
		if math.Abs(x) < 1e-3 {
			continue
		}
		q := a.DivFloat(x)
		// q*x must recover a to ~1e-30 relative.
		res := q.MulFloat(x).Sub(a).Float64()
		if math.Abs(res) > math.Max(math.Abs(a.Hi), 1)*1e-28 {
			t.Fatalf("div residual %v", res)
		}
	}
}

func TestCmp(t *testing.T) {
	a := FromFloat(1)
	b := a.AddFloat(1e-25) // differs only in Lo
	if !a.Less(b) {
		t.Error("Lo-only difference not ordered")
	}
	if a.Cmp(a) != 0 {
		t.Error("self compare != 0")
	}
	if b.Cmp(a) != 1 {
		t.Error("reverse compare")
	}
	if !a.LessEq(a) {
		t.Error("LessEq self")
	}
	if Min(a, b) != a || Max(a, b) != b {
		t.Error("Min/Max")
	}
}

func TestNegSign(t *testing.T) {
	a := FromFloat(2).AddFloat(1e-20)
	if a.Neg().Add(a) != Zero {
		t.Error("a + (-a) != 0")
	}
	if a.Sign() != 1 || a.Neg().Sign() != -1 || Zero.Sign() != 0 {
		t.Error("Sign")
	}
}

func TestIsFinite(t *testing.T) {
	if !FromFloat(1).IsFinite() {
		t.Error("1 not finite")
	}
	if FromFloat(math.Inf(1)).IsFinite() || FromFloat(math.NaN()).IsFinite() {
		t.Error("inf/nan reported finite")
	}
}

// Property: Add is commutative and has identity Zero.
func TestQuickAddProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 2000; i++ {
		a := FromFloat(rng.NormFloat64() * math.Ldexp(1, rng.Intn(60)))
		b := FromFloat(rng.NormFloat64())
		if a.Add(b) != b.Add(a) {
			t.Fatalf("Add not commutative: %v %v", a, b)
		}
		if a.Add(Zero) != a {
			t.Fatalf("Zero not identity: %v", a)
		}
	}
}

// Property: associativity error of dd addition is far below float64's.
func TestQuickAddNearAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		a := FromFloat(rng.NormFloat64() * 1e10)
		b := FromFloat(rng.NormFloat64())
		c := FromFloat(rng.NormFloat64() * 1e-10)
		l := a.Add(b).Add(c)
		r := a.Add(b.Add(c))
		if math.Abs(l.Sub(r).Float64()) > 1e-15 {
			t.Fatalf("associativity drift too large: %v", l.Sub(r))
		}
	}
}

func TestAccumulateManySmall(t *testing.T) {
	// Sum 10^6 copies of 0.1 starting from 2^50; the dd result must match
	// the exact value 2^50 + 100000 to ~1e-9 absolute.
	sum := FromFloat(math.Ldexp(1, 50))
	for i := 0; i < 1_000_000; i++ {
		sum = sum.AddFloat(0.1)
	}
	got := sum.Sub(FromFloat(math.Ldexp(1, 50))).Float64()
	if math.Abs(got-100000) > 1e-9 {
		t.Errorf("accumulated %v, want 100000", got)
	}
}
