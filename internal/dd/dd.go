// Package dd implements double-double ("compensated") arithmetic: a value
// is represented as an unevaluated sum of two float64s (Hi + Lo) with
// |Lo| ≤ ulp(Hi)/2, giving roughly 106 bits of significand.
//
// The rendezvous algorithms of the paper interleave astronomically long
// waits (line 14 of Algorithm 1 waits 2^(15·i²) time units in phase i)
// with geometric maneuvers whose sight events must be resolved to far
// below one time unit. Accumulating absolute time in plain float64 loses
// that resolution as soon as the clock passes ~2^52; the double-double
// clock keeps ~106 bits so a clock at 2^60 still resolves 2^-46.
//
// Only the operations the simulator needs are provided: exact-sum
// construction (Knuth TwoSum, Dekker FastTwoSum), addition, subtraction,
// multiplication by a float64 (Dekker splitting), comparison and rounding.
package dd

import "math"

// T is a double-double value Hi + Lo.
type T struct {
	Hi, Lo float64
}

// Zero is the additive identity.
var Zero = T{}

// FromFloat converts a float64 exactly.
func FromFloat(x float64) T { return T{x, 0} }

// twoSum returns (s, e) with s = fl(a+b) and a+b = s+e exactly
// (Knuth's branch-free TwoSum).
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bb := s - a
	e = (a - (s - bb)) + (b - bb)
	return
}

// fastTwoSum requires |a| ≥ |b| and returns the same decomposition with
// fewer operations (Dekker).
func fastTwoSum(a, b float64) (s, e float64) {
	s = a + b
	e = b - (s - a)
	return
}

// twoProd returns (p, e) with p = fl(a·b) and a·b = p+e exactly, using
// FMA when available via math.FMA.
func twoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return
}

// Add returns a + b.
func (a T) Add(b T) T {
	s, e := twoSum(a.Hi, b.Hi)
	e += a.Lo + b.Lo
	hi, lo := fastTwoSum(s, e)
	return T{hi, lo}
}

// AddFloat returns a + x.
func (a T) AddFloat(x float64) T {
	s, e := twoSum(a.Hi, x)
	e += a.Lo
	hi, lo := fastTwoSum(s, e)
	return T{hi, lo}
}

// Sub returns a - b.
func (a T) Sub(b T) T { return a.Add(T{-b.Hi, -b.Lo}) }

// SubFloat returns a - x.
func (a T) SubFloat(x float64) T { return a.AddFloat(-x) }

// Neg returns -a.
func (a T) Neg() T { return T{-a.Hi, -a.Lo} }

// MulFloat returns a · x.
func (a T) MulFloat(x float64) T {
	p, e := twoProd(a.Hi, x)
	e += a.Lo * x
	hi, lo := fastTwoSum(p, e)
	return T{hi, lo}
}

// DivFloat returns a / x (one Newton correction step; accurate to
// double-double precision for finite results).
func (a T) DivFloat(x float64) T {
	q1 := a.Hi / x
	// r = a - q1*x computed exactly.
	p, e := twoProd(q1, x)
	r := a.Sub(T{p, e})
	q2 := (r.Hi + r.Lo) / x
	hi, lo := fastTwoSum(q1, q2)
	return T{hi, lo}
}

// Float64 rounds to the nearest float64.
func (a T) Float64() float64 { return a.Hi + a.Lo }

// Cmp returns -1, 0, or +1 as a is less than, equal to, or greater
// than b.
func (a T) Cmp(b T) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// Less reports a < b.
func (a T) Less(b T) bool { return a.Cmp(b) < 0 }

// LessEq reports a ≤ b.
func (a T) LessEq(b T) bool { return a.Cmp(b) <= 0 }

// Min returns the smaller of a and b.
func Min(a, b T) T {
	if a.Less(b) {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b T) T {
	if b.Less(a) {
		return a
	}
	return b
}

// IsFinite reports whether the value is a finite number.
func (a T) IsFinite() bool {
	return !math.IsNaN(a.Hi) && !math.IsInf(a.Hi, 0)
}

// Sign returns -1, 0, or +1 according to the sign of a.
func (a T) Sign() int { return a.Cmp(Zero) }
