// Multi-tenant scheduler tests (PR 10): concurrent dispatches over one
// shared fleet must each stay byte-identical to their own in-process
// serial run — Stats.Executed included — under clean schedules, chaos
// faults, and mid-session membership changes, for every fairness
// policy. This is the differential acceptance criterion of the
// multi-tenant tentpole: tenancy, stealing, and fairness are pure
// scheduling, so no tenant can ever observe another.
package dist

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/inst"
	"repro/internal/measure"
	"repro/internal/sim"
)

// drawInstancesSeed is drawInstances with the generator seed exposed,
// so concurrent tenants can carry distinct workloads.
func drawInstancesSeed(seed int64, n int) []inst.Instance {
	g := inst.NewGen(seed)
	var ins []inst.Instance
	for _, c := range []inst.Class{inst.ClassMirrorInterior, inst.ClassLatecomer} {
		ins = append(ins, g.DrawN(c, n)...)
	}
	return ins
}

// tenantRefs holds the in-process serial references every multi-tenant
// schedule must reproduce: two distinct batches and one sweep.
type tenantRefs struct {
	insA, insB   []inst.Instance
	set          sim.Settings
	wantA, wantB []sim.Result
	statsA       batch.Stats
	statsB       batch.Stats
	nSweep       int
	eps          []float64
	box          measure.Box
	wantSweep    measure.Stats
}

func newTenantRefs(t *testing.T) tenantRefs {
	t.Helper()
	r := tenantRefs{
		insA:   drawInstancesSeed(7, 2),
		insB:   drawInstancesSeed(11, 2),
		set:    testSettings(),
		nSweep: 150_000, // 3 chunks
		eps:    []float64{0.25, 0.5},
		box:    measure.DefaultBox(),
	}
	r.insA = append(r.insA, r.insA[0]) // a duplicate keeps memoization in the frame
	r.wantA, r.statsA = batch.Run(aurvJobs(t, r.insA, r.set), 1)
	r.wantB, r.statsB = batch.Run(aurvJobs(t, r.insB, r.set), 1)
	r.wantSweep = measure.SweepParallel(r.nSweep, r.eps, r.box, 5, 1)
	return r
}

// runTenants launches the three dispatches concurrently over the
// session and pins every tenant's bytes and Executed count against the
// serial references. The OrFallback entry points are used so faulted
// schedules (chaos, total fleet loss mid-change) still produce a
// verdict — determinism makes the splice exact, so the assertion is
// the same either way.
func runTenants(t *testing.T, f *Fleet, r tenantRefs) {
	t.Helper()
	var wg sync.WaitGroup
	var gotA, gotB []sim.Result
	var stA, stB batch.Stats
	var gotSweep measure.Stats
	wg.Add(3)
	go func() { defer wg.Done(); gotA, stA = f.RunOrFallback(aurvJobs(t, r.insA, r.set), 1) }()
	go func() { defer wg.Done(); gotB, stB = f.RunOrFallback(aurvJobs(t, r.insB, r.set), 1) }()
	go func() { defer wg.Done(); gotSweep = f.SweepOrFallback(r.nSweep, r.eps, r.box, 5, 1) }()
	wg.Wait()
	if !bytes.Equal(encodeAll(gotA), encodeAll(r.wantA)) {
		t.Error("tenant A results differ from in-process serial")
	}
	if !bytes.Equal(encodeAll(gotB), encodeAll(r.wantB)) {
		t.Error("tenant B results differ from in-process serial")
	}
	if stA.Executed != r.statsA.Executed {
		t.Errorf("tenant A Executed = %d, want %d", stA.Executed, r.statsA.Executed)
	}
	if stB.Executed != r.statsB.Executed {
		t.Errorf("tenant B Executed = %d, want %d", stB.Executed, r.statsB.Executed)
	}
	if !reflect.DeepEqual(gotSweep, r.wantSweep) {
		t.Error("sweep tenant diverges from in-process")
	}
}

// TestConcurrentDispatchesDifferential is the tentpole differential:
// three tenants (two batches + one sweep) run concurrently over one
// shared two-worker fleet under each fairness policy, and each
// tenant's bytes must match its own serial run exactly.
func TestConcurrentDispatchesDifferential(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)
	wl2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl2.Close()
	go ServeListener(wl2)

	r := newTenantRefs(t)
	policies := []struct {
		name string
		fair Fairness
	}{
		{"fifo-default", nil},
		{"fifo", FIFO{}},
		{"deepest-queue", DeepestQueue{}},
		{"weighted", Weighted{}},
	}
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Dial(Config{
				Hosts:    tcpHosts(wl.Addr().String(), wl2.Addr().String()),
				Fairness: tc.fair,
			})
			if err != nil {
				t.Fatalf("fleet dial failed: %v", err)
			}
			defer f.Close()
			runTenants(t, f, r)
		})
	}
}

// TestConcurrentDispatchesUnderChaos reruns the multi-tenant
// differential with one of the two workers behind the chaos rig:
// faults strike mid-tenancy, the recovery paths (requeue, respawn,
// stall, fallback splice) run with several dispatches live, and every
// tenant must still emerge byte-identical.
func TestConcurrentDispatchesUnderChaos(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	r := newTenantRefs(t)
	for seed := int64(1); seed <= 2; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			p, err := NewChaosProxy(wl.Addr().String(), ChaosPlan{Scripts: RandomScripts(seed, 8)})
			if err != nil {
				t.Skipf("loopback listen unavailable: %v", err)
			}
			defer p.Close()
			var log bytes.Buffer
			f, err := Dial(Config{
				Hosts:        tcpHosts(p.Addr(), wl.Addr().String()),
				Window:       2,
				RedialWait:   2 * time.Millisecond,
				StallTimeout: 250 * time.Millisecond,
				MaxRespawns:  4,
				Stderr:       &log,
			})
			if err != nil {
				t.Fatalf("fleet dial failed: %v", err)
			}
			defer f.Close()
			runTenants(t, f, r)
			if t.Failed() {
				t.Logf("coordinator log:\n%s", log.String())
			}
		})
	}
}

// TestConcurrentDispatchesMembershipChange grows and shrinks the fleet
// while the tenants are live: the session starts on one worker, a
// second joins mid-flight (AddHost), and the original drains out
// (Retire) — its in-flight jobs requeue to the newcomer. Bytes must
// not move.
func TestConcurrentDispatchesMembershipChange(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)
	wl2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl2.Close()
	go ServeListener(wl2)

	r := newTenantRefs(t)
	f, err := Dial(Config{Hosts: tcpHosts(wl.Addr().String()), Window: 1})
	if err != nil {
		t.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Let the dispatches claim their first jobs on the original
		// worker before the membership changes land mid-flight.
		time.Sleep(20 * time.Millisecond)
		if err := f.AddHost(Host{Addr: wl2.Addr().String()}); err != nil {
			t.Errorf("AddHost failed: %v", err)
			return
		}
		if err := f.Retire(wl.Addr().String()); err != nil {
			t.Errorf("Retire failed: %v", err)
		}
	}()
	runTenants(t, f, r)
	<-done
	if n := f.Size(); n != 1 {
		t.Fatalf("fleet size after add+retire = %d, want 1", n)
	}
}

// TestSnapshotDuringConcurrentDispatches pins the probe-outside-lock
// design: Snapshot taken while several tenants are mid-dispatch must
// return promptly (the matcher consuming pongs needs the scheduler
// lock Snapshot releases), see both slots, and never perturb a byte.
func TestSnapshotDuringConcurrentDispatches(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)
	wl2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl2.Close()
	go ServeListener(wl2)

	r := newTenantRefs(t)
	f, err := Dial(Config{Hosts: tcpHosts(wl.Addr().String(), wl2.Addr().String())})
	if err != nil {
		t.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()

	stop := make(chan struct{})
	snapped := make(chan FleetSnapshot, 16)
	go func() {
		for {
			select {
			case <-stop:
				close(snapped)
				return
			default:
				s := f.Snapshot()
				select {
				case snapped <- s:
				default:
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	runTenants(t, f, r)
	close(stop)
	n := 0
	for s := range snapped {
		n++
		if len(s.Slots) != 2 {
			t.Fatalf("snapshot saw %d slots, want 2", len(s.Slots))
		}
	}
	if n == 0 {
		t.Fatal("no snapshot completed while dispatches were live")
	}
}

// TestFairnessPolicies pins the pure policy arithmetic: FIFO always
// serves the head, DeepestQueue the longest queue (ties to the older
// dispatch), Weighted the largest weighted remaining fraction.
func TestFairnessPolicies(t *testing.T) {
	views := []DispatchView{
		{ID: 1, Arrival: 1, Queued: 3, Total: 10, Weight: 1},
		{ID: 2, Arrival: 2, Queued: 8, Total: 10, Weight: 1},
		{ID: 3, Arrival: 3, Queued: 8, Total: 10, Weight: 1},
	}
	if got := (FIFO{}).Pick(views); got != 0 {
		t.Errorf("FIFO.Pick = %d, want 0", got)
	}
	if got := (DeepestQueue{}).Pick(views); got != 1 {
		t.Errorf("DeepestQueue.Pick = %d, want 1 (deepest, older on tie)", got)
	}
	if got := (Weighted{}).Pick(views); got != 1 {
		t.Errorf("Weighted.Pick = %d, want 1 (equal weights reduce to deepest fraction)", got)
	}
	weighted := []DispatchView{
		{ID: 1, Arrival: 1, Queued: 4, Total: 10, Weight: 1},
		{ID: 2, Arrival: 2, Queued: 2, Total: 10, Weight: 5},
		{ID: 3, Arrival: 3, Queued: 9, Total: 10, Weight: 0}, // 0 weight reads as 1
	}
	// Scores: 0.4, 1.0 (2/10·5), 0.9 — the weight hint beats raw depth.
	if got := (Weighted{}).Pick(weighted); got != 1 {
		t.Errorf("Weighted.Pick = %d, want 1 (weighted fraction 1.0 wins)", got)
	}
}

// TestMembershipErrors pins the API edges: adding an address that
// already has an active slot and retiring an unknown address are
// errors; a retired address can be re-added with a fresh budget.
func TestMembershipErrors(t *testing.T) {
	addr, _ := countingWorker(t)
	f, err := Dial(Config{Hosts: tcpHosts(addr)})
	if err != nil {
		t.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()

	if err := f.AddHost(Host{Addr: addr}); err == nil || !strings.Contains(err.Error(), "already has an active slot") {
		t.Fatalf("duplicate AddHost error = %v, want 'already has an active slot'", err)
	}
	if err := f.Retire("no-such-host:1"); err == nil || !strings.Contains(err.Error(), "no active slot") {
		t.Fatalf("unknown Retire error = %v, want 'no active slot'", err)
	}
	if err := f.Retire(addr); err != nil {
		t.Fatalf("Retire(%s) failed: %v", addr, err)
	}
	if n := f.Size(); n != 0 {
		t.Fatalf("size after retiring the only slot = %d, want 0", n)
	}
	if err := f.AddHost(Host{Addr: addr}); err != nil {
		t.Fatalf("re-adding a retired address failed: %v", err)
	}
	if n := f.Size(); n != 1 {
		t.Fatalf("size after re-add = %d, want 1", n)
	}
}

// TestWatchHostsReconcile drives live membership through the hosts
// file: the watcher grows the fleet when an address appears, shrinks
// it when one disappears, and a batch over the churned fleet stays
// byte-identical.
func TestWatchHostsReconcile(t *testing.T) {
	addr1, _ := countingWorker(t)
	addr2, _ := countingWorker(t)

	path := filepath.Join(t.TempDir(), "hosts")
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("# fleet roster\n" + addr1 + "\n")

	hosts, err := LoadHostsFile(path)
	if err != nil {
		t.Fatalf("LoadHostsFile failed: %v", err)
	}
	f, err := Dial(Config{Hosts: hosts})
	if err != nil {
		t.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()
	stop, err := f.WatchHosts(path, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("WatchHosts failed: %v", err)
	}
	defer stop()

	waitSize := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for f.Size() != want {
			if time.Now().After(deadline) {
				t.Fatalf("fleet size = %d, want %d after hosts-file edit", f.Size(), want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	write(addr1 + "\n" + addr2 + "\n")
	waitSize(2)
	write("# shrink back\n" + addr2 + "\n")
	waitSize(1)

	ins := drawInstances(2)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	got, _, err := f.Run(aurvJobs(t, ins, set), 1)
	if err != nil {
		t.Fatalf("batch over churned fleet failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("batch over churned fleet differs from in-process serial")
	}
}
