package dist

import (
	"reflect"
	"testing"
)

// TestParseHosts pins the -hosts grammar: plain addresses, addr*pool
// hints for heterogeneous fleets, whitespace and empty entries
// tolerated, and every malformed pool hint rejected loudly — a typo'd
// hint must not silently become a worker with a default pool.
func TestParseHosts(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []Host
	}{
		{"", nil},
		{" , ,", nil},
		{"a:1", []Host{{Addr: "a:1"}}},
		{"a:1,b:2", []Host{{Addr: "a:1"}, {Addr: "b:2"}}},
		{" a:1 , b:2 ", []Host{{Addr: "a:1"}, {Addr: "b:2"}}},
		{"a:1*4", []Host{{Addr: "a:1", Pool: 4}}},
		{"a:1*4,b:2", []Host{{Addr: "a:1", Pool: 4}, {Addr: "b:2"}}},
		{"a:1 * 4", []Host{{Addr: "a:1", Pool: 4}}},
		{"host1:9101*32,host2:9101*4", []Host{{Addr: "host1:9101", Pool: 32}, {Addr: "host2:9101", Pool: 4}}},
	} {
		got, err := ParseHosts(tc.in)
		if err != nil {
			t.Errorf("ParseHosts(%q) failed: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseHosts(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseHostsRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"a:1*",    // empty pool
		"a:1*0",   // zero pool
		"a:1*-2",  // negative pool
		"a:1*x",   // non-numeric pool
		"a:1*4.5", // fractional pool
		"*4",          // pool without an address
		"a:1*4*5",     // two hints
		"a:1,*2",      // malformed entry mid-list
		"a:1*2000000", // beyond the wire codec's 1<<20 bound
	} {
		if got, err := ParseHosts(in); err == nil {
			t.Errorf("ParseHosts(%q) accepted as %+v, want error", in, got)
		}
	}
}
