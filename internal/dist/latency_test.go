package dist

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/batch"
)

// The latency rig: a TCP proxy that adds a fixed one-way delay in each
// direction while preserving pipelining — bytes are delivered
// delay-after-arrival (a delay line), not rate-limited — which is
// exactly what WAN latency does to a byte stream. Windowed dispatch
// exists to hide this; the test below measures that it does.

func delayCopy(dst io.WriteCloser, src io.Reader, delay time.Duration) {
	defer dst.Close()
	type chunk struct {
		data []byte
		due  time.Time
	}
	ch := make(chan chunk, 4096)
	go func() {
		defer close(ch)
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				ch <- chunk{data: append([]byte(nil), buf[:n]...), due: time.Now().Add(delay)}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range ch {
		time.Sleep(time.Until(c.due))
		if _, err := dst.Write(c.data); err != nil {
			return
		}
	}
}

// latencyProxy listens on loopback and forwards every connection to
// target with `delay` of one-way latency each direction.
func latencyProxy(t *testing.T, target string, delay time.Duration) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			go delayCopy(s, c, delay)
			go delayCopy(c, s, delay)
		}
	}()
	return l.Addr().String()
}

// TestWindowHidesLatency is the PR's throughput acceptance criterion:
// against a worker behind simulated network latency, a 4-deep window
// must finish the batch at least twice as fast as synchronous
// (window=1) dispatch — while producing byte-identical results. With 8
// jobs whose compute time is negligible next to a 25 ms one-way delay,
// window=1 pays ~8 round trips serially and window=4 pays ~2, so the
// expected ratio is ~4×; asserting ≥2× leaves headroom for scheduler
// noise on a loaded CI host.
func TestWindowHidesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps through simulated network latency")
	}
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	const delay = 25 * time.Millisecond
	addr := latencyProxy(t, wl.Addr().String(), delay)

	ins := drawInstances(4) // 8 distinct instances
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)

	timed := func(window int) time.Duration {
		start := time.Now()
		got, _, err := Run(aurvJobs(t, ins, set), 1,
			Config{Hosts: []string{addr}, Window: window, MaxRespawns: -1})
		if err != nil {
			t.Fatalf("window=%d run failed: %v", window, err)
		}
		if !bytes.Equal(encodeAll(got), encodeAll(want)) {
			t.Fatalf("window=%d results differ from in-process serial", window)
		}
		return time.Since(start)
	}

	sync := timed(1)
	pipe := timed(4)
	t.Logf("window=1: %v, window=4: %v (%.1fx)", sync, pipe, float64(sync)/float64(pipe))
	if pipe*2 > sync {
		t.Fatalf("windowed dispatch did not hide latency: window=1 took %v, window=4 took %v (want ≥2x)", sync, pipe)
	}
}
