package dist

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/batch"
)

// The latency rig is the chaos proxy's Delay script: a fixed one-way
// delay in each direction that preserves pipelining — frames are
// delivered delay-after-arrival (a delay line), not rate-limited —
// which is exactly what WAN latency does to a byte stream. Windowed
// dispatch exists to hide this; the test below measures that it does.

// latencyProxy wraps the chaos rig's delay line in the old helper
// shape: a loopback address forwarding to target with `delay` of
// one-way latency each direction.
func latencyProxy(t *testing.T, target string, delay time.Duration) string {
	t.Helper()
	p, err := NewChaosProxy(target, ChaosPlan{Default: ConnScript{Delay: delay}})
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	t.Cleanup(p.Close)
	return p.Addr()
}

// TestWindowHidesLatency is the PR's throughput acceptance criterion:
// against a worker behind simulated network latency, a 4-deep window
// must finish the batch at least twice as fast as synchronous
// (window=1) dispatch — while producing byte-identical results. With 8
// jobs whose compute time is negligible next to a 25 ms one-way delay,
// window=1 pays ~8 round trips serially and window=4 pays ~2, so the
// expected ratio is ~4×; asserting ≥2× leaves headroom for scheduler
// noise on a loaded CI host.
func TestWindowHidesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps through simulated network latency")
	}
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	const delay = 25 * time.Millisecond
	addr := latencyProxy(t, wl.Addr().String(), delay)

	ins := drawInstances(4) // 8 distinct instances
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)

	timed := func(label string, cfg Config) time.Duration {
		cfg.Hosts = tcpHosts(addr)
		cfg.MaxRespawns = -1
		start := time.Now()
		got, _, err := Run(aurvJobs(t, ins, set), 1, cfg)
		if err != nil {
			t.Fatalf("%s run failed: %v", label, err)
		}
		if !bytes.Equal(encodeAll(got), encodeAll(want)) {
			t.Fatalf("%s results differ from in-process serial", label)
		}
		return time.Since(start)
	}

	sync := timed("window=1", Config{Window: 1})
	pipe := timed("window=4", Config{Window: 4})
	// Adaptive (Window=0): starts at the default window and may grow
	// from observed RTT/service samples — through real latency it must
	// beat synchronous dispatch just like a fixed deep window does.
	adaptive := timed("adaptive", Config{MaxWindow: 8})
	t.Logf("window=1: %v, window=4: %v (%.1fx), adaptive: %v (%.1fx)",
		sync, pipe, float64(sync)/float64(pipe), adaptive, float64(sync)/float64(adaptive))
	if pipe*2 > sync {
		t.Fatalf("windowed dispatch did not hide latency: window=1 took %v, window=4 took %v (want ≥2x)", sync, pipe)
	}
	if adaptive*2 > sync {
		t.Fatalf("adaptive dispatch did not hide latency: window=1 took %v, adaptive took %v (want ≥2x)", sync, adaptive)
	}
}
