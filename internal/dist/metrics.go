// The dispatch stack's flight-recorder instruments (internal/obs).
// Everything here is observation only: counters and gauges updated
// from paths whose control flow never depends on them, so the
// byte-identity guarantee (DESIGN.md §6–§8, pinned by the metrics
// on/off differential test) is untouched. Per-slot families are keyed
// by the slot name ("tcp:host:port", "proc:N"); each slot resolves
// its children once at assembly time so the hot paths are bare
// atomics.

package dist

import "repro/internal/obs"

// Coordinator-side instruments.
var (
	mDispatches = obs.NewCounter("rv_dist_dispatches_total",
		"Dispatch rounds run by this coordinator (batches and sweep chunk sets).")
	mDispatched = obs.NewCounterVec("rv_dist_dispatched_total",
		"Request frames sent to workers.", "slot")
	mSettled = obs.NewCounterVec("rv_dist_settled_total",
		"Replies settled (results and deterministic job errors).", "slot")
	mRequeued = obs.NewCounterVec("rv_dist_requeued_total",
		"Jobs requeued after a worker death or stall.", "slot")
	mQuarantined = obs.NewCounter("rv_dist_quarantined_total",
		"Poison jobs quarantined as deterministic per-job errors.")
	mDeaths = obs.NewCounterVec("rv_dist_worker_deaths_total",
		"Worker connection losses: transport deaths, stalls, failed redials.", "slot")
	mBreakerOpens = obs.NewCounterVec("rv_dist_breaker_opens_total",
		"Circuit-breaker open (and half-open re-open) events.", "slot")
	mReconnects = obs.NewCounterVec("rv_dist_reconnects_total",
		"Successful slot reconnections after a death.", "slot")
	mFallbacks = obs.NewCounter("rv_dist_fallbacks_total",
		"Distributed runs (batches, streams, sweeps) degraded to in-process execution.")
	mPings = obs.NewCounter("rv_dist_ping_total",
		"Liveness pings sent to silent connections with jobs in flight.")
	mPongs = obs.NewCounter("rv_dist_pong_total",
		"Liveness pong echoes received (each carries a WorkerStats payload since wire v5).")
	mWireTxBytes = obs.NewCounter("rv_wire_tx_bytes_total",
		"Bytes this coordinator put on worker connections, after any negotiated compression.")
	mWireRxBytes = obs.NewCounter("rv_wire_rx_bytes_total",
		"Bytes this coordinator took off worker connections, before any negotiated decompression.")
	mSchedClaims = obs.NewCounterVec("rv_sched_claims_total",
		"Tasks claimed by the slot's connection from any dispatch's ready queue.", "slot")
	mSchedSteals = obs.NewCounterVec("rv_sched_steals_total",
		"Claims that switched the slot's connection to a different live dispatch (work stealing across tenants).", "slot")

	gBreakerOpen = obs.NewGaugeVec("rv_dist_breaker_open",
		"1 while the slot's circuit breaker is open, 0 when closed.", "slot")
	gInflight = obs.NewGaugeVec("rv_dist_inflight",
		"Jobs currently in flight on the slot's connection.", "slot")
	gWindow = obs.NewGaugeVec("rv_dist_window",
		"Current send-window size of the slot's connection (adaptive windows only).", "slot")
	gRTT = obs.NewGaugeVec("rv_dist_rtt_seconds",
		"EWMA reply round-trip time of the slot's connection (adaptive windows only).", "slot")
	gCompressionRatio = obs.NewGaugeVec("rv_dist_compression_ratio",
		"Uncompressed-to-wire byte ratio of the slot's connection, both directions combined; 1 when compression was not negotiated.", "slot")
	gSchedDispatchesLive = obs.NewGauge("rv_sched_dispatches_live",
		"Dispatches (tenants) currently live on this fleet.")
	gSchedQueuedJobs = obs.NewGauge("rv_sched_queued_jobs",
		"Tasks waiting in all live dispatches' ready queues (claimed and in-flight tasks excluded).")

	hJobLatency = obs.NewHistogram("rv_dist_job_latency_seconds",
		"Per-job reply round-trip latency, recorded on adaptive windows only: fixed-window dispatch deliberately skips every clock read (the PR6 hot path), so it has no timestamps to observe.",
		obs.LatencyBuckets())
)

// Worker-side instruments (live in the rvworker process, or in the
// same process when the coordinator spawns -worker subprocesses of
// itself — the slot label disambiguates nothing here, these are
// process-wide).
var (
	wStreams = obs.NewCounter("rv_worker_streams_total",
		"Coordinator streams this worker has served.")
	wJobs = obs.NewCounter("rv_worker_jobs_total",
		"Job frames received across all streams.")
	wReplies = obs.NewCounter("rv_worker_replies_total",
		"Result replies produced (executions finished).")
	wErrors = obs.NewCounter("rv_worker_errors_total",
		"Error replies produced (decode failures, panics, job errors).")
	wPings = obs.NewCounter("rv_worker_pings_total",
		"Liveness pings echoed as stats-carrying pongs.")
	wWireTxBytes = obs.NewCounter("rv_worker_wire_tx_bytes_total",
		"Bytes this worker put on coordinator streams, after any negotiated compression.")
	wWireRawBytes = obs.NewCounter("rv_worker_wire_raw_bytes_total",
		"Bytes this worker's outgoing frames would have occupied uncompressed.")
	wWireRxBytes = obs.NewCounter("rv_worker_wire_rx_bytes_total",
		"Bytes this worker took off coordinator streams, before any negotiated decompression.")

	gwInflight = obs.NewGauge("rv_worker_inflight",
		"Jobs currently executing or queued across all streams.")
	gwPool = obs.NewGauge("rv_worker_pool",
		"Most recently resolved per-stream execution pool size.")
	gwCompressionRatio = obs.NewGauge("rv_worker_compression_ratio",
		"Uncompressed-to-wire byte ratio of this worker's outgoing frames on its most recently flushed compressing stream; 0 until compression is negotiated.")
)

// slotMetrics caches one slot's children of the per-slot families, so
// the dispatch hot path records through pre-resolved pointers.
type slotMetrics struct {
	dispatched   *obs.Counter
	settled      *obs.Counter
	requeued     *obs.Counter
	deaths       *obs.Counter
	breakerOpens *obs.Counter
	reconnects   *obs.Counter
	claims       *obs.Counter
	steals       *obs.Counter

	breakerOpen *obs.Gauge
	inflight    *obs.Gauge
	window      *obs.Gauge
	rtt         *obs.Gauge
	compression *obs.Gauge
}

func newSlotMetrics(name string) *slotMetrics {
	return &slotMetrics{
		dispatched:   mDispatched.With(name),
		settled:      mSettled.With(name),
		requeued:     mRequeued.With(name),
		deaths:       mDeaths.With(name),
		breakerOpens: mBreakerOpens.With(name),
		reconnects:   mReconnects.With(name),
		claims:       mSchedClaims.With(name),
		steals:       mSchedSteals.With(name),
		breakerOpen:  gBreakerOpen.With(name),
		inflight:     gInflight.With(name),
		window:       gWindow.With(name),
		rtt:          gRTT.With(name),
		compression:  gCompressionRatio.With(name),
	}
}
