package dist

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/wire"
)

// WorkerEnv is the environment marker that switches a re-executed
// binary into worker mode (see MaybeServeStdio). Spawned stdio workers
// get it set by the coordinator.
const WorkerEnv = "RV_DIST_WORKER"

// ServeOptions shape one worker stream's execution.
type ServeOptions struct {
	// Pool caps the in-worker execution pool. 0 sizes the pool from the
	// stream's pool hint (wire.FramePool, the coordinator forwarding a
	// host:port*pool flag) or, absent one, from the first job's
	// forwarded Settings.Parallelism (itself ≤ 0 meaning GOMAXPROCS);
	// > 0 overrides both (the rvworker -pool flag, for hosts that run
	// several worker processes); negative forces strictly serial
	// execution.
	Pool int
	// Log, when non-nil, receives one "stream served" Info event per
	// served stream (peer name, job count) after the stream ends. The
	// rvworker -v flag wires it to the process logger; CI counts these
	// events to assert a shared-fleet run handshakes exactly once.
	Log *slog.Logger
	// Name labels the stream in Log events (e.g. the peer address);
	// empty means "stream".
	Name string
	// NoCompress stops the stream's hello from advertising
	// wire.CapCompress, so a coordinator asking for compression gets a
	// plain stream (the rvworker -compress=false flag: a worker whose
	// CPU is its scarce resource opts out fleet-wide).
	NoCompress bool
}

// streamStats is one stream's flight-recorder state, mirrored into
// the wire.WorkerStats payload of every pong this stream echoes.
// Counters are written by the read loop and the executor goroutines,
// read by pong — hence atomics.
type streamStats struct {
	served   atomic.Uint64
	executed atomic.Uint64
	errors   atomic.Uint64
	pings    atomic.Uint64
	inflight atomic.Int64
	pool     atomic.Int64
}

func (st *streamStats) wire() wire.WorkerStats {
	return wire.WorkerStats{
		Served:   st.served.Load(),
		Executed: st.executed.Load(),
		Errors:   st.errors.Load(),
		Pings:    st.pings.Load(),
		InFlight: uint32(max(st.inflight.Load(), 0)),
		Pool:     uint32(max(st.pool.Load(), 0)),
	}
}

// materialize rebuilds the executable batch job a wire job describes,
// looking the algorithm up in the registry. It mirrors exactly how
// rendezvous.SimulateBatch builds its jobs, which is what makes a
// worker-computed result byte-identical to a coordinator-computed one.
func materialize(j wire.Job) (batch.Job, error) {
	mk, ok := wire.Algorithm(j.Alg)
	if !ok {
		return batch.Job{}, fmt.Errorf("dist: algorithm %q is not registered in this worker", j.Alg)
	}
	return batch.Job{
		A:        sim.AgentSpec{Attrs: j.In.AgentA(), Prog: mk(j.In), Radius: j.In.R},
		B:        sim.AgentSpec{Attrs: j.In.AgentB(), Prog: mk(j.In), Radius: j.In.R},
		Settings: j.Set,
	}, nil
}

// poolSize resolves the in-worker pool for a stream whose coordinator
// sent pool hint `hint` (0: none) and whose first job forwarded
// parallelism `par`.
func poolSize(par, hint int, opts ServeOptions) int {
	switch {
	case opts.Pool > 0:
		return opts.Pool
	case opts.Pool < 0:
		return 1
	case hint > 0:
		return hint
	case par > 0:
		return par
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// coalesceBytes bounds how many reply bytes a stream buffers before
// flushing even while executors are still busy: coalescing exists to
// cut per-result flush syscalls on chunky workloads, not to hold a
// window of finished results hostage to one slow job.
const coalesceBytes = 64 << 10

// coalesceAge bounds how long the oldest pending reply may wait for
// company. Replies that finish within this of each other (a pool
// draining a burst of small results — the syscall-heavy case) travel
// as one frame; a reply whose successors are slower goes out on the
// next completion instead of waiting for the full drain, so a
// saturated pipeline keeps feeding the coordinator incrementally
// rather than in lockstep window rounds. inflight > 0 guarantees a
// future finish to perform the age check, so no timer is needed.
const coalesceAge = time.Millisecond

// replyBatcher coalesces one stream's outgoing replies: every finished
// job appends its reply to the pending batch, and the batch flushes as
// one frame (wire.FrameReplyBatch; a lone reply travels as its classic
// single frame) when the last in-flight executor finishes (the window
// drain), when the pending bytes pass coalesceBytes, or when the
// oldest pending reply has waited coalesceAge — whichever comes first.
// Batching changes syscall counts and flush timing, never a byte of
// any result.
type replyBatcher struct {
	mu       sync.Mutex
	bw       *bufio.Writer
	fw       *wire.FrameWriter // framing over bw; nil in unit tests makes newReplyBatcher wrap bw
	st       *streamStats      // stream flight recorder; nil in unit tests of the batcher alone
	age      time.Duration     // max wait of the oldest pending reply; 0 = coalesceAge
	err      error             // first write failure; sticks, suppressing the rest
	inflight int
	pending  []wire.Reply
	owned    []*wire.Buf // pooled bodies to release once flushed; index-parallel with pending, entries may be nil
	bytes    int
	scratch  []byte    // reused FrameReplyBatch assembly
	oldest   time.Time // when the oldest pending reply was added
	lastRaw  uint64    // fw.Stats() watermark for the tx byte counters
	lastWire uint64
}

// begin reserves an in-flight slot for a job entering the executor
// pool; its finish releases the slot and may trigger the drain flush.
func (rb *replyBatcher) begin() {
	rb.mu.Lock()
	rb.inflight++
	rb.mu.Unlock()
	if rb.st != nil {
		rb.st.inflight.Add(1)
		gwInflight.Add(1)
	}
}

// account records one produced reply in the stream and process flight
// recorders (observation only — the reply bytes are already queued).
func (rb *replyBatcher) account(typ byte) {
	if rb.st == nil {
		return
	}
	if typ == wire.FrameError {
		rb.st.errors.Add(1)
		wErrors.Inc()
	} else {
		rb.st.executed.Add(1)
		wReplies.Inc()
	}
}

// post queues one reply produced directly on the read loop (decode
// failures answered in order, without an executor).
func (rb *replyBatcher) post(seq uint64, typ byte, body []byte) {
	rb.mu.Lock()
	rb.add(seq, typ, body, nil)
	rb.maybeFlush()
	rb.mu.Unlock()
	rb.account(typ)
}

// finish queues one executor's reply — its body living in a pooled
// buffer the batcher releases after the flush — and releases the
// executor's in-flight slot.
func (rb *replyBatcher) finish(seq uint64, typ byte, pb *wire.Buf) {
	rb.mu.Lock()
	rb.inflight--
	rb.add(seq, typ, pb.B, pb)
	rb.maybeFlush()
	rb.mu.Unlock()
	if rb.st != nil {
		rb.st.inflight.Add(-1)
		gwInflight.Add(-1)
	}
	rb.account(typ)
}

// chunk queues one trace chunk of a streamed result. Chunks keep the
// job's in-flight slot (only the closing finish releases it) and are
// not replies in the flight recorder's sense; each chunk runs tens of
// kilobytes, so the byte bound flushes the batch promptly and a
// streamed trace never accumulates in worker memory.
func (rb *replyBatcher) chunk(seq uint64, pb *wire.Buf) {
	rb.mu.Lock()
	rb.add(seq, wire.FrameTraceChunk, pb.B, pb)
	rb.maybeFlush()
	rb.mu.Unlock()
}

func (rb *replyBatcher) add(seq uint64, typ byte, body []byte, owned *wire.Buf) {
	if rb.err != nil {
		if owned != nil {
			owned.Release()
		}
		return
	}
	if len(rb.pending) == 0 {
		rb.oldest = time.Now()
	}
	rb.pending = append(rb.pending, wire.Reply{Seq: seq, Typ: typ, Body: body})
	rb.owned = append(rb.owned, owned)
	rb.bytes += 13 + len(body)
}

func (rb *replyBatcher) maybeFlush() {
	age := rb.age
	if age == 0 {
		age = coalesceAge
	}
	if rb.inflight == 0 || rb.bytes >= coalesceBytes ||
		(len(rb.pending) > 0 && time.Since(rb.oldest) >= age) {
		rb.flush()
	}
}

// writer returns the stream's frame writer, wrapping the raw buffered
// writer on first use (unit tests construct bare batchers).
func (rb *replyBatcher) writer() *wire.FrameWriter {
	if rb.fw == nil {
		rb.fw = wire.NewFrameWriter(rb.bw)
	}
	return rb.fw
}

// flush writes the pending replies as one frame and releases their
// pooled bodies. Callers hold mu.
func (rb *replyBatcher) flush() {
	if rb.err != nil || len(rb.pending) == 0 {
		return
	}
	fw := rb.writer()
	var err error
	if len(rb.pending) == 1 {
		r := rb.pending[0]
		err = fw.WriteFrameSeq(r.Typ, r.Seq, r.Body)
	} else {
		rb.scratch = wire.AppendReplies(rb.scratch[:0], rb.pending)
		err = fw.WriteFrame(wire.FrameReplyBatch, rb.scratch)
	}
	if err == nil {
		err = rb.bw.Flush()
	}
	rb.err = err
	for i := range rb.owned {
		rb.owned[i].Release()
	}
	for i := range rb.pending {
		rb.pending[i] = wire.Reply{}
	}
	for i := range rb.owned {
		rb.owned[i] = nil
	}
	rb.pending = rb.pending[:0]
	rb.owned = rb.owned[:0]
	rb.bytes = 0
	if rb.st != nil {
		tx := fw.Stats()
		wWireRawBytes.Add(tx.Raw - rb.lastRaw)
		wWireTxBytes.Add(tx.Wire - rb.lastWire)
		rb.lastRaw, rb.lastWire = tx.Raw, tx.Wire
		if fw.Compressing() && tx.Wire > 0 {
			gwCompressionRatio.Set(float64(tx.Raw) / float64(tx.Wire))
		}
	}
}

func (rb *replyBatcher) dead() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.err != nil
}

// pong answers a liveness probe immediately, bypassing reply
// coalescing: the pong's primary job is to prove the process and the
// link alive while slow executors keep the stream otherwise silent,
// so it must not wait for reply company. Since wire v5 the echo also
// carries the stream's WorkerStats — a free flight-recorder read for
// the coordinator. Pending replies flush along with it (the stream
// stays ordered enough — the coordinator matches by sequence number,
// and a pong carries none).
func (rb *replyBatcher) pong(payload []byte) {
	var ws wire.WorkerStats
	if rb.st != nil {
		rb.st.pings.Add(1)
		wPings.Inc()
		ws = rb.st.wire()
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.err != nil {
		return
	}
	if err := rb.writer().WriteFrame(wire.FramePong, wire.EncodePong(payload, ws)); err != nil {
		rb.err = err
		return
	}
	if err := rb.bw.Flush(); err != nil {
		rb.err = err
	}
}

// enableCompression turns on deflation for the stream's outgoing
// frames (the coordinator sent FrameCompress). Under mu so it cannot
// interleave with a flush in progress.
func (rb *replyBatcher) enableCompression(minSize int) {
	rb.mu.Lock()
	rb.writer().EnableCompression(minSize)
	rb.mu.Unlock()
}

// safeExecute runs one job's executor, converting a panic into the
// deterministic per-job FrameError reply: a simulation is a pure
// function of its job, so a panicking job would panic identically on
// every worker it is requeued to — report it once as a job failure
// instead of killing a worker process (and, requeue by requeue, the
// fleet's whole respawn budget) per retry.
func safeExecute(execute func() (byte, *wire.Buf)) (typ byte, body *wire.Buf) {
	defer func() {
		if p := recover(); p != nil {
			pb := wire.GetBuf()
			pb.B = fmt.Appendf(pb.B, "job panicked on worker: %v", p)
			typ, body = wire.FrameError, pb
		}
	}()
	return execute()
}

// traceChunkPoints is the trace streaming knob: a result whose traces
// total more points than this streams as FrameTraceChunk frames of at
// most this many points each, closed by a streamed-result frame,
// instead of materializing one giant result frame. 4096 points ≈ 96KiB
// per chunk — big enough to amortize framing, small enough that the
// coordinator's torn-frame defenses and the batcher's byte bound keep
// working. A var, not a const, so tests can lower it to exercise
// streaming with small traces.
var traceChunkPoints = 4096

// streamTraces posts a result's traces as bounded chunk frames through
// the reply batcher, in order: all of trace A, then all of trace B,
// then the caller's streamed-result closer. Per-stream write order is
// what lets the coordinator reassemble by plain append.
func streamTraces(rb *replyBatcher, seq uint64, res sim.Result) {
	streamOne := func(which byte, tr []sim.TracePoint) {
		for i, idx := 0, uint32(0); i < len(tr); idx++ {
			end := min(i+traceChunkPoints, len(tr))
			cb := wire.GetBuf()
			cb.B = wire.AppendTraceChunk(cb.B, which, idx, tr[i:end])
			rb.chunk(seq, cb)
			i = end
		}
	}
	streamOne(wire.TraceChunkA, res.TraceA)
	streamOne(wire.TraceChunkB, res.TraceB)
}

// Serve runs the worker side of the protocol on one byte stream: send
// hello, then answer job frames (simulation jobs and Monte-Carlo sweep
// chunks) with result frames until the stream ends. Jobs execute on an
// in-worker pool sized by the stream's pool hint or the forwarded
// Settings.Parallelism of the stream's first job (see
// ServeOptions.Pool), so a single worker process saturates a whole
// host when the coordinator's send window keeps its pool fed; replies
// go out as jobs finish — out of coordinator order when the pool
// reorders them, and coalesced several to a frame when they finish
// close together (replyBatcher) — and the coordinator matches them by
// sequence number. Purity makes both invisible in the results.
// A clean EOF between frames returns nil (after the in-flight jobs
// drain); anything else is an error. A session coordinator holds one
// stream open across many batches, so returning means the session
// ended, not just a batch.
func Serve(r io.Reader, w io.Writer) error { return ServeWith(r, w, ServeOptions{}) }

// ServeWith is Serve with explicit options.
func ServeWith(r io.Reader, w io.Writer, opts ServeOptions) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	caps := wire.CapCompress
	if opts.NoCompress {
		caps = 0
	}
	if err := wire.WriteFrame(bw, wire.FrameHello, wire.EncodeHello(caps)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	wStreams.Inc()
	st := &streamStats{}
	fr := wire.NewFrameReader(br)
	rb := &replyBatcher{bw: bw, fw: wire.NewFrameWriter(bw), st: st}
	var (
		wg      sync.WaitGroup
		pool    chan struct{}
		poolCap int
		hint    int
		served  int
	)
	finish := func(readErr error) error {
		wg.Wait() // drain in-flight executors before reporting
		rb.mu.Lock()
		rb.flush() // safety net; the last finish() already drained
		werr := rb.err
		rb.mu.Unlock()
		if opts.Log != nil {
			name := opts.Name
			if name == "" {
				name = "stream"
			}
			opts.Log.Info("rvworker: stream served", "peer", name, "jobs", served)
		}
		if readErr != nil {
			return readErr
		}
		return werr
	}

	var lastRx uint64
	for {
		typ, pb, err := fr.ReadFrame()
		if err == io.EOF {
			return finish(nil) // coordinator closed the stream: done
		}
		if err != nil {
			return finish(err)
		}
		if rx := fr.Stats(); rx.Wire != lastRx {
			wWireRxBytes.Add(rx.Wire - lastRx)
			lastRx = rx.Wire
		}
		payload := pb.B
		if rb.dead() {
			// A reply already failed to write: the coordinator is gone.
			// Executing jobs still buffered on the read side would burn
			// CPU on results nobody can receive.
			pb.Release()
			return finish(nil)
		}
		if typ == wire.FramePing {
			// Liveness probe: echo the payload verbatim, from the read
			// loop, so the answer never queues behind the executors.
			rb.pong(payload)
			pb.Release()
			continue
		}
		if typ == wire.FramePool {
			// Stream configuration, not a job: the per-host pool hint,
			// sent before the first job (late hints cannot resize a pool
			// already running and are ignored).
			h, err := wire.DecodePoolHint(payload)
			pb.Release()
			if err != nil {
				return finish(err)
			}
			if pool == nil {
				hint = h
			}
			continue
		}
		if typ == wire.FrameCompress {
			// Stream configuration: the coordinator saw our CapCompress
			// and turned compression on. Everything it sends from here
			// on may be compressed; our replies deflate symmetrically.
			minSize, err := wire.DecodeCompressHint(payload)
			pb.Release()
			if err != nil {
				return finish(err)
			}
			if !opts.NoCompress {
				fr.EnableCompression()
				rb.enableCompression(minSize)
			}
			continue
		}
		seq, body, err := wire.SplitSeq(payload)
		if err != nil {
			pb.Release()
			return finish(err)
		}

		// Decode on the read loop (cheap, and malformed jobs answer
		// FrameError in order); execute on the pool. Decoding copies
		// everything out of the frame buffer, so it is released here.
		var execute func() (byte, *wire.Buf)
		var par int
		switch typ {
		case wire.FrameJob:
			j, err := wire.DecodeJob(body)
			pb.Release()
			if err != nil {
				rb.post(seq, wire.FrameError, []byte(err.Error()))
				continue
			}
			bj, err := materialize(j)
			if err != nil {
				rb.post(seq, wire.FrameError, []byte(err.Error()))
				continue
			}
			par = j.Set.Parallelism
			execute = func() (byte, *wire.Buf) {
				res := sim.Run(bj.A, bj.B, bj.Settings)
				out := wire.GetBuf()
				if len(res.TraceA)+len(res.TraceB) > traceChunkPoints {
					streamTraces(rb, seq, res)
					out.B = wire.AppendStreamedResult(out.B, res)
				} else {
					out.B = wire.AppendResult(out.B, res)
				}
				return wire.FrameResult, out
			}
		case wire.FrameSweepJob:
			sj, err := wire.DecodeSweepJob(body)
			pb.Release()
			if err != nil {
				rb.post(seq, wire.FrameError, []byte(err.Error()))
				continue
			}
			par = sj.Par
			execute = func() (byte, *wire.Buf) {
				out := wire.GetBuf()
				out.B = append(out.B, wire.EncodeMeasureStats(measure.Sweep(sj.N, sj.Eps, sj.Box, sj.Seed))...)
				return wire.FrameSweepResult, out
			}
		default:
			pb.Release()
			return finish(fmt.Errorf("dist: worker received unexpected frame type %d", typ))
		}
		served++
		st.served.Add(1)
		wJobs.Inc()

		// Size the pool from the job's resolved parallelism. Jobs of one
		// batch share settings, but a session stream carries many batches
		// whose settings may differ — when the resolved size changes,
		// drain the in-flight executors (a batch boundary, so the drain
		// is natural) and recreate the semaphore.
		if want := poolSize(par, hint, opts); pool == nil || want != poolCap {
			wg.Wait()
			pool = make(chan struct{}, want)
			poolCap = want
			st.pool.Store(int64(want))
			gwPool.Set(float64(want))
		}
		rb.begin()
		wg.Add(1)
		// The semaphore is claimed inside the goroutine, not on the read
		// loop: a saturated pool must not block the loop, or liveness
		// pings would queue behind executions and the coordinator would
		// eject a merely busy worker as hung. The coordinator's window
		// bounds how many of these goroutines can queue; the pool still
		// bounds how many run. Each goroutine captures the semaphore it
		// was enqueued under — a later resize happens only after
		// wg.Wait has drained every holder of the old one.
		go func(seq uint64, pool chan struct{}, execute func() (byte, *wire.Buf)) {
			defer wg.Done()
			pool <- struct{}{}
			defer func() { <-pool }()
			t, b := safeExecute(execute)
			rb.finish(seq, t, b)
		}(seq, pool, execute)
	}
}

// ServeStdio serves the worker protocol on stdin/stdout — the transport
// of coordinator-spawned subprocess workers.
func ServeStdio() error { return ServeWith(os.Stdin, os.Stdout, ServeOptions{Name: "stdio"}) }

// MaybeServeStdio turns the current process into a stdio worker and
// exits when the WorkerEnv marker is set, and returns immediately
// otherwise. Binaries that want to be their own worker fleet (every
// cmd/ main of this repo, test binaries) call it first thing in main —
// the coordinator's default WorkerCmd re-executes the current binary
// with the marker set, so a single binary serves both roles.
func MaybeServeStdio() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := ServeStdio(); err != nil {
		fmt.Fprintln(os.Stderr, "rvworker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeListener accepts connections and serves each as an independent
// worker stream (each with its own in-worker pool; host-level
// parallelism also comes from multiple connections or multiple worker
// processes). It returns the first Accept error; per-connection
// protocol errors are reported to stderr and end only their connection.
func ServeListener(l net.Listener) error { return ServeListenerWith(l, ServeOptions{}) }

// ServeListenerWith is ServeListener with explicit options (the
// rvworker -pool and -v flags).
func ServeListenerWith(l net.Listener, opts ServeOptions) error {
	return NewServer(opts).Serve(l)
}

// Server is a TCP worker with graceful shutdown: Serve accepts
// connections like ServeListener, and Shutdown drains — stop
// accepting, unblock every connection's read loop, let the in-flight
// executors finish and their replies flush, then wait for the
// handlers. It is the SIGTERM/SIGINT path of cmd/rvworker: a drained
// worker never dies mid-frame, so its coordinator sees a clean EOF
// between frames instead of a torn one.
type Server struct {
	opts    ServeOptions
	mu      sync.Mutex
	l       net.Listener
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup
}

// NewServer builds an idle server; Serve runs it.
func NewServer(opts ServeOptions) *Server {
	return &Server{opts: opts, conns: make(map[net.Conn]struct{})}
}

// Serve accepts worker connections on the listener until it fails or
// Shutdown is called; a Shutdown-initiated stop returns nil after the
// drain completes. Per-connection protocol errors are reported to
// stderr and end only their connection.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.l = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			s.wg.Wait() // a failed accept loop still drains live streams
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			// Shutdown won the race after this Accept returned: the
			// drain must not adopt a stream it will never unblock.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			co := s.opts
			co.Name = conn.RemoteAddr().String()
			err := ServeWith(conn, conn, co)
			s.mu.Lock()
			delete(s.conns, conn)
			closing := s.closing
			s.mu.Unlock()
			// A drain unblocks pending reads with an expired deadline;
			// that induced error is the mechanism, not a fault.
			if err != nil && !closing {
				slog.Warn("rvworker: connection failed", "peer", co.Name, "err", err)
			}
		}()
	}
}

// Shutdown drains the server: the listener closes (no new streams),
// every live connection's pending read is unblocked via an expired
// read deadline — ServeWith's finish path then waits for its in-flight
// executors and flushes the reply batcher (the write half keeps no
// deadline, so final replies always land) — and Shutdown returns when
// every handler has exited. The return value is the number of replies
// (results and errors) this process flushed while the drain settled:
// jobs that were in flight when the signal landed and still made it
// back to their coordinator. Safe to call at any time, including
// before Serve and more than once.
func (s *Server) Shutdown() int {
	before := RepliesFlushed()
	s.mu.Lock()
	s.closing = true
	l := s.l
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	s.wg.Wait()
	return int(RepliesFlushed() - before)
}

// RepliesFlushed reports the process-lifetime count of worker replies
// queued to coordinators (results plus error replies). Drain paths
// sample it before and after settling to report how many in-flight
// jobs actually made it out — the flight-recorder counters are the
// single source of truth, so the drain log can never disagree with
// /metrics.
func RepliesFlushed() uint64 { return wReplies.Value() + wErrors.Value() }

// ListenAndServe listens on the TCP address and serves worker
// connections forever (the cmd/rvworker -listen mode).
func ListenAndServe(addr string) error { return ListenAndServeWith(addr, ServeOptions{}) }

// ListenAndServeWith is ListenAndServe with explicit options.
func ListenAndServeWith(addr string, opts ServeOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	slog.Info("rvworker: listening", "addr", l.Addr().String())
	return ServeListenerWith(l, opts)
}
