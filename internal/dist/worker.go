package dist

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"

	"repro/internal/batch"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/wire"
)

// WorkerEnv is the environment marker that switches a re-executed
// binary into worker mode (see MaybeServeStdio). Spawned stdio workers
// get it set by the coordinator.
const WorkerEnv = "RV_DIST_WORKER"

// ServeOptions shape one worker stream's execution.
type ServeOptions struct {
	// Pool caps the in-worker execution pool. 0 sizes the pool from the
	// first job's forwarded Settings.Parallelism (itself ≤ 0 meaning
	// GOMAXPROCS); > 0 overrides the forwarded value (the rvworker
	// -pool flag, for hosts that run several worker processes);
	// negative forces strictly serial execution.
	Pool int
}

// materialize rebuilds the executable batch job a wire job describes,
// looking the algorithm up in the registry. It mirrors exactly how
// rendezvous.SimulateBatch builds its jobs, which is what makes a
// worker-computed result byte-identical to a coordinator-computed one.
func materialize(j wire.Job) (batch.Job, error) {
	mk, ok := wire.Algorithm(j.Alg)
	if !ok {
		return batch.Job{}, fmt.Errorf("dist: algorithm %q is not registered in this worker", j.Alg)
	}
	return batch.Job{
		A:        sim.AgentSpec{Attrs: j.In.AgentA(), Prog: mk(j.In), Radius: j.In.R},
		B:        sim.AgentSpec{Attrs: j.In.AgentB(), Prog: mk(j.In), Radius: j.In.R},
		Settings: j.Set,
	}, nil
}

// poolSize resolves the in-worker pool for a stream whose first job
// forwarded parallelism `par`.
func poolSize(par int, opts ServeOptions) int {
	switch {
	case opts.Pool > 0:
		return opts.Pool
	case opts.Pool < 0:
		return 1
	case par > 0:
		return par
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// Serve runs the worker side of the protocol on one byte stream: send
// hello, then answer job frames (simulation jobs and Monte-Carlo sweep
// chunks) with result frames until the stream ends. Jobs execute on an
// in-worker pool sized by the forwarded Settings.Parallelism of the
// stream's first job (see ServeOptions.Pool), so a single worker
// process saturates a whole host when the coordinator's send window
// keeps its pool fed; replies go out as jobs finish, which with a pool
// means out of coordinator order — the coordinator matches them by
// sequence number. Purity makes the pool invisible in the results.
// A clean EOF between frames returns nil (after the in-flight jobs
// drain); anything else is an error.
func Serve(r io.Reader, w io.Writer) error { return ServeWith(r, w, ServeOptions{}) }

// ServeWith is Serve with explicit options.
func ServeWith(r io.Reader, w io.Writer, opts ServeOptions) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	if err := wire.WriteFrame(bw, wire.FrameHello, wire.EncodeHello()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// The reply side is shared by every executor goroutine; the first
	// write failure sticks (the stream is dead — the read loop will see
	// it too) and suppresses the rest.
	var (
		writeMu  sync.Mutex
		writeErr error
		wg       sync.WaitGroup
		pool     chan struct{}
	)
	reply := func(seq uint64, typ byte, body []byte) {
		writeMu.Lock()
		defer writeMu.Unlock()
		if writeErr != nil {
			return
		}
		if writeErr = wire.WriteFrame(bw, typ, wire.AppendSeq(seq, body)); writeErr != nil {
			return
		}
		writeErr = bw.Flush()
	}
	finish := func(readErr error) error {
		wg.Wait() // drain in-flight executors before reporting
		if readErr != nil {
			return readErr
		}
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeErr
	}

	deadStream := func() bool {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeErr != nil
	}

	for {
		typ, payload, err := wire.ReadFrame(br)
		if err == io.EOF {
			return finish(nil) // coordinator closed the stream: done
		}
		if err != nil {
			return finish(err)
		}
		if deadStream() {
			// A reply already failed to write: the coordinator is gone.
			// Executing jobs still buffered on the read side would burn
			// CPU on results nobody can receive.
			return finish(nil)
		}
		seq, body, err := wire.SplitSeq(payload)
		if err != nil {
			return finish(err)
		}

		// Decode on the read loop (cheap, and malformed jobs answer
		// FrameError in order); execute on the pool.
		var execute func() (byte, []byte)
		var par int
		switch typ {
		case wire.FrameJob:
			j, err := wire.DecodeJob(body)
			if err != nil {
				reply(seq, wire.FrameError, []byte(err.Error()))
				continue
			}
			bj, err := materialize(j)
			if err != nil {
				reply(seq, wire.FrameError, []byte(err.Error()))
				continue
			}
			par = j.Set.Parallelism
			execute = func() (byte, []byte) {
				return wire.FrameResult, wire.EncodeResult(sim.Run(bj.A, bj.B, bj.Settings))
			}
		case wire.FrameSweepJob:
			sj, err := wire.DecodeSweepJob(body)
			if err != nil {
				reply(seq, wire.FrameError, []byte(err.Error()))
				continue
			}
			par = sj.Par
			execute = func() (byte, []byte) {
				return wire.FrameSweepResult, wire.EncodeMeasureStats(measure.Sweep(sj.N, sj.Eps, sj.Box, sj.Seed))
			}
		default:
			return finish(fmt.Errorf("dist: worker received unexpected frame type %d", typ))
		}

		if pool == nil {
			// The stream's first job fixes the pool size (jobs of one run
			// share settings); the semaphore also backpressures the read
			// loop, so a deep coordinator window cannot pile up more than
			// a pool's worth of running jobs.
			pool = make(chan struct{}, poolSize(par, opts))
		}
		pool <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-pool }()
			t, b := execute()
			reply(seq, t, b)
		}()
	}
}

// ServeStdio serves the worker protocol on stdin/stdout — the transport
// of coordinator-spawned subprocess workers.
func ServeStdio() error { return ServeWith(os.Stdin, os.Stdout, ServeOptions{}) }

// MaybeServeStdio turns the current process into a stdio worker and
// exits when the WorkerEnv marker is set, and returns immediately
// otherwise. Binaries that want to be their own worker fleet (every
// cmd/ main of this repo, test binaries) call it first thing in main —
// the coordinator's default WorkerCmd re-executes the current binary
// with the marker set, so a single binary serves both roles.
func MaybeServeStdio() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := ServeStdio(); err != nil {
		fmt.Fprintln(os.Stderr, "rvworker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeListener accepts connections and serves each as an independent
// worker stream (each with its own in-worker pool; host-level
// parallelism also comes from multiple connections or multiple worker
// processes). It returns the first Accept error; per-connection
// protocol errors are reported to stderr and end only their connection.
func ServeListener(l net.Listener) error { return ServeListenerWith(l, ServeOptions{}) }

// ServeListenerWith is ServeListener with explicit options (the
// rvworker -pool flag).
func ServeListenerWith(l net.Listener, opts ServeOptions) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := ServeWith(conn, conn, opts); err != nil {
				fmt.Fprintln(os.Stderr, "rvworker: connection:", err)
			}
		}()
	}
}

// ListenAndServe listens on the TCP address and serves worker
// connections forever (the cmd/rvworker -listen mode).
func ListenAndServe(addr string) error { return ListenAndServeWith(addr, ServeOptions{}) }

// ListenAndServeWith is ListenAndServe with explicit options.
func ListenAndServeWith(addr string, opts ServeOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "rvworker: listening on", l.Addr())
	return ServeListenerWith(l, opts)
}
