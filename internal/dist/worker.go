package dist

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"

	"repro/internal/batch"
	"repro/internal/sim"
	"repro/internal/wire"
)

// WorkerEnv is the environment marker that switches a re-executed
// binary into worker mode (see MaybeServeStdio). Spawned stdio workers
// get it set by the coordinator.
const WorkerEnv = "RV_DIST_WORKER"

// materialize rebuilds the executable batch job a wire job describes,
// looking the algorithm up in the registry. It mirrors exactly how
// rendezvous.SimulateBatch builds its jobs, which is what makes a
// worker-computed result byte-identical to a coordinator-computed one.
func materialize(j wire.Job) (batch.Job, error) {
	mk, ok := wire.Algorithm(j.Alg)
	if !ok {
		return batch.Job{}, fmt.Errorf("dist: algorithm %q is not registered in this worker", j.Alg)
	}
	return batch.Job{
		A:        sim.AgentSpec{Attrs: j.In.AgentA(), Prog: mk(j.In), Radius: j.In.R},
		B:        sim.AgentSpec{Attrs: j.In.AgentB(), Prog: mk(j.In), Radius: j.In.R},
		Settings: j.Set,
	}, nil
}

// Serve runs the worker side of the protocol on one byte stream: send
// hello, then answer job frames with result frames until the stream
// ends. Jobs are executed serially — process-level parallelism is the
// coordinator's job (it spawns or dials as many workers as it wants).
// A clean EOF between frames returns nil; anything else is an error.
func Serve(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	if err := wire.WriteFrame(bw, wire.FrameHello, wire.EncodeHello()); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err == io.EOF {
			return nil // coordinator closed the stream: done
		}
		if err != nil {
			return err
		}
		if typ != wire.FrameJob {
			return fmt.Errorf("dist: worker received unexpected frame type %d", typ)
		}
		seq, body, err := wire.SplitSeq(payload)
		if err != nil {
			return err
		}
		var reply []byte
		replyType := wire.FrameResult
		if j, err := wire.DecodeJob(body); err != nil {
			replyType, reply = wire.FrameError, []byte(err.Error())
		} else if bj, err := materialize(j); err != nil {
			replyType, reply = wire.FrameError, []byte(err.Error())
		} else {
			res := sim.Run(bj.A, bj.B, bj.Settings)
			reply = wire.EncodeResult(res)
		}
		if err := wire.WriteFrame(bw, replyType, wire.AppendSeq(seq, reply)); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// ServeStdio serves the worker protocol on stdin/stdout — the transport
// of coordinator-spawned subprocess workers.
func ServeStdio() error { return Serve(os.Stdin, os.Stdout) }

// MaybeServeStdio turns the current process into a stdio worker and
// exits when the WorkerEnv marker is set, and returns immediately
// otherwise. Binaries that want to be their own worker fleet (every
// cmd/ main of this repo, test binaries) call it first thing in main —
// the coordinator's default WorkerCmd re-executes the current binary
// with the marker set, so a single binary serves both roles.
func MaybeServeStdio() {
	if os.Getenv(WorkerEnv) == "" {
		return
	}
	if err := ServeStdio(); err != nil {
		fmt.Fprintln(os.Stderr, "rvworker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeListener accepts connections and serves each as an independent
// worker stream (jobs on one connection run serially; parallelism comes
// from multiple connections or multiple worker processes). It returns
// the first Accept error; per-connection protocol errors are reported
// to stderr and end only their connection.
func ServeListener(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := Serve(conn, conn); err != nil {
				fmt.Fprintln(os.Stderr, "rvworker: connection:", err)
			}
		}()
	}
}

// ListenAndServe listens on the TCP address and serves worker
// connections forever (the cmd/rvworker -listen mode).
func ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "rvworker: listening on", l.Addr())
	return ServeListener(l)
}
