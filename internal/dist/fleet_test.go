package dist

import (
	"bytes"
	"net"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/batch"
	"repro/internal/measure"
	"repro/internal/sim"
)

// countingWorker serves real worker streams on a loopback listener and
// counts accepted connections — the instrument for asserting how many
// times a coordinator actually dialed.
func countingWorker(t *testing.T) (addr string, conns *atomic.Int64) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	conns = new(atomic.Int64)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func() {
				defer conn.Close()
				Serve(conn, conn)
			}()
		}
	}()
	return l.Addr().String(), conns
}

// TestFleetSingleHandshake is the session acceptance criterion: one
// shared fleet across several batches and a sweep dials (and
// handshakes) each host exactly once, where the per-call path pays one
// dial per call — and every run stays byte-identical to in-process
// serial, memoization accounting included.
func TestFleetSingleHandshake(t *testing.T) {
	addr, conns := countingWorker(t)
	cfg := Config{Hosts: tcpHosts(addr)}

	ins := drawInstances(3)
	ins = append(ins, ins[0]) // a duplicate for the memoization path
	set := testSettings()
	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)

	const nSweep = 150_000 // 3 chunks
	eps := []float64{0.25, 0.5}
	box := measure.DefaultBox()
	wantSweep := measure.SweepParallel(nSweep, eps, box, 5, 1)

	f, err := Dial(cfg)
	if err != nil {
		t.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()
	const batches = 3
	for k := 0; k < batches; k++ {
		got, gotStats, err := f.Run(aurvJobs(t, ins, set), 1)
		if err != nil {
			t.Fatalf("fleet batch %d failed: %v", k, err)
		}
		if !bytes.Equal(encodeAll(got), encodeAll(want)) {
			t.Fatalf("fleet batch %d differs from in-process serial", k)
		}
		if gotStats.Executed != wantStats.Executed {
			t.Fatalf("fleet batch %d Executed = %d, want %d", k, gotStats.Executed, wantStats.Executed)
		}
	}
	gotSweep, err := f.Sweep(nSweep, eps, box, 5, 1)
	if err != nil {
		t.Fatalf("fleet sweep failed: %v", err)
	}
	if !reflect.DeepEqual(gotSweep, wantSweep) {
		t.Fatal("fleet sweep diverges from in-process")
	}
	if n := conns.Load(); n != 1 {
		t.Fatalf("shared fleet dialed %d times across %d batches + 1 sweep, want exactly 1", n, batches)
	}
	f.Close()

	// The per-call path dials an ephemeral session per batch: N calls,
	// N handshakes — the cost the session exists to amortize.
	for k := 0; k < batches; k++ {
		got, _, err := Run(aurvJobs(t, ins, set), 1, cfg)
		if err != nil {
			t.Fatalf("per-call batch %d failed: %v", k, err)
		}
		if !bytes.Equal(encodeAll(got), encodeAll(want)) {
			t.Fatalf("per-call batch %d differs from in-process serial", k)
		}
	}
	if n := conns.Load(); n != 1+batches {
		t.Fatalf("per-call path dialed %d times total, want %d (1 session + %d calls)", n, 1+batches, batches)
	}
}

// TestFleetClosedRefusesWork: dispatch after Close must fail (and the
// OrFallback wrappers must then complete in-process, byte-identically).
func TestFleetClosedRefusesWork(t *testing.T) {
	addr, _ := countingWorker(t)
	f, err := Dial(Config{Hosts: tcpHosts(addr)})
	if err != nil {
		t.Fatalf("fleet dial failed: %v", err)
	}
	f.Close()

	ins := drawInstances(1)[:1]
	set := testSettings()
	if _, _, err := f.Run(aurvJobs(t, ins, set), 1); err == nil {
		t.Fatal("closed fleet accepted a batch")
	}
	var log bytes.Buffer
	f.cfg.Stderr = &log
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	got, _ := f.RunOrFallback(aurvJobs(t, ins, set), 1)
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("closed-fleet fallback differs from in-process")
	}
	if !bytes.Contains(log.Bytes(), []byte("in-process")) {
		t.Fatalf("closed-fleet fallback did not warn:\n%s", log.String())
	}
}

// TestFleetStreamOrFallback: the session's streaming path delivers the
// full batch in input order over a live fleet.
func TestFleetStreamOrFallback(t *testing.T) {
	addr, conns := countingWorker(t)
	f, err := Dial(Config{Hosts: tcpHosts(addr)})
	if err != nil {
		t.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()

	ins := drawInstances(2)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	for k := 0; k < 2; k++ {
		var got []sim.Result
		for r := range f.StreamOrFallback(aurvJobs(t, ins, set), 1) {
			got = append(got, r)
		}
		if !bytes.Equal(encodeAll(got), encodeAll(want)) {
			t.Fatalf("streamed batch %d differs from in-process serial", k)
		}
	}
	if n := conns.Load(); n != 1 {
		t.Fatalf("streaming over the session dialed %d times, want 1", n)
	}
}

// TestFleetHeterogeneousPools pins the host:port*pool hint path: a
// 2-worker fleet with different per-host pools (1 and 3) — while the
// jobs forward a third Parallelism value — must remain byte-identical
// to the in-process serial run, Stats.Executed included. The hint is
// pure scheduling; this differential is the determinism witness the
// ISSUE names.
func TestFleetHeterogeneousPools(t *testing.T) {
	a1, _ := countingWorker(t)
	a2, _ := countingWorker(t)

	ins := drawInstances(4)
	ins = append(ins, ins[2]) // a duplicate for the memoization path
	set := testSettings()
	set.Parallelism = 2 // forwarded — the per-host hints override it

	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)
	got, gotStats, err := Run(aurvJobs(t, ins, set), 1, Config{
		Hosts: []Host{{Addr: a1, Pool: 1}, {Addr: a2, Pool: 3}},
	})
	if err != nil {
		t.Fatalf("heterogeneous run failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("heterogeneous-pool results differ from in-process serial")
	}
	if gotStats.Executed != wantStats.Executed || gotStats.Executed != len(ins)-1 {
		t.Fatalf("Executed = %d, want %d", gotStats.Executed, len(ins)-1)
	}
	if gotStats.Met != wantStats.Met || gotStats.Segments != wantStats.Segments {
		t.Fatalf("aggregate stats diverge: %+v vs %+v", gotStats, wantStats)
	}
}
