// Live fleet membership (PR 10): slots join and drain mid-session.
// AddHost dials a new TCP worker and grafts it into the running
// scheduler as a fresh slot — its runner starts claiming from live
// dispatches immediately. Retire drains a slot: its in-flight jobs
// requeue through the same (blameless) path a death takes, and the
// slot leaves service for good. WatchHosts polls a hosts file and
// reconciles the fleet against it, so an operator can grow or shrink
// a long-running session by editing one file. All of it is pure
// scheduling: membership changes move which connection serves a job,
// never the job's bytes.

package dist

import (
	"errors"
	"fmt"
	"os"
	"time"
)

// AddHost dials one TCP worker endpoint and adds it to the running
// session as a new slot. The dial (and handshake) happens before the
// scheduler learns anything, so a dead host costs the caller a dial
// timeout but never stalls dispatches in flight. Adding an address
// that already has an active (non-retired) slot is an error; a
// retired slot's address can be re-added — the new slot starts with a
// fresh respawn budget, which is exactly what an operator replacing a
// crashed host wants.
func (f *Fleet) AddHost(h Host) error {
	name := "tcp:" + h.Addr
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("dist: fleet is closed")
	}
	for _, s := range f.slots {
		if s.name == name && !s.retired && !s.draining {
			f.mu.Unlock()
			return fmt.Errorf("dist: host %s already has an active slot", h.Addr)
		}
	}
	f.mu.Unlock()
	cfg := f.cfg
	s := &slot{name: name, met: newSlotMetrics(name), dial: func() (*workerConn, error) { return dialWorker(h, cfg) }}
	wc, err := s.dial()
	if err != nil {
		return err
	}
	wc.win = newAdaptiveWindow(cfg)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		wc.close()
		return errors.New("dist: fleet is closed")
	}
	s.wc = wc
	f.slots = append(f.slots, s)
	f.startSlot(s)
	f.cond.Broadcast()
	f.mu.Unlock()
	return nil
}

// Retire drains the slot serving addr (with or without the "tcp:"
// prefix; "proc:N" names a subprocess slot) and blocks until it has
// left service: its connection is torn down, every in-flight job is
// requeued — blamelessly, via the same path a death takes, so
// quarantine evidence never accrues from an operator's drain — and
// the slot retires for good. Retiring the last able slot strands any
// live dispatches exactly as total fleet loss would.
func (f *Fleet) Retire(addr string) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("dist: fleet is closed")
	}
	var target *slot
	for _, s := range f.slots {
		if (s.name == addr || s.name == "tcp:"+addr) && !s.retired && !s.draining {
			target = s
			break
		}
	}
	if target == nil {
		f.mu.Unlock()
		return fmt.Errorf("dist: no active slot %q to retire", addr)
	}
	target.draining = true
	f.cond.Broadcast()
	f.mu.Unlock()
	target.interrupt() // abort any backoff sleep or in-flight dial
	<-target.done      // runner exits only after the drain bookkeeping ran
	return nil
}

// WatchHosts reconciles the fleet against a hosts file: the file is
// parsed now (fatally — a broken initial file is a config error) and
// then polled every interval (min 100ms; 0 selects 2s), adding a
// slot for every address that appears and retiring the slot of every
// address that disappears. Only TCP slots are managed; subprocess
// slots ("proc:N") are never touched. The file uses the -hosts flag
// syntax, comma- or newline-separated (addr or addr*pool). Reconcile
// failures after the initial load — an unreadable file, a malformed
// entry, an unreachable new host — are logged and retried next tick,
// never fatal: a long-running session must survive a fat-fingered
// edit. The returned stop function ends the watch (idempotent); Close
// does not stop it, so call stop before Close.
func (f *Fleet) WatchHosts(path string, interval time.Duration) (stop func(), err error) {
	hosts, err := loadHostsFile(path)
	if err != nil {
		return nil, err
	}
	if err := f.reconcileHosts(hosts); err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = 2 * time.Second
	} else if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	lg := logOf(f.cfg)
	stopC := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stopC:
				return
			case <-tick.C:
				hosts, err := loadHostsFile(path)
				if err != nil {
					lg.Warn("dist: hosts file unreadable; keeping current fleet", "path", path, "err", err)
					continue
				}
				if err := f.reconcileHosts(hosts); err != nil {
					lg.Warn("dist: hosts file reconcile incomplete", "path", path, "err", err)
				}
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(stopC)
			<-done
		}
	}, nil
}

// LoadHostsFile reads and parses one hosts file: the -hosts flag
// syntax with newlines also accepted as separators and '#' starting a
// comment line. It is the parse WatchHosts applies on every poll,
// exported so CLIs can seed a fleet from the same file they then
// watch.
func LoadHostsFile(path string) ([]Host, error) { return loadHostsFile(path) }

// loadHostsFile reads and parses one hosts file (ParseHosts syntax;
// newlines are treated as separators, '#' starts a comment line).
func loadHostsFile(path string) ([]Host, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cleaned := make([]byte, 0, len(raw))
	atLineStart := true
	skipping := false
	for _, c := range raw {
		switch {
		case c == '\n':
			cleaned = append(cleaned, ',')
			atLineStart, skipping = true, false
		case skipping:
		case c == '#' && atLineStart:
			skipping = true
		default:
			cleaned = append(cleaned, c)
			atLineStart = false
		}
	}
	return ParseHosts(string(cleaned))
}

// reconcileHosts diffs the desired host set against the fleet's
// active TCP slots and applies the difference: AddHost for newcomers,
// Retire for leavers. Errors are joined (one bad host must not block
// the rest of the diff).
func (f *Fleet) reconcileHosts(hosts []Host) error {
	want := make(map[string]Host, len(hosts))
	for _, h := range hosts {
		want["tcp:"+h.Addr] = h
	}
	f.mu.Lock()
	var retire []string
	have := make(map[string]bool)
	for _, s := range f.slots {
		if s.retired || s.draining || len(s.name) < 4 || s.name[:4] != "tcp:" {
			continue
		}
		have[s.name] = true
		if _, ok := want[s.name]; !ok {
			retire = append(retire, s.name)
		}
	}
	f.mu.Unlock()
	var errs []error
	for name, h := range want {
		if !have[name] {
			if err := f.AddHost(h); err != nil {
				errs = append(errs, err)
			}
		}
	}
	for _, name := range retire {
		if err := f.Retire(name); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
