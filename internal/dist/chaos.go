package dist

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Chaos rig: a deterministic fault-injecting transport for the
// differential suites. A ChaosProxy sits between a coordinator and a
// real TCP worker as a frame-aware man-in-the-middle — it reassembles
// wire frames on each direction and forwards them one by one, so a
// scripted fault strikes an exact frame index, reproducibly, instead
// of whichever byte a timing race happens to land on. Every fault
// models a real failure the dispatch engine claims to survive:
//
//	FaultDrop      worker crash / connection reset at a frame boundary
//	FaultHang      silent blackhole: the conn stays open, frames vanish
//	FaultTruncate  peer death mid-write: a torn frame
//	FaultCorrupt   protocol corruption: a frame of an impossible type
//	Delay          WAN latency, per frame, pipelining preserved
//
// FaultCorrupt flips the frame's type byte rather than a payload byte:
// the codec deliberately delegates payload integrity to the transport
// (TCP and pipe checksums — a flipped float payload decodes "validly"
// to wrong bits, which no checksum-free codec can detect), so the
// detectable corruption class is framing/protocol corruption, and that
// is what the rig injects. The chaos differential suite asserts that
// every scripted fault still yields results byte-identical to an
// in-process serial run — fault recovery is pure scheduling.
type FaultKind int

const (
	// FaultDrop closes both directions just before forwarding the
	// indexed frame — the peer appears to crash at a frame boundary.
	FaultDrop FaultKind = iota + 1
	// FaultHang stops forwarding this direction's frames from the
	// indexed frame on (they are read and discarded, so the sender
	// never blocks); the connection stays open and silent. Only the
	// coordinator's liveness deadline can recover from this one.
	FaultHang
	// FaultTruncate forwards roughly half of the indexed frame's
	// bytes, then closes both directions — a peer dying mid-write.
	FaultTruncate
	// FaultCorrupt forwards the indexed frame with its type byte
	// flipped to an impossible value; the receiver must detect the
	// protocol violation and retire the connection.
	FaultCorrupt
)

// Fault schedules one fault at a 0-based frame index of its direction.
// The worker's hello is toCoord frame 0; a pool hint, when the host
// has one, is toWorker frame 0.
type Fault struct {
	Kind  FaultKind
	Frame int
}

// ConnScript is the fault schedule of one proxied connection.
type ConnScript struct {
	// Delay is a per-frame one-way forwarding delay applied to both
	// directions. It is a delay line, not a stall: later frames are
	// read while earlier ones wait, so pipelining survives and a
	// window of W jobs costs one RTT, not W.
	Delay time.Duration
	// Bandwidth caps each direction at the given bytes per second,
	// modeled as serialization delay: each frame occupies the link for
	// size/Bandwidth after the previous frame finishes transmitting, and
	// Delay (propagation) stacks on top — the textbook latency model a
	// real WAN imposes. Zero means uncapped. Frames on the wire count at
	// their transported size, so negotiated compression genuinely buys
	// throughput through a capped proxy.
	Bandwidth int64
	// ToWorker faults strike coordinator→worker frames; ToCoord faults
	// strike worker→coordinator frames.
	ToWorker []Fault
	ToCoord  []Fault
}

// ChaosPlan scripts a proxy: connection i (in accept order) runs
// Scripts[i]; connections past the end run Default. The zero Default
// is a clean pass-through, which is what lets a script kill a
// connection and still let the coordinator's redial recover.
type ChaosPlan struct {
	Scripts []ConnScript
	Default ConnScript
}

func (p ChaosPlan) script(i int) ConnScript {
	if i < len(p.Scripts) {
		return p.Scripts[i]
	}
	return p.Default
}

// ChaosProxy is the listening fault injector; point Config.Hosts at
// Addr and every coordinator connection is scripted.
type ChaosProxy struct {
	l      net.Listener
	target string
	plan   ChaosPlan

	mu       sync.Mutex
	accepted int
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewChaosProxy starts a proxy on a loopback port forwarding to the
// target worker address under the plan.
func NewChaosProxy(target string, plan ChaosPlan) (*ChaosProxy, error) {
	return ListenChaosProxy("127.0.0.1:0", target, plan)
}

// ListenChaosProxy is NewChaosProxy on an explicit listen address, for
// rigs (the CI WAN leg's rvwanproxy) that need a predictable endpoint
// rather than a kernel-assigned port.
func ListenChaosProxy(listen, target string, plan ChaosPlan) (*ChaosProxy, error) {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{l: l, target: target, plan: plan, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address coordinators should dial.
func (p *ChaosProxy) Addr() string { return p.l.Addr().String() }

// Close stops accepting and severs every proxied connection.
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.l.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (p *ChaosProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *ChaosProxy) acceptLoop() {
	for {
		in, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		n := p.accepted
		p.accepted++
		closed := p.closed
		p.mu.Unlock()
		if closed {
			in.Close()
			return
		}
		go p.serve(in, p.plan.script(n))
	}
}

func (p *ChaosProxy) serve(in net.Conn, sc ConnScript) {
	out, err := net.Dial("tcp", p.target)
	if err != nil {
		in.Close()
		return
	}
	if !p.track(in) || !p.track(out) {
		in.Close()
		out.Close()
		return
	}
	// Any fault or transport error severs both directions: half-open
	// proxied connections model nothing the engine distinguishes, and
	// closing both makes every scripted fault visible to both peers
	// the way a real crash is.
	var once sync.Once
	closeBoth := func() {
		once.Do(func() {
			in.Close()
			out.Close()
			p.untrack(in)
			p.untrack(out)
		})
	}
	go pump(out, in, sc.ToWorker, sc.Delay, sc.Bandwidth, closeBoth)
	go pump(in, out, sc.ToCoord, sc.Delay, sc.Bandwidth, closeBoth)
}

// chunk is one scheduled write of the delay line: raw bytes due at a
// time, optionally followed by a close (truncate/drop faults).
type chunk struct {
	data  []byte
	due   time.Time
	close bool
}

// pump forwards frames src→dst, applying the direction's faults by
// frame index and the script's delay and bandwidth cap. The reader
// half keeps consuming src even while earlier frames wait in the delay
// line (pipelining) and after a hang fault (so the sender never blocks
// on a full buffer); the writer half performs the scheduled writes.
func pump(dst, src net.Conn, faults []Fault, delay time.Duration, bw int64, closeBoth func()) {
	line := make(chan chunk, 64)
	go func() { // writer: drain the delay line
		defer closeBoth()
		for c := range line {
			if !c.due.IsZero() {
				if d := time.Until(c.due); d > 0 {
					time.Sleep(d)
				}
			}
			if len(c.data) > 0 {
				if _, err := dst.Write(c.data); err != nil {
					return
				}
			}
			if c.close {
				return
			}
		}
	}()

	defer close(line)
	br := bufio.NewReader(src)
	hung := false
	// busyUntil is the serialization clock of the capped link: the
	// instant the previous frame's last byte clears it. A frame starts
	// transmitting at max(now, busyUntil), occupies size/bw, and then
	// propagates for delay — so back-to-back frames queue behind each
	// other the way they would on a real capped pipe.
	var busyUntil time.Time
	for i := 0; ; i++ {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			// Transport over: sever both sides (delay-line remnants are
			// irrelevant — a real crash loses buffered bytes too).
			closeBoth()
			return
		}
		if hung {
			continue // blackhole: consume and discard
		}
		var f *Fault
		for j := range faults {
			switch faults[j].Kind {
			case FaultHang:
				if i >= faults[j].Frame {
					f = &faults[j]
				}
			default:
				if i == faults[j].Frame {
					f = &faults[j]
				}
			}
			if f != nil {
				break
			}
		}
		buf := encodeRaw(typ, payload)
		var due time.Time
		if bw > 0 {
			now := time.Now()
			if busyUntil.Before(now) {
				busyUntil = now
			}
			busyUntil = busyUntil.Add(time.Duration(float64(len(buf)) / float64(bw) * float64(time.Second)))
			due = busyUntil.Add(delay)
		} else if delay > 0 {
			due = time.Now().Add(delay)
		}
		if f == nil {
			line <- chunk{data: buf, due: due}
			continue
		}
		switch f.Kind {
		case FaultDrop:
			line <- chunk{due: due, close: true}
			return
		case FaultHang:
			hung = true
		case FaultTruncate:
			line <- chunk{data: buf[:5+len(payload)/2], due: due, close: true}
			return
		case FaultCorrupt:
			buf[4] = 0xFF
			line <- chunk{data: buf, due: due}
		}
	}
}

// encodeRaw rebuilds the frame bytes wire.WriteFrame would produce.
func encodeRaw(typ byte, payload []byte) []byte {
	buf := make([]byte, 0, 5+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)+1))
	buf = append(buf, typ)
	return append(buf, payload...)
}

// RandomScripts derives a reproducible fault plan from a seed: one
// script per expected connection, drawn from a splitmix64 stream, so
// the chaos soak sweeps seeds and any failing seed replays exactly.
// Faults never strike frame 0 of a direction — the handshake — so a
// scripted connection always assembles and dies mid-run, which is the
// regime the requeue/redial machinery owns (handshake failures are
// covered separately and synchronously by Dial's own error path).
func RandomScripts(seed int64, conns int) []ConnScript {
	x := uint64(seed)
	next := func() uint64 {
		// splitmix64: tiny, seedable, and good enough to scatter faults.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	scripts := make([]ConnScript, conns)
	for i := range scripts {
		frame := 1 + int(next()%4)
		switch next() % 6 {
		case 0:
			// clean connection
		case 1:
			scripts[i].Delay = time.Duration(1+next()%8) * time.Millisecond
		case 2:
			scripts[i].ToCoord = []Fault{{Kind: FaultDrop, Frame: frame}}
		case 3:
			scripts[i].ToCoord = []Fault{{Kind: FaultHang, Frame: frame}}
		case 4:
			scripts[i].ToCoord = []Fault{{Kind: FaultTruncate, Frame: frame}}
		case 5:
			scripts[i].ToCoord = []Fault{{Kind: FaultCorrupt, Frame: frame}}
		}
	}
	return scripts
}
