package dist

import (
	"bufio"
	"bytes"
	"testing"
	"time"

	"repro/internal/wire"
)

// The adaptive window controller is pure arithmetic over observed
// durations, so it is unit-tested directly with synthetic samples —
// no sleeping, no network. The behavioral end (an adaptive connection
// beating window=1 through real latency) is asserted by
// TestWindowHidesLatency in latency_test.go.

func TestNewAdaptiveWindowModes(t *testing.T) {
	for _, tc := range []struct {
		cfg      Config
		fixed    bool
		cur, max int
	}{
		{Config{Window: 7}, true, 7, 7},                             // explicit window: fixed
		{Config{Window: 1}, true, 1, 1},                             // synchronous stays synchronous
		{Config{MaxWindow: -1}, true, DefaultWindow, DefaultWindow}, // adaptation disabled
		{Config{}, false, DefaultWindow, DefaultMaxWindow},
		{Config{MaxWindow: 64}, false, DefaultWindow, 64},
		{Config{MaxWindow: 2}, false, 2, 2}, // cap below the start clamps the start
	} {
		w := newAdaptiveWindow(tc.cfg)
		if w.fixed != tc.fixed || w.cur != tc.cur || w.max != tc.max {
			t.Errorf("newAdaptiveWindow(%+v) = {fixed:%v cur:%d max:%d}, want {%v %d %d}",
				tc.cfg, w.fixed, w.cur, w.max, tc.fixed, tc.cur, tc.max)
		}
	}
}

// TestAdaptiveWindowGrowsUnderLatency: with RTT far above the service
// gap (a WAN link over a fast worker), the window must climb to the
// bandwidth-delay product's neighborhood, bounded by max.
func TestAdaptiveWindowGrowsUnderLatency(t *testing.T) {
	w := newAdaptiveWindow(Config{MaxWindow: 16})
	for i := 0; i < 100; i++ {
		w.observe(25*time.Millisecond, time.Millisecond) // target ≈ 26, capped at 16
	}
	if w.cur != 16 {
		t.Fatalf("window = %d after sustained latency, want the cap 16", w.cur)
	}
}

// TestAdaptiveWindowShrinksWhenFast: on a link whose RTT is on the
// order of the service gap (loopback), the window must fall back
// toward ~2 — pipelining one extra request suffices, and a small
// window strands fewer jobs on a worker death.
func TestAdaptiveWindowShrinksWhenFast(t *testing.T) {
	w := newAdaptiveWindow(Config{MaxWindow: 16})
	for i := 0; i < 100; i++ {
		w.observe(25*time.Millisecond, time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		w.observe(time.Millisecond, time.Millisecond) // target = 2
	}
	if w.cur != 2 {
		t.Fatalf("window = %d after the link sped up, want 2", w.cur)
	}
}

// TestAdaptiveWindowDoesNotChaseItsQueue is the self-reference
// regression: on a service-bound connection every reply's RTT includes
// the time it queued behind the window's predecessors — a signal that
// grows with the window itself. Feeding the controller exactly that
// (rtt = cur × service, gap = service) must NOT ratchet the window to
// the cap; the min-RTT filter pins the target near where it started.
func TestAdaptiveWindowDoesNotChaseItsQueue(t *testing.T) {
	w := newAdaptiveWindow(Config{MaxWindow: 32})
	const service = 10 * time.Millisecond
	for i := 0; i < 200; i++ {
		w.observe(time.Duration(w.cur)*service, service)
	}
	if w.cur > DefaultWindow+1 {
		t.Fatalf("window ratcheted to %d chasing its own queueing delay (started at %d, cap 32)",
			w.cur, DefaultWindow)
	}
}

// TestAdaptiveWindowNeverLeavesBounds fuzzes the controller with
// pathological samples: the window must stay in [1, max] throughout.
func TestAdaptiveWindowNeverLeavesBounds(t *testing.T) {
	w := newAdaptiveWindow(Config{MaxWindow: 8})
	samples := []struct{ rtt, gap time.Duration }{
		{0, 0}, {time.Hour, time.Nanosecond}, {time.Nanosecond, time.Hour},
		{-time.Second, time.Second}, {time.Second, -time.Second},
	}
	for i := 0; i < 50; i++ {
		s := samples[i%len(samples)]
		w.observe(s.rtt, s.gap)
		if w.cur < 1 || w.cur > 8 {
			t.Fatalf("window %d left [1, 8] on sample %d (%v)", w.cur, i, s)
		}
	}
}

// TestAdaptiveWindowAdaptsOnSameTickReplies is the dropped-observation
// regression: on loopback links (or coarse clocks) whole reply batches
// land on the same clock tick, so every inter-frame gap is zero. The
// old settle path skipped observe for zero gaps, which starved the
// EWMA on exactly the links that most need the window to shrink — the
// controller sat at the initial DefaultWindow forever. settleGap must
// report same-tick frames as observations (observe's internal floor
// absorbs the zero), so a fast link walks the window down to 2.
func TestAdaptiveWindowAdaptsOnSameTickReplies(t *testing.T) {
	w := newAdaptiveWindow(Config{}) // adaptive, starts at DefaultWindow=4
	now := time.Unix(1, 0)           // every frame arrives on this one tick

	if gap, ok := w.settleGap(now, 1); ok {
		t.Fatalf("first frame after idle reported an observation (gap %v)", gap)
	}
	for i := 0; i < 50; i++ {
		gap, ok := w.settleGap(now, 3) // coalesced batch, zero spacing
		if !ok {
			t.Fatalf("same-tick frame %d dropped instead of observed", i)
		}
		for j := 0; j < 3; j++ {
			w.observe(0, gap) // rtt also same-tick: both ride the floor
		}
	}
	if w.cur != 2 {
		t.Fatalf("window = %d after sustained same-tick replies, want 2 (EWMA starved?)", w.cur)
	}
}

// TestSettleGapFixedWindowNoBookkeeping: a fixed window has no
// controller to feed — settleGap must report nothing to observe and
// leave lastReply untouched (the caller skips its clock reads
// entirely on this path).
func TestSettleGapFixedWindowNoBookkeeping(t *testing.T) {
	w := newAdaptiveWindow(Config{Window: 3})
	if _, ok := w.settleGap(time.Unix(1, 0), 1); ok {
		t.Fatal("fixed window reported an observation")
	}
	if !w.lastReply.IsZero() {
		t.Fatal("fixed window tracked a reply timestamp")
	}
}

// TestSettleGapSpreadsCoalescedBatch: the inter-frame spacing must be
// divided across the batch so the controller sees per-reply service
// rate, not per-flush.
func TestSettleGapSpreadsCoalescedBatch(t *testing.T) {
	w := newAdaptiveWindow(Config{})
	t0 := time.Unix(1, 0)
	w.settleGap(t0, 1)
	gap, ok := w.settleGap(t0.Add(40*time.Millisecond), 4)
	if !ok || gap != 10*time.Millisecond {
		t.Fatalf("settleGap = (%v, %v), want (10ms, true)", gap, ok)
	}
}

func TestFixedWindowIgnoresObservations(t *testing.T) {
	w := newAdaptiveWindow(Config{Window: 3})
	for i := 0; i < 50; i++ {
		w.observe(25*time.Millisecond, time.Millisecond)
	}
	if w.cur != 3 {
		t.Fatalf("fixed window moved to %d", w.cur)
	}
}

// flushedFrame is one frame a batcher flushed, decoded for assertions.
type flushedFrame struct {
	typ     byte
	payload []byte
}

// readAllFrames drains every complete frame a batcher flushed.
func readAllFrames(t *testing.T, buf *bytes.Buffer) []flushedFrame {
	t.Helper()
	var frames []flushedFrame
	for buf.Len() > 0 {
		typ, payload, err := wire.ReadFrame(buf)
		if err != nil {
			t.Fatalf("reading flushed frame: %v", err)
		}
		frames = append(frames, flushedFrame{typ: typ, payload: payload})
	}
	return frames
}

// finishBytes adapts the pooled finish signature for literal test
// payloads.
func finishBytes(rb *replyBatcher, seq uint64, typ byte, body []byte) {
	pb := wire.GetBuf()
	pb.B = append(pb.B[:0], body...)
	rb.finish(seq, typ, pb)
}

// TestReplyBatcherCoalescesDrain: three replies finished while the
// stream stays busy must travel as ONE FrameReplyBatch flush when the
// last in-flight job drains — the syscall reduction the coalescing
// exists for.
func TestReplyBatcherCoalescesDrain(t *testing.T) {
	var buf bytes.Buffer
	// Huge age bound: this test pins the drain trigger alone, and must
	// not flake if a loaded CI machine stalls between finish calls.
	rb := &replyBatcher{bw: bufio.NewWriter(&buf), age: time.Hour}
	for i := 0; i < 3; i++ {
		rb.begin()
	}
	finishBytes(rb, 0, wire.FrameResult, []byte("r0"))
	finishBytes(rb, 2, wire.FrameError, []byte("e2"))
	if buf.Len() != 0 {
		t.Fatal("batcher flushed before the window drained")
	}
	finishBytes(rb, 1, wire.FrameResult, []byte("r1"))
	frames := readAllFrames(t, &buf)
	if len(frames) != 1 || frames[0].typ != wire.FrameReplyBatch {
		t.Fatalf("drain produced %d frames (first type %d), want one FrameReplyBatch", len(frames), frames[0].typ)
	}
	replies, err := wire.DecodeReplies(frames[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 3 {
		t.Fatalf("batch carries %d replies, want 3", len(replies))
	}
	// Finish order preserved inside the frame; types per entry.
	if replies[0].Seq != 0 || replies[1].Seq != 2 || replies[1].Typ != wire.FrameError || replies[2].Seq != 1 {
		t.Fatalf("batch entries wrong: %+v", replies)
	}
}

// TestReplyBatcherSingleReplyClassicFrame: a lone reply needs no batch
// wrapper — it travels as the classic seq-prefixed single frame.
func TestReplyBatcherSingleReplyClassicFrame(t *testing.T) {
	var buf bytes.Buffer
	rb := &replyBatcher{bw: bufio.NewWriter(&buf)}
	rb.begin()
	finishBytes(rb, 5, wire.FrameResult, []byte("only"))
	frames := readAllFrames(t, &buf)
	if len(frames) != 1 || frames[0].typ != wire.FrameResult {
		t.Fatalf("lone reply produced %d frames (first type %d), want one FrameResult", len(frames), frames[0].typ)
	}
	seq, body, err := wire.SplitSeq(frames[0].payload)
	if err != nil || seq != 5 || !bytes.Equal(body, []byte("only")) {
		t.Fatalf("lone reply mangled: seq %d body %q err %v", seq, body, err)
	}
}

// TestReplyBatcherSizeBound: pending bytes past coalesceBytes flush
// even while executors are still in flight, bounding worker memory and
// keeping the pipeline moving on trace-laden results.
func TestReplyBatcherSizeBound(t *testing.T) {
	var buf bytes.Buffer
	rb := &replyBatcher{bw: bufio.NewWriter(&buf)}
	rb.begin()
	rb.begin()
	big := make([]byte, coalesceBytes)
	finishBytes(rb, 0, wire.FrameResult, big)
	if buf.Len() == 0 {
		t.Fatal("oversized pending batch did not flush while a job was still in flight")
	}
	finishBytes(rb, 1, wire.FrameResult, []byte("tail"))
	frames := readAllFrames(t, &buf)
	if len(frames) != 2 {
		t.Fatalf("%d frames, want 2 (size-bound flush + drain flush)", len(frames))
	}
}

// TestReplyBatcherAgeBound: a pending reply whose successors are slow
// goes out on the next completion once it has waited past the age
// bound, even with jobs still in flight — the guard against lockstep
// window rounds on a saturated pipeline.
func TestReplyBatcherAgeBound(t *testing.T) {
	var buf bytes.Buffer
	rb := &replyBatcher{bw: bufio.NewWriter(&buf), age: 2 * time.Millisecond}
	for i := 0; i < 3; i++ {
		rb.begin()
	}
	finishBytes(rb, 0, wire.FrameResult, []byte("r0"))
	if buf.Len() != 0 {
		t.Fatal("fresh reply flushed before its age bound")
	}
	time.Sleep(5 * time.Millisecond)
	finishBytes(rb, 1, wire.FrameResult, []byte("r1")) // r0 is now over-age: flush both
	if buf.Len() == 0 {
		t.Fatal("over-age pending reply did not flush while a job was still in flight")
	}
	finishBytes(rb, 2, wire.FrameResult, []byte("r2"))
	frames := readAllFrames(t, &buf)
	if len(frames) != 2 {
		t.Fatalf("%d frames, want 2 (age-bound flush + drain flush)", len(frames))
	}
}

// TestReplyBatcherPost: read-loop replies (decode failures) flush
// immediately when nothing is in flight.
func TestReplyBatcherPost(t *testing.T) {
	var buf bytes.Buffer
	rb := &replyBatcher{bw: bufio.NewWriter(&buf)}
	rb.post(9, wire.FrameError, []byte("bad job"))
	frames := readAllFrames(t, &buf)
	if len(frames) != 1 || frames[0].typ != wire.FrameError {
		t.Fatalf("posted error did not flush as a single FrameError (%d frames)", len(frames))
	}
}
