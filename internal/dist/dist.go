// Package dist distributes batch execution across worker processes —
// local subprocesses speaking length-prefixed frames over stdio pipes,
// remote workers reached over TCP — while preserving the batch
// engine's determinism guarantee end to end: any worker-process count,
// any host mix, any interleaving of completions produces a result
// slice byte-identical to an in-process serial run.
//
// The guarantee has three legs, each inherited from a layer below:
//
//  1. sim.Run is a pure function of (instance, algorithm, settings);
//  2. the wire codec (internal/wire) round-trips every input and
//     output bit-exactly, and algorithms cross the boundary by
//     registered name, rebuilt identically on the worker;
//  3. the coordinator keeps internal/batch's discipline — memoization
//     canon/uniq decided serially in input order before dispatch,
//     results stored by input index, aggregates folded serially — so
//     scheduling (which worker, which order, how many jobs a
//     connection pipelines in its window, even a worker dying with a
//     window full of jobs that are requeued to survivors or to its own
//     respawned successor) changes wall-clock time and nothing else.
//
// Jobs without a wire form (programs wired to observers, closure-built
// per-instance algorithms) cannot cross a process boundary; the
// coordinator runs them on an in-process pool concurrently with the
// remote dispatch, which purity again makes invisible in the output.
package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/sim"
	"repro/internal/wire"
)

// helloTimeout bounds how long the coordinator waits for a freshly
// spawned or dialed worker to identify itself; a peer that is not a
// worker (wrong port, a main that forgot MaybeServeStdio) would
// otherwise hang the batch forever.
const helloTimeout = 10 * time.Second

// Config selects the worker fleet of a distributed run and shapes its
// dispatch (window depth, respawn policy).
type Config struct {
	// Hosts are TCP endpoints of already-running workers
	// (cmd/rvworker -listen). Each contributes one pipelined worker
	// connection (up to Window jobs in flight, executed by the worker's
	// in-process pool).
	Hosts []string
	// Procs is the number of local worker subprocesses to spawn for
	// the run (stdio transport). They are torn down when the run ends.
	Procs int
	// Cmd is the command line used to spawn local workers. Empty
	// selects the current executable re-executed in worker mode (the
	// WorkerEnv marker + MaybeServeStdio handshake).
	Cmd []string
	// Stderr receives the spawned workers' stderr; nil inherits the
	// coordinator's.
	Stderr io.Writer
	// Window is the number of jobs kept in flight per worker
	// connection. 0 selects DefaultWindow; 1 restores synchronous
	// request/response dispatch. Deeper windows hide network latency
	// and keep in-worker pools fed; they cannot change a result.
	Window int
	// MaxRespawns bounds how many times one fleet slot reconnects
	// (re-dial a TCP host, respawn a stdio subprocess) after mid-run
	// deaths. 0 selects DefaultMaxRespawns; negative disables
	// respawning (a dead worker retires its slot, as before PR 4).
	MaxRespawns int
	// RedialWait is the backoff before a slot's first reconnection
	// attempt, doubling per consecutive attempt. 0 selects
	// DefaultRedialWait.
	RedialWait time.Duration
}

// Enabled reports whether the config names any workers at all.
func (c Config) Enabled() bool { return len(c.Hosts) > 0 || c.Procs > 0 }

// ParseHosts splits a comma-separated endpoint list into Config.Hosts
// form, trimming whitespace and dropping empty entries — the one
// parser behind every -hosts flag and Settings.Hosts.
func ParseHosts(s string) []string {
	var hosts []string
	for _, h := range strings.Split(s, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// RunOrFallback is Run with the standard degradation policy: when the
// config names no fleet, or the distributed run fails (no worker
// reachable, every worker died, a job failed on a worker), the batch
// completes in-process instead — byte-identical by the determinism
// guarantee — after a warning on the config's stderr. A mid-run
// failure keeps the delivered ordered prefix and recomputes only the
// rest, so a single bad slot does not cost the whole batch twice.
func RunOrFallback(jobs []batch.Job, localWorkers int, cfg Config) ([]sim.Result, batch.Stats) {
	if !cfg.Enabled() {
		return batch.Run(jobs, localWorkers)
	}
	st, err := RunStream(jobs, localWorkers, cfg)
	if err != nil {
		fmt.Fprintf(stderrOf(cfg), "dist: distributed batch failed (%v); falling back to in-process\n", err)
		return batch.Run(jobs, localWorkers)
	}
	results := make([]sim.Result, 0, len(jobs))
	for r := range st.Results() {
		results = append(results, r)
	}
	if err := st.Err(); err == nil {
		return results, st.Stats()
	} else {
		fmt.Fprintf(stderrOf(cfg), "dist: distributed batch failed after %d results (%v); finishing in-process\n", len(results), err)
	}
	suffix, _ := batch.Run(jobs[len(results):], localWorkers)
	results = append(results, suffix...)
	// Accounting on the splice path: report the canonical execution set
	// (what a clean run of this batch executes); the suffix re-dedups
	// independently, so the actual execution count may have been higher.
	_, uniq := batch.Dedup(len(jobs), func(i int) any { return jobs[i].Key })
	return results, batch.FoldStats(results, len(uniq), batch.Workers(localWorkers, len(jobs)))
}

// StreamOrFallback is RunStream with the same degradation policy as
// RunOrFallback, flattened to a plain ordered channel: every result is
// delivered in input order exactly once — distributed while the fleet
// holds, spliced with an in-process run of the undelivered suffix if it
// fails (determinism makes the splice exact). This is the one home of
// the streaming fallback discipline; the public SimulateBatchStream is
// a thin wrapper.
func StreamOrFallback(jobs []batch.Job, localWorkers int, cfg Config) <-chan sim.Result {
	out := make(chan sim.Result, len(jobs))
	go func() {
		defer close(out)
		delivered := 0
		if cfg.Enabled() {
			st, err := RunStream(jobs, localWorkers, cfg)
			if err == nil {
				for r := range st.Results() {
					out <- r
					delivered++
				}
				if err = st.Err(); err == nil {
					return
				}
			}
			fmt.Fprintf(stderrOf(cfg), "dist: distributed batch failed after %d results (%v); finishing in-process\n", delivered, err)
		}
		for r := range batch.RunStream(jobs[delivered:], localWorkers).Results() {
			out <- r
		}
	}()
	return out
}

// Run executes the jobs across the configured worker fleet and returns
// results in input order plus aggregate accounting, byte-identical to
// batch.Run on the same jobs. localWorkers sizes the in-process pool
// for jobs without a wire form (≤ 0 selects GOMAXPROCS). The error is
// non-nil only when results are incomplete — no worker could be
// started, every worker died, or a job failed deterministically on a
// worker; the caller can then fall back to in-process execution, which
// purity guarantees produces the same output.
func Run(jobs []batch.Job, localWorkers int, cfg Config) ([]sim.Result, batch.Stats, error) {
	st, err := RunStream(jobs, localWorkers, cfg)
	if err != nil {
		return nil, batch.Stats{}, err
	}
	results := make([]sim.Result, 0, len(jobs))
	for r := range st.Results() {
		results = append(results, r)
	}
	if err := st.Err(); err != nil {
		return nil, batch.Stats{}, err
	}
	return results, st.Stats(), nil
}

// RunStream is Run with ordered streaming delivery: the returned
// Stream releases results in input order as the completed prefix
// grows, so consumers act on early results while workers are still
// grinding through the rest. A non-nil error means the run could not
// start (no worker reachable) and nothing was delivered; failures
// after startup surface through Stream.Err after the channel closes,
// with the delivered prefix still byte-exact.
func RunStream(jobs []batch.Job, localWorkers int, cfg Config) (*batch.Stream, error) {
	canon, uniq := batch.Dedup(len(jobs), func(i int) any { return jobs[i].Key })

	// Partition the executing set: wire-formed jobs can ship to worker
	// processes, the rest run here. The partition is pure bookkeeping —
	// results land by input index either way.
	var remote, local []int
	for _, i := range uniq {
		if jobs[i].Wire != nil {
			remote = append(remote, i)
		} else {
			local = append(local, i)
		}
	}

	var slots []*slot
	if len(remote) > 0 {
		// Cap the fleet at the remote-job count. Feeders are no longer
		// synchronous — each connection pipelines a whole window — so the
		// old "one in-flight job each" reading of this cap is gone, but
		// the pigeonhole bound that mattered survives it: a fleet larger
		// than the job count guarantees workers that never claim a job
		// yet still pay spawn and handshake cost. What the window does
		// change is the other side of the formula: dispatch clamps each
		// connection's window to ceil(jobs/fleet), the largest share a
		// connection could hold if the batch spread evenly, so a small
		// batch on a wide fleet doesn't reserve in-flight slots no
		// schedule could fill.
		if cfg.Procs > len(remote) {
			cfg.Procs = len(remote)
		}
		if len(cfg.Hosts) > len(remote) {
			cfg.Hosts = cfg.Hosts[:len(remote)]
		}
		var errs []error
		slots, errs = assemble(cfg)
		if len(slots) == 0 {
			return nil, fmt.Errorf("dist: no worker reachable: %w", errors.Join(errs...))
		}
		for _, e := range errs {
			fmt.Fprintln(stderrOf(cfg), "dist: worker unavailable:", e)
		}
	}

	s, p := batch.NewStream(len(jobs))
	go run(jobs, canon, uniq, remote, local, slots, localWorkers, cfg, p)
	return s, nil
}

// stderrMu serializes every write the distribution subsystem makes to
// a run's stderr: per-slot supervisors report deaths and reconnects
// concurrently, and spawned workers' stderr is copied by os/exec
// goroutines — the caller-supplied Config.Stderr (often a plain
// strings.Builder in tests) is not required to cope with that on its
// own.
var stderrMu sync.Mutex

type lockedWriter struct{ w io.Writer }

func (lw lockedWriter) Write(p []byte) (int, error) {
	stderrMu.Lock()
	defer stderrMu.Unlock()
	return lw.w.Write(p)
}

func stderrOf(cfg Config) io.Writer {
	if cfg.Stderr != nil {
		return lockedWriter{w: cfg.Stderr}
	}
	return lockedWriter{w: os.Stderr}
}

// run is the coordinator engine: the windowed dispatch engine
// (engine.go) pipelines remote jobs over the fleet, an in-process pool
// runs the local jobs concurrently, and every completion releases the
// job's result (and its memoized duplicates) into the stream.
func run(jobs []batch.Job, canon, uniq, remote, local []int, slots []*slot, localWorkers int, cfg Config, p *batch.Producer) {
	dups := batch.DupsOf(canon)
	deliver := func(i int, r sim.Result) {
		p.Put(i, r)
		for _, j := range dups[i] {
			p.Put(j, r.CloneTraces())
		}
	}

	var wg sync.WaitGroup
	localPool := 0
	if len(local) > 0 {
		localPool = batch.Workers(localWorkers, len(local))
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch.Do(len(local), localPool, func(k int) {
				i := local[k]
				deliver(i, sim.Run(jobs[i].A, jobs[i].B, jobs[i].Settings))
			})
		}()
	}

	var distErr error
	if len(remote) > 0 {
		tasks := make([]task, len(remote))
		for k, i := range remote {
			i := i
			tasks[k] = task{
				id:      i,
				payload: wire.EncodeJob(*jobs[i].Wire),
				deliver: func(body []byte) error {
					res, err := wire.DecodeResult(body)
					if err != nil {
						return err
					}
					deliver(i, res)
					return nil
				},
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			distErr = dispatch(slots, tasks, wire.FrameJob, wire.FrameResult, cfg)
		}()
	}

	wg.Wait()
	p.Close(len(uniq), len(slots)+localPool, distErr)
}

// jobError marks a deterministic per-job failure reported by a worker
// (FrameError): retrying elsewhere would fail the same way.
type jobError struct{ msg string }

func (e *jobError) Error() string { return e.msg }

// workerConn is one worker connection (spawned subprocess or TCP). The
// read and write halves are independent: drive's sender goroutine owns
// bw, its reader goroutine owns br.
type workerConn struct {
	name      string
	br        *bufio.Reader
	bw        *bufio.Writer
	closeOnce sync.Once
	closeFn   func()
}

func (wc *workerConn) close() { wc.closeOnce.Do(wc.closeFn) }

// send writes one seq-prefixed request frame and flushes it onto the
// wire, so a job is visible to the worker the moment send returns.
func (wc *workerConn) send(seq uint64, typ byte, payload []byte) error {
	if err := wire.WriteFrame(wc.bw, typ, wire.AppendSeq(seq, payload)); err != nil {
		return err
	}
	return wc.bw.Flush()
}

// assemble builds the worker fleet as supervisable slots: dial every
// host, spawn every requested subprocess — all concurrently, so one
// dead host costs one dial timeout, not a serial sum of them. Each
// slot carries its reconnection recipe, which is what lets the engine
// re-dial a lost host or respawn a dead subprocess mid-run. Individual
// failures are collected, not fatal — the run proceeds on whatever
// subset came up (and only fails outright when that subset is empty).
func assemble(cfg Config) ([]*slot, []error) {
	n := len(cfg.Hosts) + cfg.Procs
	slots := make([]*slot, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for k, addr := range cfg.Hosts {
		go func(k int, addr string) {
			defer wg.Done()
			s := &slot{name: "tcp:" + addr, dial: func() (*workerConn, error) { return dialWorker(addr) }}
			if s.wc, errs[k] = s.dial(); errs[k] == nil {
				slots[k] = s
			}
		}(k, addr)
	}
	for k := 0; k < cfg.Procs; k++ {
		go func(k int) {
			defer wg.Done()
			s := &slot{
				name: fmt.Sprintf("proc:%d", k),
				dial: func() (*workerConn, error) { return spawnWorker(cfg.Cmd, stderrOf(cfg), k) },
			}
			if s.wc, errs[len(cfg.Hosts)+k] = s.dial(); errs[len(cfg.Hosts)+k] == nil {
				slots[len(cfg.Hosts)+k] = s
			}
		}(k)
	}
	wg.Wait()
	up := slots[:0]
	var failed []error
	for k := 0; k < n; k++ {
		if errs[k] != nil {
			failed = append(failed, errs[k])
			continue
		}
		up = append(up, slots[k])
	}
	return up, failed
}

// awaitHello reads and validates the worker's hello frame, bounded by
// helloTimeout; cancel must unblock the pending read (kill the process,
// close the connection) so the reader goroutine is always reaped.
func awaitHello(name string, br *bufio.Reader, cancel func()) error {
	type frame struct {
		typ     byte
		payload []byte
		err     error
	}
	ch := make(chan frame, 1)
	go func() {
		typ, payload, err := wire.ReadFrame(br)
		ch <- frame{typ, payload, err}
	}()
	select {
	case f := <-ch:
		if f.err != nil {
			return fmt.Errorf("dist: %s: reading hello: %w", name, f.err)
		}
		if f.typ != wire.FrameHello {
			return fmt.Errorf("dist: %s: first frame is type %d, not hello", name, f.typ)
		}
		if err := wire.CheckHello(f.payload); err != nil {
			return fmt.Errorf("dist: %s: %w", name, err)
		}
		return nil
	case <-time.After(helloTimeout):
		cancel()
		<-ch
		return fmt.Errorf("dist: %s: no hello within %v (is the peer a worker?)", name, helloTimeout)
	}
}

// dialWorker connects to a TCP worker endpoint. Keepalives are enabled
// so a silent network partition mid-job surfaces as a transport error
// (and hence a requeue) instead of wedging the batch on a read that
// never returns.
func dialWorker(addr string) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	wc := &workerConn{
		name:    "tcp:" + addr,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		closeFn: func() { conn.Close() },
	}
	if err := awaitHello(wc.name, wc.br, func() { conn.Close() }); err != nil {
		wc.close()
		return nil, err
	}
	return wc, nil
}

// spawnWorker starts one local subprocess worker on stdio pipes. With
// no explicit command it re-executes the current binary in worker mode.
func spawnWorker(cmdline []string, stderr io.Writer, ordinal int) (*workerConn, error) {
	if len(cmdline) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: resolving own executable for worker spawn: %w", err)
		}
		cmdline = []string{exe}
	}
	cmd := exec.Command(cmdline[0], cmdline[1:]...)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawning worker %q: %w", cmdline[0], err)
	}
	name := fmt.Sprintf("proc:%d(pid %d)", ordinal, cmd.Process.Pid)
	kill := func() { cmd.Process.Kill() }
	wc := &workerConn{
		name: name,
		br:   bufio.NewReader(stdout),
		bw:   bufio.NewWriter(stdin),
		closeFn: func() {
			// Closing stdin is the shutdown signal (worker exits on EOF);
			// escalate to kill if it lingers, and always reap the process.
			stdin.Close()
			done := make(chan struct{})
			go func() { cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				kill()
				<-done
			}
		},
	}
	if err := awaitHello(name, wc.br, kill); err != nil {
		wc.close()
		return nil, err
	}
	return wc, nil
}
