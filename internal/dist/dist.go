// Package dist distributes batch execution across worker processes —
// local subprocesses speaking length-prefixed frames over stdio pipes,
// remote workers reached over TCP — while preserving the batch
// engine's determinism guarantee end to end: any worker-process count,
// any host mix, any interleaving of completions produces a result
// slice byte-identical to an in-process serial run.
//
// The guarantee has three legs, each inherited from a layer below:
//
//  1. sim.Run is a pure function of (instance, algorithm, settings);
//  2. the wire codec (internal/wire) round-trips every input and
//     output bit-exactly, and algorithms cross the boundary by
//     registered name, rebuilt identically on the worker;
//  3. the coordinator keeps internal/batch's discipline — memoization
//     canon/uniq decided serially in input order before dispatch,
//     results stored by input index, aggregates folded serially — so
//     scheduling (which worker, which order, how deep a connection's
//     adaptive window runs, how many replies a worker coalesces into
//     one frame, even a worker dying with a window full of jobs that
//     are requeued to survivors or to its own respawned successor)
//     changes wall-clock time and nothing else.
//
// The fleet is a session (Fleet, fleet.go): dial once, run any number
// of batches and sweeps over the open connections, close once. The
// package-level Run/RunStream/Sweep helpers remain as one-shot
// wrappers that dial an ephemeral session around a single call.
//
// Jobs without a wire form (programs wired to observers, closure-built
// per-instance algorithms) cannot cross a process boundary; the
// coordinator runs them on an in-process pool concurrently with the
// remote dispatch, which purity again makes invisible in the output.
package dist

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Handshake defaults, overridable per Config (chaos tests and slow
// WANs should not have to fight hard-coded constants).
const (
	// DefaultHelloTimeout bounds how long the coordinator waits for a
	// freshly spawned or dialed worker to identify itself; a peer that
	// is not a worker (wrong port, a main that forgot MaybeServeStdio)
	// would otherwise hang the batch forever.
	DefaultHelloTimeout = 10 * time.Second
	// DefaultDialTimeout bounds each TCP connection attempt to a fleet
	// host.
	DefaultDialTimeout = 5 * time.Second
)

// Host is one TCP worker endpoint of the fleet, with an optional
// per-host execution-pool hint for heterogeneous fleets: a host whose
// Pool is positive is told (wire.FramePool, sent right after its
// hello) to execute its stream's jobs on a pool of that size,
// overriding the one Parallelism value the jobs forward. The -hosts
// syntax is addr or addr*pool (see ParseHosts).
type Host struct {
	Addr string
	Pool int
}

// Config selects the worker fleet of a distributed run and shapes its
// dispatch (window depth, respawn policy).
type Config struct {
	// Hosts are TCP endpoints of already-running workers
	// (cmd/rvworker -listen), each with an optional in-worker pool
	// hint. Each contributes one pipelined worker connection (up to a
	// window of jobs in flight, executed by the worker's in-process
	// pool).
	Hosts []Host
	// Procs is the number of local worker subprocesses to spawn for
	// the session (stdio transport). They are torn down when the
	// session closes.
	Procs int
	// Cmd is the command line used to spawn local workers. Empty
	// selects the current executable re-executed in worker mode (the
	// WorkerEnv marker + MaybeServeStdio handshake).
	Cmd []string
	// Stderr receives the spawned workers' stderr; nil inherits the
	// coordinator's.
	Stderr io.Writer
	// Window fixes the number of jobs kept in flight per worker
	// connection: 1 restores synchronous request/response dispatch.
	// 0 selects adaptive windows — each connection starts at
	// DefaultWindow and grows or shrinks with its observed reply RTT
	// and service rate, bounded by MaxWindow. Deeper windows hide
	// network latency and keep in-worker pools fed; they cannot change
	// a result.
	Window int
	// MaxWindow bounds adaptive window growth (Window == 0). 0 selects
	// DefaultMaxWindow; negative disables adaptation, pinning every
	// connection at DefaultWindow. Ignored when Window is positive.
	MaxWindow int
	// MaxRespawns bounds how many times one fleet slot reconnects
	// (re-dial a TCP host, respawn a stdio subprocess) after mid-run
	// deaths, across the whole session. 0 selects DefaultMaxRespawns;
	// negative disables respawning (a dead worker retires its slot, as
	// before PR 4).
	MaxRespawns int
	// RedialWait is the backoff before a slot's first reconnection
	// attempt, doubling per consecutive attempt. 0 selects
	// DefaultRedialWait.
	RedialWait time.Duration
	// StallTimeout is the liveness deadline for a connection with jobs
	// in flight: no frame — result, reply batch, or heartbeat echo —
	// within max(StallTimeout, a multiple of the connection's observed
	// RTT) declares the slot hung; the connection is closed and its
	// in-flight window requeued through the ordinary death path. The
	// coordinator pings a connection that has been silent for half the
	// deadline, so an idle-but-alive worker grinding a slow job is
	// never falsely ejected. 0 selects DefaultStallTimeout; negative
	// disables stall detection (and the pings).
	StallTimeout time.Duration
	// MaxJobRequeues quarantines poison jobs: a job whose requeues have
	// been caused by the deaths or stalls of this many distinct fleet
	// slots is surfaced as a deterministic per-job error instead of
	// being requeued again — one poison job that crashes every worker
	// it lands on must not exhaust the whole session's respawn budget.
	// 0 selects DefaultMaxJobRequeues; negative disables quarantine.
	MaxJobRequeues int
	// HelloTimeout bounds the wait for a worker's hello frame after
	// dial/spawn. 0 selects DefaultHelloTimeout.
	HelloTimeout time.Duration
	// DialTimeout bounds each TCP connection attempt to a fleet host.
	// 0 selects DefaultDialTimeout.
	DialTimeout time.Duration
	// BreakerThreshold is the number of consecutive connection failures
	// (dead drives, failed redials) that open a slot's circuit breaker:
	// the slot sits out until a cooldown elapses, then a single probe
	// dial decides whether it closes again. 0 selects
	// DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the initial cooldown of a freshly opened
	// breaker; it doubles each time the probe fails and the breaker
	// re-opens, and resets when the slot completes a healthy
	// connection. 0 selects DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Compress negotiates flate frame compression (wire v6) with every
	// worker whose hello advertises wire.CapCompress: frames with
	// payloads of at least DefaultCompressMin bytes are deflated on
	// both directions of the stream. Transport only — payloads decode
	// bit-exactly — so it trades coordinator/worker CPU for wire bytes:
	// a win on bandwidth-starved WAN links, a wash on localhost. A
	// worker that does not advertise the capability simply gets an
	// uncompressed stream; unlike a version mismatch this is not an
	// error.
	Compress bool
	// Fairness picks which live dispatch an idle connection claims
	// from when several run concurrently over this fleet (multi-tenant
	// scheduling, PR 10). nil selects FIFO — oldest dispatch first —
	// via a zero-allocation fast path. Any policy is pure scheduling:
	// per-tenant output bytes are identical under all of them.
	Fairness Fairness
}

// DefaultCompressMin is the smallest frame payload worth deflating
// when Config.Compress negotiates compression: below it the flate
// header overhead and the per-frame CPU cost outweigh any plausible
// saving (a bare job frame is ~200 bytes and ships once per job; the
// frames that dominate WAN transfer — coalesced reply batches and
// trace chunks — run tens of kilobytes).
const DefaultCompressMin = 256

// Enabled reports whether the config names any workers at all.
func (c Config) Enabled() bool { return len(c.Hosts) > 0 || c.Procs > 0 }

// ParseHosts splits a comma-separated endpoint list into Config.Hosts
// form, trimming whitespace and dropping empty entries — the one
// parser behind every -hosts flag and Settings.Hosts. Each entry is
// addr or addr*pool, the pool hint naming the in-worker execution
// pool that host should run (heterogeneous fleets: a 32-core host
// takes host:9101*32 next to a 4-core host:9101*4). A malformed pool
// hint — not a positive integer, more than one '*', an empty address
// — is an error, not a silently ignored worker.
func ParseHosts(s string) ([]Host, error) {
	var hosts []Host
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		h := Host{Addr: entry}
		if i := strings.IndexByte(entry, '*'); i >= 0 {
			pool, err := strconv.Atoi(strings.TrimSpace(entry[i+1:]))
			if err != nil || pool < 1 {
				return nil, fmt.Errorf("dist: host %q: pool hint %q is not a positive integer", entry, entry[i+1:])
			}
			// Enforce the wire codec's bound here, where the user sees it:
			// an oversized hint the worker's DecodePoolHint would reject
			// must fail the parse, not kill every stream at the handshake.
			if pool > 1<<20 {
				return nil, fmt.Errorf("dist: host %q: pool hint %d exceeds the limit (%d)", entry, pool, 1<<20)
			}
			h = Host{Addr: strings.TrimSpace(entry[:i]), Pool: pool}
		}
		if h.Addr == "" || strings.ContainsRune(h.Addr, '*') {
			return nil, fmt.Errorf("dist: malformed host entry %q (want addr or addr*pool)", entry)
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// FormatHosts renders a Host list back into the -hosts flag syntax
// ParseHosts reads ("addr,addr*pool,…") — the round-trip CLIs use to
// seed string-typed settings from a parsed hosts file.
func FormatHosts(hosts []Host) string {
	var b strings.Builder
	for i, h := range hosts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(h.Addr)
		if h.Pool > 0 {
			fmt.Fprintf(&b, "*%d", h.Pool)
		}
	}
	return b.String()
}

// stderrMu serializes every write the distribution subsystem makes to
// a run's stderr: per-slot supervisors report deaths and reconnects
// concurrently, and spawned workers' stderr is copied by os/exec
// goroutines — the caller-supplied Config.Stderr (often a plain
// strings.Builder in tests) is not required to cope with that on its
// own.
var stderrMu sync.Mutex

type lockedWriter struct{ w io.Writer }

func (lw lockedWriter) Write(p []byte) (int, error) {
	stderrMu.Lock()
	defer stderrMu.Unlock()
	return lw.w.Write(p)
}

func stderrOf(cfg Config) io.Writer {
	if cfg.Stderr != nil {
		return lockedWriter{w: cfg.Stderr}
	}
	return lockedWriter{w: os.Stderr}
}

// logOf returns the structured logger a run's warnings go to: the
// process default when the config has no stderr override, otherwise a
// text handler over the (locked) override so tests capture events the
// same way they captured the old print lines. All handlers share
// obs.LogLevel, so the -log-level flag gates them uniformly. These
// are cold failure/recovery paths; building a handler per run costs
// nothing that matters.
func logOf(cfg Config) *slog.Logger {
	if cfg.Stderr == nil {
		return slog.Default()
	}
	return slog.New(slog.NewTextHandler(lockedWriter{w: cfg.Stderr}, &slog.HandlerOptions{Level: obs.LogLevel}))
}

// hostSummary renders the fleet recipe for log context: the dial
// targets plus the local subprocess count, so a fallback event says
// which fleet degraded without a second lookup.
func hostSummary(cfg Config) string {
	parts := make([]string, 0, len(cfg.Hosts)+1)
	for _, h := range cfg.Hosts {
		parts = append(parts, h.Addr)
	}
	if cfg.Procs > 0 {
		parts = append(parts, fmt.Sprintf("%d local subprocess(es)", cfg.Procs))
	}
	return strings.Join(parts, ",")
}

// jobError marks a deterministic per-job failure reported by a worker
// (FrameError): retrying elsewhere would fail the same way.
type jobError struct{ msg string }

func (e *jobError) Error() string { return e.msg }

// rawFrame is one frame as the persistent reader pulled it off the
// connection, type still uninterpreted. The payload lives in a pooled
// buffer: whoever consumes the frame must call release once the
// payload — and anything aliasing it, such as DecodeReplies entries —
// is dead.
type rawFrame struct {
	typ byte
	buf *wire.Buf
}

func (f rawFrame) payload() []byte { return f.buf.B }
func (f rawFrame) release()        { f.buf.Release() }

// workerConn is one worker connection (spawned subprocess or TCP). The
// write half is owned by whichever dispatch is driving the connection;
// the read half is owned by a persistent reader goroutine that
// outlives individual dispatches — it feeds frames, and the session
// keeps the connection (reader included) warm between batches.
type workerConn struct {
	name      string
	br        *bufio.Reader
	bw        *bufio.Writer
	fr        *wire.FrameReader // stateful framing over br (pooled buffers, inflation)
	fw        *wire.FrameWriter // stateful framing over bw (reused assembly, deflation)
	wmu       sync.Mutex        // serializes writes: the dispatch sender vs. the matcher's liveness pings
	closeOnce sync.Once
	closeFn   func()

	// frames delivers every frame the persistent reader pulls off the
	// connection; it is closed when the transport dies, with the error
	// left in readErr (the channel close is the publication barrier).
	frames  chan rawFrame
	readErr error

	// win is the connection's (possibly adaptive) send window, guarded
	// by the fleet's scheduler mutex (Fleet.mu) while the connection
	// is live; fixed is immutable after construction.
	win adaptiveWindow

	// stats caches the newest WorkerStats payload a pong carried
	// (wire v5): written by the matcher of the dispatch driving the
	// connection or by Fleet.Snapshot's parked-connection probe, read
	// by Snapshot. Atomic because Snapshot may race a live matcher.
	stats atomic.Pointer[wire.WorkerStats]
}

func (wc *workerConn) close() {
	wc.closeOnce.Do(func() {
		if wc.frames != nil {
			// The persistent reader may be blocked delivering frames no
			// consumer will take (a matcher that died mid-protocol, or
			// none attached): drain until its transport error closes the
			// channel, so the reader goroutine is always reaped. Racing
			// a still-attached matcher for a final frame is harmless —
			// a frame the drain swallows simply leaves its task in
			// flight, and a failing connection requeues those.
			go func() {
				for f := range wc.frames {
					f.release()
				}
			}()
		}
		wc.closeFn()
	})
}

// startReader launches the connection's persistent frame reader. It
// runs until the transport dies — naturally, or because close()
// unblocked its pending read.
func (wc *workerConn) startReader() {
	wc.frames = make(chan rawFrame, 4)
	go func() {
		defer close(wc.frames)
		for {
			typ, buf, err := wc.fr.ReadFrame()
			if err != nil {
				wc.readErr = err
				return
			}
			wc.frames <- rawFrame{typ: typ, buf: buf}
		}
	}()
}

// send writes one seq-prefixed request frame and flushes it onto the
// wire, so a job is visible to the worker the moment send returns.
func (wc *workerConn) send(seq uint64, typ byte, payload []byte) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	if err := wc.fw.WriteFrameSeq(typ, seq, payload); err != nil {
		return err
	}
	return wc.bw.Flush()
}

// ping writes one liveness probe. It is called by the matcher's stall
// timer while the dispatch sender owns the write half, so the write
// mutex is what keeps the two frame writes from interleaving.
func (wc *workerConn) ping(nonce uint64) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	if err := wc.fw.WriteFrame(wire.FramePing, wire.EncodePing(nonce)); err != nil {
		return err
	}
	return wc.bw.Flush()
}

// assemble builds the worker fleet as supervisable slots: dial every
// host, spawn every requested subprocess — all concurrently, so one
// dead host costs one dial timeout, not a serial sum of them. Each
// slot carries its reconnection recipe, which is what lets the engine
// re-dial a lost host or respawn a dead subprocess mid-run. Individual
// failures are collected, not fatal — the session proceeds on whatever
// subset came up (and only fails outright when that subset is empty).
func assemble(cfg Config) ([]*slot, []error) {
	n := len(cfg.Hosts) + cfg.Procs
	slots := make([]*slot, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for k, h := range cfg.Hosts {
		go func(k int, h Host) {
			defer wg.Done()
			name := "tcp:" + h.Addr
			s := &slot{name: name, met: newSlotMetrics(name), dial: func() (*workerConn, error) { return dialWorker(h, cfg) }}
			if s.wc, errs[k] = s.dial(); errs[k] == nil {
				s.wc.win = newAdaptiveWindow(cfg)
				slots[k] = s
			}
		}(k, h)
	}
	for k := 0; k < cfg.Procs; k++ {
		go func(k int) {
			defer wg.Done()
			name := fmt.Sprintf("proc:%d", k)
			s := &slot{
				name: name,
				met:  newSlotMetrics(name),
				dial: func() (*workerConn, error) { return spawnWorker(cfg, k) },
			}
			if s.wc, errs[len(cfg.Hosts)+k] = s.dial(); errs[len(cfg.Hosts)+k] == nil {
				s.wc.win = newAdaptiveWindow(cfg)
				slots[len(cfg.Hosts)+k] = s
			}
		}(k)
	}
	wg.Wait()
	up := slots[:0]
	var failed []error
	for k := 0; k < n; k++ {
		if errs[k] != nil {
			failed = append(failed, errs[k])
			continue
		}
		up = append(up, slots[k])
	}
	return up, failed
}

// awaitHello reads and validates the worker's hello frame, bounded by
// timeout, returning the capability bitmask the worker advertised;
// cancel must unblock the pending read (kill the process, close the
// connection) so the reader goroutine is always reaped.
func awaitHello(name string, br *bufio.Reader, cancel func(), timeout time.Duration) (uint32, error) {
	type frame struct {
		typ     byte
		payload []byte
		err     error
	}
	ch := make(chan frame, 1)
	go func() {
		typ, payload, err := wire.ReadFrame(br)
		ch <- frame{typ, payload, err}
	}()
	select {
	case f := <-ch:
		if f.err != nil {
			return 0, fmt.Errorf("dist: %s: reading hello: %w", name, f.err)
		}
		if f.typ != wire.FrameHello {
			return 0, fmt.Errorf("dist: %s: first frame is type %d, not hello", name, f.typ)
		}
		caps, err := wire.CheckHello(f.payload)
		if err != nil {
			return 0, fmt.Errorf("dist: %s: %w", name, err)
		}
		return caps, nil
	case <-time.After(timeout):
		cancel()
		<-ch
		return 0, fmt.Errorf("dist: %s: no hello within %v (is the peer a worker?)", name, timeout)
	}
}

// sendPoolHint forwards a host's per-stream pool hint right after the
// hello, before any job, so the worker sizes its execution pool from
// it (see Serve).
func sendPoolHint(wc *workerConn, pool int) error {
	if pool <= 0 {
		return nil
	}
	if err := wc.fw.WriteFrame(wire.FramePool, wire.EncodePoolHint(pool)); err != nil {
		return err
	}
	return wc.bw.Flush()
}

// negotiateCompress turns compression on for the stream when the
// config asks for it and the worker's hello advertised the capability.
// The FrameCompress hint goes out uncompressed (the writer is enabled
// only after it is flushed), before any job; the worker compresses
// nothing before processing it, so enabling our reader here cannot
// race. A worker without the capability just gets a raw stream.
func negotiateCompress(wc *workerConn, cfg Config, caps uint32) error {
	if !cfg.Compress || caps&wire.CapCompress == 0 {
		return nil
	}
	if err := wc.fw.WriteFrame(wire.FrameCompress, wire.EncodeCompressHint(DefaultCompressMin)); err != nil {
		return err
	}
	if err := wc.bw.Flush(); err != nil {
		return err
	}
	wc.fw.EnableCompression(DefaultCompressMin)
	wc.fr.EnableCompression()
	return nil
}

// dialWorker connects to a TCP worker endpoint. Keepalives are enabled
// so a silent network partition mid-job surfaces as a transport error
// (and hence a requeue) instead of wedging the batch on a read that
// never returns.
func dialWorker(h Host, cfg Config) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", h.Addr, cfg.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("dist: dialing %s: %w", h.Addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	wc := &workerConn{
		name:    "tcp:" + h.Addr,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		closeFn: func() { conn.Close() },
	}
	wc.fr = wire.NewFrameReader(wc.br)
	wc.fw = wire.NewFrameWriter(wc.bw)
	caps, err := awaitHello(wc.name, wc.br, func() { conn.Close() }, cfg.helloTimeout())
	if err != nil {
		wc.close()
		return nil, err
	}
	if err := sendPoolHint(wc, h.Pool); err != nil {
		wc.close()
		return nil, fmt.Errorf("dist: %s: sending pool hint: %w", wc.name, err)
	}
	if err := negotiateCompress(wc, cfg, caps); err != nil {
		wc.close()
		return nil, fmt.Errorf("dist: %s: negotiating compression: %w", wc.name, err)
	}
	wc.startReader()
	return wc, nil
}

// spawnWorker starts one local subprocess worker on stdio pipes. With
// no explicit command it re-executes the current binary in worker mode.
func spawnWorker(cfg Config, ordinal int) (*workerConn, error) {
	cmdline := cfg.Cmd
	stderr := stderrOf(cfg)
	if len(cmdline) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: resolving own executable for worker spawn: %w", err)
		}
		cmdline = []string{exe}
	}
	cmd := exec.Command(cmdline[0], cmdline[1:]...)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawning worker %q: %w", cmdline[0], err)
	}
	name := fmt.Sprintf("proc:%d(pid %d)", ordinal, cmd.Process.Pid)
	kill := func() { cmd.Process.Kill() }
	wc := &workerConn{
		name: name,
		br:   bufio.NewReader(stdout),
		bw:   bufio.NewWriter(stdin),
		closeFn: func() {
			// Closing stdin is the shutdown signal (worker exits on EOF);
			// escalate to kill if it lingers, and always reap the process.
			stdin.Close()
			done := make(chan struct{})
			go func() { cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				kill()
				<-done
			}
		},
	}
	wc.fr = wire.NewFrameReader(wc.br)
	wc.fw = wire.NewFrameWriter(wc.bw)
	caps, err := awaitHello(name, wc.br, kill, cfg.helloTimeout())
	if err != nil {
		wc.close()
		return nil, err
	}
	if err := negotiateCompress(wc, cfg, caps); err != nil {
		wc.close()
		return nil, fmt.Errorf("dist: %s: negotiating compression: %w", name, err)
	}
	wc.startReader()
	return wc, nil
}
