package dist

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	"repro/internal/wire"
)

// The shared multi-tenant scheduler (PR 10). Before it, a dispatch
// owned the whole fleet: Run/RunStream/Sweep serialized on the fleet
// mutex, and a second tenant queued behind the first even when surplus
// slots sat idle. Now each call is a *dispatch* — its own id, its own
// sequence space (wire v7 packs the dispatch id into the high half of
// every sequence number), its own ready queue — and every live
// dispatch feeds the fleet's slot runners concurrently. An idle
// connection claims from whichever dispatch the fairness policy picks
// (FIFO arrival order by default, see fairness.go), stealing across
// tenants whenever its own last dispatch has nothing eligible.
//
// Determinism is untouched: which connection claims a job, from which
// tenant, in what order, is pure scheduling. Every task settles
// exactly once into its own dispatch's delivery slots; the per-tenant
// bytes — including Stats.Executed — are identical to a serial run,
// which is exactly the §6–§8 argument (scheduling order is free as
// long as settlement stays canonical) extended across tenants.
//
// Concurrency model: ONE mutex (Fleet.mu) guards all scheduler state —
// dispatch queues, per-connection in-flight bookkeeping, window
// controllers, breaker state — with Fleet.cond for wakeups. Each slot
// has a persistent runner goroutine (runSlot) that owns the
// reconnect/budget/breaker loop; a live connection is driven by its
// runner (the sender half) plus one matcher goroutine (the reply
// half). Deliver continuations run outside the mutex: a slow consumer
// stalls its own connection, never the scheduler.
type dispatch struct {
	id      uint32 // joins the wire sequence space: seq = id<<32 | k
	arrival uint64 // fleet-wide admission order, drives FIFO fairness
	weight  float64
	tasks   []task
	reqFrame, resFrame byte
	// clamp caps one connection's in-flight share of this dispatch at
	// ⌈tasks/width⌉ — the largest share a connection could hold if the
	// batch spread evenly over the slots able to serve it at admission
	// — so a small batch on a wide fleet doesn't hoard window slots no
	// schedule could fill, and one tenant cannot monopolize a
	// connection another tenant is waiting on.
	clamp int

	// queue holds the indices of unclaimed tasks (claims pop the
	// front, requeues append). remaining counts unsettled tasks; when
	// it reaches zero the dispatch finishes and its waiter wakes.
	queue     []int
	remaining int
	finished  bool
	err       error
	done      chan struct{}

	// Error severities, exactly as before: a deterministic job failure
	// poisons the run's verdict; a worker death only matters if jobs
	// are stranded when no slot can serve them.
	jobErrs  []error
	deadErrs []error
	// killers tracks, per task, the distinct slots whose death or
	// stall requeued it — the poison-job evidence.
	killers map[int]map[string]struct{}
}

// flight is one request awaiting its reply on one connection: the
// dispatch and task index it belongs to, and the send timestamp the
// adaptive controller derives RTT from.
type flight struct {
	d    *dispatch
	k    int
	sent time.Time
}

// connState is the per-connection scheduling state shared by a
// connection's sender (the slot runner) and its matcher. inflight and
// armStart are guarded by the fleet mutex; settled is touched only by
// the matcher.
type connState struct {
	inflight map[uint64]flight
	armStart time.Time // when in-flight went 0→1: the stall clock floor
	settled  int
}

// claim is one task handed from the scheduler to a sender.
type claim struct {
	seq     uint64
	typ     byte
	payload []byte
}

// errSlotStopped aborts a dial whose slot was interrupted (fleet
// closed or slot retired) while the dial was in flight.
var errSlotStopped = errors.New("dist: slot stopped")

// dispatch admits one batch of tasks as a new tenant dispatch, wakes
// the slot runners, and blocks until every task settles. It returns
// nil when every task settled by delivery, the joined job errors when
// workers reported deterministic failures, and the joined death log
// when tasks were stranded with no slot able to serve them.
// Concurrent dispatches interleave over the same connections; each
// one's verdict and delivered bytes are its own.
func (f *Fleet) dispatch(tasks []task, reqFrame, resFrame byte) error {
	if len(tasks) == 0 {
		return nil
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("dist: fleet is closed")
	}
	now := time.Now()
	able, cooling := 0, 0
	for _, s := range f.slots {
		switch {
		case s.retired || s.draining:
		case s.cooling(now):
			// An open breaker whose cooldown has not elapsed cannot
			// serve this dispatch now; one whose cooldown has passed
			// joins half-open (its reconnection dial is the probe).
			cooling++
		default:
			able++
		}
	}
	if able == 0 {
		f.mu.Unlock()
		if cooling > 0 {
			return fmt.Errorf("%w (%d slots cooling down)", ErrAllBreakersOpen, cooling)
		}
		return errors.New("dist: every fleet slot has retired")
	}
	width := able
	if width > len(tasks) {
		width = len(tasks)
	}
	mDispatches.Inc()
	f.nextID++ // first dispatch id is 1: id 0 is reserved as "no dispatch"
	d := &dispatch{
		id:        f.nextID,
		arrival:   f.arrival,
		weight:    1,
		tasks:     tasks,
		reqFrame:  reqFrame,
		resFrame:  resFrame,
		clamp:     (len(tasks) + width - 1) / width,
		queue:     make([]int, len(tasks)),
		remaining: len(tasks),
		done:      make(chan struct{}),
	}
	f.arrival++
	for i := range d.queue {
		d.queue[i] = i
	}
	f.live = append(f.live, d)
	f.queued += len(tasks)
	gSchedDispatchesLive.Set(float64(len(f.live)))
	gSchedQueuedJobs.Set(float64(f.queued))
	f.cond.Broadcast()
	f.mu.Unlock()
	<-d.done
	return d.err
}

// runSlot is one slot's persistent runner: drive the live connection
// while it lasts, reconnect with exponential backoff while there is
// live work to serve, park when there is none, and retire when the
// session-lifetime respawn budget is spent or the slot is drained.
func (f *Fleet) runSlot(s *slot) {
	defer close(s.done)
	lg := logOf(f.cfg)
	for {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return
		}
		if s.draining {
			s.retired = true
			f.strandIfDeadLocked()
			f.mu.Unlock()
			return
		}
		if s.wc != nil {
			wc := s.wc
			f.mu.Unlock()
			if f.drive(s, wc, lg) {
				return
			}
			continue
		}
		// Reconnect phase. A dead slot only redials while live work
		// exists: between dispatches it parks, so an idle session
		// never burns respawn budget in the background.
		if len(f.live) == 0 {
			f.cond.Wait()
			f.mu.Unlock()
			continue
		}
		now := time.Now()
		if s.cooling(now) {
			until := s.openUntil
			f.mu.Unlock()
			sleepOrStop(time.Until(until), s.stopC)
			continue
		}
		if s.attempts >= f.cfg.maxRespawns() {
			s.retired = true
			f.strandIfDeadLocked()
			f.mu.Unlock()
			return
		}
		s.attempts++
		attempt := s.attempts
		wait := s.backoff
		s.backoff *= 2
		f.mu.Unlock()
		if !sleepOrStop(wait, s.stopC) {
			continue
		}
		wc, err := dialSlot(s)
		if err != nil {
			if errors.Is(err, errSlotStopped) {
				continue
			}
			f.mu.Lock()
			if len(f.live) == 0 {
				// The work drained while the dial was failing: nobody
				// was stranded by it, so it is not a death worth
				// counting against anyone's verdict.
				f.mu.Unlock()
				continue
			}
			s.met.deaths.Inc()
			derr := fmt.Errorf("dist: %s: reconnect attempt %d: %w", s.name, attempt, err)
			for _, d := range f.live {
				d.deadErrs = append(d.deadErrs, derr)
			}
			// Logged under the lock, before any strand: see finishConn.
			if s.fail(f.cfg) {
				lg.Warn("dist: circuit breaker open", "slot", s.name, "failures", s.fails, "cooldown", s.cooldown)
				f.strandIfDeadLocked()
			}
			f.mu.Unlock()
			continue
		}
		wc.win = newAdaptiveWindow(f.cfg)
		f.mu.Lock()
		if f.closed || s.draining {
			f.mu.Unlock()
			wc.close()
			continue
		}
		s.wc = wc
		s.connErr = nil
		s.backoff = f.cfg.redialWait()
		s.met.reconnects.Inc()
		lg.Info("dist: worker reconnected", "slot", s.name, "attempt", attempt)
		f.mu.Unlock()
	}
}

// sleepOrStop waits d, or returns false early if the slot is
// interrupted (fleet close, retire).
func sleepOrStop(d time.Duration, stopC <-chan struct{}) bool {
	if d <= 0 {
		select {
		case <-stopC:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stopC:
		return false
	}
}

// dialSlot re-establishes the slot's connection, abandoning the
// attempt the moment the slot is interrupted (the dial goroutine
// cleans up its own connection if one materializes late).
func dialSlot(s *slot) (*workerConn, error) {
	type res struct {
		wc  *workerConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		wc, err := s.dial()
		ch <- res{wc, err}
	}()
	select {
	case r := <-ch:
		return r.wc, r.err
	case <-s.stopC:
		go func() {
			if r := <-ch; r.wc != nil {
				r.wc.close()
			}
		}()
		return nil, errSlotStopped
	}
}

// drive runs the windowed pipeline on one live connection: the runner
// goroutine claims tasks from whichever dispatch the fairness policy
// picks and writes request frames while the adaptive window has a
// free slot; the matcher goroutine consumes the connection's
// persistent frame reader and settles replies by sequence number.
// Unlike the pre-PR10 engine, drive does not return when a dispatch
// drains — the connection stays parked inside the claim wait, already
// warm for the next tenant. It returns only when the connection dies
// (false: the runner reconnects) or the slot's life ends (true:
// fleet closed or slot drained).
func (f *Fleet) drive(s *slot, wc *workerConn, lg *slog.Logger) (exit bool) {
	cs := &connState{inflight: make(map[uint64]flight)}
	matcherDone := make(chan struct{})
	go func() {
		defer close(matcherDone)
		f.match(s, wc, cs)
	}()
	for {
		f.mu.Lock()
		var cl claim
		for {
			if f.closed || s.draining || s.connErr != nil {
				return f.finishConn(s, wc, cs, matcherDone, lg)
			}
			var ok bool
			if cl, ok = f.tryClaimLocked(s, wc, cs); ok {
				break
			}
			f.cond.Wait()
		}
		f.mu.Unlock()
		if err := wc.send(cl.seq, cl.typ, cl.payload); err != nil {
			// The flight is already booked; finishConn requeues it
			// with everything else once the matcher is joined.
			f.mu.Lock()
			if s.connErr == nil {
				s.connErr = err
			}
			f.mu.Unlock()
		}
	}
}

// tryClaimLocked claims the next task for this connection, if its
// window has room and some live dispatch has an eligible queued task.
// Called with the fleet mutex held.
func (f *Fleet) tryClaimLocked(s *slot, wc *workerConn, cs *connState) (claim, bool) {
	if s.inflightN >= wc.win.cur {
		return claim{}, false
	}
	d, steal := f.pickLocked(s)
	if d == nil {
		return claim{}, false
	}
	k := d.queue[0]
	d.queue = d.queue[1:]
	f.queued--
	gSchedQueuedJobs.Set(float64(f.queued))
	if s.inflightN == 0 {
		// Idle time between claims is not service time: reset the
		// controller's reply clock (its RTT/gap estimates survive —
		// the link didn't change, the workload pause did). In-flight
		// going 0→1 also re-arms the stall clock: lastRecv may be
		// long stale after an idle stretch, and idleness is not a
		// stall — only silence with work outstanding is.
		wc.win.lastReply = time.Time{}
		if f.stall > 0 {
			cs.armStart = time.Now()
		}
	}
	fl := flight{d: d, k: k}
	if !wc.win.fixed {
		// The send timestamp only feeds the adaptive controller's
		// RTT estimate; a fixed window skips the clock read.
		fl.sent = time.Now()
	}
	seq := wire.DispatchSeq(d.id, uint32(k))
	cs.inflight[seq] = fl
	s.inflightN++
	if s.perDisp == nil {
		s.perDisp = make(map[uint32]int)
	}
	s.perDisp[d.id]++
	s.met.dispatched.Inc()
	s.met.inflight.Set(float64(s.inflightN))
	s.met.claims.Inc()
	if steal {
		s.met.steals.Inc()
	}
	s.lastDisp = d.id
	return claim{seq: seq, typ: d.reqFrame, payload: d.tasks[k].payload}, true
}

// pickLocked chooses which live dispatch this connection claims from:
// the fairness policy picks among the dispatches with queued work
// whose per-connection clamp this connection has not filled. The
// second result reports a steal — the connection switched away from a
// dispatch that is still live.
func (f *Fleet) pickLocked(s *slot) (*dispatch, bool) {
	var d *dispatch
	if f.fair == nil {
		// FIFO fast path: first eligible dispatch in arrival order,
		// no view construction.
		for _, c := range f.live {
			if len(c.queue) > 0 && s.perDisp[c.id] < c.clamp {
				d = c
				break
			}
		}
	} else {
		f.elig = f.elig[:0]
		f.views = f.views[:0]
		for _, c := range f.live {
			if len(c.queue) > 0 && s.perDisp[c.id] < c.clamp {
				f.elig = append(f.elig, c)
				f.views = append(f.views, DispatchView{
					ID:      c.id,
					Arrival: c.arrival,
					Queued:  len(c.queue),
					Total:   len(c.tasks),
					Weight:  c.weight,
				})
			}
		}
		if len(f.elig) == 0 {
			return nil, false
		}
		i := f.fair.Pick(f.views)
		if i < 0 || i >= len(f.elig) {
			i = 0
		}
		d = f.elig[i]
	}
	if d == nil {
		return nil, false
	}
	steal := false
	if s.lastDisp != 0 && s.lastDisp != d.id {
		for _, c := range f.live {
			if c.id == s.lastDisp {
				steal = true
				break
			}
		}
	}
	return d, steal
}

// finishConn retires one connection: close it, join its matcher, then
// under the fleet mutex disposition everything that was in flight.
// Entered with the fleet mutex held; returns with it released. The
// result is drive's verdict: true means the slot's life is over
// (fleet closed or slot drained), false means a transport death the
// runner should reconnect from.
func (f *Fleet) finishConn(s *slot, wc *workerConn, cs *connState, matcherDone chan struct{}, lg *slog.Logger) (exit bool) {
	f.mu.Unlock()
	wc.close()
	<-matcherDone
	f.mu.Lock()
	err := s.connErr
	s.connErr = nil
	s.wc = nil
	s.inflightN = 0
	s.perDisp = nil
	s.lastDisp = 0
	s.met.inflight.Set(0)
	switch {
	case f.closed:
		// Close already finalized every live dispatch; the in-flight
		// bytes have nowhere to go.
		cs.inflight = nil
		f.cond.Broadcast()
		f.mu.Unlock()
		return true
	case s.draining:
		// Retire reuses the death path's requeue — blameless: the
		// operator drained the slot, the jobs didn't kill it.
		for _, fl := range cs.inflight {
			f.requeueLocked(fl.d, fl.k, s, false)
		}
		cs.inflight = nil
		s.retired = true
		f.strandIfDeadLocked()
		f.cond.Broadcast()
		f.mu.Unlock()
		return true
	}
	// Transport death. Whether it counts — the death counter, the
	// dispatches' death logs, the breaker — is decided by whether live
	// work existed at the moment of death, sampled BEFORE the requeues
	// below: a requeue may quarantine the last job and finish its
	// dispatch, and that must not retroactively make its killer's
	// death a non-event. A parked connection dying between dispatches,
	// by contrast, strands nobody and poisons no verdict: it is not
	// counted, and the runner simply parks until the next dispatch
	// warrants a redial.
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	counted := len(f.live) > 0
	if counted {
		s.met.deaths.Inc()
		derr := fmt.Errorf("dist: worker %s: %w", s.name, err)
		for _, d := range f.live {
			d.deadErrs = append(d.deadErrs, derr)
		}
	}
	// Every in-flight task requeues exactly once (the matcher being
	// joined is what makes "still in flight" unambiguous; each requeue
	// may quarantine its job instead, if this slot was the job's Kth
	// distinct killer).
	for _, fl := range cs.inflight {
		f.requeueLocked(fl.d, fl.k, s, true)
	}
	cs.inflight = nil
	if counted {
		// Logs are emitted under the lock, BEFORE the strand that may
		// finalize a dispatch: the write is then ordered before the
		// dispatch's verdict, so a caller that reads the session log
		// right after an error always finds the episode, never races
		// it.
		if s.fail(f.cfg) {
			lg.Warn("dist: circuit breaker open", "slot", s.name, "failures", s.fails, "cooldown", s.cooldown)
			f.strandIfDeadLocked()
		} else if s.attempts < f.cfg.maxRespawns() {
			lg.Warn("dist: worker died; reconnecting", "slot", s.name, "err", err)
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	return false
}

// requeueLocked returns a task to its dispatch's queue after the
// failure (or drain) of the named slot — unless blame applies and the
// task has now been in flight on maxKills distinct failing slots, in
// which case it is quarantined: settled as a deterministic per-job
// error, so a poison job that crashes or hangs every worker it lands
// on cannot exhaust the whole session's respawn budget. Requeue is
// pure scheduling either way: a requeued task recomputes the
// identical pure result, and a quarantined one reports an error
// exactly where a clean run reports a result, leaving every other
// task's bytes untouched.
func (f *Fleet) requeueLocked(d *dispatch, k int, s *slot, blame bool) {
	if d.finished {
		return
	}
	if blame && f.maxKills > 0 {
		m := d.killers[k]
		if m == nil {
			if d.killers == nil {
				d.killers = make(map[int]map[string]struct{})
			}
			m = make(map[string]struct{})
			d.killers[k] = m
		}
		m[s.name] = struct{}{}
		if len(m) >= f.maxKills {
			mQuarantined.Inc()
			d.jobErrs = append(d.jobErrs, fmt.Errorf("dist: job %d quarantined after its dispatch killed or stalled %d distinct workers (poison job?)", d.tasks[k].id, len(m)))
			f.settleLocked(d)
			return
		}
	}
	s.met.requeued.Inc()
	d.queue = append(d.queue, k)
	f.queued++
	gSchedQueuedJobs.Set(float64(f.queued))
}

// settleLocked records one task of d as settled (delivered, failed
// deterministically, or quarantined) and finishes the dispatch when
// it was the last.
func (f *Fleet) settleLocked(d *dispatch) {
	if d.finished {
		return
	}
	d.remaining--
	if d.remaining == 0 {
		var err error
		if len(d.jobErrs) > 0 {
			err = errors.Join(d.jobErrs...)
		}
		f.finishLocked(d, err)
	}
}

// finishLocked finalizes a dispatch with its verdict, removes it from
// the live set, and wakes its waiter.
func (f *Fleet) finishLocked(d *dispatch, err error) {
	if d.finished {
		return
	}
	d.finished = true
	d.err = err
	for i, c := range f.live {
		if c == d {
			f.live = append(f.live[:i], f.live[i+1:]...)
			break
		}
	}
	f.queued -= len(d.queue)
	d.queue = nil
	gSchedDispatchesLive.Set(float64(len(f.live)))
	gSchedQueuedJobs.Set(float64(f.queued))
	close(d.done)
	f.cond.Broadcast()
}

// strandIfDeadLocked checks whether any slot can still serve work —
// neither retired, draining, nor sitting out a breaker cooldown — and
// if none can, finalizes every live dispatch with its death log plus
// the stranding verdict. Called whenever a slot leaves service.
func (f *Fleet) strandIfDeadLocked() {
	if len(f.live) == 0 {
		return
	}
	now := time.Now()
	for _, s := range f.slots {
		if !s.retired && !s.draining && !s.cooling(now) {
			return
		}
	}
	for len(f.live) > 0 {
		d := f.live[0]
		f.finishLocked(d, errors.Join(append(append([]error(nil), d.deadErrs...),
			fmt.Errorf("dist: %d jobs undone after every worker failed", d.remaining))...))
	}
}

// match is one connection's matcher goroutine: it consumes the
// persistent frame reader, settles replies by sequence number
// (coalesced batches entry by entry), reassembles streamed traces,
// feeds the window controller, and arms the liveness stall detector.
// It exits when the connection's frame stream ends; its verdict is
// published as slot.connErr (first writer wins — the sender may have
// hit a write error first).
//
// Liveness: while jobs are in flight, no frame of any kind within
// max(stall, stallRTTFactor·rttEWMA) declares the connection hung and
// retires it through the same path as a death, requeueing its window.
// At half the deadline the matcher pings the worker; a healthy worker
// echoes from its read loop even while its executors grind, so only a
// dead process, a blackholed link, or a truly wedged worker ever
// reaches the deadline. Stall handling is pure scheduling: a requeued
// job recomputes the identical pure result on a survivor.
func (f *Fleet) match(s *slot, wc *workerConn, cs *connState) {
	die := func(err error) {
		f.mu.Lock()
		if s.connErr == nil {
			s.connErr = err
		}
		f.cond.Broadcast()
		f.mu.Unlock()
	}
	// Streamed-trace reassembly (wire v6), keyed by sequence number.
	// Local to this matcher: a connection death discards its partial
	// assemblies with it, and the requeued jobs start their streams
	// over on a survivor.
	var asm map[uint64]*traceAssembly
	// Wire byte counters: fold this connection's per-frame tallies
	// into the process counters as deltas, and surface the combined
	// compression ratio per slot.
	var lastTxW, lastRxW uint64
	bytesTick := func() {
		tx, rx := wc.fw.Stats(), wc.fr.Stats()
		mWireTxBytes.Add(tx.Wire - lastTxW)
		mWireRxBytes.Add(rx.Wire - lastRxW)
		lastTxW, lastRxW = tx.Wire, rx.Wire
		if onWire := tx.Wire + rx.Wire; onWire > 0 && wc.fw.Compressing() {
			s.met.compression.Set(float64(tx.Raw+rx.Raw) / float64(onWire))
		}
	}
	defer bytesTick()
	// The stall deadline and its check interval, recomputed per fire
	// because the RTT EWMA moves. The interval quarters the deadline
	// so a stall is declared within ~1.25× the configured deadline in
	// the worst phase alignment.
	deadline := func() time.Duration {
		d := f.stall
		f.mu.Lock()
		rtt := wc.win.rtt
		f.mu.Unlock()
		if r := time.Duration(rtt * float64(time.Second) * stallRTTFactor); r > d {
			d = r
		}
		return d
	}
	var stallC <-chan time.Time
	var stallTimer *time.Timer
	if f.stall > 0 {
		iv := max(deadline()/4, time.Millisecond)
		stallTimer = time.NewTimer(iv)
		defer stallTimer.Stop()
		stallC = stallTimer.C
	}
	var lastRecv time.Time // last frame arrival (any type); matcher-local
	var pingNonce uint64
	for {
		select {
		case now := <-stallC:
			f.mu.Lock()
			n := s.inflightN
			clock := lastRecv
			if cs.armStart.After(clock) {
				clock = cs.armStart
			}
			f.mu.Unlock()
			if n > 0 {
				d := deadline()
				idle := now.Sub(clock)
				if idle >= d {
					die(fmt.Errorf("no frame for %v with %d jobs in flight (liveness deadline %v): presumed hung", idle.Round(time.Millisecond), n, d))
					return
				}
				if idle >= d/2 {
					// Silent but not yet condemned: probe. Only a received
					// frame resets the stall clock, so a worker that eats
					// pings without echoing still hits the deadline.
					if err := wc.ping(pingNonce); err != nil {
						die(fmt.Errorf("liveness ping: %w", err))
						return
					}
					mPings.Inc()
					pingNonce++
				}
			}
			stallTimer.Reset(max(deadline()/4, time.Millisecond))
		case fr, ok := <-wc.frames:
			if !ok {
				err := wc.readErr
				if err == nil {
					err = io.ErrUnexpectedEOF
				}
				die(err)
				return
			}
			if stallC != nil {
				lastRecv = time.Now()
			}
			bytesTick()
			var replies []wire.Reply
			var single [1]wire.Reply
			switch fr.typ {
			case wire.FrameReplyBatch:
				var err error
				if replies, err = wire.DecodeReplies(fr.payload()); err != nil {
					die(err)
					return
				}
			case wire.FrameResult, wire.FrameSweepResult, wire.FrameError, wire.FrameTraceChunk:
				// Multi-tenant: batch and sweep dispatches share the
				// connection, so both result frame types are live at
				// once; each flight checks the type against its own
				// dispatch's expectation below.
				seq, body, err := wire.SplitSeq(fr.payload())
				if err != nil {
					die(err)
					return
				}
				single[0] = wire.Reply{Seq: seq, Typ: fr.typ, Body: body}
				replies = single[:]
			case wire.FramePong:
				// Liveness echo: its arrival already reset the stall
				// clock, which is its load-bearing meaning. Since wire
				// v5 it also carries the worker's per-stream stats;
				// cache them for Fleet.Snapshot. A malformed payload is
				// ignored rather than fatal — the probe did its job by
				// arriving.
				mPongs.Inc()
				if _, ws, perr := wire.DecodePong(fr.payload()); perr == nil {
					wc.stats.Store(&ws)
				}
				fr.release()
				continue
			default:
				die(fmt.Errorf("unexpected frame type %d", fr.typ))
				return
			}
			// A coalesced batch is k replies that arrived at once:
			// spread the observed arrival gap over them so the
			// controller sees the true per-reply service rate. A fixed
			// window observes nothing and pays for no clock reads at
			// all — the in-process-adjacent loopback path is exactly
			// where time.Now() per reply showed up in profiles.
			var (
				now   time.Time
				gap   time.Duration
				adapt bool
			)
			if !wc.win.fixed {
				now = time.Now()
				f.mu.Lock()
				gap, adapt = wc.win.settleGap(now, len(replies))
				f.mu.Unlock()
			}
			for _, r := range replies {
				if r.Typ == wire.FrameTraceChunk {
					// One bounded run of a streamed trace: accumulate it
					// against the job's assembly and move on. The job
					// stays in flight — only its closing result frame
					// settles it — so a connection death mid-stream
					// requeues the job and discards the partial assembly
					// with this matcher.
					f.mu.Lock()
					fl, ok := cs.inflight[r.Seq]
					f.mu.Unlock()
					if !ok {
						die(fmt.Errorf("trace chunk for sequence %d that is not in flight", r.Seq))
						return
					}
					if fl.d.tasks[fl.k].deliverStreamed == nil {
						die(fmt.Errorf("unexpected trace chunk for job %d", fl.d.tasks[fl.k].id))
						return
					}
					as := asm[r.Seq]
					if as == nil {
						if asm == nil {
							asm = make(map[uint64]*traceAssembly)
						}
						as = &traceAssembly{}
						asm[r.Seq] = as
					}
					if err := as.add(r.Body); err != nil {
						die(err)
						return
					}
					continue
				}
				f.mu.Lock()
				fl, ok := cs.inflight[r.Seq]
				var skip bool
				if ok {
					delete(cs.inflight, r.Seq)
					s.inflightN--
					s.perDisp[fl.d.id]--
					if adapt {
						rtt := now.Sub(fl.sent)
						wc.win.observe(rtt, gap)
						// The latency histogram piggybacks on the adaptive
						// controller's timestamps; fixed windows skip every
						// clock read (the PR6 hot path) and so observe
						// nothing here either.
						hJobLatency.Observe(rtt.Seconds())
						s.met.window.Set(float64(wc.win.cur))
						s.met.rtt.Set(wc.win.rtt)
					}
					s.met.inflight.Set(float64(s.inflightN))
					skip = fl.d.finished
					f.cond.Broadcast()
				}
				f.mu.Unlock()
				if !ok {
					die(fmt.Errorf("answer for sequence %d that is not in flight", r.Seq))
					return
				}
				if skip {
					// The dispatch was finalized (stranded, or the fleet
					// closed) while this reply was on the wire: its
					// caller has already been answered, so the bytes
					// have nowhere deterministic to land. Drop them.
					delete(asm, r.Seq)
					continue
				}
				switch r.Typ {
				case fl.d.resFrame:
					var derr error
					if as, streamed := asm[r.Seq]; streamed {
						// The chunks came first (per-stream order), so an
						// existing assembly is what marks this result as
						// the streamed closer.
						delete(asm, r.Seq)
						derr = fl.d.tasks[fl.k].deliverStreamed(r.Body, as.a, as.b)
					} else {
						derr = fl.d.tasks[fl.k].deliver(r.Body)
					}
					if derr != nil {
						// Corrupt reply: requeue the task (it already left
						// the in-flight map) and retire the connection.
						f.mu.Lock()
						f.requeueLocked(fl.d, fl.k, s, true)
						f.cond.Broadcast()
						f.mu.Unlock()
						die(fmt.Errorf("reply for job %d: %w", fl.d.tasks[fl.k].id, derr))
						return
					}
					f.mu.Lock()
					cs.settled++
					if cs.settled == 1 {
						// The connection settled real work: whatever
						// failure streak the slot carried, the host is
						// reachable and executing — not breaker material.
						s.recover()
					}
					f.settleLocked(fl.d)
					f.mu.Unlock()
					s.met.settled.Inc()
				case wire.FrameError:
					// Deterministic job failure: requeueing would fail
					// identically on every worker. Count it settled so
					// the dispatch drains; its verdict reports it. Any
					// partial trace stream is abandoned with it.
					delete(asm, r.Seq)
					f.mu.Lock()
					fl.d.jobErrs = append(fl.d.jobErrs, fmt.Errorf("dist: job %d on %s: %w", fl.d.tasks[fl.k].id, wc.name, &jobError{msg: string(r.Body)}))
					cs.settled++
					if cs.settled == 1 {
						s.recover()
					}
					f.settleLocked(fl.d)
					f.mu.Unlock()
					s.met.settled.Inc()
				default:
					f.mu.Lock()
					f.requeueLocked(fl.d, fl.k, s, true)
					f.cond.Broadcast()
					f.mu.Unlock()
					die(fmt.Errorf("unexpected reply type %d for sequence %d", r.Typ, r.Seq))
					return
				}
			}
			fr.release()
		}
	}
}
