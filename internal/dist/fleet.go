package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Fleet is a persistent worker session: the fleet is assembled (hosts
// dialed, subprocesses spawned, hellos exchanged, pool hints sent)
// exactly once, any number of batches and sweeps then run over the
// open connections, and Close tears everything down — so a run that
// executes many batches (rvtable regenerating T1–T6, a sweep per
// parameter, a service handling request after request) pays one dial
// and one handshake per host instead of one per batch.
//
// The fleet is multi-tenant (PR 10): concurrent Run/RunStream/Sweep
// calls do not queue behind each other — each becomes a dispatch with
// its own id and sequence space, and every connection interleaves
// jobs from all live dispatches under the fleet's fairness policy
// (sched.go, fairness.go). A connection that dies is re-dialed or
// respawned under the slot's session-lifetime respawn budget
// (Config.MaxRespawns — it never resets, so a host that keeps dying
// retires for good); adaptive window state lives on the connection
// and survives from one batch to the next, so a later batch starts
// with the window the earlier batches learned. Slots can join and
// drain mid-session: AddHost and Retire (membership.go).
//
// Every determinism property of the one-shot path carries over
// verbatim: session reuse, tenant interleaving, work stealing, and
// fairness are all pure scheduling, so any mix of concurrent batches
// and sweeps over any fleet produces per-call byte-identical results
// to the same calls run in-process serially.
type Fleet struct {
	cfg Config

	// mu is THE scheduler lock: dispatch queues, per-connection
	// in-flight bookkeeping, window controllers, breaker state, and
	// membership all live under it; cond wakes idle senders and parked
	// runners when any of that changes.
	mu     sync.Mutex
	cond   *sync.Cond
	slots  []*slot
	closed bool

	// Resolved-once config (the scheduler reads them on hot paths).
	stall    time.Duration
	maxKills int
	fair     Fairness

	// Live dispatches in admission order, plus the fleet-wide ready
	// total mirrored into the queue-depth gauge.
	nextID  uint32
	arrival uint64
	live    []*dispatch
	queued  int

	// Scratch for pickLocked's fairness path, reused between claims.
	elig  []*dispatch
	views []DispatchView
}

// Dial assembles the worker fleet the config names and returns the
// open session. Individual workers that cannot be reached are reported
// on the config's stderr and skipped; Dial fails only when no worker
// at all came up (or the config names none).
func Dial(cfg Config) (*Fleet, error) {
	if !cfg.Enabled() {
		return nil, errors.New("dist: config names no workers")
	}
	slots, errs := assemble(cfg)
	if len(slots) == 0 {
		return nil, fmt.Errorf("dist: no worker reachable: %w", errors.Join(errs...))
	}
	lg := logOf(cfg)
	for _, e := range errs {
		lg.Warn("dist: worker unavailable", "err", e)
	}
	f := &Fleet{
		cfg:      cfg,
		slots:    slots,
		stall:    cfg.stallTimeout(),
		maxKills: cfg.maxJobRequeues(),
		fair:     cfg.Fairness,
	}
	f.cond = sync.NewCond(&f.mu)
	for _, s := range slots {
		f.startSlot(s)
	}
	return f, nil
}

// startSlot initializes a slot's runner lifecycle and launches its
// persistent runner goroutine. Called at assembly and by AddHost.
func (f *Fleet) startSlot(s *slot) {
	s.backoff = f.cfg.redialWait()
	s.stopC = make(chan struct{})
	s.done = make(chan struct{})
	go f.runSlot(s)
}

// Size reports the number of fleet slots that have not retired (or
// begun draining). It is the worker count Stats reports for
// distributed batches.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, s := range f.slots {
		if !s.retired && !s.draining {
			n++
		}
	}
	return n
}

// Close ends the session: every live connection is closed (stdio
// workers exit on the EOF, TCP workers see the stream end), every
// still-live dispatch is finalized with an error, and later
// dispatches fail. Close blocks until every slot runner has exited.
// Closing an already-closed fleet is a no-op.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	for len(f.live) > 0 {
		d := f.live[0]
		f.finishLocked(d, errors.Join(append(append([]error(nil), d.deadErrs...),
			fmt.Errorf("dist: fleet closed with %d jobs undone", d.remaining))...))
	}
	f.cond.Broadcast()
	slots := f.slots
	f.mu.Unlock()
	for _, s := range slots {
		s.interrupt()
	}
	for _, s := range slots {
		<-s.done
	}
	return nil
}

// Run executes the jobs across the session's fleet and returns results
// in input order plus aggregate accounting, byte-identical to
// batch.Run on the same jobs. localWorkers sizes the in-process pool
// for jobs without a wire form (≤ 0 selects GOMAXPROCS). The error is
// non-nil only when results are incomplete — every worker retired, or
// a job failed deterministically on a worker; the caller can then fall
// back to in-process execution, which purity guarantees produces the
// same output.
func (f *Fleet) Run(jobs []batch.Job, localWorkers int) ([]sim.Result, batch.Stats, error) {
	return collect(f.RunStream(jobs, localWorkers))
}

// RunStream is Run with ordered streaming delivery: the returned
// Stream releases results in input order as the completed prefix
// grows. Failures surface through Stream.Err after the channel closes,
// with the delivered prefix still byte-exact.
func (f *Fleet) RunStream(jobs []batch.Job, localWorkers int) (*batch.Stream, error) {
	return streamJobs(f, jobs, localWorkers, false)
}

// RunOrFallback is Run with the standard degradation policy: when the
// distributed run fails (every worker retired, a job failed on a
// worker), the batch completes in-process instead — byte-identical by
// the determinism guarantee — after a warning on the config's stderr.
// A mid-run failure keeps the delivered ordered prefix and recomputes
// only the rest, so a single bad slot does not cost the whole batch
// twice.
func (f *Fleet) RunOrFallback(jobs []batch.Job, localWorkers int) ([]sim.Result, batch.Stats) {
	return runOrFallback(jobs, localWorkers, f.cfg, func() (*batch.Stream, error) {
		return f.RunStream(jobs, localWorkers)
	})
}

// StreamOrFallback is RunStream with the same degradation policy,
// flattened to a plain ordered channel: every result is delivered in
// input order exactly once — distributed while the fleet holds,
// spliced with an in-process run of the undelivered suffix if it fails
// (determinism makes the splice exact).
func (f *Fleet) StreamOrFallback(jobs []batch.Job, localWorkers int) <-chan sim.Result {
	return streamOrFallback(jobs, localWorkers, true, f.cfg, func() (*batch.Stream, error) {
		return f.RunStream(jobs, localWorkers)
	})
}

// ---- one-shot wrappers (ephemeral session per call) ----

// RunOrFallback is Fleet.RunOrFallback over an ephemeral session: when
// the config names no fleet, or no worker can be reached, the batch
// completes in-process — byte-identical — after a warning on the
// config's stderr.
func RunOrFallback(jobs []batch.Job, localWorkers int, cfg Config) ([]sim.Result, batch.Stats) {
	if !cfg.Enabled() {
		return batch.Run(jobs, localWorkers)
	}
	return runOrFallback(jobs, localWorkers, cfg, func() (*batch.Stream, error) {
		return RunStream(jobs, localWorkers, cfg)
	})
}

// StreamOrFallback is Fleet.StreamOrFallback over an ephemeral
// session (no fleet configured, unreachable, or lost mid-run all
// degrade to in-process execution, splice-exact).
func StreamOrFallback(jobs []batch.Job, localWorkers int, cfg Config) <-chan sim.Result {
	return streamOrFallback(jobs, localWorkers, cfg.Enabled(), cfg, func() (*batch.Stream, error) {
		return RunStream(jobs, localWorkers, cfg)
	})
}

// Run executes the jobs over an ephemeral session (dial, run, close)
// and returns results in input order plus aggregate accounting.
func Run(jobs []batch.Job, localWorkers int, cfg Config) ([]sim.Result, batch.Stats, error) {
	return collect(RunStream(jobs, localWorkers, cfg))
}

// RunStream runs the jobs over an ephemeral session with ordered
// streaming delivery; the session is torn down when the stream
// completes. A non-nil error means the run could not start (no worker
// reachable) and nothing was delivered.
func RunStream(jobs []batch.Job, localWorkers int, cfg Config) (*batch.Stream, error) {
	// Cap the fleet at the wire-formed unique-job count: a fleet larger
	// than the batch guarantees workers that never claim a job yet
	// still pay spawn and handshake cost. (A persistent Fleet is dialed
	// at full strength instead — its later batches may need the width.)
	_, uniq := batch.Dedup(len(jobs), func(i int) any { return jobs[i].Key })
	remote := 0
	for _, i := range uniq {
		if jobs[i].Wire != nil {
			remote++
		}
	}
	var f *Fleet
	if remote > 0 {
		if cfg.Procs > remote {
			cfg.Procs = remote
		}
		if len(cfg.Hosts) > remote {
			cfg.Hosts = cfg.Hosts[:remote]
		}
		var err error
		if f, err = Dial(cfg); err != nil {
			return nil, err
		}
	}
	return streamJobs(f, jobs, localWorkers, true)
}

// collect drains a stream into the slice API shape.
func collect(st *batch.Stream, err error) ([]sim.Result, batch.Stats, error) {
	if err != nil {
		return nil, batch.Stats{}, err
	}
	results := make([]sim.Result, 0, 16)
	for r := range st.Results() {
		results = append(results, r)
	}
	if err := st.Err(); err != nil {
		return nil, batch.Stats{}, err
	}
	return results, st.Stats(), nil
}

// runOrFallback implements the slice-shaped degradation policy over
// any stream starter (session-backed or ephemeral). Degradations are
// counted (rv_dist_fallbacks_total) and logged as structured events
// carrying the wrapped error and the fleet recipe, so silent
// in-process completion — invisible in the output bytes by design —
// is visible to an operator.
func runOrFallback(jobs []batch.Job, localWorkers int, cfg Config, start func() (*batch.Stream, error)) ([]sim.Result, batch.Stats) {
	st, err := start()
	if err != nil {
		mFallbacks.Inc()
		logOf(cfg).Warn("dist: distributed batch failed; falling back to in-process",
			"err", err, "hosts", hostSummary(cfg))
		return batch.Run(jobs, localWorkers)
	}
	results := make([]sim.Result, 0, len(jobs))
	for r := range st.Results() {
		results = append(results, r)
	}
	if err := st.Err(); err == nil {
		return results, st.Stats()
	} else {
		mFallbacks.Inc()
		logOf(cfg).Warn("dist: distributed batch failed; finishing in-process",
			"err", err, "delivered", len(results), "hosts", hostSummary(cfg))
	}
	suffix, _ := batch.Run(jobs[len(results):], localWorkers)
	results = append(results, suffix...)
	// Accounting on the splice path: report the canonical execution set
	// (what a clean run of this batch executes); the suffix re-dedups
	// independently, so the actual execution count may have been higher.
	_, uniq := batch.Dedup(len(jobs), func(i int) any { return jobs[i].Key })
	return results, batch.FoldStats(results, len(uniq), batch.Workers(localWorkers, len(jobs)))
}

// streamOrFallback implements the channel-shaped degradation policy
// over any stream starter. enabled=false skips the distributed attempt
// entirely (the ephemeral path with no configured fleet).
func streamOrFallback(jobs []batch.Job, localWorkers int, enabled bool, cfg Config, start func() (*batch.Stream, error)) <-chan sim.Result {
	out := make(chan sim.Result, len(jobs))
	go func() {
		defer close(out)
		delivered := 0
		if enabled {
			st, err := start()
			if err == nil {
				for r := range st.Results() {
					out <- r
					delivered++
				}
				if err = st.Err(); err == nil {
					return
				}
			}
			mFallbacks.Inc()
			logOf(cfg).Warn("dist: distributed batch failed; finishing in-process",
				"err", err, "delivered", delivered, "hosts", hostSummary(cfg))
		}
		for r := range batch.RunStream(jobs[delivered:], localWorkers).Results() {
			out <- r
		}
	}()
	return out
}

// streamJobs is the shared core of every batch entry point: partition
// the executing set, start the ordered stream, and run the coordinator
// over the given session (nil when the batch has no wire-formed jobs —
// then everything runs in-process). closeFleet tears the session down
// once the stream settles (the ephemeral wrappers).
func streamJobs(f *Fleet, jobs []batch.Job, localWorkers int, closeFleet bool) (*batch.Stream, error) {
	canon, uniq := batch.Dedup(len(jobs), func(i int) any { return jobs[i].Key })

	// Partition the executing set: wire-formed jobs can ship to worker
	// processes, the rest run here. The partition is pure bookkeeping —
	// results land by input index either way.
	var remote, local []int
	for _, i := range uniq {
		if jobs[i].Wire != nil {
			if f != nil {
				remote = append(remote, i)
			} else {
				local = append(local, i)
			}
		} else {
			local = append(local, i)
		}
	}

	s, p := batch.NewStream(len(jobs))
	go func() {
		workers, distErr := run(f, jobs, canon, uniq, remote, local, localWorkers, p)
		if closeFleet && f != nil {
			// Tear the ephemeral session down BEFORE the stream settles:
			// Close joins every slot runner, so by the time the caller
			// sees the verdict no goroutine of this run still touches
			// the config's stderr (or anything else).
			f.Close()
		}
		p.Close(len(uniq), workers, distErr)
	}()
	return s, nil
}

// run is the coordinator engine: the multi-tenant scheduler
// (sched.go) pipelines remote jobs over the session's fleet, an
// in-process pool runs the local jobs concurrently, and every
// completion releases the job's result (and its memoized duplicates)
// into the stream. It returns the worker count and distributed
// verdict for the caller's Producer.Close — the caller settles the
// stream itself, after any session teardown it owes.
func run(f *Fleet, jobs []batch.Job, canon, uniq, remote, local []int, localWorkers int, p *batch.Producer) (workers int, distErr error) {
	dups := batch.DupsOf(canon)
	deliver := func(i int, r sim.Result) {
		p.Put(i, r)
		for _, j := range dups[i] {
			p.Put(j, r.CloneTraces())
		}
	}

	var wg sync.WaitGroup
	localPool := 0
	if len(local) > 0 {
		localPool = batch.Workers(localWorkers, len(local))
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch.Do(len(local), localPool, func(k int) {
				i := local[k]
				deliver(i, sim.Run(jobs[i].A, jobs[i].B, jobs[i].Settings))
			})
		}()
	}

	fleetSize := 0
	if len(remote) > 0 {
		// Stats report the connections this batch could actually use:
		// dispatch truncates the active set to the task count, so a wide
		// session fleet running a narrow batch counts only the slots that
		// could have claimed a job.
		fleetSize = min(f.Size(), len(remote))
		tasks := make([]task, len(remote))
		for k, i := range remote {
			i := i
			tasks[k] = task{
				id:      i,
				payload: wire.EncodeJob(*jobs[i].Wire),
				deliver: func(body []byte) error {
					res, err := wire.DecodeResult(body)
					if err != nil {
						return err
					}
					deliver(i, res)
					return nil
				},
				// Long traces arrive as chunk frames the matcher assembled;
				// the closer carries only the scalars plus the point counts
				// the worker streamed, cross-checked here so a dropped or
				// duplicated chunk can never settle silently.
				deliverStreamed: func(body []byte, a, b []sim.TracePoint) error {
					res, nA, nB, err := wire.DecodeStreamedResult(body)
					if err != nil {
						return err
					}
					if nA != uint32(len(a)) || nB != uint32(len(b)) {
						return fmt.Errorf("streamed result trace counts %d/%d do not match assembled %d/%d",
							nA, nB, len(a), len(b))
					}
					res.TraceA, res.TraceB = a, b
					deliver(i, res)
					return nil
				},
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			distErr = f.dispatch(tasks, wire.FrameJob, wire.FrameResult)
		}()
	}

	wg.Wait()
	return fleetSize + localPool, distErr
}
