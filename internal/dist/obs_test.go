// Flight-recorder tests at the dispatch layer: the differential proof
// that observation does not perturb the computation (the load-bearing
// guarantee of internal/obs — DESIGN.md §11), and the coordinator-side
// view of worker stats piggybacked on pong frames (wire v5).

package dist

import (
	"bytes"
	"testing"

	"repro/internal/batch"
	"repro/internal/obs"
)

// TestMetricsOnOffDifferential is the observation-purity proof: the
// same distributed batch run with the flight recorder enabled and
// disabled — and the serial in-process run — produce byte-identical
// results and identical executed counts. Metrics may count anything
// they like; they may change nothing.
func TestMetricsOnOffDifferential(t *testing.T) {
	ins := drawInstances(3)
	ins = append(ins, ins...) // duplicates exercise the memoization accounting too
	set := testSettings()

	wantRes, wantStats := batch.Run(aurvJobs(t, ins, set), 1)
	want := encodeAll(wantRes)

	run := func(on bool) ([]byte, int) {
		obs.SetEnabled(on)
		res, st, err := Run(aurvJobs(t, ins, set), 1, Config{Procs: 2, Window: 2})
		if err != nil {
			t.Fatalf("distributed run (metrics=%v): %v", on, err)
		}
		return encodeAll(res), st.Executed
	}
	defer obs.SetEnabled(true)
	offBytes, offExec := run(false)
	onBytes, onExec := run(true)

	if !bytes.Equal(offBytes, want) || !bytes.Equal(onBytes, want) {
		t.Fatalf("distributed results diverge from serial run (metrics-off match: %v, metrics-on match: %v)",
			bytes.Equal(offBytes, want), bytes.Equal(onBytes, want))
	}
	if offExec != wantStats.Executed || onExec != wantStats.Executed {
		t.Fatalf("Executed diverges: serial %d, metrics-off %d, metrics-on %d",
			wantStats.Executed, offExec, onExec)
	}
}

// TestFleetSnapshot runs a batch over a held-open session and checks
// the snapshot: the slot is live, and the worker's piggybacked stats
// arrive over the wire with a served count covering the batch.
func TestFleetSnapshot(t *testing.T) {
	ins := drawInstances(2)
	set := testSettings()

	f, err := Dial(Config{Procs: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer f.Close()
	res, _, err := f.Run(aurvJobs(t, ins, set), 1)
	if err != nil {
		t.Fatalf("Fleet.Run: %v", err)
	}
	if len(res) != len(ins) {
		t.Fatalf("got %d results, want %d", len(res), len(ins))
	}

	snap := f.Snapshot()
	if len(snap.Slots) != 1 {
		t.Fatalf("got %d slots, want 1", len(snap.Slots))
	}
	s := snap.Slots[0]
	if !s.Live {
		t.Fatalf("slot %q not live in snapshot", s.Name)
	}
	if s.Worker == nil {
		t.Fatalf("slot %q carries no worker stats (pong probe failed)", s.Name)
	}
	if s.Worker.Served < uint64(len(ins)) {
		t.Fatalf("worker served %d jobs, want >= %d", s.Worker.Served, len(ins))
	}
	if s.Worker.Pings == 0 {
		t.Fatalf("worker answered the snapshot probe but counts 0 pings")
	}
	if !snap.Metrics.Enabled {
		t.Fatalf("metrics snapshot reports recorder disabled")
	}
}
