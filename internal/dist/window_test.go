package dist

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Tests of the PR 4 dispatch path: pipelined windows, in-worker pools,
// mid-run respawn, and the distributed Monte-Carlo sweep. Everything
// here is a differential against the in-process engines — the
// determinism guarantee is the spec.

// flakyStdioEnv points worker mode at a marker file: when the marker
// does not exist yet, the worker creates it, speaks a valid hello,
// swallows one job frame, and exits — dying with the job (and any
// other in-flight jobs) unanswered. When the marker exists, the worker
// behaves normally. One Config{Procs:1} slot therefore dies once and
// comes back healthy on respawn.
const flakyStdioEnv = "RV_TEST_FLAKY_STDIO"

func maybeFlakyStdio() {
	marker := os.Getenv(flakyStdioEnv)
	if marker == "" || os.Getenv(WorkerEnv) == "" {
		return
	}
	if _, err := os.Stat(marker); err == nil {
		return // already died once: fall through to the real worker loop
	}
	if err := os.WriteFile(marker, []byte("died"), 0o644); err != nil {
		os.Exit(1)
	}
	bw := bufio.NewWriter(os.Stdout)
	wire.WriteFrame(bw, wire.FrameHello, wire.EncodeHello(0))
	bw.Flush()
	wire.ReadFrame(bufio.NewReader(os.Stdin)) // swallow one job
	os.Exit(1)
}

// TestWindowedMatchesSerial is the core differential of the pipelined
// path: 2 worker subprocesses, a 4-deep window, and a 2-wide in-worker
// pool (Parallelism forwarded over the wire) must be byte-identical to
// the in-process serial engine, memoization accounting included.
func TestWindowedMatchesSerial(t *testing.T) {
	ins := drawInstances(4)
	ins = append(ins, ins[1], ins[2]) // duplicates for the memoization path
	set := testSettings()
	set.Parallelism = 2 // forwarded: sizes each worker's in-process pool

	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)
	got, gotStats, err := Run(aurvJobs(t, ins, set), 1, Config{Procs: 2, Window: 4})
	if err != nil {
		t.Fatalf("windowed run failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("windowed results differ from in-process serial")
	}
	if gotStats.Executed != wantStats.Executed || gotStats.Executed != len(ins)-2 {
		t.Fatalf("Executed = %d, want %d", gotStats.Executed, len(ins)-2)
	}
	if gotStats.Met != wantStats.Met || gotStats.Segments != wantStats.Segments {
		t.Fatalf("aggregate stats diverge: %+v vs %+v", gotStats, wantStats)
	}
}

// windowedFlakyWorker speaks a valid hello, reads `swallow` job frames
// without answering any, and drops the connection — a worker dying
// with a whole window of jobs in flight.
func windowedFlakyWorker(t *testing.T, l net.Listener, swallow int) {
	conn, err := l.Accept()
	if err != nil {
		return
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello(0)); err != nil {
		t.Error(err)
		return
	}
	for k := 0; k < swallow; k++ {
		if _, _, err := wire.ReadFrame(conn); err != nil {
			return // coordinator may not have that many jobs for us
		}
	}
}

// TestWorkerDeathWindowRequeues kills a worker holding a non-trivial
// window of in-flight jobs and checks the survivor completes the batch
// with every job executed exactly once on it: all in-flight jobs were
// requeued (none lost), none duplicated (no double settle), the
// streamed order is still the input order, and Stats.Executed still
// reports the memoization count, not the requeue traffic.
func TestWorkerDeathWindowRequeues(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go windowedFlakyWorker(t, l, 3) // die with up to 3 jobs in flight

	// A survivor that counts the job frames it serves.
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer sl.Close()
	var served int64
	go func() {
		conn, err := sl.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		pr, pw := io.Pipe()
		go func() {
			// Tap the stream frame by frame, counting job frames.
			br := bufio.NewReader(conn)
			bw := bufio.NewWriter(pw)
			for {
				typ, payload, err := wire.ReadFrame(br)
				if err != nil {
					pw.CloseWithError(err)
					return
				}
				if typ == wire.FrameJob {
					atomic.AddInt64(&served, 1)
				}
				if err := wire.WriteFrame(bw, typ, payload); err != nil || bw.Flush() != nil {
					pw.CloseWithError(io.ErrClosedPipe)
					return
				}
			}
		}()
		Serve(pr, conn)
	}()

	ins := drawInstances(4)
	ins = append(ins, ins[0]) // one duplicate
	set := testSettings()
	jobs := aurvJobs(t, ins, set)
	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)

	st, err := RunStream(jobs, 1, Config{
		Hosts:       tcpHosts(l.Addr().String(), sl.Addr().String()),
		Window:      4,
		MaxRespawns: -1, // the flaky fake never accepts again
	})
	if err != nil {
		t.Fatalf("stream start failed: %v", err)
	}
	var got []sim.Result
	for r := range st.Results() {
		got = append(got, r)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream ended with error: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("results after windowed death/requeue differ from in-process serial")
	}
	if st.Stats().Executed != wantStats.Executed || st.Stats().Executed != len(ins)-1 {
		t.Fatalf("Stats.Executed = %d, want %d (requeues must not inflate it)",
			st.Stats().Executed, len(ins)-1)
	}
	// Every unique job ran exactly once on the survivor: the flaky
	// worker answered nothing, so fewer frames would mean lost jobs and
	// more would mean a double requeue.
	if n := atomic.LoadInt64(&served); n != int64(len(ins)-1) {
		t.Fatalf("survivor served %d jobs, want %d (each in-flight job requeued exactly once)",
			n, len(ins)-1)
	}
}

// TestTCPRespawnMidRun pins the dynamic-fleet half of the tentpole: a
// single-host fleet whose worker dies mid-run must re-dial the host
// and finish the batch — byte-identically, with no run-level error —
// instead of retiring the slot and stranding the jobs. The death is
// scripted through the chaos rig: the first connection's stream to the
// coordinator is cut at its first reply frame (the hello is frame 0),
// so the worker provably held a job when it "crashed"; the redial gets
// the clean Default script and finishes the batch.
func TestTCPRespawnMidRun(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go ServeListener(l)
	p, err := NewChaosProxy(l.Addr().String(), ChaosPlan{
		Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultDrop, Frame: 1}}}},
	})
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer p.Close()

	ins := drawInstances(3)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	got, _, err := Run(aurvJobs(t, ins, set), 1, Config{
		Hosts:      tcpHosts(p.Addr()),
		Window:     2,
		RedialWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run with a respawning worker failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("results after mid-run re-dial differ from in-process serial")
	}
}

// TestStdioRespawnMidRun is the subprocess flavor: the spawned worker
// (this test binary, hijacked by maybeFlakyStdio) dies after
// swallowing one job; the coordinator must respawn the subprocess and
// finish byte-identically with no run-level error.
func TestStdioRespawnMidRun(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "died-once")
	t.Setenv(flakyStdioEnv, marker)

	ins := drawInstances(3)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	got, _, err := Run(aurvJobs(t, ins, set), 1, Config{
		Procs:      1,
		Window:     2,
		RedialWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run with a respawning subprocess failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("results after mid-run respawn differ from in-process serial")
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatal("flaky worker never engaged: the test proved nothing")
	}
}

// TestRespawnBudgetExhausted: a worker that dies on every connection
// must not be re-dialed forever — the slot retires after its budget
// and the run errors out (the caller's cue to fall back in-process).
func TestRespawnBudgetExhausted(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go func() { // every connection: hello, swallow one job, die
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello(0)); err != nil {
					return
				}
				wire.ReadFrame(conn)
			}()
		}
	}()

	ins := drawInstances(2)
	_, _, err = Run(aurvJobs(t, ins, testSettings()), 1, Config{
		Hosts:       tcpHosts(l.Addr().String()),
		MaxRespawns: 2,
		RedialWait:  5 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("run against an always-dying worker reported success")
	}
}

// TestDistSweepMatchesInProcess pins the distributed T5 sweep to the
// in-process chunked sweep, exactly, for several worker/window
// shapes — the acceptance criterion of the distributed Monte-Carlo
// tentpole leg.
func TestDistSweepMatchesInProcess(t *testing.T) {
	const n = 200_000 // 4 chunks of 65536
	eps := []float64{0.25, 0.35, 0.5}
	box := measure.DefaultBox()
	const seed = 5

	for _, workers := range []int{1, 4} {
		want := measure.SweepParallel(n, eps, box, seed, workers)
		for _, cfg := range []Config{
			{Procs: 1, Window: 1},
			{Procs: 2, Window: 2},
			{Procs: 2, Window: 4},
		} {
			got, err := Sweep(n, eps, box, seed, workers, cfg)
			if err != nil {
				t.Fatalf("dist sweep (workers=%d cfg=%+v) failed: %v", workers, cfg, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("dist sweep (workers=%d cfg=%+v) diverges:\n%+v\nvs\n%+v", workers, cfg, got, want)
			}
		}
	}
	// The fallback path is the same function.
	if got := SweepOrFallback(n, eps, box, seed, 2, Config{}); !reflect.DeepEqual(got, measure.SweepParallel(n, eps, box, seed, 2)) {
		t.Fatal("SweepOrFallback without a fleet diverges from SweepParallel")
	}
}

// TestSweepFallbackSplicesDeliveredChunks: when the fleet dies mid-
// sweep, the fallback must keep the chunks the fleet delivered and
// recompute only the holes — and the spliced total must still equal
// the in-process sweep exactly.
func TestSweepFallbackSplicesDeliveredChunks(t *testing.T) {
	const n = 200_000 // 4 chunks
	eps := []float64{0.25, 0.35, 0.5}
	box := measure.DefaultBox()
	const seed = 5

	// A worker that answers exactly two chunks, then dies — the only
	// member of the fleet, with respawn disabled, so the dispatch ends
	// in error with a delivered prefix of 2 chunks.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello(0)); err != nil {
			return
		}
		for k := 0; k < 2; k++ {
			typ, payload, err := wire.ReadFrame(conn)
			if err != nil || typ != wire.FrameSweepJob {
				return
			}
			seq, body, err := wire.SplitSeq(payload)
			if err != nil {
				return
			}
			sj, err := wire.DecodeSweepJob(body)
			if err != nil {
				return
			}
			s := measure.Sweep(sj.N, sj.Eps, sj.Box, sj.Seed)
			if err := wire.WriteFrame(conn, wire.FrameSweepResult,
				wire.AppendSeq(seq, wire.EncodeMeasureStats(s))); err != nil {
				return
			}
		}
	}()

	var log bytes.Buffer
	got := SweepOrFallback(n, eps, box, seed, 1, Config{
		Hosts:       tcpHosts(l.Addr().String()),
		Window:      1,
		MaxRespawns: -1,
		Stderr:      &log,
	})
	if want := measure.SweepParallel(n, eps, box, seed, 1); !reflect.DeepEqual(got, want) {
		t.Fatalf("spliced fallback sweep diverges:\n%+v\nvs\n%+v", got, want)
	}
	// The splice must actually have happened: 2 of 4 chunks recomputed.
	if s := log.String(); !strings.Contains(s, "falling back in-process for 2/4 chunks") {
		t.Fatalf("fallback did not splice the delivered prefix:\n%s", s)
	}
}
