package dist

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/wire"
)

// WAN differential suite: the wire-path optimizations — negotiated
// compression, chunked trace streaming, pooled frame buffers — are
// transport-only, so every combination of them, through every link the
// chaos rig can model (delay lines, bandwidth caps, faults), must leave
// the batch byte-identical to the in-process serial engine. These tests
// are the byte-identity proof for the WAN path; the speedup claim lives
// in BenchmarkDistT2WAN.

// wanScript models the paper-benchmark WAN: a few milliseconds of
// propagation delay and a capped pipe, both directions.
func wanScript() ConnScript {
	return ConnScript{Delay: 2 * time.Millisecond, Bandwidth: 4 << 20}
}

// algZig is a test-only algorithm whose agents zigzag without ever
// meeting: every segment records a trace point, so a modest TraceCap
// yields the long, dense traces the streaming and compression paths
// exist for — which the AURV workloads (meeting within a few segments)
// cannot produce.
const algZig = "test-wan-zigzag"

func init() {
	wire.RegisterAlgorithm(algZig, func(inst.Instance) prog.Program {
		zigs := make([]prog.Instr, 0, 800)
		for i := 0; i < 400; i++ {
			zigs = append(zigs, prog.Move(prog.North, 1), prog.Move(prog.South, 1))
		}
		return prog.Instrs(zigs...)
	})
}

// zigInstances are far enough apart that the zigzag never meets: the
// traces run the full program.
func zigInstances() []inst.Instance {
	return []inst.Instance{
		{R: 0.1, X: 50, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1},
		{R: 0.1, X: 60, Y: 5, Phi: 0.5, Tau: 1, V: 1, T: 0.5, Chi: 1},
		{R: 0.1, X: 70, Y: -5, Phi: 1, Tau: 1, V: 1, T: 1, Chi: -1},
	}
}

// zigJobs builds the trace-heavy differential workload.
func zigJobs(t *testing.T, set sim.Settings) []batch.Job {
	t.Helper()
	ins := zigInstances()
	ins = append(ins, ins[0]) // a duplicate keeps memoization in the frame
	return algJobs(t, algZig, ins, set)
}

// TestCompressDifferential runs a trace-heavy batch with negotiated
// compression through the bandwidth-capped, delay-lined proxy and pins
// byte identity, execution accounting, and the flight recorder's view
// of the compression (raw bytes > wire bytes on both ends).
func TestCompressDifferential(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	ins := drawInstances(3)
	ins = append(ins, ins[0]) // a duplicate keeps memoization in the frame
	set := testSettings()
	set.TraceCap = 512 // trace payloads give the compressor something to bite
	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)

	p, err := NewChaosProxy(wl.Addr().String(), ChaosPlan{Default: wanScript()})
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer p.Close()

	tx0, rx0 := mWireTxBytes.Value(), mWireRxBytes.Value()
	wtx0, wraw0 := wWireTxBytes.Value(), wWireRawBytes.Value()

	var log bytes.Buffer
	got, gotStats, err := Run(aurvJobs(t, ins, set), 1, Config{
		Hosts:    tcpHosts(p.Addr()),
		Compress: true,
		Stderr:   &log,
	})
	if err != nil {
		t.Fatalf("compressed WAN run failed: %v\ncoordinator log:\n%s", err, log.String())
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("compressed WAN results differ from in-process serial")
	}
	if gotStats.Executed != wantStats.Executed {
		t.Fatalf("Executed = %d under compression, want %d", gotStats.Executed, wantStats.Executed)
	}

	// The recorder saw the stream: both sides counted bytes, and the
	// worker's reply stream (trace-heavy results) genuinely shrank.
	if d := mWireTxBytes.Value() - tx0; d == 0 {
		t.Error("coordinator tx byte counter never moved")
	}
	if d := mWireRxBytes.Value() - rx0; d == 0 {
		t.Error("coordinator rx byte counter never moved")
	}
	wtx, wraw := wWireTxBytes.Value()-wtx0, wWireRawBytes.Value()-wraw0
	if wtx == 0 || wraw == 0 {
		t.Fatalf("worker byte counters never moved: tx %d raw %d", wtx, wraw)
	}
	if wtx >= wraw {
		t.Errorf("worker reply stream did not shrink: %d wire bytes for %d raw", wtx, wraw)
	}
	if r := gwCompressionRatio.Value(); r <= 1 {
		t.Errorf("worker compression ratio gauge = %v, want > 1", r)
	}
}

// TestCompressFaultDifferential: a mid-run fault on a compressing
// connection must recover exactly like an uncompressed one — the redial
// renegotiates compression from the hello up and the batch stays
// byte-identical.
func TestCompressFaultDifferential(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	ins := drawInstances(3)
	set := testSettings()
	set.TraceCap = 512
	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)

	for _, kind := range []struct {
		name string
		k    FaultKind
	}{{"drop", FaultDrop}, {"truncate", FaultTruncate}, {"corrupt", FaultCorrupt}} {
		t.Run(kind.name, func(t *testing.T) {
			p, err := NewChaosProxy(wl.Addr().String(), ChaosPlan{
				Scripts: []ConnScript{{
					Delay:     time.Millisecond,
					Bandwidth: 4 << 20,
					ToCoord:   []Fault{{Kind: kind.k, Frame: 1}},
				}},
				Default: wanScript(),
			})
			if err != nil {
				t.Skipf("loopback listen unavailable: %v", err)
			}
			defer p.Close()
			var log bytes.Buffer
			got, gotStats, err := Run(aurvJobs(t, ins, set), 1, Config{
				Hosts:        tcpHosts(p.Addr()),
				Compress:     true,
				Window:       2,
				RedialWait:   2 * time.Millisecond,
				StallTimeout: 300 * time.Millisecond,
				Stderr:       &log,
			})
			if err != nil {
				t.Fatalf("compressed run under %s fault failed: %v\ncoordinator log:\n%s",
					kind.name, err, log.String())
			}
			if !bytes.Equal(encodeAll(got), encodeAll(want)) {
				t.Fatalf("compressed results under %s fault differ from in-process serial", kind.name)
			}
			if gotStats.Executed != wantStats.Executed {
				t.Fatalf("Executed = %d under %s fault, want %d", gotStats.Executed, kind.name, wantStats.Executed)
			}
		})
	}
}

// TestTraceStreamingDifferential drops the chunk threshold so every
// trace-bearing result streams as FrameTraceChunk frames, and pins the
// reassembled batch byte-identical — compression off and on (chunked
// AND deflated is the full WAN path). The worker serves in-process, so
// the lowered threshold is shared by both ends of the stream.
func TestTraceStreamingDifferential(t *testing.T) {
	old := traceChunkPoints
	traceChunkPoints = 48 // force multi-chunk streams at a small TraceCap
	defer func() { traceChunkPoints = old }()

	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	set := testSettings()
	set.TraceCap = 300 // ~7 chunks per trace at the lowered threshold
	want, wantStats := batch.Run(zigJobs(t, set), 1)
	for i, r := range want {
		if len(r.TraceA)+len(r.TraceB) <= traceChunkPoints {
			t.Fatalf("result %d carries %d+%d trace points, not enough to stream — the differential would be vacuous",
				i, len(r.TraceA), len(r.TraceB))
		}
	}

	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			var log bytes.Buffer
			got, gotStats, err := Run(zigJobs(t, set), 1, Config{
				Hosts:    tcpHosts(wl.Addr().String()),
				Compress: compress,
				Window:   2,
				Stderr:   &log,
			})
			if err != nil {
				t.Fatalf("streamed-trace run failed: %v\ncoordinator log:\n%s", err, log.String())
			}
			if !bytes.Equal(encodeAll(got), encodeAll(want)) {
				t.Fatal("streamed-trace results differ from in-process serial")
			}
			if gotStats.Executed != wantStats.Executed {
				t.Fatalf("Executed = %d with trace streaming, want %d", gotStats.Executed, wantStats.Executed)
			}
		})
	}
}

// TestTraceStreamingFaultDifferential kills the connection while trace
// chunks are in flight: the partial assembly must be discarded with the
// dead connection and the requeued job must restart its stream cleanly
// on the redial — bytes identical, executions accounted once.
func TestTraceStreamingFaultDifferential(t *testing.T) {
	old := traceChunkPoints
	traceChunkPoints = 48
	defer func() { traceChunkPoints = old }()

	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	set := testSettings()
	set.TraceCap = 300
	want, wantStats := batch.Run(zigJobs(t, set), 1)

	// Frame 2 of the reply stream is mid-trace for the first job: the
	// hello is frame 0 and the first chunk follows immediately after.
	p, err := NewChaosProxy(wl.Addr().String(), ChaosPlan{
		Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultDrop, Frame: 2}}}},
	})
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer p.Close()

	var log bytes.Buffer
	got, gotStats, err := Run(zigJobs(t, set), 1, Config{
		Hosts:        tcpHosts(p.Addr()),
		Compress:     true,
		Window:       2,
		RedialWait:   2 * time.Millisecond,
		StallTimeout: 300 * time.Millisecond,
		Stderr:       &log,
	})
	if err != nil {
		t.Fatalf("mid-stream drop run failed: %v\ncoordinator log:\n%s", err, log.String())
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("results after a mid-stream drop differ from in-process serial")
	}
	if gotStats.Executed != wantStats.Executed {
		t.Fatalf("Executed = %d after a mid-stream drop, want %d", gotStats.Executed, wantStats.Executed)
	}
}

// TestCompressOffByWorker: a worker that opts out (rvworker
// -compress=false) advertises no capability, and a Compress-on
// coordinator simply runs the stream raw — not an error, and still
// byte-identical.
func TestCompressOffByWorker(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	srv := NewServer(ServeOptions{NoCompress: true})
	go srv.Serve(wl)
	defer srv.Shutdown()

	ins := drawInstances(2)
	set := testSettings()
	set.TraceCap = 256
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)

	got, _, err := Run(aurvJobs(t, ins, set), 1, Config{
		Hosts:    tcpHosts(wl.Addr().String()),
		Compress: true,
	})
	if err != nil {
		t.Fatalf("run against an opted-out worker failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("opted-out-worker results differ from in-process serial")
	}
}
