package dist

import (
	"repro/internal/cgkk"
	"repro/internal/core"
	"repro/internal/inst"
	"repro/internal/latecomers"
	"repro/internal/prog"
	"repro/internal/wire"
)

// The standard registry names. Exported so in-tree coordinators that
// wire-form jobs by hand (internal/exps) share one source of truth
// with the registrations below; the public rendezvous package composes
// the same strings from Schedule names, pinned by a test.
const (
	AlgAURVCompact  = "AlmostUniversalRV(compact)"
	AlgAURVFaithful = "AlmostUniversalRV(faithful)"
	AlgCGKK         = "CGKK"
	AlgLatecomers   = "Latecomers"
)

// The standard algorithm registrations. Any binary that links this
// package — every coordinator, every worker, every test — agrees on
// what these names mean, which is the premise of shipping algorithms
// by name. The names must match the Name fields the public rendezvous
// package puts on its Algorithm values (rendezvous has a test pinning
// the correspondence); per-instance dedicated algorithms are closures
// without stable identity and deliberately have no wire names — their
// jobs always run in the coordinator process.
func init() {
	wire.RegisterAlgorithm(AlgAURVCompact, func(inst.Instance) prog.Program {
		return core.Program(core.Compact(), nil)
	})
	wire.RegisterAlgorithm(AlgAURVFaithful, func(inst.Instance) prog.Program {
		return core.Program(core.Faithful(), nil)
	})
	wire.RegisterAlgorithm(AlgCGKK, func(inst.Instance) prog.Program {
		return cgkk.Program(cgkk.Compact())
	})
	wire.RegisterAlgorithm(AlgLatecomers, func(inst.Instance) prog.Program {
		return latecomers.Program()
	})
}
