package dist

import (
	"bytes"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestMain lets the test binary double as the spawned worker (the
// coordinator's default WorkerCmd re-executes the current executable).
// maybeFlakyStdio runs first: it hijacks worker mode into a
// die-after-one-job fake exactly once per marker file, the
// deterministic stand-in for a stdio subprocess dying mid-run (see
// TestStdioRespawnMidRun).
func TestMain(m *testing.M) {
	maybeFlakyStdio()
	MaybeServeStdio()
	os.Exit(m.Run())
}

const testAlg = "AlmostUniversalRV(compact)"

func testSettings() sim.Settings {
	s := sim.DefaultSettings()
	s.MaxSegments = 120_000_000
	return s
}

// aurvJobs builds wire-formed batch jobs for the registered compact
// AURV algorithm, mirroring how rendezvous.SimulateBatch builds them.
func aurvJobs(t *testing.T, ins []inst.Instance, set sim.Settings) []batch.Job {
	t.Helper()
	mk, ok := wire.Algorithm(testAlg)
	if !ok {
		t.Fatalf("standard algorithm %q not registered", testAlg)
	}
	jobs := make([]batch.Job, len(ins))
	for i, in := range ins {
		wj := wire.Job{In: in, Alg: testAlg, Set: set}
		jobs[i] = batch.Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: mk(in), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: mk(in), Radius: in.R},
			Settings: set,
			Key:      wj,
			Wire:     &wj,
		}
	}
	return jobs
}

func drawInstances(n int) []inst.Instance {
	g := inst.NewGen(7)
	var ins []inst.Instance
	for _, c := range []inst.Class{inst.ClassMirrorInterior, inst.ClassLatecomer} {
		ins = append(ins, g.DrawN(c, n)...)
	}
	return ins
}

// tcpHosts wraps plain addresses in Config.Hosts form (no pool hints).
func tcpHosts(addrs ...string) []Host {
	hosts := make([]Host, len(addrs))
	for i, a := range addrs {
		hosts[i] = Host{Addr: a}
	}
	return hosts
}

func encodeAll(res []sim.Result) []byte {
	var b bytes.Buffer
	for _, r := range res {
		b.Write(wire.EncodeResult(r))
	}
	return b.Bytes()
}

// TestCoordinatorTwoWorkers is the coordinator + 2 spawned workers
// smoke test: byte-identical to the in-process engine, memoization
// accounting included.
func TestCoordinatorTwoWorkers(t *testing.T) {
	ins := drawInstances(3)
	ins = append(ins, ins[0]) // one duplicate for the memoization path
	set := testSettings()

	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)
	got, gotStats, err := Run(aurvJobs(t, ins, set), 1, Config{Procs: 2})
	if err != nil {
		t.Fatalf("distributed run failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("distributed results differ from in-process")
	}
	if gotStats.Executed != wantStats.Executed || gotStats.Executed != len(ins)-1 {
		t.Fatalf("Executed = %d (dist) vs %d (batch), want %d",
			gotStats.Executed, wantStats.Executed, len(ins)-1)
	}
	if gotStats.Met != wantStats.Met || gotStats.Segments != wantStats.Segments {
		t.Fatalf("aggregate stats diverge: %+v vs %+v", gotStats, wantStats)
	}
}

// TestTCPTransport serves a worker on a loopback listener and runs the
// batch against it by address.
func TestTCPTransport(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go ServeListener(l)

	ins := drawInstances(2)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	got, _, err := Run(aurvJobs(t, ins, set), 1, Config{Hosts: tcpHosts(l.Addr().String())})
	if err != nil {
		t.Fatalf("TCP run failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("TCP results differ from in-process")
	}
}

// gatedJob returns a local-only (no wire form) job whose program blocks
// until the gate closes, then ends without any instruction — the
// deterministic handle for observing streaming before batch completion.
func gatedJob(gate <-chan struct{}) batch.Job {
	blocked := prog.Program(func(yield func(prog.Instr) bool) { <-gate })
	in := inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	return batch.Job{
		A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: blocked, Radius: in.R},
		B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: prog.Empty(), Radius: in.R},
		Settings: testSettings(),
	}
}

// TestRunStreamDeliversBeforeCompletion pins the ordered-streaming
// contract at the dist level: with job 0 on a worker process and job 1
// gated in the coordinator, result 0 must arrive while job 1 is still
// blocked — i.e. before the batch completes.
func TestRunStreamDeliversBeforeCompletion(t *testing.T) {
	gate := make(chan struct{})
	ins := drawInstances(1)[:1]
	jobs := aurvJobs(t, ins, testSettings())
	jobs = append(jobs, gatedJob(gate))

	st, err := RunStream(jobs, 1, Config{Procs: 1})
	if err != nil {
		t.Fatalf("stream start failed: %v", err)
	}
	select {
	case r, ok := <-st.Results():
		if !ok {
			t.Fatal("stream closed before first result")
		}
		if !r.Met {
			t.Fatalf("remote job did not meet: %v", r)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("no streamed result while the batch tail was still running")
	}
	close(gate) // release job 1; the batch can now drain
	r, ok := <-st.Results()
	if !ok {
		t.Fatal("stream closed before gated result")
	}
	if r.Met || r.Reason != sim.ReasonProgramsEnded {
		t.Fatalf("gated job result unexpected: %v", r)
	}
	if _, ok := <-st.Results(); ok {
		t.Fatal("stream delivered more than the batch size")
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream ended with error: %v", err)
	}
}

// flakyWorker is an in-test fake: it speaks a valid hello, reads one
// job frame, and drops the connection without answering — the
// deterministic stand-in for a worker dying mid-job.
func flakyWorker(t *testing.T, l net.Listener) {
	conn, err := l.Accept()
	if err != nil {
		return
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello(0)); err != nil {
		t.Error(err)
		return
	}
	if _, _, err := wire.ReadFrame(conn); err != nil {
		t.Error(err)
	}
	// Close without replying: the coordinator must requeue the job.
}

// TestWorkerDeathRequeues kills a worker mid-job (the fake above) and
// checks the batch still completes on the survivor, byte-identically
// and without a run-level error.
func TestWorkerDeathRequeues(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go flakyWorker(t, l)

	ins := drawInstances(3)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	got, _, err := Run(aurvJobs(t, ins, set), 1,
		Config{Hosts: tcpHosts(l.Addr().String()), Procs: 1})
	if err != nil {
		t.Fatalf("run with one dying worker failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("results after requeue differ from in-process")
	}
}

// TestAllWorkersDead: when every worker is gone and jobs remain, the
// run must error out rather than hang. Respawning is disabled — the
// dead fake never accepts again, so each re-dial would only burn a
// hello timeout before the same verdict (TestRespawnBudgetExhausted
// covers the bounded-respawn path).
func TestAllWorkersDead(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go flakyWorker(t, l)

	ins := drawInstances(2)
	_, _, err = Run(aurvJobs(t, ins, testSettings()), 1,
		Config{Hosts: tcpHosts(l.Addr().String()), MaxRespawns: -1})
	if err == nil {
		t.Fatal("run with only a dying worker reported success")
	}
}

// TestUnregisteredAlgorithmErrors: a wire job naming an unknown
// algorithm is a deterministic failure — reported, not requeued, and
// the rest of the batch still completes.
func TestUnregisteredAlgorithmErrors(t *testing.T) {
	ins := drawInstances(1)[:1]
	set := testSettings()
	jobs := aurvJobs(t, ins, set)
	bogus := *jobs[0].Wire
	bogus.Alg = "no-such-algorithm"
	jobs = append(jobs, batch.Job{
		A:        jobs[0].A,
		B:        jobs[0].B,
		Settings: set,
		Wire:     &bogus,
	})
	_, _, err := Run(jobs, 1, Config{Procs: 1})
	if err == nil {
		t.Fatal("unregistered algorithm did not surface as an error")
	}
}

// TestNoWorkersStartable: an unspawnable command with no hosts is a
// startup error (the caller's cue to fall back in-process).
func TestNoWorkersStartable(t *testing.T) {
	ins := drawInstances(1)[:1]
	_, _, err := Run(aurvJobs(t, ins, testSettings()), 1,
		Config{Procs: 1, Cmd: []string{"/nonexistent/worker-binary"}})
	if err == nil {
		t.Fatal("unspawnable worker command did not error")
	}
}

// TestLocalOnlyJobsNeedNoFleet: a batch with no wire-formed jobs never
// contacts the fleet, even when one is configured.
func TestLocalOnlyJobsNeedNoFleet(t *testing.T) {
	gate := make(chan struct{})
	close(gate)
	jobs := []batch.Job{gatedJob(gate), gatedJob(gate)}
	res, st, err := Run(jobs, 2, Config{Procs: 1, Cmd: []string{"/nonexistent/worker-binary"}})
	if err != nil {
		t.Fatalf("local-only batch failed: %v", err)
	}
	if len(res) != 2 || st.Executed != 2 {
		t.Fatalf("local-only batch: %d results, stats %+v", len(res), st)
	}
}
