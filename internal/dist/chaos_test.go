package dist

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Chaos differential suite: every fault the rig can inject — delay,
// drop, hang, truncate, corrupt — plus the pathological workloads
// (poison jobs that panic or kill their worker) must leave the batch
// byte-identical to the in-process serial engine. Failure handling is
// pure scheduling; these tests are the proof.

// Test-only poison and slow algorithms, registered before TestMain
// hands the re-exec'd binary to MaybeServeStdio — so a spawned stdio
// worker (this same binary) can construct them by name.
const (
	algPanic = "test-chaos-panic" // panics while the job executes
	algExit  = "test-chaos-exit"  // kills the whole worker process
	algSlow  = "test-chaos-slow"  // sleeps well past a tight stall deadline
)

func init() {
	wire.RegisterAlgorithm(algPanic, func(inst.Instance) prog.Program {
		return prog.Program(func(yield func(prog.Instr) bool) {
			panic("poison job pulled")
		})
	})
	wire.RegisterAlgorithm(algExit, func(inst.Instance) prog.Program {
		return prog.Program(func(yield func(prog.Instr) bool) {
			if os.Getenv(WorkerEnv) != "" {
				os.Exit(3) // the worker-killing poison job
			}
			panic("test-chaos-exit executed outside a worker subprocess")
		})
	})
	wire.RegisterAlgorithm(algSlow, func(inst.Instance) prog.Program {
		return prog.Program(func(yield func(prog.Instr) bool) {
			time.Sleep(400 * time.Millisecond)
		})
	})
}

// algJobs is aurvJobs generalized to any registered algorithm name.
func algJobs(t *testing.T, alg string, ins []inst.Instance, set sim.Settings) []batch.Job {
	t.Helper()
	mk, ok := wire.Algorithm(alg)
	if !ok {
		t.Fatalf("algorithm %q not registered", alg)
	}
	jobs := make([]batch.Job, len(ins))
	for i, in := range ins {
		wj := wire.Job{In: in, Alg: alg, Set: set}
		jobs[i] = batch.Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: mk(in), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: mk(in), Radius: in.R},
			Settings: set,
			Key:      wj,
			Wire:     &wj,
		}
	}
	return jobs
}

// TestChaosDifferential runs the batch through the chaos proxy under
// each scripted fault and asserts the dispatch engine recovers to a
// byte-identical result with no run-level error — the tentpole's
// acceptance criterion. Frame 1 of the worker→coordinator direction is
// the first reply (the hello is frame 0), so every fault strikes
// mid-run with jobs in flight; the proxy's later connections run the
// clean Default script, which is what the redial recovers onto.
func TestChaosDifferential(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	ins := drawInstances(3)
	ins = append(ins, ins[0]) // a duplicate keeps memoization in the frame
	set := testSettings()
	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)

	cases := []struct {
		name string
		plan ChaosPlan
	}{
		{"delay", ChaosPlan{Default: ConnScript{Delay: 3 * time.Millisecond}}},
		{"drop", ChaosPlan{Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultDrop, Frame: 1}}}}}},
		{"hang", ChaosPlan{Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultHang, Frame: 1}}}}}},
		{"truncate", ChaosPlan{Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultTruncate, Frame: 1}}}}}},
		{"corrupt", ChaosPlan{Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultCorrupt, Frame: 1}}}}}},
		{"drop-deep-window", ChaosPlan{Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultDrop, Frame: 2}}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewChaosProxy(wl.Addr().String(), tc.plan)
			if err != nil {
				t.Skipf("loopback listen unavailable: %v", err)
			}
			defer p.Close()
			var log bytes.Buffer
			got, gotStats, err := Run(aurvJobs(t, ins, set), 1, Config{
				Hosts:        tcpHosts(p.Addr()),
				Window:       2,
				RedialWait:   2 * time.Millisecond,
				StallTimeout: 300 * time.Millisecond, // the hang case rides on this
				Stderr:       &log,
			})
			if err != nil {
				t.Fatalf("run under %s fault failed: %v\ncoordinator log:\n%s", tc.name, err, log.String())
			}
			if !bytes.Equal(encodeAll(got), encodeAll(want)) {
				t.Fatalf("results under %s fault differ from in-process serial", tc.name)
			}
			if gotStats.Executed != wantStats.Executed {
				t.Fatalf("Executed = %d under %s fault, want %d (requeues must not inflate it)",
					gotStats.Executed, tc.name, wantStats.Executed)
			}
		})
	}
}

// TestChaosMetricsExactCounts turns the chaos rig on the flight
// recorder itself: with one scripted fault per run and Window 1 (so
// exactly one job is in flight when the fault strikes), the recorder
// must account for each injected fault exactly — one worker death, one
// requeue, no quarantine, no breaker trip. Counters that merely move
// "roughly with" faults are worse than none; this pins them to the
// injection schedule.
func TestChaosMetricsExactCounts(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	ins := drawInstances(2)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)

	cases := []struct {
		name string
		plan ChaosPlan
	}{
		{"drop", ChaosPlan{Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultDrop, Frame: 1}}}}}},
		{"hang", ChaosPlan{Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultHang, Frame: 1}}}}}},
		{"corrupt", ChaosPlan{Scripts: []ConnScript{{ToCoord: []Fault{{Kind: FaultCorrupt, Frame: 1}}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewChaosProxy(wl.Addr().String(), tc.plan)
			if err != nil {
				t.Skipf("loopback listen unavailable: %v", err)
			}
			defer p.Close()

			deaths0 := mDeaths.Total()
			requeued0 := mRequeued.Total()
			quarantined0 := mQuarantined.Value()
			breakers0 := mBreakerOpens.Total()
			pings0 := mPings.Value()

			var log bytes.Buffer
			got, _, err := Run(aurvJobs(t, ins, set), 1, Config{
				Hosts:        tcpHosts(p.Addr()),
				Window:       1, // exactly one job in flight when the fault strikes
				RedialWait:   2 * time.Millisecond,
				StallTimeout: 300 * time.Millisecond,
				Stderr:       &log,
			})
			if err != nil {
				t.Fatalf("run under %s fault failed: %v\ncoordinator log:\n%s", tc.name, err, log.String())
			}
			if !bytes.Equal(encodeAll(got), encodeAll(want)) {
				t.Fatalf("results under %s fault differ from in-process serial", tc.name)
			}

			if d := mDeaths.Total() - deaths0; d != 1 {
				t.Errorf("worker deaths = %d for one injected %s fault, want exactly 1", d, tc.name)
			}
			if d := mRequeued.Total() - requeued0; d != 1 {
				t.Errorf("requeues = %d for one in-flight job at the %s fault, want exactly 1", d, tc.name)
			}
			if d := mQuarantined.Value() - quarantined0; d != 0 {
				t.Errorf("quarantines = %d under the %s fault, want 0 (a transport fault is not a poison job)", d, tc.name)
			}
			if d := mBreakerOpens.Total() - breakers0; d != 0 {
				t.Errorf("breaker opens = %d under one %s fault, want 0 (a single death is below every threshold)", d, tc.name)
			}
			if tc.name == "hang" {
				if d := mPings.Value() - pings0; d < 1 {
					t.Errorf("pings = %d under the hang fault, want >= 1 (the stall verdict rides on an unanswered ping)", d)
				}
			}
		})
	}
}

// soakSeedCount is how many random fault schedules TestChaosSoakSeeds
// sweeps: 3 by default (fast enough for every CI run), widened by the
// RV_CHAOS_SOAK_SEEDS environment variable for the nightly soak — a
// failing seed is its own replay handle regardless of how wide the
// sweep that found it was.
func soakSeedCount(t *testing.T) int64 {
	raw := os.Getenv("RV_CHAOS_SOAK_SEEDS")
	if raw == "" {
		return 3
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || n < 1 {
		t.Fatalf("RV_CHAOS_SOAK_SEEDS=%q: want a positive integer", raw)
	}
	return n
}

// TestChaosSoakSeeds sweeps seeded random fault plans (the replay
// handle: a failing seed reproduces its exact fault schedule) through
// RunOrFallback and asserts the one invariant that must survive any
// fault mix: byte identity with the serial engine. Whether a given
// seed's run recovers in-fleet or degrades to the in-process fallback
// is weather; the bytes are climate.
func TestChaosSoakSeeds(t *testing.T) {
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer wl.Close()
	go ServeListener(wl)

	ins := drawInstances(4)
	ins = append(ins, ins[1]) // a duplicate keeps memoization in the frame
	set := testSettings()
	want, wantStats := batch.Run(aurvJobs(t, ins, set), 1)

	for seed := int64(1); seed <= soakSeedCount(t); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			p, err := NewChaosProxy(wl.Addr().String(), ChaosPlan{Scripts: RandomScripts(seed, 6)})
			if err != nil {
				t.Skipf("loopback listen unavailable: %v", err)
			}
			defer p.Close()
			var log bytes.Buffer
			got, gotStats := RunOrFallback(aurvJobs(t, ins, set), 1, Config{
				Hosts:        tcpHosts(p.Addr(), p.Addr()), // two connections through the rig
				Window:       2,
				RedialWait:   2 * time.Millisecond,
				StallTimeout: 250 * time.Millisecond,
				MaxRespawns:  4,
				Stderr:       &log,
			})
			if !bytes.Equal(encodeAll(got), encodeAll(want)) {
				t.Fatalf("seed %d results differ from in-process serial\ncoordinator log:\n%s", seed, log.String())
			}
			if gotStats.Executed != wantStats.Executed {
				t.Fatalf("seed %d Executed = %d, want %d", seed, gotStats.Executed, wantStats.Executed)
			}
		})
	}
}

// TestHungWorkerRequeued pins the liveness tentpole directly, without
// the proxy: a worker that hellos, claims jobs, and never answers —
// the connection stays open and healthy-looking — must be declared
// hung by the stall detector and its window requeued to the survivor,
// with no run-level error. Before the stall detector existed this
// exact topology wedged the dispatch forever.
func TestHungWorkerRequeued(t *testing.T) {
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer hl.Close()
	go func() { // the black hole: valid hello, then eat every frame forever
		for {
			conn, err := hl.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello(0)); err != nil {
					return
				}
				br := bufio.NewReader(conn)
				for {
					if _, _, err := wire.ReadFrame(br); err != nil {
						return
					}
				}
			}()
		}
	}()

	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer sl.Close()
	go ServeListener(sl)

	ins := drawInstances(3)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)

	var log bytes.Buffer
	got, _, err := Run(aurvJobs(t, ins, set), 1, Config{
		Hosts:        tcpHosts(hl.Addr().String(), sl.Addr().String()),
		Window:       2,
		StallTimeout: 250 * time.Millisecond,
		// One re-dial (it hangs again, then the slot retires): the stall
		// verdict is printed on the reconnect path, which is what the
		// log assertion below reads.
		MaxRespawns: 1,
		RedialWait:  2 * time.Millisecond,
		Stderr:      &log,
	})
	if err != nil {
		t.Fatalf("run with a hung worker failed: %v\ncoordinator log:\n%s", err, log.String())
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("results after hung-worker requeue differ from in-process serial")
	}
	if s := log.String(); !strings.Contains(s, "presumed hung") {
		t.Fatalf("stall detector never fired; coordinator log:\n%s", s)
	}
}

// TestPingKeepsBusyWorkerAlive is the stall detector's false-positive
// guard: a worker grinding one job far past the stall deadline is not
// hung — its read loop answers the liveness ping even while the
// executor works — so the run must complete without any stall, death,
// or respawn.
func TestPingKeepsBusyWorkerAlive(t *testing.T) {
	ins := drawInstances(1)[:1]
	set := testSettings()
	want, _ := batch.Run(algJobs(t, algSlow, ins, set), 1)

	pongs0 := mPongs.Value()
	var log bytes.Buffer
	got, _, err := Run(algJobs(t, algSlow, ins, set), 1, Config{
		Procs:        1,
		StallTimeout: 100 * time.Millisecond, // a quarter of the job's runtime
		Stderr:       &log,
	})
	if err != nil {
		t.Fatalf("run with a slow worker failed: %v\ncoordinator log:\n%s", err, log.String())
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("slow-job results differ from in-process serial")
	}
	if s := log.String(); strings.Contains(s, "hung") {
		t.Fatalf("busy worker was declared hung despite answering pings:\n%s", s)
	}
	if d := mPongs.Value() - pongs0; d < 1 {
		t.Fatalf("pongs = %d across a run that stayed alive on pings alone, want >= 1", d)
	}
}

// TestPoisonJobPanicReported: a job whose program panics on the worker
// is a deterministic failure — the worker's recover turns it into an
// error frame, the coordinator reports it per-job, and neither the
// connection nor the rest of the batch is disturbed (no respawn burned,
// good results byte-identical).
func TestPoisonJobPanicReported(t *testing.T) {
	ins := drawInstances(2)
	set := testSettings()
	good := aurvJobs(t, ins, set)
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	jobs := append(aurvJobs(t, ins, set), algJobs(t, algPanic, drawInstances(1)[:1], set)...)

	var log bytes.Buffer
	st, err := RunStream(jobs, 1, Config{Procs: 2, Stderr: &log})
	if err != nil {
		t.Fatalf("stream start failed: %v", err)
	}
	var got []sim.Result
	for r := range st.Results() {
		got = append(got, r)
	}
	if err := st.Err(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("poison panic not reported as a per-job failure: %v", err)
	}
	if len(got) != len(good) || !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatalf("good prefix disturbed by the poison job: %d results, want %d", len(got), len(good))
	}
	if s := log.String(); strings.Contains(s, "reconnect") {
		t.Fatalf("a panicking job burned a respawn (it must be an error frame, not a death):\n%s", s)
	}
}

// TestPoisonJobQuarantined: a job that kills its whole worker process
// takes out one worker (forgiven — workers die for unrelated reasons),
// but when its re-dispatch kills a second, distinct slot it is
// quarantined as a deterministic per-job error instead of chewing
// through every slot's respawn budget. The good jobs' results survive
// byte-identically.
func TestPoisonJobQuarantined(t *testing.T) {
	ins := drawInstances(2)
	set := testSettings()
	good := aurvJobs(t, ins, set)
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	jobs := append(aurvJobs(t, ins, set), algJobs(t, algExit, drawInstances(1)[:1], set)...)

	deaths0 := mDeaths.Total()
	requeued0 := mRequeued.Total()
	quarantined0 := mQuarantined.Value()
	var log bytes.Buffer
	st, err := RunStream(jobs, 1, Config{
		Procs: 2,
		// Window 1 keeps innocent jobs out of the blast radius: only the
		// poison job is in flight on the worker it kills, so the distinct-
		// killer count it accumulates is provably its own doing.
		Window:      1,
		MaxRespawns: 6,
		RedialWait:  2 * time.Millisecond,
		Stderr:      &log,
	})
	if err != nil {
		t.Fatalf("stream start failed: %v", err)
	}
	var got []sim.Result
	for r := range st.Results() {
		got = append(got, r)
	}
	if err := st.Err(); err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("worker-killing job was not quarantined: %v\ncoordinator log:\n%s", err, log.String())
	}
	if len(got) != len(good) || !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatalf("good results disturbed by the quarantined job: %d results, want %d", len(got), len(good))
	}
	// The recorder's account of the episode. How many workers the poison
	// job chews through before its second *distinct* killer is weather
	// (it may bounce on a respawn of the same slot), so the absolute
	// death count is not pinned — but every death requeued exactly the
	// one in-flight poison job except the last, which quarantined it.
	if d := mQuarantined.Value() - quarantined0; d != 1 {
		t.Errorf("quarantines = %d for one poison job, want exactly 1", d)
	}
	deaths := mDeaths.Total() - deaths0
	if deaths < 2 {
		t.Errorf("worker deaths = %d for a job quarantined on its second distinct killer, want >= 2", deaths)
	}
	if d := mRequeued.Total() - requeued0; d != deaths-1 {
		t.Errorf("requeues = %d across %d deaths, want deaths-1 = %d (the last dispatch quarantines instead)",
			d, deaths, deaths-1)
	}
}

// TestBreakerOpensThenDegrades: consecutive connection failures open a
// slot's circuit breaker; a later dispatch against an all-open fleet
// fails fast with ErrAllBreakersOpen, and RunOrFallback turns that into
// graceful in-process degradation — byte-identical, with a warning.
func TestBreakerOpensThenDegrades(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go func() { // every connection: hello, swallow one job, die
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello(0)); err != nil {
					return
				}
				wire.ReadFrame(conn)
			}()
		}
	}()

	ins := drawInstances(2)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)

	breakers0 := mBreakerOpens.Total()
	fallbacks0 := mFallbacks.Value()
	var log bytes.Buffer
	f, err := Dial(Config{
		Hosts:            tcpHosts(l.Addr().String()),
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second, // long enough to still be open for the next Run
		MaxRespawns:      10,
		RedialWait:       2 * time.Millisecond,
		Stderr:           &log,
	})
	if err != nil {
		t.Fatalf("dial failed: %v", err)
	}
	defer f.Close()

	if _, _, err := f.Run(aurvJobs(t, ins, set), 1); err == nil {
		t.Fatal("run against an always-dying worker reported success")
	}
	if s := log.String(); !strings.Contains(s, "circuit breaker open") {
		t.Fatalf("breaker never opened; coordinator log:\n%s", s)
	}
	if _, _, err := f.Run(aurvJobs(t, ins, set), 1); !errors.Is(err, ErrAllBreakersOpen) {
		t.Fatalf("dispatch against an all-open fleet: got %v, want ErrAllBreakersOpen", err)
	}
	got, _ := f.RunOrFallback(aurvJobs(t, ins, set), 1)
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("degraded in-process results differ from serial")
	}
	if s := log.String(); !strings.Contains(s, "in-process") {
		t.Fatalf("degradation warning missing; coordinator log:\n%s", s)
	}
	if d := mBreakerOpens.Total() - breakers0; d != 1 {
		t.Errorf("breaker opens = %d, want exactly 1 (one threshold crossing, cooldown outlasts the test)", d)
	}
	if d := mFallbacks.Value() - fallbacks0; d != 1 {
		t.Errorf("fallbacks = %d, want exactly 1 (the one RunOrFallback degradation)", d)
	}
}

// TestBreakerHalfOpenRecovery: once the cooldown elapses the breaker
// goes half-open — the next dispatch's reconnection dial is the probe —
// and a recovered host closes it: the batch completes in-fleet,
// byte-identically, with no run-level error.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	go func() { // first two connections die mid-job; the host then recovers
		for i := 0; ; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			if i < 2 {
				go func() {
					defer conn.Close()
					if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello(0)); err != nil {
						return
					}
					wire.ReadFrame(conn)
				}()
				continue
			}
			go func() {
				defer conn.Close()
				Serve(conn, conn)
			}()
		}
	}()

	ins := drawInstances(2)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)

	var log bytes.Buffer
	f, err := Dial(Config{
		Hosts:            tcpHosts(l.Addr().String()),
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		MaxRespawns:      10,
		RedialWait:       2 * time.Millisecond,
		Stderr:           &log,
	})
	if err != nil {
		t.Fatalf("dial failed: %v", err)
	}
	defer f.Close()

	if _, _, err := f.Run(aurvJobs(t, ins, set), 1); err == nil {
		t.Fatal("run against the still-dying worker reported success")
	}
	time.Sleep(100 * time.Millisecond) // let the cooldown elapse: next dial is the half-open probe
	got, _, err := f.Run(aurvJobs(t, ins, set), 1)
	if err != nil {
		t.Fatalf("half-open probe against the recovered worker failed: %v\ncoordinator log:\n%s", err, log.String())
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("results after breaker recovery differ from in-process serial")
	}
}

// TestHelloTimeoutConfigurable: a host that accepts but never speaks
// must fail the handshake within the configured HelloTimeout, not the
// 10-second default — the knob the satellite adds to Config.
func TestHelloTimeoutConfigurable(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	defer l.Close()
	testDone := make(chan struct{})
	defer close(testDone)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() { // hold the connection open, silently, until the test ends
				<-testDone
				c.Close()
			}()
		}
	}()

	ins := drawInstances(1)[:1]
	start := time.Now()
	_, _, err = Run(aurvJobs(t, ins, testSettings()), 1, Config{
		Hosts:        tcpHosts(l.Addr().String()),
		HelloTimeout: 150 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run against a silent host reported success")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("handshake failure took %v; the configured 150ms hello timeout was ignored", elapsed)
	}
}

// TestServerGracefulShutdown exercises the drain path rvworker's signal
// handler uses: after serving a full batch, Shutdown stops the
// listener, unblocks the idle parked connection, and Serve returns nil
// — the worker's cue to exit 0.
func TestServerGracefulShutdown(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	srv := NewServer(ServeOptions{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	ins := drawInstances(2)
	set := testSettings()
	want, _ := batch.Run(aurvJobs(t, ins, set), 1)
	got, _, err := Run(aurvJobs(t, ins, set), 1, Config{Hosts: tcpHosts(l.Addr().String())})
	if err != nil {
		t.Fatalf("run against the graceful server failed: %v", err)
	}
	if !bytes.Equal(encodeAll(got), encodeAll(want)) {
		t.Fatal("graceful-server results differ from in-process serial")
	}

	srv.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after Shutdown, want nil (the exit-0 contract)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}
