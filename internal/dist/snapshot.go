// Fleet.Snapshot: the one-call observability view of a session — the
// coordinator's per-slot state, the newest per-worker stats each
// connection's pong carried (wire v5), and the process-wide metric
// snapshot. Pure observation: it serializes with dispatches on the
// fleet mutex (so it never races a live matcher for frames) and its
// pings recompute nothing.

package dist

import (
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// SlotStatus is one fleet slot's view in a FleetSnapshot.
type SlotStatus struct {
	Name     string // "tcp:host:port" or "proc:N"
	Live     bool   // a connection is parked in the slot
	Retired  bool   // respawn budget exhausted; the slot is done for the session
	Attempts int    // reconnection attempts spent (session lifetime)

	BreakerOpen bool // circuit breaker in its cooldown

	// Adaptive-window controller state of the parked connection
	// (zero for fixed windows or non-live slots).
	Window int     // current window size
	RTT    float64 // EWMA reply round-trip time, seconds

	// Worker is the stream's own view as of its latest stats-carrying
	// pong — Snapshot pings each parked live connection to refresh it.
	// Nil when no pong has ever arrived (e.g. the probe timed out).
	Worker *wire.WorkerStats
}

// FleetSnapshot is what Fleet.Snapshot returns: both sides of the
// wire through one API — the coordinator's slots and the process-wide
// flight-recorder registry (which includes the rv_dist_* families this
// fleet advanced).
type FleetSnapshot struct {
	Slots   []SlotStatus
	Metrics obs.Snapshot
}

// snapshotPongWait bounds how long Snapshot waits for one parked
// connection's stats pong. A healthy worker echoes from its read loop
// immediately, so this is generous; a silent one just leaves the
// previous stats (or nil) in place — Snapshot must never wedge the
// session the way a hung worker could.
const snapshotPongWait = 2 * time.Second

// snapshotNonceBase keys Snapshot's pings away from the dispatch
// matcher's 0,1,2,… nonce sequence. Purely cosmetic — nonces exist
// for debugging — but a flight recorder should not muddy the tape it
// records.
const snapshotNonceBase = uint64(1) << 63

// Snapshot reports the session's current state. It takes the fleet
// mutex — serializing with dispatches, like Run — and pings every
// parked live connection so each worker's half of the report is
// current, not a relic of the last mid-dispatch pong. On a closed
// fleet the slots report as not live and only the metrics snapshot
// carries information.
func (f *Fleet) Snapshot() FleetSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	snap := FleetSnapshot{Slots: make([]SlotStatus, 0, len(f.slots))}
	now := time.Now()
	for i, s := range f.slots {
		ss := SlotStatus{
			Name:        s.name,
			Retired:     s.retired,
			Attempts:    s.attempts,
			BreakerOpen: !s.openUntil.IsZero() && now.Before(s.openUntil),
		}
		if s.wc != nil && !f.closed {
			ss.Live = true
			if !s.wc.win.fixed {
				ss.Window = s.wc.win.cur
				ss.RTT = s.wc.win.rtt
			}
			refreshWorkerStats(s.wc, snapshotNonceBase|uint64(i))
			ss.Worker = s.wc.stats.Load()
		}
		snap.Slots = append(snap.Slots, ss)
	}
	// The metric snapshot is taken after the probes so the pongs they
	// elicited are already counted.
	snap.Metrics = obs.TakeSnapshot()
	return snap
}

// refreshWorkerStats pings one parked connection and waits briefly
// for the stats-carrying echo. Between dispatches the only frames a
// healthy stream produces are pong echoes, and the fleet mutex keeps
// any dispatch from attaching a matcher meanwhile, so reading
// wc.frames here races nobody. Errors and timeouts are swallowed:
// a probe that fails leaves stale (or nil) stats, and the next
// dispatch will discover a dead connection through its own path.
func refreshWorkerStats(wc *workerConn, nonce uint64) {
	if err := wc.ping(nonce); err != nil {
		return
	}
	mPings.Inc()
	deadline := time.After(snapshotPongWait)
	for {
		select {
		case f, ok := <-wc.frames:
			if !ok {
				return // transport died; the next dispatch redials
			}
			if f.typ != wire.FramePong {
				// Not a pong: between dispatches nothing else should be
				// in flight; drop it and keep waiting for the echo.
				f.release()
				continue
			}
			n, ws, err := wire.DecodePong(f.payload())
			f.release()
			if err != nil {
				return
			}
			mPongs.Inc()
			wc.stats.Store(&ws)
			if n == nonce {
				return
			}
			// A stale pong from an earlier probe: keep its stats (newer
			// than nothing), keep waiting for ours.
		case <-deadline:
			return
		}
	}
}
