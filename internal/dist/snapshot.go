// Fleet.Snapshot: the one-call observability view of a session — the
// coordinator's per-slot state, the newest per-worker stats each
// connection's pong carried (wire v5), and the process-wide metric
// snapshot. Pure observation: it copies the scheduler's state under
// the fleet mutex, then probes live connections with the lock
// RELEASED — since the multi-tenant scheduler (PR 10) every live
// connection has a persistent matcher consuming its frames, and that
// matcher needs the fleet mutex to settle; holding it while waiting
// for a pong would deadlock the very stream being observed.

package dist

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// SlotStatus is one fleet slot's view in a FleetSnapshot.
type SlotStatus struct {
	Name     string // "tcp:host:port" or "proc:N"
	Live     bool   // a connection is live in the slot
	Retired  bool   // respawn budget exhausted (or slot drained); done for the session
	Draining bool   // Retire in progress: finishing in-flight bookkeeping
	Attempts int    // reconnection attempts spent (session lifetime)

	BreakerOpen bool // circuit breaker in its cooldown

	// Adaptive-window controller state of the live connection
	// (zero for fixed windows or non-live slots).
	Window int     // current window size
	RTT    float64 // EWMA reply round-trip time, seconds

	// Worker is the stream's own view as of its latest stats-carrying
	// pong — Snapshot pings each live connection to refresh it. Nil
	// when no pong has ever arrived (e.g. the probe timed out).
	Worker *wire.WorkerStats
}

// FleetSnapshot is what Fleet.Snapshot returns: both sides of the
// wire through one API — the coordinator's slots and the process-wide
// flight-recorder registry (which includes the rv_dist_* families this
// fleet advanced).
type FleetSnapshot struct {
	Slots   []SlotStatus
	Metrics obs.Snapshot
}

// snapshotPongWait bounds how long Snapshot waits for one live
// connection's stats pong. A healthy worker echoes from its read loop
// immediately, so this is generous; a silent one just leaves the
// previous stats (or nil) in place — Snapshot must never wedge the
// session the way a hung worker could.
const snapshotPongWait = 2 * time.Second

// snapshotNonceBase keys Snapshot's pings away from the matchers'
// 0,1,2,… nonce sequences. Purely cosmetic — nonces exist for
// debugging — but a flight recorder should not muddy the tape it
// records.
const snapshotNonceBase = uint64(1) << 63

// Snapshot reports the session's current state, safe to call at any
// time — mid-dispatch, with several tenants live, or on an idle or
// closed fleet. Slot states are copied under the fleet mutex (one
// consistent cut of the scheduler), then each live connection is
// pinged with the mutex released: the connection's own matcher
// consumes the pong and caches the worker's stats, and Snapshot polls
// that cache. On a closed fleet the slots report as not live and only
// the metrics snapshot carries information.
func (f *Fleet) Snapshot() FleetSnapshot {
	f.mu.Lock()
	snap := FleetSnapshot{Slots: make([]SlotStatus, 0, len(f.slots))}
	now := time.Now()
	conns := make([]*workerConn, 0, len(f.slots))
	for _, s := range f.slots {
		ss := SlotStatus{
			Name:        s.name,
			Retired:     s.retired,
			Draining:    s.draining,
			Attempts:    s.attempts,
			BreakerOpen: s.cooling(now),
		}
		if s.wc != nil && !f.closed {
			ss.Live = true
			if !s.wc.win.fixed {
				ss.Window = s.wc.win.cur
				ss.RTT = s.wc.win.rtt
			}
			conns = append(conns, s.wc)
		} else {
			conns = append(conns, nil)
		}
		snap.Slots = append(snap.Slots, ss)
	}
	f.mu.Unlock()
	var wg sync.WaitGroup
	for i := range snap.Slots {
		wc := conns[i]
		if wc == nil {
			continue
		}
		wg.Add(1)
		go func(i int, wc *workerConn) {
			defer wg.Done()
			refreshWorkerStats(wc, snapshotNonceBase|uint64(i))
			snap.Slots[i].Worker = wc.stats.Load()
		}(i, wc)
	}
	wg.Wait()
	// The metric snapshot is taken after the probes so the pongs they
	// elicited are already counted.
	snap.Metrics = obs.TakeSnapshot()
	return snap
}

// refreshWorkerStats pings one live connection and waits briefly for
// the stats-carrying echo to land in the connection's stats cache.
// The connection's matcher owns the frame stream — it decodes the
// pong, counts it, and stores the stats — so the probe just watches
// the cached pointer change. Errors and timeouts are swallowed: a
// probe that fails leaves stale (or nil) stats, and the scheduler
// discovers a dead connection through its own path.
func refreshWorkerStats(wc *workerConn, nonce uint64) {
	before := wc.stats.Load()
	if err := wc.ping(nonce); err != nil {
		return
	}
	mPings.Inc()
	deadline := time.Now().Add(snapshotPongWait)
	for time.Now().Before(deadline) {
		if wc.stats.Load() != before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
