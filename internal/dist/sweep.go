package dist

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/pool"
	"repro/internal/wire"
)

// Distributed Monte-Carlo sweep (the T5 workload). The fixed-size
// chunks of measure.SweepParallel are pure functions of their
// descriptor — sample count, pre-derived splitmix seed, ε ladder,
// sampling box — so they ship over the same wire and dispatch engine
// as simulation jobs: chunk i's counts land in slot i no matter which
// worker computed them, and the merge is the same serial
// measure.MergeChunks the in-process pool uses. The result is
// byte-identical to measure.SweepParallel for every fleet shape,
// window depth, and in-worker pool size — and a sweep can share a
// Fleet session with the simulation batches around it (exps.T5 runs
// over the same dialed fleet as T1–T4).

// Sweep runs the n-sample Monte-Carlo sweep across the session's
// fleet and returns the merged Stats, identical to
// measure.SweepParallel(n, epsilons, box, seed, workers). workers is
// forwarded to the fleet as the in-worker pool hint (per-host Pool
// hints override it). The error is non-nil when the fleet lost
// chunks; the caller can then fall back to the in-process sweep,
// which determinism makes exact.
func (f *Fleet) Sweep(n int, epsilons []float64, box measure.Box, seed int64, workers int) (measure.Stats, error) {
	chunks, err := f.sweepChunks(n, epsilons, box, seed, workers)
	if err != nil {
		return measure.Stats{}, err
	}
	return measure.MergeChunks(chunks, n), nil
}

// SweepOrFallback is Sweep with the standard degradation policy: a
// mid-run fleet loss completes in-process — byte-identical by the
// determinism guarantee — after a warning on the config's stderr. A
// failure keeps every chunk the fleet did deliver and recomputes only
// the holes, so a fleet dying late costs a remainder, not the whole
// sweep twice.
func (f *Fleet) SweepOrFallback(n int, epsilons []float64, box measure.Box, seed int64, workers int) measure.Stats {
	chunks, err := f.sweepChunks(n, epsilons, box, seed, workers)
	if err != nil {
		spliceSweepHoles(chunks, n, epsilons, box, seed, workers, err, f.cfg)
	}
	return measure.MergeChunks(chunks, n)
}

// sweepChunks dispatches the sweep's chunks to the session's fleet and
// returns the per-chunk Stats slice, populated as far as the fleet
// got: on an error, delivered chunks keep their (complete, pure)
// counts and undelivered chunks are zero — distinguishable by
// Samples == 0, since every real chunk draws at least one sample. The
// fallback path uses that to recompute only the holes.
func (f *Fleet) sweepChunks(n int, epsilons []float64, box measure.Box, seed int64, workers int) ([]measure.Stats, error) {
	nChunks := measure.NumChunks(n)
	if nChunks == 0 {
		return nil, nil
	}
	chunks := make([]measure.Stats, nChunks)
	tasks := make([]task, nChunks)
	for k := range tasks {
		k := k
		tasks[k] = task{
			id: k,
			payload: wire.EncodeSweepJob(wire.SweepJob{
				Seed: measure.ChunkSeed(seed, k),
				N:    measure.ChunkSamples(n, k),
				Par:  workers,
				Eps:  epsilons,
				Box:  box,
			}),
			deliver: func(body []byte) error {
				s, err := wire.DecodeMeasureStats(body)
				if err != nil {
					return err
				}
				chunks[k] = s
				return nil
			},
		}
	}
	err := f.dispatch(tasks, wire.FrameSweepJob, wire.FrameSweepResult)
	return chunks, err
}

// spliceSweepHoles recomputes the undelivered chunks of a failed
// distributed sweep on the in-process pool, after the warning.
func spliceSweepHoles(chunks []measure.Stats, n int, epsilons []float64, box measure.Box, seed int64, workers int, err error, cfg Config) {
	var missing []int
	for i, c := range chunks {
		if c.Samples == 0 { // never delivered (real chunks draw ≥ 1 sample)
			missing = append(missing, i)
		}
	}
	// The chunk count stays in the message text (not an attribute): the
	// window tests assert the exact "for k/n chunks" phrasing, and a
	// human scanning a log wants the damage extent inline anyway.
	mFallbacks.Inc()
	logOf(cfg).Warn(fmt.Sprintf("dist: distributed sweep failed; falling back in-process for %d/%d chunks", len(missing), len(chunks)),
		"err", err, "hosts", hostSummary(cfg))
	pool.Do(len(missing), pool.Workers(workers, len(missing)), func(k int) {
		i := missing[k]
		chunks[i] = measure.Sweep(measure.ChunkSamples(n, i), epsilons, box, measure.ChunkSeed(seed, i))
	})
}

// Sweep runs the sweep over an ephemeral session (dial, sweep, close),
// identical to measure.SweepParallel for every fleet shape. The error
// is non-nil when the fleet could not be reached or lost chunks.
func Sweep(n int, epsilons []float64, box measure.Box, seed int64, workers int, cfg Config) (measure.Stats, error) {
	f, err := dialForChunks(n, cfg)
	if err != nil {
		return measure.Stats{}, err
	}
	if f == nil {
		return measure.SweepParallel(n, epsilons, box, seed, workers), nil
	}
	defer f.Close()
	return f.Sweep(n, epsilons, box, seed, workers)
}

// SweepOrFallback is Sweep over an ephemeral session with the standard
// degradation policy: no configured fleet, an unreachable fleet, or a
// mid-run fleet loss all complete in-process, byte-identically.
func SweepOrFallback(n int, epsilons []float64, box measure.Box, seed int64, workers int, cfg Config) measure.Stats {
	if !cfg.Enabled() {
		return measure.SweepParallel(n, epsilons, box, seed, workers)
	}
	f, err := dialForChunks(n, cfg)
	if err != nil {
		mFallbacks.Inc()
		logOf(cfg).Warn(fmt.Sprintf("dist: distributed sweep failed; falling back in-process for %d/%d chunks", measure.NumChunks(n), measure.NumChunks(n)),
			"err", err, "hosts", hostSummary(cfg))
		return measure.SweepParallel(n, epsilons, box, seed, workers)
	}
	if f == nil {
		return measure.SweepParallel(n, epsilons, box, seed, workers)
	}
	defer f.Close()
	return f.SweepOrFallback(n, epsilons, box, seed, workers)
}

// dialForChunks dials an ephemeral session capped at the sweep's chunk
// count (as RunStream caps at the remote-job count); nil with no error
// means the sweep is empty and needs no fleet.
func dialForChunks(n int, cfg Config) (*Fleet, error) {
	nChunks := measure.NumChunks(n)
	if nChunks == 0 {
		return nil, nil
	}
	if cfg.Procs > nChunks {
		cfg.Procs = nChunks
	}
	if len(cfg.Hosts) > nChunks {
		cfg.Hosts = cfg.Hosts[:nChunks]
	}
	return Dial(cfg)
}
