package dist

import (
	"errors"
	"fmt"

	"repro/internal/measure"
	"repro/internal/pool"
	"repro/internal/wire"
)

// Distributed Monte-Carlo sweep (the T5 workload). The fixed-size
// chunks of measure.SweepParallel are pure functions of their
// descriptor — sample count, pre-derived splitmix seed, ε ladder,
// sampling box — so they ship over the same wire and dispatch engine
// as simulation jobs: chunk i's counts land in slot i no matter which
// worker computed them, and the merge is the same serial
// measure.MergeChunks the in-process pool uses. The result is
// byte-identical to measure.SweepParallel for every fleet shape,
// window depth, and in-worker pool size.

// Sweep runs the n-sample Monte-Carlo sweep across the configured
// worker fleet and returns the merged Stats, identical to
// measure.SweepParallel(n, epsilons, box, seed, workers). workers is
// forwarded to the fleet as the in-worker pool hint. The error is
// non-nil when the fleet could not be reached or lost chunks; the
// caller can then fall back to the in-process sweep, which determinism
// makes exact.
func Sweep(n int, epsilons []float64, box measure.Box, seed int64, workers int, cfg Config) (measure.Stats, error) {
	chunks, err := sweepChunks(n, epsilons, box, seed, workers, cfg)
	if err != nil {
		return measure.Stats{}, err
	}
	return measure.MergeChunks(chunks, n), nil
}

// sweepChunks dispatches the sweep's chunks to the fleet and returns
// the per-chunk Stats slice, populated as far as the fleet got: on an
// error, delivered chunks keep their (complete, pure) counts and
// undelivered chunks are zero — distinguishable by Samples == 0, since
// every real chunk draws at least one sample. The fallback path uses
// that to recompute only the holes.
func sweepChunks(n int, epsilons []float64, box measure.Box, seed int64, workers int, cfg Config) ([]measure.Stats, error) {
	nChunks := measure.NumChunks(n)
	if nChunks == 0 {
		return nil, nil
	}
	// Same fleet cap as the batch coordinator, with chunks as the job
	// unit (see RunStream).
	if cfg.Procs > nChunks {
		cfg.Procs = nChunks
	}
	if len(cfg.Hosts) > nChunks {
		cfg.Hosts = cfg.Hosts[:nChunks]
	}
	slots, errs := assemble(cfg)
	if len(slots) == 0 {
		return make([]measure.Stats, nChunks), fmt.Errorf("dist: no worker reachable: %w", errors.Join(errs...))
	}
	for _, e := range errs {
		fmt.Fprintln(stderrOf(cfg), "dist: worker unavailable:", e)
	}

	chunks := make([]measure.Stats, nChunks)
	tasks := make([]task, nChunks)
	for k := range tasks {
		k := k
		tasks[k] = task{
			id: k,
			payload: wire.EncodeSweepJob(wire.SweepJob{
				Seed: measure.ChunkSeed(seed, k),
				N:    measure.ChunkSamples(n, k),
				Par:  workers,
				Eps:  epsilons,
				Box:  box,
			}),
			deliver: func(body []byte) error {
				s, err := wire.DecodeMeasureStats(body)
				if err != nil {
					return err
				}
				chunks[k] = s
				return nil
			},
		}
	}
	err := dispatch(slots, tasks, wire.FrameSweepJob, wire.FrameSweepResult, cfg)
	return chunks, err
}

// SweepOrFallback is Sweep with the standard degradation policy: no
// configured fleet, an unreachable fleet, or a mid-run fleet loss all
// complete in-process — byte-identical by the determinism guarantee —
// after a warning on the config's stderr. As with the batch splice in
// RunOrFallback, a mid-run failure keeps every chunk the fleet did
// deliver and recomputes only the holes, so a fleet dying late costs a
// remainder, not the whole sweep twice.
func SweepOrFallback(n int, epsilons []float64, box measure.Box, seed int64, workers int, cfg Config) measure.Stats {
	if !cfg.Enabled() {
		return measure.SweepParallel(n, epsilons, box, seed, workers)
	}
	chunks, err := sweepChunks(n, epsilons, box, seed, workers, cfg)
	if err != nil {
		var missing []int
		for i, c := range chunks {
			if c.Samples == 0 { // never delivered (real chunks draw ≥ 1 sample)
				missing = append(missing, i)
			}
		}
		fmt.Fprintf(stderrOf(cfg), "dist: distributed sweep failed (%v); falling back in-process for %d/%d chunks\n",
			err, len(missing), len(chunks))
		pool.Do(len(missing), pool.Workers(workers, len(missing)), func(k int) {
			i := missing[k]
			chunks[i] = measure.Sweep(measure.ChunkSamples(n, i), epsilons, box, measure.ChunkSeed(seed, i))
		})
	}
	return measure.MergeChunks(chunks, n)
}
