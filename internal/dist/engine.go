package dist

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// The dispatch engine: the payload-agnostic core of the coordinator.
// It ships encoded request frames to a fleet of worker connections and
// routes each reply to its task's deliver continuation, preserving the
// batch discipline (every task settles exactly once; which connection
// answers, and in what order, is invisible to the caller). Both remote
// workloads — simulation jobs (FrameJob/FrameResult) and Monte-Carlo
// sweep chunks (FrameSweepJob/FrameSweepResult) — run through this one
// engine, and since PR 5 the engine runs over a persistent Fleet
// session (fleet.go): connections survive from one dispatch to the
// next, so a session pays one dial and one handshake per host no
// matter how many batches it runs.
//
// Throughput comes from three mechanisms layered on the claim channel:
//
//   - Pipelined adaptive windows. Each connection keeps up to its
//     window of requests in flight (the sender claims and writes, the
//     connection's persistent reader feeds a matcher goroutine that
//     settles replies by sequence number). The window is adaptive by
//     default: it grows toward the connection's bandwidth-delay
//     product (observed reply RTT ÷ observed service gap) and shrinks
//     back when the link is fast, bounded by Config.MaxWindow. Replies
//     may arrive out of order — workers run in-process pools — which
//     the in-flight map makes irrelevant, and may arrive many to a
//     frame (wire.FrameReplyBatch) — workers coalesce small results
//     into one flush per drain.
//   - In-worker pools. The worker side (Serve) executes the jobs of
//     one connection concurrently, so a deep window saturates a whole
//     host through a single connection; heterogeneous hosts get
//     per-stream pool hints (Host.Pool, the host:port*pool syntax).
//   - Slot supervision. A connection belongs to a slot that knows how
//     to re-establish it (re-dial the TCP endpoint, respawn the stdio
//     subprocess). When a worker dies mid-run its in-flight tasks are
//     requeued for the survivors and the slot reconnects with
//     exponential backoff; the reconnection budget spans the whole
//     session, so a slot that keeps dying retires for good.
//
// Determinism: a task is claimed, executed remotely as a pure function
// of its encoded payload, and settled exactly once — requeue on death
// re-executes the same pure computation. The engine never aggregates;
// callers deliver results by index and fold serially, exactly as
// internal/batch prescribes. Window sizes, pool sizes, frame
// coalescing, and connection reuse are all pure scheduling: they move
// wall-clock time, never a byte of output.

// Fleet-shape defaults, overridable per Config.
const (
	// DefaultWindow is the per-connection in-flight window a connection
	// starts at when Config.Window (or Settings.Window) is zero, and
	// the fixed window when adaptation is disabled. Four hides a few
	// round trips of latency and keeps a small in-worker pool fed
	// without stockpiling half the batch on one worker.
	DefaultWindow = 4
	// DefaultMaxWindow bounds adaptive window growth when
	// Config.MaxWindow is zero. Thirty-two covers a ~30-job
	// bandwidth-delay product — a WAN round trip over a well-fed
	// in-worker pool — without letting one slow host hoard the batch.
	DefaultMaxWindow = 32
	// DefaultMaxRespawns bounds how many times one slot reconnects
	// after mid-run deaths before retiring. The budget never resets —
	// it spans every dispatch of a fleet session — so a worker that
	// keeps dying retires after this many attempts and a run with
	// stranded jobs always terminates (with the error the caller's
	// fallback path expects).
	DefaultMaxRespawns = 3
	// DefaultRedialWait is the backoff before the first reconnection
	// attempt; it doubles per consecutive attempt on the same slot.
	DefaultRedialWait = 250 * time.Millisecond
	// DefaultStallTimeout is the liveness deadline floor: a connection
	// with jobs in flight that produces no frame for
	// max(StallTimeout, stallRTTFactor·rttEWMA) is declared hung.
	// Thirty seconds is far above any healthy link's silence — the
	// coordinator pings at half the deadline and even a fully loaded
	// worker echoes from its read loop — while still unwedging a
	// blackholed WAN connection the same minute it hangs.
	DefaultStallTimeout = 30 * time.Second
	// DefaultMaxJobRequeues is the poison-job quarantine threshold: a
	// job requeued by the failures of this many distinct slots is
	// surfaced as a deterministic per-job error. Two means one slot
	// death is always forgiven (workers do die for reasons unrelated
	// to the job), but a job observed killing a second, different
	// worker stops spreading.
	DefaultMaxJobRequeues = 2
	// DefaultBreakerThreshold is the consecutive-connection-failure
	// count that opens a slot's circuit breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is the initial sit-out of an opened
	// breaker; it doubles each time the half-open probe fails.
	DefaultBreakerCooldown = 2 * time.Second
)

// stallRTTFactor scales the connection's observed RTT EWMA into the
// adaptive half of the liveness deadline, so a deliberately slow WAN
// config with a tight StallTimeout still never ejects a link that is
// merely far away.
const stallRTTFactor = 8

func (c Config) maxRespawns() int {
	switch {
	case c.MaxRespawns > 0:
		return c.MaxRespawns
	case c.MaxRespawns < 0:
		return 0 // respawn disabled
	default:
		return DefaultMaxRespawns
	}
}

func (c Config) redialWait() time.Duration {
	if c.RedialWait > 0 {
		return c.RedialWait
	}
	return DefaultRedialWait
}

// stallTimeout resolves the liveness deadline floor; 0 means stall
// detection is disabled.
func (c Config) stallTimeout() time.Duration {
	switch {
	case c.StallTimeout > 0:
		return c.StallTimeout
	case c.StallTimeout < 0:
		return 0
	default:
		return DefaultStallTimeout
	}
}

// maxJobRequeues resolves the quarantine threshold; 0 means quarantine
// is disabled.
func (c Config) maxJobRequeues() int {
	switch {
	case c.MaxJobRequeues > 0:
		return c.MaxJobRequeues
	case c.MaxJobRequeues < 0:
		return 0
	default:
		return DefaultMaxJobRequeues
	}
}

// breakerThreshold resolves the circuit-breaker trip count; 0 means the
// breaker is disabled.
func (c Config) breakerThreshold() int {
	switch {
	case c.BreakerThreshold > 0:
		return c.BreakerThreshold
	case c.BreakerThreshold < 0:
		return 0
	default:
		return DefaultBreakerThreshold
	}
}

func (c Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return DefaultBreakerCooldown
}

func (c Config) helloTimeout() time.Duration {
	if c.HelloTimeout > 0 {
		return c.HelloTimeout
	}
	return DefaultHelloTimeout
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return DefaultDialTimeout
}

// adaptiveWindow sizes one connection's in-flight window. A fixed
// window (Config.Window > 0, or adaptation disabled) never moves; an
// adaptive one steps the window one unit per observation toward
// target = round(minRTT/gap) + 1 — the number of requests that must
// be in flight for the pipe to never idle, plus one of slack. minRTT
// is the minimum reply round-trip observed on the connection, and gap
// an EWMA of the inter-reply arrival spacing (the service rate).
//
// The minimum matters: a raw or averaged RTT sample includes the time
// a request queued behind the window's predecessors at the worker,
// which grows with the window itself — a controller fed that signal
// chases its own tail and ratchets to the cap on every service-bound
// link. The minimum over samples approximates the uncontended round
// trip (network latency + one service time), which is the quantity
// the bandwidth-delay product actually wants.
//
// Window size is pure scheduling, so the controller needs no
// precision, only direction: too small and the worker starves behind
// the latency, too large and one connection hoards work a survivor
// could have claimed on its death.
type adaptiveWindow struct {
	fixed     bool
	cur, max  int
	minRTT    float64 // smallest observed reply round trip, seconds
	gap       float64 // EWMA inter-reply arrival gap, seconds
	rtt       float64 // EWMA reply round trip, seconds — feeds the stall deadline, not the window
	lastReply time.Time
}

// newAdaptiveWindow builds the window state a fresh connection starts
// with (reconnections start over: a re-dialed link may have new
// characteristics).
func newAdaptiveWindow(cfg Config) adaptiveWindow {
	if cfg.Window > 0 {
		return adaptiveWindow{fixed: true, cur: cfg.Window, max: cfg.Window}
	}
	if cfg.MaxWindow < 0 {
		return adaptiveWindow{fixed: true, cur: DefaultWindow, max: DefaultWindow}
	}
	max := cfg.MaxWindow
	if max == 0 {
		max = DefaultMaxWindow
	}
	return adaptiveWindow{cur: min(DefaultWindow, max), max: max}
}

// observe feeds one reply's round-trip time and the service gap it
// represents (the inter-reply arrival spacing, spread evenly over a
// coalesced batch) into the controller and steps the window.
func (w *adaptiveWindow) observe(rtt, gap time.Duration) {
	if w.fixed {
		return
	}
	// Floor both estimates at clock-resolution scale so a loopback
	// burst cannot divide by ~zero.
	const (
		alpha = 0.3
		floor = 20e-6
	)
	r := math.Max(rtt.Seconds(), floor)
	g := math.Max(gap.Seconds(), floor)
	if w.minRTT == 0 || r < w.minRTT {
		w.minRTT = r
	}
	// The liveness deadline wants a typical round trip (minRTT would
	// under-arm it on links whose service time dominates), hence its
	// own EWMA.
	if w.rtt == 0 {
		w.rtt = r
	} else {
		w.rtt += alpha * (r - w.rtt)
	}
	if w.gap == 0 {
		w.gap = g
	} else {
		w.gap += alpha * (g - w.gap)
	}
	// Round, not ceil: the gap EWMA never fully sheds an old sample, so
	// a ratio that converged to 1 still sits at 1±ε — ceiling it would
	// pin the target one unit above the true bandwidth-delay product.
	target := int(math.Round(w.minRTT/w.gap)) + 1
	switch {
	case target > w.cur && w.cur < w.max:
		w.cur++
	case target < w.cur && w.cur > 1:
		w.cur--
	}
}

// settleGap converts one reply frame's arrival into the per-reply
// service gap observe expects, spreading the inter-frame spacing
// evenly over a coalesced batch of n replies. ok is false when there
// is nothing to observe: a fixed window (no bookkeeping at all — the
// caller skips its time.Now() too) or the first frame after an idle
// period (no predecessor to measure spacing against).
//
// A zero gap is NOT a skip case: coalesced same-tick frames (loopback
// links, coarse clocks) are a genuine observation — the link is at
// least as fast as the clock resolves — and observe clamps the sample
// to its internal floor. Skipping them starved the EWMA on exactly the
// links that most needed the window to shrink: the controller never
// adapted because every observation arrived "too fast to count".
func (w *adaptiveWindow) settleGap(now time.Time, n int) (gap time.Duration, ok bool) {
	if w.fixed {
		return 0, false
	}
	ok = !w.lastReply.IsZero()
	if ok {
		gap = now.Sub(w.lastReply) / time.Duration(n)
	}
	w.lastReply = now
	return gap, ok
}

// task is one unit of remote work: an encoded request body and the
// continuation that decodes and delivers its reply. id is the caller's
// index for the task (job index, chunk index) — used in error text.
type task struct {
	id      int
	payload []byte
	// deliver consumes a successful reply body; a non-nil error means
	// the bytes are corrupt, which retires the connection that produced
	// them and requeues the task elsewhere.
	deliver func(body []byte) error
	// deliverStreamed, when non-nil, consumes a streamed result: the
	// closing frame's body plus the trace points the matcher assembled
	// from the preceding FrameTraceChunk frames (wire v6). Tasks that
	// leave it nil (sweep chunks) treat any trace chunk as a protocol
	// violation.
	deliverStreamed func(body []byte, a, b []sim.TracePoint) error
}

// traceAssembly accumulates one in-flight job's streamed trace chunks
// until its closing result frame arrives. Chunks arrive in worker
// write order — all of trace A, then all of trace B, indexes
// sequential within each — and anything else is stream corruption.
type traceAssembly struct {
	a, b         []sim.TracePoint
	nextA, nextB uint32
}

func (as *traceAssembly) add(body []byte) error {
	// Peek the which byte (offset 1, after the version byte) to pick
	// the destination slice, so the decoder appends straight into the
	// assembly instead of through a throwaway intermediate.
	dst := as.a
	if len(body) >= 2 && body[1] == wire.TraceChunkB {
		dst = as.b
	}
	which, index, out, err := wire.DecodeTraceChunk(body, dst)
	if err != nil {
		return err
	}
	switch which {
	case wire.TraceChunkA:
		if as.nextB != 0 {
			return fmt.Errorf("dist: trace chunk for trace A after trace B began")
		}
		if index != as.nextA {
			return fmt.Errorf("dist: trace A chunk %d arrived, expected %d", index, as.nextA)
		}
		as.nextA++
		as.a = out
	default:
		if index != as.nextB {
			return fmt.Errorf("dist: trace B chunk %d arrived, expected %d", index, as.nextB)
		}
		as.nextB++
		as.b = out
	}
	return nil
}

// slot is one position in the worker fleet: a (possibly live)
// connection plus the recipe for re-establishing it after a death.
// Between dispatches the session parks the live connection in wc; the
// reconnection budget (attempts) spans the slot's whole life, and a
// slot whose budget is spent retires for good. All fields are owned by
// the single supervise goroutine a dispatch runs per slot; dispatches
// over one fleet are serialized by the fleet mutex.
type slot struct {
	name     string
	dial     func() (*workerConn, error)
	wc       *workerConn
	attempts int
	retired  bool
	met      *slotMetrics // per-slot flight-recorder children, resolved at assembly

	// Circuit breaker: consecutive connection failures (dead drives,
	// failed redials) open the breaker — the slot sits dispatches out
	// until openUntil passes, then runs half-open: the next dispatch's
	// reconnection dial is the probe, one more failure re-opens the
	// breaker with a doubled cooldown, and a connection that drains
	// healthily closes it. Like every slot field, owned by the single
	// supervise goroutine of the current dispatch (dispatches are
	// serialized per fleet); dispatch start reads openUntil under the
	// same fleet mutex.
	fails     int           // consecutive connection failures
	cooldown  time.Duration // current breaker cooldown; doubles per re-open
	openUntil time.Time     // breaker open until then; zero = closed
}

// fail records one connection failure and reports whether it opened
// (or re-opened) the slot's circuit breaker, in which case the
// supervisor sits the rest of the dispatch out.
func (s *slot) fail(cfg Config) bool {
	th := cfg.breakerThreshold()
	if th <= 0 {
		return false
	}
	s.fails++
	if s.fails < th {
		return false
	}
	// Past the threshold every further failure re-opens immediately
	// (the classic half-open probe: one failure, not a fresh budget)
	// with a doubled cooldown.
	if s.cooldown == 0 {
		s.cooldown = cfg.breakerCooldown()
	} else {
		s.cooldown *= 2
	}
	s.openUntil = time.Now().Add(s.cooldown)
	s.met.breakerOpens.Inc()
	s.met.breakerOpen.Set(1)
	return true
}

// recover closes the breaker: the slot produced a healthy, productive
// connection, so the failure streak and the cooldown escalation reset.
func (s *slot) recover() {
	s.fails = 0
	s.cooldown = 0
	s.openUntil = time.Time{}
	s.met.breakerOpen.Set(0)
}

// inflightJob is one request awaiting its reply: the task index and
// the send timestamp the adaptive controller derives RTT from.
type inflightJob struct {
	k    int
	sent time.Time
}

// engine carries the shared state of one dispatch: the claim channel,
// the settle counter, and the two error severities (a deterministic
// job failure poisons the run; a worker death only matters if jobs are
// stranded when every slot has retired).
type engine struct {
	tasks    []task
	reqFrame byte
	resFrame byte
	// clamp caps every connection's window at ⌈tasks/fleet⌉ for this
	// dispatch: the largest share a connection could hold if the batch
	// spread evenly, so a small batch on a wide fleet doesn't reserve
	// in-flight slots no schedule could fill.
	clamp int

	// work is the claim channel. Its buffer holds every task, and an
	// unsettled task is never in more than one place (queued, or in
	// exactly one connection's in-flight map), so a death can always
	// requeue its in-flight tasks without blocking and never races the
	// close: close happens only when no unsettled task remains.
	work      chan int
	remaining atomic.Int64
	done      chan struct{} // closed with work: aborts backoffs and dials

	// stall is the resolved liveness deadline floor (0: detection
	// disabled); maxKills the resolved quarantine threshold (0:
	// disabled).
	stall    time.Duration
	maxKills int

	// killers tracks, per task, the distinct slots whose death or
	// stall requeued it — the poison-job evidence. Touched only on
	// failure paths, so the map and its mutex cost nothing on a
	// healthy run.
	killMu  sync.Mutex
	killers map[int]map[string]struct{}

	errMu    sync.Mutex
	jobErrs  []error
	deadErrs []error
}

func (e *engine) settle() {
	if e.remaining.Add(-1) == 0 {
		close(e.work)
		close(e.done)
	}
}

func (e *engine) failJob(err error) {
	e.errMu.Lock()
	e.jobErrs = append(e.jobErrs, err)
	e.errMu.Unlock()
}

func (e *engine) noteDeath(err error) {
	e.errMu.Lock()
	e.deadErrs = append(e.deadErrs, err)
	e.errMu.Unlock()
}

// requeue returns a task to the claim channel after the failure of the
// named slot — unless the task has now been in flight on maxKills
// distinct failing slots, in which case it is quarantined: settled as
// a deterministic per-job error, so a poison job that crashes or hangs
// every worker it lands on cannot exhaust the whole session's respawn
// budget. Requeue-on-death is pure scheduling either way: a requeued
// task recomputes the identical pure result, and a quarantined one
// reports an error exactly where a clean run reports a result, leaving
// every other task's bytes untouched.
func (e *engine) requeue(k int, s *slot) {
	if e.maxKills > 0 {
		e.killMu.Lock()
		m := e.killers[k]
		if m == nil {
			if e.killers == nil {
				e.killers = make(map[int]map[string]struct{})
			}
			m = make(map[string]struct{})
			e.killers[k] = m
		}
		m[s.name] = struct{}{}
		n := len(m)
		e.killMu.Unlock()
		if n >= e.maxKills {
			mQuarantined.Inc()
			e.failJob(fmt.Errorf("dist: job %d quarantined after its dispatch killed or stalled %d distinct workers (poison job?)", e.tasks[k].id, n))
			e.settle()
			return
		}
	}
	s.met.requeued.Inc()
	e.work <- k
}

// ErrAllBreakersOpen reports a dispatch that could not start because
// every non-retired slot's circuit breaker is in its cooldown. Callers
// with a fallback path (RunOrFallback, StreamOrFallback) degrade to
// in-process execution — byte-identical by the determinism guarantee —
// instead of hammering a fleet that just failed repeatedly.
var ErrAllBreakersOpen = errors.New("dist: every fleet slot's circuit breaker is open")

// dispatch runs every task to completion across the session's live
// slots and returns the overall verdict: nil when every task settled
// by delivery, the joined job errors when workers reported
// deterministic failures, and the joined death log when tasks were
// stranded by total fleet loss. Dispatches over one fleet are
// serialized; connections left healthy at the end stay open for the
// next call.
func (f *Fleet) dispatch(tasks []task, reqFrame, resFrame byte) error {
	if len(tasks) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("dist: fleet is closed")
	}
	now := time.Now()
	var active []*slot
	cooling := 0
	for _, s := range f.slots {
		if s.retired {
			continue
		}
		// An open breaker whose cooldown has not elapsed sits this
		// dispatch out; one whose cooldown has passed joins half-open
		// (its reconnection dial is the probe).
		if !s.openUntil.IsZero() && now.Before(s.openUntil) {
			cooling++
			continue
		}
		active = append(active, s)
	}
	if len(active) == 0 {
		if cooling > 0 {
			return fmt.Errorf("%w (%d slots cooling down)", ErrAllBreakersOpen, cooling)
		}
		return errors.New("dist: every fleet slot has retired")
	}
	// More connections than tasks buys nothing (pigeonhole: some could
	// never claim one); the surplus slots simply sit this dispatch out.
	if len(active) > len(tasks) {
		active = active[:len(tasks)]
	}
	mDispatches.Inc()
	e := &engine{
		tasks:    tasks,
		reqFrame: reqFrame,
		resFrame: resFrame,
		clamp:    (len(tasks) + len(active) - 1) / len(active),
		work:     make(chan int, len(tasks)),
		done:     make(chan struct{}),
		stall:    f.cfg.stallTimeout(),
		maxKills: f.cfg.maxJobRequeues(),
	}
	e.remaining.Store(int64(len(tasks)))
	for i := range tasks {
		e.work <- i
	}
	var wg sync.WaitGroup
	for _, s := range active {
		wg.Add(1)
		go func(s *slot) {
			defer wg.Done()
			e.supervise(s, f.cfg)
		}(s)
	}
	wg.Wait()
	if rem := e.remaining.Load(); rem > 0 {
		return errors.Join(append(e.deadErrs,
			fmt.Errorf("dist: %d jobs undone after every worker failed", rem))...)
	}
	if len(e.jobErrs) > 0 {
		return errors.Join(e.jobErrs...)
	}
	return nil
}

// supervise drives one slot until the work drains, the slot's lifetime
// respawn budget is exhausted, or its circuit breaker opens: drive the
// live connection, and on a transport death reconnect with exponential
// backoff. A drained dispatch parks the still-healthy connection back
// in the slot for the session's next dispatch; the budget never
// resets, so a slot that keeps dying retires and dispatch terminates.
// Consecutive failures — dead drives that settled nothing, failed
// redials — feed the breaker, and a tripped breaker makes the slot sit
// out the rest of this dispatch (and every dispatch until its cooldown
// elapses) without burning further respawn attempts on a host that is
// clearly down.
func (e *engine) supervise(s *slot, cfg Config) {
	lg := logOf(cfg)
	wc := s.wc
	s.wc = nil
	backoff := cfg.redialWait()
	for {
		if wc == nil {
			// A dispatch that completed while (or because) this slot's
			// connection died needs no reconnection — and must not spend
			// an attempt of the slot's session-lifetime budget on one.
			select {
			case <-e.done:
				return
			default:
			}
			if s.attempts >= cfg.maxRespawns() {
				s.retired = true
				return
			}
			s.attempts++
			select {
			case <-e.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			var err error
			if wc, err = e.redial(s); err != nil {
				if errors.Is(err, errDispatchDone) {
					return
				}
				s.met.deaths.Inc()
				e.noteDeath(fmt.Errorf("dist: %s: reconnect attempt %d: %w", s.name, s.attempts, err))
				if s.fail(cfg) {
					lg.Warn("dist: circuit breaker open", "slot", s.name, "failures", s.fails, "cooldown", s.cooldown)
					return
				}
				wc = nil
				continue
			}
			wc.win = newAdaptiveWindow(cfg)
			s.met.reconnects.Inc()
			lg.Info("dist: worker reconnected", "slot", s.name, "attempt", s.attempts)
		}
		settled, err := e.drive(wc, s)
		if err == nil {
			s.wc = wc // work drained: the session keeps the live connection
			s.recover()
			return
		}
		wc.close()
		wc = nil
		s.met.deaths.Inc()
		e.noteDeath(fmt.Errorf("dist: worker %s: %w", s.name, err))
		// A connection that settled real work before dying broke a
		// consecutive-failure streak: the host is reachable and
		// executing, just unlucky or flaky — not breaker material.
		if settled > 0 {
			s.recover()
		}
		if s.fail(cfg) {
			lg.Warn("dist: circuit breaker open", "slot", s.name, "failures", s.fails, "cooldown", s.cooldown)
			return
		}
		if s.attempts < cfg.maxRespawns() {
			lg.Warn("dist: worker died; reconnecting", "slot", s.name, "err", err)
		}
	}
}

// errDispatchDone aborts a reconnect that lost its reason to exist:
// every task settled while the slot was dialing.
var errDispatchDone = errors.New("dispatch complete")

// redial re-establishes the slot's connection, abandoning the attempt
// the moment the run completes (the dial goroutine cleans up its own
// connection if one materializes late).
func (e *engine) redial(s *slot) (*workerConn, error) {
	type res struct {
		wc  *workerConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		wc, err := s.dial()
		ch <- res{wc, err}
	}()
	select {
	case r := <-ch:
		return r.wc, r.err
	case <-e.done:
		go func() {
			if r := <-ch; r.wc != nil {
				r.wc.close()
			}
		}()
		return nil, errDispatchDone
	}
}

// drive runs the windowed pipeline on one live connection: the calling
// goroutine claims tasks and writes request frames while the adaptive
// window has a free slot; a matcher goroutine consumes the
// connection's persistent frame reader, settles replies by sequence
// number (coalesced batches entry by entry), and feeds the window
// controller. It returns a nil error when the work channel closed
// (every task settled — necessarily including this connection's, so
// the in-flight map is empty and the connection is still healthy for
// the session to keep), or the transport error after requeueing every
// task still in flight, exactly once each: a task leaves the in-flight
// map either by being answered (matcher, before settling) or by the
// final requeue (after the matcher has provably exited), never both.
// settled counts the replies this connection turned into settlements —
// the supervisor's evidence that a later death was not part of a
// consecutive-failure streak.
//
// Liveness: while jobs are in flight the matcher arms a stall detector
// — no frame of any kind within max(e.stall, stallRTTFactor·rttEWMA)
// declares the connection hung and retires it through the same path as
// a death, requeueing its window. At half the deadline the matcher
// pings the worker; a healthy worker echoes from its read loop even
// while its executors grind, so only a dead process, a blackholed
// link, or a truly wedged worker ever reaches the deadline. Stall
// handling is pure scheduling: a requeued job recomputes the identical
// pure result on a survivor.
func (e *engine) drive(wc *workerConn, s *slot) (settled int, err error) {
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		inflight = make(map[uint64]inflightJob)
		dead     bool
		lastRecv time.Time // last frame arrival (any type)
		armStart time.Time // when in-flight went 0→1: the stall clock floor
	)
	matchErr := make(chan error, 1)    // the matcher's verdict (capacity: it reports once)
	matcherDone := make(chan struct{}) // closed when the matcher exits
	stop := make(chan struct{})        // drained dispatch: release the matcher, keep the conn

	// Idle time between dispatches is not service time: reset the
	// controller's reply clock (its RTT/gap estimates survive — the
	// link didn't change, the workload pause did).
	wc.win.lastReply = time.Time{}

	go func() { // matcher
		defer close(matcherDone)
		die := func(err error) {
			matchErr <- err
			mu.Lock()
			dead = true
			cond.Broadcast()
			mu.Unlock()
		}
		// Streamed-trace reassembly (wire v6), keyed by sequence number.
		// Local to this matcher: a connection death discards its partial
		// assemblies with it, and the requeued jobs start their streams
		// over on a survivor.
		var asm map[uint64]*traceAssembly
		// Wire byte counters: fold this connection's per-frame tallies
		// into the process counters as deltas, and surface the combined
		// compression ratio per slot.
		var lastTxW, lastRxW uint64
		bytesTick := func() {
			tx, rx := wc.fw.Stats(), wc.fr.Stats()
			mWireTxBytes.Add(tx.Wire - lastTxW)
			mWireRxBytes.Add(rx.Wire - lastRxW)
			lastTxW, lastRxW = tx.Wire, rx.Wire
			if onWire := tx.Wire + rx.Wire; onWire > 0 && wc.fw.Compressing() {
				s.met.compression.Set(float64(tx.Raw+rx.Raw) / float64(onWire))
			}
		}
		defer bytesTick()
		// The stall deadline and its check interval, recomputed per
		// fire because the RTT EWMA moves. The interval quarters the
		// deadline so a stall is declared within ~1.25× the configured
		// deadline in the worst phase alignment.
		deadline := func() time.Duration {
			d := e.stall
			if r := time.Duration(wc.win.rtt * float64(time.Second) * stallRTTFactor); r > d {
				d = r
			}
			return d
		}
		var stallC <-chan time.Time
		var stallTimer *time.Timer
		if e.stall > 0 {
			iv := max(deadline()/4, time.Millisecond)
			stallTimer = time.NewTimer(iv)
			defer stallTimer.Stop()
			stallC = stallTimer.C
		}
		var pingNonce uint64
		for {
			select {
			case <-stop:
				return
			case now := <-stallC:
				mu.Lock()
				n := len(inflight)
				clock := lastRecv
				if armStart.After(clock) {
					clock = armStart
				}
				mu.Unlock()
				if n > 0 {
					d := deadline()
					idle := now.Sub(clock)
					if idle >= d {
						die(fmt.Errorf("no frame for %v with %d jobs in flight (liveness deadline %v): presumed hung", idle.Round(time.Millisecond), n, d))
						return
					}
					if idle >= d/2 {
						// Silent but not yet condemned: probe. Only a received
						// frame resets the stall clock, so a worker that eats
						// pings without echoing still hits the deadline.
						if err := wc.ping(pingNonce); err != nil {
							die(fmt.Errorf("liveness ping: %w", err))
							return
						}
						mPings.Inc()
						pingNonce++
					}
				}
				stallTimer.Reset(max(deadline()/4, time.Millisecond))
			case f, ok := <-wc.frames:
				if !ok {
					err := wc.readErr
					if err == nil {
						err = io.ErrUnexpectedEOF
					}
					die(err)
					return
				}
				if stallC != nil {
					mu.Lock()
					lastRecv = time.Now()
					mu.Unlock()
				}
				bytesTick()
				var replies []wire.Reply
				var single [1]wire.Reply
				switch f.typ {
				case wire.FrameReplyBatch:
					var err error
					if replies, err = wire.DecodeReplies(f.payload()); err != nil {
						die(err)
						return
					}
				case e.resFrame, wire.FrameError, wire.FrameTraceChunk:
					seq, body, err := wire.SplitSeq(f.payload())
					if err != nil {
						die(err)
						return
					}
					single[0] = wire.Reply{Seq: seq, Typ: f.typ, Body: body}
					replies = single[:]
				case wire.FramePong:
					// Liveness echo: its arrival already reset the stall
					// clock, which is its load-bearing meaning. Since wire
					// v5 it also carries the worker's per-stream stats;
					// cache them for Fleet.Snapshot. A malformed payload is
					// ignored rather than fatal — the probe did its job by
					// arriving.
					mPongs.Inc()
					if _, ws, perr := wire.DecodePong(f.payload()); perr == nil {
						wc.stats.Store(&ws)
					}
					f.release()
					continue
				default:
					die(fmt.Errorf("unexpected frame type %d", f.typ))
					return
				}
				// A coalesced batch is k replies that arrived at once:
				// spread the observed arrival gap over them so the
				// controller sees the true per-reply service rate. A
				// fixed window observes nothing and pays for no clock
				// reads at all — the in-process-adjacent loopback path
				// is exactly where time.Now() per reply showed up in
				// profiles.
				var (
					now   time.Time
					gap   time.Duration
					adapt bool
				)
				if !wc.win.fixed {
					now = time.Now()
					gap, adapt = wc.win.settleGap(now, len(replies))
				}
				for _, r := range replies {
					if r.Typ == wire.FrameTraceChunk {
						// One bounded run of a streamed trace: accumulate it
						// against the job's assembly and move on. The job
						// stays in flight — only its closing result frame
						// settles it — so a connection death mid-stream
						// requeues the job and discards the partial assembly
						// with this matcher.
						mu.Lock()
						fj, ok := inflight[r.Seq]
						mu.Unlock()
						if !ok {
							die(fmt.Errorf("trace chunk for sequence %d that is not in flight", r.Seq))
							return
						}
						if e.tasks[fj.k].deliverStreamed == nil {
							die(fmt.Errorf("unexpected trace chunk for job %d", e.tasks[fj.k].id))
							return
						}
						as := asm[r.Seq]
						if as == nil {
							if asm == nil {
								asm = make(map[uint64]*traceAssembly)
							}
							as = &traceAssembly{}
							asm[r.Seq] = as
						}
						if err := as.add(r.Body); err != nil {
							die(err)
							return
						}
						continue
					}
					mu.Lock()
					fj, ok := inflight[r.Seq]
					if ok {
						delete(inflight, r.Seq)
						if adapt {
							rtt := now.Sub(fj.sent)
							wc.win.observe(rtt, gap)
							// The latency histogram piggybacks on the adaptive
							// controller's timestamps; fixed windows skip every
							// clock read (the PR6 hot path) and so observe
							// nothing here either.
							hJobLatency.Observe(rtt.Seconds())
							s.met.window.Set(float64(wc.win.cur))
							s.met.rtt.Set(wc.win.rtt)
						}
						s.met.inflight.Set(float64(len(inflight)))
						cond.Broadcast()
					}
					mu.Unlock()
					if !ok {
						die(fmt.Errorf("answer for sequence %d that is not in flight", r.Seq))
						return
					}
					switch r.Typ {
					case e.resFrame:
						var derr error
						if as, streamed := asm[r.Seq]; streamed {
							// The chunks came first (per-stream order), so an
							// existing assembly is what marks this result as
							// the streamed closer.
							delete(asm, r.Seq)
							derr = e.tasks[fj.k].deliverStreamed(r.Body, as.a, as.b)
						} else {
							derr = e.tasks[fj.k].deliver(r.Body)
						}
						if derr != nil {
							// Corrupt reply: requeue the task (it already left
							// the in-flight map) and retire the connection.
							e.requeue(fj.k, s)
							die(fmt.Errorf("reply for job %d: %w", e.tasks[fj.k].id, derr))
							return
						}
						settled++
						s.met.settled.Inc()
						e.settle()
					case wire.FrameError:
						// Deterministic job failure: requeueing would fail
						// identically on every worker. Count it settled so the
						// run drains; the overall error reports it. Any
						// partial trace stream is abandoned with it.
						delete(asm, r.Seq)
						e.failJob(fmt.Errorf("dist: job %d on %s: %w", e.tasks[fj.k].id, wc.name, &jobError{msg: string(r.Body)}))
						settled++
						s.met.settled.Inc()
						e.settle()
					default:
						e.requeue(fj.k, s)
						die(fmt.Errorf("unexpected reply type %d for sequence %d", r.Typ, r.Seq))
						return
					}
				}
				f.release()
			}
		}
	}()

	// fail retires the connection: unblock and join the matcher, then
	// requeue everything still in flight (the matcher being gone is
	// what makes "still in flight" unambiguous; each requeue may
	// quarantine its job instead, if this slot was the job's Kth
	// distinct killer). settled is read after the join, so the
	// matcher's writes are visible.
	fail := func(err error) (int, error) {
		wc.close()
		<-matcherDone
		mu.Lock()
		for _, fj := range inflight {
			e.requeue(fj.k, s)
		}
		inflight = nil
		s.met.inflight.Set(0)
		mu.Unlock()
		return settled, err
	}

	for { // sender: wait for a window slot, claim a task, ship it
		mu.Lock()
		for !dead && len(inflight) >= min(wc.win.cur, e.clamp) {
			cond.Wait()
		}
		d := dead
		mu.Unlock()
		if d {
			return fail(<-matchErr)
		}
		var k int
		var ok bool
		select {
		case err := <-matchErr:
			return fail(err)
		case k, ok = <-e.work:
			if !ok {
				// Drained. The matcher has settled every reply (the close
				// implies no task anywhere is unanswered), so the stream
				// is quiet; release the matcher and keep the connection —
				// unless the transport died in the same instant the batch
				// drained (the select can pick the closed work channel
				// over a pending matchErr): a dead connection must not be
				// parked as healthy, or the session's next dispatch burns
				// a respawn attempt discovering it. Nothing is in flight
				// either way, so the fail path requeues nothing.
				close(stop)
				<-matcherDone
				mu.Lock()
				d := dead
				mu.Unlock()
				if d {
					return fail(<-matchErr)
				}
				return settled, nil
			}
		}
		fj := inflightJob{k: k}
		if !wc.win.fixed {
			// The send timestamp only feeds the adaptive controller's
			// RTT estimate; a fixed window skips the clock read.
			fj.sent = time.Now()
		}
		mu.Lock()
		if e.stall > 0 && len(inflight) == 0 {
			// In-flight going 0→1 re-arms the stall clock: lastRecv may
			// be long stale after an idle stretch, and idleness is not a
			// stall — only silence with work outstanding is.
			armStart = time.Now()
		}
		inflight[uint64(k)] = fj
		s.met.dispatched.Inc()
		s.met.inflight.Set(float64(len(inflight)))
		mu.Unlock()
		if err := wc.send(uint64(k), e.reqFrame, e.tasks[k].payload); err != nil {
			return fail(err)
		}
	}
}
