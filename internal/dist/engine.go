package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// The dispatch engine: the payload-agnostic core of the coordinator.
// It ships encoded request frames to a fleet of worker connections and
// routes each reply to its task's deliver continuation, preserving the
// batch discipline (every task settles exactly once; which connection
// answers, and in what order, is invisible to the caller). Both remote
// workloads — simulation jobs (FrameJob/FrameResult) and Monte-Carlo
// sweep chunks (FrameSweepJob/FrameSweepResult) — run through this one
// engine.
//
// Throughput comes from three mechanisms layered on the claim channel:
//
//   - Pipelined windows. Each connection keeps up to `window` requests
//     in flight (a sender goroutine claims and writes, a reader
//     goroutine matches replies by sequence number), so a round trip
//     of latency stalls nothing: the next job is already on the wire
//     while the previous one computes. Replies may arrive out of order
//     — workers run in-process pools — which the in-flight map makes
//     irrelevant.
//   - In-worker pools. The worker side (Serve) executes the jobs of
//     one connection concurrently, so a deep window saturates a whole
//     host through a single connection.
//   - Slot supervision. A connection belongs to a slot that knows how
//     to re-establish it (re-dial the TCP endpoint, respawn the stdio
//     subprocess). When a worker dies mid-run its in-flight tasks are
//     requeued for the survivors and the slot reconnects with
//     exponential backoff, so a transient death costs a retry, not a
//     permanently smaller fleet.
//
// Determinism: a task is claimed, executed remotely as a pure function
// of its encoded payload, and settled exactly once — requeue on death
// re-executes the same pure computation. The engine never aggregates;
// callers deliver results by index and fold serially, exactly as
// internal/batch prescribes.

// Fleet-shape defaults, overridable per Config.
const (
	// DefaultWindow is the per-connection in-flight window when
	// Config.Window (or Settings.Window) is zero. Four hides a few
	// round trips of latency and keeps a small in-worker pool fed
	// without stockpiling half the batch on one worker.
	DefaultWindow = 4
	// DefaultMaxRespawns bounds how many times one slot reconnects
	// after mid-run deaths before retiring. The budget never resets:
	// a worker that keeps dying retires after this many attempts, so
	// a run with stranded jobs always terminates (with the error the
	// caller's fallback path expects).
	DefaultMaxRespawns = 3
	// DefaultRedialWait is the backoff before the first reconnection
	// attempt; it doubles per consecutive attempt on the same slot.
	DefaultRedialWait = 250 * time.Millisecond
)

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return DefaultWindow
}

func (c Config) maxRespawns() int {
	switch {
	case c.MaxRespawns > 0:
		return c.MaxRespawns
	case c.MaxRespawns < 0:
		return 0 // respawn disabled
	default:
		return DefaultMaxRespawns
	}
}

func (c Config) redialWait() time.Duration {
	if c.RedialWait > 0 {
		return c.RedialWait
	}
	return DefaultRedialWait
}

// task is one unit of remote work: an encoded request body and the
// continuation that decodes and delivers its reply. id is the caller's
// index for the task (job index, chunk index) — used in error text.
type task struct {
	id      int
	payload []byte
	// deliver consumes a successful reply body; a non-nil error means
	// the bytes are corrupt, which retires the connection that produced
	// them and requeues the task elsewhere.
	deliver func(body []byte) error
}

// slot is one position in the worker fleet: a live connection plus the
// recipe for re-establishing it after a mid-run death.
type slot struct {
	name string
	dial func() (*workerConn, error)
	wc   *workerConn // the initial connection (consumed by supervise)
}

// engine carries the shared state of one dispatch: the claim channel,
// the settle counter, and the two error severities (a deterministic
// job failure poisons the run; a worker death only matters if jobs are
// stranded when every slot has retired).
type engine struct {
	tasks    []task
	reqFrame byte
	resFrame byte
	window   int

	// work is the claim channel. Its buffer holds every task, and an
	// unsettled task is never in more than one place (queued, or in
	// exactly one connection's in-flight map), so a death can always
	// requeue its in-flight tasks without blocking and never races the
	// close: close happens only when no unsettled task remains.
	work      chan int
	remaining atomic.Int64
	done      chan struct{} // closed with work: aborts backoffs and dials

	errMu    sync.Mutex
	jobErrs  []error
	deadErrs []error
}

func (e *engine) settle() {
	if e.remaining.Add(-1) == 0 {
		close(e.work)
		close(e.done)
	}
}

func (e *engine) failJob(err error) {
	e.errMu.Lock()
	e.jobErrs = append(e.jobErrs, err)
	e.errMu.Unlock()
}

func (e *engine) noteDeath(err error) {
	e.errMu.Lock()
	e.deadErrs = append(e.deadErrs, err)
	e.errMu.Unlock()
}

// dispatch runs every task to completion across the fleet and returns
// the overall verdict: nil when every task settled by delivery, the
// joined job errors when workers reported deterministic failures, and
// the joined death log when tasks were stranded by total fleet loss.
func dispatch(slots []*slot, tasks []task, reqFrame, resFrame byte, cfg Config) error {
	e := &engine{
		tasks:    tasks,
		reqFrame: reqFrame,
		resFrame: resFrame,
		window:   cfg.window(),
		work:     make(chan int, len(tasks)),
		done:     make(chan struct{}),
	}
	// Clamp the window to the share of the batch a connection could
	// actually hold if tasks spread evenly: reserving more in-flight
	// slots than that buys nothing on a batch this small.
	if need := (len(tasks) + len(slots) - 1) / len(slots); e.window > need {
		e.window = need
	}
	e.remaining.Store(int64(len(tasks)))
	for i := range tasks {
		e.work <- i
	}
	var wg sync.WaitGroup
	for _, s := range slots {
		wg.Add(1)
		go func(s *slot) {
			defer wg.Done()
			e.supervise(s, cfg)
		}(s)
	}
	wg.Wait()
	if rem := e.remaining.Load(); rem > 0 {
		return errors.Join(append(e.deadErrs,
			fmt.Errorf("dist: %d jobs undone after every worker failed", rem))...)
	}
	if len(e.jobErrs) > 0 {
		return errors.Join(e.jobErrs...)
	}
	return nil
}

// supervise drives one slot until the work drains or the slot's
// respawn budget is exhausted: drive the live connection, and on a
// transport death reconnect with exponential backoff. The budget never
// resets, so a slot that keeps dying retires and dispatch terminates.
func (e *engine) supervise(s *slot, cfg Config) {
	wc := s.wc
	s.wc = nil
	attempts := 0
	backoff := cfg.redialWait()
	for {
		if wc == nil {
			if attempts >= cfg.maxRespawns() {
				return
			}
			attempts++
			select {
			case <-e.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			var err error
			if wc, err = e.redial(s); err != nil {
				if errors.Is(err, errDispatchDone) {
					return
				}
				e.noteDeath(fmt.Errorf("dist: %s: reconnect attempt %d: %w", s.name, attempts, err))
				wc = nil
				continue
			}
			fmt.Fprintf(stderrOf(cfg), "dist: %s: reconnected (attempt %d)\n", s.name, attempts)
		}
		err := e.drive(wc)
		wc.close()
		wc = nil
		if err == nil {
			return // work drained
		}
		e.noteDeath(fmt.Errorf("dist: worker %s: %w", s.name, err))
		if attempts < cfg.maxRespawns() {
			fmt.Fprintf(stderrOf(cfg), "dist: worker %s died (%v); reconnecting\n", s.name, err)
		}
	}
}

// errDispatchDone aborts a reconnect that lost its reason to exist:
// every task settled while the slot was dialing.
var errDispatchDone = errors.New("dispatch complete")

// redial re-establishes the slot's connection, abandoning the attempt
// the moment the run completes (the dial goroutine cleans up its own
// connection if one materializes late).
func (e *engine) redial(s *slot) (*workerConn, error) {
	type res struct {
		wc  *workerConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		wc, err := s.dial()
		ch <- res{wc, err}
	}()
	select {
	case r := <-ch:
		return r.wc, r.err
	case <-e.done:
		go func() {
			if r := <-ch; r.wc != nil {
				r.wc.close()
			}
		}()
		return nil, errDispatchDone
	}
}

// drive runs the windowed pipeline on one live connection: the calling
// goroutine claims tasks and writes request frames while an in-flight
// window slot is free; a reader goroutine matches replies by sequence
// number and settles them. It returns nil when the work channel closed
// (every task settled — necessarily including this connection's, so
// the in-flight map is empty), or the transport error after requeueing
// every task still in flight, exactly once each: a task leaves the
// in-flight map either by being answered (reader, before settling) or
// by this requeue (after the reader has provably exited), never both.
func (e *engine) drive(wc *workerConn) error {
	var (
		mu       sync.Mutex
		inflight = make(map[uint64]int, e.window)
	)
	window := make(chan struct{}, e.window)
	readErr := make(chan error, 1)
	readerDone := make(chan struct{})

	go func() { // reader: match replies, settle tasks, free window slots
		defer close(readerDone)
		for {
			typ, payload, err := wire.ReadFrame(wc.br)
			if err != nil {
				readErr <- err
				return
			}
			seq, body, err := wire.SplitSeq(payload)
			if err != nil {
				readErr <- err
				return
			}
			mu.Lock()
			k, ok := inflight[seq]
			if ok {
				delete(inflight, seq)
			}
			mu.Unlock()
			if !ok {
				readErr <- fmt.Errorf("answer for sequence %d that is not in flight", seq)
				return
			}
			switch typ {
			case e.resFrame:
				if derr := e.tasks[k].deliver(body); derr != nil {
					// Corrupt reply: requeue the task (it already left the
					// in-flight map) and retire the connection.
					e.work <- k
					readErr <- fmt.Errorf("reply for job %d: %w", e.tasks[k].id, derr)
					return
				}
				e.settle()
			case wire.FrameError:
				// Deterministic job failure: requeueing would fail
				// identically on every worker. Count it settled so the run
				// drains; the overall error reports it.
				e.failJob(fmt.Errorf("dist: job %d on %s: %w", e.tasks[k].id, wc.name, &jobError{msg: string(body)}))
				e.settle()
			default:
				e.work <- k
				readErr <- fmt.Errorf("unexpected frame type %d", typ)
				return
			}
			<-window
		}
	}()

	// fail retires the connection: unblock and join the reader, then
	// requeue everything still in flight (the reader being gone is what
	// makes "still in flight" unambiguous).
	fail := func(err error) error {
		wc.close()
		<-readerDone
		mu.Lock()
		for _, k := range inflight {
			e.work <- k
		}
		inflight = nil
		mu.Unlock()
		return err
	}

	for { // sender: claim a window slot, claim a task, ship it
		select {
		case err := <-readErr:
			return fail(err)
		case window <- struct{}{}:
		}
		var k int
		var ok bool
		select {
		case err := <-readErr:
			return fail(err)
		case k, ok = <-e.work:
			if !ok {
				return nil
			}
		}
		mu.Lock()
		inflight[uint64(k)] = k
		mu.Unlock()
		if err := wc.send(uint64(k), e.reqFrame, e.tasks[k].payload); err != nil {
			return fail(err)
		}
	}
}
