package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// The dispatch engine: the payload-agnostic core of the coordinator.
// It ships encoded request frames to a fleet of worker connections and
// routes each reply to its task's deliver continuation, preserving the
// batch discipline (every task settles exactly once; which connection
// answers, and in what order, is invisible to the caller). Both remote
// workloads — simulation jobs (FrameJob/FrameResult) and Monte-Carlo
// sweep chunks (FrameSweepJob/FrameSweepResult) — run through this one
// engine, and since PR 5 the engine runs over a persistent Fleet
// session (fleet.go): connections survive from one dispatch to the
// next, so a session pays one dial and one handshake per host no
// matter how many batches it runs. Since PR 10 dispatches are
// concurrent: each is a tenant in the shared scheduler (sched.go),
// with its own ready queue and sequence space, and idle connections
// claim across tenants under a fairness policy (fairness.go).
//
// Throughput comes from three mechanisms layered on the scheduler:
//
//   - Pipelined adaptive windows. Each connection keeps up to its
//     window of requests in flight (the sender claims and writes, the
//     connection's persistent reader feeds a matcher goroutine that
//     settles replies by sequence number). The window is adaptive by
//     default: it grows toward the connection's bandwidth-delay
//     product (observed reply RTT ÷ observed service gap) and shrinks
//     back when the link is fast, bounded by Config.MaxWindow. Replies
//     may arrive out of order — workers run in-process pools — which
//     the in-flight map makes irrelevant, and may arrive many to a
//     frame (wire.FrameReplyBatch) — workers coalesce small results
//     into one flush per drain.
//   - In-worker pools. The worker side (Serve) executes the jobs of
//     one connection concurrently, so a deep window saturates a whole
//     host through a single connection; heterogeneous hosts get
//     per-stream pool hints (Host.Pool, the host:port*pool syntax).
//   - Slot supervision. A connection belongs to a slot that knows how
//     to re-establish it (re-dial the TCP endpoint, respawn the stdio
//     subprocess). When a worker dies mid-run its in-flight tasks are
//     requeued for the survivors and the slot reconnects with
//     exponential backoff; the reconnection budget spans the whole
//     session, so a slot that keeps dying retires for good.
//
// Determinism: a task is claimed, executed remotely as a pure function
// of its encoded payload, and settled exactly once — requeue on death
// re-executes the same pure computation. The engine never aggregates;
// callers deliver results by index and fold serially, exactly as
// internal/batch prescribes. Window sizes, pool sizes, frame
// coalescing, and connection reuse are all pure scheduling: they move
// wall-clock time, never a byte of output.

// Fleet-shape defaults, overridable per Config.
const (
	// DefaultWindow is the per-connection in-flight window a connection
	// starts at when Config.Window (or Settings.Window) is zero, and
	// the fixed window when adaptation is disabled. Four hides a few
	// round trips of latency and keeps a small in-worker pool fed
	// without stockpiling half the batch on one worker.
	DefaultWindow = 4
	// DefaultMaxWindow bounds adaptive window growth when
	// Config.MaxWindow is zero. Thirty-two covers a ~30-job
	// bandwidth-delay product — a WAN round trip over a well-fed
	// in-worker pool — without letting one slow host hoard the batch.
	DefaultMaxWindow = 32
	// DefaultMaxRespawns bounds how many times one slot reconnects
	// after mid-run deaths before retiring. The budget never resets —
	// it spans every dispatch of a fleet session — so a worker that
	// keeps dying retires after this many attempts and a run with
	// stranded jobs always terminates (with the error the caller's
	// fallback path expects).
	DefaultMaxRespawns = 3
	// DefaultRedialWait is the backoff before the first reconnection
	// attempt; it doubles per consecutive attempt on the same slot.
	DefaultRedialWait = 250 * time.Millisecond
	// DefaultStallTimeout is the liveness deadline floor: a connection
	// with jobs in flight that produces no frame for
	// max(StallTimeout, stallRTTFactor·rttEWMA) is declared hung.
	// Thirty seconds is far above any healthy link's silence — the
	// coordinator pings at half the deadline and even a fully loaded
	// worker echoes from its read loop — while still unwedging a
	// blackholed WAN connection the same minute it hangs.
	DefaultStallTimeout = 30 * time.Second
	// DefaultMaxJobRequeues is the poison-job quarantine threshold: a
	// job requeued by the failures of this many distinct slots is
	// surfaced as a deterministic per-job error. Two means one slot
	// death is always forgiven (workers do die for reasons unrelated
	// to the job), but a job observed killing a second, different
	// worker stops spreading.
	DefaultMaxJobRequeues = 2
	// DefaultBreakerThreshold is the consecutive-connection-failure
	// count that opens a slot's circuit breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is the initial sit-out of an opened
	// breaker; it doubles each time the half-open probe fails.
	DefaultBreakerCooldown = 2 * time.Second
)

// stallRTTFactor scales the connection's observed RTT EWMA into the
// adaptive half of the liveness deadline, so a deliberately slow WAN
// config with a tight StallTimeout still never ejects a link that is
// merely far away.
const stallRTTFactor = 8

func (c Config) maxRespawns() int {
	switch {
	case c.MaxRespawns > 0:
		return c.MaxRespawns
	case c.MaxRespawns < 0:
		return 0 // respawn disabled
	default:
		return DefaultMaxRespawns
	}
}

func (c Config) redialWait() time.Duration {
	if c.RedialWait > 0 {
		return c.RedialWait
	}
	return DefaultRedialWait
}

// stallTimeout resolves the liveness deadline floor; 0 means stall
// detection is disabled.
func (c Config) stallTimeout() time.Duration {
	switch {
	case c.StallTimeout > 0:
		return c.StallTimeout
	case c.StallTimeout < 0:
		return 0
	default:
		return DefaultStallTimeout
	}
}

// maxJobRequeues resolves the quarantine threshold; 0 means quarantine
// is disabled.
func (c Config) maxJobRequeues() int {
	switch {
	case c.MaxJobRequeues > 0:
		return c.MaxJobRequeues
	case c.MaxJobRequeues < 0:
		return 0
	default:
		return DefaultMaxJobRequeues
	}
}

// breakerThreshold resolves the circuit-breaker trip count; 0 means the
// breaker is disabled.
func (c Config) breakerThreshold() int {
	switch {
	case c.BreakerThreshold > 0:
		return c.BreakerThreshold
	case c.BreakerThreshold < 0:
		return 0
	default:
		return DefaultBreakerThreshold
	}
}

func (c Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return DefaultBreakerCooldown
}

func (c Config) helloTimeout() time.Duration {
	if c.HelloTimeout > 0 {
		return c.HelloTimeout
	}
	return DefaultHelloTimeout
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return DefaultDialTimeout
}

// adaptiveWindow sizes one connection's in-flight window. A fixed
// window (Config.Window > 0, or adaptation disabled) never moves; an
// adaptive one steps the window one unit per observation toward
// target = round(minRTT/gap) + 1 — the number of requests that must
// be in flight for the pipe to never idle, plus one of slack. minRTT
// is the minimum reply round-trip observed on the connection, and gap
// an EWMA of the inter-reply arrival spacing (the service rate).
//
// The minimum matters: a raw or averaged RTT sample includes the time
// a request queued behind the window's predecessors at the worker,
// which grows with the window itself — a controller fed that signal
// chases its own tail and ratchets to the cap on every service-bound
// link. The minimum over samples approximates the uncontended round
// trip (network latency + one service time), which is the quantity
// the bandwidth-delay product actually wants.
//
// Window size is pure scheduling, so the controller needs no
// precision, only direction: too small and the worker starves behind
// the latency, too large and one connection hoards work a survivor
// could have claimed on its death.
type adaptiveWindow struct {
	fixed     bool
	cur, max  int
	minRTT    float64 // smallest observed reply round trip, seconds
	gap       float64 // EWMA inter-reply arrival gap, seconds
	rtt       float64 // EWMA reply round trip, seconds — feeds the stall deadline, not the window
	lastReply time.Time
}

// newAdaptiveWindow builds the window state a fresh connection starts
// with (reconnections start over: a re-dialed link may have new
// characteristics).
func newAdaptiveWindow(cfg Config) adaptiveWindow {
	if cfg.Window > 0 {
		return adaptiveWindow{fixed: true, cur: cfg.Window, max: cfg.Window}
	}
	if cfg.MaxWindow < 0 {
		return adaptiveWindow{fixed: true, cur: DefaultWindow, max: DefaultWindow}
	}
	max := cfg.MaxWindow
	if max == 0 {
		max = DefaultMaxWindow
	}
	return adaptiveWindow{cur: min(DefaultWindow, max), max: max}
}

// observe feeds one reply's round-trip time and the service gap it
// represents (the inter-reply arrival spacing, spread evenly over a
// coalesced batch) into the controller and steps the window.
func (w *adaptiveWindow) observe(rtt, gap time.Duration) {
	if w.fixed {
		return
	}
	// Floor both estimates at clock-resolution scale so a loopback
	// burst cannot divide by ~zero.
	const (
		alpha = 0.3
		floor = 20e-6
	)
	r := math.Max(rtt.Seconds(), floor)
	g := math.Max(gap.Seconds(), floor)
	if w.minRTT == 0 || r < w.minRTT {
		w.minRTT = r
	}
	// The liveness deadline wants a typical round trip (minRTT would
	// under-arm it on links whose service time dominates), hence its
	// own EWMA.
	if w.rtt == 0 {
		w.rtt = r
	} else {
		w.rtt += alpha * (r - w.rtt)
	}
	if w.gap == 0 {
		w.gap = g
	} else {
		w.gap += alpha * (g - w.gap)
	}
	// Round, not ceil: the gap EWMA never fully sheds an old sample, so
	// a ratio that converged to 1 still sits at 1±ε — ceiling it would
	// pin the target one unit above the true bandwidth-delay product.
	target := int(math.Round(w.minRTT/w.gap)) + 1
	switch {
	case target > w.cur && w.cur < w.max:
		w.cur++
	case target < w.cur && w.cur > 1:
		w.cur--
	}
}

// settleGap converts one reply frame's arrival into the per-reply
// service gap observe expects, spreading the inter-frame spacing
// evenly over a coalesced batch of n replies. ok is false when there
// is nothing to observe: a fixed window (no bookkeeping at all — the
// caller skips its time.Now() too) or the first frame after an idle
// period (no predecessor to measure spacing against).
//
// A zero gap is NOT a skip case: coalesced same-tick frames (loopback
// links, coarse clocks) are a genuine observation — the link is at
// least as fast as the clock resolves — and observe clamps the sample
// to its internal floor. Skipping them starved the EWMA on exactly the
// links that most needed the window to shrink: the controller never
// adapted because every observation arrived "too fast to count".
func (w *adaptiveWindow) settleGap(now time.Time, n int) (gap time.Duration, ok bool) {
	if w.fixed {
		return 0, false
	}
	ok = !w.lastReply.IsZero()
	if ok {
		gap = now.Sub(w.lastReply) / time.Duration(n)
	}
	w.lastReply = now
	return gap, ok
}

// task is one unit of remote work: an encoded request body and the
// continuation that decodes and delivers its reply. id is the caller's
// index for the task (job index, chunk index) — used in error text.
type task struct {
	id      int
	payload []byte
	// deliver consumes a successful reply body; a non-nil error means
	// the bytes are corrupt, which retires the connection that produced
	// them and requeues the task elsewhere.
	deliver func(body []byte) error
	// deliverStreamed, when non-nil, consumes a streamed result: the
	// closing frame's body plus the trace points the matcher assembled
	// from the preceding FrameTraceChunk frames (wire v6). Tasks that
	// leave it nil (sweep chunks) treat any trace chunk as a protocol
	// violation.
	deliverStreamed func(body []byte, a, b []sim.TracePoint) error
}

// traceAssembly accumulates one in-flight job's streamed trace chunks
// until its closing result frame arrives. Chunks arrive in worker
// write order — all of trace A, then all of trace B, indexes
// sequential within each — and anything else is stream corruption.
type traceAssembly struct {
	a, b         []sim.TracePoint
	nextA, nextB uint32
}

func (as *traceAssembly) add(body []byte) error {
	// Peek the which byte (offset 1, after the version byte) to pick
	// the destination slice, so the decoder appends straight into the
	// assembly instead of through a throwaway intermediate.
	dst := as.a
	if len(body) >= 2 && body[1] == wire.TraceChunkB {
		dst = as.b
	}
	which, index, out, err := wire.DecodeTraceChunk(body, dst)
	if err != nil {
		return err
	}
	switch which {
	case wire.TraceChunkA:
		if as.nextB != 0 {
			return fmt.Errorf("dist: trace chunk for trace A after trace B began")
		}
		if index != as.nextA {
			return fmt.Errorf("dist: trace A chunk %d arrived, expected %d", index, as.nextA)
		}
		as.nextA++
		as.a = out
	default:
		if index != as.nextB {
			return fmt.Errorf("dist: trace B chunk %d arrived, expected %d", index, as.nextB)
		}
		as.nextB++
		as.b = out
	}
	return nil
}

// slot is one position in the worker fleet: a (possibly live)
// connection plus the recipe for re-establishing it after a death.
// Every slot is driven by one persistent runner goroutine (runSlot)
// for the life of the fleet session: the runner drives the live
// connection while it lasts, reconnects with exponential backoff when
// it dies, and parks when there is nothing to do. The reconnection
// budget (attempts) spans the slot's whole life, and a slot whose
// budget is spent retires for good; Retire drains a slot early, by
// the same requeue path a death takes. All scheduling fields are
// guarded by the fleet mutex; stopC/done belong to the runner's
// lifecycle.
type slot struct {
	name     string
	dial     func() (*workerConn, error)
	wc       *workerConn
	attempts int
	retired  bool
	draining bool // Retire requested: finish in-flight bookkeeping, then retire
	met      *slotMetrics // per-slot flight-recorder children, resolved at assembly

	// Connection-scoped scheduling state, guarded by the fleet mutex.
	// inflightN mirrors len(connState.inflight); perDisp counts this
	// connection's in-flight jobs per dispatch id (the per-dispatch
	// clamp); lastDisp is the dispatch the connection last claimed
	// from, for steal accounting; connErr is the first transport error
	// (matcher or sender) — the signal that retires the connection.
	inflightN int
	perDisp   map[uint32]int
	lastDisp  uint32
	connErr   error

	// Runner lifecycle. backoff is the next redial wait (doubles per
	// consecutive attempt, resets on success); stopC interrupts sleeps
	// and in-flight dials when the fleet closes or the slot is
	// retired.
	backoff  time.Duration
	stopC    chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Circuit breaker: consecutive connection failures (dead drives,
	// failed redials) open the breaker — the slot sits out until
	// openUntil passes, then runs half-open: the next reconnection
	// dial is the probe, one more failure re-opens the breaker with a
	// doubled cooldown, and a connection that settles real work closes
	// it. Guarded by the fleet mutex.
	fails     int           // consecutive connection failures
	cooldown  time.Duration // current breaker cooldown; doubles per re-open
	openUntil time.Time     // breaker open until then; zero = closed
}

// interrupt aborts the runner's current sleep or dial; idempotent.
func (s *slot) interrupt() {
	s.stopOnce.Do(func() { close(s.stopC) })
}

// cooling reports whether the slot's breaker is open at now.
func (s *slot) cooling(now time.Time) bool {
	return !s.openUntil.IsZero() && now.Before(s.openUntil)
}

// fail records one connection failure and reports whether it opened
// (or re-opened) the slot's circuit breaker, in which case the runner
// sits the cooldown out before probing half-open.
func (s *slot) fail(cfg Config) bool {
	th := cfg.breakerThreshold()
	if th <= 0 {
		return false
	}
	s.fails++
	if s.fails < th {
		return false
	}
	// Past the threshold every further failure re-opens immediately
	// (the classic half-open probe: one failure, not a fresh budget)
	// with a doubled cooldown.
	if s.cooldown == 0 {
		s.cooldown = cfg.breakerCooldown()
	} else {
		s.cooldown *= 2
	}
	s.openUntil = time.Now().Add(s.cooldown)
	s.met.breakerOpens.Inc()
	s.met.breakerOpen.Set(1)
	return true
}

// recover closes the breaker: the slot produced a healthy, productive
// connection, so the failure streak and the cooldown escalation reset.
func (s *slot) recover() {
	s.fails = 0
	s.cooldown = 0
	s.openUntil = time.Time{}
	s.met.breakerOpen.Set(0)
}

// ErrAllBreakersOpen reports a dispatch that could not start because
// every non-retired slot's circuit breaker is in its cooldown. Callers
// with a fallback path (RunOrFallback, StreamOrFallback) degrade to
// in-process execution — byte-identical by the determinism guarantee —
// instead of hammering a fleet that just failed repeatedly.
var ErrAllBreakersOpen = errors.New("dist: every fleet slot's circuit breaker is open")
