package dist

// Fairness policies for the multi-tenant scheduler. When several
// dispatches are live at once, every idle connection asks the fleet's
// policy which tenant to claim from next. A policy is PURE SCHEDULING:
// it chooses claim order, never results — any policy, including an
// adversarial one, produces per-tenant bytes identical to a serial
// run, because every task still settles exactly once into its own
// dispatch's delivery slots (the §6–§8 determinism argument, extended
// across tenants). That freedom is exactly what lets the policy be
// pluggable.

// DispatchView is the read-only summary of one live dispatch a
// Fairness policy picks among. Views are passed in fleet admission
// order (oldest first), and only dispatches this connection is
// eligible to serve appear (queued work remains and the per-connection
// clamp is not filled).
type DispatchView struct {
	ID      uint32  // dispatch id (joins the wire sequence space)
	Arrival uint64  // fleet-wide admission order; lower is older
	Queued  int     // tasks waiting in this dispatch's ready queue
	Total   int     // tasks the dispatch was admitted with
	Weight  float64 // relative share hint (1 when unset)
}

// Fairness picks which eligible dispatch an idle connection claims
// from. Pick receives at least one view and returns the index of the
// chosen one; out-of-range returns are clamped to 0. Pick is called
// under the scheduler lock — it must not block, and it must not
// retain the slice, which is reused between calls.
type Fairness interface {
	Pick(views []DispatchView) int
}

// FIFO serves dispatches strictly in admission order: the oldest live
// dispatch with eligible work wins. This is the default policy (a nil
// Config.Fairness means FIFO, served by a zero-allocation fast path),
// matching the pre-multi-tenant behavior as closely as concurrency
// allows: earlier callers drain first, later callers fill otherwise
// idle window slots.
type FIFO struct{}

// Pick returns 0: views arrive in admission order.
func (FIFO) Pick(views []DispatchView) int { return 0 }

// DeepestQueue steals for throughput: an idle connection claims from
// whichever dispatch has the most work waiting, which keeps every
// queue draining at a rate proportional to its depth and minimizes
// the makespan of the slowest tenant. Ties go to the older dispatch.
type DeepestQueue struct{}

// Pick returns the view with the largest Queued, oldest first on ties.
func (DeepestQueue) Pick(views []DispatchView) int {
	best := 0
	for i, v := range views {
		if v.Queued > views[best].Queued ||
			(v.Queued == views[best].Queued && v.Arrival < views[best].Arrival) {
			best = i
		}
	}
	return best
}

// Weighted serves the dispatch with the largest weighted remaining
// fraction Queued/Total·Weight, so tenants drain proportionally: a
// dispatch that has consumed less of its share (or carries a larger
// weight) claims the next window slot. With all weights equal it is
// proportional fair sharing. Ties go to the older dispatch.
type Weighted struct{}

// Pick returns the view with the largest Queued/Total·Weight.
func (Weighted) Pick(views []DispatchView) int {
	best, bestScore := 0, -1.0
	for i, v := range views {
		w := v.Weight
		if w <= 0 {
			w = 1
		}
		score := float64(v.Queued) / float64(v.Total) * w
		if score > bestScore ||
			(score == bestScore && v.Arrival < views[best].Arrival) {
			best, bestScore = i, score
		}
	}
	return best
}
