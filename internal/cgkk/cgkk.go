// Package cgkk implements the CGKK substrate procedure used by
// Algorithm 1 of the paper.
//
// The paper imports CGKK from reference [18] (Czyzowicz, Gąsieniec,
// Killick, Kranakis, PODC 2019), whose pseudocode is not part of the
// reproduced text. Only its contract matters to the paper's proofs:
//
//	CGKK guarantees rendezvous for every instance with simultaneous
//	wake-up (t = 0) that is (1) non-synchronous, or (2) has different
//	orientations and the same chirality (φ ≠ 0, χ = 1).
//
// We rebuild a procedure with exactly this contract (the substitution is
// documented in DESIGN.md §3). The construction unifies two mechanisms
// under a single schedule
//
//		for i = 1, 2, …: { wait(W(i)); PlanarCowWalk(i) }
//
//	  - Different clocks (τ ≠ 1): the super-increasing waits make the
//	    faster-clock agent's schedule slide ahead of the other's until it
//	    performs a complete planar search while the other agent is still
//	    inside a wait — the paper's own type-3 mechanism (Claims 3.8–3.10)
//	    specialised to t = 0.
//	  - Same clocks (τ = 1): both agents execute each instruction at the
//	    same absolute moment, so B's position is the affine image
//	    q_B(s) = b₀ + T·q_A(s) with T = v·R_φ·S_χ. Whenever T has no
//	    eigenvalue 1 — i.e. unless v = 1 and (φ = 0, χ = +1, or χ = −1) —
//	    the gap |q_B − q_A| = |(T−I)(q_A − p*)| vanishes at the fixed point
//	    p* = −(T−I)⁻¹b₀, and the planar cow-walk passes within 2^{−(i+1)}
//	    of p* once 2^i ≥ |p*|, forcing the gap below r.
//
// The union of the two mechanisms is exactly the CGKK contract.
package cgkk

import (
	"math"

	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/walk"
)

// Schedule parameterizes the wait growth. WaitExp(i) is the exponent w
// such that phase i waits 2^w local time units before its search.
type Schedule struct {
	Name    string
	WaitExp func(i int) float64
}

// Faithful mirrors the paper's type-3 schedule growth 2^(15 i²). With the
// double-double clock it is simulable through phase 2; use Compact for
// experiments.
func Faithful() Schedule {
	return Schedule{
		Name:    "faithful",
		WaitExp: func(i int) float64 { return 15 * float64(i) * float64(i) },
	}
}

// Compact grows waits as 2^(10 i): still super-increasing relative to the
// search durations (2^{3i+5}), resolvable by the dd clock through phase
// ~8, and sufficient for every bounded-parameter family used in the
// experiments (PredictPhase re-derives the separation inequality per
// instance before trusting it).
func Compact() Schedule {
	return Schedule{
		Name:    "compact",
		WaitExp: func(i int) float64 { return 10 * float64(i) },
	}
}

// ZeroWait removes the drift waits entirely, leaving only the lockstep
// fixed-point mechanism. This variant is what Algorithm 1's block 4 uses:
// type-4 instances always have τ = 1 (the τ ≠ 1 instances belong to
// block 3), so the drift waits would only inflate the rendezvous time Δ —
// and with it the phase index i ≥ log₂(t + Δ + 4(v+1)/r) at which block 4
// fires, beyond anything simulable.
func ZeroWait() Schedule {
	return Schedule{
		Name:    "zero-wait",
		WaitExp: func(int) float64 { return math.Inf(-1) }, // 2^{-∞} = 0
	}
}

// Program returns the CGKK procedure as an infinite program.
func Program(s Schedule) prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return ProgramCursor(s) })
}

// ProgramCursor returns the procedure as a bare single-use cursor (the
// allocation-lean spelling block 4 of Algorithm 1 budgets and slices
// once per phase).
func ProgramCursor(s Schedule) prog.Cursor {
	return prog.ForeverCursor(func(i int) prog.Cursor {
		return prog.SeqOf(
			prog.InstrsCursor(prog.Wait(math.Exp2(s.WaitExp(i)))),
			walk.NewPlanar(i),
		)
	})
}

// TransformB returns T = v·R_φ·S_χ, the linear map relating the two
// agents' lockstep trajectories for τ = 1 instances: q_B = b₀ + T·q_A.
func TransformB(in inst.Instance) geom.Mat2 {
	m := geom.Rotation(in.Phi)
	if in.Chi < 0 {
		m = m.Mul(geom.FlipY)
	}
	return m.Scale(in.V)
}

// FixedPoint returns p* = −(T−I)⁻¹·b₀, the point of A's private plane at
// which the lockstep gap vanishes, and true; or false when T−I is
// singular (v = 1 with φ = 0 ∧ χ = 1, or χ = −1), in which case the
// fixed-point mechanism does not apply.
func FixedPoint(in inst.Instance) (geom.Vec2, bool) {
	ti := TransformB(in).Sub(geom.Identity)
	inv, ok := ti.Inverse()
	if !ok {
		return geom.Vec2{}, false
	}
	return inv.Apply(in.B0()).Neg(), true
}

// Covered reports whether the instance is inside the CGKK contract:
// t = 0 and (non-synchronous or (φ ≠ 0 ∧ χ = 1)).
func Covered(in inst.Instance) bool {
	if in.T != 0 {
		return false
	}
	return !in.Synchronous() || (in.Phi != 0 && in.Chi == 1)
}

// PredictPhase returns the phase by whose end rendezvous is guaranteed
// for a covered instance under the given schedule, and true; or false
// when the instance is outside the contract or the schedule's separation
// inequality cannot be established for it (only possible with non-default
// schedules on extreme parameters).
func PredictPhase(in inst.Instance, s Schedule) (int, bool) {
	if !Covered(in) {
		return 0, false
	}
	if in.Tau != 1 {
		return predictDrift(in, s)
	}
	return predictFixedPoint(in)
}

// predictFixedPoint: phase i meets once the walk's covered square holds
// p* and its passing gap ‖T−I‖·2^{−(i+1)} is below r.
func predictFixedPoint(in inst.Instance) (int, bool) {
	p, ok := FixedPoint(in)
	if !ok {
		return 0, false
	}
	norm := TransformB(in).Sub(geom.Identity).OpNorm()
	i := 1
	for ; i < 64; i++ {
		reach := math.Abs(p.X) <= walk.CoverRadius(i) && math.Abs(p.Y) <= walk.CoverRadius(i)
		fine := norm*walk.CoverGap(i) < in.R
		if reach && fine {
			return i, true
		}
	}
	return 0, false
}

// predictDrift: the faster-clock agent X (period τmin) must start its
// phase-i search after the slower agent Y started its phase-i wait, and
// finish before Y's wait ends. Writing C(i) for the local time consumed
// by phases 1..i−1 plus phase i's wait, and D(i) for the search duration,
// the two conditions are
//
//	(C(i)) · τmin ≥ (C(i) − 2^{w(i)} ) · τmax            (X starts late enough)
//	(C(i) + D(i)) · τmin ≤ C(i) · τmax                   (X finishes early enough)
//
// plus coverage: the search square (in X's units) must contain the other
// agent's start and have passing gap ≤ r.
func predictDrift(in inst.Instance, s Schedule) (int, bool) {
	tauMin, tauMax := in.Tau, 1.0
	uX := in.Tau * in.V // unit of the faster agent if it is B
	if tauMin > tauMax {
		tauMin, tauMax = tauMax, tauMin
		uX = 1.0 // A is the faster agent
	}
	d := in.Dist()
	cum := 0.0 // local duration of phases 1..i-1
	for i := 1; i < 64; i++ {
		w := math.Exp2(s.WaitExp(i))
		D := walk.PlanarDuration(i)
		c := cum + w
		startOK := c*tauMin >= (c-w)*tauMax
		finishOK := (c+D)*tauMin <= c*tauMax
		reach := walk.CoverRadius(i)*uX >= d
		fine := walk.CoverGap(i)*uX <= in.R
		if startOK && finishOK && reach && fine {
			return i, true
		}
		cum += w + D
		if !isFinite(cum) {
			break
		}
	}
	return 0, false
}

func isFinite(x float64) bool { return !math.IsInf(x, 0) && !math.IsNaN(x) }

// CumulativeLocal returns the local-time length of phases 1..i under the
// schedule.
func CumulativeLocal(i int, s Schedule) float64 {
	sum := 0.0
	for j := 1; j <= i; j++ {
		sum += math.Exp2(s.WaitExp(j)) + walk.PlanarDuration(j)
	}
	return sum
}

// MeetTimeBound returns an upper bound on the absolute rendezvous time of
// the procedure on a covered instance, and true; false when PredictPhase
// fails. For τ = 1 (lockstep) instances the bound is the local length of
// the phases through the predicted one; for τ ≠ 1 it is scaled by the
// slower clock.
func MeetTimeBound(in inst.Instance, s Schedule) (float64, bool) {
	i, ok := PredictPhase(in, s)
	if !ok {
		return 0, false
	}
	tauMax := math.Max(1, in.Tau)
	return CumulativeLocal(i, s) * tauMax, true
}
