package cgkk

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/sim"
)

func simulate(in inst.Instance, s Schedule, maxSeg int) sim.Result {
	set := sim.DefaultSettings()
	set.MaxSegments = maxSeg
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: Program(s), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: Program(s), Radius: in.R}
	return sim.Run(a, b, set)
}

func TestCovered(t *testing.T) {
	cases := []struct {
		in   inst.Instance
		want bool
	}{
		// t = 0, non-synchronous (τ).
		{inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 2, V: 1, T: 0, Chi: 1}, true},
		// t = 0, non-synchronous (v).
		{inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 2, T: 0, Chi: 1}, true},
		// t = 0, synchronous, rotated, same chirality.
		{inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 1, Tau: 1, V: 1, T: 0, Chi: 1}, true},
		// t = 0, synchronous, rotated, different chirality: NOT covered.
		{inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 1, Tau: 1, V: 1, T: 0, Chi: -1}, false},
		// t = 0, synchronous, same frame: NOT covered (infeasible).
		{inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}, false},
		// delayed: NOT covered regardless.
		{inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 1, Tau: 1, V: 1, T: 1, Chi: 1}, false},
	}
	for _, tc := range cases {
		if got := Covered(tc.in); got != tc.want {
			t.Errorf("Covered(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestFixedPointAlgebra(t *testing.T) {
	// v=2, φ=0, χ=1, b0=(3,0): T = 2I, p* = -(2I-I)^{-1}(3,0) = (-3, 0).
	in := inst.Instance{R: 0.5, X: 3, Y: 0, Phi: 0, Tau: 1, V: 2, T: 0, Chi: 1}
	p, ok := FixedPoint(in)
	if !ok || !p.ApproxEqual(geom.V(-3, 0), 1e-12) {
		t.Errorf("FixedPoint = %v, %v", p, ok)
	}
	// At p*, the lockstep gap vanishes: b0 + T·p* == p*.
	tb := TransformB(in)
	img := in.B0().Add(tb.Apply(p))
	if !img.ApproxEqual(p, 1e-9) {
		t.Errorf("fixed point not fixed: %v -> %v", p, img)
	}
	// Singular cases: v=1 φ=0 χ=1 and v=1 χ=-1.
	if _, ok := FixedPoint(inst.Instance{R: 1, X: 3, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}); ok {
		t.Error("identity transform reported invertible")
	}
	if _, ok := FixedPoint(inst.Instance{R: 1, X: 3, Y: 0, Phi: 1, Tau: 1, V: 1, T: 0, Chi: -1}); ok {
		t.Error("reflection transform reported invertible")
	}
	// Rotation case: φ≠0, v=1 is invertible.
	if _, ok := FixedPoint(inst.Instance{R: 1, X: 3, Y: 0, Phi: 1, Tau: 1, V: 1, T: 0, Chi: 1}); !ok {
		t.Error("rotation transform reported singular")
	}
}

// Property: for random invertible instances, the fixed point is fixed.
func TestFixedPointProperty(t *testing.T) {
	g := inst.NewGen(70)
	for i := 0; i < 200; i++ {
		in := g.Draw(inst.ClassSimultaneousNonSync)
		if in.Tau != 1 {
			in.Tau = 1 // force lockstep so TransformB applies
		}
		p, ok := FixedPoint(in)
		if !ok {
			continue
		}
		img := in.B0().Add(TransformB(in).Apply(p))
		if !img.ApproxEqual(p, 1e-6*math.Max(1, p.Norm())) {
			t.Fatalf("fixed point drifted: %v vs %v (%v)", p, img, in)
		}
	}
}

// The fixed-point mechanism: speed-only difference.
func TestRendezvousSpeedOnly(t *testing.T) {
	in := inst.Instance{R: 0.6, X: 0.9, Y: 0.4, Phi: 0, Tau: 1, V: 1.7, T: 0, Chi: 1}
	ph, ok := PredictPhase(in, Compact())
	if !ok {
		t.Fatal("no predicted phase")
	}
	res := simulate(in, Compact(), 20_000_000)
	if !res.Met {
		t.Fatalf("no rendezvous: %v (predicted phase %d)", res, ph)
	}
	if bound, ok := MeetTimeBound(in, Compact()); ok && res.MeetTime.Float64() > bound {
		t.Errorf("met at %v after bound %v", res.MeetTime.Float64(), bound)
	}
}

// The fixed-point mechanism: rotation-only difference (the [18] headline
// case: synchronous agents with different orientations).
func TestRendezvousRotated(t *testing.T) {
	for _, phi := range []float64{0.5, 1.2, math.Pi, 5.0} {
		in := inst.Instance{R: 0.6, X: 1.0, Y: 0.2, Phi: phi, Tau: 1, V: 1, T: 0, Chi: 1}
		res := simulate(in, Compact(), 20_000_000)
		if !res.Met {
			t.Fatalf("φ=%v: no rendezvous: %v", phi, res)
		}
	}
}

// The fixed-point mechanism with opposite chirality but v ≠ 1 (covered:
// non-synchronous).
func TestRendezvousMirrorFastAgent(t *testing.T) {
	in := inst.Instance{R: 0.6, X: 1.1, Y: -0.3, Phi: 2.2, Tau: 1, V: 1.6, T: 0, Chi: -1}
	res := simulate(in, Compact(), 20_000_000)
	if !res.Met {
		t.Fatalf("no rendezvous: %v", res)
	}
}

// The clock-drift mechanism: τ ≠ 1.
func TestRendezvousClockDrift(t *testing.T) {
	for _, tau := range []float64{2.0, 0.5, 1.4} {
		in := inst.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: tau, V: 1 / tau, T: 0, Chi: 1}
		ph, ok := PredictPhase(in, Compact())
		if !ok {
			t.Fatalf("τ=%v: no predicted phase", tau)
		}
		res := simulate(in, Compact(), 30_000_000)
		if !res.Met {
			t.Fatalf("τ=%v: no rendezvous: %v (predicted %d)", tau, res, ph)
		}
	}
}

// Random covered instances across the contract all meet.
func TestRendezvousContractSamples(t *testing.T) {
	g := inst.NewGen(71)
	g.DMax = 2 // keep fixed points close for fast phases
	for _, c := range []inst.Class{inst.ClassSimultaneousNonSync, inst.ClassSimultaneousRotated} {
		n := 6
		for k := 0; k < n; k++ {
			in := g.Draw(c)
			if !Covered(in) {
				t.Fatalf("%v not covered: %v", c, in)
			}
			res := simulate(in, Compact(), 40_000_000)
			if !res.Met {
				t.Fatalf("%v sample %d: no rendezvous: %v\n%v", c, k, res, in)
			}
		}
	}
}

// ZeroWait covers all τ = 1 contract instances and keeps meet times tiny.
func TestZeroWaitFast(t *testing.T) {
	in := inst.Instance{R: 0.8, X: 0.9, Y: 0.1, Phi: 0.9, Tau: 1, V: 1.5, T: 0, Chi: 1}
	res := simulate(in, ZeroWait(), 5_000_000)
	if !res.Met {
		t.Fatalf("no rendezvous: %v", res)
	}
	if got := res.MeetTime.Float64(); got > 1000 {
		t.Errorf("zero-wait meet time %v too large", got)
	}
}

func TestPredictPhaseOutsideContract(t *testing.T) {
	in := inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	if _, ok := PredictPhase(in, Compact()); ok {
		t.Error("predicted a phase for an uncovered instance")
	}
}

func TestCumulativeLocalMonotone(t *testing.T) {
	s := Compact()
	prev := 0.0
	for i := 1; i <= 6; i++ {
		c := CumulativeLocal(i, s)
		if c <= prev {
			t.Fatalf("cumulative not increasing at %d", i)
		}
		prev = c
	}
}
