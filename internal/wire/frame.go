package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Framing: every message on a coordinator↔worker byte stream (stdio
// pipe or TCP connection) travels as one length-prefixed frame —
//
//	4 bytes  big-endian payload length, including the type byte
//	1 byte   frame type
//	n bytes  payload (a codec message, usually seq-prefixed)
//
// — so the stream stays parseable without any per-message delimiter
// scanning, and a dead peer is always detected as a short read.
const (
	// FrameHello is sent by a worker immediately after connecting; the
	// payload carries the protocol magic and version (EncodeHello).
	FrameHello byte = 1
	// FrameJob carries a u64 job sequence number followed by EncodeJob.
	FrameJob byte = 2
	// FrameResult carries the u64 sequence number it answers followed by
	// EncodeResult.
	FrameResult byte = 3
	// FrameError carries the u64 sequence number it answers followed by
	// an error string: the job failed deterministically on the worker
	// (e.g. unregistered algorithm) and must not be requeued.
	FrameError byte = 4
	// FrameSweepJob carries a u64 sequence number followed by
	// EncodeSweepJob — one Monte-Carlo chunk of a distributed T5 sweep.
	FrameSweepJob byte = 5
	// FrameSweepResult answers a FrameSweepJob: the u64 sequence number
	// followed by EncodeMeasureStats.
	FrameSweepResult byte = 6
	// FrameReplyBatch carries several coalesced replies in one frame —
	// EncodeReplies of (seq, reply type, body) entries, each entry
	// exactly what would have traveled as its own FrameResult /
	// FrameError / FrameSweepResult frame. Workers coalesce small
	// results into one flush per window drain (see dist.Serve); the
	// coordinator settles every entry before freeing window slots.
	FrameReplyBatch byte = 7
	// FramePool is sent by a coordinator right after validating a
	// worker's hello: EncodePoolHint of the per-host execution-pool size
	// this stream should use (the host:port*pool hint of -hosts). It is
	// not seq-prefixed — it configures the stream, not a job — and must
	// precede the first job frame.
	FramePool byte = 8
	// FramePing is a coordinator liveness probe (EncodePing): the
	// coordinator sends it when a connection with jobs in flight has
	// been silent for half its stall deadline, and a worker whose
	// executors are legitimately slow proves the process and the link
	// alive by echoing the payload back as FramePong immediately —
	// bypassing reply coalescing. Not seq-prefixed: it probes the
	// stream, it is not a job.
	FramePing byte = 9
	// FramePong answers FramePing with the ping payload echoed back
	// followed by the stream's WorkerStats (EncodePong, v5). Its
	// load-bearing effect on the coordinator is resetting the
	// connection's stall clock; the stats ride along so a liveness
	// probe doubles as a flight-recorder read (Fleet.Snapshot).
	FramePong byte = 10
	// FrameTraceChunk carries a u64 sequence number followed by
	// EncodeTraceChunk: one bounded run of trace points for the job that
	// seq identifies (wire v6). A worker streams a long trace as chunk
	// frames on the reply stream and closes with a FrameResult whose
	// body is EncodeStreamedResult; the coordinator appends chunks in
	// arrival order — per-job reply order is already guaranteed — and a
	// chunk does not settle the job or free a window slot.
	FrameTraceChunk byte = 11
	// FrameCompress is sent by a coordinator after validating a hello
	// that advertises CapCompress: EncodeCompressHint of the minimum
	// payload size worth compressing. Like FramePool it is not
	// seq-prefixed — it configures the stream — and must precede the
	// first job frame. From the moment each side processes it, frames
	// on the stream may arrive with the compressedBit set on the type
	// byte; it is never itself compressed.
	FrameCompress byte = 12
)

// compressedBit marks a frame whose payload is flate-compressed on the
// type byte (see stream.go). The bit keeps plain frame types below 128
// readable by any peer; a stream that never negotiated compression
// rejects the bit as an unknown frame type instead of misparsing.
const compressedBit byte = 0x80

// CapCompress is the hello capability bit a worker sets to advertise
// that it accepts flate-compressed frames (wire v6). The coordinator
// turns the capability on per connection with FrameCompress; a worker
// that advertised it must accept compressed frames, but either side
// may still send any frame uncompressed (small payloads, incompressible
// payloads).
const CapCompress uint32 = 1 << 0

// MaxFrame bounds a frame payload; traces are capped by TraceCap, so
// real frames are far smaller and anything larger is stream corruption.
const MaxFrame = 1 << 30

// helloMagic identifies the protocol inside the hello payload, so a
// coordinator pointed at the wrong port fails with a clear error
// instead of misparsing whatever service answered.
const helloMagic = "rvdist"

// WriteFrame writes one frame. The frame is assembled into a single
// buffer and written with one Write call.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 0, 5+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)+1))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// frameChunk bounds how much of a frame body ReadFrame commits to in
// one allocation step. A truncation that corrupts the length prefix
// (a peer dying mid-write of the 4-byte header) can declare a body up
// to MaxFrame; reading in bounded chunks makes that fail with a clean
// truncation error after at most one chunk instead of committing a
// gigabyte-sized allocation to a stream that is about to end.
const frameChunk = 1 << 20

// ReadFrame reads one frame. io.EOF is returned untouched when the
// stream ends cleanly between frames (the normal shutdown signal);
// a stream ending mid-frame — inside the header or inside the body —
// is always a wrapped ErrUnexpectedEOF, so a frame torn by a worker
// dying mid-write surfaces as a decode error, never a misparse.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	var body []byte
	if n <= frameChunk {
		body = make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("wire: reading %d-byte frame: %w", n, err)
		}
	} else {
		// A length prefix larger than one chunk is only believed after
		// the first chunk actually arrives: the probe reads into a
		// pooled scratch buffer, so a corrupt header fails with a clean
		// truncation error before the full allocation is committed —
		// and the surviving path costs one allocation for the body
		// instead of a fresh zero-filled temp per chunk.
		probe := chunkScratch.Get().(*[]byte)
		if _, err := io.ReadFull(r, *probe); err != nil {
			chunkScratch.Put(probe)
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("wire: reading %d-byte frame: %w", n, err)
		}
		body = make([]byte, n)
		copy(body, *probe)
		chunkScratch.Put(probe)
		if _, err := io.ReadFull(r, body[frameChunk:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("wire: reading %d-byte frame: %w", n, err)
		}
	}
	return body[0], body[1:], nil
}

// chunkScratch pools the probe buffers ReadFrame uses for bodies larger
// than one chunk.
var chunkScratch = sync.Pool{New: func() any {
	b := make([]byte, frameChunk)
	return &b
}}

// EncodeHello builds the hello payload a worker sends on connect: the
// protocol magic, the wire version, and the capability bitmask (v6) —
// CapCompress is the only bit defined today.
func EncodeHello(caps uint32) []byte {
	b := appendStr(nil, helloMagic)
	b = appendU32(b, Version)
	return appendU32(b, caps)
}

// CheckHello validates a hello payload against this build's protocol
// and returns the peer's capability bitmask. Magic and version are
// checked before the capability word is even looked at, so a v5 hello
// (which has no capability word) fails with a version message, not a
// truncation message.
func CheckHello(payload []byte) (uint32, error) {
	d := &dec{b: payload}
	magic := d.str()
	ver := d.u32()
	if d.err != nil {
		return 0, d.finish("hello")
	}
	if magic != helloMagic {
		return 0, fmt.Errorf("wire: peer is not a rendezvous worker (magic %q)", magic)
	}
	if ver != Version {
		return 0, fmt.Errorf("wire: worker speaks wire version %d, this build speaks %d", ver, Version)
	}
	caps := d.u32()
	if err := d.finish("hello"); err != nil {
		return 0, err
	}
	return caps, nil
}

// EncodeCompressHint builds the FrameCompress payload: the minimum
// frame payload size, in bytes, the coordinator considers worth
// compressing on this stream. Both sides apply the same threshold so
// neither wastes cycles deflating frames the other would rather have
// raw.
func EncodeCompressHint(minSize int) []byte {
	return appendU32([]byte{Version}, uint32(minSize))
}

// DecodeCompressHint inverts EncodeCompressHint.
func DecodeCompressHint(payload []byte) (int, error) {
	d := &dec{b: payload}
	d.version()
	minSize := d.u32()
	if err := d.finish("compress hint"); err != nil {
		return 0, err
	}
	if minSize == 0 || minSize > MaxFrame {
		return 0, fmt.Errorf("wire: compress threshold %d out of range", minSize)
	}
	return int(minSize), nil
}

// AppendSeq prefixes a payload with the u64 job sequence number.
func AppendSeq(seq uint64, payload []byte) []byte {
	return append(appendU64(make([]byte, 0, 8+len(payload)), seq), payload...)
}

// DispatchSeq packs a dispatch id and a task index into one wire
// sequence number (wire v7): dispatch in the high 32 bits, task index
// in the low 32. Workers echo sequence numbers verbatim, so the
// packing is invisible to them; the coordinator routes each reply to
// its dispatch by splitting the seq back apart. Two concurrent
// dispatches' task 0 therefore never collide on a shared connection.
func DispatchSeq(dispatch, k uint32) uint64 {
	return uint64(dispatch)<<32 | uint64(k)
}

// SplitDispatchSeq inverts DispatchSeq.
func SplitDispatchSeq(seq uint64) (dispatch, k uint32) {
	return uint32(seq >> 32), uint32(seq)
}

// EncodePoolHint builds the FramePool payload: the execution-pool size
// a coordinator asks this stream's worker to use (a host:port*pool
// hint, overriding the jobs' forwarded Parallelism — see dist.Serve).
func EncodePoolHint(pool int) []byte {
	return appendU32([]byte{Version}, uint32(pool))
}

// EncodePing builds a FramePing payload: a version byte plus the
// nonce identifying the probe. The worker echoes the payload verbatim
// as FramePong; the coordinator only needs the echo's arrival (any
// frame resets the stall clock), so the nonce exists for debugging,
// not correlation.
func EncodePing(nonce uint64) []byte {
	return appendU64([]byte{Version}, nonce)
}

// DecodePing inverts EncodePing.
func DecodePing(payload []byte) (uint64, error) {
	d := &dec{b: payload}
	d.version()
	nonce := d.u64()
	if err := d.finish("ping"); err != nil {
		return 0, err
	}
	return nonce, nil
}

// WorkerStats is the compact per-stream flight-recorder payload a
// worker appends to every FramePong echo (wire v5): the coordinator
// probes a connection's liveness and gets the worker's view of that
// stream for free, which is what Fleet.Snapshot surfaces as the
// remote half of its report. Counters are per stream, monotone for
// the stream's life; gauges (InFlight, Pool) are instantaneous.
type WorkerStats struct {
	Served   uint64 // job frames received on the stream
	Executed uint64 // result replies produced (executions finished)
	Errors   uint64 // error replies produced (decode failures, panics)
	Pings    uint64 // liveness pings echoed
	InFlight uint32 // jobs executing or queued right now
	Pool     uint32 // resolved in-worker execution pool size
}

func appendWorkerStats(b []byte, ws WorkerStats) []byte {
	b = appendU64(b, ws.Served)
	b = appendU64(b, ws.Executed)
	b = appendU64(b, ws.Errors)
	b = appendU64(b, ws.Pings)
	b = appendU32(b, ws.InFlight)
	return appendU32(b, ws.Pool)
}

func (d *dec) workerStats() WorkerStats {
	return WorkerStats{
		Served:   d.u64(),
		Executed: d.u64(),
		Errors:   d.u64(),
		Pings:    d.u64(),
		InFlight: d.u32(),
		Pool:     d.u32(),
	}
}

// EncodePong builds the FramePong payload: the probe's ping payload
// echoed back (version byte + nonce) followed by the stream's
// WorkerStats.
func EncodePong(ping []byte, ws WorkerStats) []byte {
	b := make([]byte, 0, len(ping)+40)
	b = append(b, ping...)
	return appendWorkerStats(b, ws)
}

// DecodePong inverts EncodePong, returning the echoed nonce and the
// worker's stream stats.
func DecodePong(payload []byte) (uint64, WorkerStats, error) {
	d := &dec{b: payload}
	d.version()
	nonce := d.u64()
	ws := d.workerStats()
	if err := d.finish("pong"); err != nil {
		return 0, WorkerStats{}, err
	}
	return nonce, ws, nil
}

// DecodePoolHint inverts EncodePoolHint.
func DecodePoolHint(payload []byte) (int, error) {
	d := &dec{b: payload}
	d.version()
	pool := d.u32()
	if err := d.finish("pool hint"); err != nil {
		return 0, err
	}
	if pool == 0 || pool > 1<<20 {
		return 0, fmt.Errorf("wire: pool hint %d out of range", pool)
	}
	return int(pool), nil
}

// Reply is one coalesced reply inside a FrameReplyBatch frame: the
// sequence number it answers, the frame type it would have traveled as
// on its own (FrameResult, FrameError, FrameSweepResult), and that
// frame's body.
type Reply struct {
	Seq  uint64
	Typ  byte
	Body []byte
}

// AppendReplies appends a FrameReplyBatch payload to b — the coalesced
// replies in the order the worker finished them — so the worker's
// flush path can encode into a pooled buffer.
func AppendReplies(b []byte, replies []Reply) []byte {
	b = appendU32(b, uint32(len(replies)))
	for _, r := range replies {
		b = appendU64(b, r.Seq)
		b = append(b, r.Typ)
		b = appendU32(b, uint32(len(r.Body)))
		b = append(b, r.Body...)
	}
	return b
}

// EncodeReplies builds a FrameReplyBatch payload from the coalesced
// replies, in the order the worker finished them.
func EncodeReplies(replies []Reply) []byte {
	n := 4
	for _, r := range replies {
		n += 13 + len(r.Body)
	}
	return AppendReplies(make([]byte, 0, n), replies)
}

// DecodeReplies inverts EncodeReplies. Entry bodies alias the payload
// buffer; callers that keep them must copy.
func DecodeReplies(payload []byte) ([]Reply, error) {
	d := &dec{b: payload}
	n := d.u32()
	if n == 0 || uint64(n) > uint64(len(payload))/13 {
		return nil, fmt.Errorf("wire: reply batch of %d entries in a %d-byte payload", n, len(payload))
	}
	replies := make([]Reply, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		var r Reply
		r.Seq = d.u64()
		r.Typ = d.u8()
		bn := d.u32()
		if bn > maxSlice {
			d.fail("reply body length %d exceeds limit", bn)
			break
		}
		r.Body = d.take(int(bn))
		replies = append(replies, r)
	}
	if err := d.finish("reply batch"); err != nil {
		return nil, err
	}
	return replies, nil
}

// SplitSeq removes the u64 sequence prefix of a job/result/error
// payload.
func SplitSeq(payload []byte) (seq uint64, rest []byte, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("wire: %d-byte payload has no sequence prefix", len(payload))
	}
	return binary.BigEndian.Uint64(payload[:8]), payload[8:], nil
}
