package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dd"
	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/measure"
	"repro/internal/prog"
	"repro/internal/sim"
)

// Field-count guards: the codec enumerates struct fields by hand, so a
// new field would silently not cross the wire. These tests fail the
// moment a serialized struct changes shape — update the codec AND bump
// Version, then fix the expected count.
func TestCodecCoversAllFields(t *testing.T) {
	for _, tc := range []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"inst.Instance", reflect.TypeOf(inst.Instance{}), 8},
		{"sim.Settings", reflect.TypeOf(sim.Settings{}), 15},
		{"sim.Result", reflect.TypeOf(sim.Result{}), 11},
		{"sim.TracePoint", reflect.TypeOf(sim.TracePoint{}), 2},
		{"wire.SweepJob", reflect.TypeOf(SweepJob{}), 5},
		{"measure.Box", reflect.TypeOf(measure.Box{}), 8},
		{"measure.Stats", reflect.TypeOf(measure.Stats{}), 7},
		{"wire.WorkerStats", reflect.TypeOf(WorkerStats{}), 6},
	} {
		if got := tc.typ.NumField(); got != tc.want {
			t.Errorf("%s has %d fields, codec covers %d — extend the codec, bump wire.Version, update this test",
				tc.name, got, tc.want)
		}
	}
}

func testInstance() inst.Instance {
	return inst.Instance{R: 0.8, X: 1.2, Y: -0.5, Phi: 1.0, Tau: 1.5, V: 2, T: 0.5, Chi: -1}
}

func testSettings() sim.Settings {
	s := sim.DefaultSettings()
	s.TraceCap = 77
	s.Parallelism = 3
	s.NoWaitCoalesce = true
	s.Hosts = "a:1,b:2"
	s.WorkerProcs = 2
	s.WorkerCmd = "./rvworker -v"
	s.Window = 4
	s.MaxWindow = 16
	s.StallTimeout = 1500 * time.Millisecond
	s.MaxJobRequeues = 3
	s.Compress = true
	return s
}

func testResult() sim.Result {
	return sim.Result{
		Met:        true,
		Reason:     sim.ReasonMet,
		MeetTime:   dd.T{Hi: math.Ldexp(1, 57), Lo: -3.5e-12},
		MinGap:     0.25,
		MinGapTime: dd.T{Hi: 17.25, Lo: 1e-19},
		EndA:       geom.V(1.25, -2.5),
		EndB:       geom.V(math.Copysign(0, -1), 3),
		Segments:   123456789,
		EndTime:    dd.T{Hi: math.Ldexp(1, 57), Lo: -3.5e-12},
		TraceA:     []sim.TracePoint{{T: 0, Pos: geom.V(0, 0)}, {T: 1.5, Pos: geom.V(0.1, -0.2)}},
		TraceB:     nil,
	}
}

// bitsEqual compares two values through their canonical encodings —
// the codec itself is the byte-identity witness, so NaN payloads and
// signed zeros are compared exactly.
func TestInstanceRoundTrip(t *testing.T) {
	in := testInstance()
	got, err := DecodeInstance(EncodeInstance(in))
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("round trip changed instance: %+v vs %+v", got, in)
	}
	// Exotic float bits survive: NaN payload, -0, ±Inf.
	in.X = math.Float64frombits(0x7ff8000000abcdef)
	in.Y = math.Copysign(0, -1)
	in.T = math.Inf(1)
	got, err = DecodeInstance(EncodeInstance(in))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeInstance(got), EncodeInstance(in)) {
		t.Fatal("exotic float bits did not round-trip exactly")
	}
}

func TestSettingsRoundTrip(t *testing.T) {
	s := testSettings()
	got, err := DecodeSettings(EncodeSettings(s))
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip changed settings: %+v vs %+v", got, s)
	}
}

func TestJobRoundTrip(t *testing.T) {
	j := Job{In: testInstance(), Alg: "AlmostUniversalRV(compact)", Set: testSettings()}
	got, err := DecodeJob(EncodeJob(j))
	if err != nil {
		t.Fatal(err)
	}
	if got != j {
		t.Fatalf("round trip changed job: %+v vs %+v", got, j)
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := testResult()
	got, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip changed result:\n%+v\nvs\n%+v", got, r)
	}
	if !bytes.Equal(EncodeResult(got), EncodeResult(r)) {
		t.Fatal("re-encoding differs: codec is not canonical")
	}
	// A nil trace stays nil (not []) so DeepEqual-style byte identity
	// with an in-process result holds.
	if got.TraceB != nil {
		t.Fatal("nil trace decoded to non-nil")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	good := EncodeResult(testResult())
	if _, err := DecodeResult(good[:len(good)-3]); err == nil {
		t.Error("truncated message accepted")
	}
	if _, err := DecodeResult(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = Version + 1
	if _, err := DecodeResult(bad); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := DecodeJob(nil); err == nil {
		t.Error("empty job accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendSeq(42, EncodeJob(Job{In: testInstance(), Alg: "x", Set: testSettings()}))
	if err := WriteFrame(&buf, FrameJob, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, FrameHello, EncodeHello(CapCompress)); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != FrameJob || !bytes.Equal(got, payload) {
		t.Fatalf("first frame: typ %d err %v equal %v", typ, err, bytes.Equal(got, payload))
	}
	seq, rest, err := SplitSeq(got)
	if err != nil || seq != 42 {
		t.Fatalf("seq %d err %v", seq, err)
	}
	if _, err := DecodeJob(rest); err != nil {
		t.Fatal(err)
	}
	typ, got, err = ReadFrame(&buf)
	if err != nil || typ != FrameHello {
		t.Fatalf("second frame: typ %d err %v", typ, err)
	}
	caps, err := CheckHello(got)
	if err != nil {
		t.Fatal(err)
	}
	if caps != CapCompress {
		t.Fatalf("hello capabilities = %#x, want CapCompress", caps)
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestPoolHintRoundTrip(t *testing.T) {
	for _, pool := range []int{1, 4, 1 << 20} {
		got, err := DecodePoolHint(EncodePoolHint(pool))
		if err != nil {
			t.Fatalf("pool %d: %v", pool, err)
		}
		if got != pool {
			t.Fatalf("pool hint round trip changed %d to %d", pool, got)
		}
	}
	if _, err := DecodePoolHint(EncodePoolHint(0)); err == nil {
		t.Error("zero pool hint accepted")
	}
	if _, err := DecodePoolHint([]byte{Version, 0, 0}); err == nil {
		t.Error("truncated pool hint accepted")
	}
	if _, err := DecodePoolHint(append(EncodePoolHint(2), 9)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestRepliesRoundTrip(t *testing.T) {
	replies := []Reply{
		{Seq: 7, Typ: FrameResult, Body: EncodeResult(testResult())},
		{Seq: 2, Typ: FrameError, Body: []byte("boom")},
		{Seq: 9, Typ: FrameSweepResult, Body: nil},
	}
	got, err := DecodeReplies(EncodeReplies(replies))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(replies) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(replies))
	}
	for i, r := range got {
		if r.Seq != replies[i].Seq || r.Typ != replies[i].Typ || !bytes.Equal(r.Body, replies[i].Body) {
			t.Fatalf("entry %d changed: %+v vs %+v", i, r, replies[i])
		}
	}
	if !bytes.Equal(EncodeReplies(got), EncodeReplies(replies)) {
		t.Fatal("re-encoding differs: reply batch codec is not canonical")
	}
}

func TestRepliesRejectBadInput(t *testing.T) {
	good := EncodeReplies([]Reply{{Seq: 1, Typ: FrameResult, Body: []byte("x")}})
	if _, err := DecodeReplies(good[:len(good)-1]); err == nil {
		t.Error("truncated reply batch accepted")
	}
	if _, err := DecodeReplies(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodeReplies([]byte{0, 0, 0, 0}); err == nil {
		t.Error("empty reply batch accepted")
	}
	// An absurd count must be rejected before allocation.
	if _, err := DecodeReplies([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("oversized reply count accepted")
	}
}

func TestCheckHelloRejectsStrangers(t *testing.T) {
	if _, err := CheckHello(append(appendU32(appendStr(nil, "http/1.1"), uint32(Version)), 0, 0, 0, 0)); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, err := CheckHello(append(appendU32(appendStr(nil, helloMagic), uint32(Version+7)), 0, 0, 0, 0)); err == nil {
		t.Error("wrong version accepted")
	}
	// A v5-era hello has no capability word: the version is checked
	// before the capabilities are decoded, so a mixed-version fleet is
	// refused with a version message, not a truncation complaint.
	v5 := appendU32(appendStr(nil, helloMagic), uint32(Version-1))
	if _, err := CheckHello(v5); err == nil {
		t.Error("v5 hello accepted")
	} else if !bytes.Contains([]byte(err.Error()), []byte("version")) {
		t.Errorf("v5 hello refused with %q, want a version mismatch message", err)
	}
	// Trailing bytes after the capability word are a framing error.
	if _, err := CheckHello(append(EncodeHello(0), 0)); err == nil {
		t.Error("hello with trailing bytes accepted")
	}
}

func TestHelloCapabilitiesRoundTrip(t *testing.T) {
	for _, caps := range []uint32{0, CapCompress, 0xffffffff} {
		got, err := CheckHello(EncodeHello(caps))
		if err != nil {
			t.Fatalf("caps %#x: %v", caps, err)
		}
		if got != caps {
			t.Fatalf("hello round trip changed caps %#x to %#x", caps, got)
		}
	}
}

// TestHelloRefusesV6 pins the v7 refusal of a v6 peer: a v6
// coordinator would treat the whole u64 seq as one dispatch's task
// index, colliding concurrent dispatches' sequence spaces, so the
// hello must fail with a version message (not a truncation or
// capability error).
func TestHelloRefusesV6(t *testing.T) {
	hello := appendStr(nil, "rvdist")
	hello = appendU32(hello, 6) // last pre-scheduler version
	hello = appendU32(hello, CapCompress)
	_, err := CheckHello(hello)
	if err == nil {
		t.Fatal("v6 hello accepted by a v7 build")
	}
	want := fmt.Sprintf("worker speaks wire version 6, this build speaks %d", Version)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("v6 hello error %q, want it to contain %q", err, want)
	}
}

// TestDispatchSeq pins the v7 seq packing round trip and the layout
// itself (dispatch high, task low) so a re-ordering of the halves
// cannot slip through as a matched encode/decode pair.
func TestDispatchSeq(t *testing.T) {
	cases := []struct{ d, k uint32 }{
		{0, 0}, {1, 0}, {0, 1}, {7, 42},
		{0xffffffff, 0}, {0, 0xffffffff}, {0xffffffff, 0xffffffff},
	}
	for _, c := range cases {
		seq := DispatchSeq(c.d, c.k)
		if want := uint64(c.d)<<32 | uint64(c.k); seq != want {
			t.Fatalf("DispatchSeq(%d, %d) = %#x, want %#x", c.d, c.k, seq, want)
		}
		d, k := SplitDispatchSeq(seq)
		if d != c.d || k != c.k {
			t.Fatalf("SplitDispatchSeq(%#x) = (%d, %d), want (%d, %d)", seq, d, k, c.d, c.k)
		}
	}
}

func TestFrameRejectsCorruptLength(t *testing.T) {
	// Length zero (no type byte) and an absurd length must both error
	// rather than allocate or misparse.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 1})); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated mid-frame is ErrUnexpectedEOF, not clean EOF.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 5, 1, 2})); err == nil || err == io.EOF {
		t.Errorf("mid-frame truncation returned %v", err)
	}
}

// TestReadFrameTornFrames pins the decode error for every way a frame
// can be torn: a peer dying after the length prefix, mid-header, or
// mid-payload must surface as a clean wrapped ErrUnexpectedEOF — the
// signal the dispatch engine's death path keys on — never as a clean
// EOF (which would read as a graceful close) and never as a hang.
func TestReadFrameTornFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResult, AppendSeq(3, EncodeResult(testResult()))); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{1, 3, 4, 5, len(whole) / 2, len(whole) - 1} {
		_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if err == nil || err == io.EOF {
			t.Errorf("frame cut at byte %d/%d returned %v, want a wrapped unexpected-EOF error", cut, len(whole), err)
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("frame cut at byte %d/%d returned %v, want errors.Is(..., io.ErrUnexpectedEOF)", cut, len(whole), err)
		}
	}
	// A cut at byte 0 is the one graceful spot: nothing of the frame
	// arrived, so it is a clean EOF (the peer closed between frames).
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream returned %v, want io.EOF", err)
	}
}

// TestReadFrameLargePayload crosses the bounded-chunk boundary of
// ReadFrame's allocation strategy: a payload larger than one internal
// chunk must still arrive intact, and the same frame truncated
// mid-chunk must fail cleanly instead of blocking or over-allocating.
func TestReadFrameLargePayload(t *testing.T) {
	payload := make([]byte, (1<<20)+12345) // one full chunk plus a partial
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	whole := append([]byte(nil), buf.Bytes()...)
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != FrameResult {
		t.Fatalf("typ %d err %v", typ, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-chunk payload did not survive ReadFrame")
	}
	if _, _, err := ReadFrame(bytes.NewReader(whole[:1<<20])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-chunk truncation returned %v, want errors.Is(..., io.ErrUnexpectedEOF)", err)
	}
}

// TestPingRoundTrip covers the liveness probe frames (wire v4): the
// nonce survives the round trip and malformed pings are rejected.
func TestPingRoundTrip(t *testing.T) {
	for _, nonce := range []uint64{0, 1, 1<<64 - 1} {
		got, err := DecodePing(EncodePing(nonce))
		if err != nil {
			t.Fatalf("nonce %d: %v", nonce, err)
		}
		if got != nonce {
			t.Fatalf("ping round trip changed nonce %d to %d", nonce, got)
		}
	}
	if _, err := DecodePing([]byte{Version, 1, 2}); err == nil {
		t.Error("truncated ping accepted")
	}
	if _, err := DecodePing(append(EncodePing(7), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodePing(nil); err == nil {
		t.Error("empty ping accepted")
	}
}

// TestPingPongRoundTrip covers the v5 pong: the echoed nonce and the
// piggybacked WorkerStats survive the round trip, and a v4-shaped
// pong (bare ping echo, no stats) is rejected as truncated.
func TestPingPongRoundTrip(t *testing.T) {
	ws := WorkerStats{
		Served: 12, Executed: 9, Errors: 3, Pings: 2,
		InFlight: 4, Pool: 8,
	}
	nonce, got, err := DecodePong(EncodePong(EncodePing(42), ws))
	if err != nil {
		t.Fatal(err)
	}
	if nonce != 42 || got != ws {
		t.Fatalf("pong round trip: nonce %d stats %+v (want 42, %+v)", nonce, got, ws)
	}
	if _, _, err := DecodePong(EncodePing(42)); err == nil {
		t.Error("v4-shaped pong (no stats) accepted")
	}
	if _, _, err := DecodePong(append(EncodePong(EncodePing(1), ws), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, _, err := DecodePong(nil); err == nil {
		t.Error("empty pong accepted")
	}
}

// FuzzReadFrame feeds arbitrary byte streams (seeded with valid,
// truncated, and length-corrupted frames) to the frame reader: it must
// either return a frame or an error — never panic, never misattribute
// a torn frame to a clean EOF, and never let a corrupt length prefix
// drive an absurd allocation (the bounded-chunk read turns those into
// a clean unexpected-EOF error instead).
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, FrameJob, AppendSeq(1, EncodeJob(Job{In: testInstance(), Alg: "CGKK", Set: testSettings()})))
	whole := good.Bytes()
	f.Add(whole)                                       // a valid frame
	f.Add(whole[:len(whole)-2])                        // torn mid-payload
	f.Add(whole[:3])                                   // torn mid-header
	f.Add([]byte{0, 0, 0, 0})                          // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})     // absurd length
	f.Add([]byte{0x40, 0, 0, 0, 9})                    // 1 GiB claim, 1 byte present
	f.Add(append([]byte{0, 0, 0, 2, FramePong}, 0xAB)) // small valid frame
	// Compressed frames (wire v6): package ReadFrame forwards them
	// opaquely — the fuzz target must stay panic-free and canonical on
	// them too, intact and torn.
	var comp bytes.Buffer
	cw := NewFrameWriter(&comp)
	cw.EnableCompression(1)
	cw.WriteFrame(FrameResult, AppendSeq(2, EncodeResult(testResult())))
	f.Add(append([]byte(nil), comp.Bytes()...))
	f.Add(comp.Bytes()[:comp.Len()-3])
	f.Add(append([]byte{0, 0, 0, 6, FrameResult | 0x80}, 0, 0, 0, 1, 0)) // corrupt deflate body
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if len(data) == 0 && err != io.EOF {
				t.Fatalf("empty stream: %v, want io.EOF", err)
			}
			return
		}
		// A successful read must be exactly reproducible from its parts.
		var re bytes.Buffer
		if werr := WriteFrame(&re, typ, payload); werr != nil {
			t.Fatalf("decoded frame does not re-encode: %v", werr)
		}
		if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
			t.Fatal("frame decode/encode not canonical")
		}
	})
}

func TestRegistry(t *testing.T) {
	name := "test-registry-alg"
	RegisterAlgorithm(name, func(inst.Instance) prog.Program { return prog.Empty() })
	if !Registered(name) {
		t.Fatal("registered algorithm not found")
	}
	mk, ok := Algorithm(name)
	if !ok || mk == nil {
		t.Fatal("Algorithm lookup failed")
	}
	if Registered("no-such-algorithm") {
		t.Fatal("phantom registration")
	}
	found := false
	for _, n := range Algorithms() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatal("Algorithms() misses registered name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterAlgorithm(name, func(inst.Instance) prog.Program { return prog.Empty() })
}

func testSweepJob() SweepJob {
	return SweepJob{
		Seed: measure.ChunkSeed(5, 3),
		N:    1 << 16,
		Par:  4,
		Eps:  []float64{0.25, 0.35, 0.5},
		Box:  measure.DefaultBox(),
	}
}

func TestSweepJobRoundTrip(t *testing.T) {
	j := testSweepJob()
	got, err := DecodeSweepJob(EncodeSweepJob(j))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, j) {
		t.Fatalf("round trip changed sweep job:\n%+v\nvs\n%+v", got, j)
	}
	if !bytes.Equal(EncodeSweepJob(got), EncodeSweepJob(j)) {
		t.Fatal("re-encoding differs: sweep job codec is not canonical")
	}
}

func TestMeasureStatsRoundTrip(t *testing.T) {
	j := testSweepJob()
	s := measure.Sweep(2000, j.Eps, j.Box, j.Seed)
	got, err := DecodeMeasureStats(EncodeMeasureStats(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip changed stats:\n%+v\nvs\n%+v", got, s)
	}
	// Empty hit maps stay non-nil (as measure.Sweep returns them).
	empty := measure.Sweep(10, nil, j.Box, 1)
	got, err = DecodeMeasureStats(EncodeMeasureStats(empty))
	if err != nil {
		t.Fatal(err)
	}
	if got.NearS1ByEps == nil || got.NearS2ByEps == nil {
		t.Fatal("empty hit map decoded to nil")
	}
}

func TestMeasureStatsRejectsNonCanonicalMap(t *testing.T) {
	s := measure.Stats{
		Samples:     10,
		NearS1ByEps: map[float64]int{0.25: 1, 0.5: 2},
		NearS2ByEps: map[float64]int{},
	}
	enc := EncodeMeasureStats(s)
	// Swap the two sorted entries: same set, different byte order — a
	// canonical decoder must reject it.
	// Layout: version(1) + 4×i64(32) + u32 len + [f64 k, i64 v]×2 ...
	off := 1 + 32 + 4
	swapped := append([]byte(nil), enc...)
	copy(swapped[off:off+16], enc[off+16:off+32])
	copy(swapped[off+16:off+32], enc[off:off+16])
	if _, err := DecodeMeasureStats(swapped); err == nil {
		t.Fatal("out-of-order count-map entries accepted")
	}
	// A NaN key would insert into the map but never be found again
	// (NaN != NaN), so re-encoding could not reproduce the bytes. Put it
	// in the last entry: NaN bit patterns are large, so the
	// strictly-increasing guard alone would not catch it there.
	nan := append([]byte(nil), enc...)
	binary.BigEndian.PutUint64(nan[off+16:], 0x7ff8000000000001)
	if _, err := DecodeMeasureStats(nan); err == nil {
		t.Fatal("NaN count-map key accepted")
	}
}

// FuzzSweepRoundTrip exercises decode→encode canonicality on the sweep
// messages: whatever decodes must re-encode to the same bytes.
func FuzzSweepRoundTrip(f *testing.F) {
	f.Add(EncodeSweepJob(testSweepJob()), true)
	f.Add(EncodeMeasureStats(measure.Sweep(500, []float64{0.25}, measure.DefaultBox(), 3)), false)
	f.Fuzz(func(t *testing.T, data []byte, asJob bool) {
		if asJob {
			j, err := DecodeSweepJob(data)
			if err != nil {
				return
			}
			if re := EncodeSweepJob(j); !bytes.Equal(re, data) {
				t.Fatalf("sweep job decode/encode not canonical:\nin  %x\nout %x", data, re)
			}
			return
		}
		s, err := DecodeMeasureStats(data)
		if err != nil {
			return
		}
		if re := EncodeMeasureStats(s); !bytes.Equal(re, data) {
			t.Fatalf("stats decode/encode not canonical:\nin  %x\nout %x", data, re)
		}
	})
}

// FuzzJobRoundTrip exercises decode→encode canonicality on arbitrary
// job fields: whatever decodes must re-encode to the same bytes.
func FuzzJobRoundTrip(f *testing.F) {
	f.Add(EncodeJob(Job{In: testInstance(), Alg: "CGKK", Set: testSettings()}))
	f.Add([]byte{Version})
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeJob(data)
		if err != nil {
			return
		}
		re := EncodeJob(j)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\nin  %x\nout %x", data, re)
		}
	})
}

// FuzzResultRoundTrip does the same for results (covers traces).
func FuzzResultRoundTrip(f *testing.F) {
	f.Add(EncodeResult(testResult()))
	f.Add(EncodeResult(sim.Result{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		re := EncodeResult(r)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\nin  %x\nout %x", data, re)
		}
	})
}

// FuzzFieldRoundTrip fuzzes structured field values through an
// encode→decode round trip (the inverse direction of the canonicality
// fuzz above): arbitrary float bit patterns and strings must survive
// exactly.
func FuzzFieldRoundTrip(f *testing.F) {
	f.Add(uint64(0x7ff8000000000001), uint64(1), int64(-5), "CGKK")
	f.Fuzz(func(t *testing.T, aBits, bBits uint64, n int64, s string) {
		a, b := math.Float64frombits(aBits), math.Float64frombits(bBits)
		j := Job{
			In:  inst.Instance{R: a, X: b, Y: a, Phi: b, Tau: a, V: b, T: a, Chi: int(n)},
			Alg: s,
			Set: sim.Settings{MaxTime: b, MaxSegments: int(n), SightSlack: a, Hosts: s, WorkerCmd: s},
		}
		got, err := DecodeJob(EncodeJob(j))
		if err != nil {
			t.Fatalf("self-encoded job rejected: %v", err)
		}
		if !bytes.Equal(EncodeJob(got), EncodeJob(j)) {
			t.Fatal("field values did not round-trip bit-exactly")
		}
	})
}
