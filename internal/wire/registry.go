package wire

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/inst"
	"repro/internal/prog"
)

// The algorithm registry. Programs are closures, so an algorithm
// crosses a process boundary as a stable name; the receiving side
// rebuilds the program with the registered constructor. Registration
// happens in init functions (internal/dist registers the standard
// algorithms), so any binary that links the worker loop can execute any
// standard job.
var (
	regMu sync.RWMutex
	reg   = map[string]func(inst.Instance) prog.Program{}
)

// RegisterAlgorithm makes the named algorithm constructible on this
// side of the wire. The constructor must be a pure function of the
// instance and must produce exactly the program the same name produces
// everywhere else — the distribution determinism guarantee rides on
// every process agreeing on what a name means. Registering a name twice
// panics (two meanings for one name is precisely the bug the panic
// surfaces).
func RegisterAlgorithm(name string, mk func(inst.Instance) prog.Program) {
	if name == "" || mk == nil {
		panic("wire: RegisterAlgorithm with empty name or nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("wire: algorithm %q registered twice", name))
	}
	reg[name] = mk
}

// Algorithm returns the registered program constructor for the name.
func Algorithm(name string) (func(inst.Instance) prog.Program, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	mk, ok := reg[name]
	return mk, ok
}

// Registered reports whether the name has a registered constructor —
// the gate for giving a batch job a wire form.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := reg[name]
	return ok
}

// Algorithms returns the sorted registered names (diagnostics: the
// worker binary lists them with -list).
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
