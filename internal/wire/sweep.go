package wire

import (
	"math"
	"sort"

	"repro/internal/measure"
)

// Sweep messages: the T5 Monte-Carlo sweep distributes by shipping
// chunk descriptors to workers and collecting per-chunk counts back.
// A chunk is self-contained — sample count, pre-derived RNG seed
// (measure.ChunkSeed applied by the coordinator), the ε ladder, and
// the sampling box — so the worker runs a plain measure.Sweep with no
// knowledge of the chunk structure, and the coordinator merges the
// returned Stats in chunk order exactly as measure.SweepParallel does.
// Both sides computing pure functions of bit-exact inputs is what
// makes the distributed sweep byte-identical to the in-process one.

// SweepJob describes one Monte-Carlo chunk of a distributed T5 sweep.
// Par rides along as the in-worker pool-size hint (the worker pool
// executes chunks concurrently; chunk results do not depend on it).
type SweepJob struct {
	Seed int64
	N    int
	Par  int
	Eps  []float64
	Box  measure.Box
}

func appendBox(b []byte, box measure.Box) []byte {
	b = appendF64(b, box.RMin)
	b = appendF64(b, box.RMax)
	b = appendF64(b, box.XYMax)
	b = appendF64(b, box.TauMin)
	b = appendF64(b, box.TauMax)
	b = appendF64(b, box.VMin)
	b = appendF64(b, box.VMax)
	return appendF64(b, box.TMax)
}

func (d *dec) box() measure.Box {
	var box measure.Box
	box.RMin = d.f64()
	box.RMax = d.f64()
	box.XYMax = d.f64()
	box.TauMin = d.f64()
	box.TauMax = d.f64()
	box.VMin = d.f64()
	box.VMax = d.f64()
	box.TMax = d.f64()
	return box
}

// EncodeSweepJob serializes the chunk descriptor.
func EncodeSweepJob(j SweepJob) []byte {
	b := append([]byte(nil), Version)
	b = appendI64(b, j.Seed)
	b = appendI64(b, int64(j.N))
	b = appendI64(b, int64(j.Par))
	b = appendU32(b, uint32(len(j.Eps)))
	for _, e := range j.Eps {
		b = appendF64(b, e)
	}
	return appendBox(b, j.Box)
}

// DecodeSweepJob inverts EncodeSweepJob.
func DecodeSweepJob(b []byte) (SweepJob, error) {
	d := &dec{b: b}
	d.version()
	var j SweepJob
	j.Seed = d.i64()
	j.N = int(d.i64())
	j.Par = int(d.i64())
	n := d.u32()
	if n > maxSlice/8 {
		d.fail("epsilon list length %d exceeds limit", n)
	} else if n > 0 {
		j.Eps = make([]float64, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			j.Eps = append(j.Eps, d.f64())
		}
		if d.err != nil {
			j.Eps = nil
		}
	}
	j.Box = d.box()
	return j, d.finish("sweep job")
}

// appendEpsCounts serializes a hit-count map canonically: entries
// sorted by the key's IEEE-754 bit pattern, so one map has exactly one
// byte sequence. (measure.Sweep only ever stores entries for ε values
// that were hit, so presence/absence round-trips too.)
func appendEpsCounts(b []byte, m map[float64]int) []byte {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return math.Float64bits(keys[i]) < math.Float64bits(keys[j])
	})
	b = appendU32(b, uint32(len(keys)))
	for _, k := range keys {
		b = appendF64(b, k)
		b = appendI64(b, int64(m[k]))
	}
	return b
}

func (d *dec) epsCounts() map[float64]int {
	n := d.u32()
	if n > maxSlice/16 {
		d.fail("count map length %d exceeds limit", n)
		return nil
	}
	// Decode to a non-nil map even when empty: measure.Sweep always
	// returns initialized maps, and a decoded Stats must be
	// indistinguishable from one computed in-process.
	m := make(map[float64]int, n)
	var prev uint64
	for i := uint32(0); i < n && d.err == nil; i++ {
		k := d.f64()
		bits := math.Float64bits(k)
		if i > 0 && bits <= prev {
			d.fail("count map keys not strictly increasing (non-canonical)")
			return nil
		}
		// A NaN key can be inserted into a Go map but never found again
		// (NaN != NaN), so such a message could not re-encode to itself —
		// and no sweep ever produces one (ε values are real).
		if k != k {
			d.fail("count map key is NaN (non-canonical)")
			return nil
		}
		prev = bits
		m[k] = int(d.i64())
		// Distinct bit patterns can still collide as map keys (+0 == -0):
		// such a message cannot re-encode to itself, so reject it.
		if len(m) != int(i)+1 {
			d.fail("count map keys collide (non-canonical)")
			return nil
		}
	}
	if d.err != nil {
		return nil
	}
	return m
}

// EncodeMeasureStats serializes one chunk's sweep counts. FeasibleShare
// crosses as its exact bits for fidelity even though merges recompute
// it from the totals.
func EncodeMeasureStats(s measure.Stats) []byte {
	b := append([]byte(nil), Version)
	b = appendI64(b, int64(s.Samples))
	b = appendI64(b, int64(s.Feasible))
	b = appendI64(b, int64(s.ExactS1))
	b = appendI64(b, int64(s.ExactS2))
	b = appendEpsCounts(b, s.NearS1ByEps)
	b = appendEpsCounts(b, s.NearS2ByEps)
	return appendF64(b, s.FeasibleShare)
}

// DecodeMeasureStats inverts EncodeMeasureStats.
func DecodeMeasureStats(b []byte) (measure.Stats, error) {
	d := &dec{b: b}
	d.version()
	var s measure.Stats
	s.Samples = int(d.i64())
	s.Feasible = int(d.i64())
	s.ExactS1 = int(d.i64())
	s.ExactS2 = int(d.i64())
	s.NearS1ByEps = d.epsCounts()
	s.NearS2ByEps = d.epsCounts()
	s.FeasibleShare = d.f64()
	return s, d.finish("measure stats")
}
