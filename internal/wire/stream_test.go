package wire

import (
	"bytes"
	"reflect"
	"runtime/debug"
	"testing"

	"repro/internal/geom"
	"repro/internal/sim"
)

// ---- trace chunk + streamed result codecs ----

func testTrace(n int) []sim.TracePoint {
	tr := make([]sim.TracePoint, n)
	for i := range tr {
		tr[i] = sim.TracePoint{T: float64(i) * 0.25, Pos: geom.V(float64(i), -float64(i)*0.5)}
	}
	return tr
}

func TestTraceChunkRoundTrip(t *testing.T) {
	pts := testTrace(7)
	for _, which := range []byte{TraceChunkA, TraceChunkB} {
		w, idx, got, err := DecodeTraceChunk(EncodeTraceChunk(which, 3, pts), nil)
		if err != nil {
			t.Fatal(err)
		}
		if w != which || idx != 3 || !reflect.DeepEqual(got, pts) {
			t.Fatalf("round trip changed chunk: which %d idx %d len %d", w, idx, len(got))
		}
	}
	// Decoding appends onto dst: two chunks reassemble one trace.
	half := len(pts) / 2
	var asm []sim.TracePoint
	_, _, asm, err := DecodeTraceChunk(EncodeTraceChunk(TraceChunkA, 0, pts[:half]), asm)
	if err != nil {
		t.Fatal(err)
	}
	_, _, asm, err = DecodeTraceChunk(EncodeTraceChunk(TraceChunkA, 1, pts[half:]), asm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(asm, pts) {
		t.Fatal("two-chunk reassembly differs from the original trace")
	}
}

func TestTraceChunkRejectsBadInput(t *testing.T) {
	pts := testTrace(3)
	good := EncodeTraceChunk(TraceChunkB, 1, pts)
	if _, _, _, err := DecodeTraceChunk(good[:len(good)-2], nil); err == nil {
		t.Error("truncated chunk accepted")
	}
	if _, _, _, err := DecodeTraceChunk(append(append([]byte(nil), good...), 0), nil); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, _, _, err := DecodeTraceChunk(EncodeTraceChunk(9, 0, pts), nil); err == nil {
		t.Error("unknown trace tag accepted")
	}
	// An empty trace sends no chunks at all, so a zero-point chunk is a
	// protocol violation.
	if _, _, _, err := DecodeTraceChunk(EncodeTraceChunk(TraceChunkA, 0, nil), nil); err == nil {
		t.Error("empty chunk accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = Version + 1
	if _, _, _, err := DecodeTraceChunk(bad, nil); err == nil {
		t.Error("wrong version accepted")
	}
	// On error dst must come back unchanged, not half-extended.
	dst := testTrace(2)
	if _, _, out, err := DecodeTraceChunk(good[:len(good)-2], dst); err == nil || len(out) != len(dst) {
		t.Errorf("failed decode returned %d points, want the original %d", len(out), len(dst))
	}
}

func TestStreamedResultRoundTrip(t *testing.T) {
	r := testResult()
	got, nA, nB, err := DecodeStreamedResult(EncodeStreamedResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if int(nA) != len(r.TraceA) || int(nB) != len(r.TraceB) {
		t.Fatalf("counts %d/%d, want %d/%d", nA, nB, len(r.TraceA), len(r.TraceB))
	}
	// The closer carries scalars only; grafting the original traces back
	// must reproduce the full result bit-exactly.
	got.TraceA, got.TraceB = r.TraceA, r.TraceB
	if !bytes.Equal(EncodeResult(got), EncodeResult(r)) {
		t.Fatal("streamed scalars + traces do not reassemble the result")
	}

	bad := EncodeStreamedResult(r)
	if _, _, _, err := DecodeStreamedResult(bad[:len(bad)-1]); err == nil {
		t.Error("truncated streamed result accepted")
	}
	if _, _, _, err := DecodeStreamedResult(append(append([]byte(nil), bad...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// ---- stateful frame I/O ----

// pipeWriterReader builds a FrameWriter/FrameReader pair over one
// buffer, optionally with compression negotiated on both ends.
func pipeWriterReader(buf *bytes.Buffer, compress bool) (*FrameWriter, *FrameReader) {
	fw := NewFrameWriter(buf)
	fr := NewFrameReader(buf)
	if compress {
		fw.EnableCompression(1)
		fr.EnableCompression()
	}
	return fw, fr
}

func TestFrameWriterReaderRoundTrip(t *testing.T) {
	// Payload shapes: tiny, compressible, incompressible-ish, and a
	// real encoded result.
	incompressible := make([]byte, 4096)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range incompressible {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		incompressible[i] = byte(x)
	}
	payloads := [][]byte{
		[]byte("x"),
		bytes.Repeat([]byte("rendezvous "), 1000),
		incompressible,
		AppendSeq(7, EncodeResult(testResult())),
		make([]byte, 2*frameChunk+123), // crosses the probe chunk
	}
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		fw, fr := pipeWriterReader(&buf, compress)
		for i, p := range payloads {
			if err := fw.WriteFrame(FrameResult, p); err != nil {
				t.Fatal(err)
			}
			typ, pb, err := fr.ReadFrame()
			if err != nil {
				t.Fatalf("compress=%v payload %d: %v", compress, i, err)
			}
			if typ != FrameResult || !bytes.Equal(pb.B, p) {
				t.Fatalf("compress=%v payload %d: decoded bytes differ (typ %d, %d vs %d bytes)",
					compress, i, typ, len(pb.B), len(p))
			}
			pb.Release()
		}
		tx, rx := fw.Stats(), fr.Stats()
		if tx.Raw == 0 || tx.Wire == 0 || tx != rx {
			t.Fatalf("compress=%v stats disagree: tx %+v rx %+v", compress, tx, rx)
		}
		if compress && tx.Wire >= tx.Raw {
			t.Fatalf("compression never shrank the stream: %+v", tx)
		}
		if !compress && tx.Wire != tx.Raw {
			t.Fatalf("raw stream counted unequal raw/wire bytes: %+v", tx)
		}
	}
}

// TestFrameWriterSeqMatchesAppendSeq pins the zero-allocation seq path
// to the canonical bytes of the allocating one.
func TestFrameWriterSeqMatchesAppendSeq(t *testing.T) {
	var a, b bytes.Buffer
	fw := NewFrameWriter(&a)
	if err := fw.WriteFrameSeq(FrameJob, 99, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&b, FrameJob, AppendSeq(99, []byte("payload"))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteFrameSeq bytes differ from WriteFrame+AppendSeq")
	}
}

// TestFrameWriterInteropWithPackageReader: frames a raw FrameWriter
// emits are bit-identical to package WriteFrame, so the chaos proxy and
// old-style readers parse them unchanged; compressed frames pass through
// package ReadFrame opaquely (type byte keeps the bit, payload is the
// deflate body) — what the proxy forwards without understanding.
func TestFrameWriterInteropWithPackageReader(t *testing.T) {
	payload := bytes.Repeat([]byte("interop "), 512)
	var raw bytes.Buffer
	fw := NewFrameWriter(&raw)
	if err := fw.WriteFrame(FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteFrame(&want, FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw.Bytes(), want.Bytes()) {
		t.Fatal("raw FrameWriter output differs from package WriteFrame")
	}

	var comp bytes.Buffer
	cw := NewFrameWriter(&comp)
	cw.EnableCompression(1)
	if err := cw.WriteFrame(FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&comp)
	if err != nil {
		t.Fatal(err)
	}
	if typ&compressedBit == 0 {
		t.Fatal("compressible payload went out uncompressed")
	}
	// Re-framed, a compressed-negotiated reader recovers the bytes.
	var again bytes.Buffer
	if err := WriteFrame(&again, typ, body); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&again)
	fr.EnableCompression()
	gt, pb, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Release()
	if gt != FrameResult || !bytes.Equal(pb.B, payload) {
		t.Fatal("proxy-style re-framed compressed frame did not decode bit-exactly")
	}
}

func TestFrameReaderRejectsUnnegotiatedCompression(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.EnableCompression(1)
	if err := fw.WriteFrame(FrameResult, bytes.Repeat([]byte("z"), 1024)); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf) // never negotiated
	if _, _, err := fr.ReadFrame(); err == nil {
		t.Fatal("compressed frame accepted on a stream that never negotiated compression")
	}
}

func TestFrameReaderRejectsCorruptCompressed(t *testing.T) {
	build := func(mutate func([]byte) []byte) *FrameReader {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		fw.EnableCompression(1)
		if err := fw.WriteFrame(FrameResult, bytes.Repeat([]byte("q"), 2048)); err != nil {
			panic(err)
		}
		b := mutate(append([]byte(nil), buf.Bytes()...))
		fr := NewFrameReader(bytes.NewReader(b))
		fr.EnableCompression()
		return fr
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"raw length zero": func(b []byte) []byte {
			b[5], b[6], b[7], b[8] = 0, 0, 0, 0
			return b
		},
		"raw length shorter than stream": func(b []byte) []byte {
			b[5], b[6], b[7], b[8] = 0, 0, 0, 1
			return b
		},
		"raw length longer than stream": func(b []byte) []byte {
			b[5], b[6], b[7] = 0, 0x10, 0
			return b
		},
		"torn deflate body": func(b []byte) []byte {
			nb := b[:len(b)-4]
			binary4(nb, uint32(len(nb)-4))
			return nb
		},
	} {
		if _, _, err := build(mutate).ReadFrame(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// binary4 rewrites a frame's 4-byte length prefix in place.
func binary4(b []byte, n uint32) {
	b[0], b[1], b[2], b[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
}

func TestCompressHintRoundTrip(t *testing.T) {
	for _, n := range []int{1, 256, 1 << 20} {
		got, err := DecodeCompressHint(EncodeCompressHint(n))
		if err != nil || got != n {
			t.Fatalf("hint %d: got %d err %v", n, got, err)
		}
	}
	if _, err := DecodeCompressHint(EncodeCompressHint(0)); err == nil {
		t.Error("zero compress hint accepted")
	}
	if _, err := DecodeCompressHint(append(EncodeCompressHint(2), 9)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// ---- allocation pinning ----

// TestWirePoolAllocFree pins the pooled wire hot path at zero
// steady-state allocations per frame round trip — raw and compressed.
// Everything the path needs (assembly buffers, payload buffers, flate
// state) is either owned by the writer/reader or rented from the pool
// and returned by Release.
func TestWirePoolAllocFree(t *testing.T) {
	payload := bytes.Repeat([]byte("steady state "), 300) // ~3.9 KB, compressible
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		fw, fr := pipeWriterReader(&buf, compress)
		roundTrip := func() {
			buf.Reset()
			if err := fw.WriteFrameSeq(FrameResult, 42, payload); err != nil {
				t.Fatal(err)
			}
			typ, pb, err := fr.ReadFrame()
			if err != nil || typ != FrameResult {
				t.Fatalf("typ %d err %v", typ, err)
			}
			pb.Release()
		}
		for i := 0; i < 8; i++ {
			roundTrip() // warm the pools and the flate state
		}
		if avg := testing.AllocsPerRun(200, roundTrip); avg != 0 {
			t.Errorf("compress=%v: %.2f allocs per frame round trip, want 0", compress, avg)
		}
	}
}

// TestReadFrameLargePayloadAllocs pins the chunked-read fix: a body
// larger than one chunk costs one body allocation (plus none for the
// probe, which is pooled) — not a fresh zero-filled temp per chunk.
func TestReadFrameLargePayloadAllocs(t *testing.T) {
	payload := make([]byte, 2*frameChunk+12345)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	whole := append([]byte(nil), buf.Bytes()...)
	r := bytes.NewReader(nil)
	// GC off for the measurement: each run allocates a multi-megabyte
	// body, and the collections that triggers clear chunkScratch, which
	// would count pool refills against the read path.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	avg := testing.AllocsPerRun(20, func() {
		r.Reset(whole)
		if _, _, err := ReadFrame(r); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Errorf("%.1f allocs per multi-chunk ReadFrame, want <= 2 (header + one body, probe pooled)", avg)
	}
}

// ---- benchmarks ----

func benchPayload() []byte {
	return AppendSeq(1, EncodeResult(sim.Result{
		Segments: 1 << 20,
		TraceA:   testTrace(4096),
		TraceB:   testTrace(4096),
	}))
}

func BenchmarkFrameWriteRaw(b *testing.B) {
	payload := benchPayload()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := fw.WriteFrame(FrameResult, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameWriteCompressed(b *testing.B) {
	payload := benchPayload()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.EnableCompression(1)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := fw.WriteFrame(FrameResult, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(payload))/float64(buf.Len()), "ratio")
}

func BenchmarkFrameRoundTripCompressed(b *testing.B) {
	payload := benchPayload()
	var buf bytes.Buffer
	fw, fr := pipeWriterReader(&buf, true)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := fw.WriteFrame(FrameResult, payload); err != nil {
			b.Fatal(err)
		}
		_, pb, err := fr.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		pb.Release()
	}
}
