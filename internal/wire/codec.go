// Package wire is the versioned binary codec of the distribution
// subsystem: it serializes the simulation boundary — instances,
// settings, algorithm references, jobs, results — so batches can cross
// process and host boundaries without perturbing a single bit.
//
// Design rules:
//
//   - Canonical encoding. Every value has exactly one byte sequence:
//     fixed-width big-endian integers, IEEE-754 bit patterns for
//     floats (math.Float64bits — NaN payloads and signed zeros round-trip
//     exactly), double-double clock values as their two component
//     floats. No varints, no maps, no reflection.
//   - Versioned messages. Every top-level message starts with a format
//     version byte; decoders reject versions they do not understand
//     instead of misparsing them.
//   - Algorithms travel by name. Programs are closures and cannot
//     cross a process boundary; the registry (registry.go) maps stable
//     names to program constructors on the receiving side.
//
// The codec is what makes the batch engine's determinism guarantee
// survive distribution: a worker process decodes exactly the inputs the
// coordinator encoded, runs the same pure sim.Run, and the result — dd
// clock values, float minima, trace points — is returned bit-for-bit.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/dd"
	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/sim"
)

// Version is the wire format version. Bump it whenever any encoding in
// this package changes shape (field added, reordered, retyped); the
// field-count guards in wire_test.go fail when a serialized struct
// gains a field the codec does not cover.
//
// History: v1 — PR 3 (instances, settings, jobs, results, frames);
// v2 — PR 4 (Settings.Window; sweep chunk descriptors and
// measure.Stats for the distributed Monte-Carlo sweep; replies on a
// connection may arrive out of order now that workers run in-process
// pools, so a v2 coordinator must not be paired with a v1 worker —
// the hello version check enforces exactly that);
// v3 — PR 5 (Settings.MaxWindow; FramePool per-stream pool hints;
// FrameReplyBatch coalesced multi-result frames — a v3 worker may
// answer several requests in one frame, which a v2 coordinator would
// misparse, so mixed v2/v3 fleets are refused at hello);
// v4 — PR 7 (Settings.StallTimeout + Settings.MaxJobRequeues;
// FramePing/FramePong liveness probes — a v4 coordinator pings a
// silent connection and ejects it as hung if nothing comes back, and
// a v3 worker would fatally reject the ping as an unknown frame type,
// so mixed v3/v4 fleets are refused at hello);
// v5 — PR 8 (FramePong carries a trailing WorkerStats payload: the
// worker's per-stream flight-recorder counters piggybacked on every
// liveness echo, which Fleet.Snapshot surfaces — a v4 coordinator
// would reject the longer pong as trailing bytes, so mixed v4/v5
// fleets are refused at hello);
// v6 — PR 9 (Settings.Compress; the hello carries a capability
// bitmask — CapCompress advertises flate frame compression, which the
// coordinator enables per connection with FrameCompress; long traces
// stream as bounded FrameTraceChunk frames closed by a
// streamed-result message instead of one giant result frame — a v5
// coordinator would reject the capability word as trailing hello
// bytes and misparse a compressed or chunked stream, so mixed v5/v6
// fleets are refused at hello);
// v7 — PR 10 (multi-tenant scheduler: every sequence number now packs
// a dispatch id in its high 32 bits and a task index in its low 32
// (DispatchSeq/SplitDispatchSeq), so concurrent dispatches interleave
// their jobs on one stream and replies route back to the right tenant.
// Workers echo sequence numbers verbatim and never interpret the
// packing, but a v6 coordinator assumes the whole u64 is one dispatch's
// task index, which would collide concurrent dispatches' sequence
// spaces, so mixed v6/v7 fleets are refused at hello).
const Version = 7

// maxSlice bounds decoded slice and string lengths, so a corrupt or
// hostile stream cannot request an absurd allocation.
const maxSlice = 1 << 28

// ---- primitive append helpers ----

func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendF64(b []byte, f float64) []byte {
	return appendU64(b, math.Float64bits(f))
}
func appendDD(b []byte, t dd.T) []byte {
	return appendF64(appendF64(b, t.Hi), t.Lo)
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}
func appendVec(b []byte, v geom.Vec2) []byte {
	return appendF64(appendF64(b, v.X), v.Y)
}

// dec is a sticky-error reader over one message buffer. After the first
// failure every read returns zero values, so decoders can be written as
// straight-line field lists with a single error check at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail("truncated message: need %d bytes, have %d", n, len(d.b))
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) u8() byte {
	if v := d.take(1); v != nil {
		return v[0]
	}
	return 0
}

func (d *dec) u32() uint32 {
	if v := d.take(4); v != nil {
		return binary.BigEndian.Uint32(v)
	}
	return 0
}

func (d *dec) u64() uint64 {
	if v := d.take(8); v != nil {
		return binary.BigEndian.Uint64(v)
	}
	return 0
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) ddT() dd.T {
	hi := d.f64()
	return dd.T{Hi: hi, Lo: d.f64()}
}

func (d *dec) boolean() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte")
		return false
	}
}

func (d *dec) str() string {
	n := d.u32()
	if n > maxSlice {
		d.fail("string length %d exceeds limit", n)
		return ""
	}
	return string(d.take(int(n)))
}

func (d *dec) vec() geom.Vec2 {
	x := d.f64()
	return geom.Vec2{X: x, Y: d.f64()}
}

// version consumes and checks the leading version byte of a message.
func (d *dec) version() {
	if v := d.u8(); d.err == nil && v != Version {
		d.fail("format version %d, this build speaks %d", v, Version)
	}
}

// finish returns the decode error, also rejecting trailing garbage —
// canonical messages have exactly one length.
func (d *dec) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("%s: %w", what, d.err)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%s: %d trailing bytes after message", what, len(d.b))
	}
	return nil
}

// ---- Instance ----

func appendInstance(b []byte, in inst.Instance) []byte {
	b = appendF64(b, in.R)
	b = appendF64(b, in.X)
	b = appendF64(b, in.Y)
	b = appendF64(b, in.Phi)
	b = appendF64(b, in.Tau)
	b = appendF64(b, in.V)
	b = appendF64(b, in.T)
	return appendI64(b, int64(in.Chi))
}

func (d *dec) instance() inst.Instance {
	var in inst.Instance
	in.R = d.f64()
	in.X = d.f64()
	in.Y = d.f64()
	in.Phi = d.f64()
	in.Tau = d.f64()
	in.V = d.f64()
	in.T = d.f64()
	in.Chi = int(d.i64())
	return in
}

// EncodeInstance serializes the instance tuple as a standalone message.
func EncodeInstance(in inst.Instance) []byte {
	return appendInstance(append([]byte(nil), Version), in)
}

// DecodeInstance inverts EncodeInstance.
func DecodeInstance(b []byte) (inst.Instance, error) {
	d := &dec{b: b}
	d.version()
	in := d.instance()
	return in, d.finish("instance")
}

// ---- Settings ----

func appendSettings(b []byte, s sim.Settings) []byte {
	b = appendF64(b, s.MaxTime)
	b = appendI64(b, int64(s.MaxSegments))
	b = appendF64(b, s.SightSlack)
	b = appendI64(b, int64(s.TraceCap))
	b = appendI64(b, int64(s.Parallelism))
	b = appendBool(b, s.NoBatchMemoize)
	b = appendBool(b, s.NoWaitCoalesce)
	b = appendStr(b, s.Hosts)
	b = appendI64(b, int64(s.WorkerProcs))
	b = appendStr(b, s.WorkerCmd)
	b = appendI64(b, int64(s.Window))
	b = appendI64(b, int64(s.MaxWindow))
	b = appendI64(b, int64(s.StallTimeout))
	b = appendI64(b, int64(s.MaxJobRequeues))
	return appendBool(b, s.Compress)
}

func (d *dec) settings() sim.Settings {
	var s sim.Settings
	s.MaxTime = d.f64()
	s.MaxSegments = int(d.i64())
	s.SightSlack = d.f64()
	s.TraceCap = int(d.i64())
	s.Parallelism = int(d.i64())
	s.NoBatchMemoize = d.boolean()
	s.NoWaitCoalesce = d.boolean()
	s.Hosts = d.str()
	s.WorkerProcs = int(d.i64())
	s.WorkerCmd = d.str()
	s.Window = int(d.i64())
	s.MaxWindow = int(d.i64())
	s.StallTimeout = time.Duration(d.i64())
	s.MaxJobRequeues = int(d.i64())
	s.Compress = d.boolean()
	return s
}

// EncodeSettings serializes the simulation settings as a standalone
// message. The distribution knobs (Hosts, WorkerProcs, Window, …) ride
// along for fidelity but a worker process never re-distributes its own
// jobs; Parallelism is the one scheduling knob a worker honors — it
// sizes the in-worker execution pool (see dist.Serve), which scheduling
// determinism keeps invisible in the results.
func EncodeSettings(s sim.Settings) []byte {
	return appendSettings(append([]byte(nil), Version), s)
}

// DecodeSettings inverts EncodeSettings.
func DecodeSettings(b []byte) (sim.Settings, error) {
	d := &dec{b: b}
	d.version()
	s := d.settings()
	return s, d.finish("settings")
}

// ---- Job ----

// Job is the serializable description of one batch job: the instance,
// the algorithm by registered name, and the settings bounding the run.
// It deliberately mirrors the (instance, algorithm, settings) triple
// that identifies a simulation — the struct is comparable, so a Job
// value doubles as its own memoization key.
type Job struct {
	In  inst.Instance
	Alg string
	Set sim.Settings
}

// EncodeJob serializes the job.
func EncodeJob(j Job) []byte {
	b := append([]byte(nil), Version)
	b = appendInstance(b, j.In)
	b = appendStr(b, j.Alg)
	return appendSettings(b, j.Set)
}

// DecodeJob inverts EncodeJob.
func DecodeJob(b []byte) (Job, error) {
	d := &dec{b: b}
	d.version()
	var j Job
	j.In = d.instance()
	j.Alg = d.str()
	j.Set = d.settings()
	return j, d.finish("job")
}

// ---- Result ----

func appendTrace(b []byte, tr []sim.TracePoint) []byte {
	b = appendU32(b, uint32(len(tr)))
	for _, p := range tr {
		b = appendF64(b, p.T)
		b = appendVec(b, p.Pos)
	}
	return b
}

func (d *dec) trace() []sim.TracePoint {
	n := d.u32()
	if n == 0 {
		return nil // canonical: an absent trace decodes to nil, not []
	}
	if n > maxSlice/24 {
		d.fail("trace length %d exceeds limit", n)
		return nil
	}
	tr := make([]sim.TracePoint, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		t := d.f64()
		tr = append(tr, sim.TracePoint{T: t, Pos: d.vec()})
	}
	if d.err != nil {
		return nil
	}
	return tr
}

func appendResultScalars(b []byte, r sim.Result) []byte {
	b = appendBool(b, r.Met)
	b = appendI64(b, int64(r.Reason))
	b = appendDD(b, r.MeetTime)
	b = appendF64(b, r.MinGap)
	b = appendDD(b, r.MinGapTime)
	b = appendVec(b, r.EndA)
	b = appendVec(b, r.EndB)
	b = appendI64(b, int64(r.Segments))
	return appendDD(b, r.EndTime)
}

func (d *dec) resultScalars() sim.Result {
	var r sim.Result
	r.Met = d.boolean()
	r.Reason = sim.StopReason(d.i64())
	r.MeetTime = d.ddT()
	r.MinGap = d.f64()
	r.MinGapTime = d.ddT()
	r.EndA = d.vec()
	r.EndB = d.vec()
	r.Segments = int(d.i64())
	r.EndTime = d.ddT()
	return r
}

// AppendResult appends the serialized result — version byte, scalars,
// traces — to b and returns the extended slice, so hot paths can encode
// into a pooled buffer instead of allocating per call.
func AppendResult(b []byte, r sim.Result) []byte {
	b = append(b, Version)
	b = appendResultScalars(b, r)
	b = appendTrace(b, r.TraceA)
	return appendTrace(b, r.TraceB)
}

// EncodeResult serializes a simulation result, traces included. Every
// float crosses as its exact bit pattern, so the decoded result is
// indistinguishable from one computed in-process.
func EncodeResult(r sim.Result) []byte {
	return AppendResult(nil, r)
}

// DecodeResult inverts EncodeResult.
func DecodeResult(b []byte) (sim.Result, error) {
	d := &dec{b: b}
	d.version()
	r := d.resultScalars()
	r.TraceA = d.trace()
	r.TraceB = d.trace()
	return r, d.finish("result")
}

// ---- streamed result + trace chunks ----
//
// A trace-capped run can carry megabytes of trace in one result frame.
// Streaming splits that into bounded FrameTraceChunk frames — each a
// run of consecutive points from one trace — followed by a closing
// FrameResult whose body is a streamed result: the scalars plus the
// point counts the coordinator must have assembled. The chunks and the
// closer travel on the same reply stream as ordinary results, so
// per-job ordering is preserved and reassembly is a straight append.

// TraceChunkA and TraceChunkB tag which of the two walker traces a
// chunk extends.
const (
	TraceChunkA byte = 0
	TraceChunkB byte = 1
)

// AppendTraceChunk appends a serialized trace chunk — version byte,
// which trace, chunk index within that trace, and the points — to b.
func AppendTraceChunk(b []byte, which byte, index uint32, pts []sim.TracePoint) []byte {
	b = append(b, Version)
	b = append(b, which)
	b = appendU32(b, index)
	return appendTrace(b, pts)
}

// EncodeTraceChunk serializes a trace chunk as a standalone message.
func EncodeTraceChunk(which byte, index uint32, pts []sim.TracePoint) []byte {
	return AppendTraceChunk(nil, which, index, pts)
}

// DecodeTraceChunk decodes a trace chunk, appending its points to dst
// (which may be nil) and returning the extended slice. Chunks are
// required to be non-empty: an empty trace sends no chunks at all, so
// a zero-point chunk is a protocol violation, not a degenerate case.
func DecodeTraceChunk(b []byte, dst []sim.TracePoint) (which byte, index uint32, out []sim.TracePoint, err error) {
	d := &dec{b: b}
	d.version()
	which = d.u8()
	if d.err == nil && which != TraceChunkA && which != TraceChunkB {
		d.fail("trace chunk tags unknown trace %d", which)
	}
	index = d.u32()
	n := d.u32()
	if d.err == nil && n == 0 {
		d.fail("empty trace chunk")
	}
	if n > maxSlice/24 {
		d.fail("trace chunk length %d exceeds limit", n)
	}
	out = dst
	for i := uint32(0); i < n && d.err == nil; i++ {
		t := d.f64()
		out = append(out, sim.TracePoint{T: t, Pos: d.vec()})
	}
	if err = d.finish("trace chunk"); err != nil {
		return 0, 0, dst, err
	}
	return which, index, out, nil
}

// AppendStreamedResult appends the closing message of a streamed
// result: the scalars plus the total point count of each trace, which
// the coordinator checks against what the chunks delivered.
func AppendStreamedResult(b []byte, r sim.Result) []byte {
	b = append(b, Version)
	b = appendResultScalars(b, r)
	b = appendU32(b, uint32(len(r.TraceA)))
	return appendU32(b, uint32(len(r.TraceB)))
}

// EncodeStreamedResult serializes the streamed-result closer as a
// standalone message.
func EncodeStreamedResult(r sim.Result) []byte {
	return AppendStreamedResult(nil, r)
}

// DecodeStreamedResult decodes a streamed-result closer, returning the
// scalar result (traces nil) and the expected point counts.
func DecodeStreamedResult(b []byte) (r sim.Result, nA, nB uint32, err error) {
	d := &dec{b: b}
	d.version()
	r = d.resultScalars()
	nA = d.u32()
	nB = d.u32()
	if err = d.finish("streamed result"); err != nil {
		return sim.Result{}, 0, 0, err
	}
	return r, nA, nB, nil
}
