package wire

// Stateful frame I/O for the hot path. The package-level WriteFrame /
// ReadFrame allocate per call and know nothing about compression —
// right for handshakes, tests, and the chaos proxy, which forwards
// compressed frames opaquely. A long-lived connection instead owns a
// FrameWriter / FrameReader pair: reusable assembly buffers, pooled
// payload buffers, and optional negotiated flate compression
// (CapCompress at hello, enabled per stream by FrameCompress).
//
// A compressed frame keeps the outer framing — 4-byte length, type
// byte, body — but sets compressedBit on the type byte and lays the
// body out as
//
//	4 bytes  big-endian raw payload length
//	n bytes  flate (DEFLATE) stream of the raw payload
//
// Decoded bytes are bit-exact, so compression is invisible above the
// framing layer: the byte-identity determinism argument (DESIGN.md
// §6–§8) never sees it. Either side may send any frame raw — the
// writer falls back when deflate fails to shrink the payload — but a
// stream that never negotiated the capability rejects compressedBit as
// an unknown frame type instead of misparsing.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// maxPooledBuf bounds the capacity a pooled buffer may keep between
// uses; anything larger (a trace-heavy result on a stream that did not
// negotiate chunking) is dropped rather than pinned in the pool.
const maxPooledBuf = 4 << 20

// Buf is a pooled byte buffer. The pool holds *Buf, not []byte, so a
// round trip through it moves no slice header into an interface and
// the steady state stays at zero allocations.
type Buf struct{ B []byte }

var bufPool = sync.Pool{New: func() any { return new(Buf) }}

// GetBuf returns a pooled buffer with an empty (length-0) slice.
func GetBuf() *Buf { return bufPool.Get().(*Buf) }

// Release returns the buffer to the pool. The caller must not touch
// b.B afterwards; oversized backing arrays are dropped, not pooled.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if cap(b.B) > maxPooledBuf {
		b.B = nil
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

// grow returns b extended to length n, preserving its contents;
// reallocation happens only when the capacity is insufficient.
func grow(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	nb := make([]byte, n)
	copy(nb, b)
	return nb
}

// IOStats is a point-in-time read of one direction of a stream: the
// bytes frames would have occupied uncompressed and the bytes actually
// put on (or taken off) the wire. Raw/Wire is the compression ratio;
// the two are equal on a stream that never negotiated compression.
type IOStats struct {
	Raw  uint64
	Wire uint64
}

// ioCount is the shared atomic tally behind IOStats.
type ioCount struct {
	raw  atomic.Uint64
	wire atomic.Uint64
}

func (c *ioCount) add(raw, wire int) {
	c.raw.Add(uint64(raw))
	c.wire.Add(uint64(wire))
}

func (c *ioCount) stats() IOStats {
	return IOStats{Raw: c.raw.Load(), Wire: c.wire.Load()}
}

// appendWriter is the reusable sink the flate encoder deflates into.
type appendWriter struct{ b []byte }

func (aw *appendWriter) Write(p []byte) (int, error) {
	aw.b = append(aw.b, p...)
	return len(p), nil
}

// FrameWriter writes frames through a reused assembly buffer, with
// optional negotiated compression. Not safe for concurrent use; every
// stream already serializes writes (the worker's replyBatcher mutex,
// the coordinator's per-connection write mutex).
type FrameWriter struct {
	w       io.Writer
	minSize int // compress payloads >= this; 0 disables
	buf     []byte
	seq     []byte
	aw      appendWriter
	enc     *flate.Writer
	n       ioCount
}

// NewFrameWriter wraps w. Compression is off until EnableCompression.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

// EnableCompression turns on flate compression for payloads of at
// least minSize bytes. The caller is responsible for ordering: nothing
// compressed may be written before the peer has processed the
// negotiation (hello capability + FrameCompress).
func (fw *FrameWriter) EnableCompression(minSize int) {
	if minSize < 1 {
		minSize = 1
	}
	fw.minSize = minSize
}

// Compressing reports whether compression has been enabled.
func (fw *FrameWriter) Compressing() bool { return fw.minSize > 0 }

// Stats returns the writer's byte tallies. Safe to call concurrently
// with writes.
func (fw *FrameWriter) Stats() IOStats { return fw.n.stats() }

// WriteFrame writes one frame, compressing the payload when the stream
// negotiated it, the payload is large enough, and deflate actually
// shrinks it; otherwise the frame goes out raw, bit-identical to
// package-level WriteFrame.
func (fw *FrameWriter) WriteFrame(typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds limit", len(payload))
	}
	rawN := 5 + len(payload)
	if fw.minSize > 0 && len(payload) >= fw.minSize {
		fw.aw.b = fw.aw.b[:0]
		if fw.enc == nil {
			// BestSpeed: the wire path is latency-sensitive and the
			// payloads (trace floats with sparse mantissas) compress
			// well even at the fastest setting.
			enc, err := flate.NewWriter(&fw.aw, flate.BestSpeed)
			if err != nil {
				return fmt.Errorf("wire: flate init: %w", err)
			}
			fw.enc = enc
		} else {
			fw.enc.Reset(&fw.aw)
		}
		if _, err := fw.enc.Write(payload); err != nil {
			return fmt.Errorf("wire: deflate: %w", err)
		}
		if err := fw.enc.Close(); err != nil {
			return fmt.Errorf("wire: deflate: %w", err)
		}
		if len(fw.aw.b)+4 < len(payload) {
			fw.buf = fw.buf[:0]
			fw.buf = binary.BigEndian.AppendUint32(fw.buf, uint32(len(fw.aw.b)+5))
			fw.buf = append(fw.buf, typ|compressedBit)
			fw.buf = binary.BigEndian.AppendUint32(fw.buf, uint32(len(payload)))
			fw.buf = append(fw.buf, fw.aw.b...)
			_, err := fw.w.Write(fw.buf)
			fw.n.add(rawN, len(fw.buf))
			return err
		}
		// Incompressible: send raw. The receiver never needs to know.
	}
	fw.buf = fw.buf[:0]
	fw.buf = binary.BigEndian.AppendUint32(fw.buf, uint32(len(payload)+1))
	fw.buf = append(fw.buf, typ)
	fw.buf = append(fw.buf, payload...)
	_, err := fw.w.Write(fw.buf)
	fw.n.add(rawN, rawN)
	return err
}

// WriteFrameSeq writes one seq-prefixed frame — the stateful, zero-
// allocation equivalent of WriteFrame(w, typ, AppendSeq(seq, payload)).
func (fw *FrameWriter) WriteFrameSeq(typ byte, seq uint64, payload []byte) error {
	fw.seq = binary.BigEndian.AppendUint64(fw.seq[:0], seq)
	fw.seq = append(fw.seq, payload...)
	return fw.WriteFrame(typ, fw.seq)
}

// FrameReader reads frames into pooled buffers, inflating negotiated
// compression transparently. Not safe for concurrent use; each stream
// has exactly one reader goroutine.
type FrameReader struct {
	r      io.Reader
	accept bool // compressed frames are legal on this stream
	src    *bytes.Reader
	inf    io.ReadCloser
	n      ioCount
	// hdr and one live here, not on ReadFrame's stack: a local array
	// sliced into an interface-typed Read escapes, and that one heap
	// allocation per frame is exactly what the pooled path exists to
	// avoid (pinned by TestWirePoolAllocFree).
	hdr [5]byte
	one [1]byte
}

// NewFrameReader wraps r. Compressed frames are rejected until
// EnableCompression.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, src: bytes.NewReader(nil)}
}

// EnableCompression makes compressed frames legal on this stream.
func (fr *FrameReader) EnableCompression() { fr.accept = true }

// Stats returns the reader's byte tallies. Safe to call concurrently
// with reads.
func (fr *FrameReader) Stats() IOStats { return fr.n.stats() }

// ReadFrame reads one frame into a pooled buffer, which the caller
// must Release once the payload — and anything aliasing it, such as
// DecodeReplies entries — is dead. EOF semantics match package-level
// ReadFrame: bare io.EOF between frames, wrapped ErrUnexpectedEOF for
// a stream torn mid-frame.
func (fr *FrameReader) ReadFrame() (typ byte, pb *Buf, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := int(binary.BigEndian.Uint32(fr.hdr[:4]))
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	typ = fr.hdr[4]
	m := n - 1 // payload bytes after the type byte
	pb = GetBuf()
	// Probe-first, as in package ReadFrame: commit at most one chunk
	// of buffer growth before the stream proves a large length prefix
	// credible by actually delivering the first chunk.
	c := min(m, frameChunk)
	pb.B = grow(pb.B[:0], c)
	if _, err := io.ReadFull(fr.r, pb.B); err != nil {
		pb.Release()
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: reading %d-byte frame: %w", n, err)
	}
	if m > c {
		pb.B = grow(pb.B, m)
		if _, err := io.ReadFull(fr.r, pb.B[c:]); err != nil {
			pb.Release()
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("wire: reading %d-byte frame: %w", n, err)
		}
	}
	if typ&compressedBit == 0 {
		fr.n.add(5+m, 5+m)
		return typ, pb, nil
	}
	raw, err := fr.inflate(typ, pb)
	pb.Release()
	if err != nil {
		return 0, nil, err
	}
	fr.n.add(5+len(raw.B), 5+m)
	return typ &^ compressedBit, raw, nil
}

// inflate decodes a compressed frame body into a fresh pooled buffer.
func (fr *FrameReader) inflate(typ byte, pb *Buf) (*Buf, error) {
	if !fr.accept {
		return nil, fmt.Errorf("wire: compressed frame (type %d) on a stream that never negotiated compression", typ&^compressedBit)
	}
	if len(pb.B) < 4 {
		return nil, fmt.Errorf("wire: compressed frame body %d bytes is shorter than its length prefix", len(pb.B))
	}
	rawLen := binary.BigEndian.Uint32(pb.B[:4])
	if rawLen == 0 || rawLen > MaxFrame {
		return nil, fmt.Errorf("wire: compressed frame declares %d raw bytes, out of range", rawLen)
	}
	fr.src.Reset(pb.B[4:])
	if fr.inf == nil {
		fr.inf = flate.NewReader(fr.src)
	} else if err := fr.inf.(flate.Resetter).Reset(fr.src, nil); err != nil {
		return nil, fmt.Errorf("wire: inflate reset: %w", err)
	}
	out := GetBuf()
	out.B = grow(out.B[:0], int(rawLen))
	if _, err := io.ReadFull(fr.inf, out.B); err != nil {
		out.Release()
		return nil, fmt.Errorf("wire: inflating %d-byte payload: %w", rawLen, err)
	}
	// The declared length must be exact: more decompressed bytes or
	// undrained compressed input is stream corruption.
	if k, err := fr.inf.Read(fr.one[:]); k != 0 {
		out.Release()
		return nil, fmt.Errorf("wire: compressed payload longer than declared %d bytes", rawLen)
	} else if err != io.EOF {
		out.Release()
		return nil, fmt.Errorf("wire: inflating %d-byte payload: %v", rawLen, err)
	}
	if fr.src.Len() != 0 {
		out.Release()
		return nil, fmt.Errorf("wire: %d trailing bytes after deflate stream", fr.src.Len())
	}
	return out, nil
}
