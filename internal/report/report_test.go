package report

import (
	"strings"
	"testing"
)

func TestTextRendering(t *testing.T) {
	tb := New("T1", "class", "n", "met")
	tb.Add("latecomer", 10, 10)
	tb.Add("mirror", 8, 8)
	tb.Note("seed %d", 42)
	out := tb.String()
	if !strings.Contains(out, "== T1 ==") {
		t.Error("missing title")
	}
	for _, want := range []string{"class", "latecomer", "mirror", "note: seed 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: each data line has the same prefix width up to
	// the second column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.Add(3.14159265)
	if !strings.Contains(tb.String(), "3.142") {
		t.Errorf("float not compacted: %s", tb.String())
	}
}

func TestCSV(t *testing.T) {
	tb := New("x", "a", "b")
	tb.Add("plain", `with "quote", and comma`)
	got := tb.CSV()
	want := "a,b\nplain,\"with \"\"quote\"\", and comma\"\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}
