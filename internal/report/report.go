// Package report renders the experiment tables as aligned text and CSV.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the aligned-text form.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the comma-separated form (quotes cells containing commas).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
