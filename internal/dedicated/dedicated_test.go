package dedicated

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/sim"
)

func simulate(in inst.Instance, p func() prog.Program, maxSeg int) sim.Result {
	set := sim.DefaultSettings()
	set.MaxSegments = maxSeg
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: p(), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: p(), Radius: in.R}
	return sim.Run(a, b, set)
}

// S1 boundary: meets at exactly t = d − r with gap exactly r.
func TestS1Boundary(t *testing.T) {
	for _, b0ang := range []float64{0, 0.7, 2.0, 4.0} {
		d := 2.0
		r := 0.5
		in := inst.Instance{R: r, X: d * math.Cos(b0ang), Y: d * math.Sin(b0ang),
			Phi: 0, Tau: 1, V: 1, Chi: 1}
		in.T = in.Dist() - r // exact boundary in float arithmetic
		if !in.InS1() {
			t.Fatalf("setup: not S1: %v", in)
		}
		res := simulate(in, func() prog.Program { return S1Program(in) }, 1000)
		if !res.Met {
			t.Fatalf("angle %v: no rendezvous: %v", b0ang, res)
		}
		if got, want := res.MeetTime.Float64(), S1MeetTime(in); math.Abs(got-want) > 1e-5 {
			t.Errorf("angle %v: met at %v, want %v", b0ang, got, want)
		}
		if gap := res.EndA.Dist(res.EndB); math.Abs(gap-r) > 1e-6 {
			t.Errorf("angle %v: meeting gap %v, want exactly r", b0ang, gap)
		}
	}
}

// S2 boundary: the Lemma 3.9 algorithm meets at distance exactly r by
// time h + 2t, for both North/South cases and various φ.
func TestS2Boundary(t *testing.T) {
	cases := []inst.Instance{
		{R: 0.5, X: 2, Y: 1, Phi: 0.8, Tau: 1, V: 1, Chi: -1},
		{R: 0.5, X: -1.5, Y: 2, Phi: 2.4, Tau: 1, V: 1, Chi: -1},
		{R: 0.4, X: 2, Y: -1, Phi: 5.0, Tau: 1, V: 1, Chi: -1},
		{R: 0.3, X: 1.2, Y: 0, Phi: 0, Tau: 1, V: 1, Chi: -1}, // φ = 0 mirror
		{R: 0.5, X: 0.9, Y: 2.2, Phi: 1.3, Tau: 1, V: 1, Chi: -1},
	}
	for k, in := range cases {
		in.T = in.ProjGap() - in.R
		if in.T < 0 {
			t.Fatalf("case %d: projGap %v below r", k, in.ProjGap())
		}
		if !in.InS2() {
			t.Fatalf("case %d: not S2: %v", k, in)
		}
		res := simulate(in, func() prog.Program { return S2Program(in) }, 1000)
		if !res.Met {
			t.Fatalf("case %d: no rendezvous: %v\n%v", k, res, in)
		}
		if bound := S2MeetTimeBound(in); res.MeetTime.Float64() > bound+1e-6 {
			t.Errorf("case %d: met at %v after bound %v", k, res.MeetTime.Float64(), bound)
		}
		if gap := res.EndA.Dist(res.EndB); math.Abs(gap-in.R) > 1e-6 {
			t.Errorf("case %d: meeting gap %v, want exactly r=%v", k, gap, in.R)
		}
	}
}

// S2 with t = 0 (projections already at distance r): agents just walk to
// their projections.
func TestS2ZeroDelay(t *testing.T) {
	in := inst.Instance{R: 0.5, X: 0.5, Y: 2, Phi: 0, Tau: 1, V: 1, Chi: -1}
	// φ=0: projGap = |x| = 0.5 = r → t = 0.
	in.T = in.ProjGap() - in.R
	if in.T != 0 || !in.InS2() {
		t.Fatalf("setup: t = %v", in.T)
	}
	res := simulate(in, func() prog.Program { return S2Program(in) }, 1000)
	if !res.Met {
		t.Fatalf("no rendezvous: %v", res)
	}
}

func TestTrivial(t *testing.T) {
	in := inst.Instance{R: 3, X: 1, Y: 1, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	p, ok := ForInstance(in, core.Compact())
	if !ok {
		t.Fatal("trivial instance rejected")
	}
	res := simulate(in, func() prog.Program { return p }, 10)
	if !res.Met || res.MeetTime.Float64() != 0 {
		t.Fatalf("trivial: %v", res)
	}
}

// ForInstance covers exactly the feasible instances (Theorem 3.1 "if").
func TestForInstanceCoverage(t *testing.T) {
	g := inst.NewGen(90)
	feasibleClasses := []inst.Class{
		inst.ClassSimultaneousNonSync, inst.ClassSimultaneousRotated,
		inst.ClassLatecomer, inst.ClassMirrorInterior, inst.ClassClockDrift,
		inst.ClassSpeedOnly, inst.ClassRotatedDelayed,
		inst.ClassBoundaryS1, inst.ClassBoundaryS2,
	}
	for _, c := range feasibleClasses {
		for _, in := range g.DrawN(c, 50) {
			if _, ok := ForInstance(in, core.Compact()); !ok {
				t.Fatalf("feasible instance rejected (%v): %v", c, in)
			}
		}
	}
	for _, c := range []inst.Class{inst.ClassInfeasibleShift, inst.ClassInfeasibleMirror} {
		for _, in := range g.DrawN(c, 50) {
			if _, ok := ForInstance(in, core.Compact()); ok {
				t.Fatalf("infeasible instance accepted (%v): %v", c, in)
			}
		}
	}
}

// Failure injection: the boundary algorithms are knife-edge exact. A
// dedicated S2 program computed for the *nominal* instance fails when the
// actual agent speed is perturbed by a fraction of a percent — the gap
// bottoms out strictly above r. (Contrast: interior instances tolerate
// the same perturbation, and a speed perturbation even *helps* the
// universal algorithm by making the instance non-synchronous.)
func TestS2BoundarySpeedPerturbationBreaks(t *testing.T) {
	in := inst.Instance{R: 0.5, X: 2, Y: 1, Phi: 0.8, Tau: 1, V: 1, Chi: -1}
	in.T = in.ProjGap() - in.R
	nominal := in

	// The edge is one-sided: a slightly *fast* agent overshoots and still
	// dips below r, while a slightly *slow* one stops short forever.
	for _, eps := range []float64{1e-3, 1e-2} {
		actual := in
		actual.V = 1 - eps // the hardware is slightly slow
		set := sim.DefaultSettings()
		set.MaxSegments = 10_000
		// Both agents still run the program computed for the nominal
		// instance.
		a := sim.AgentSpec{Attrs: actual.AgentA(), Prog: S2Program(nominal), Radius: in.R}
		b := sim.AgentSpec{Attrs: actual.AgentB(), Prog: S2Program(nominal), Radius: in.R}
		res := sim.Run(a, b, set)
		if res.Met {
			t.Fatalf("eps=%v: perturbed boundary run still met: %v", eps, res)
		}
		if res.MinGap <= in.R {
			t.Fatalf("eps=%v: gap dipped to %v ≤ r", eps, res.MinGap)
		}
	}

	// Control: the unperturbed run meets.
	res := simulate(nominal, func() prog.Program { return S2Program(nominal) }, 10_000)
	if !res.Met {
		t.Fatalf("control failed: %v", res)
	}
}

// And the complementary robustness: perturbing the speed of an interior
// (feasible, typed) instance leaves the universal algorithm working — the
// perturbed instance is simply non-synchronous, hence still covered.
func TestInteriorSpeedPerturbationHarmless(t *testing.T) {
	in := inst.Instance{R: 1.0, X: 1.2, Y: 0.4, Phi: 1.0, Tau: 1, V: 1, T: 1.5, Chi: -1}
	in.V = 1 + 1e-3
	if in.TypeOf() == inst.TypeNone {
		t.Fatal("perturbed interior instance left the covered set")
	}
	p, ok := ForInstance(in, core.Compact())
	if !ok {
		t.Fatal("no witness")
	}
	res := simulate(in, func() prog.Program { return p }, 150_000_000)
	if !res.Met {
		t.Fatalf("perturbed interior instance failed: %v", res)
	}
}

// Random S2 boundary instances: the dedicated algorithm always meets.
func TestS2BoundarySamples(t *testing.T) {
	g := inst.NewGen(91)
	for k, in := range g.DrawN(inst.ClassBoundaryS2, 25) {
		res := simulate(in, func() prog.Program { return S2Program(in) }, 1000)
		if !res.Met {
			t.Fatalf("sample %d: no rendezvous: %v\n%v", k, res, in)
		}
		if gap := res.EndA.Dist(res.EndB); math.Abs(gap-in.R) > 1e-5 {
			t.Errorf("sample %d: gap %v != r %v", k, gap, in.R)
		}
	}
}

// Random S1 boundary instances likewise.
func TestS1BoundarySamples(t *testing.T) {
	g := inst.NewGen(92)
	for k, in := range g.DrawN(inst.ClassBoundaryS1, 25) {
		res := simulate(in, func() prog.Program { return S1Program(in) }, 1000)
		if !res.Met {
			t.Fatalf("sample %d: no rendezvous: %v\n%v", k, res, in)
		}
	}
}
