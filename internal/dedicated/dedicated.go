// Package dedicated implements per-instance rendezvous algorithms: the
// algorithms that witness feasibility in Theorem 3.1 for the boundary
// instances that the universal algorithm provably cannot handle
// (the exception sets S1 and S2 of Section 4).
//
// A dedicated algorithm receives the instance tuple as input, but the two
// anonymous agents still execute the *same* program, each interpreting it
// in its own private frame — neither knows whether it is A or B.
package dedicated

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/prog"
)

// S1Program returns the dedicated algorithm for S1 boundary instances
// (synchronous, χ = 1, φ = 0, t = d − r): head toward (x, y) for
// distance t.
//
// Both frames are shifts of each other, so both agents move in the same
// absolute direction û = b₀/d. While only A is awake (the first t time
// units) the gap shrinks from d to d − t = r — rendezvous occurs exactly
// when B wakes. The move length is exactly t: B never actually travels
// (it sees A the moment it would start).
func S1Program(in inst.Instance) prog.Program {
	theta := in.B0().Angle()
	return prog.Instrs(prog.Move(theta, in.T))
}

// S1MeetTime returns the exact rendezvous time of S1Program: t.
func S1MeetTime(in inst.Instance) float64 { return in.T }

// S2Program returns the dedicated algorithm of Lemma 3.9 for S2 boundary
// instances (synchronous, χ = −1, t = dist(proj_A, proj_B) − r):
//
//  1. go to the orthogonal projection of the start onto the canonical
//     line L, then
//  2. go North t and South t in the local system Rot((φ+π)/2), whose
//     North is the same absolute direction along L for both agents.
//
// The program below is expressed in A's local terms; interpreting the
// same instructions in B's mirrored frame lands B on *its* projection
// (the reflection across L maps one projection displacement to the
// other) and moves it along L in the same absolute direction.
func S2Program(in inst.Instance) prog.Program {
	line := in.CanonicalLine()
	toProj := line.Project(geom.Vec2{}) // A's projection, as a local vector
	h := toProj.Norm()
	north := in.Phi/2 + math.Pi // local angle of Rot((φ+π)/2)'s North
	var list []prog.Instr
	if h > 0 {
		list = append(list, prog.Move(toProj.Angle(), h))
	}
	list = append(list,
		prog.Move(north, in.T),
		prog.Move(north+math.Pi, in.T),
	)
	return prog.Instrs(list...)
}

// S2MeetTimeBound returns the latest rendezvous time of S2Program per the
// two cases of Lemma 3.9: z (case 1) or z + t (case 2), where
// z = h + t and h is the distance from a start to the canonical line.
func S2MeetTimeBound(in inst.Instance) float64 {
	h := in.CanonicalLine().DistTo(geom.Vec2{})
	return h + 2*in.T
}

// TrivialProgram returns the dedicated algorithm for r ≥ d: stand still —
// the agents already see each other.
func TrivialProgram() prog.Program { return prog.Empty() }

// ForInstance returns a dedicated program witnessing the feasibility of
// the instance (Theorem 3.1 "if" direction), or false for infeasible
// instances:
//
//   - r ≥ d: stand still;
//   - S1 / S2 boundaries: the dedicated boundary algorithms above;
//   - every other feasible instance: the universal algorithm (Theorem 3.2
//     covers it).
func ForInstance(in inst.Instance, s core.Schedule) (prog.Program, bool) {
	switch {
	case in.Trivial():
		return TrivialProgram(), true
	case in.InS1():
		return S1Program(in), true
	case in.InS2():
		return S2Program(in), true
	case in.TypeOf() != inst.TypeNone:
		return core.Program(s, nil), true
	}
	return nil, false
}
