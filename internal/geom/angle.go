package geom

import "math"

// TwoPi is 2π.
const TwoPi = 2 * math.Pi

// NormalizeAngle reduces an angle to the canonical range [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, TwoPi)
	if a < 0 {
		a += TwoPi
	}
	return a
}

// AngleDiff returns the smallest unoriented angle between two directions
// given as angles, in [0, π].
func AngleDiff(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = TwoPi - d
	}
	return d
}

// InclinationDiff returns the smallest unoriented angle between two line
// inclinations (lines are direction-free, so the result is in [0, π/2]).
func InclinationDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), math.Pi)
	if d > math.Pi/2 {
		d = math.Pi - d
	}
	return d
}

// DyadicAngle returns k·π/2^i, the angles used by the Rot(jπ/2^i) local
// systems of Algorithm 1.
func DyadicAngle(k, i int) float64 {
	return float64(k) * math.Pi / math.Ldexp(1, i)
}
