// Package geom provides the planar geometry substrate for the rendezvous
// system: vectors, rotations and reflections, lines and orthogonal
// projections, and the closest-approach kernels used by the simulator to
// detect sight events between two linearly moving agents.
//
// All types are small value types designed to be allocation-free in hot
// paths.
package geom

import "math"

// Vec2 is a point or displacement in the plane.
type Vec2 struct {
	X, Y float64
}

// V is shorthand for Vec2{x, y}.
func V(x, y float64) Vec2 { return Vec2{x, y} }

// Add returns a + b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a - b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Scale returns k * a.
func (a Vec2) Scale(k float64) Vec2 { return Vec2{k * a.X, k * a.Y} }

// Neg returns -a.
func (a Vec2) Neg() Vec2 { return Vec2{-a.X, -a.Y} }

// Dot returns the scalar product a·b.
func (a Vec2) Dot(b Vec2) float64 { return a.X*b.X + a.Y*b.Y }

// Cross returns the z-component of the 3D cross product a×b, i.e. the
// signed area of the parallelogram spanned by a and b.
func (a Vec2) Cross(b Vec2) float64 { return a.X*b.Y - a.Y*b.X }

// Norm returns the Euclidean length |a|. It is robust against
// intermediate overflow via math.Hypot.
func (a Vec2) Norm() float64 { return math.Hypot(a.X, a.Y) }

// Norm2 returns |a|² without a square root.
func (a Vec2) Norm2() float64 { return a.X*a.X + a.Y*a.Y }

// Dist returns the Euclidean distance between points a and b.
func (a Vec2) Dist(b Vec2) float64 { return a.Sub(b).Norm() }

// Unit returns a / |a|. The zero vector is returned unchanged.
func (a Vec2) Unit() Vec2 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return Vec2{a.X / n, a.Y / n}
}

// Perp returns a rotated by +90 degrees (counterclockwise).
func (a Vec2) Perp() Vec2 { return Vec2{-a.Y, a.X} }

// Angle returns the polar angle of a in (-π, π].
func (a Vec2) Angle() float64 { return math.Atan2(a.Y, a.X) }

// Lerp returns the point (1-s)a + s·b.
func (a Vec2) Lerp(b Vec2, s float64) Vec2 {
	return Vec2{a.X + s*(b.X-a.X), a.Y + s*(b.Y-a.Y)}
}

// IsFinite reports whether both coordinates are finite numbers.
func (a Vec2) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0)
}

// Polar returns the unit vector at polar angle theta. Components whose
// magnitude is below 1e-15 are snapped to 0 (with the other renormalized
// to ±1) so that compass directions — multiples of π/2, ubiquitous in the
// paper's walks — are exact and axis-aligned moves do not accumulate
// cross-axis drift.
func Polar(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	if math.Abs(s) < 1e-15 {
		s = 0
		c = math.Copysign(1, c)
	} else if math.Abs(c) < 1e-15 {
		c = 0
		s = math.Copysign(1, s)
	}
	return Vec2{c, s}
}

// ApproxEqual reports whether a and b agree within absolute tolerance tol
// in each coordinate.
func (a Vec2) ApproxEqual(b Vec2, tol float64) bool {
	return math.Abs(a.X-b.X) <= tol && math.Abs(a.Y-b.Y) <= tol
}
