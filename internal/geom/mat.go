package geom

import "math"

// Mat2 is a 2×2 matrix in row-major order:
//
//	| A B |
//	| C D |
type Mat2 struct {
	A, B float64
	C, D float64
}

// Identity is the 2×2 identity matrix.
var Identity = Mat2{1, 0, 0, 1}

// Rotation returns the counterclockwise rotation by phi radians.
func Rotation(phi float64) Mat2 {
	s, c := math.Sincos(phi)
	return Mat2{c, -s, s, c}
}

// Reflection returns the reflection across the line through the origin
// with inclination theta. Note Reflection(phi/2) == Rotation(phi) ∘ FlipY,
// the identity that underlies Lemma 2.1 of the paper.
func Reflection(theta float64) Mat2 {
	s, c := math.Sincos(2 * theta)
	return Mat2{c, s, s, -c}
}

// FlipY is the chirality-flip matrix diag(1, -1).
var FlipY = Mat2{1, 0, 0, -1}

// Apply returns M·p.
func (m Mat2) Apply(p Vec2) Vec2 {
	return Vec2{m.A*p.X + m.B*p.Y, m.C*p.X + m.D*p.Y}
}

// Mul returns the matrix product m·n.
func (m Mat2) Mul(n Mat2) Mat2 {
	return Mat2{
		m.A*n.A + m.B*n.C, m.A*n.B + m.B*n.D,
		m.C*n.A + m.D*n.C, m.C*n.B + m.D*n.D,
	}
}

// Scale returns k·m.
func (m Mat2) Scale(k float64) Mat2 {
	return Mat2{k * m.A, k * m.B, k * m.C, k * m.D}
}

// Add returns m + n.
func (m Mat2) Add(n Mat2) Mat2 {
	return Mat2{m.A + n.A, m.B + n.B, m.C + n.C, m.D + n.D}
}

// Sub returns m - n.
func (m Mat2) Sub(n Mat2) Mat2 {
	return Mat2{m.A - n.A, m.B - n.B, m.C - n.C, m.D - n.D}
}

// Det returns the determinant of m.
func (m Mat2) Det() float64 { return m.A*m.D - m.B*m.C }

// Inverse returns m⁻¹ and true, or the zero matrix and false when m is
// singular (|det| below tiny).
func (m Mat2) Inverse() (Mat2, bool) {
	det := m.Det()
	if math.Abs(det) < 1e-300 {
		return Mat2{}, false
	}
	inv := 1 / det
	return Mat2{m.D * inv, -m.B * inv, -m.C * inv, m.A * inv}, true
}

// OpNorm returns the operator (spectral) 2-norm of m, computed from the
// singular values of m.
func (m Mat2) OpNorm() float64 {
	// Largest singular value: sqrt of the largest eigenvalue of mᵀm.
	a := m.A*m.A + m.C*m.C
	b := m.A*m.B + m.C*m.D
	d := m.B*m.B + m.D*m.D
	tr := a + d
	disc := math.Sqrt((a-d)*(a-d) + 4*b*b)
	lam := (tr + disc) / 2
	if lam < 0 {
		lam = 0
	}
	return math.Sqrt(lam)
}

// Transpose returns mᵀ.
func (m Mat2) Transpose() Mat2 { return Mat2{m.A, m.C, m.B, m.D} }

// ApproxEqual reports whether all entries agree within tol.
func (m Mat2) ApproxEqual(n Mat2, tol float64) bool {
	return math.Abs(m.A-n.A) <= tol && math.Abs(m.B-n.B) <= tol &&
		math.Abs(m.C-n.C) <= tol && math.Abs(m.D-n.D) <= tol
}
