package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestClosestApproachHeadOn(t *testing.T) {
	// Two points approaching head-on along the x-axis pass through
	// distance 0 at s = 5.
	a := Moving{V(0, 0), V(1, 0)}
	b := Moving{V(10, 0), V(-1, 0)}
	ap := ClosestApproach(a, b, 100)
	if math.Abs(ap.SMin-5) > tol || ap.DMin > tol {
		t.Errorf("head-on: %+v", ap)
	}
}

func TestClosestApproachParallel(t *testing.T) {
	a := Moving{V(0, 0), V(1, 0)}
	b := Moving{V(0, 3), V(1, 0)}
	ap := ClosestApproach(a, b, 100)
	if math.Abs(ap.DMin-3) > tol {
		t.Errorf("parallel gap: %+v", ap)
	}
}

func TestClosestApproachClamped(t *testing.T) {
	// Vertex at s = 5 but interval only reaches s = 2: minimum at s = 2.
	a := Moving{V(0, 0), V(1, 0)}
	b := Moving{V(10, 1), V(-1, 0)}
	ap := ClosestApproach(a, b, 2)
	if ap.SMin != 2 {
		t.Errorf("clamped smin = %v", ap.SMin)
	}
	want := GapAt(a, b, 2)
	if math.Abs(ap.DMin-want) > tol {
		t.Errorf("clamped dmin = %v, want %v", ap.DMin, want)
	}
	// Receding points: minimum at s = 0.
	c := Moving{V(10, 1), V(1, 0)}
	ap = ClosestApproach(a, c, 10)
	if ap.SMin != 0 {
		t.Errorf("receding smin = %v", ap.SMin)
	}
}

func TestFirstWithinExact(t *testing.T) {
	// Gap shrinks from 10 at rate 2; reaches r = 4 at s = 3.
	a := Moving{V(0, 0), V(1, 0)}
	b := Moving{V(10, 0), V(-1, 0)}
	s, ok := FirstWithin(a, b, 100, 4)
	if !ok || math.Abs(s-3) > tol {
		t.Errorf("FirstWithin = %v, %v", s, ok)
	}
}

func TestFirstWithinAlreadyInside(t *testing.T) {
	a := Moving{V(0, 0), V(1, 0)}
	b := Moving{V(1, 0), V(1, 0)}
	s, ok := FirstWithin(a, b, 10, 2)
	if !ok || s != 0 {
		t.Errorf("inside: %v, %v", s, ok)
	}
}

func TestFirstWithinNever(t *testing.T) {
	// Parallel motion, constant gap 3 > r = 1.
	a := Moving{V(0, 0), V(1, 0)}
	b := Moving{V(0, 3), V(1, 0)}
	if _, ok := FirstWithin(a, b, 1000, 1); ok {
		t.Error("parallel points reported within r")
	}
	// Receding points.
	c := Moving{V(5, 0), V(1, 0)}
	if _, ok := FirstWithin(a, c, 1000, 1); ok {
		t.Error("receding points reported within r")
	}
	// Passing at distance 2 > r = 1.
	d := Moving{V(10, 2), V(-1, 0)}
	if _, ok := FirstWithin(a, d, 1000, 1); ok {
		t.Error("far pass reported within r")
	}
}

func TestFirstWithinOutsideInterval(t *testing.T) {
	// Crossing happens at s = 3 but interval ends at 2.
	a := Moving{V(0, 0), V(1, 0)}
	b := Moving{V(10, 0), V(-1, 0)}
	if _, ok := FirstWithin(a, b, 2, 4); ok {
		t.Error("crossing outside interval reported")
	}
}

func TestFirstWithinTangent(t *testing.T) {
	// Closest pass at exactly r: disc == 0 modulo rounding. Pass at
	// vertical distance exactly 1 with r = 1.
	a := Moving{V(0, 0), V(1, 0)}
	b := Moving{V(10, 1), V(-1, 0)}
	s, ok := FirstWithin(a, b, 100, 1+1e-9)
	if !ok {
		t.Fatal("tangent pass with slack not detected")
	}
	if g := GapAt(a, b, s); g > 1+2e-9 {
		t.Errorf("gap at tangent = %v", g)
	}
}

// Property test: FirstWithin agrees with dense sampling of the gap.
func TestQuickFirstWithinVsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 1500; i++ {
		a := Moving{V(rng.NormFloat64()*5, rng.NormFloat64()*5), V(rng.NormFloat64(), rng.NormFloat64())}
		b := Moving{V(rng.NormFloat64()*5, rng.NormFloat64()*5), V(rng.NormFloat64(), rng.NormFloat64())}
		T := rng.Float64() * 20
		r := rng.Float64() * 3
		s, ok := FirstWithin(a, b, T, r)

		// Dense sampling for ground truth.
		const n = 4000
		sampleHit := false
		var sampleS float64
		for k := 0; k <= n; k++ {
			ss := T * float64(k) / n
			if GapAt(a, b, ss) <= r {
				sampleHit = true
				sampleS = ss
				break
			}
		}
		if ok && GapAt(a, b, s)-r > 1e-6 {
			t.Fatalf("reported hit at s=%v has gap %v > r=%v", s, GapAt(a, b, s), r)
		}
		if ok != sampleHit {
			// Sampling can miss razor-thin tangencies; tolerate only when
			// the analytic minimum is extremely close to r.
			ap := ClosestApproach(a, b, T)
			if math.Abs(ap.DMin-r) > 1e-3 {
				t.Fatalf("disagreement: analytic=%v sampled=%v (dmin=%v r=%v)", ok, sampleHit, ap.DMin, r)
			}
			continue
		}
		if ok && sampleHit && s > sampleS+1e-6 {
			t.Fatalf("analytic first-hit %v later than sampled %v", s, sampleS)
		}
	}
}

// Property test: ClosestApproach DMin lower-bounds all sampled gaps.
func TestQuickClosestApproachIsMin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a := Moving{V(rng.NormFloat64()*3, rng.NormFloat64()*3), V(rng.NormFloat64(), rng.NormFloat64())}
		b := Moving{V(rng.NormFloat64()*3, rng.NormFloat64()*3), V(rng.NormFloat64(), rng.NormFloat64())}
		T := rng.Float64() * 10
		ap := ClosestApproach(a, b, T)
		for k := 0; k <= 100; k++ {
			ss := T * float64(k) / 100
			if GapAt(a, b, ss) < ap.DMin-1e-9 {
				t.Fatalf("sampled gap below analytic minimum")
			}
		}
		if g := GapAt(a, b, ap.SMin); math.Abs(g-ap.DMin) > 1e-9 {
			t.Fatalf("DMin inconsistent with SMin")
		}
	}
}
