package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRotationBasics(t *testing.T) {
	r := Rotation(math.Pi / 2)
	if got := r.Apply(V(1, 0)); !got.ApproxEqual(V(0, 1), tol) {
		t.Errorf("R(π/2)·ex = %v", got)
	}
	if got := r.Apply(V(0, 1)); !got.ApproxEqual(V(-1, 0), tol) {
		t.Errorf("R(π/2)·ey = %v", got)
	}
	if d := r.Det(); math.Abs(d-1) > tol {
		t.Errorf("det = %v", d)
	}
}

func TestRotationComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := rng.Float64()*TwoPi, rng.Float64()*TwoPi
		got := Rotation(a).Mul(Rotation(b))
		want := Rotation(a + b)
		if !got.ApproxEqual(want, 1e-9) {
			t.Fatalf("R(%v)R(%v) != R(a+b)", a, b)
		}
	}
}

// Reflection(phi/2) must equal Rotation(phi)∘FlipY — the identity that
// makes the canonical line a mirror axis for χ = -1 instances (Lemma 2.1).
func TestReflectionIsRotFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		phi := rng.Float64() * TwoPi
		got := Rotation(phi).Mul(FlipY)
		want := Reflection(phi / 2)
		if !got.ApproxEqual(want, 1e-9) {
			t.Fatalf("R(φ)·FlipY != Ref(φ/2) for φ=%v:\n%+v\n%+v", phi, got, want)
		}
	}
}

func TestReflectionInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		theta := rng.Float64() * math.Pi
		m := Reflection(theta)
		if got := m.Mul(m); !got.ApproxEqual(Identity, 1e-9) {
			t.Fatalf("Ref(θ)² != I for θ=%v", theta)
		}
		if d := m.Det(); math.Abs(d+1) > tol {
			t.Fatalf("Ref det = %v, want -1", d)
		}
	}
}

func TestInverse(t *testing.T) {
	m := Mat2{2, 1, 1, 3}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	if got := m.Mul(inv); !got.ApproxEqual(Identity, tol) {
		t.Errorf("m·m⁻¹ = %+v", got)
	}
	if _, ok := (Mat2{1, 2, 2, 4}).Inverse(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestOpNorm(t *testing.T) {
	// Rotations and reflections are isometries.
	if got := Rotation(1.1).OpNorm(); math.Abs(got-1) > 1e-9 {
		t.Errorf("rotation OpNorm = %v", got)
	}
	if got := Reflection(0.7).OpNorm(); math.Abs(got-1) > 1e-9 {
		t.Errorf("reflection OpNorm = %v", got)
	}
	// diag(3, 2) has norm 3.
	if got := (Mat2{3, 0, 0, 2}).OpNorm(); math.Abs(got-3) > 1e-9 {
		t.Errorf("diag OpNorm = %v", got)
	}
	// OpNorm bounds |M·p| / |p|.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		m := Mat2{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		n := m.OpNorm()
		p := Polar(rng.Float64() * TwoPi)
		if m.Apply(p).Norm() > n*(1+1e-9)+1e-12 {
			t.Fatalf("OpNorm not an upper bound: %+v", m)
		}
	}
}

func TestTransposeAndArith(t *testing.T) {
	m := Mat2{1, 2, 3, 4}
	if got := m.Transpose(); got != (Mat2{1, 3, 2, 4}) {
		t.Errorf("Transpose = %+v", got)
	}
	if got := m.Add(Identity); got != (Mat2{2, 2, 3, 5}) {
		t.Errorf("Add = %+v", got)
	}
	if got := m.Sub(Identity); got != (Mat2{0, 2, 3, 3}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := m.Scale(2); got != (Mat2{2, 4, 6, 8}) {
		t.Errorf("Scale = %+v", got)
	}
}
