package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func TestVecBasics(t *testing.T) {
	a := V(3, 4)
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := a.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
	if got := a.Add(V(1, -1)); got != V(4, 3) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(V(1, 1)); got != V(2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != V(-3, -4) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(V(2, 1)); got != 10 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(V(2, 1)); got != 3-8 {
		t.Errorf("Cross = %v", got)
	}
	if got := V(1, 0).Perp(); got != V(0, 1) {
		t.Errorf("Perp = %v", got)
	}
}

func TestVecUnit(t *testing.T) {
	u := V(3, 4).Unit()
	if math.Abs(u.Norm()-1) > tol {
		t.Errorf("unit norm = %v", u.Norm())
	}
	if got := (Vec2{}).Unit(); got != (Vec2{}) {
		t.Errorf("zero unit = %v", got)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0), V(2, 4)
	if got := a.Lerp(b, 0.5); !got.ApproxEqual(V(1, 2), tol) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestPolar(t *testing.T) {
	for _, tc := range []struct {
		theta float64
		want  Vec2
	}{
		{0, V(1, 0)},
		{math.Pi / 2, V(0, 1)},
		{math.Pi, V(-1, 0)},
		{-math.Pi / 2, V(0, -1)},
	} {
		if got := Polar(tc.theta); !got.ApproxEqual(tc.want, tol) {
			t.Errorf("Polar(%v) = %v, want %v", tc.theta, got, tc.want)
		}
	}
}

func TestVecAngle(t *testing.T) {
	for _, theta := range []float64{0, 0.3, 1.2, 3.0, -2.5} {
		got := Polar(theta).Angle()
		if AngleDiff(got, theta) > tol {
			t.Errorf("Angle(Polar(%v)) = %v", theta, got)
		}
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0).IsFinite() || V(0, math.Inf(1)).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

// Property: dot product is bilinear and symmetric.
func TestQuickDotSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := V(ax, ay), V(bx, by)
		if !a.IsFinite() || !b.IsFinite() ||
			a.Norm2() > 1e300 || b.Norm2() > 1e300 {
			return true // avoid overflow artifacts; exactness holds in range
		}
		return a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |a+b| ≤ |a| + |b| (triangle inequality, with rounding slack).
func TestQuickTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := V(r.NormFloat64(), r.NormFloat64())
		b := V(r.NormFloat64(), r.NormFloat64())
		if a.Add(b).Norm() > a.Norm()+b.Norm()+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v", a, b)
		}
	}
}

// Property: Perp is a quarter rotation: a·Perp(a) == 0 and |Perp(a)| == |a|.
func TestQuickPerp(t *testing.T) {
	f := func(x, y float64) bool {
		a := V(x, y)
		if !a.IsFinite() || a.Norm2() > 1e300 {
			return true
		}
		p := a.Perp()
		return a.Dot(p) == 0 && p.Norm2() == a.Norm2()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
