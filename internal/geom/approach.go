package geom

import "math"

// Moving describes a point moving with constant velocity: position
// P + s·V at parameter s ≥ 0.
type Moving struct {
	P Vec2 // position at s = 0
	V Vec2 // velocity
}

// At returns the position at parameter s.
func (m Moving) At(s float64) Vec2 { return m.P.Add(m.V.Scale(s)) }

// Approach holds the result of a closest-approach query between two
// moving points over a parameter interval [0, T].
type Approach struct {
	SMin float64 // parameter of the minimum distance, in [0, T]
	DMin float64 // the minimum distance
}

// ClosestApproach computes the minimum distance between two points moving
// with constant velocities over the parameter interval [0, T].
//
// The squared distance D(s) = |Δp + s·Δv|² is a convex quadratic, so the
// minimum is at the clamped vertex.
func ClosestApproach(a, b Moving, T float64) Approach {
	dp := a.P.Sub(b.P)
	dv := a.V.Sub(b.V)
	vv := dv.Norm2()
	if vv == 0 {
		return Approach{0, dp.Norm()}
	}
	s := -dp.Dot(dv) / vv
	if s < 0 {
		s = 0
	} else if s > T {
		s = T
	}
	return Approach{s, dp.Add(dv.Scale(s)).Norm()}
}

// FirstWithin returns the earliest parameter s in [0, T] at which the two
// moving points are at distance ≤ r, and true; or 0 and false when they
// never come within r during the interval.
//
// Solving |Δp + s·Δv|² = r² gives a quadratic in s; the earliest root in
// range (or s = 0 when already within r) is returned. The computation is
// exact up to float64 rounding — no time stepping is involved, which is
// what lets the simulator take arbitrarily long segments in O(1).
func FirstWithin(a, b Moving, T, r float64) (float64, bool) {
	dp := a.P.Sub(b.P)
	dv := a.V.Sub(b.V)
	c := dp.Norm2() - r*r
	if c <= 0 {
		return 0, true // already within r at the start
	}
	vv := dv.Norm2()
	if vv == 0 {
		return 0, false // constant gap, never closes
	}
	bHalf := dp.Dot(dv)
	// s² vv + 2 s bHalf + c = 0
	disc := bHalf*bHalf - vv*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	// Numerically stable smaller root: with c > 0 both roots share the
	// sign of -bHalf; the smaller positive root exists only if bHalf < 0.
	if bHalf >= 0 {
		return 0, false // moving apart (or parallel): gap only grows
	}
	// Standard stable quadratic formula: q = -(bHalf - sq)… take care of
	// signs: roots are (-bHalf ± sq)/vv. Smaller root via c/(q) form.
	q := -bHalf + sq
	s := c / q
	if s >= 0 && s <= T {
		return s, true
	}
	return 0, false
}

// GapAt returns the distance between the two moving points at parameter s.
func GapAt(a, b Moving, s float64) float64 {
	return a.At(s).Dist(b.At(s))
}
