package geom

import (
	"math"
	"testing"
)

func TestNormalizeAngle(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0, 0},
		{TwoPi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	} {
		if got := NormalizeAngle(tc.in); math.Abs(got-tc.want) > tol {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	for _, tc := range []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi / 2, math.Pi / 2},
		{0.1, TwoPi - 0.1, 0.2},
		{math.Pi, 0, math.Pi},
	} {
		if got := AngleDiff(tc.a, tc.b); math.Abs(got-tc.want) > tol {
			t.Errorf("AngleDiff(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestInclinationDiff(t *testing.T) {
	// Lines at 0 and π are the same line.
	if got := InclinationDiff(0, math.Pi); got > tol {
		t.Errorf("same line diff = %v", got)
	}
	if got := InclinationDiff(0.1, math.Pi-0.1); math.Abs(got-0.2) > tol {
		t.Errorf("near-flat diff = %v", got)
	}
	if got := InclinationDiff(0, math.Pi/2); math.Abs(got-math.Pi/2) > tol {
		t.Errorf("orthogonal diff = %v", got)
	}
}

func TestDyadicAngle(t *testing.T) {
	if got := DyadicAngle(1, 0); math.Abs(got-math.Pi) > tol {
		t.Errorf("DyadicAngle(1,0) = %v", got)
	}
	if got := DyadicAngle(3, 2); math.Abs(got-3*math.Pi/4) > tol {
		t.Errorf("DyadicAngle(3,2) = %v", got)
	}
}
