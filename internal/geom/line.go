package geom

import "math"

// Line is an infinite line given by a point on it and a unit direction.
type Line struct {
	Point Vec2 // any point on the line
	Dir   Vec2 // unit direction vector
}

// LineThrough returns the line through p with direction d (normalized).
func LineThrough(p, d Vec2) Line { return Line{p, d.Unit()} }

// LineAtAngle returns the line through p with inclination theta.
func LineAtAngle(p Vec2, theta float64) Line { return Line{p, Polar(theta)} }

// Project returns the orthogonal projection of q onto the line.
func (l Line) Project(q Vec2) Vec2 {
	s := q.Sub(l.Point).Dot(l.Dir)
	return l.Point.Add(l.Dir.Scale(s))
}

// Coord returns the signed abscissa of the projection of q along the
// line's direction, measured from l.Point.
func (l Line) Coord(q Vec2) float64 { return q.Sub(l.Point).Dot(l.Dir) }

// DistTo returns the (unsigned) distance from q to the line.
func (l Line) DistTo(q Vec2) float64 {
	return math.Abs(q.Sub(l.Point).Cross(l.Dir))
}

// SignedDistTo returns the signed distance from q to the line, positive
// on the left of Dir.
func (l Line) SignedDistTo(q Vec2) float64 {
	return l.Dir.Cross(q.Sub(l.Point))
}

// Reflect returns the mirror image of q across the line.
func (l Line) Reflect(q Vec2) Vec2 {
	p := l.Project(q)
	return p.Add(p.Sub(q))
}

// Inclination returns the inclination of the line normalized to [0, π).
func (l Line) Inclination() float64 {
	a := math.Atan2(l.Dir.Y, l.Dir.X)
	a = math.Mod(a, math.Pi)
	if a < 0 {
		a += math.Pi
	}
	return a
}

// CanonicalLine returns the canonical line of an instance per
// Definition 2.1: the line through the midpoint of the two agent origins
// (A at the origin, B at b0) with inclination phi/2 (inclination 0 when
// phi == 0, i.e. parallel to both x-axes).
func CanonicalLine(b0 Vec2, phi float64) Line {
	mid := b0.Scale(0.5)
	return LineAtAngle(mid, phi/2)
}

// ProjGap returns dist(proj_A, proj_B): the distance between the
// orthogonal projections of the two agent origins onto the canonical
// line. In closed form this is |x·cos(phi/2) + y·sin(phi/2)|.
func ProjGap(b0 Vec2, phi float64) float64 {
	l := CanonicalLine(b0, phi)
	return math.Abs(l.Coord(b0) - l.Coord(Vec2{}))
}
