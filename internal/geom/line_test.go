package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestProjectOntoAxis(t *testing.T) {
	l := LineAtAngle(Vec2{}, 0) // the x-axis
	if got := l.Project(V(3, 7)); !got.ApproxEqual(V(3, 0), tol) {
		t.Errorf("Project = %v", got)
	}
	if got := l.DistTo(V(3, 7)); math.Abs(got-7) > tol {
		t.Errorf("DistTo = %v", got)
	}
	if got := l.Coord(V(3, 7)); math.Abs(got-3) > tol {
		t.Errorf("Coord = %v", got)
	}
}

func TestProjectIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		l := LineAtAngle(V(rng.NormFloat64(), rng.NormFloat64()), rng.Float64()*math.Pi)
		q := V(rng.NormFloat64()*10, rng.NormFloat64()*10)
		p := l.Project(q)
		if !l.Project(p).ApproxEqual(p, 1e-9) {
			t.Fatal("projection not idempotent")
		}
		// The residual q - p must be orthogonal to the direction.
		if math.Abs(q.Sub(p).Dot(l.Dir)) > 1e-9 {
			t.Fatal("projection residual not orthogonal")
		}
	}
}

func TestReflectInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		l := LineAtAngle(V(rng.NormFloat64(), rng.NormFloat64()), rng.Float64()*math.Pi)
		q := V(rng.NormFloat64()*5, rng.NormFloat64()*5)
		rq := l.Reflect(q)
		if !l.Reflect(rq).ApproxEqual(q, 1e-8) {
			t.Fatal("reflection not an involution")
		}
		if math.Abs(l.DistTo(q)-l.DistTo(rq)) > 1e-9 {
			t.Fatal("reflection changed distance to axis")
		}
	}
}

func TestSignedDist(t *testing.T) {
	l := LineAtAngle(Vec2{}, 0)
	if got := l.SignedDistTo(V(0, 2)); math.Abs(got-2) > tol {
		t.Errorf("SignedDistTo above = %v", got)
	}
	if got := l.SignedDistTo(V(0, -2)); math.Abs(got+2) > tol {
		t.Errorf("SignedDistTo below = %v", got)
	}
}

func TestInclination(t *testing.T) {
	for _, theta := range []float64{0, 0.4, 1.5, 3.0} {
		l := LineAtAngle(Vec2{}, theta)
		want := math.Mod(theta, math.Pi)
		if got := l.Inclination(); InclinationDiff(got, want) > tol {
			t.Errorf("Inclination(%v) = %v", theta, got)
		}
	}
}

// Canonical line: equidistant from both origins, inclination φ/2.
func TestCanonicalLineEquidistant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		b0 := V(rng.NormFloat64()*5, rng.NormFloat64()*5)
		phi := rng.Float64() * TwoPi
		l := CanonicalLine(b0, phi)
		da := l.DistTo(Vec2{})
		db := l.DistTo(b0)
		if math.Abs(da-db) > 1e-9 {
			t.Fatalf("canonical line not equidistant: %v vs %v", da, db)
		}
		if InclinationDiff(l.Inclination(), phi/2) > 1e-9 {
			t.Fatalf("canonical inclination = %v, want %v", l.Inclination(), phi/2)
		}
	}
}

func TestProjGapClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		b0 := V(rng.NormFloat64()*5, rng.NormFloat64()*5)
		phi := rng.Float64() * TwoPi
		want := math.Abs(b0.X*math.Cos(phi/2) + b0.Y*math.Sin(phi/2))
		if got := ProjGap(b0, phi); math.Abs(got-want) > 1e-9 {
			t.Fatalf("ProjGap = %v, want %v", got, want)
		}
	}
}

// For φ = 0 the canonical line is parallel to the x-axis and the
// projection gap is |x|.
func TestCanonicalLinePhiZero(t *testing.T) {
	b0 := V(3, 4)
	l := CanonicalLine(b0, 0)
	if l.Dir != V(1, 0) {
		t.Errorf("Dir = %v", l.Dir)
	}
	if got := ProjGap(b0, 0); math.Abs(got-3) > tol {
		t.Errorf("ProjGap = %v, want 3", got)
	}
}
