package core

import (
	"math"
	"testing"

	"repro/internal/inst"
	"repro/internal/prog"
)

func TestType1PaperPhase(t *testing.T) {
	in := inst.Instance{R: 1.0, X: 1.2, Y: 0.4, Phi: 1.0, Tau: 1, V: 1, T: 1.5, Chi: -1}
	if in.TypeOf() != inst.Type1 {
		t.Fatal("setup: not type 1")
	}
	sigma, omega := Type1PaperPhase(in)
	if sigma < 1 || omega < 1 {
		t.Fatalf("σ=%d ω=%d", sigma, omega)
	}
	// σ dominates: it contains the π/arcsin(min(r,e)/16(t+r+e+1)) term,
	// which for these parameters is in the hundreds.
	if sigma < 5 || sigma > 20 {
		t.Errorf("σ=%d outside the plausible band", sigma)
	}
}

// The σ bound must grow as the margin e shrinks (the 1/min(r,e) and
// arcsin terms blow up) — the mechanism behind T6's meeting-time blowup.
func TestType1PaperPhaseGrowsAsMarginShrinks(t *testing.T) {
	mk := func(margin float64) inst.Instance {
		in := inst.Instance{R: 0.5, X: 1.2, Y: 0.4, Phi: 1.0, Tau: 1, V: 1, Chi: -1}
		in.T = in.ProjGap() - in.R + margin
		return in
	}
	sBig, _ := Type1PaperPhase(mk(0.5))
	sSmall, _ := Type1PaperPhase(mk(0.01))
	if sSmall <= sBig {
		t.Errorf("σ(e=0.01)=%d not larger than σ(e=0.5)=%d", sSmall, sBig)
	}
}

func TestPredictType1(t *testing.T) {
	in := inst.Instance{R: 1.0, X: 1.2, Y: 0.4, Phi: 1.0, Tau: 1, V: 1, T: 1.5, Chi: -1}
	p, ok := PredictPhase(in, Compact())
	if !ok {
		t.Fatal("no prediction")
	}
	if p.Type != inst.Type1 || p.Phase < 1 || !(p.TimeBound > 0) {
		t.Fatalf("prediction %+v", p)
	}
	// A razor-thin margin pushes the guaranteed phase beyond the
	// predictor cap: it must refuse rather than promise the unreachable.
	thin := in
	thin.T = thin.ProjGap() - thin.R + 1e-9
	if _, ok := PredictPhase(thin, Compact()); ok {
		t.Log("thin margin still predicted — acceptable if within cap")
	}
}

func TestPredictType2(t *testing.T) {
	in := inst.Instance{R: 1.0, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: 1}
	p, ok := PredictPhase(in, Compact())
	if !ok {
		t.Fatal("no prediction")
	}
	if p.Type != inst.Type2 || p.Phase < 1 {
		t.Fatalf("prediction %+v", p)
	}
	// The phase covers both the delay and the Latecomers meet-time bound:
	// 2^phase ≥ t.
	if math.Ldexp(1, p.Phase) < in.T {
		t.Errorf("2^%d < t", p.Phase)
	}
}

func TestPredictType4(t *testing.T) {
	in := inst.Instance{R: 0.8, X: 0.9, Y: 0.1, Phi: 0, Tau: 1, V: 1.5, T: 2, Chi: 1}
	p, ok := PredictPhase(in, Compact())
	if !ok {
		t.Fatal("no prediction")
	}
	if p.Type != inst.Type4 || p.Phase < 1 {
		t.Fatalf("prediction %+v", p)
	}
	// Lemma 3.5's argument needs 2^i ≥ t + Δ + 4(v+1)/r ≥ 4(v+1)/r.
	if math.Ldexp(1, p.Phase) < 4*(in.V+1)/in.R {
		t.Errorf("phase %d too small for the slice-granularity term", p.Phase)
	}
}

// Predictions are simulable guarantees: simulated meeting times respect
// the bounds across a random mix of typed instances.
func TestPredictionBoundsHold(t *testing.T) {
	g := inst.NewGen(110)
	s := Compact()
	checked := 0
	for _, c := range []inst.Class{
		inst.ClassClockDrift, inst.ClassLatecomer, inst.ClassSpeedOnly,
	} {
		for _, in := range g.DrawN(c, 3) {
			p, ok := PredictPhase(in, s)
			if !ok {
				continue
			}
			res, _ := simulate(in, s, 150_000_000)
			if !res.Met {
				t.Fatalf("%v: no meet", in)
			}
			if res.MeetTime.Float64() > p.TimeBound {
				t.Errorf("%v: met at %v after bound %v", in, res.MeetTime.Float64(), p.TimeBound)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d predictions checked", checked)
	}
}

func TestPhaseComposition(t *testing.T) {
	// Phase(i) is exactly the concatenation of the four blocks.
	s := Compact()
	for i := 1; i <= 2; i++ {
		want := prog.TotalDuration(Block1(i)) + prog.TotalDuration(Block2(i)) +
			prog.TotalDuration(Block3(i, s)) + prog.TotalDuration(Block4(i, s))
		got := prog.TotalDuration(Phase(i, s))
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("Phase(%d) duration %v, want %v", i, got, want)
		}
	}
}

func TestProgressMarking(t *testing.T) {
	var pg Progress
	p := Program(Compact(), &pg)
	// Pull a few instructions: we must be inside phase 1, block 1.
	prog.Take(p, 5)
	if pg.Phase != 1 || pg.Block != 1 {
		t.Errorf("progress after 5 instrs: %+v", pg)
	}
	// Pull past block 1 of phase 1 (its duration is known): count its
	// instructions and pull beyond.
	n := len(prog.Collect(Block1(1))) + len(prog.Collect(Block2(1))) + 2
	prog.Take(p, n)
	if pg.Phase != 1 || pg.Block < 3 {
		t.Errorf("progress after block 1+2: %+v", pg)
	}
}

func TestMoveTimeWithin(t *testing.T) {
	p := prog.Instrs(prog.Move(0, 2), prog.Wait(3), prog.Move(0, 4))
	if got := moveTimeWithin(p, 9); got != 6 {
		t.Errorf("full: %v", got)
	}
	if got := moveTimeWithin(p, 4); got != 2 {
		t.Errorf("inside wait: %v", got)
	}
	if got := moveTimeWithin(p, 6); got != 3 {
		t.Errorf("split move: %v", got)
	}
	if got := moveTimeWithin(p, 0); got != 0 {
		t.Errorf("zero budget: %v", got)
	}
}
