package core

import (
	"math"
	"testing"

	"repro/internal/cgkk"
	"repro/internal/inst"
	"repro/internal/prog"
	"repro/internal/sim"
)

func simulate(in inst.Instance, s Schedule, maxSeg int) (sim.Result, *Progress) {
	set := sim.DefaultSettings()
	set.MaxSegments = maxSeg
	pa, pb := &Progress{}, &Progress{}
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: Program(s, pa), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: Program(s, pb), Radius: in.R}
	res := sim.Run(a, b, set)
	return res, pa
}

func TestBlocksReturnToStart(t *testing.T) {
	s := Compact()
	for i := 1; i <= 3; i++ {
		for name, blk := range map[string]prog.Program{
			"block1": Block1(i),
			"block2": Block2(i),
			"block3": Block3(i, s),
			"block4": Block4(i, s),
		} {
			dx, dy := prog.Displacement(blk)
			if math.Hypot(dx, dy) > 1e-6 {
				t.Errorf("%s(%d) displacement %v (Lemma 3.1 violated)", name, i, math.Hypot(dx, dy))
			}
		}
	}
}

func TestBlockDurationsMatch(t *testing.T) {
	s := Compact()
	for i := 1; i <= 3; i++ {
		for name, tc := range map[string]struct {
			p    prog.Program
			want float64
		}{
			"block1": {Block1(i), Block1Duration(i)},
			"block2": {Block2(i), Block2Duration(i)},
			"block3": {Block3(i, s), Block3Duration(i, s)},
			"block4": {Block4(i, s), Block4Duration(i, s)},
		} {
			got := prog.TotalDuration(tc.p)
			if math.Abs(got-tc.want) > 1e-6*math.Max(tc.want, 1) {
				t.Errorf("%s(%d) duration %v, want %v", name, i, got, tc.want)
			}
		}
	}
}

func TestBlock4SliceCount(t *testing.T) {
	// Phase i slices the CGKK budget 2^i into 2^{2i} pieces, each
	// followed by wait(2^i): exactly 2^{2i} pauses of amount 2^i.
	for i := 1; i <= 3; i++ {
		span := math.Ldexp(1, i)
		pauses := 0
		prog.WithBacktrack(Block4(i, Compact()))(func(ins prog.Instr) bool { return true })
		Block4(i, Compact())(func(ins prog.Instr) bool {
			if ins.Op == prog.OpWait && ins.Amount == span {
				pauses++
			}
			return true
		})
		if want := 1 << uint(2*i); pauses != want {
			t.Errorf("phase %d: %d pauses, want %d", i, pauses, want)
		}
	}
}

// Type 3: clock drift. These meet in low phases; assert the predictor's
// phase agrees with the simulated outcome.
func TestRendezvousType3(t *testing.T) {
	cases := []inst.Instance{
		{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1},
		{R: 0.5, X: 1.0, Y: -0.8, Phi: 3.9, Tau: 0.5, V: 2, T: 1.5, Chi: -1},
		{R: 0.8, X: 1.5, Y: 0.2, Phi: 0, Tau: 1.4, V: 1, T: 0, Chi: 1},
	}
	s := Compact()
	for k, in := range cases {
		if in.TypeOf() != inst.Type3 {
			t.Fatalf("case %d not type 3: %v", k, in)
		}
		pred, ok := PredictPhase(in, s)
		if !ok {
			t.Fatalf("case %d: no prediction", k)
		}
		res, pg := simulate(in, s, 50_000_000)
		if !res.Met {
			t.Fatalf("case %d: no rendezvous: %v\n%v", k, res, in)
		}
		if pg.Phase > pred.Phase {
			t.Errorf("case %d: met in phase %d after predicted %d", k, pg.Phase, pred.Phase)
		}
		if res.MeetTime.Float64() > pred.TimeBound {
			t.Errorf("case %d: met at %v after bound %v", k, res.MeetTime.Float64(), pred.TimeBound)
		}
	}
}

// Type 2: latecomer instances.
func TestRendezvousType2(t *testing.T) {
	cases := []inst.Instance{
		{R: 1.0, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: 1},
		{R: 0.8, X: 0.9, Y: 0.3, Phi: 0, Tau: 1, V: 1, T: 1.2, Chi: 1},
		{R: 0.9, X: 0, Y: -1.1, Phi: 0, Tau: 1, V: 1, T: 1.4, Chi: 1},
	}
	s := Compact()
	for k, in := range cases {
		if in.TypeOf() != inst.Type2 {
			t.Fatalf("case %d not type 2: %v", k, in)
		}
		res, pg := simulate(in, s, 100_000_000)
		if !res.Met {
			t.Fatalf("case %d: no rendezvous: %v\n%v (phase %d, block %d)", k, res, in, pg.Phase, pg.Block)
		}
	}
}

// Type 4: τ = 1 with speed or orientation asymmetry, arbitrary delay.
func TestRendezvousType4(t *testing.T) {
	cases := []inst.Instance{
		{R: 0.8, X: 0.9, Y: 0.1, Phi: 0, Tau: 1, V: 1.5, T: 2, Chi: 1},
		{R: 0.8, X: 0.9, Y: 0.2, Phi: 1.1, Tau: 1, V: 1, T: 1.5, Chi: 1},
		{R: 0.9, X: 1.0, Y: -0.2, Phi: 2.5, Tau: 1, V: 1.4, T: 3, Chi: -1},
	}
	s := Compact()
	for k, in := range cases {
		if in.TypeOf() != inst.Type4 {
			t.Fatalf("case %d not type 4: %v", k, in)
		}
		res, pg := simulate(in, s, 400_000_000)
		if !res.Met {
			t.Fatalf("case %d: no rendezvous: %v\n%v (phase %d, block %d)", k, res, in, pg.Phase, pg.Block)
		}
	}
}

// Type 1: mirrored synchronous instances with delay above the projection
// threshold.
func TestRendezvousType1(t *testing.T) {
	cases := []inst.Instance{
		{R: 1.0, X: 1.2, Y: 0.4, Phi: 1.0, Tau: 1, V: 1, T: 1.5, Chi: -1},
		{R: 0.9, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: -1},
		{R: 1.0, X: 0.8, Y: 0.8, Phi: 2.0, Tau: 1, V: 1, T: 2.0, Chi: -1},
	}
	s := Compact()
	for k, in := range cases {
		if in.TypeOf() != inst.Type1 {
			t.Fatalf("case %d not type 1: %v", k, in)
		}
		res, pg := simulate(in, s, 400_000_000)
		if !res.Met {
			t.Fatalf("case %d: no rendezvous: %v\n%v (phase %d, block %d)", k, res, in, pg.Phase, pg.Block)
		}
	}
}

// Exception sets. A subtlety the reproduction surfaces: AURV *does* meet
// an S1 instance whose direction to B exactly matches one of its dyadic
// sweep directions (the gap touches exactly r, which is rendezvous).
// The paper's claim is weaker and about universality: no single algorithm
// handles all of S1, because any algorithm has countably many segment
// inclinations. So:
//   - aligned boundary instances meet (at gap exactly r);
//   - generic-angle boundary instances never get below r and do not meet
//     within any simulable horizon.
func TestBoundaryS1AlignedMeetsAtExactlyR(t *testing.T) {
	in := inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.5, Chi: 1}
	if !in.InS1() {
		t.Fatal("not an S1 instance")
	}
	res, _ := simulate(in, Compact(), 5_000_000)
	if !res.Met {
		t.Fatalf("aligned S1 instance did not meet: %v", res)
	}
	if math.Abs(res.MinGap-in.R) > 1e-6 {
		t.Errorf("aligned S1 met at gap %v, want exactly r=%v", res.MinGap, in.R)
	}
}

func TestBoundaryS1GenericNoMeet(t *testing.T) {
	// b0 at angle 1 rad: never exactly on the dyadic direction grid.
	d := 2.0
	in := inst.Instance{R: 0.5, X: d * math.Cos(1), Y: d * math.Sin(1),
		Phi: 0, Tau: 1, V: 1, T: d - 0.5, Chi: 1}
	if !in.InS1() {
		t.Fatal("not an S1 instance")
	}
	res, _ := simulate(in, Compact(), 5_000_000)
	if res.Met {
		t.Fatalf("generic S1 instance met under AURV: %v", res)
	}
	// Analytic invariant: gap ≥ d − t = r at all times.
	if res.MinGap < in.R-1e-6 {
		t.Errorf("gap %v dropped below r=%v", res.MinGap, in.R)
	}
}

func TestInfeasibleNoMeet(t *testing.T) {
	in := inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0.7, Chi: 1}
	if in.Feasible() {
		t.Fatal("instance unexpectedly feasible")
	}
	res, _ := simulate(in, Compact(), 5_000_000)
	if res.Met {
		t.Fatalf("infeasible instance met: %v", res)
	}
	if res.MinGap < in.Dist()-in.T-1e-6 {
		t.Errorf("gap %v below analytic bound %v", res.MinGap, in.Dist()-in.T)
	}
}

func TestFaithfulScheduleConstants(t *testing.T) {
	f := Faithful()
	// The printed constants: block-3 wait exponent 15 i².
	for i := 1; i <= 3; i++ {
		if got := f.Type3WaitExp(i); got != 15*float64(i*i) {
			t.Errorf("faithful wait exp(%d) = %v", i, got)
		}
	}
	// The faithful separation inequality of Claim 3.9, checked
	// symbolically: 2^{15i²-i-1} > 2^i for all i ≥ 1 (the end of the
	// claim's derivation).
	for i := 1; i <= 8; i++ {
		lhs := 15*float64(i*i) - float64(i) - 1
		if lhs <= float64(i) {
			t.Errorf("claim 3.9 exponent inequality fails at i=%d", i)
		}
	}
}

// The dd-clock showcase: under the faithful CGKK schedule (waits 2^15,
// 2^60, …) an instance whose radius is too small for the phase-1 search
// granularity must wait out the printed 2^60-time-unit phase-2 wait — and
// the simulator still resolves the sub-unit meeting geometry on the other
// side of it. A plain float64 clock has ULP 256 at 2^60; the
// double-double clock keeps ~2^-46. The instance is engineered so every
// phase-1 scan line misses (nearest passes 0.21 and 0.23 > r = 0.2).
func TestFaithfulPhase2HugeWait(t *testing.T) {
	in := inst.Instance{R: 0.2, X: 1.2, Y: 0.73, Phi: 0.7, Tau: 2, V: 0.5, T: 0, Chi: 1}
	s := cgkk.Faithful()
	phase, ok := cgkk.PredictPhase(in, s)
	if !ok {
		t.Fatal("no prediction under faithful schedule")
	}
	if phase != 2 {
		t.Fatalf("predicted phase %d, want 2 (radius forces the 2^60 wait)", phase)
	}
	set := sim.DefaultSettings()
	set.MaxTime = 1e19 // beyond the 2^60 ≈ 1.15e18 wait
	set.MaxSegments = 10_000_000
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: cgkk.Program(s), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: cgkk.Program(s), Radius: in.R}
	res := sim.Run(a, b, set)
	if !res.Met {
		t.Fatalf("no rendezvous: %v", res)
	}
	huge := math.Ldexp(1, 60)
	if res.MeetTime.Float64() < huge {
		t.Fatalf("met at %v, before the phase-2 wait elapsed", res.MeetTime.Float64())
	}
	// The meeting's sub-unit geometry must be resolvable: the offset past
	// the wait is a small number that a float64 clock could not separate
	// from the 2^60 base (ULP 256 there).
	offset := res.MeetTime.SubFloat(huge).Float64()
	if offset <= 0 || offset > 1e9 {
		t.Errorf("offset past the wait = %v, expected a small positive value", offset)
	}
	if bound, ok := cgkk.MeetTimeBound(in, s); ok && res.MeetTime.Float64() > bound {
		t.Errorf("met at %v after bound %v", res.MeetTime.Float64(), bound)
	}
}

func TestCumulativeDurationMonotone(t *testing.T) {
	s := Compact()
	prev := 0.0
	for i := 1; i <= 6; i++ {
		c := CumulativeDuration(i, s)
		if c <= prev {
			t.Fatalf("not increasing at %d", i)
		}
		prev = c
	}
}

func TestPredictPhaseTypeNone(t *testing.T) {
	in := inst.Instance{R: 0.5, X: 2, Y: 0, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	if _, ok := PredictPhase(in, Compact()); ok {
		t.Error("prediction for TypeNone instance")
	}
}
