package core

import (
	"math"

	"repro/internal/cgkk"
	"repro/internal/inst"
	"repro/internal/latecomers"
	"repro/internal/prog"
	"repro/internal/walk"
)

// moveTimeWithin returns the move-time (excluding waits) contained in the
// first T local time units of a program — the exact duration of the
// backtrack over that prefix.
func moveTimeWithin(p prog.Program, T float64) float64 {
	elapsed, moves := 0.0, 0.0
	p(func(ins prog.Instr) bool {
		d := ins.Duration()
		take := d
		if elapsed+d > T {
			take = T - elapsed
		}
		if ins.Op == prog.OpMove {
			moves += take
		}
		elapsed += d
		return elapsed < T
	})
	return moves
}

// Block durations in local time units.

// Block1Duration returns the local duration of Block1(i).
func Block1Duration(i int) float64 {
	return math.Ldexp(1, i+1) * walk.PlanarDuration(i)
}

// Block2Duration returns the local duration of Block2(i).
func Block2Duration(i int) float64 {
	span := math.Ldexp(1, i)
	return 2*span + moveTimeWithin(latecomers.Program(), span)
}

// Block3Duration returns the local duration of Block3(i, s).
func Block3Duration(i int, s Schedule) float64 {
	return math.Exp2(s.Type3WaitExp(i)) + walk.PlanarDuration(i)
}

// Block4Duration returns the local duration of Block4(i, s).
func Block4Duration(i int, s Schedule) float64 {
	span := math.Ldexp(1, i)
	sliced := span + math.Ldexp(1, 2*i)*span // content + 2^{2i} pauses of 2^i
	return sliced + moveTimeWithin(cgkk.Program(s.CGKK), span)
}

// PhaseDuration returns the local duration of a full phase.
func PhaseDuration(i int, s Schedule) float64 {
	return Block1Duration(i) + Block2Duration(i) + Block3Duration(i, s) + Block4Duration(i, s)
}

// CumulativeDuration returns the local duration of phases 1..i.
func CumulativeDuration(i int, s Schedule) float64 {
	sum := 0.0
	for j := 1; j <= i; j++ {
		sum += PhaseDuration(j, s)
	}
	return sum
}

// Prediction is the output of PredictPhase: the phase by whose end
// rendezvous is guaranteed, with a conservative absolute-time bound.
type Prediction struct {
	Type      inst.Type
	Phase     int
	TimeBound float64 // absolute time bound (conservative)
}

// maxPredictPhase caps the predictor loops; phases beyond ~25 are not
// simulable anyway.
const maxPredictPhase = 25

// PredictPhase derives, per instance and schedule, the phase of
// Algorithm 1 by whose end rendezvous is guaranteed. It returns false for
// instances outside Theorem 3.2 (TypeNone) and for instances whose
// guaranteed phase exceeds the predictor cap.
//
// For types 2–4 the predictions instantiate the paper's Lemmas 3.3–3.5
// with this implementation's exact block durations. For type 1 the paper
// bound (σ + ω of Lemma 3.2) is returned; it is very conservative — see
// Type1PaperPhase — and simulated runs meet much earlier.
func PredictPhase(in inst.Instance, s Schedule) (Prediction, bool) {
	switch in.TypeOf() {
	case inst.Type1:
		return predictType1(in, s)
	case inst.Type2:
		return predictType2(in, s)
	case inst.Type3:
		return predictType3(in, s)
	case inst.Type4:
		return predictType4(in, s)
	}
	return Prediction{}, false
}

// Type1PaperPhase returns σ, ω and the phase σ+ω of Lemma 3.2.
func Type1PaperPhase(in inst.Instance) (sigma, omega int) {
	gap := in.ProjGap()
	e := in.T - gap + in.R
	minRE := math.Min(in.R, e)
	d := in.Dist()
	arg := in.T + in.R + e + d + 8/minRE +
		math.Pi/math.Asin(minRE/(16*(in.T+in.R+e+1)))
	sigma = int(math.Ceil(math.Log2(arg)))
	omega = 1
	if q := gap - in.R + e/2; q > 0 {
		omega = int(math.Ceil(math.Log2(math.Pi / math.Acos(q/in.T))))
		if omega < 1 {
			omega = 1
		}
	}
	return sigma, omega
}

func predictType1(in inst.Instance, s Schedule) (Prediction, bool) {
	sigma, omega := Type1PaperPhase(in)
	phase := sigma + omega
	if phase > maxPredictPhase {
		return Prediction{}, false
	}
	// Meeting happens by the time agent B (waking t late) finishes the
	// phase's block 1.
	bound := in.T + CumulativeDuration(phase-1, s) + Block1Duration(phase)
	return Prediction{inst.Type1, phase, bound}, true
}

// predictType2 instantiates Lemma 3.3: phase i = ⌈log₂(t + Δ)⌉ where Δ
// bounds the Latecomers rendezvous time for the instance.
func predictType2(in inst.Instance, s Schedule) (Prediction, bool) {
	k, _, ok := latecomers.PredictPhase(in)
	if !ok {
		return Prediction{}, false
	}
	delta := 0.0
	for j := 1; j <= k; j++ {
		delta += latecomers.PhaseDuration(j)
	}
	phase := int(math.Ceil(math.Log2(in.T + delta)))
	if phase < 1 {
		phase = 1
	}
	if phase > maxPredictPhase {
		return Prediction{}, false
	}
	bound := in.T + CumulativeDuration(phase-1, s) + Block1Duration(phase) + Block2Duration(phase)
	return Prediction{inst.Type2, phase, bound}, true
}

// predictType3 instantiates Lemma 3.4 with the exact cumulative durations
// of this implementation: the faster-clock agent X must start its phase-i
// planar walk after the slower agent Y entered its phase-i block-3 wait,
// and finish before that wait ends, with the walk covering Y's start.
func predictType3(in inst.Instance, s Schedule) (Prediction, bool) {
	tauMin, tauMax := in.Tau, 1.0
	uX := in.Tau * in.V // unit of the faster agent if it is B
	if tauMin > tauMax {
		tauMin, tauMax = tauMax, tauMin
		uX = 1.0
	}
	d := in.Dist()
	cum := 0.0 // local duration of phases 1..i-1
	for i := 1; i <= maxPredictPhase; i++ {
		w := math.Exp2(s.Type3WaitExp(i))
		cWaitEnd := cum + Block1Duration(i) + Block2Duration(i) + w
		D := walk.PlanarDuration(i)
		startOK := cWaitEnd*tauMin >= in.T+(cWaitEnd-w)*tauMax
		finishOK := in.T+(cWaitEnd+D)*tauMin <= cWaitEnd*tauMax
		reach := walk.CoverRadius(i)*uX >= d
		fine := walk.CoverGap(i)*uX <= in.R
		if startOK && finishOK && reach && fine {
			bound := in.T + (cWaitEnd+D)*tauMax
			return Prediction{inst.Type3, i, bound}, true
		}
		cum += PhaseDuration(i, s)
		if math.IsInf(cum, 0) {
			break
		}
	}
	return Prediction{}, false
}

// predictType4 instantiates Lemma 3.5: phase i = ⌈log₂(t + Δ + 4(v+1)/r)⌉
// where Δ bounds the CGKK rendezvous time on h(K) — the instance with
// radius halved and delay zeroed.
func predictType4(in inst.Instance, s Schedule) (Prediction, bool) {
	h := in
	h.R /= 2
	h.T = 0
	delta, ok := cgkk.MeetTimeBound(h, s.CGKK)
	if !ok {
		return Prediction{}, false
	}
	phase := int(math.Ceil(math.Log2(in.T + delta + 4*(in.V+1)/in.R)))
	if phase < 1 {
		phase = 1
	}
	if phase > maxPredictPhase {
		return Prediction{}, false
	}
	bound := in.T + CumulativeDuration(phase, s)
	return Prediction{inst.Type4, phase, bound}, true
}
