package core
