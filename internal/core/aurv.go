// Package core implements the paper's primary contribution:
// Algorithm 1, AlmostUniversalRV — the single deterministic algorithm
// that achieves rendezvous for every feasible instance outside the two
// exception sets S1 and S2 (Theorem 3.2).
//
// The algorithm is an infinite repeat loop over phases i = 1, 2, …; each
// phase executes four blocks, one per instance type of §3.1.1:
//
//	block 1 (type 1, mirror):      for j = 1..2^{i+1}:
//	                                   PlanarCowWalk(i) in Rot(jπ/2^i)
//	block 2 (type 2, latecomer):   wait(2^i); run Latecomers for 2^i;
//	                                   backtrack
//	block 3 (type 3, clock drift): wait(2^{W(i)}); PlanarCowWalk(i)
//	block 4 (type 4, cgkk):        slice the solo run of CGKK over time
//	                                   2^i into 2^{2i} pieces of 1/2^i,
//	                                   interleave wait(2^i); backtrack
//
// The wait exponent W(i) is schedule data: the paper prints W(i) = 15·i²,
// chosen for proof convenience; Faithful() reproduces it, Compact() uses
// 10·i, for which PredictPhase re-derives the separation inequalities per
// instance (see DESIGN.md §3 for the substitution argument).
package core

import (
	"math"

	"repro/internal/cgkk"
	"repro/internal/geom"
	"repro/internal/latecomers"
	"repro/internal/prog"
	"repro/internal/walk"
)

// Schedule collects the tunable constants of Algorithm 1.
type Schedule struct {
	Name string
	// Type3WaitExp is the exponent of the block-3 wait: phase i waits
	// 2^{Type3WaitExp(i)} local time units. Paper: 15·i².
	Type3WaitExp func(i int) float64
	// CGKK is the schedule of the CGKK procedure sliced by block 4.
	// Type-4 instances always have τ = 1, so the drift waits of the
	// standalone CGKK are unnecessary there; ZeroWait keeps the sliced
	// prefix dense in actual search work.
	CGKK cgkk.Schedule
}

// Faithful reproduces the printed constants of Algorithm 1. Simulable
// through phase 2 with the double-double clock (the phase-3 wait 2^135
// exceeds even dd resolution); prefer Compact for experiments.
func Faithful() Schedule {
	return Schedule{
		Name:         "faithful",
		Type3WaitExp: func(i int) float64 { return 15 * float64(i) * float64(i) },
		CGKK:         cgkk.ZeroWait(),
	}
}

// Compact replaces the block-3 wait exponent 15·i² by 10·i. The dd clock
// then resolves sight events through phase ~8, and PredictPhase verifies
// the type-3 separation inequalities per instance before promising a
// phase.
func Compact() Schedule {
	return Schedule{
		Name:         "compact",
		Type3WaitExp: func(i int) float64 { return 10 * float64(i) },
		CGKK:         cgkk.ZeroWait(),
	}
}

// Progress is an optional observer of the generated program. Because
// programs are lazy, the fields reflect exactly how far a simulation
// pulled from the generator. Note that the simulator's wait coalescing
// pulls one instruction ahead of execution when fusing a run of waits,
// so a run halting inside a fused wait at a block boundary can report
// the following block as started even though none of its instructions
// executed (sim.Settings.NoWaitCoalesce restores pull == execute).
type Progress struct {
	Phase int // last phase started (1-based)
	Block int // last block started within the phase (1-4)
}

// Block1 returns block 1 of phase i: the rotated planar walks that solve
// the mirror (type 1) instances. The epochs are generated lazily, one
// rotated-walk cursor at a time.
func Block1(i int) prog.Program {
	epochs := 1 << uint(i+1)
	return prog.Repeat(epochs, func(j int) prog.Program {
		return prog.Rotate(walk.Planar(i), geom.DyadicAngle(j+1, i))
	})
}

// Block2 returns block 2 of phase i: wait out the delay, run Latecomers
// for 2^i local time units, and backtrack to the start.
func Block2(i int) prog.Program {
	span := math.Ldexp(1, i)
	return prog.Seq(
		prog.Instrs(prog.Wait(span)),
		prog.WithBacktrack(prog.Budget(latecomers.Program(), span)),
	)
}

// Block3 returns block 3 of phase i: the clock-drift mechanism.
func Block3(i int, s Schedule) prog.Program {
	return prog.Seq(
		prog.Instrs(prog.Wait(math.Exp2(s.Type3WaitExp(i)))),
		walk.Planar(i),
	)
}

// Block4 returns block 4 of phase i: the interleaved-sliced CGKK run.
func Block4(i int, s Schedule) prog.Program {
	span := math.Ldexp(1, i)
	slice := math.Ldexp(1, -i)
	return prog.WithBacktrack(
		prog.TimeSlice(prog.Budget(cgkk.Program(s.CGKK), span), slice, span),
	)
}

// Phase returns the full phase i (all four blocks in order).
func Phase(i int, s Schedule) prog.Program {
	return prog.Seq(Block1(i), Block2(i), Block3(i, s), Block4(i, s))
}

// Program returns Algorithm AlmostUniversalRV as an infinite program.
// If p is non-nil it is updated as phases and blocks are generated:
// each block's marker fires when the simulation first pulls from that
// block, so the fields reflect how far a lazy run actually got.
func Program(s Schedule, p *Progress) prog.Program {
	mark := func(i, b int, blk prog.Program) prog.Program {
		if p == nil {
			return blk
		}
		return prog.OnStart(blk, func() { p.Phase, p.Block = i, b })
	}
	return prog.Forever(func(i int) prog.Program {
		return prog.Seq(
			mark(i, 1, Block1(i)),
			mark(i, 2, Block2(i)),
			mark(i, 3, Block3(i, s)),
			mark(i, 4, Block4(i, s)),
		)
	})
}
