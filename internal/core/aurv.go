// Package core implements the paper's primary contribution:
// Algorithm 1, AlmostUniversalRV — the single deterministic algorithm
// that achieves rendezvous for every feasible instance outside the two
// exception sets S1 and S2 (Theorem 3.2).
//
// The algorithm is an infinite repeat loop over phases i = 1, 2, …; each
// phase executes four blocks, one per instance type of §3.1.1:
//
//	block 1 (type 1, mirror):      for j = 1..2^{i+1}:
//	                                   PlanarCowWalk(i) in Rot(jπ/2^i)
//	block 2 (type 2, latecomer):   wait(2^i); run Latecomers for 2^i;
//	                                   backtrack
//	block 3 (type 3, clock drift): wait(2^{W(i)}); PlanarCowWalk(i)
//	block 4 (type 4, cgkk):        slice the solo run of CGKK over time
//	                                   2^i into 2^{2i} pieces of 1/2^i,
//	                                   interleave wait(2^i); backtrack
//
// The wait exponent W(i) is schedule data: the paper prints W(i) = 15·i²,
// chosen for proof convenience; Faithful() reproduces it, Compact() uses
// 10·i, for which PredictPhase re-derives the separation inequalities per
// instance (see DESIGN.md §3 for the substitution argument).
package core

import (
	"math"
	"reflect"

	"repro/internal/cgkk"
	"repro/internal/geom"
	"repro/internal/latecomers"
	"repro/internal/prog"
	"repro/internal/walk"
)

// Schedule collects the tunable constants of Algorithm 1.
type Schedule struct {
	Name string
	// Type3WaitExp is the exponent of the block-3 wait: phase i waits
	// 2^{Type3WaitExp(i)} local time units. Paper: 15·i².
	Type3WaitExp func(i int) float64
	// CGKK is the schedule of the CGKK procedure sliced by block 4.
	// Type-4 instances always have τ = 1, so the drift waits of the
	// standalone CGKK are unnecessary there; ZeroWait keeps the sliced
	// prefix dense in actual search work.
	CGKK cgkk.Schedule
	// canon snapshots the tunables as the standard constructors set
	// them, so Canonical can detect any later field substitution. Only
	// Faithful and Compact set it; a zero Schedule (or any literal a
	// caller assembles) is never canonical.
	canon *schedSnapshot
}

// schedSnapshot is the canonical-identity record of a constructor-built
// Schedule: the original function values (compared by code pointer —
// two copies of one func value share it; a substituted function does
// not) and the names.
type schedSnapshot struct {
	name, cgkkName string
	t3, cgkkWait   func(i int) float64
}

// Canonical reports whether the schedule is still exactly what its
// named constructor produced — no field was swapped since. The wire
// registry needs this: "AlmostUniversalRV(compact)" may only travel by
// name if the local program provably is the registry's program (a
// caller can tweak an exported field without touching Name, and a
// name-only check would then ship the wrong algorithm to workers).
func (s Schedule) Canonical() bool {
	return s.canon != nil &&
		s.Name == s.canon.name &&
		s.CGKK.Name == s.canon.cgkkName &&
		sameFunc(s.Type3WaitExp, s.canon.t3) &&
		sameFunc(s.CGKK.WaitExp, s.canon.cgkkWait)
}

// sameFunc reports whether a and b are copies of one function value.
func sameFunc(a, b func(int) float64) bool {
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// sealed stamps the canonical snapshot onto a freshly constructed
// schedule.
func sealed(s Schedule) Schedule {
	s.canon = &schedSnapshot{
		name:     s.Name,
		cgkkName: s.CGKK.Name,
		t3:       s.Type3WaitExp,
		cgkkWait: s.CGKK.WaitExp,
	}
	return s
}

// Faithful reproduces the printed constants of Algorithm 1. Simulable
// through phase 2 with the double-double clock (the phase-3 wait 2^135
// exceeds even dd resolution); prefer Compact for experiments.
func Faithful() Schedule {
	return sealed(Schedule{
		Name:         "faithful",
		Type3WaitExp: func(i int) float64 { return 15 * float64(i) * float64(i) },
		CGKK:         cgkk.ZeroWait(),
	})
}

// Compact replaces the block-3 wait exponent 15·i² by 10·i. The dd clock
// then resolves sight events through phase ~8, and PredictPhase verifies
// the type-3 separation inequalities per instance before promising a
// phase.
func Compact() Schedule {
	return sealed(Schedule{
		Name:         "compact",
		Type3WaitExp: func(i int) float64 { return 10 * float64(i) },
		CGKK:         cgkk.ZeroWait(),
	})
}

// Progress is an optional observer of the generated program. Because
// programs are lazy, the fields reflect exactly how far a simulation
// pulled from the generator. Note that the simulator's wait coalescing
// pulls one instruction ahead of execution when fusing a run of waits,
// so a run halting inside a fused wait at a block boundary can report
// the following block as started even though none of its instructions
// executed (sim.Settings.NoWaitCoalesce restores pull == execute).
type Progress struct {
	Phase int // last phase started (1-based)
	Block int // last block started within the phase (1-4)
}

// The block builders come in two spellings: blockNCursor constructs
// the block's single-use instruction cursor directly (the hot path the
// simulator pulls through — no Program wrappers, no factory slices,
// just the cursor structs), and the exported BlockN wraps that cursor
// construction into a re-iterable Program for composition and tests.

// block1Cursor: the rotated planar walks that solve the mirror (type 1)
// instances. The epochs are generated lazily, one rotated-walk cursor
// at a time.
func block1Cursor(i int) prog.Cursor {
	epochs := 1 << uint(i+1)
	return prog.RepeatCursor(epochs, func(j int) prog.Cursor {
		return prog.RotateCursor(walk.NewPlanar(i), geom.DyadicAngle(j+1, i))
	})
}

// block2Cursor: wait out the delay, run Latecomers for 2^i local time
// units, and backtrack to the start.
func block2Cursor(i int) prog.Cursor {
	span := math.Ldexp(1, i)
	return prog.SeqOf(
		prog.InstrsCursor(prog.Wait(span)),
		prog.WithBacktrackCursor(prog.BudgetCursor(latecomers.ProgramCursor(), span)),
	)
}

// block3Cursor: the clock-drift mechanism.
func block3Cursor(i int, s Schedule) prog.Cursor {
	return prog.SeqOf(
		prog.InstrsCursor(prog.Wait(math.Exp2(s.Type3WaitExp(i)))),
		walk.NewPlanar(i),
	)
}

// block4Cursor: the interleaved-sliced CGKK run.
func block4Cursor(i int, s Schedule) prog.Cursor {
	span := math.Ldexp(1, i)
	slice := math.Ldexp(1, -i)
	return prog.WithBacktrackCursor(
		prog.TimeSliceCursor(prog.BudgetCursor(cgkk.ProgramCursor(s.CGKK), span), slice, span),
	)
}

// blockCursor dispatches to the four block builders.
func blockCursor(i, b int, s Schedule) prog.Cursor {
	switch b {
	case 1:
		return block1Cursor(i)
	case 2:
		return block2Cursor(i)
	case 3:
		return block3Cursor(i, s)
	default:
		return block4Cursor(i, s)
	}
}

// Block1 returns block 1 of phase i: the rotated planar walks that solve
// the mirror (type 1) instances.
func Block1(i int) prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return block1Cursor(i) })
}

// Block2 returns block 2 of phase i: wait out the delay, run Latecomers
// for 2^i local time units, and backtrack to the start.
func Block2(i int) prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return block2Cursor(i) })
}

// Block3 returns block 3 of phase i: the clock-drift mechanism.
func Block3(i int, s Schedule) prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return block3Cursor(i, s) })
}

// Block4 returns block 4 of phase i: the interleaved-sliced CGKK run.
func Block4(i int, s Schedule) prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return block4Cursor(i, s) })
}

// Phase returns the full phase i (all four blocks in order).
func Phase(i int, s Schedule) prog.Program {
	return prog.CursorProgram(func() prog.Cursor {
		return prog.SeqOf(block1Cursor(i), block2Cursor(i), block3Cursor(i, s), block4Cursor(i, s))
	})
}

// aurvCursor is Algorithm AlmostUniversalRV as one flat state machine
// over (phase, block): each block's cursor is built when the previous
// one exhausts, so a whole phase costs four block constructions and
// nothing else — no per-phase Seq wrappers, factory slices, or marker
// closures (the pre-cursor spelling allocated ~20 wrapper objects per
// phase per agent, the bulk of the T2 kernel's allocations).
type aurvCursor struct {
	s    Schedule
	p    *Progress
	i, b int // current phase (1-based) and block (1–4); i == 0 before the first pull
	cur  prog.Cursor
}

func (c *aurvCursor) Next() (prog.Instr, bool) {
	for {
		if c.cur == nil {
			switch {
			case c.i == 0:
				c.i, c.b = 1, 1
			case c.b < 4:
				c.b++
			default:
				c.i, c.b = c.i+1, 1
			}
			if c.p != nil {
				c.p.Phase, c.p.Block = c.i, c.b
			}
			c.cur = blockCursor(c.i, c.b, c.s)
		}
		if ins, ok := c.cur.Next(); ok {
			return ins, true
		}
		c.cur.Close()
		c.cur = nil
	}
}

func (c *aurvCursor) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
}

// Program returns Algorithm AlmostUniversalRV as an infinite program.
// If p is non-nil it is updated as phases and blocks are generated:
// each block's marker fires when the simulation first pulls from that
// block, so the fields reflect how far a lazy run actually got.
func Program(s Schedule, p *Progress) prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return &aurvCursor{s: s, p: p} })
}
