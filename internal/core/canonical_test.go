package core

import (
	"reflect"
	"testing"

	"repro/internal/cgkk"
)

// TestScheduleFieldsCoveredByCanonical guards the spoof-protection
// mechanism against field drift: Canonical compares the tunable fields
// of Schedule (and the embedded cgkk.Schedule) by hand, so a field
// added to either struct without extending schedSnapshot/Canonical
// would silently escape the check — a caller could tweak it and still
// ship the schedule's name over the wire. If this test fails, extend
// schedSnapshot and Canonical to cover the new field, then update the
// expected counts.
func TestScheduleFieldsCoveredByCanonical(t *testing.T) {
	if got := reflect.TypeOf(Schedule{}).NumField(); got != 4 {
		t.Errorf("core.Schedule has %d fields; Canonical covers 4 (Name, Type3WaitExp, CGKK, canon)", got)
	}
	if got := reflect.TypeOf(cgkk.Schedule{}).NumField(); got != 2 {
		t.Errorf("cgkk.Schedule has %d fields; Canonical covers 2 (Name, WaitExp)", got)
	}
}

// TestCanonical pins the gate itself: constructor-built schedules pass,
// any field substitution (or a hand-assembled schedule) fails.
func TestCanonical(t *testing.T) {
	if !Compact().Canonical() || !Faithful().Canonical() {
		t.Fatal("constructor-built schedule not canonical")
	}
	if (Schedule{}).Canonical() {
		t.Fatal("zero schedule claims to be canonical")
	}
	hand := Schedule{Name: "compact", Type3WaitExp: func(i int) float64 { return 10 * float64(i) }, CGKK: cgkk.ZeroWait()}
	if hand.Canonical() {
		t.Fatal("hand-assembled schedule claims to be canonical")
	}

	s := Compact()
	s.Type3WaitExp = func(i int) float64 { return 7 * float64(i) }
	if s.Canonical() {
		t.Fatal("tweaked Type3WaitExp still canonical")
	}

	s = Compact()
	s.Name = "faithful"
	if s.Canonical() {
		t.Fatal("renamed schedule still canonical")
	}

	s = Compact()
	s.CGKK = cgkk.Compact()
	if s.Canonical() {
		t.Fatal("swapped CGKK schedule still canonical")
	}
}
