// Cursor engine: direct-call pull iteration over programs.
//
// The public Program type stays iter.Seq[Instr] (push), but every
// combinator in this package is backed by a Cursor — a plain struct
// whose Next method returns the following instruction with an ordinary
// function call. Pulling from a cursor therefore costs a handful of
// nanoseconds, where iter.Pull on a push program costs a runtime
// coroutine switch per instruction plus a walk through the whole
// combinator closure stack. The astronomically scheduled programs of
// Algorithm 1 emit millions of instructions per run, making this the
// hottest path of the simulator.
//
// Adapters run in both directions:
//
//   - CursorProgram wraps a cursor factory into an ordinary Program, so
//     cursor-backed programs compose with hand-written push closures and
//     range-over-func loops transparently;
//   - NewCursor returns a pull cursor for ANY program: the registered
//     factory when the program is cursor-backed (the fast path the
//     simulator takes), or an iter.Pull adapter otherwise.
//
// Detection is zero-cost and side-effect-free: all CursorProgram
// closures share one code pointer (the function is noinline, so the
// literal is never duplicated into callers), and the factory is
// recovered by invoking the closure with a sentinel yield — a code path
// that executes no program code. Factory recovery is lock-free AND
// allocation-free: the closure parks its factory in a cell of a fixed
// handoff array (claimed by compare-and-swap, so concurrent probes
// never contend on a shared mutex) and smuggles the cell index through
// the sentinel call's Instr; the sentinel yield — a pooled object, not
// a per-probe closure — copies the factory out of the cell into its
// probe's slot. The whole exchange is synchronous on the prober's own
// goroutine, touches no map, and allocates nothing in steady state:
// the probe machinery used to cost ~5 heap allocations per NewCursor
// (a sync.Map entry, a fresh sentinel closure, an escaping result
// slot), which doubled the simulator's per-segment allocations on
// generator-built programs (see BENCH_PR3 → BENCH_PR5 rot).
package prog

import (
	"iter"
	"reflect"
	"sync"
	"sync/atomic"
)

// Cursor is a single-use pull stream of instructions. Next returns the
// following instruction, or ok == false when the program is exhausted.
// Close releases resources; it is idempotent, and Next must not be
// called after Close. Cursors are not safe for concurrent use.
type Cursor interface {
	Next() (Instr, bool)
	Close()
}

// CursorProgram wraps a cursor factory into a Program. The factory is
// invoked once per iteration of the returned program, so the program
// remains re-iterable as the Program contract requires; mk must be safe
// to call concurrently if the program is shared between goroutines.
//
//go:noinline
func CursorProgram(mk func() Cursor) Program {
	return func(yield func(Instr) bool) {
		if isProbe(yield) {
			// Factory handoff (see probe): claim a cell of the fixed
			// handoff array, park mk there, and tell the probe yield the
			// cell index through the one channel available — the Instr
			// argument. The yield call is synchronous on this goroutine,
			// so between the claim and the release only this goroutine
			// touches the cell's factory; the CAS only fences off other
			// goroutines' concurrent probes that hashed to the same cell
			// (they step to the next cell instead of waiting).
			for {
				id := probeSeq.Add(1) % probeCells
				c := &probeArray[id]
				if !c.claimed.CompareAndSwap(0, 1) {
					continue
				}
				c.mk = mk
				yield(Instr{Amount: float64(id)})
				c.mk = nil
				c.claimed.Store(0)
				return
			}
		}
		c := mk()
		defer c.Close()
		for {
			ins, ok := c.Next()
			if !ok {
				return
			}
			if !yield(ins) {
				return
			}
		}
	}
}

// probeCells sizes the factory-handoff array. A cell is held only for
// the handful of instructions between a probe's CAS claim and its
// release inside one CursorOf call, so the array bounds the number of
// goroutines *simultaneously inside that window*, not the number of
// programs or goroutines overall; 256 is far beyond any plausible
// concurrency spike, and a full array only costs a step to the next
// cell, never a stall.
const probeCells = 256

// probeCell is one cell of the handoff array: a CAS-claimed flag plus
// the factory in transit. Copying a func value into the cell allocates
// nothing — the funcval already lives on the heap.
type probeCell struct {
	claimed atomic.Uint32
	mk      func() Cursor
}

// probe is the reusable receiving end of one factory recovery: yield is
// the sentinel closure handed to the program (all instances share one
// code pointer, which is what isProbe tests), and mk is where it drops
// the factory it collects from the handoff cell named by the sentinel
// call's Instr.Amount. Probes are pooled, so steady-state recovery
// performs zero allocations.
type probe struct {
	mk    func() Cursor
	yield func(Instr) bool
}

//go:noinline
func newProbe() *probe {
	pr := &probe{}
	pr.yield = func(ins Instr) bool {
		pr.mk = probeArray[uint64(ins.Amount)%probeCells].mk
		return false
	}
	return pr
}

var (
	probeYieldPtr = reflect.ValueOf(newProbe().yield).Pointer()
	// cursorProgPtr is the code pointer shared by every closure
	// CursorProgram returns (the function is noinline, so the literal has
	// exactly one symbol).
	cursorProgPtr = reflect.ValueOf(CursorProgram(func() Cursor { return emptyCursor{} })).Pointer()

	// The lock-free factory-handoff rendezvous: the CursorProgram
	// closure CAS-claims a cell, parks its factory, and yields the cell
	// index to the sentinel; the sentinel copies the factory into its
	// probe. Cells are released before the probe call returns; distinct
	// in-flight probes hold distinct cells, so parallel cursor creation
	// scales instead of serializing on a process-wide mutex.
	probeSeq   atomic.Uint64
	probeArray [probeCells]probeCell

	probePool = sync.Pool{New: func() any { return newProbe() }}
)

func isProbe(yield func(Instr) bool) bool {
	return reflect.ValueOf(yield).Pointer() == probeYieldPtr
}

// CursorOf reports whether the program is cursor-backed and, if so,
// returns its cursor factory. The check never executes program code,
// takes no locks, allocates nothing in steady state, and is safe for
// unbounded concurrency.
func CursorOf(p Program) (func() Cursor, bool) {
	if p == nil {
		return nil, false
	}
	if reflect.ValueOf(p).Pointer() != cursorProgPtr {
		return nil, false
	}
	pr := probePool.Get().(*probe)
	pr.mk = nil
	p(pr.yield) // the CursorProgram closure only hands over its factory
	mk := pr.mk
	pr.mk = nil
	probePool.Put(pr)
	return mk, mk != nil
}

// CursorFactory returns a factory of pull cursors for any program: the
// registered factory for cursor-backed programs, or an iter.Pull
// adapter for plain push closures.
func CursorFactory(p Program) func() Cursor {
	if mk, ok := CursorOf(p); ok {
		return mk
	}
	return func() Cursor {
		next, stop := iter.Pull(p)
		return &pullCursor{next: next, stop: stop}
	}
}

// NewCursor returns a pull cursor over the program: the direct-call
// fast path when the program is cursor-backed, an iter.Pull coroutine
// adapter otherwise.
func NewCursor(p Program) Cursor {
	return CursorFactory(p)()
}

// Opaque wraps a program in a plain closure, hiding any cursor backing.
// Consumers (in particular the simulator) then fall back to the
// iter.Pull path. It exists for differential testing and benchmarking
// of the two engines against each other.
func Opaque(p Program) Program {
	return func(yield func(Instr) bool) { p(yield) }
}

// pullCursor adapts a push program via iter.Pull (the slow path).
type pullCursor struct {
	next func() (Instr, bool)
	stop func()
}

func (c *pullCursor) Next() (Instr, bool) { return c.next() }
func (c *pullCursor) Close()              { c.stop() }

// ---- Cursor implementations of the combinators. ----

type emptyCursor struct{}

func (emptyCursor) Next() (Instr, bool) { return Instr{}, false }
func (emptyCursor) Close()              {}

// sliceCursor emits the instructions of a fixed list, skipping
// zero-duration entries (the Instrs contract).
type sliceCursor struct {
	list []Instr
	i    int
}

func (c *sliceCursor) Next() (Instr, bool) {
	for c.i < len(c.list) {
		ins := c.list[c.i]
		c.i++
		if ins.Amount == 0 {
			continue
		}
		return ins, true
	}
	return Instr{}, false
}
func (c *sliceCursor) Close() { c.i = len(c.list) }

// seqCursor concatenates sub-cursors created lazily from factories.
type seqCursor struct {
	mks []func() Cursor
	cur Cursor
	i   int
}

func (c *seqCursor) Next() (Instr, bool) {
	for {
		if c.cur == nil {
			if c.i >= len(c.mks) {
				return Instr{}, false
			}
			c.cur = c.mks[c.i]()
			c.i++
		}
		if ins, ok := c.cur.Next(); ok {
			return ins, true
		}
		c.cur.Close()
		c.cur = nil
	}
}

func (c *seqCursor) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.i = len(c.mks)
}

// foreverCursor runs gen(1), gen(2), … without end. gen yields cursors
// directly, so per-round construction costs no Program wrapper.
type foreverCursor struct {
	gen func(i int) Cursor
	cur Cursor
	i   int
}

func (c *foreverCursor) Next() (Instr, bool) {
	for {
		if c.cur == nil {
			c.i++
			c.cur = c.gen(c.i)
		}
		if ins, ok := c.cur.Next(); ok {
			return ins, true
		}
		c.cur.Close()
		c.cur = nil
	}
}

func (c *foreverCursor) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.gen = nil
}

// repeatCursor runs gen(0), …, gen(n-1): the bounded Forever.
type repeatCursor struct {
	gen  func(j int) Cursor
	cur  Cursor
	j, n int
}

func (c *repeatCursor) Next() (Instr, bool) {
	for {
		if c.cur == nil {
			if c.j >= c.n {
				return Instr{}, false
			}
			c.cur = c.gen(c.j)
			c.j++
		}
		if ins, ok := c.cur.Next(); ok {
			return ins, true
		}
		c.cur.Close()
		c.cur = nil
	}
}

func (c *repeatCursor) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.j = c.n
}

// rotateCursor advances every move direction by alpha.
type rotateCursor struct {
	src   Cursor
	alpha float64
}

func (c *rotateCursor) Next() (Instr, bool) {
	ins, ok := c.src.Next()
	if ok && ins.Op == OpMove {
		ins.Theta += c.alpha
	}
	return ins, ok
}
func (c *rotateCursor) Close() { c.src.Close() }

// budgetCursor truncates its source after exactly T local time units,
// splitting the final instruction and padding an early-ending source
// with a closing wait.
type budgetCursor struct {
	src     Cursor
	T       float64
	elapsed float64
	done    bool
}

func (c *budgetCursor) Next() (Instr, bool) {
	if c.done {
		return Instr{}, false
	}
	ins, ok := c.src.Next()
	if !ok {
		c.done = true
		if c.elapsed < c.T {
			return Wait(c.T - c.elapsed), true
		}
		return Instr{}, false
	}
	d := ins.Duration()
	if c.elapsed+d <= c.T {
		c.elapsed += d
		return ins, true
	}
	head, _ := ins.Split(c.T - c.elapsed)
	c.elapsed = c.T
	c.done = true
	if head.Amount > 0 {
		return head, true
	}
	return Instr{}, false
}

func (c *budgetCursor) Close() {
	c.done = true
	c.src.Close()
}

// timeSliceCursor cuts the source into sliceDur-long slices separated
// by wait(pause), splitting instructions exactly at slice boundaries.
type timeSliceCursor struct {
	src             Cursor
	sliceDur, pause float64
	inSlice         float64
	carry           Instr // remainder of a split instruction
	hasCarry        bool
	pausePending    bool
}

func (c *timeSliceCursor) Next() (Instr, bool) {
	for {
		if c.pausePending {
			c.pausePending = false
			c.inSlice = 0
			return Wait(c.pause), true
		}
		var ins Instr
		if c.hasCarry {
			ins, c.hasCarry = c.carry, false
		} else {
			var ok bool
			if ins, ok = c.src.Next(); !ok {
				return Instr{}, false
			}
			if ins.Amount <= 0 {
				continue
			}
		}
		room := c.sliceDur - c.inSlice
		if ins.Duration() <= room {
			c.inSlice += ins.Duration()
			if c.inSlice == c.sliceDur {
				c.pausePending = true
			}
			return ins, true
		}
		head, tail := ins.Split(room)
		c.carry, c.hasCarry = tail, true
		c.pausePending = true
		if head.Amount > 0 {
			return head, true
		}
	}
}

func (c *timeSliceCursor) Close() { c.src.Close() }

// recordedCursor appends every pulled instruction to *rec.
type recordedCursor struct {
	src Cursor
	rec *[]Instr
}

func (c *recordedCursor) Next() (Instr, bool) {
	ins, ok := c.src.Next()
	if ok {
		*c.rec = append(*c.rec, ins)
	}
	return ins, ok
}
func (c *recordedCursor) Close() { c.src.Close() }

// backtrackCursor replays recorded instructions backwards (moves
// reversed, waits skipped).
type backtrackCursor struct {
	rec []Instr
	i   int // next index to replay, counting down
}

func (c *backtrackCursor) Next() (Instr, bool) {
	for c.i >= 0 {
		ins := c.rec[c.i].Reversed()
		c.i--
		if ins.Amount == 0 {
			continue
		}
		return ins, true
	}
	return Instr{}, false
}
func (c *backtrackCursor) Close() { c.i = -1 }

// withBacktrackCursor emits the source and then the reverse of
// everything it emitted, delegating the replay to an embedded
// backtrackCursor so the reversal rules live in one place.
type withBacktrackCursor struct {
	src  Cursor
	rec  []Instr
	back backtrackCursor
	in   bool // replay phase entered
}

func (c *withBacktrackCursor) Next() (Instr, bool) {
	if !c.in {
		if ins, ok := c.src.Next(); ok {
			c.rec = append(c.rec, ins)
			return ins, true
		}
		c.src.Close()
		c.in = true
		c.back = backtrackCursor{rec: c.rec, i: len(c.rec) - 1}
	}
	return c.back.Next()
}

func (c *withBacktrackCursor) Close() {
	if !c.in {
		c.src.Close()
		c.in = true
	}
	c.back.Close()
}
