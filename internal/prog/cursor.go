// Cursor engine: direct-call pull iteration over programs.
//
// The public Program type stays iter.Seq[Instr] (push), but every
// combinator in this package is backed by a Cursor — a plain struct
// whose Next method returns the following instruction with an ordinary
// function call. Pulling from a cursor therefore costs a handful of
// nanoseconds, where iter.Pull on a push program costs a runtime
// coroutine switch per instruction plus a walk through the whole
// combinator closure stack. The astronomically scheduled programs of
// Algorithm 1 emit millions of instructions per run, making this the
// hottest path of the simulator.
//
// Adapters run in both directions:
//
//   - CursorProgram wraps a cursor factory into an ordinary Program, so
//     cursor-backed programs compose with hand-written push closures and
//     range-over-func loops transparently;
//   - NewCursor returns a pull cursor for ANY program: the registered
//     factory when the program is cursor-backed (the fast path the
//     simulator takes), or an iter.Pull adapter otherwise.
//
// Detection is zero-cost and side-effect-free: all CursorProgram
// closures share one code pointer (the function is noinline, so the
// literal is never duplicated into callers), and the factory is
// recovered by invoking the closure with a sentinel yield — a code path
// that executes no program code. Factory recovery is lock-free: each
// probe hands the factory over through its own sync.Map slot (keyed by
// a unique id smuggled through the sentinel call's Instr), so
// concurrent cursor creations — every parallel simulation probes its
// programs — never serialize on a shared mutex.
package prog

import (
	"iter"
	"reflect"
	"sync"
	"sync/atomic"
)

// Cursor is a single-use pull stream of instructions. Next returns the
// following instruction, or ok == false when the program is exhausted.
// Close releases resources; it is idempotent, and Next must not be
// called after Close. Cursors are not safe for concurrent use.
type Cursor interface {
	Next() (Instr, bool)
	Close()
}

// CursorProgram wraps a cursor factory into a Program. The factory is
// invoked once per iteration of the returned program, so the program
// remains re-iterable as the Program contract requires; mk must be safe
// to call concurrently if the program is shared between goroutines.
//
//go:noinline
func CursorProgram(mk func() Cursor) Program {
	return func(yield func(Instr) bool) {
		if isProbe(yield) {
			// Factory handoff (see probeRecv): park mk in the probe table
			// under a fresh id, tell the probe yield the id through the
			// one channel available — the Instr argument — and let it
			// collect mk into its caller's slot. Each probe uses its own
			// table entry, so concurrent probes never contend.
			id := probeSeq.Add(1)
			probeTable.Store(id, mk)
			yield(Instr{Amount: float64(id)})
			probeTable.Delete(id) // no-op normally; belt-and-braces on a bailed probe
			return
		}
		c := mk()
		defer c.Close()
		for {
			ins, ok := c.Next()
			if !ok {
				return
			}
			if !yield(ins) {
				return
			}
		}
	}
}

// probeRecv builds the sentinel yield of one factory-recovery call: its
// code pointer marks the call as a probe (all its closures share the
// noinline literal's single symbol), and its body collects the factory
// that CursorProgram parked in the probe table under the id it passes
// via Instr.Amount. The id is a small integer, exact in a float64 for
// the first 2^53 probes — far beyond any process lifetime.
//
//go:noinline
func probeRecv(slot *func() Cursor) func(Instr) bool {
	return func(ins Instr) bool {
		if mk, ok := probeTable.LoadAndDelete(uint64(ins.Amount)); ok {
			*slot = mk.(func() Cursor)
		}
		return false
	}
}

var (
	probeRecvPtr = reflect.ValueOf(probeRecv(new(func() Cursor))).Pointer()
	// cursorProgPtr is the code pointer shared by every closure
	// CursorProgram returns (the function is noinline, so the literal has
	// exactly one symbol).
	cursorProgPtr = reflect.ValueOf(CursorProgram(func() Cursor { return emptyCursor{} })).Pointer()

	// The lock-free factory-handoff rendezvous: CursorProgram stores the
	// factory under a unique id, the probe yield LoadAndDeletes it.
	// Entries live only for the duration of one probe call; distinct
	// probes touch distinct keys, so parallel cursor creation scales
	// instead of serializing on a process-wide mutex (the contention
	// point this replaced — see ROADMAP).
	probeSeq   atomic.Uint64
	probeTable sync.Map // uint64 → func() Cursor
)

func isProbe(yield func(Instr) bool) bool {
	return reflect.ValueOf(yield).Pointer() == probeRecvPtr
}

// CursorOf reports whether the program is cursor-backed and, if so,
// returns its cursor factory. The check never executes program code,
// takes no locks, and is safe for unbounded concurrency.
func CursorOf(p Program) (func() Cursor, bool) {
	if p == nil {
		return nil, false
	}
	if reflect.ValueOf(p).Pointer() != cursorProgPtr {
		return nil, false
	}
	var mk func() Cursor
	p(probeRecv(&mk)) // the CursorProgram closure only hands over its factory
	return mk, mk != nil
}

// CursorFactory returns a factory of pull cursors for any program: the
// registered factory for cursor-backed programs, or an iter.Pull
// adapter for plain push closures.
func CursorFactory(p Program) func() Cursor {
	if mk, ok := CursorOf(p); ok {
		return mk
	}
	return func() Cursor {
		next, stop := iter.Pull(p)
		return &pullCursor{next: next, stop: stop}
	}
}

// NewCursor returns a pull cursor over the program: the direct-call
// fast path when the program is cursor-backed, an iter.Pull coroutine
// adapter otherwise.
func NewCursor(p Program) Cursor {
	return CursorFactory(p)()
}

// Opaque wraps a program in a plain closure, hiding any cursor backing.
// Consumers (in particular the simulator) then fall back to the
// iter.Pull path. It exists for differential testing and benchmarking
// of the two engines against each other.
func Opaque(p Program) Program {
	return func(yield func(Instr) bool) { p(yield) }
}

// pullCursor adapts a push program via iter.Pull (the slow path).
type pullCursor struct {
	next func() (Instr, bool)
	stop func()
}

func (c *pullCursor) Next() (Instr, bool) { return c.next() }
func (c *pullCursor) Close()              { c.stop() }

// ---- Cursor implementations of the combinators. ----

type emptyCursor struct{}

func (emptyCursor) Next() (Instr, bool) { return Instr{}, false }
func (emptyCursor) Close()              {}

// sliceCursor emits the instructions of a fixed list, skipping
// zero-duration entries (the Instrs contract).
type sliceCursor struct {
	list []Instr
	i    int
}

func (c *sliceCursor) Next() (Instr, bool) {
	for c.i < len(c.list) {
		ins := c.list[c.i]
		c.i++
		if ins.Amount == 0 {
			continue
		}
		return ins, true
	}
	return Instr{}, false
}
func (c *sliceCursor) Close() { c.i = len(c.list) }

// seqCursor concatenates sub-cursors created lazily from factories.
type seqCursor struct {
	mks []func() Cursor
	cur Cursor
	i   int
}

func (c *seqCursor) Next() (Instr, bool) {
	for {
		if c.cur == nil {
			if c.i >= len(c.mks) {
				return Instr{}, false
			}
			c.cur = c.mks[c.i]()
			c.i++
		}
		if ins, ok := c.cur.Next(); ok {
			return ins, true
		}
		c.cur.Close()
		c.cur = nil
	}
}

func (c *seqCursor) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.i = len(c.mks)
}

// foreverCursor runs gen(1), gen(2), … without end. gen yields cursors
// directly, so per-round construction costs no Program wrapper.
type foreverCursor struct {
	gen func(i int) Cursor
	cur Cursor
	i   int
}

func (c *foreverCursor) Next() (Instr, bool) {
	for {
		if c.cur == nil {
			c.i++
			c.cur = c.gen(c.i)
		}
		if ins, ok := c.cur.Next(); ok {
			return ins, true
		}
		c.cur.Close()
		c.cur = nil
	}
}

func (c *foreverCursor) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.gen = nil
}

// repeatCursor runs gen(0), …, gen(n-1): the bounded Forever.
type repeatCursor struct {
	gen  func(j int) Cursor
	cur  Cursor
	j, n int
}

func (c *repeatCursor) Next() (Instr, bool) {
	for {
		if c.cur == nil {
			if c.j >= c.n {
				return Instr{}, false
			}
			c.cur = c.gen(c.j)
			c.j++
		}
		if ins, ok := c.cur.Next(); ok {
			return ins, true
		}
		c.cur.Close()
		c.cur = nil
	}
}

func (c *repeatCursor) Close() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.j = c.n
}

// rotateCursor advances every move direction by alpha.
type rotateCursor struct {
	src   Cursor
	alpha float64
}

func (c *rotateCursor) Next() (Instr, bool) {
	ins, ok := c.src.Next()
	if ok && ins.Op == OpMove {
		ins.Theta += c.alpha
	}
	return ins, ok
}
func (c *rotateCursor) Close() { c.src.Close() }

// budgetCursor truncates its source after exactly T local time units,
// splitting the final instruction and padding an early-ending source
// with a closing wait.
type budgetCursor struct {
	src     Cursor
	T       float64
	elapsed float64
	done    bool
}

func (c *budgetCursor) Next() (Instr, bool) {
	if c.done {
		return Instr{}, false
	}
	ins, ok := c.src.Next()
	if !ok {
		c.done = true
		if c.elapsed < c.T {
			return Wait(c.T - c.elapsed), true
		}
		return Instr{}, false
	}
	d := ins.Duration()
	if c.elapsed+d <= c.T {
		c.elapsed += d
		return ins, true
	}
	head, _ := ins.Split(c.T - c.elapsed)
	c.elapsed = c.T
	c.done = true
	if head.Amount > 0 {
		return head, true
	}
	return Instr{}, false
}

func (c *budgetCursor) Close() {
	c.done = true
	c.src.Close()
}

// timeSliceCursor cuts the source into sliceDur-long slices separated
// by wait(pause), splitting instructions exactly at slice boundaries.
type timeSliceCursor struct {
	src             Cursor
	sliceDur, pause float64
	inSlice         float64
	carry           Instr // remainder of a split instruction
	hasCarry        bool
	pausePending    bool
}

func (c *timeSliceCursor) Next() (Instr, bool) {
	for {
		if c.pausePending {
			c.pausePending = false
			c.inSlice = 0
			return Wait(c.pause), true
		}
		var ins Instr
		if c.hasCarry {
			ins, c.hasCarry = c.carry, false
		} else {
			var ok bool
			if ins, ok = c.src.Next(); !ok {
				return Instr{}, false
			}
			if ins.Amount <= 0 {
				continue
			}
		}
		room := c.sliceDur - c.inSlice
		if ins.Duration() <= room {
			c.inSlice += ins.Duration()
			if c.inSlice == c.sliceDur {
				c.pausePending = true
			}
			return ins, true
		}
		head, tail := ins.Split(room)
		c.carry, c.hasCarry = tail, true
		c.pausePending = true
		if head.Amount > 0 {
			return head, true
		}
	}
}

func (c *timeSliceCursor) Close() { c.src.Close() }

// recordedCursor appends every pulled instruction to *rec.
type recordedCursor struct {
	src Cursor
	rec *[]Instr
}

func (c *recordedCursor) Next() (Instr, bool) {
	ins, ok := c.src.Next()
	if ok {
		*c.rec = append(*c.rec, ins)
	}
	return ins, ok
}
func (c *recordedCursor) Close() { c.src.Close() }

// backtrackCursor replays recorded instructions backwards (moves
// reversed, waits skipped).
type backtrackCursor struct {
	rec []Instr
	i   int // next index to replay, counting down
}

func (c *backtrackCursor) Next() (Instr, bool) {
	for c.i >= 0 {
		ins := c.rec[c.i].Reversed()
		c.i--
		if ins.Amount == 0 {
			continue
		}
		return ins, true
	}
	return Instr{}, false
}
func (c *backtrackCursor) Close() { c.i = -1 }

// withBacktrackCursor emits the source and then the reverse of
// everything it emitted, delegating the replay to an embedded
// backtrackCursor so the reversal rules live in one place.
type withBacktrackCursor struct {
	src  Cursor
	rec  []Instr
	back backtrackCursor
	in   bool // replay phase entered
}

func (c *withBacktrackCursor) Next() (Instr, bool) {
	if !c.in {
		if ins, ok := c.src.Next(); ok {
			c.rec = append(c.rec, ins)
			return ins, true
		}
		c.src.Close()
		c.in = true
		c.back = backtrackCursor{rec: c.rec, i: len(c.rec) - 1}
	}
	return c.back.Next()
}

func (c *withBacktrackCursor) Close() {
	if !c.in {
		c.src.Close()
		c.in = true
	}
	c.back.Close()
}
