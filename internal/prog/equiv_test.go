package prog

// Differential suite for the cursor engine: every combinator is
// compared against a frozen reference copy of the pre-cursor push
// implementation (refXxx below). The reference closures are the exact
// seed-era code, with one deliberate divergence: refBudget carries the
// iter.Seq contract fix (no padding wait after the consumer has
// stopped), which the cursor engine satisfies structurally and which
// the seed implementation violated — see TestBudgetEarlyBreakRegression.
//
// Equality is exact (float bit equality): the cursor implementations
// perform the same arithmetic in the same order as the closures, so any
// divergence is a real behavior change, not rounding.

import (
	"math"
	"math/rand"
	"testing"
)

// ---- Frozen reference implementations (seed push closures). ----

func refInstrs(list ...Instr) Program {
	return func(yield func(Instr) bool) {
		for _, ins := range list {
			if ins.Amount == 0 {
				continue
			}
			if !yield(ins) {
				return
			}
		}
	}
}

func refSeq(ps ...Program) Program {
	return func(yield func(Instr) bool) {
		for _, p := range ps {
			stop := false
			p(func(ins Instr) bool {
				if !yield(ins) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

func refForever(gen func(i int) Program) Program {
	return func(yield func(Instr) bool) {
		for i := 1; ; i++ {
			stop := false
			gen(i)(func(ins Instr) bool {
				if !yield(ins) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

func refRepeat(n int, gen func(j int) Program) Program {
	return func(yield func(Instr) bool) {
		for j := 0; j < n; j++ {
			stop := false
			gen(j)(func(ins Instr) bool {
				if !yield(ins) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

func refRotate(p Program, alpha float64) Program {
	return func(yield func(Instr) bool) {
		p(func(ins Instr) bool {
			if ins.Op == OpMove {
				ins.Theta += alpha
			}
			return yield(ins)
		})
	}
}

// refBudget is the seed implementation plus the contract fix: the
// stopped flag suppresses the padding wait once the consumer has
// returned false.
func refBudget(p Program, T float64) Program {
	return func(yield func(Instr) bool) {
		elapsed := 0.0
		stopped := false
		p(func(ins Instr) bool {
			d := ins.Duration()
			if elapsed+d <= T {
				elapsed += d
				if !yield(ins) {
					stopped = true
					return false
				}
				return true
			}
			head, _ := ins.Split(T - elapsed)
			elapsed = T
			if head.Amount > 0 {
				if !yield(head) {
					stopped = true
				}
			}
			return false
		})
		if !stopped && elapsed < T {
			yield(Wait(T - elapsed))
		}
	}
}

func refTimeSlice(p Program, sliceDur, pause float64) Program {
	return func(yield func(Instr) bool) {
		inSlice := 0.0
		stop := false
		emit := func(ins Instr) bool {
			if !yield(ins) {
				stop = true
				return false
			}
			return true
		}
		p(func(ins Instr) bool {
			for ins.Amount > 0 {
				room := sliceDur - inSlice
				if ins.Duration() <= room {
					inSlice += ins.Duration()
					if !emit(ins) {
						return false
					}
					ins.Amount = 0
					if inSlice == sliceDur {
						if !emit(Wait(pause)) {
							return false
						}
						inSlice = 0
					}
					break
				}
				head, tail := ins.Split(room)
				if head.Amount > 0 && !emit(head) {
					return false
				}
				if !emit(Wait(pause)) {
					return false
				}
				inSlice = 0
				ins = tail
			}
			return !stop
		})
	}
}

func refRecorded(p Program, rec *[]Instr) Program {
	return func(yield func(Instr) bool) {
		p(func(ins Instr) bool {
			*rec = append(*rec, ins)
			return yield(ins)
		})
	}
}

func refBacktrackOf(rec []Instr) Program {
	return func(yield func(Instr) bool) {
		for i := len(rec) - 1; i >= 0; i-- {
			ins := rec[i].Reversed()
			if ins.Amount == 0 {
				continue
			}
			if !yield(ins) {
				return
			}
		}
	}
}

func refWithBacktrack(p Program) Program {
	return func(yield func(Instr) bool) {
		var rec []Instr
		stop := false
		refRecorded(p, &rec)(func(ins Instr) bool {
			if !yield(ins) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
		refBacktrackOf(rec)(yield)
	}
}

// ---- Comparison helpers. ----

func instrsEqual(a, b []Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertEquiv drains both programs fully and at every truncation length
// up to the full stream (exercising early-stop paths), requiring exact
// instruction equality throughout.
func assertEquiv(t *testing.T, name string, cursorP, refP Program) {
	t.Helper()
	want := Collect(refP)
	got := Collect(cursorP)
	if !instrsEqual(got, want) {
		t.Fatalf("%s: cursor stream diverges from reference\ncursor: %v\nref:    %v", name, got, want)
	}
	for n := 1; n <= len(want); n++ {
		if g := Take(cursorP, n); !instrsEqual(g, want[:min(n, len(want))]) {
			t.Fatalf("%s: Take(%d) = %v, want prefix %v", name, n, g, want[:min(n, len(want))])
		}
	}
}

// randInstrs draws a random finite instruction list (moves, waits, and
// occasional zero-duration entries, which Instrs must skip).
func randInstrs(rng *rand.Rand, n int) []Instr {
	list := make([]Instr, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			list = append(list, Wait(rng.Float64()*3))
		case 1:
			list = append(list, Wait(0)) // must be skipped
		default:
			list = append(list, Move(rng.Float64()*2*math.Pi, 0.05+rng.Float64()*4))
		}
	}
	return list
}

// ---- Per-combinator equivalence. ----

func TestCursorEquivInstrs(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		list := randInstrs(rng, rng.Intn(8))
		assertEquiv(t, "Instrs", Instrs(list...), refInstrs(list...))
	}
	assertEquiv(t, "Empty", Empty(), refInstrs())
}

func TestCursorEquivSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 50; trial++ {
		var cs, rs []Program
		for k := 0; k < rng.Intn(4); k++ {
			list := randInstrs(rng, rng.Intn(5))
			cs = append(cs, Instrs(list...))
			rs = append(rs, refInstrs(list...))
		}
		assertEquiv(t, "Seq", Seq(cs...), refSeq(rs...))
	}
}

func TestCursorEquivForever(t *testing.T) {
	gen := func(i int) Program { return Instrs(Wait(float64(i)), Move(0.1*float64(i), 1)) }
	refGen := func(i int) Program { return refInstrs(Wait(float64(i)), Move(0.1*float64(i), 1)) }
	got := Take(Forever(gen), 17)
	want := Take(refForever(refGen), 17)
	if !instrsEqual(got, want) {
		t.Fatalf("Forever: %v vs %v", got, want)
	}
}

func TestCursorEquivRepeat(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(5)
		lists := make([][]Instr, n)
		for j := range lists {
			lists[j] = randInstrs(rng, 1+rng.Intn(4))
		}
		gen := func(j int) Program { return Instrs(lists[j]...) }
		refGen := func(j int) Program { return refInstrs(lists[j]...) }
		assertEquiv(t, "Repeat", Repeat(n, gen), refRepeat(n, refGen))
	}
}

func TestCursorEquivRotate(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 50; trial++ {
		list := randInstrs(rng, 1+rng.Intn(6))
		alpha := rng.Float64() * 7
		assertEquiv(t, "Rotate", Rotate(Instrs(list...), alpha), refRotate(refInstrs(list...), alpha))
	}
}

func TestCursorEquivBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 100; trial++ {
		list := randInstrs(rng, 1+rng.Intn(6))
		T := rng.Float64() * 12 // below, at, or above the program length
		assertEquiv(t, "Budget", Budget(Instrs(list...), T), refBudget(refInstrs(list...), T))
	}
	// Boundary: budget exactly the program duration.
	list := []Instr{Move(0, 2), Wait(3)}
	assertEquiv(t, "Budget-exact", Budget(Instrs(list...), 5), refBudget(refInstrs(list...), 5))
}

func TestCursorEquivTimeSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 100; trial++ {
		list := randInstrs(rng, 1+rng.Intn(6))
		slice := 0.1 + rng.Float64()*2
		pause := rng.Float64() * 5
		if trial%7 == 0 {
			pause = 0 // zero pauses are emitted verbatim by both paths
		}
		assertEquiv(t, "TimeSlice",
			TimeSlice(Instrs(list...), slice, pause),
			refTimeSlice(refInstrs(list...), slice, pause))
	}
}

func TestCursorEquivRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 50; trial++ {
		list := randInstrs(rng, 1+rng.Intn(6))
		var recC, recR []Instr
		gotC := Collect(Recorded(Instrs(list...), &recC))
		gotR := Collect(refRecorded(refInstrs(list...), &recR))
		if !instrsEqual(gotC, gotR) || !instrsEqual(recC, recR) {
			t.Fatalf("Recorded diverges: %v/%v vs %v/%v", gotC, recC, gotR, recR)
		}
	}
}

func TestCursorEquivBacktrackOf(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	for trial := 0; trial < 50; trial++ {
		rec := randInstrs(rng, rng.Intn(8))
		assertEquiv(t, "BacktrackOf", BacktrackOf(rec), refBacktrackOf(rec))
	}
}

func TestCursorEquivWithBacktrack(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 50; trial++ {
		list := randInstrs(rng, 1+rng.Intn(6))
		assertEquiv(t, "WithBacktrack", WithBacktrack(Instrs(list...)), refWithBacktrack(refInstrs(list...)))
	}
}

// Nested random combinator trees: the composition the algorithm stack
// actually builds (WithBacktrack ∘ TimeSlice ∘ Budget ∘ Rotate ∘ Seq).
func TestCursorEquivNestedTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 60; trial++ {
		depth := 1 + rng.Intn(4)
		var build func(d int) (Program, Program)
		build = func(d int) (Program, Program) {
			if d == 0 {
				list := randInstrs(rng, 1+rng.Intn(4))
				return Instrs(list...), refInstrs(list...)
			}
			c1, r1 := build(d - 1)
			switch rng.Intn(5) {
			case 0:
				alpha := rng.Float64() * 3
				return Rotate(c1, alpha), refRotate(r1, alpha)
			case 1:
				T := rng.Float64() * 10
				return Budget(c1, T), refBudget(r1, T)
			case 2:
				s, p := 0.2+rng.Float64(), rng.Float64()*4
				return TimeSlice(c1, s, p), refTimeSlice(r1, s, p)
			case 3:
				return WithBacktrack(c1), refWithBacktrack(r1)
			default:
				c2, r2 := build(d - 1)
				return Seq(c1, c2), refSeq(r1, r2)
			}
		}
		c, r := build(depth)
		assertEquiv(t, "nested", c, r)
	}
}

// The cursor fast path and the iter.Pull fallback must agree on the
// same program: NewCursor(p) vs NewCursor(Opaque(p)).
func TestCursorMatchesPullFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 30; trial++ {
		list := randInstrs(rng, 1+rng.Intn(6))
		p := WithBacktrack(TimeSlice(Instrs(list...), 0.3+rng.Float64(), 1))
		fast := NewCursor(p)
		slow := NewCursor(Opaque(p))
		for {
			a, okA := fast.Next()
			b, okB := slow.Next()
			if okA != okB || a != b {
				t.Fatalf("fast/slow diverge: %v,%v vs %v,%v", a, okA, b, okB)
			}
			if !okA {
				break
			}
		}
		fast.Close()
		slow.Close()
	}
}

// ---- Cursor plumbing. ----

func TestCursorOfDetection(t *testing.T) {
	if _, ok := CursorOf(Instrs(Move(0, 1))); !ok {
		t.Error("combinator program not detected as cursor-backed")
	}
	if _, ok := CursorOf(Opaque(Instrs(Move(0, 1)))); ok {
		t.Error("opaque program detected as cursor-backed")
	}
	if _, ok := CursorOf(nil); ok {
		t.Error("nil program detected as cursor-backed")
	}
	plain := func(yield func(Instr) bool) { yield(Move(0, 1)) }
	if _, ok := CursorOf(plain); ok {
		t.Error("hand-written closure detected as cursor-backed")
	}
}

func TestNewCursorOnPlainClosure(t *testing.T) {
	plain := func(yield func(Instr) bool) {
		for i := 1; i <= 3; i++ {
			if !yield(Wait(float64(i))) {
				return
			}
		}
	}
	c := NewCursor(plain)
	defer c.Close()
	for i := 1; i <= 3; i++ {
		ins, ok := c.Next()
		if !ok || ins.Amount != float64(i) {
			t.Fatalf("pull adapter step %d: %v %v", i, ins, ok)
		}
	}
	if _, ok := c.Next(); ok {
		t.Fatal("pull adapter did not exhaust")
	}
}

func TestCursorCloseIdempotent(t *testing.T) {
	for name, p := range map[string]Program{
		"Instrs":        Instrs(Move(0, 1), Wait(2)),
		"Seq":           Seq(Instrs(Move(0, 1)), Instrs(Wait(1))),
		"Budget":        Budget(Instrs(Move(0, 5)), 2),
		"TimeSlice":     TimeSlice(Instrs(Move(0, 5)), 1, 1),
		"WithBacktrack": WithBacktrack(Instrs(Move(0, 1))),
		"Forever":       Forever(func(i int) Program { return Instrs(Wait(1)) }),
		"Repeat":        Repeat(3, func(j int) Program { return Instrs(Wait(1)) }),
		"Opaque":        Opaque(Instrs(Move(0, 1))),
	} {
		c := NewCursor(p)
		c.Next()
		c.Close()
		c.Close() // must not panic
		_ = name
	}
}

func TestOnStart(t *testing.T) {
	fired := 0
	p := OnStart(Instrs(Move(0, 1), Wait(1)), func() { fired++ })
	if fired != 0 {
		t.Fatal("OnStart fired at construction")
	}
	got := Collect(p)
	if fired != 1 || len(got) != 2 {
		t.Fatalf("after one drain: fired=%d len=%d", fired, len(got))
	}
	Collect(p)
	if fired != 2 {
		t.Fatalf("OnStart must fire per iteration: fired=%d", fired)
	}
	// Inside a Seq, the marker fires only when iteration reaches it.
	fired = 0
	seq := Seq(Instrs(Move(0, 1)), OnStart(Instrs(Wait(1)), func() { fired++ }))
	c := NewCursor(seq)
	defer c.Close()
	c.Next() // first block's move
	if fired != 0 {
		t.Fatal("marker fired before its block was reached")
	}
	c.Next() // marked block's wait
	if fired != 1 {
		t.Fatalf("marker did not fire on block entry: fired=%d", fired)
	}
}

// ---- The Budget contract fix (satellite regression). ----

// TestBudgetEarlyBreakRegression pins the iter.Seq contract fix: the
// seed implementation yielded its padding wait after the consumer had
// already returned false, which panics under range-over-func ("range
// function continued iteration after function for loop body returned
// false"). Breaking out of a range over a short budgeted program must
// be clean.
func TestBudgetEarlyBreakRegression(t *testing.T) {
	// The program is shorter than the budget, so the seed code would
	// try to emit the padding wait after the break.
	b := Budget(Instrs(Move(0, 1), Move(0, 1)), 100)
	n := 0
	for range b {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("saw %d instructions before break", n)
	}
	// Same through the iter.Pull fallback.
	n = 0
	for range Opaque(b) {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("opaque path: saw %d instructions before break", n)
	}
	// And the padding must still appear on a full drain.
	got := Collect(b)
	if len(got) != 3 || got[2].Op != OpWait || got[2].Amount != 98 {
		t.Fatalf("padding lost on full drain: %v", got)
	}
}
