package prog

import (
	"sync"
	"testing"
)

// TestCursorOfConcurrent hammers the lock-free factory-recovery path
// from many goroutines, each probing its own distinct CursorProgram,
// and checks every probe gets exactly its own factory back — the
// property the old global-mutex probe bought with serialization and
// the CAS-claimed handoff cells must preserve without it. Run under
// -race this also proves the handoff is data-race-free.
func TestCursorOfConcurrent(t *testing.T) {
	const goroutines = 32
	const rounds = 200

	// Program g emits a single wait of duration g+1: pulling one
	// instruction through the recovered factory identifies which
	// program the factory belongs to.
	progs := make([]Program, goroutines)
	for g := range progs {
		amount := float64(g + 1)
		progs[g] = CursorProgram(func() Cursor {
			return &sliceCursor{list: []Instr{Wait(amount)}}
		})
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mk, ok := CursorOf(progs[g])
				if !ok {
					t.Errorf("goroutine %d: CursorOf failed on a CursorProgram", g)
					return
				}
				c := mk()
				ins, ok := c.Next()
				c.Close()
				if !ok || ins.Amount != float64(g+1) {
					t.Errorf("goroutine %d: recovered a foreign factory (got amount %v)", g, ins.Amount)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCursorOfNonCursorProgram pins the negative path: a hand-written
// push closure has no factory and must not be mistaken for one.
func TestCursorOfNonCursorProgram(t *testing.T) {
	plain := Program(func(yield func(Instr) bool) { yield(Wait(1)) })
	if _, ok := CursorOf(plain); ok {
		t.Fatal("plain closure reported as cursor-backed")
	}
	if _, ok := CursorOf(nil); ok {
		t.Fatal("nil program reported as cursor-backed")
	}
}

// TestCursorOfAllocFree pins the steady-state allocation cost of
// factory recovery at zero. The probe runs once per NewCursor — per
// agent per simulation, and per round on generator-built programs — so
// a per-probe allocation multiplies across every hot path at once: a
// regression here doubled the engine's per-segment allocations between
// BENCH_PR3 and BENCH_PR5.
func TestCursorOfAllocFree(t *testing.T) {
	p := Instrs(Wait(1))
	if _, ok := CursorOf(p); !ok { // warm the probe pool outside the measured window
		t.Fatal("CursorOf failed on a CursorProgram")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := CursorOf(p); !ok {
			t.Fatal("CursorOf failed on a CursorProgram")
		}
	})
	if allocs > 0 {
		t.Fatalf("CursorOf allocates %.1f objects per probe; want 0", allocs)
	}
}
