// Package prog represents the move/wait programs executed by agents and
// the combinators used by Algorithm 1 of the paper to assemble them.
//
// The paper's model (§1.2) allows two instructions:
//
//	go(dir, d) — move d of the agent's length units in direction dir of
//	             its private system,
//	wait(z)    — stay idle for z of the agent's time units.
//
// Since an agent's length unit is the distance it covers in one of its
// time units, *both* instructions last exactly Amount local time units,
// which makes time-budgeted composition (lines 10, 17 of Algorithm 1)
// uniform.
//
// Programs are lazy push-iterators (iter.Seq[Instr]); the rendezvous
// algorithms are infinite programs and the simulator pulls from them on
// demand. Combinators provided here implement exactly the program surgery
// Algorithm 1 performs: rotation into a Rot(α) system, time budgeting,
// time slicing with interleaved waits, and path recording + backtracking.
//
// Every combinator is backed by the direct-call cursor engine of
// cursor.go: the returned Program is still an ordinary iter.Seq[Instr],
// but consumers that pull many instructions (the simulator above all)
// recover the underlying Cursor via NewCursor and bypass the iter.Pull
// coroutine entirely. Hand-written push closures remain first-class:
// they compose with the combinators and the simulator transparently,
// only without the fast path.
package prog

import (
	"iter"
	"math"
)

// Op distinguishes the two instruction kinds.
type Op int

const (
	// OpMove is go(dir, d).
	OpMove Op = iota
	// OpWait is wait(z).
	OpWait
)

// Instr is a single program instruction in the agent's private system.
type Instr struct {
	Op     Op
	Theta  float64 // polar direction angle in the local system (moves only)
	Amount float64 // distance in local length units (moves) or duration in local time units (waits)
}

// Move returns go(theta, d).
func Move(theta, d float64) Instr { return Instr{OpMove, theta, d} }

// Wait returns wait(z).
func Wait(z float64) Instr { return Instr{OpWait, 0, z} }

// Compass direction angles (the paper's N, S, E, W shorthand).
const (
	East  = 0.0
	North = math.Pi / 2
	West  = math.Pi
	South = 3 * math.Pi / 2
)

// Duration returns the instruction's duration in local time units.
func (ins Instr) Duration() float64 { return ins.Amount }

// Reversed returns the move traversed backwards. Waits reverse to
// zero-length waits (backtracking replays the path, not the idle time —
// see lines 12 and 20 of Algorithm 1, whose analysis in Claim 3.8 bounds
// backtracking by the path length only).
func (ins Instr) Reversed() Instr {
	if ins.Op == OpWait {
		return Wait(0)
	}
	return Move(ins.Theta+math.Pi, ins.Amount)
}

// Split cuts the instruction after d local time units, returning the
// executed head and the remaining tail. d must be in [0, Duration].
func (ins Instr) Split(d float64) (head, tail Instr) {
	head, tail = ins, ins
	head.Amount = d
	tail.Amount = ins.Amount - d
	return
}

// A Program is a lazy instruction stream. Yield false stops generation.
type Program = iter.Seq[Instr]

// Empty is the program with no instructions.
func Empty() Program {
	return CursorProgram(func() Cursor { return emptyCursor{} })
}

// Instrs returns a program that emits the given instructions.
func Instrs(list ...Instr) Program {
	return CursorProgram(func() Cursor { return &sliceCursor{list: list} })
}

// Seq concatenates programs.
func Seq(ps ...Program) Program {
	mks := make([]func() Cursor, len(ps))
	for i, p := range ps {
		mks[i] = CursorFactory(p)
	}
	return CursorProgram(func() Cursor { return &seqCursor{mks: mks} })
}

// Forever yields the programs produced by gen(1), gen(2), … without end.
// It is the "repeat" loop of Algorithm 1. gen is invoked lazily, each
// round's program only when the previous round has been exhausted.
func Forever(gen func(i int) Program) Program {
	genC := func(i int) Cursor { return NewCursor(gen(i)) }
	return CursorProgram(func() Cursor { return &foreverCursor{gen: genC} })
}

// Repeat yields the programs produced by gen(0), …, gen(n-1): the
// bounded counterpart of Forever, used for the per-phase epoch loops of
// Algorithm 1 (block 1) and the Latecomers sweep. gen is invoked
// lazily.
func Repeat(n int, gen func(j int) Program) Program {
	genC := func(j int) Cursor { return NewCursor(gen(j)) }
	return CursorProgram(func() Cursor { return &repeatCursor{gen: genC, n: n} })
}

// OnStart invokes fn every time iteration of the program begins (before
// its first instruction is produced). Algorithm 1 uses it to expose
// phase/block progress to observers.
func OnStart(p Program, fn func()) Program {
	mk := CursorFactory(p)
	return CursorProgram(func() Cursor { fn(); return mk() })
}

// Rotate re-expresses a program in the local system Rot(alpha): every
// move direction is advanced by alpha (counterclockwise in the agent's
// own system, per §2 of the paper).
func Rotate(p Program, alpha float64) Program {
	mk := CursorFactory(p)
	return CursorProgram(func() Cursor { return &rotateCursor{src: mk(), alpha: alpha} })
}

// Budget truncates a program after exactly T local time units, splitting
// the final instruction if needed. This is "execute P during time T"
// (lines 10 and 17 of Algorithm 1). If the program runs out before the
// budget, the remainder is padded with a single wait so the wrapper
// still consumes exactly T local time (an agent that has finished early
// simply idles; durations in the analysis assume the full window). The
// padding is only produced while the consumer is still pulling — a
// consumer that stops early never receives it (the iter.Seq contract).
func Budget(p Program, T float64) Program {
	mk := CursorFactory(p)
	return CursorProgram(func() Cursor { return &budgetCursor{src: mk(), T: T} })
}

// TimeSlice cuts a program into consecutive slices of sliceDur local time
// units and emits wait(pause) after every slice. This implements line 18
// of Algorithm 1: S₁ wait(2^i) S₂ wait(2^i) … Slices are formed by
// splitting instructions exactly at slice boundaries.
func TimeSlice(p Program, sliceDur, pause float64) Program {
	mk := CursorFactory(p)
	return CursorProgram(func() Cursor {
		return &timeSliceCursor{src: mk(), sliceDur: sliceDur, pause: pause}
	})
}

// Recorded runs a program while appending every emitted instruction to
// *rec (which the caller typically backtracks afterwards). Instructions
// are recorded as they are pulled by the consumer.
func Recorded(p Program, rec *[]Instr) Program {
	mk := CursorFactory(p)
	return CursorProgram(func() Cursor { return &recordedCursor{src: mk(), rec: rec} })
}

// BacktrackOf returns the program that retraces the recorded instructions
// backwards (moves reversed, waits skipped), returning the agent to the
// point where the recording began.
func BacktrackOf(rec []Instr) Program {
	return CursorProgram(func() Cursor { return &backtrackCursor{rec: rec, i: len(rec) - 1} })
}

// WithBacktrack emits p and then the reverse of everything p emitted.
// It implements the pattern of lines 10–12 and 18–20 of Algorithm 1.
func WithBacktrack(p Program) Program {
	mk := CursorFactory(p)
	return CursorProgram(func() Cursor { return &withBacktrackCursor{src: mk()} })
}

// TotalDuration sums the local durations of a finite program. It must not
// be called on infinite programs.
func TotalDuration(p Program) float64 {
	sum := 0.0
	p(func(ins Instr) bool {
		sum += ins.Duration()
		return true
	})
	return sum
}

// Displacement returns the net local displacement of a finite program.
func Displacement(p Program) (dx, dy float64) {
	p(func(ins Instr) bool {
		if ins.Op == OpMove {
			s, c := math.Sincos(ins.Theta)
			dx += c * ins.Amount
			dy += s * ins.Amount
		}
		return true
	})
	return
}

// Collect materializes a finite program into a slice (testing helper).
func Collect(p Program) []Instr {
	var out []Instr
	p(func(ins Instr) bool {
		out = append(out, ins)
		return true
	})
	return out
}

// Take returns at most the first n instructions of a program.
func Take(p Program, n int) []Instr {
	var out []Instr
	p(func(ins Instr) bool {
		out = append(out, ins)
		return len(out) < n
	})
	return out
}
