// Package prog represents the move/wait programs executed by agents and
// the combinators used by Algorithm 1 of the paper to assemble them.
//
// The paper's model (§1.2) allows two instructions:
//
//	go(dir, d) — move d of the agent's length units in direction dir of
//	             its private system,
//	wait(z)    — stay idle for z of the agent's time units.
//
// Since an agent's length unit is the distance it covers in one of its
// time units, *both* instructions last exactly Amount local time units,
// which makes time-budgeted composition (lines 10, 17 of Algorithm 1)
// uniform.
//
// Programs are lazy push-iterators (iter.Seq[Instr]); the rendezvous
// algorithms are infinite programs and the simulator pulls from them on
// demand. Combinators provided here implement exactly the program surgery
// Algorithm 1 performs: rotation into a Rot(α) system, time budgeting,
// time slicing with interleaved waits, and path recording + backtracking.
package prog

import (
	"iter"
	"math"
)

// Op distinguishes the two instruction kinds.
type Op int

const (
	// OpMove is go(dir, d).
	OpMove Op = iota
	// OpWait is wait(z).
	OpWait
)

// Instr is a single program instruction in the agent's private system.
type Instr struct {
	Op     Op
	Theta  float64 // polar direction angle in the local system (moves only)
	Amount float64 // distance in local length units (moves) or duration in local time units (waits)
}

// Move returns go(theta, d).
func Move(theta, d float64) Instr { return Instr{OpMove, theta, d} }

// Wait returns wait(z).
func Wait(z float64) Instr { return Instr{OpWait, 0, z} }

// Compass direction angles (the paper's N, S, E, W shorthand).
const (
	East  = 0.0
	North = math.Pi / 2
	West  = math.Pi
	South = 3 * math.Pi / 2
)

// Duration returns the instruction's duration in local time units.
func (ins Instr) Duration() float64 { return ins.Amount }

// Reversed returns the move traversed backwards. Waits reverse to
// zero-length waits (backtracking replays the path, not the idle time —
// see lines 12 and 20 of Algorithm 1, whose analysis in Claim 3.8 bounds
// backtracking by the path length only).
func (ins Instr) Reversed() Instr {
	if ins.Op == OpWait {
		return Wait(0)
	}
	return Move(ins.Theta+math.Pi, ins.Amount)
}

// Split cuts the instruction after d local time units, returning the
// executed head and the remaining tail. d must be in [0, Duration].
func (ins Instr) Split(d float64) (head, tail Instr) {
	head, tail = ins, ins
	head.Amount = d
	tail.Amount = ins.Amount - d
	return
}

// A Program is a lazy instruction stream. Yield false stops generation.
type Program = iter.Seq[Instr]

// Empty is the program with no instructions.
func Empty() Program {
	return func(yield func(Instr) bool) {}
}

// Instrs returns a program that emits the given instructions.
func Instrs(list ...Instr) Program {
	return func(yield func(Instr) bool) {
		for _, ins := range list {
			if ins.Amount == 0 {
				continue
			}
			if !yield(ins) {
				return
			}
		}
	}
}

// Seq concatenates programs.
func Seq(ps ...Program) Program {
	return func(yield func(Instr) bool) {
		for _, p := range ps {
			stop := false
			p(func(ins Instr) bool {
				if !yield(ins) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

// Forever yields the programs produced by gen(1), gen(2), … without end.
// It is the "repeat" loop of Algorithm 1.
func Forever(gen func(i int) Program) Program {
	return func(yield func(Instr) bool) {
		for i := 1; ; i++ {
			stop := false
			gen(i)(func(ins Instr) bool {
				if !yield(ins) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	}
}

// Rotate re-expresses a program in the local system Rot(alpha): every
// move direction is advanced by alpha (counterclockwise in the agent's
// own system, per §2 of the paper).
func Rotate(p Program, alpha float64) Program {
	return func(yield func(Instr) bool) {
		p(func(ins Instr) bool {
			if ins.Op == OpMove {
				ins.Theta += alpha
			}
			return yield(ins)
		})
	}
}

// Budget truncates a program after exactly T local time units, splitting
// the final instruction if needed. This is "execute P during time T"
// (lines 10 and 17 of Algorithm 1).
func Budget(p Program, T float64) Program {
	return func(yield func(Instr) bool) {
		elapsed := 0.0
		p(func(ins Instr) bool {
			d := ins.Duration()
			if elapsed+d <= T {
				elapsed += d
				return yield(ins)
			}
			head, _ := ins.Split(T - elapsed)
			elapsed = T
			if head.Amount > 0 {
				yield(head)
			}
			return false
		})
		// If the program ran out before the budget, pad with idling so the
		// wrapper still consumes exactly T local time (an agent that has
		// finished early simply waits; durations in the analysis assume
		// the full window).
		if elapsed < T {
			yield(Wait(T - elapsed))
		}
	}
}

// TimeSlice cuts a program into consecutive slices of sliceDur local time
// units and emits wait(pause) after every slice. This implements line 18
// of Algorithm 1: S₁ wait(2^i) S₂ wait(2^i) … Slices are formed by
// splitting instructions exactly at slice boundaries.
func TimeSlice(p Program, sliceDur, pause float64) Program {
	return func(yield func(Instr) bool) {
		inSlice := 0.0 // time used inside the current slice
		stop := false
		emit := func(ins Instr) bool {
			if !yield(ins) {
				stop = true
				return false
			}
			return true
		}
		p(func(ins Instr) bool {
			for ins.Amount > 0 {
				room := sliceDur - inSlice
				if ins.Duration() <= room {
					inSlice += ins.Duration()
					if !emit(ins) {
						return false
					}
					ins.Amount = 0
					if inSlice == sliceDur {
						if !emit(Wait(pause)) {
							return false
						}
						inSlice = 0
					}
					break
				}
				head, tail := ins.Split(room)
				if head.Amount > 0 && !emit(head) {
					return false
				}
				if !emit(Wait(pause)) {
					return false
				}
				inSlice = 0
				ins = tail
			}
			return !stop
		})
	}
}

// Recorded runs a program while appending every emitted instruction to
// *rec (which the caller typically backtracks afterwards).
func Recorded(p Program, rec *[]Instr) Program {
	return func(yield func(Instr) bool) {
		p(func(ins Instr) bool {
			*rec = append(*rec, ins)
			return yield(ins)
		})
	}
}

// BacktrackOf returns the program that retraces the recorded instructions
// backwards (moves reversed, waits skipped), returning the agent to the
// point where the recording began.
func BacktrackOf(rec []Instr) Program {
	return func(yield func(Instr) bool) {
		for i := len(rec) - 1; i >= 0; i-- {
			ins := rec[i].Reversed()
			if ins.Amount == 0 {
				continue
			}
			if !yield(ins) {
				return
			}
		}
	}
}

// WithBacktrack emits p and then the reverse of everything p emitted.
// It implements the pattern of lines 10–12 and 18–20 of Algorithm 1.
func WithBacktrack(p Program) Program {
	return func(yield func(Instr) bool) {
		var rec []Instr
		stop := false
		Recorded(p, &rec)(func(ins Instr) bool {
			if !yield(ins) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
		BacktrackOf(rec)(yield)
	}
}

// TotalDuration sums the local durations of a finite program. It must not
// be called on infinite programs.
func TotalDuration(p Program) float64 {
	sum := 0.0
	p(func(ins Instr) bool {
		sum += ins.Duration()
		return true
	})
	return sum
}

// Displacement returns the net local displacement of a finite program.
func Displacement(p Program) (dx, dy float64) {
	p(func(ins Instr) bool {
		if ins.Op == OpMove {
			s, c := math.Sincos(ins.Theta)
			dx += c * ins.Amount
			dy += s * ins.Amount
		}
		return true
	})
	return
}

// Collect materializes a finite program into a slice (testing helper).
func Collect(p Program) []Instr {
	var out []Instr
	p(func(ins Instr) bool {
		out = append(out, ins)
		return true
	})
	return out
}

// Take returns at most the first n instructions of a program.
func Take(p Program, n int) []Instr {
	var out []Instr
	p(func(ins Instr) bool {
		out = append(out, ins)
		return len(out) < n
	})
	return out
}
