package prog

// Cursor-level combinator constructors: the allocation-lean spelling of
// the Program combinators for hot builders.
//
// Every Program-returning combinator necessarily allocates its wrapper
// closure (CursorProgram) and, for Seq, its factory slice — cheap once,
// but the algorithm builders construct combinator trees *per phase*
// (and block 1 per epoch), so on the simulator's hot path those
// wrappers dominated program-construction allocations. A builder that
// composes cursors directly pays one cursor struct per combinator and
// wraps a Program around the outermost level only.
//
// Semantics are identical to the Program combinators — these return
// the very same cursor implementations — with one deliberate
// difference: arguments are live cursors, so sub-cursor construction is
// eager where Seq's factory indirection was lazy. Cursor construction
// runs no program code and has no observable effects (OnStart, the one
// construction-observing combinator, has no cursor-level spelling), so
// the instruction streams are indistinguishable; the equivalence suite
// pins this.
//
// A cursor is single-use: unlike a Program, it cannot be re-iterated —
// callers that need re-iterability wrap with CursorProgram and build a
// fresh cursor per factory call.

// SeqOf returns a cursor that concatenates the given cursors in order.
func SeqOf(cs ...Cursor) Cursor { return &seqCursors{cs: cs} }

// seqCursors concatenates pre-built cursors (the eager counterpart of
// seqCursor's factory list).
type seqCursors struct {
	cs []Cursor
	i  int
}

func (c *seqCursors) Next() (Instr, bool) {
	for c.i < len(c.cs) {
		if ins, ok := c.cs[c.i].Next(); ok {
			return ins, true
		}
		c.cs[c.i].Close()
		c.i++
	}
	return Instr{}, false
}

func (c *seqCursors) Close() {
	for ; c.i < len(c.cs); c.i++ {
		c.cs[c.i].Close()
	}
}

// InstrsCursor returns a cursor over the given instructions (the
// cursor-level Instrs; zero-duration entries are skipped).
func InstrsCursor(list ...Instr) Cursor { return &sliceCursor{list: list} }

// RotateCursor advances every move direction of src by alpha (the
// cursor-level Rotate).
func RotateCursor(src Cursor, alpha float64) Cursor {
	return &rotateCursor{src: src, alpha: alpha}
}

// BudgetCursor truncates src after exactly T local time units (the
// cursor-level Budget, padding an early end with a closing wait).
func BudgetCursor(src Cursor, T float64) Cursor {
	return &budgetCursor{src: src, T: T}
}

// TimeSliceCursor cuts src into sliceDur-long slices separated by
// wait(pause) (the cursor-level TimeSlice).
func TimeSliceCursor(src Cursor, sliceDur, pause float64) Cursor {
	return &timeSliceCursor{src: src, sliceDur: sliceDur, pause: pause}
}

// WithBacktrackCursor emits src and then the reverse of everything it
// emitted (the cursor-level WithBacktrack).
func WithBacktrackCursor(src Cursor) Cursor {
	return &withBacktrackCursor{src: src}
}

// RepeatCursor runs gen(0), …, gen(n-1) in order, each round's cursor
// built only when the previous round has been exhausted (the
// cursor-level Repeat).
func RepeatCursor(n int, gen func(j int) Cursor) Cursor {
	return &repeatCursor{gen: gen, n: n}
}

// ForeverCursor runs gen(1), gen(2), … without end (the cursor-level
// Forever).
func ForeverCursor(gen func(i int) Cursor) Cursor {
	return &foreverCursor{gen: gen}
}
