package prog

import (
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-12

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestInstrBasics(t *testing.T) {
	m := Move(North, 3)
	if m.Duration() != 3 {
		t.Errorf("move duration = %v", m.Duration())
	}
	w := Wait(2)
	if w.Duration() != 2 {
		t.Errorf("wait duration = %v", w.Duration())
	}
	r := m.Reversed()
	if r.Op != OpMove || !approx(math.Mod(r.Theta, 2*math.Pi), math.Mod(North+math.Pi, 2*math.Pi)) || r.Amount != 3 {
		t.Errorf("reversed = %+v", r)
	}
	if got := w.Reversed(); got.Amount != 0 {
		t.Errorf("reversed wait = %+v", got)
	}
	h, tail := m.Split(1)
	if h.Amount != 1 || tail.Amount != 2 || h.Theta != m.Theta || tail.Theta != m.Theta {
		t.Errorf("split = %+v %+v", h, tail)
	}
}

func TestInstrsSkipsZero(t *testing.T) {
	got := Collect(Instrs(Move(0, 1), Wait(0), Move(0, 2)))
	if len(got) != 2 {
		t.Fatalf("got %d instrs", len(got))
	}
}

func TestSeqOrder(t *testing.T) {
	p := Seq(Instrs(Move(0, 1)), Instrs(Wait(2)), Instrs(Move(North, 3)))
	got := Collect(p)
	if len(got) != 3 || got[0].Amount != 1 || got[1].Op != OpWait || got[2].Amount != 3 {
		t.Fatalf("seq = %+v", got)
	}
}

func TestSeqEarlyStop(t *testing.T) {
	p := Seq(Instrs(Move(0, 1), Move(0, 2)), Instrs(Move(0, 3)))
	got := Take(p, 2)
	if len(got) != 2 || got[1].Amount != 2 {
		t.Fatalf("take = %+v", got)
	}
}

func TestForever(t *testing.T) {
	p := Forever(func(i int) Program {
		return Instrs(Wait(float64(i)))
	})
	got := Take(p, 5)
	for i, ins := range got {
		if ins.Amount != float64(i+1) {
			t.Fatalf("forever[%d] = %+v", i, ins)
		}
	}
}

func TestRotate(t *testing.T) {
	p := Rotate(Instrs(Move(0, 1), Wait(1)), math.Pi/2)
	got := Collect(p)
	if !approx(got[0].Theta, math.Pi/2) {
		t.Errorf("rotated theta = %v", got[0].Theta)
	}
	if got[1].Op != OpWait {
		t.Errorf("wait rotated: %+v", got[1])
	}
	// Rotations compose.
	q := Rotate(Rotate(Instrs(Move(0.3, 1)), 0.5), 0.7)
	if got := Collect(q); !approx(got[0].Theta, 1.5) {
		t.Errorf("composed theta = %v", got[0].Theta)
	}
}

func TestBudgetExact(t *testing.T) {
	p := Instrs(Move(0, 2), Wait(3), Move(North, 5))
	b := Budget(p, 6) // takes Move(2), Wait(3), then 1 unit of the last move
	got := Collect(b)
	if len(got) != 3 {
		t.Fatalf("budget = %+v", got)
	}
	if got[2].Op != OpMove || !approx(got[2].Amount, 1) {
		t.Errorf("split tail = %+v", got[2])
	}
	if d := TotalDuration(b); !approx(d, 6) {
		t.Errorf("budget duration = %v", d)
	}
}

func TestBudgetPadsShortProgram(t *testing.T) {
	b := Budget(Instrs(Move(0, 1)), 5)
	got := Collect(b)
	if len(got) != 2 || got[1].Op != OpWait || !approx(got[1].Amount, 4) {
		t.Fatalf("padded = %+v", got)
	}
}

func TestBudgetAtBoundary(t *testing.T) {
	b := Budget(Instrs(Move(0, 2), Move(0, 3)), 2)
	got := Collect(b)
	if len(got) != 1 || !approx(got[0].Amount, 2) {
		t.Fatalf("boundary budget = %+v", got)
	}
}

func TestTimeSlice(t *testing.T) {
	// A 4-unit move sliced into 1-unit slices with 10-unit pauses.
	p := TimeSlice(Instrs(Move(0, 4)), 1, 10)
	got := Collect(p)
	// Expect M1 W10 M1 W10 M1 W10 M1 W10.
	if len(got) != 8 {
		t.Fatalf("timeslice = %+v", got)
	}
	for i, ins := range got {
		if i%2 == 0 {
			if ins.Op != OpMove || !approx(ins.Amount, 1) {
				t.Fatalf("slice %d = %+v", i, ins)
			}
		} else if ins.Op != OpWait || !approx(ins.Amount, 10) {
			t.Fatalf("pause %d = %+v", i, ins)
		}
	}
}

func TestTimeSliceSplitsAcrossInstrs(t *testing.T) {
	// Moves of 0.6 and 0.9 with slice 0.5: boundaries at 0.5, 1.0, 1.5.
	p := TimeSlice(Instrs(Move(0, 0.6), Move(North, 0.9)), 0.5, 1)
	var moveSum, pauseCount float64
	for _, ins := range Collect(p) {
		if ins.Op == OpMove {
			moveSum += ins.Amount
		} else {
			pauseCount++
		}
	}
	if !approx(moveSum, 1.5) {
		t.Errorf("move total = %v", moveSum)
	}
	if pauseCount != 3 {
		t.Errorf("pauses = %v", pauseCount)
	}
}

func TestTimeSliceMovePreservesDirectionPerSlice(t *testing.T) {
	p := TimeSlice(Instrs(Move(0.7, 2)), 0.5, 1)
	for _, ins := range Collect(p) {
		if ins.Op == OpMove && !approx(ins.Theta, 0.7) {
			t.Fatalf("slice changed direction: %+v", ins)
		}
	}
}

func TestWithBacktrackReturnsToOrigin(t *testing.T) {
	p := WithBacktrack(Instrs(Move(0.3, 2), Wait(1), Move(2.1, 4), Move(4.0, 1)))
	dx, dy := Displacement(p)
	if math.Abs(dx) > 1e-9 || math.Abs(dy) > 1e-9 {
		t.Errorf("net displacement (%v, %v)", dx, dy)
	}
}

// Property: WithBacktrack of any random finite program nets to zero
// displacement, and its move length doubles the original's.
func TestQuickBacktrackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		var list []Instr
		moveLen := 0.0
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				list = append(list, Wait(rng.Float64()*3))
			} else {
				d := rng.Float64() * 5
				moveLen += d
				list = append(list, Move(rng.Float64()*2*math.Pi, d))
			}
		}
		p := WithBacktrack(Instrs(list...))
		dx, dy := Displacement(p)
		if math.Hypot(dx, dy) > 1e-8 {
			t.Fatalf("trial %d: net displacement %v", trial, math.Hypot(dx, dy))
		}
		gotMove := 0.0
		p(func(ins Instr) bool {
			if ins.Op == OpMove {
				gotMove += ins.Amount
			}
			return true
		})
		if !approx(gotMove, 2*moveLen) {
			t.Fatalf("trial %d: move length %v, want %v", trial, gotMove, 2*moveLen)
		}
	}
}

func TestBacktrackOfSkipsWaits(t *testing.T) {
	rec := []Instr{Move(0, 1), Wait(5), Move(North, 2)}
	got := Collect(BacktrackOf(rec))
	if len(got) != 2 {
		t.Fatalf("backtrack = %+v", got)
	}
	if got[0].Amount != 2 || got[1].Amount != 1 {
		t.Fatalf("backtrack order wrong: %+v", got)
	}
}

// Property: Budget(p, T) has total duration exactly T for any T below or
// above the program's length.
func TestQuickBudgetDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		var list []Instr
		for i := 0; i < n; i++ {
			list = append(list, Move(rng.Float64()*6, 0.1+rng.Float64()*3))
		}
		T := rng.Float64() * 20
		if d := TotalDuration(Budget(Instrs(list...), T)); !approx(d, T) {
			t.Fatalf("trial %d: budget duration %v, want %v", trial, d, T)
		}
	}
}

// Property: TimeSlice preserves the movement content of the program: the
// concatenated move slices equal the original moves.
func TestQuickTimeSlicePreservesPath(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		var list []Instr
		for i := 0; i < n; i++ {
			list = append(list, Move(rng.Float64()*6, 0.1+rng.Float64()*2))
		}
		orig := Instrs(list...)
		sliced := TimeSlice(orig, 0.1+rng.Float64(), rng.Float64()*5)
		odx, ody := Displacement(orig)
		sdx, sdy := Displacement(sliced)
		if !approx(odx, sdx) || !approx(ody, sdy) {
			t.Fatalf("trial %d: displacement changed", trial)
		}
	}
}

// Rotation composes transparently with slicing and budgeting: the
// combinators Algorithm 1 stacks must commute where the semantics say so.
func TestRotateCommutesWithTimeSlice(t *testing.T) {
	base := Instrs(Move(0.4, 2), Move(1.9, 1.5), Wait(1), Move(3.3, 0.7))
	alpha := 0.85
	a := Collect(Rotate(TimeSlice(base, 0.5, 2), alpha))
	b := Collect(TimeSlice(Rotate(base, alpha), 0.5, 2))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op || !approx(a[i].Amount, b[i].Amount) {
			t.Fatalf("instr %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Op == OpMove && !approx(a[i].Theta, b[i].Theta) {
			t.Fatalf("theta %d differs: %v vs %v", i, a[i].Theta, b[i].Theta)
		}
	}
}

func TestBudgetOfRotatedBacktrack(t *testing.T) {
	// A budgeted, rotated, backtracked program still nets to zero
	// displacement when the budget covers it entirely.
	inner := WithBacktrack(Instrs(Move(0.3, 2), Move(1.1, 1)))
	total := TotalDuration(inner)
	p := Rotate(Budget(inner, total), 0.7)
	dx, dy := Displacement(p)
	if math.Hypot(dx, dy) > 1e-9 {
		t.Errorf("net displacement %v", math.Hypot(dx, dy))
	}
}

// Nested backtracking: WithBacktrack of a program containing its own
// backtrack still returns to the origin.
func TestNestedBacktrack(t *testing.T) {
	inner := WithBacktrack(Instrs(Move(0.2, 3)))
	outer := WithBacktrack(Seq(inner, Instrs(Move(1.5, 2))))
	dx, dy := Displacement(outer)
	if math.Hypot(dx, dy) > 1e-9 {
		t.Errorf("net displacement %v", math.Hypot(dx, dy))
	}
}

func TestTimeSliceZeroPause(t *testing.T) {
	// A zero pause degenerates to pure slicing (and zero-amount waits are
	// suppressed by Instrs-level consumers; TimeSlice emits them but the
	// simulator skips them).
	p := TimeSlice(Instrs(Move(0, 1)), 0.25, 0)
	moves := 0.0
	p(func(ins Instr) bool {
		if ins.Op == OpMove {
			moves += ins.Amount
		}
		return true
	})
	if !approx(moves, 1) {
		t.Errorf("moves = %v", moves)
	}
}

func TestTakeAndCollect(t *testing.T) {
	p := Instrs(Move(0, 1), Move(0, 2), Move(0, 3))
	if got := Take(p, 2); len(got) != 2 {
		t.Fatalf("take = %+v", got)
	}
	if got := Take(p, 99); len(got) != 3 {
		t.Fatalf("take over = %+v", got)
	}
	if got := Collect(Empty()); len(got) != 0 {
		t.Fatalf("empty = %+v", got)
	}
}
