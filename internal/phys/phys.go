// Package phys models the private attributes of a mobile agent and the
// conversion between its local coordinate system and the absolute one.
//
// Following §1.2 of the paper, each agent has a private Cartesian system
// with origin at its start position, rotated by φ with chirality χ
// relative to the absolute system, a clock whose tick lasts τ absolute
// time units, a constant speed v (absolute distance per absolute time),
// and a wake-up time t. Its private length unit is u = τ·v (the distance
// it travels during one of its time units).
package phys

import (
	"math"

	"repro/internal/geom"
)

// Attributes is the full private attribute bundle of one agent, expressed
// in absolute terms.
type Attributes struct {
	Origin geom.Vec2 // start position in the absolute system
	Phi    float64   // rotation of the x-axis, 0 ≤ φ < 2π
	Chi    int       // chirality: +1 or -1
	Tau    float64   // clock period in absolute time units, τ > 0
	Speed  float64   // speed in absolute units, v > 0
	Wake   float64   // wake-up time in absolute time units, t ≥ 0
}

// Reference returns the attributes of the reference agent A: identity
// frame, unit clock and speed, wake-up at 0.
func Reference() Attributes {
	return Attributes{Chi: 1, Tau: 1, Speed: 1}
}

// Unit returns the agent's private length unit u = τ·v in absolute units.
func (a Attributes) Unit() float64 { return a.Tau * a.Speed }

// Frame returns the linear part M = R_φ·S_χ of the local→absolute map.
// For χ = -1 this is the reflection across the line of inclination φ/2.
func (a Attributes) Frame() geom.Mat2 {
	m := geom.Rotation(a.Phi)
	if a.Chi < 0 {
		m = m.Mul(geom.FlipY)
	}
	return m
}

// ToAbs maps a point given in the agent's local units and axes to the
// absolute system: Origin + u·M·p.
func (a Attributes) ToAbs(p geom.Vec2) geom.Vec2 {
	return a.Origin.Add(a.Frame().Apply(p).Scale(a.Unit()))
}

// ToLocal inverts ToAbs.
func (a Attributes) ToLocal(q geom.Vec2) geom.Vec2 {
	m := a.Frame().Transpose() // frame is orthogonal: inverse = transpose
	return m.Apply(q.Sub(a.Origin)).Scale(1 / a.Unit())
}

// DirAbs maps a unit direction given as a local polar angle to the
// absolute unit direction.
func (a Attributes) DirAbs(theta float64) geom.Vec2 {
	return a.Frame().Apply(geom.Polar(theta))
}

// MoveDuration returns the absolute duration of go(dir, d): an agent
// travels d local length units at speed v, covering d·u absolute
// distance in d·u/v = d·τ absolute time.
func (a Attributes) MoveDuration(dLocal float64) float64 {
	return dLocal * a.Tau
}

// WaitDuration returns the absolute duration of wait(z): z local time
// units last z·τ absolute units.
func (a Attributes) WaitDuration(zLocal float64) float64 {
	return zLocal * a.Tau
}

// AbsVelocity returns the absolute velocity vector while executing
// go(theta, ·): speed v in the absolute direction of the local angle.
func (a Attributes) AbsVelocity(theta float64) geom.Vec2 {
	return a.DirAbs(theta).Scale(a.Speed)
}

// Valid reports whether the attribute bundle is physically meaningful.
func (a Attributes) Valid() bool {
	return a.Tau > 0 && a.Speed > 0 && a.Wake >= 0 &&
		(a.Chi == 1 || a.Chi == -1) &&
		a.Phi >= 0 && a.Phi < 2*math.Pi &&
		a.Origin.IsFinite()
}
