package phys

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randAttrs(rng *rand.Rand) Attributes {
	chi := 1
	if rng.Intn(2) == 0 {
		chi = -1
	}
	return Attributes{
		Origin: geom.V(rng.NormFloat64()*5, rng.NormFloat64()*5),
		Phi:    rng.Float64() * 2 * math.Pi,
		Chi:    chi,
		Tau:    0.1 + rng.Float64()*5,
		Speed:  0.1 + rng.Float64()*5,
		Wake:   rng.Float64() * 10,
	}
}

func TestReference(t *testing.T) {
	a := Reference()
	if !a.Valid() {
		t.Fatal("reference attributes invalid")
	}
	if a.Unit() != 1 {
		t.Errorf("unit = %v", a.Unit())
	}
	p := geom.V(2, 3)
	if got := a.ToAbs(p); got != p {
		t.Errorf("reference ToAbs = %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 1000; i++ {
		a := randAttrs(rng)
		p := geom.V(rng.NormFloat64()*10, rng.NormFloat64()*10)
		back := a.ToLocal(a.ToAbs(p))
		if !back.ApproxEqual(p, 1e-8) {
			t.Fatalf("roundtrip %v -> %v (attrs %+v)", p, back, a)
		}
	}
}

func TestFrameOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		a := randAttrs(rng)
		m := a.Frame()
		if got := m.Mul(m.Transpose()); !got.ApproxEqual(geom.Identity, 1e-9) {
			t.Fatalf("frame not orthogonal: %+v", m)
		}
		wantDet := float64(a.Chi)
		if d := m.Det(); math.Abs(d-wantDet) > 1e-9 {
			t.Fatalf("det = %v, want %v", d, wantDet)
		}
	}
}

// For χ = -1 the frame is the reflection across inclination φ/2
// (the geometric heart of Lemma 2.1).
func TestChiMinusOneIsReflection(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 500; i++ {
		phi := rng.Float64() * 2 * math.Pi
		a := Attributes{Phi: phi, Chi: -1, Tau: 1, Speed: 1}
		if !a.Frame().ApproxEqual(geom.Reflection(phi/2), 1e-9) {
			t.Fatalf("frame != Ref(φ/2) for φ=%v", phi)
		}
	}
}

func TestDirAbs(t *testing.T) {
	// Agent rotated by π/2 with χ=1: local East is absolute North.
	a := Attributes{Phi: math.Pi / 2, Chi: 1, Tau: 1, Speed: 1}
	if got := a.DirAbs(0); !got.ApproxEqual(geom.V(0, 1), 1e-12) {
		t.Errorf("DirAbs(0) = %v", got)
	}
	// χ=-1 with φ=0: local North is absolute South.
	b := Attributes{Chi: -1, Tau: 1, Speed: 1}
	if got := b.DirAbs(math.Pi / 2); !got.ApproxEqual(geom.V(0, -1), 1e-12) {
		t.Errorf("mirror DirAbs(N) = %v", got)
	}
}

func TestDurationsAndUnit(t *testing.T) {
	a := Attributes{Chi: 1, Tau: 2, Speed: 3}
	if got := a.Unit(); got != 6 {
		t.Errorf("unit = %v", got)
	}
	// go(·, 5): 5 local units = 30 absolute distance at speed 3 → 10 abs
	// time = 5·τ.
	if got := a.MoveDuration(5); got != 10 {
		t.Errorf("MoveDuration = %v", got)
	}
	if got := a.WaitDuration(5); got != 10 {
		t.Errorf("WaitDuration = %v", got)
	}
	// Distance covered = duration · speed = 30 = d · u.
	if d := a.MoveDuration(5) * a.Speed; d != 5*a.Unit() {
		t.Errorf("distance mismatch: %v vs %v", d, 5*a.Unit())
	}
}

func TestAbsVelocity(t *testing.T) {
	a := Attributes{Chi: 1, Tau: 2, Speed: 3}
	v := a.AbsVelocity(0)
	if !v.ApproxEqual(geom.V(3, 0), 1e-12) {
		t.Errorf("velocity = %v", v)
	}
	// Moving for the MoveDuration covers d·u absolute distance.
	d := 5.0
	covered := v.Scale(a.MoveDuration(d)).Norm()
	if math.Abs(covered-d*a.Unit()) > 1e-9 {
		t.Errorf("covered %v, want %v", covered, d*a.Unit())
	}
}

func TestValid(t *testing.T) {
	if !Reference().Valid() {
		t.Error("reference invalid")
	}
	bad := Reference()
	bad.Tau = 0
	if bad.Valid() {
		t.Error("τ=0 accepted")
	}
	bad = Reference()
	bad.Chi = 0
	if bad.Valid() {
		t.Error("χ=0 accepted")
	}
	bad = Reference()
	bad.Phi = 7
	if bad.Valid() {
		t.Error("φ≥2π accepted")
	}
	bad = Reference()
	bad.Wake = -1
	if bad.Valid() {
		t.Error("negative wake accepted")
	}
}
