package walk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/prog"
)

// polyline folds a finite program into the local polyline it traces.
func polyline(p prog.Program) []geom.Vec2 {
	pts := []geom.Vec2{{}}
	cur := geom.Vec2{}
	p(func(ins prog.Instr) bool {
		if ins.Op == prog.OpMove {
			cur = cur.Add(geom.Polar(ins.Theta).Scale(ins.Amount))
			pts = append(pts, cur)
		}
		return true
	})
	return pts
}

// distToPolyline returns the minimum distance from q to the polyline.
func distToPolyline(pts []geom.Vec2, q geom.Vec2) float64 {
	best := math.Inf(1)
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		ab := b.Sub(a)
		den := ab.Norm2()
		s := 0.0
		if den > 0 {
			s = q.Sub(a).Dot(ab) / den
			s = math.Max(0, math.Min(1, s))
		}
		if d := q.Dist(a.Add(ab.Scale(s))); d < best {
			best = d
		}
	}
	return best
}

func TestLinearStructure(t *testing.T) {
	got := prog.Collect(Linear(2))
	if len(got) != 6 {
		t.Fatalf("Linear(2) has %d instrs", len(got))
	}
	// Step 1: E2, W4, E2; step 2: E4, W8, E4.
	wantAmt := []float64{2, 4, 2, 4, 8, 4}
	for k, ins := range got {
		if ins.Amount != wantAmt[k] {
			t.Errorf("instr %d amount = %v, want %v", k, ins.Amount, wantAmt[k])
		}
	}
}

func TestLinearReturnsToOrigin(t *testing.T) {
	for i := 1; i <= 6; i++ {
		dx, dy := prog.Displacement(Linear(i))
		if math.Abs(dx) > 1e-9 || math.Abs(dy) > 1e-9 {
			t.Errorf("Linear(%d) displacement (%v,%v)", i, dx, dy)
		}
	}
}

func TestLinearCoversInterval(t *testing.T) {
	// Step i reaches ±2^i on the x-axis.
	for i := 1; i <= 5; i++ {
		pts := polyline(Linear(i))
		minX, maxX := 0.0, 0.0
		for _, p := range pts {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			if p.Y != 0 {
				t.Fatalf("Linear(%d) left the x-axis: %v", i, p)
			}
		}
		want := math.Ldexp(1, i)
		if maxX != want || minX != -want {
			t.Errorf("Linear(%d) range [%v, %v], want ±%v", i, minX, maxX, want)
		}
	}
}

func TestLinearDuration(t *testing.T) {
	for i := 1; i <= 8; i++ {
		if got := prog.TotalDuration(Linear(i)); got != LinearDuration(i) {
			t.Errorf("Linear(%d) duration %v, want %v", i, got, LinearDuration(i))
		}
	}
}

func TestPlanarReturnsToOrigin(t *testing.T) {
	for i := 1; i <= 3; i++ {
		dx, dy := prog.Displacement(Planar(i))
		if math.Abs(dx) > 1e-7 || math.Abs(dy) > 1e-7 {
			t.Errorf("Planar(%d) displacement (%v,%v)", i, dx, dy)
		}
	}
}

func TestPlanarDuration(t *testing.T) {
	for i := 1; i <= 4; i++ {
		got := prog.TotalDuration(Planar(i))
		want := PlanarDuration(i)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("Planar(%d) duration %v, want %v", i, got, want)
		}
		if got > PlanarDurationBound(i) {
			t.Errorf("Planar(%d) duration %v exceeds paper bound %v", i, got, PlanarDurationBound(i))
		}
	}
}

// The claim that powers Claims 3.1 and 3.7: the planar walk passes within
// CoverGap(i) of every point of the square of half-side CoverRadius(i).
func TestPlanarCoverage(t *testing.T) {
	for i := 1; i <= 3; i++ {
		pts := polyline(Planar(i))
		gap := CoverGap(i)
		radius := CoverRadius(i)
		rng := rand.New(rand.NewSource(int64(60 + i)))
		for trial := 0; trial < 150; trial++ {
			q := geom.V((2*rng.Float64()-1)*radius, (2*rng.Float64()-1)*radius)
			if d := distToPolyline(pts, q); d > gap+1e-9 {
				t.Fatalf("Planar(%d) misses %v by %v > %v", i, q, d, gap)
			}
		}
		// Corners are the worst case; check them explicitly.
		for _, q := range []geom.Vec2{
			geom.V(radius, radius), geom.V(-radius, radius),
			geom.V(radius, -radius), geom.V(-radius, -radius),
		} {
			if d := distToPolyline(pts, q); d > gap+1e-9 {
				t.Fatalf("Planar(%d) misses corner %v by %v", i, q, d)
			}
		}
	}
}

func TestPlanarVerticalExtent(t *testing.T) {
	// The sweep must reach exactly ±2^i vertically.
	for i := 1; i <= 3; i++ {
		pts := polyline(Planar(i))
		minY, maxY := 0.0, 0.0
		for _, p := range pts {
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
		want := math.Ldexp(1, i)
		if math.Abs(maxY-want) > 1e-9 || math.Abs(minY+want) > 1e-9 {
			t.Errorf("Planar(%d) vertical range [%v, %v]", i, minY, maxY)
		}
	}
}

// Early termination propagates through the nested generators (the
// simulator stops pulling at rendezvous).
func TestEarlyStop(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50} {
		got := prog.Take(Planar(3), n)
		if len(got) != n {
			t.Fatalf("Take(%d) returned %d", n, len(got))
		}
	}
	if got := prog.Take(Linear(4), 2); len(got) != 2 {
		t.Fatalf("linear take: %d", len(got))
	}
}

// Planar walk prefixes are consistent: taking more instructions extends,
// never alters, the earlier prefix (determinism of the generator).
func TestPlanarPrefixStability(t *testing.T) {
	short := prog.Take(Planar(2), 20)
	long := prog.Take(Planar(2), 60)
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("prefix diverged at %d: %+v vs %+v", i, short[i], long[i])
		}
	}
}

func TestRunWait(t *testing.T) {
	p := RunWait(0.7, 3, 5)
	got := prog.Collect(p)
	if len(got) != 3 {
		t.Fatalf("RunWait = %+v", got)
	}
	if got[1].Op != prog.OpWait || got[1].Amount != 5 {
		t.Errorf("wait = %+v", got[1])
	}
	dx, dy := prog.Displacement(p)
	if math.Hypot(dx, dy) > 1e-9 {
		t.Errorf("RunWait displacement %v", math.Hypot(dx, dy))
	}
	if d := prog.TotalDuration(p); d != RunWaitDuration(3, 5) {
		t.Errorf("duration %v", d)
	}
	// The far endpoint is l·(cos θ, sin θ).
	pts := polyline(p)
	far := geom.Polar(0.7).Scale(3)
	if !pts[1].ApproxEqual(far, 1e-9) {
		t.Errorf("far point %v, want %v", pts[1], far)
	}
}
