// Package walk implements the search-walk building blocks of the paper:
// LinearCowWalk (Algorithm 3), PlanarCowWalk (Algorithm 2), and the
// run-and-wait primitive used by the Latecomers substrate.
//
// All walks are expressed in the executing agent's private units and
// start and end at the agent's current position — the invariant Lemma 3.1
// of the paper relies on.
package walk

import (
	"math"

	"repro/internal/prog"
)

// linearCursor generates LinearCowWalk(i) procedurally: step j emits
// go(E, 2^j), go(W, 2^{j+1}), go(E, 2^j). It is embedded by value in
// planarCursor so the millions of linear sub-walks of a planar search
// cost no allocation at all.
type linearCursor struct {
	i, j, k int     // j: current step (1-based), k: 0..2 within the step
	d       float64 // 2^j, maintained by doubling (exact)
}

func (c *linearCursor) reset(i int) { c.i, c.j, c.k, c.d = i, 1, 0, 2 }

func (c *linearCursor) Next() (prog.Instr, bool) {
	if c.j > c.i {
		return prog.Instr{}, false
	}
	var ins prog.Instr
	switch c.k {
	case 0:
		ins = prog.Move(prog.East, c.d)
	case 1:
		ins = prog.Move(prog.West, 2*c.d)
	case 2:
		ins = prog.Move(prog.East, c.d)
	}
	if c.k++; c.k == 3 {
		c.k, c.j, c.d = 0, c.j+1, c.d*2
	}
	return ins, true
}

func (c *linearCursor) Close() { c.j = c.i + 1 }

// Linear returns LinearCowWalk(i) (Algorithm 3): the first i steps of the
// classic cow-path linear search along the local x-axis. Step j visits
// all points of the line at distance ≤ 2^j on both sides and returns:
//
//	for j = 1..i:  go(E, 2^j); go(W, 2^(j+1)); go(E, 2^j)
func Linear(i int) prog.Program {
	return prog.CursorProgram(func() prog.Cursor {
		c := &linearCursor{}
		c.reset(i)
		return c
	})
}

// LinearDuration returns the local-time duration of Linear(i):
// Σ_{j=1..i} 4·2^j = 2^{i+3} − 8.
func LinearDuration(i int) float64 {
	return math.Ldexp(1, i+3) - 8
}

// Planar returns PlanarCowWalk(i) (Algorithm 2): a series of parallel
// linear searches covering the square [−2^i, 2^i]² of the local system
// with line spacing 2^{−i}:
//
//	LinearCowWalk(i)
//	for j = 1 to 2:
//	    repeat 2^{2i} times:
//	        go(N or S, 1/2^i); LinearCowWalk(i)
//	    go(S or N, 2^i)
//
// The walk passes within 2^{−(i+1)} of every point of the square and
// returns to its start.
func Planar(i int) prog.Program {
	return prog.CursorProgram(func() prog.Cursor { return newPlanarCursor(i) })
}

// NewPlanar returns PlanarCowWalk(i) as a bare single-use cursor — the
// allocation-lean spelling for the per-phase (and, in block 1,
// per-epoch) program builders of Algorithm 1.
func NewPlanar(i int) prog.Cursor { return newPlanarCursor(i) }

// planarCursor generates PlanarCowWalk(i) as a flat state machine: the
// leading linear walk, then two sweeps of reps × (step move + linear
// walk) each closed by the return move. One allocation per walk.
type planarCursor struct {
	i          int
	step, span float64
	reps       int
	lin        linearCursor
	stage      int // 0: leading linear, 1: next step move, 2: in-sweep linear, 3: return move, 4: done
	j, k       int // j: sweep 1 or 2, k: reps consumed in the sweep
}

func newPlanarCursor(i int) *planarCursor {
	c := &planarCursor{
		i:    i,
		step: math.Ldexp(1, -i),
		span: math.Ldexp(1, i),
		reps: 1 << uint(2*i),
	}
	c.lin.reset(i)
	return c
}

func (c *planarCursor) Next() (prog.Instr, bool) {
	for {
		switch c.stage {
		case 0:
			if ins, ok := c.lin.Next(); ok {
				return ins, true
			}
			c.stage, c.j, c.k = 1, 1, 0
		case 1:
			if c.k < c.reps {
				c.k++
				c.lin.reset(c.i)
				c.stage = 2
				if c.j == 1 {
					return prog.Move(prog.North, c.step), true
				}
				return prog.Move(prog.South, c.step), true
			}
			c.stage = 3
		case 2:
			if ins, ok := c.lin.Next(); ok {
				return ins, true
			}
			c.stage = 1
		case 3:
			if c.j == 1 {
				c.j, c.k, c.stage = 2, 0, 1
				return prog.Move(prog.South, c.span), true
			}
			c.stage = 4
			return prog.Move(prog.North, c.span), true
		default:
			return prog.Instr{}, false
		}
	}
}

func (c *planarCursor) Close() { c.stage = 4 }

// PlanarDuration returns the exact local-time duration of Planar(i).
func PlanarDuration(i int) float64 {
	lin := LinearDuration(i)
	reps := math.Ldexp(1, 2*i)
	return lin + 2*(reps*(math.Ldexp(1, -i)+lin)+math.Ldexp(1, i))
}

// PlanarDurationBound returns the paper's 2^{3i+5} upper bound on the
// duration of Planar(i) (used by Claim 3.8).
func PlanarDurationBound(i int) float64 { return math.Ldexp(1, 3*i+5) }

// CoverRadius returns the half-side 2^i of the square Planar(i) covers,
// in local units.
func CoverRadius(i int) float64 { return math.Ldexp(1, i) }

// CoverGap returns the guaranteed passing distance 2^{−(i+1)} of
// Planar(i): the walk passes within this local distance of every point of
// the covered square.
func CoverGap(i int) float64 { return math.Ldexp(1, -(i + 1)) }

// RunWait returns the primitive used by the Latecomers construction:
// go length l in local direction theta, wait w, and walk back:
//
//	go(theta, l); wait(w); go(theta+π, l)
func RunWait(theta, l, w float64) prog.Program {
	return prog.Instrs(
		prog.Move(theta, l),
		prog.Wait(w),
		prog.Move(theta+math.Pi, l),
	)
}

// RunWaitDuration returns the local duration of RunWait(·, l, w).
func RunWaitDuration(l, w float64) float64 { return 2*l + w }
