// Package walk implements the search-walk building blocks of the paper:
// LinearCowWalk (Algorithm 3), PlanarCowWalk (Algorithm 2), and the
// run-and-wait primitive used by the Latecomers substrate.
//
// All walks are expressed in the executing agent's private units and
// start and end at the agent's current position — the invariant Lemma 3.1
// of the paper relies on.
package walk

import (
	"math"

	"repro/internal/prog"
)

// Linear returns LinearCowWalk(i) (Algorithm 3): the first i steps of the
// classic cow-path linear search along the local x-axis. Step j visits
// all points of the line at distance ≤ 2^j on both sides and returns:
//
//	for j = 1..i:  go(E, 2^j); go(W, 2^(j+1)); go(E, 2^j)
func Linear(i int) prog.Program {
	return func(yield func(prog.Instr) bool) {
		for j := 1; j <= i; j++ {
			d := math.Ldexp(1, j)
			if !yield(prog.Move(prog.East, d)) {
				return
			}
			if !yield(prog.Move(prog.West, 2*d)) {
				return
			}
			if !yield(prog.Move(prog.East, d)) {
				return
			}
		}
	}
}

// LinearDuration returns the local-time duration of Linear(i):
// Σ_{j=1..i} 4·2^j = 2^{i+3} − 8.
func LinearDuration(i int) float64 {
	return math.Ldexp(1, i+3) - 8
}

// Planar returns PlanarCowWalk(i) (Algorithm 2): a series of parallel
// linear searches covering the square [−2^i, 2^i]² of the local system
// with line spacing 2^{−i}:
//
//	LinearCowWalk(i)
//	for j = 1 to 2:
//	    repeat 2^{2i} times:
//	        go(N or S, 1/2^i); LinearCowWalk(i)
//	    go(S or N, 2^i)
//
// The walk passes within 2^{−(i+1)} of every point of the square and
// returns to its start.
func Planar(i int) prog.Program {
	return func(yield func(prog.Instr) bool) {
		emit := func(p prog.Program) bool {
			ok := true
			p(func(ins prog.Instr) bool {
				if !yield(ins) {
					ok = false
					return false
				}
				return true
			})
			return ok
		}
		if !emit(Linear(i)) {
			return
		}
		step := math.Ldexp(1, -i)
		span := math.Ldexp(1, i)
		reps := 1 << uint(2*i)
		for j := 1; j <= 2; j++ {
			dir := prog.North
			back := prog.South
			if j == 2 {
				dir, back = prog.South, prog.North
			}
			for k := 0; k < reps; k++ {
				if !yield(prog.Move(dir, step)) {
					return
				}
				if !emit(Linear(i)) {
					return
				}
			}
			if !yield(prog.Move(back, span)) {
				return
			}
		}
	}
}

// PlanarDuration returns the exact local-time duration of Planar(i).
func PlanarDuration(i int) float64 {
	lin := LinearDuration(i)
	reps := math.Ldexp(1, 2*i)
	return lin + 2*(reps*(math.Ldexp(1, -i)+lin)+math.Ldexp(1, i))
}

// PlanarDurationBound returns the paper's 2^{3i+5} upper bound on the
// duration of Planar(i) (used by Claim 3.8).
func PlanarDurationBound(i int) float64 { return math.Ldexp(1, 3*i+5) }

// CoverRadius returns the half-side 2^i of the square Planar(i) covers,
// in local units.
func CoverRadius(i int) float64 { return math.Ldexp(1, i) }

// CoverGap returns the guaranteed passing distance 2^{−(i+1)} of
// Planar(i): the walk passes within this local distance of every point of
// the covered square.
func CoverGap(i int) float64 { return math.Ldexp(1, -(i + 1)) }

// RunWait returns the primitive used by the Latecomers construction:
// go length l in local direction theta, wait w, and walk back:
//
//	go(theta, l); wait(w); go(theta+π, l)
func RunWait(theta, l, w float64) prog.Program {
	return prog.Instrs(
		prog.Move(theta, l),
		prog.Wait(w),
		prog.Move(theta+math.Pi, l),
	)
}

// RunWaitDuration returns the local duration of RunWait(·, l, w).
func RunWaitDuration(l, w float64) float64 { return 2*l + w }
