// Structured logging glue: one process-wide slog level shared by every
// handler the CLIs install, so -log-level gates the whole binary —
// the drain notice in rvworker, the fallback warnings in dist, the
// breaker and redial events in the engine supervisor.

package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogLevel is the process-wide level gate. Handlers built by
// InitLogging (and the per-run handlers internal/dist builds over a
// Config.Stderr) all reference it, so changing the level takes effect
// everywhere at once.
var LogLevel = new(slog.LevelVar)

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// InitLogging parses level, stores it in LogLevel, and installs a
// slog text handler writing to w as the process default logger.
func InitLogging(w io.Writer, level string) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	LogLevel.Set(lv)
	slog.SetDefault(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: LogLevel})))
	return nil
}
