// Exposition: a point-in-time Snapshot of the whole registry, plus
// Prometheus text-format and JSON renderings. Exposition is the cold
// side of the flight recorder — it walks the registry under its mutex
// and may allocate freely; only the record paths in obs.go are
// alloc-pinned.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A Sample is one scalar reading: a counter or gauge, optionally one
// child of a labeled family.
type Sample struct {
	Name       string  `json:"name"`
	Label      string  `json:"label,omitempty"`
	LabelValue string  `json:"label_value,omitempty"`
	Value      float64 `json:"value"`
}

// A HistogramSample is one histogram's full state: per-bucket counts
// (not cumulative; Counts[i] pairs with Bounds[i], the final entry is
// the +Inf overflow bucket), the running sum, and the total count.
type HistogramSample struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// A Snapshot is a consistent-enough point-in-time view of the
// registry: families and children in deterministic (sorted) order.
// Individual readings are taken atomically but not across metrics —
// the recorder keeps flying while the tape is read.
type Snapshot struct {
	Enabled    bool              `json:"enabled"`
	Counters   []Sample          `json:"counters"`
	Gauges     []Sample          `json:"gauges"`
	Histograms []HistogramSample `json:"histograms"`
}

// TakeSnapshot reads every registered metric.
func TakeSnapshot() Snapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()

	s := Snapshot{Enabled: Enabled()}
	for _, c := range registry.counters {
		s.Counters = append(s.Counters, Sample{Name: c.name, Value: float64(c.Value())})
	}
	for _, v := range registry.counterVecs {
		v.mu.RLock()
		for _, val := range sortedKeys(v.children) {
			s.Counters = append(s.Counters, Sample{
				Name: v.name, Label: v.label, LabelValue: val,
				Value: float64(v.children[val].Value()),
			})
		}
		v.mu.RUnlock()
	}
	for _, g := range registry.gauges {
		s.Gauges = append(s.Gauges, Sample{Name: g.name, Value: g.Value()})
	}
	for _, v := range registry.gaugeVecs {
		v.mu.RLock()
		for _, val := range sortedKeys(v.children) {
			s.Gauges = append(s.Gauges, Sample{
				Name: v.name, Label: v.label, LabelValue: val,
				Value: v.children[val].Value(),
			})
		}
		v.mu.RUnlock()
	}
	for _, h := range registry.histograms {
		hs := HistogramSample{
			Name:   h.name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.SliceStable(s.Counters, func(i, j int) bool { return sampleLess(s.Counters[i], s.Counters[j]) })
	sort.SliceStable(s.Gauges, func(i, j int) bool { return sampleLess(s.Gauges[i], s.Gauges[j]) })
	sort.SliceStable(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

func sampleLess(a, b Sample) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.LabelValue < b.LabelValue
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Every registered family gets its # HELP and
// # TYPE lines even when it has no children yet — a scrape against a
// fresh process still proves which series the binary can emit, which
// is what the CI mid-sweep scrape asserts.
func WritePrometheus(w io.Writer) error {
	registry.mu.Lock()
	defer registry.mu.Unlock()

	var b strings.Builder
	for _, c := range registry.counters {
		header(&b, c.name, c.help, "counter")
		fmt.Fprintf(&b, "%s %s\n", c.name, fmtValue(float64(c.Value())))
	}
	for _, v := range registry.counterVecs {
		header(&b, v.name, v.help, "counter")
		v.mu.RLock()
		for _, val := range sortedKeys(v.children) {
			fmt.Fprintf(&b, "%s{%s=\"%s\"} %s\n", v.name, v.label, escapeLabel(val), fmtValue(float64(v.children[val].Value())))
		}
		v.mu.RUnlock()
	}
	for _, g := range registry.gauges {
		header(&b, g.name, g.help, "gauge")
		fmt.Fprintf(&b, "%s %s\n", g.name, fmtValue(g.Value()))
	}
	for _, v := range registry.gaugeVecs {
		header(&b, v.name, v.help, "gauge")
		v.mu.RLock()
		for _, val := range sortedKeys(v.children) {
			fmt.Fprintf(&b, "%s{%s=\"%s\"} %s\n", v.name, v.label, escapeLabel(val), fmtValue(v.children[val].Value()))
		}
		v.mu.RUnlock()
	}
	for _, h := range registry.histograms {
		header(&b, h.name, h.help, "histogram")
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", h.name, fmtValue(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.Count())
		fmt.Fprintf(&b, "%s_sum %s\n", h.name, fmtValue(h.Sum()))
		fmt.Fprintf(&b, "%s_count %d\n", h.name, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func header(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

func fmtValue(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// WriteJSON renders a TakeSnapshot as indented JSON (the /statusz
// payload).
func WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(TakeSnapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
