// Package obs is the reproduction's flight recorder: a
// dependency-free, lock-free metrics core shared by every layer of the
// stack (simulator batches, the batch pool, the distributed dispatch
// engine, the worker runtime, and the CLIs).
//
// Design constraints, in order:
//
//  1. Observation must be provably non-perturbing. Every scheduling
//     feature in this repo carries a byte-identity argument (DESIGN.md
//     §6–§8): the distributed, windowed, memoized run produces the
//     same bytes as the in-process serial run. Metrics ride the same
//     argument — the record path only touches process-wide atomics,
//     never the scheduler's inputs, and the whole subsystem sits
//     behind one atomic gate (SetEnabled) so a differential test can
//     pin metrics-on output byte-identical to metrics-off.
//  2. Zero allocations on the record path. Counters, gauges, and
//     histograms are plain atomics; vector children are resolved (and
//     allocated) once at slot-creation time and cached by the caller,
//     so the hot path is a single atomic RMW. TestObsAllocFree pins
//     this at 0 allocs/op, same discipline as TestCursorOfAllocFree.
//  3. No dependencies. Exposition is Prometheus text format and plain
//     JSON, hand-rolled over the stdlib; the HTTP surface is net/http.
//
// The registry is static: metrics are created in package var blocks at
// init time, registered under globally unique names, and live for the
// process. There is no unregistration — a flight recorder that loses
// tape mid-flight is worse than none.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// enabled gates every record path. Default on: a process that never
// touches the gate gets a working flight recorder. The differential
// purity test (internal/dist) flips it off, replays a run, and asserts
// the output bytes and fold stats are identical either way.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether record paths are live.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns every record path on or off process-wide. Recording
// while disabled is a no-op (one atomic load); readings taken while
// disabled simply stop advancing.
func SetEnabled(on bool) { enabled.Store(on) }

// registry is the static metric catalog. Registration happens in
// package var blocks (cold, rare); exposition walks it under the
// mutex. Record paths never touch it.
var registry struct {
	mu          sync.Mutex
	names       map[string]struct{}
	counters    []*Counter
	counterVecs []*CounterVec
	gauges      []*Gauge
	gaugeVecs   []*GaugeVec
	histograms  []*Histogram
}

func register(name string, add func()) {
	if name == "" {
		panic("obs: empty metric name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.names == nil {
		registry.names = make(map[string]struct{})
	}
	if _, dup := registry.names[name]; dup {
		panic("obs: duplicate metric name " + name)
	}
	registry.names[name] = struct{}{}
	add()
}

// A Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers a counter under a globally unique name.
func NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	register(name, func() { registry.counters = append(registry.counters, c) })
	return c
}

// Add increments the counter by n. Zero-alloc; no-op when disabled.
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is an instantaneous float64 (window size, RTT, pool cap).
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // math.Float64bits encoding
}

// NewGauge registers a gauge under a globally unique name.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	register(name, func() { registry.gauges = append(registry.gauges, g) })
	return g
}

// Set stores x. Zero-alloc; no-op when disabled.
func (g *Gauge) Set(x float64) {
	if enabled.Load() {
		g.bits.Store(math.Float64bits(x))
	}
}

// Add shifts the gauge by delta (CAS loop; use for live up/down
// tallies like in-flight jobs). Zero-alloc; no-op when disabled.
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram counts observations into fixed upper-bound buckets plus
// a +Inf overflow bucket, and tracks the running sum. Bounds are fixed
// at construction — no resizing, no quantile sketches — so Observe is
// a bounded scan over a small array plus two atomic RMWs.
type Histogram struct {
	name, help string
	bounds     []float64       // ascending upper bounds
	counts     []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64
	total      atomic.Uint64
}

// NewHistogram registers a histogram with the given ascending bucket
// upper bounds under a globally unique name.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	register(name, func() { registry.histograms = append(registry.histograms, h) })
	return h
}

// Observe records x. Zero-alloc; no-op when disabled.
func (h *Histogram) Observe(x float64) {
	if !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets is the shared bucket ladder for reply-latency
// histograms: 100µs to 10s on a 1-2.5-5 progression, wide enough for
// both a LAN fleet and a stalled connection one tick short of its
// liveness deadline.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// A CounterVec is a family of counters split by one label (per-slot
// dispatch counts, per-slot deaths). Children are created under a
// mutex on first use and cached by the caller; the record path on a
// cached child is identical to a plain Counter.
type CounterVec struct {
	name, help, label string

	mu       sync.RWMutex
	children map[string]*Counter
}

// NewCounterVec registers a counter family keyed by one label.
func NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	register(name, func() { registry.counterVecs = append(registry.counterVecs, v) })
	return v
}

// With returns the child counter for one label value, creating it on
// first use. Hot paths resolve their child once (slot creation) and
// cache the pointer.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c == nil {
		c = &Counter{name: v.name, help: v.help}
		v.children[value] = c
	}
	return c
}

// Total sums the family across all label values (used by exact-count
// fault assertions in the chaos suite, where the slot name varies).
func (v *CounterVec) Total() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var t uint64
	for _, c := range v.children {
		t += c.Value()
	}
	return t
}

// A GaugeVec is a family of gauges split by one label (per-slot
// window, RTT, breaker state).
type GaugeVec struct {
	name, help, label string

	mu       sync.RWMutex
	children map[string]*Gauge
}

// NewGaugeVec registers a gauge family keyed by one label.
func NewGaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, label: label, children: make(map[string]*Gauge)}
	register(name, func() { registry.gaugeVecs = append(registry.gaugeVecs, v) })
	return v
}

// With returns the child gauge for one label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g := v.children[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[value]; g == nil {
		g = &Gauge{name: v.name, help: v.help}
		v.children[value] = g
	}
	return g
}
