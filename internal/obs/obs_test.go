package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// Package-level metrics, as in real usage: registered once at init,
// recorded from tests. Names are prefixed to stay out of the way of
// the real rv_* families (the registry is process-global).
var (
	tCounter = NewCounter("test_obs_counter_total", "alloc-test counter")
	tGauge   = NewGauge("test_obs_gauge", "alloc-test gauge")
	tHist    = NewHistogram("test_obs_hist_seconds", "alloc-test histogram", LatencyBuckets())
	tCVec    = NewCounterVec("test_obs_cvec_total", "alloc-test counter family", "slot")
	tGVec    = NewGaugeVec("test_obs_gvec", "alloc-test gauge family", "slot")
)

// TestObsAllocFree pins the record paths at zero allocations per
// operation — counters, gauges, histograms, and cached vector
// children. The flight recorder sits on the dispatch hot path; an
// allocating record path would be a perf regression AND a GC-pressure
// perturbation the purity argument can't excuse. Same discipline as
// TestCursorOfAllocFree in internal/prog.
func TestObsAllocFree(t *testing.T) {
	child := tCVec.With("slot-a") // resolved once, cached — the hot-path idiom
	gchild := tGVec.With("slot-a")

	// Warm every path outside the measured window.
	tCounter.Add(1)
	tGauge.Set(1)
	tGauge.Add(0.5)
	tHist.Observe(0.003)
	child.Inc()
	gchild.Set(2)

	allocs := testing.AllocsPerRun(100, func() {
		tCounter.Add(3)
		tGauge.Set(42.5)
		tGauge.Add(-1)
		tHist.Observe(0.0004)
		tHist.Observe(99) // overflow bucket
		child.Add(2)
		gchild.Set(7)
	})
	if allocs > 0 {
		t.Fatalf("record path allocates: %.1f allocs/op (want 0)", allocs)
	}
}

// TestDisabledGate proves SetEnabled(false) freezes every instrument:
// the no-op arm of the purity differential.
func TestDisabledGate(t *testing.T) {
	defer SetEnabled(true)

	c := NewCounter("test_obs_gate_total", "gate test")
	g := NewGauge("test_obs_gate_gauge", "gate test")
	h := NewHistogram("test_obs_gate_hist", "gate test", []float64{1, 2})

	c.Add(5)
	g.Set(3)
	h.Observe(1.5)

	SetEnabled(false)
	c.Add(100)
	g.Set(99)
	g.Add(99)
	h.Observe(1.5)

	if got := c.Value(); got != 5 {
		t.Errorf("counter advanced while disabled: %d (want 5)", got)
	}
	if got := g.Value(); got != 3 {
		t.Errorf("gauge moved while disabled: %g (want 3)", got)
	}
	if got := h.Count(); got != 1 {
		t.Errorf("histogram observed while disabled: %d (want 1)", got)
	}
	if snap := TakeSnapshot(); snap.Enabled {
		t.Error("snapshot reports enabled while gate is off")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	NewGauge("test_obs_counter_total", "collides with tCounter")
}

// TestPrometheusExposition checks the text format: HELP/TYPE headers
// for every family (including a vec with no children yet — the CI
// scrape relies on series being declared before they fire), cumulative
// histogram buckets, and label escaping.
func TestPrometheusExposition(t *testing.T) {
	c := NewCounter("test_expo_counter_total", "expo counter")
	c.Add(7)
	v := NewCounterVec("test_expo_cvec_total", "expo family", "slot")
	v.With(`tcp:a"b\c`).Add(2)
	NewGaugeVec("test_expo_empty_gvec", "family with no children yet", "slot")
	h := NewHistogram("test_expo_hist", "expo histogram", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP test_expo_counter_total expo counter\n# TYPE test_expo_counter_total counter\ntest_expo_counter_total 7\n",
		"# TYPE test_expo_cvec_total counter\n" + `test_expo_cvec_total{slot="tcp:a\"b\\c"} 2` + "\n",
		// A family with no children still declares itself.
		"# HELP test_expo_empty_gvec family with no children yet\n# TYPE test_expo_empty_gvec gauge\n",
		// Buckets are cumulative; +Inf equals the total count.
		`test_expo_hist_bucket{le="1"} 1` + "\n",
		`test_expo_hist_bucket{le="2"} 2` + "\n",
		`test_expo_hist_bucket{le="+Inf"} 3` + "\n",
		"test_expo_hist_sum 11\n",
		"test_expo_hist_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestJSONSnapshot round-trips /statusz output and checks the sorted,
// deterministic ordering the snapshot promises.
func TestJSONSnapshot(t *testing.T) {
	v := NewCounterVec("test_json_cvec_total", "json family", "slot")
	v.With("b").Add(2)
	v.With("a").Add(1)

	var b strings.Builder
	if err := WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("statusz is not valid JSON: %v", err)
	}

	var children []Sample
	for _, s := range snap.Counters {
		if s.Name == "test_json_cvec_total" {
			children = append(children, s)
		}
	}
	if len(children) != 2 || children[0].LabelValue != "a" || children[1].LabelValue != "b" {
		t.Fatalf("vec children not sorted by label value: %+v", children)
	}
	if children[0].Value != 1 || children[1].Value != 2 || children[0].Label != "slot" {
		t.Fatalf("vec children wrong: %+v", children)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v (want %v)", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
