// The HTTP surface of the flight recorder: /metrics (Prometheus text),
// /statusz (JSON snapshot), and — opt-in, because it exposes stacks
// and heap contents — the stdlib net/http/pprof handlers. All CLIs
// mount it through the same two calls (-metrics addr, -pprof).

package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the flight-recorder HTTP mux. With pprofOn the
// net/http/pprof handlers are mounted under /debug/pprof/ on the same
// listener, so one -metrics flag serves scraping and profiling.
func Handler(pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w)
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve binds addr and serves Handler on it for the life of the
// process (there is no shutdown: the recorder should outlive whatever
// it is recording). The bound address is returned so callers using
// ":0" can report the resolved port.
func Serve(addr string, pprofOn bool) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(l, Handler(pprofOn)) }()
	return l.Addr(), nil
}
