// Package measure quantifies Section 4's geometric argument: the
// exception sets S1 and S2, while infinite, are "slim" — S1 satisfies
// four independent equality constraints (codimension 4 inside the
// 7-dimensional instance space) and S2 three (codimension 3) — whereas
// the feasible set is "fat" (it contains a ball of positive radius, and
// has infinite 7-dimensional Lebesgue measure).
//
// Monte-Carlo estimates make both statements measurable:
//
//   - the probability that a uniform random instance lands within ε of an
//     exception set scales like ε^codim: the fitted log-log slope of the
//     hit rate recovers the codimension;
//   - the fraction of uniform random instances that are feasible is
//     bounded away from 0 (the fat set), while the fraction that is
//     exactly exceptional is 0.
package measure

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/pool"
)

// Box is the sampling domain of instance parameters.
type Box struct {
	RMin, RMax     float64
	XYMax          float64 // |x|, |y| ≤ XYMax
	TauMin, TauMax float64
	VMin, VMax     float64
	TMax           float64
}

// DefaultBox returns a moderate sampling box.
func DefaultBox() Box {
	return Box{RMin: 0.2, RMax: 1, XYMax: 3, TauMin: 0.5, TauMax: 2, VMin: 0.5, VMax: 2, TMax: 4}
}

// Sample draws one uniform instance from the box (χ uniform in ±1,
// φ uniform in [0, 2π)).
func (b Box) Sample(rng *rand.Rand) inst.Instance {
	u := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	chi := 1
	if rng.Intn(2) == 0 {
		chi = -1
	}
	return inst.Instance{
		R: u(b.RMin, b.RMax), X: u(-b.XYMax, b.XYMax), Y: u(-b.XYMax, b.XYMax),
		Phi: rng.Float64() * geom.TwoPi, Tau: u(b.TauMin, b.TauMax),
		V: u(b.VMin, b.VMax), T: u(0, b.TMax), Chi: chi,
	}
}

// NearS1 reports whether the instance is within ε of the S1 defining
// equalities: |τ−1|, |v−1|, min(φ, 2π−φ) and |t−(d−r)| all ≤ ε, with
// χ = 1.
func NearS1(in inst.Instance, eps float64) bool {
	if in.Chi != 1 {
		return false
	}
	phiDist := math.Min(in.Phi, geom.TwoPi-in.Phi)
	return math.Abs(in.Tau-1) <= eps && math.Abs(in.V-1) <= eps &&
		phiDist <= eps && math.Abs(in.T-(in.Dist()-in.R)) <= eps
}

// NearS2 reports whether the instance is within ε of the S2 defining
// equalities: |τ−1|, |v−1| and |t−(projGap−r)| all ≤ ε, with χ = −1.
func NearS2(in inst.Instance, eps float64) bool {
	if in.Chi != -1 {
		return false
	}
	return math.Abs(in.Tau-1) <= eps && math.Abs(in.V-1) <= eps &&
		math.Abs(in.T-(in.ProjGap()-in.R)) <= eps
}

// Stats is the outcome of a Monte-Carlo sweep.
type Stats struct {
	Samples       int
	Feasible      int
	ExactS1       int // exact membership (measure zero: expect 0)
	ExactS2       int
	NearS1ByEps   map[float64]int
	NearS2ByEps   map[float64]int
	FeasibleShare float64
}

// Sweep samples n instances and counts feasibility and ε-neighborhood
// hits for each ε.
func Sweep(n int, epsilons []float64, box Box, seed int64) Stats {
	rng := rand.New(rand.NewSource(seed))
	s := Stats{
		Samples:     n,
		NearS1ByEps: map[float64]int{},
		NearS2ByEps: map[float64]int{},
	}
	for i := 0; i < n; i++ {
		in := box.Sample(rng)
		if in.Feasible() {
			s.Feasible++
		}
		if in.InS1() {
			s.ExactS1++
		}
		if in.InS2() {
			s.ExactS2++
		}
		for _, eps := range epsilons {
			if NearS1(in, eps) {
				s.NearS1ByEps[eps]++
			}
			if NearS2(in, eps) {
				s.NearS2ByEps[eps]++
			}
		}
	}
	s.FeasibleShare = float64(s.Feasible) / float64(n)
	return s
}

// SweepChunk is the number of samples per parallel chunk. The chunking
// is a function of n alone — never of the worker count — so
// SweepParallel is deterministic for any parallelism degree.
const SweepChunk = 1 << 16

// NumChunks is the number of fixed-size chunks an n-sample sweep splits
// into — the unit of scheduling for both the in-process pool and the
// distributed coordinator (internal/dist ships chunk descriptors over
// the wire).
func NumChunks(n int) int { return (n + SweepChunk - 1) / SweepChunk }

// ChunkSamples is the sample count of chunk i of an n-sample sweep.
func ChunkSamples(n, i int) int {
	lo := i * SweepChunk
	return min(lo+SweepChunk, n) - lo
}

// SweepParallel is Sweep fanned over a pool of `workers` goroutines
// (≤ 0 selects GOMAXPROCS): the n samples are split into fixed-size
// chunks, each drawing from its own splitmix-derived RNG stream, and
// the per-chunk counts are merged serially in chunk order. The sample
// set differs from Sweep's single serial stream, but is itself fixed
// given (n, seed) — the result is byte-identical for every worker
// count. The distributed sweep (internal/dist) executes exactly the
// same chunks on worker processes and merges through the same
// MergeChunks, which is what makes it byte-identical to this function
// for every fleet shape.
func SweepParallel(n int, epsilons []float64, box Box, seed int64, workers int) Stats {
	nChunks := NumChunks(n)
	chunks := make([]Stats, nChunks)
	pool.Do(nChunks, pool.Workers(workers, nChunks), func(i int) {
		chunks[i] = Sweep(ChunkSamples(n, i), epsilons, box, ChunkSeed(seed, i))
	})
	return MergeChunks(chunks, n)
}

// MergeChunks folds per-chunk sweep counts into the totals, serially in
// chunk order — the one aggregation shared by every engine that splits
// a sweep (the in-process pool above and the distributed coordinator),
// so a chunk set always merges to the same Stats no matter where the
// chunks were computed.
func MergeChunks(chunks []Stats, n int) Stats {
	total := Stats{NearS1ByEps: map[float64]int{}, NearS2ByEps: map[float64]int{}}
	for _, c := range chunks {
		total.Samples += c.Samples
		total.Feasible += c.Feasible
		total.ExactS1 += c.ExactS1
		total.ExactS2 += c.ExactS2
		for eps, v := range c.NearS1ByEps {
			total.NearS1ByEps[eps] += v
		}
		for eps, v := range c.NearS2ByEps {
			total.NearS2ByEps[eps] += v
		}
	}
	total.FeasibleShare = float64(total.Feasible) / float64(n)
	return total
}

// ChunkSeed derives a well-mixed per-chunk seed (splitmix64), so
// neighboring chunks draw uncorrelated streams. Exported because the
// distributed coordinator pre-computes each shipped chunk's seed — the
// worker then runs a plain Sweep, ignorant of the chunk structure.
func ChunkSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// FitExponent fits the slope of log(count) against log(ε) — the observed
// scaling exponent of the neighborhood volume, which estimates the
// codimension. Epsilons with zero hits are skipped; the fit needs at
// least two usable points (ok reports that).
func FitExponent(byEps map[float64]int) (slope float64, ok bool) {
	var xs, ys []float64
	for eps, c := range byEps {
		if c > 0 {
			xs = append(xs, math.Log(eps))
			ys = append(ys, math.Log(float64(c)))
		}
	}
	if len(xs) < 2 {
		return 0, false
	}
	// Least squares.
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

// CodimS1 and CodimS2 are the theoretical codimensions from Section 4.
const (
	CodimS1 = 4
	CodimS2 = 3
)
