package measure

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/inst"
)

func TestSampleInBox(t *testing.T) {
	box := DefaultBox()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		in := box.Sample(rng)
		if err := in.Validate(); err != nil {
			t.Fatalf("sample invalid: %v", err)
		}
		if in.R < box.RMin || in.R > box.RMax || math.Abs(in.X) > box.XYMax ||
			in.Tau < box.TauMin || in.Tau > box.TauMax || in.T > box.TMax {
			t.Fatalf("sample out of box: %v", in)
		}
	}
}

func TestNearPredicates(t *testing.T) {
	// An exact S1 instance is near-S1 for every ε.
	s1 := inst.Instance{R: 0.5, X: 2, Y: 1, Phi: 0, Tau: 1, V: 1, Chi: 1}
	s1.T = s1.Dist() - s1.R
	if !NearS1(s1, 1e-12) {
		t.Error("exact S1 not near-S1")
	}
	if NearS2(s1, 0.1) {
		t.Error("χ=1 instance near-S2")
	}
	// Perturb τ beyond ε.
	s1.Tau = 1.2
	if NearS1(s1, 0.1) {
		t.Error("perturbed τ still near-S1")
	}
	if !NearS1(s1, 0.3) {
		t.Error("perturbed τ not near-S1 with larger ε")
	}
	// φ near 2π counts as near 0.
	s1.Tau = 1
	s1.Phi = 2*math.Pi - 0.05
	if !NearS1(s1, 0.1) {
		t.Error("φ near 2π not recognized")
	}

	// S2 side.
	s2 := inst.Instance{R: 0.5, X: 2, Y: 1, Phi: 0.8, Tau: 1, V: 1, Chi: -1}
	s2.T = s2.ProjGap() - s2.R
	if s2.T < 0 {
		t.Fatal("setup: negative boundary delay")
	}
	if !NearS2(s2, 1e-12) {
		t.Error("exact S2 not near-S2")
	}
	if NearS1(s2, 0.1) {
		t.Error("χ=-1 instance near-S1")
	}
}

func TestSweepBasics(t *testing.T) {
	s := Sweep(20000, []float64{0.2, 0.4}, DefaultBox(), 42)
	if s.Samples != 20000 {
		t.Fatalf("samples = %d", s.Samples)
	}
	// The feasible set is fat: a solid share of random instances is
	// feasible (every non-synchronous instance is, and those dominate a
	// continuous box).
	if s.FeasibleShare < 0.5 {
		t.Errorf("feasible share %v unexpectedly small", s.FeasibleShare)
	}
	// Exact exceptional membership has measure zero.
	if s.ExactS1 != 0 || s.ExactS2 != 0 {
		t.Errorf("exact boundary hits: S1=%d S2=%d", s.ExactS1, s.ExactS2)
	}
	// Larger ε ⇒ at least as many near hits.
	if s.NearS2ByEps[0.4] < s.NearS2ByEps[0.2] {
		t.Error("near-S2 counts not monotone in ε")
	}
}

// The observed scaling exponents recover the codimensions (S2: 3, S1: 4)
// within Monte-Carlo slack. S1's codim-4 neighborhoods are rare, so use
// generous epsilons and many samples.
func TestCodimensionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eps := []float64{0.25, 0.35, 0.5}
	s := Sweep(2_000_000, eps, DefaultBox(), 7)

	slope2, ok := FitExponent(s.NearS2ByEps)
	if !ok {
		t.Fatal("S2 exponent fit failed (no hits)")
	}
	if math.Abs(slope2-CodimS2) > 1.0 {
		t.Errorf("S2 slope %v, want ≈ %d", slope2, CodimS2)
	}

	slope1, ok := FitExponent(s.NearS1ByEps)
	if !ok {
		t.Skip("S1 neighborhoods too thin for this sample size")
	}
	if math.Abs(slope1-CodimS1) > 1.6 {
		t.Errorf("S1 slope %v, want ≈ %d", slope1, CodimS1)
	}
	// The ordering must hold regardless of noise: S1 is slimmer than S2.
	if slope1 <= slope2 {
		t.Errorf("S1 slope %v not steeper than S2 slope %v", slope1, slope2)
	}
}

func TestFitExponentDegenerate(t *testing.T) {
	if _, ok := FitExponent(map[float64]int{0.1: 0, 0.2: 0}); ok {
		t.Error("fit succeeded with no hits")
	}
	if _, ok := FitExponent(map[float64]int{0.1: 5}); ok {
		t.Error("fit succeeded with one point")
	}
	slope, ok := FitExponent(map[float64]int{0.1: 10, 0.2: 80, 0.4: 640})
	if !ok || math.Abs(slope-3) > 1e-9 {
		t.Errorf("exact cubic fit: %v, %v", slope, ok)
	}
}
