// Clock-drift sensors: two battery-powered field sensors wake up after a
// storm and must physically dock to exchange data. Their quartz crystals
// aged differently, so their clocks tick at different rates — the only
// asymmetry they have. The paper's surprising insight (type 3): a clock
// mismatch is not an obstacle but the very resource that breaks symmetry.
//
// The faster sensor eventually performs a complete planar search while
// the slower one provably sits inside a scheduled wait — and the phase at
// which this happens is computable in advance (Lemma 3.4 instantiated by
// PredictPhase).
package main

import (
	"fmt"

	"repro/rendezvous"
)

func main() {
	drifts := []float64{2.0, 1.4, 0.5} // B's clock period relative to A's
	for _, tau := range drifts {
		in := rendezvous.Instance{
			R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8,
			Tau: tau, V: 1 / tau, // same physical speed budget per tick
			T: 0.5, Chi: 1,
		}
		fmt.Printf("— τ = %.2f: %v\n", tau, in)

		pred, ok := rendezvous.PredictPhase(in, rendezvous.CompactSchedule())
		if ok {
			fmt.Printf("  guaranteed by phase %d (time bound %.4g)\n", pred.Phase, pred.TimeBound)
		}

		res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(),
			rendezvous.DefaultSettings())
		if !res.Met {
			fmt.Printf("  NO rendezvous: %v\n", res)
			continue
		}
		fmt.Printf("  docked at t = %.3f (absolute), min gap %.4f\n",
			res.MeetTime.Float64(), res.MinGap)
		if ok && res.MeetTime.Float64() <= pred.TimeBound {
			fmt.Println("  ✓ within the predicted bound")
		}
	}

	// The contrast: identical clocks, identical everything, same wake-up —
	// symmetric and provably impossible (the paper's opening observation).
	hopeless := rendezvous.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0, Tau: 1, V: 1, T: 0, Chi: 1}
	fmt.Printf("— perfect symmetry: %v\n  feasible: %v (no asymmetry, no algorithm can help)\n",
		hopeless, hopeless.Feasible())
}
