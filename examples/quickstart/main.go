// Quickstart: classify an instance, predict the rendezvous phase, run
// the universal algorithm, and inspect the outcome.
package main

import (
	"fmt"

	"repro/rendezvous"
)

func main() {
	// Agent B starts at (1.2, 0.5) in A's frame, with its compass rotated
	// by 1 radian, the same clock and speed, and wakes 0.5 time units
	// after A. Both see at radius 0.8.
	in := rendezvous.Instance{
		R: 0.8, X: 1.2, Y: 0.5,
		Phi: 1.0, Tau: 1, V: 1, T: 0.5, Chi: 1,
	}
	if err := in.Validate(); err != nil {
		panic(err)
	}

	fmt.Println("instance: ", in)
	fmt.Println("feasible: ", in.Feasible())
	fmt.Println("type:     ", in.TypeOf())

	if p, ok := rendezvous.PredictPhase(in, rendezvous.CompactSchedule()); ok {
		fmt.Printf("guaranteed by phase %d (time ≤ %.3g)\n", p.Phase, p.TimeBound)
	}

	res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(),
		rendezvous.DefaultSettings())
	fmt.Println("result:   ", res)
	if res.Met {
		fmt.Printf("agents met at t = %.4f, positions A=%v B=%v\n",
			res.MeetTime.Float64(), res.EndA, res.EndB)
	}
}
