// Adversary: a constructive tour of Theorem 4.1. Any deterministic
// algorithm's solo trajectory realizes only countably many segment
// inclinations — but meeting an S2 boundary instance requires traversing
// a segment parallel to its canonical line (Claim 4.1), whose inclination
// φ/2 ranges over a continuum. So for every algorithm there is a boundary
// instance it can never solve.
//
// This example inspects AlmostUniversalRV's own first 50 000 instructions,
// finds the widest arc of directions the algorithm never walks, builds
// the S2 instance aimed down the middle of that arc, and watches the
// algorithm fail on it — then solves the very same instance with the
// dedicated Lemma 3.9 algorithm.
package main

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/rendezvous"
)

func main() {
	const horizon = 50_000
	algProg := func() prog.Program { return core.Program(core.Compact(), nil) }

	incs := adversary.Inclinations(algProg(), horizon)
	fmt.Printf("AlmostUniversalRV's first %d instructions use %d distinct segment inclinations\n",
		horizon, len(incs))

	d := adversary.DefeatingInstance(algProg(), horizon, 0.5, 2.0)
	fmt.Printf("widest uncovered arc midpoint: %.4f rad (margin %.3f rad)\n",
		d.Inclination, d.Margin)
	fmt.Printf("defeating S2 instance: %v\n\n", d.Instance)

	in := d.Instance
	set := sim.DefaultSettings()
	set.MaxSegments = horizon // within the guaranteed horizon
	a := sim.AgentSpec{Attrs: in.AgentA(), Prog: algProg(), Radius: in.R}
	b := sim.AgentSpec{Attrs: in.AgentB(), Prog: algProg(), Radius: in.R}
	res := sim.Run(a, b, set)
	fmt.Printf("universal algorithm: %v\n", res)

	if ded, ok := rendezvous.Dedicated(in); ok {
		dres := rendezvous.Simulate(in, ded, rendezvous.DefaultSettings())
		fmt.Printf("dedicated algorithm: %v\n", dres)
		if dres.Met {
			fmt.Printf("  (the instance is feasible — only universality is impossible)\n")
		}
	}
}
