// Search-and-rescue drones: the motivating scenario of the paper's
// introduction. Two autonomous drones are air-dropped over a disaster
// area to jointly plan a search. Their inertial compasses disagree (each
// calibrated on release), one flies slightly faster, and the second
// drone powers up late. They carry no radios with range beyond r and no
// identifiers — yet running the same deterministic program, they must
// find each other.
//
// This is a type-4 instance (τ = 1, speed and orientation asymmetry,
// arbitrary delay): block 4 of AlmostUniversalRV — the interleaved-sliced
// CGKK run — is the mechanism that meets it.
package main

import (
	"fmt"

	"repro/rendezvous"
)

func main() {
	scenarios := []struct {
		name string
		in   rendezvous.Instance
	}{
		{"compass skew 1.1 rad, 50% faster, 2u late",
			rendezvous.Instance{R: 0.8, X: 0.9, Y: 0.1, Phi: 1.1, Tau: 1, V: 1.5, T: 2, Chi: 1}},
		{"near-opposite compasses, 40% faster, mirrored airframe",
			rendezvous.Instance{R: 0.9, X: 1.0, Y: -0.2, Phi: 2.5, Tau: 1, V: 1.4, T: 3, Chi: -1}},
		{"same speed, quarter-turn compass skew, simultaneous drop",
			rendezvous.Instance{R: 0.6, X: 1.0, Y: 0.2, Phi: 1.57, Tau: 1, V: 1, T: 0, Chi: 1}},
	}

	alg := rendezvous.AlmostUniversalRV()
	set := rendezvous.DefaultSettings()
	set.MaxSegments = 400_000_000

	for _, sc := range scenarios {
		fmt.Printf("— %s\n", sc.name)
		fmt.Printf("  %v (type %v)\n", sc.in, sc.in.TypeOf())
		res := rendezvous.Simulate(sc.in, alg, set)
		if res.Met {
			fmt.Printf("  rendezvous at t = %.3f (final gap %.3f ≤ r = %.2f)\n",
				res.MeetTime.Float64(), res.EndA.Dist(res.EndB), sc.in.R)
		} else {
			fmt.Printf("  NO rendezvous within budget: %v\n", res)
		}
	}

	// Drones with different camera ranges (Section 5 extension): the
	// far-sighted one spots its partner first, stops, and waits to be
	// found.
	in := scenarios[0].in
	fmt.Println("— asymmetric sensors (Section 5): r₁ = 2.0, r₂ = 0.5")
	res := rendezvous.SimulateRadii(in, alg, 2.0, 0.5, set)
	if res.Met {
		fmt.Printf("  rendezvous at t = %.3f, gap %.3f (= smaller radius)\n",
			res.MeetTime.Float64(), res.EndA.Dist(res.EndB))
	}
}
