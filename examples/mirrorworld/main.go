// Mirror world: two agents whose coordinate systems disagree on
// handedness (χ = −1). Every trajectory one traces, the other traces
// mirrored across the canonical line — the glide-reflection symmetry of
// Lemma 2.1. Rendezvous feasibility then depends on the wake-up delay t
// against the projection gap (Theorem 3.1 2(c)):
//
//	t > gap − r   interior: the universal algorithm meets (type 1);
//	t = gap − r   boundary (S2): feasible, but only a dedicated
//	              algorithm meets — and no single algorithm covers all
//	              of S2 (Theorem 4.1);
//	t < gap − r   infeasible for every algorithm.
package main

import (
	"fmt"

	"repro/rendezvous"
)

func main() {
	base := rendezvous.Instance{R: 0.5, X: 2, Y: 1, Phi: 0.8, Tau: 1, V: 1, Chi: -1}
	gap := base.ProjGap()
	fmt.Printf("mirrored pair, projection gap %.4f, r = %.2f\n\n", gap, base.R)

	set := rendezvous.DefaultSettings()
	set.MaxSegments = 100_000_000

	// Interior: t above the threshold.
	in := base
	in.T = gap - in.R + 0.4
	fmt.Printf("t = gap - r + 0.4 = %.4f (type %v)\n", in.T, in.TypeOf())
	res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(), set)
	fmt.Printf("  universal algorithm: %v\n\n", res)

	// Boundary: exactly t = gap − r — the exception set S2.
	in = base
	in.T = gap - in.R
	fmt.Printf("t = gap - r = %.4f exactly (S2: %v, covered by AURV: %v)\n",
		in.T, in.InS2(), in.CoveredByAURV())
	miss := set
	miss.MaxSegments = 2_000_000
	res = rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(), miss)
	fmt.Printf("  universal algorithm: %v\n", res)
	if ded, ok := rendezvous.Dedicated(in); ok {
		res = rendezvous.Simulate(in, ded, set)
		fmt.Printf("  dedicated (Lemma 3.9): %v\n", res)
		if res.Met {
			fmt.Printf("    final gap %.6f = r exactly\n\n", res.EndA.Dist(res.EndB))
		}
	}

	// Below the threshold: provably infeasible.
	in = base
	in.T = (gap - in.R) / 2
	fmt.Printf("t = (gap - r)/2 = %.4f (feasible: %v)\n", in.T, in.Feasible())
	res = rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(), miss)
	fmt.Printf("  universal algorithm: %v\n", res)
	fmt.Println("  (no algorithm exists: Lemma 3.9's projection argument)")
}
