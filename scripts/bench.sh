#!/usr/bin/env bash
# Regenerate BENCH_PR2.json: the kernel benchmarks that track the
# instruction-stream engine (cursor vs iter.Pull) and the batch pool.
#
# Usage:  scripts/bench.sh [benchtime]
# e.g.    scripts/bench.sh 2s      # default
#         scripts/bench.sh 1x     # smoke run (CI uses this)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
PATTERN='BenchmarkInstrStream|BenchmarkEngineThroughput|BenchmarkT2Type|BenchmarkBatchT2Workers|BenchmarkPlanarWalkGen'

# Write to a temp file and move into place only on success, so a
# failed bench run never clobbers the committed perf record.
TMP="$(mktemp BENCH_PR2.json.XXXXXX)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . |
  go run ./cmd/benchjson -note \
    "PR2 cursor engine: *Pull benchmarks force the iter.Pull coroutine path via prog.Opaque; the unsuffixed twins take the cursor fast path. benchtime=$BENCHTIME" \
    > "$TMP"

mv "$TMP" BENCH_PR2.json
trap - EXIT
echo "wrote BENCH_PR2.json"
