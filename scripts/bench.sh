#!/usr/bin/env bash
# Regenerate a kernel-benchmark JSON record: the instruction-stream
# engine (cursor vs iter.Pull), the batch pool, the memoization
# pre-pass, the distributed coordinator (local worker subprocesses;
# synchronous vs windowed dispatch; per-call fleets vs a reused
# session; concurrent tenants vs serialized dispatches; distributed
# Monte-Carlo chunks), and the WAN wire path
# (emulated delay/bandwidth link with compression on vs off; pooled
# frame write/read micro-benchmarks).
#
# Usage:  scripts/bench.sh [benchtime] [out.json] [note]
# e.g.    scripts/bench.sh                               # 2s -> BENCH_local.json
#         scripts/bench.sh 100x BENCH_CI.json "CI run"   # CI passes name + note
#         scripts/bench.sh 2s BENCH_PR7.json "PR7: ..."  # next PR's committed record
#
# The output name and note always come from the arguments (with
# throwaway defaults), never from a hardcoded PR label: a stale default
# silently mislabels every future run, which is how a perf record lies.
# Committed BENCH_PR*.json records pass both explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="${2:-BENCH_local.json}"
NOTE="${3:-Local benchmark run (benchtime=$BENCHTIME). Not a committed PR record: pass an output name and note to label one, see DESIGN.md §9.}"
PATTERN='BenchmarkInstrStream|BenchmarkEngineThroughput|BenchmarkT2Type|BenchmarkBatchT2Workers|BenchmarkDedup|BenchmarkDistT2Procs|BenchmarkDistT2Window|BenchmarkDistT2Session|BenchmarkDistT5Chunks|BenchmarkDistT2WAN|BenchmarkDistT5WAN|BenchmarkDistMultiTenant|BenchmarkFrameWrite|BenchmarkFrameRoundTrip|BenchmarkPlanarWalkGen'

# Write to a temp file and move into place only on success, so a
# failed bench run never clobbers the committed perf record.
TMP="$(mktemp "$OUT.XXXXXX")"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" ./... |
  go run ./cmd/benchjson -note "$NOTE" > "$TMP"

mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $OUT"
