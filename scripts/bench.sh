#!/usr/bin/env bash
# Regenerate the kernel-benchmark JSON record: the instruction-stream
# engine (cursor vs iter.Pull), the batch pool, and the distributed
# coordinator (local worker subprocesses; synchronous vs windowed
# dispatch; distributed Monte-Carlo chunks).
#
# Usage:  scripts/bench.sh [benchtime] [out.json]
# e.g.    scripts/bench.sh                      # 2s -> BENCH_PR4.json
#         scripts/bench.sh 1x                   # smoke run (CI uses this)
#         scripts/bench.sh 2s BENCH_PR5.json    # next PR's record
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="${2:-BENCH_PR4.json}"
PATTERN='BenchmarkInstrStream|BenchmarkEngineThroughput|BenchmarkT2Type|BenchmarkBatchT2Workers|BenchmarkDistT2Procs|BenchmarkDistT2Window|BenchmarkDistT5Chunks|BenchmarkPlanarWalkGen'

# Write to a temp file and move into place only on success, so a
# failed bench run never clobbers the committed perf record.
TMP="$(mktemp "$OUT.XXXXXX")"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . |
  go run ./cmd/benchjson -note \
    "PR4 pipelined dispatch: DistT2Window* run 2 worker subprocesses with a 2-wide in-worker pool at window=1 vs 4 (spawn cost included; on a 1-CPU container the pool and window cannot add cores, so loopback wins are bounded — the >=2x latency-hiding claim is asserted by TestWindowHidesLatency against a 25ms delay-line transport). DistT5Chunks ships Monte-Carlo chunks to 2 workers, byte-identity asserted in-loop. *Pull benchmarks force the iter.Pull coroutine path via prog.Opaque. benchtime=$BENCHTIME" \
    > "$TMP"

mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $OUT"
