#!/usr/bin/env bash
# Regenerate the kernel-benchmark JSON record: the instruction-stream
# engine (cursor vs iter.Pull), the batch pool, and the distributed
# coordinator (local worker subprocesses).
#
# Usage:  scripts/bench.sh [benchtime] [out.json]
# e.g.    scripts/bench.sh                      # 2s -> BENCH_PR3.json
#         scripts/bench.sh 1x                   # smoke run (CI uses this)
#         scripts/bench.sh 2s BENCH_PR4.json    # next PR's record
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="${2:-BENCH_PR3.json}"
PATTERN='BenchmarkInstrStream|BenchmarkEngineThroughput|BenchmarkT2Type|BenchmarkBatchT2Workers|BenchmarkDistT2Procs|BenchmarkPlanarWalkGen'

# Write to a temp file and move into place only on success, so a
# failed bench run never clobbers the committed perf record.
TMP="$(mktemp "$OUT.XXXXXX")"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . |
  go run ./cmd/benchjson -note \
    "PR3 distribution + builder alloc trim: DistT2Procs* spawn local worker subprocesses per iteration (byte-identical output; spawn cost included, so procs>1 only wins on multi-core hosts). *Pull benchmarks force the iter.Pull coroutine path via prog.Opaque. benchtime=$BENCHTIME" \
    > "$TMP"

mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $OUT"
