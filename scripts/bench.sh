#!/usr/bin/env bash
# Regenerate the kernel-benchmark JSON record: the instruction-stream
# engine (cursor vs iter.Pull), the batch pool, and the distributed
# coordinator (local worker subprocesses; synchronous vs windowed
# dispatch; per-call fleets vs a reused session; distributed
# Monte-Carlo chunks).
#
# Usage:  scripts/bench.sh [benchtime] [out.json]
# e.g.    scripts/bench.sh                      # 2s -> BENCH_PR5.json
#         scripts/bench.sh 1x BENCH_PR5.json    # smoke run (CI passes the name)
#         scripts/bench.sh 2s BENCH_PR6.json    # next PR's record
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="${2:-BENCH_PR5.json}"
PATTERN='BenchmarkInstrStream|BenchmarkEngineThroughput|BenchmarkT2Type|BenchmarkBatchT2Workers|BenchmarkDistT2Procs|BenchmarkDistT2Window|BenchmarkDistT2Session|BenchmarkDistT5Chunks|BenchmarkPlanarWalkGen'

# Write to a temp file and move into place only on success, so a
# failed bench run never clobbers the committed perf record.
TMP="$(mktemp "$OUT.XXXXXX")"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . |
  go run ./cmd/benchjson -note \
    "PR5 fleet sessions: DistT2Session runs the T2 batch over a 2-subprocess fleet dialed ONCE outside the loop — the per-iteration delta against DistT2Procs2 (fresh spawn+handshake per iteration) is the session's amortization; adaptive windows and coalesced reply frames are on by default in both. DistT2Window* pin explicit window=1 vs 4 (on a 1-CPU container the pool and window cannot add cores, so loopback wins are bounded — the >=2x latency-hiding claim is asserted by TestWindowHidesLatency against a 25ms delay-line transport, fixed and adaptive). DistT5Chunks ships Monte-Carlo chunks to 2 workers, byte-identity asserted in-loop. *Pull benchmarks force the iter.Pull coroutine path via prog.Opaque. benchtime=$BENCHTIME" \
    > "$TMP"

mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $OUT"
