#!/usr/bin/env bash
# CI network helpers. Every readiness poll and scrape in the workflows
# goes through here so the bounds live in one place:
#
#   ci_net.sh wait-port HOST PORT [TIMEOUT_S]
#       Poll until HOST:PORT accepts a TCP connection (via /dev/tcp),
#       failing after TIMEOUT_S seconds (default 15). A bounded poll,
#       not a trusted sleep: the workflows must not be timing-sensitive,
#       but a worker that never comes up must fail the job in seconds,
#       not hang it until the job-level timeout.
#
#   ci_net.sh curl-retry URL [OUT]
#       GET URL (10s per-attempt cap) writing to OUT (default stdout,
#       pass - explicitly for a status-only probe). Retries ONCE after
#       a 1s pause: a shared-runner scrape can lose a race with the
#       server's accept loop, and one retry distinguishes that blip
#       from an endpoint that is actually broken — more retries would
#       only mask real failures.
set -euo pipefail

cmd="${1:?usage: ci_net.sh wait-port|curl-retry ...}"
shift

case "$cmd" in
  wait-port)
    host="${1:?wait-port needs HOST PORT}"
    port="${2:?wait-port needs HOST PORT}"
    timeout_s="${3:-15}"
    deadline=$((SECONDS + timeout_s))
    while ! (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null; do
      if [ "$SECONDS" -ge "$deadline" ]; then
        echo "ci_net: $host:$port not accepting after ${timeout_s}s" >&2
        exit 1
      fi
      sleep 0.1
    done
    exec 3>&- 3<&- || true
    ;;
  curl-retry)
    url="${1:?curl-retry needs URL}"
    out="${2:--}"
    if curl -sf --max-time 10 "$url" --output "$out"; then exit 0; fi
    echo "ci_net: retrying $url once" >&2
    sleep 1
    curl -sf --max-time 10 "$url" --output "$out"
    ;;
  *)
    echo "ci_net: unknown command $cmd (want wait-port or curl-retry)" >&2
    exit 2
    ;;
esac
