// Command rvsweep emits CSV series of rendezvous time versus one swept
// instance parameter — the data behind the scaling benchmarks (meeting
// time vs delay, clock ratio, or visibility radius). The points run in
// parallel on a worker pool — or across worker processes/hosts with
// -worker/-hosts — and rows stream out as the ordered result prefix
// completes. The emitted CSV is byte-identical for every -workers,
// -worker, and -hosts value.
//
// Usage:
//
//	rvsweep -sweep delay -from 0.5 -to 32 -steps 8
//	rvsweep -sweep ratio -from 1.1 -to 4 -steps 8
//	rvsweep -sweep radius -from 0.4 -to 1.2 -steps 8 -workers 4
//	rvsweep -sweep delay -steps 8 -worker 2            # 2 local worker processes
//	rvsweep -sweep delay -hosts host1:9101,host2:9101  # remote rvworker fleet
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/rendezvous"
)

func main() {
	dist.MaybeServeStdio() // single-binary deploys: -worker re-executes rvsweep itself

	var (
		sweep     = flag.String("sweep", "delay", "parameter: delay | ratio | radius")
		from      = flag.Float64("from", 0.5, "sweep start")
		to        = flag.Float64("to", 32, "sweep end")
		steps     = flag.Int("steps", 8, "number of points (geometric spacing)")
		seg       = flag.Int("max-seg", 400_000_000, "segment budget per run")
		workers   = flag.Int("workers", 0, "batch-pool size, in-process and per worker process (0 = GOMAXPROCS)")
		procs     = flag.Int("worker", 0, "local worker subprocesses to spawn (distributed execution)")
		hosts     = flag.String("hosts", "", "comma-separated rvworker -listen endpoints, each addr or addr*pool (distributed execution)")
		hostsFile = flag.String("hosts-file", "", "file of rvworker endpoints (-hosts syntax, newline- or comma-separated, '#' comments), watched for edits while the sweep is live; mutually exclusive with -hosts")
		window    = flag.Int("window", 0, "jobs in flight per worker connection (0 = adaptive; 1 = synchronous)")
		maxWindow = flag.Int("max-window", 0, "adaptive window growth cap per connection (0 = default; <0 = fixed default window)")
		stall     = flag.Duration("stall", 0, "liveness deadline for a silent worker connection with jobs in flight (0 = 30s default; <0 = disabled)")
		requeues  = flag.Int("max-requeues", 0, "distinct workers a job may kill or stall before it is quarantined as a poison job (0 = 2 default; <0 = disabled)")
		compress  = flag.Bool("compress", false, "negotiate flate compression with TCP workers (WAN links; output is identical either way)")
		metrics   = flag.String("metrics", "", "HTTP address to expose the flight recorder on (/metrics, /statusz; empty: off)")
		pprofOn   = flag.Bool("pprof", false, "also expose /debug/pprof/ on the -metrics address")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	if err := obs.InitLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *metrics != "" {
		addr, merr := obs.Serve(*metrics, *pprofOn)
		if merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		slog.Info("rvsweep: metrics listening", "addr", addr.String(), "pprof", *pprofOn)
	}

	// Validate -hosts upfront (the parse happens again inside the batch
	// path): a malformed host:port*pool hint must exit 2 like rvtable
	// and rvfigures, not silently run the whole sweep in-process.
	if _, err := dist.ParseHosts(*hosts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *hosts != "" && *hostsFile != "" {
		fmt.Fprintln(os.Stderr, "rvsweep: -hosts and -hosts-file are mutually exclusive")
		os.Exit(2)
	}
	hostStr := *hosts
	if *hostsFile != "" {
		fileHosts, ferr := dist.LoadHostsFile(*hostsFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(2)
		}
		hostStr = dist.FormatHosts(fileHosts)
	}

	pts, skipped, err := Points(*sweep, *from, *to, *steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, s := range skipped {
		fmt.Fprintln(os.Stderr, s)
	}
	// Unbuffered stdout: Fprintf issues one Write per row, so each row
	// is visible (even through a pipe) the moment its result prefix
	// completes.
	set := SweepSettings(*seg, *workers, hostStr, *procs, *window, *maxWindow, *stall, *requeues, *compress)
	if *hostsFile == "" {
		StreamCSV(os.Stdout, *sweep, pts, set)
		return
	}
	// A watched hosts file needs a fleet session the watcher can reshape
	// while the sweep streams; an unreachable initial fleet degrades to
	// in-process execution, which determinism makes invisible in the CSV.
	f, derr := rendezvous.DialFleet(set)
	if derr != nil {
		slog.Warn("rvsweep: fleet unavailable (running in-process)", "err", derr)
		StreamCSV(os.Stdout, *sweep, pts, set)
		return
	}
	defer f.Close()
	stop, werr := f.WatchHosts(*hostsFile, 0)
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		os.Exit(1)
	}
	defer stop()
	StreamCSVOn(os.Stdout, *sweep, pts, set, f)
}
