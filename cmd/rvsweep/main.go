// Command rvsweep emits CSV series of rendezvous time versus one swept
// instance parameter — the data behind the scaling benchmarks (meeting
// time vs delay, clock ratio, or visibility radius). The points run in
// parallel on a worker pool; the emitted CSV is byte-identical for
// every -workers value.
//
// Usage:
//
//	rvsweep -sweep delay -from 0.5 -to 32 -steps 8
//	rvsweep -sweep ratio -from 1.1 -to 4 -steps 8
//	rvsweep -sweep radius -from 0.4 -to 1.2 -steps 8 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		sweep   = flag.String("sweep", "delay", "parameter: delay | ratio | radius")
		from    = flag.Float64("from", 0.5, "sweep start")
		to      = flag.Float64("to", 32, "sweep end")
		steps   = flag.Int("steps", 8, "number of points (geometric spacing)")
		seg     = flag.Int("max-seg", 400_000_000, "segment budget per run")
		workers = flag.Int("workers", 0, "batch-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	pts, skipped, err := Points(*sweep, *from, *to, *steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, s := range skipped {
		fmt.Fprintln(os.Stderr, s)
	}
	fmt.Print(SweepCSV(*sweep, pts, *seg, *workers))
}
