// Command rvsweep emits CSV series of rendezvous time versus one swept
// instance parameter — the data behind the scaling benchmarks (meeting
// time vs delay, clock ratio, or visibility radius).
//
// Usage:
//
//	rvsweep -sweep delay -from 0.5 -to 32 -steps 8
//	rvsweep -sweep ratio -from 1.1 -to 4 -steps 8
//	rvsweep -sweep radius -from 0.4 -to 1.2 -steps 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/rendezvous"
)

func main() {
	var (
		sweep = flag.String("sweep", "delay", "parameter: delay | ratio | radius")
		from  = flag.Float64("from", 0.5, "sweep start")
		to    = flag.Float64("to", 32, "sweep end")
		steps = flag.Int("steps", 8, "number of points (geometric spacing)")
		seg   = flag.Int("max-seg", 400_000_000, "segment budget per run")
	)
	flag.Parse()

	set := rendezvous.DefaultSettings()
	set.MaxSegments = *seg
	alg := rendezvous.AlmostUniversalRV()

	fmt.Printf("%s,meet_time,min_gap,segments\n", *sweep)
	for k := 0; k < *steps; k++ {
		frac := float64(k) / math.Max(1, float64(*steps-1))
		v := *from * math.Pow(*to / *from, frac)

		var in rendezvous.Instance
		switch *sweep {
		case "delay":
			in = rendezvous.Instance{R: 0.8, X: 0.9, Y: 0.1, Phi: 1.1, Tau: 1, V: 1.5, T: v, Chi: 1}
		case "ratio":
			in = rendezvous.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: v, V: 1 / v, T: 0.5, Chi: 1}
		case "radius":
			in = rendezvous.Instance{R: v, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, Chi: -1}
			in.T = in.ProjGap() - v + 0.5
		default:
			fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
			os.Exit(2)
		}
		if err := in.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "point %g: %v\n", v, err)
			continue
		}
		res := rendezvous.Simulate(in, alg, set)
		meet := math.NaN()
		if res.Met {
			meet = res.MeetTime.Float64()
		}
		fmt.Printf("%g,%g,%g,%d\n", v, meet, res.MinGap, res.Segments)
	}
}
