package main

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/rendezvous"
)

// Point is one sweep sample: the swept parameter value and the instance
// it induces.
type Point struct {
	Value float64
	Inst  rendezvous.Instance
}

// Points constructs the geometrically spaced sweep points for one of
// the three sweep modes (delay | ratio | radius). Points whose induced
// instance fails validation are skipped and reported in the second
// return value; an unknown mode is an error.
func Points(mode string, from, to float64, steps int) (pts []Point, skipped []error, err error) {
	switch mode {
	case "delay", "ratio", "radius":
	default:
		return nil, nil, fmt.Errorf("unknown sweep %q (want delay | ratio | radius)", mode)
	}
	for k := 0; k < steps; k++ {
		frac := float64(k) / math.Max(1, float64(steps-1))
		v := from * math.Pow(to/from, frac)

		var in rendezvous.Instance
		switch mode {
		case "delay":
			in = rendezvous.Instance{R: 0.8, X: 0.9, Y: 0.1, Phi: 1.1, Tau: 1, V: 1.5, T: v, Chi: 1}
		case "ratio":
			in = rendezvous.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: v, V: 1 / v, T: 0.5, Chi: 1}
		case "radius":
			in = rendezvous.Instance{R: v, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, Chi: -1}
			in.T = in.ProjGap() - v + 0.5
		}
		if verr := in.Validate(); verr != nil {
			skipped = append(skipped, fmt.Errorf("point %g: %w", v, verr))
			continue
		}
		pts = append(pts, Point{Value: v, Inst: in})
	}
	return pts, skipped, nil
}

// SweepSettings assembles the simulation settings of a sweep run: the
// segment budget, the in-process pool size (also forwarded to workers
// as their in-process pool), and (optionally) the distributed worker
// fleet with its per-connection send window (fixed when window > 0,
// adaptive up to maxWindow when window == 0) and failure model (stall
// is the liveness deadline for hung workers, maxRequeues the distinct-
// worker-kill count that quarantines a poison job; zero keeps the
// defaults, negative disables). compress asks TCP worker connections to
// negotiate flate compression — a WAN-link bandwidth saver that never
// changes the emitted bytes.
func SweepSettings(maxSeg, workers int, hosts string, workerProcs, window, maxWindow int, stall time.Duration, maxRequeues int, compress bool) rendezvous.Settings {
	set := rendezvous.DefaultSettings()
	set.MaxSegments = maxSeg
	set.Parallelism = workers
	set.Hosts = hosts
	set.WorkerProcs = workerProcs
	set.Window = window
	set.MaxWindow = maxWindow
	set.StallTimeout = stall
	set.MaxJobRequeues = maxRequeues
	set.Compress = compress
	return set
}

// SweepCSV simulates every point under AlmostUniversalRV on a pool of
// `workers` goroutines and renders the CSV document (header + one row
// per point, in sweep order). The batch engine guarantees the document
// is byte-identical for every worker count.
func SweepCSV(mode string, pts []Point, maxSeg, workers int) string {
	var b strings.Builder
	StreamCSV(&b, mode, pts, SweepSettings(maxSeg, workers, "", 0, 0, 0, 0, 0, false))
	return b.String()
}

// StreamCSV renders the same document as SweepCSV but writes each row
// the moment the ordered result prefix completes, instead of after the
// whole batch drains: a sweep whose early points are cheap prints them
// while the pool is still grinding through the expensive tail. The
// emitted bytes are identical to SweepCSV's for every worker count,
// pool size, and fleet — streaming changes when rows appear, never what
// they say.
func StreamCSV(w io.Writer, mode string, pts []Point, set rendezvous.Settings) {
	streamCSV(w, mode, pts, set, rendezvous.AlmostUniversalRV())
}

// StreamCSVOn is StreamCSV over an open fleet session instead of the
// one-shot batch entry point: the session's connections (and its live
// membership — WatchHosts may be reshaping the fleet mid-sweep) serve
// the points, and the emitted bytes stay identical to every other
// execution shape.
func StreamCSVOn(w io.Writer, mode string, pts []Point, set rendezvous.Settings, f *rendezvous.Fleet) {
	alg := rendezvous.AlmostUniversalRV()
	emitRows(w, mode, pts, f.SimulateBatchStream(sweepInstances(pts), alg, set))
}

// streamCSV is StreamCSV with the algorithm injectable (tests gate a
// custom algorithm to observe rows appearing before the batch ends).
func streamCSV(w io.Writer, mode string, pts []Point, set rendezvous.Settings, alg rendezvous.Algorithm) {
	emitRows(w, mode, pts, rendezvous.SimulateBatchStream(sweepInstances(pts), alg, set))
}

func sweepInstances(pts []Point) []rendezvous.Instance {
	ins := make([]rendezvous.Instance, len(pts))
	for i, p := range pts {
		ins[i] = p.Inst
	}
	return ins
}

// emitRows renders the CSV header and one row per streamed result, in
// sweep order — the one formatter behind both execution shapes.
func emitRows(w io.Writer, mode string, pts []Point, results <-chan rendezvous.Result) {
	fmt.Fprintf(w, "%s,meet_time,min_gap,segments\n", mode)
	i := 0
	for res := range results {
		meet := math.NaN()
		if res.Met {
			meet = res.MeetTime.Float64()
		}
		fmt.Fprintf(w, "%g,%g,%g,%d\n", pts[i].Value, meet, res.MinGap, res.Segments)
		i++
	}
}
