package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/prog"
	"repro/rendezvous"
)

// sweepCases covers the three sweep modes with their CLI-default-shaped
// ranges (scaled down for test speed).
var sweepCases = []struct {
	mode     string
	from, to float64
	steps    int
}{
	{"delay", 0.5, 32, 6},
	{"ratio", 1.1, 4, 6},
	{"radius", 0.4, 1.2, 6},
}

func TestPointsConstruction(t *testing.T) {
	for _, tc := range sweepCases {
		pts, skipped, err := Points(tc.mode, tc.from, tc.to, tc.steps)
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		if len(pts)+len(skipped) != tc.steps {
			t.Errorf("%s: %d points + %d skipped, want %d total", tc.mode, len(pts), len(skipped), tc.steps)
		}
		if len(pts) == 0 {
			t.Fatalf("%s: no valid points", tc.mode)
		}
		// Geometric spacing from..to is strictly monotone increasing.
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value {
				t.Errorf("%s: sweep values not monotone at %d: %g then %g",
					tc.mode, i, pts[i-1].Value, pts[i].Value)
			}
		}
		if got := pts[0].Value; got != tc.from {
			t.Errorf("%s: first value %g, want %g", tc.mode, got, tc.from)
		}
		for _, p := range pts {
			if err := p.Inst.Validate(); err != nil {
				t.Errorf("%s: invalid instance at %g: %v", tc.mode, p.Value, err)
			}
		}
	}
}

func TestPointsUnknownMode(t *testing.T) {
	if _, _, err := Points("bogus", 1, 2, 3); err == nil {
		t.Fatal("no error for unknown sweep mode")
	}
	// The mode is validated even when the loop body would never run.
	if _, _, err := Points("bogus", 1, 2, 0); err == nil {
		t.Fatal("no error for unknown sweep mode with steps=0")
	}
}

// chanWriter hands every Write to the test, blocking until the test
// has consumed it — the deterministic observation point for streaming.
type chanWriter struct{ ch chan string }

func (w chanWriter) Write(p []byte) (int, error) {
	w.ch <- string(p)
	return len(p), nil
}

// TestStreamCSVRowBeforeBatchEnds pins the streaming satellite: with
// the last sweep point's simulation gated open, the first data row
// must come out of StreamCSV while that job is still running — rows
// appear as the ordered prefix completes, not after the drain.
func TestStreamCSVRowBeforeBatchEnds(t *testing.T) {
	pts, _, err := Points("delay", 0.5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}

	gate := make(chan struct{})
	last := pts[len(pts)-1].Inst
	alg := rendezvous.Algorithm{
		Name: "gated-sweep-test",
		Program: func(in rendezvous.Instance) prog.Program {
			if in == last {
				return func(yield func(prog.Instr) bool) { <-gate }
			}
			return prog.Instrs() // ends immediately
		},
	}

	set := SweepSettings(10_000, 2, "", 0, 0, 0, 0, 0, false)
	cw := chanWriter{ch: make(chan string)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		streamCSV(cw, "delay", pts, set, alg)
	}()

	recv := func(what string) string {
		t.Helper()
		select {
		case s := <-cw.ch:
			return s
		case <-time.After(60 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return ""
		}
	}
	if got := recv("header"); !strings.HasPrefix(got, "delay,meet_time") {
		t.Fatalf("first write is not the header: %q", got)
	}
	row0 := recv("first data row")
	if !strings.HasPrefix(row0, "0.5,") {
		t.Fatalf("first row is not point 0: %q", row0)
	}
	// The last job is still blocked on the gate, so the sweep cannot
	// have finished: the row above was observable before batch end.
	select {
	case <-done:
		t.Fatal("sweep completed while its last job was still gated")
	default:
	}
	close(gate)
	if got := recv("last data row"); !strings.HasPrefix(got, "2,") {
		t.Fatalf("last row mismatch: %q", got)
	}
	<-done
}

// TestSweepCSVEmission runs each mode under a tiny segment budget (the
// runs cap out quickly; the CSV shape is what's under test) and checks
// header, row count, and worker-count independence.
func TestSweepCSVEmission(t *testing.T) {
	const maxSeg = 2_000
	for _, tc := range sweepCases {
		pts, _, err := Points(tc.mode, tc.from, tc.to, tc.steps)
		if err != nil {
			t.Fatal(err)
		}
		doc := SweepCSV(tc.mode, pts, maxSeg, 4)
		lines := strings.Split(strings.TrimRight(doc, "\n"), "\n")
		if want := tc.mode + ",meet_time,min_gap,segments"; lines[0] != want {
			t.Errorf("%s: header %q, want %q", tc.mode, lines[0], want)
		}
		if got := len(lines) - 1; got != len(pts) {
			t.Errorf("%s: %d rows, want %d", tc.mode, got, len(pts))
		}
		for i, line := range lines[1:] {
			if got := strings.Count(line, ","); got != 3 {
				t.Errorf("%s row %d: %d commas in %q", tc.mode, i, got, line)
			}
		}
		// The emitted document must not depend on the worker count.
		if serial := SweepCSV(tc.mode, pts, maxSeg, 1); serial != doc {
			t.Errorf("%s: workers=1 and workers=4 documents differ:\n%s\nvs\n%s", tc.mode, serial, doc)
		}
	}
}
