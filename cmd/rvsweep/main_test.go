package main

import (
	"strings"
	"testing"
)

// sweepCases covers the three sweep modes with their CLI-default-shaped
// ranges (scaled down for test speed).
var sweepCases = []struct {
	mode     string
	from, to float64
	steps    int
}{
	{"delay", 0.5, 32, 6},
	{"ratio", 1.1, 4, 6},
	{"radius", 0.4, 1.2, 6},
}

func TestPointsConstruction(t *testing.T) {
	for _, tc := range sweepCases {
		pts, skipped, err := Points(tc.mode, tc.from, tc.to, tc.steps)
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		if len(pts)+len(skipped) != tc.steps {
			t.Errorf("%s: %d points + %d skipped, want %d total", tc.mode, len(pts), len(skipped), tc.steps)
		}
		if len(pts) == 0 {
			t.Fatalf("%s: no valid points", tc.mode)
		}
		// Geometric spacing from..to is strictly monotone increasing.
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value {
				t.Errorf("%s: sweep values not monotone at %d: %g then %g",
					tc.mode, i, pts[i-1].Value, pts[i].Value)
			}
		}
		if got := pts[0].Value; got != tc.from {
			t.Errorf("%s: first value %g, want %g", tc.mode, got, tc.from)
		}
		for _, p := range pts {
			if err := p.Inst.Validate(); err != nil {
				t.Errorf("%s: invalid instance at %g: %v", tc.mode, p.Value, err)
			}
		}
	}
}

func TestPointsUnknownMode(t *testing.T) {
	if _, _, err := Points("bogus", 1, 2, 3); err == nil {
		t.Fatal("no error for unknown sweep mode")
	}
	// The mode is validated even when the loop body would never run.
	if _, _, err := Points("bogus", 1, 2, 0); err == nil {
		t.Fatal("no error for unknown sweep mode with steps=0")
	}
}

// TestSweepCSVEmission runs each mode under a tiny segment budget (the
// runs cap out quickly; the CSV shape is what's under test) and checks
// header, row count, and worker-count independence.
func TestSweepCSVEmission(t *testing.T) {
	const maxSeg = 2_000
	for _, tc := range sweepCases {
		pts, _, err := Points(tc.mode, tc.from, tc.to, tc.steps)
		if err != nil {
			t.Fatal(err)
		}
		doc := SweepCSV(tc.mode, pts, maxSeg, 4)
		lines := strings.Split(strings.TrimRight(doc, "\n"), "\n")
		if want := tc.mode + ",meet_time,min_gap,segments"; lines[0] != want {
			t.Errorf("%s: header %q, want %q", tc.mode, lines[0], want)
		}
		if got := len(lines) - 1; got != len(pts) {
			t.Errorf("%s: %d rows, want %d", tc.mode, got, len(pts))
		}
		for i, line := range lines[1:] {
			if got := strings.Count(line, ","); got != 3 {
				t.Errorf("%s row %d: %d commas in %q", tc.mode, i, got, line)
			}
		}
		// The emitted document must not depend on the worker count.
		if serial := SweepCSV(tc.mode, pts, maxSeg, 1); serial != doc {
			t.Errorf("%s: workers=1 and workers=4 documents differ:\n%s\nvs\n%s", tc.mode, serial, doc)
		}
	}
}
