// Command benchcmp compares two benchmark records in the cmd/benchjson
// schema and gates on time/op regressions: it is the teeth of the perf
// methodology (DESIGN.md §9). Benchmarks are matched by name; each
// matched pair's ns/op delta is classified against two thresholds — a
// warn line for "worth a look" and a fail line for "the build is
// broken". Benchmarks present in only one record are listed
// informationally and never gate (records legitimately gain and lose
// benchmarks across PRs).
//
// Usage:
//
//	go run ./cmd/benchcmp [-fail 0.25] [-warn 0.10] OLD.json NEW.json
//
// Exit codes:
//
//	0 — no matched benchmark regressed past the fail threshold
//	    (warnings may be present; they are advisory)
//	1 — at least one matched benchmark regressed past the fail threshold
//	2 — usage error, unreadable file, or malformed JSON
//
// The thresholds are deliberately generous: the records are produced on
// whatever machine ran the bench (often a noisy shared CI runner), and
// the gate exists to catch the 2x rots that accumulate silently, not to
// litigate 3% jitter. See DESIGN.md §9 for the calibration rationale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// entry mirrors the cmd/benchjson Entry fields benchcmp reads.
type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// doc mirrors the cmd/benchjson Doc envelope.
type doc struct {
	Note       string  `json:"note"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parses flags and the two records,
// prints the comparison, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	failAt := fs.Float64("fail", 0.25, "fail when time/op regresses by more than this fraction")
	warnAt := fs.Float64("warn", 0.10, "warn when time/op regresses by more than this fraction")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchcmp [-fail 0.25] [-warn 0.10] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	oldDoc, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 2
	}
	newDoc, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchcmp: %v\n", err)
		return 2
	}

	oldBy := byName(oldDoc.Benchmarks)
	newBy := byName(newDoc.Benchmarks)

	// Deterministic report order: matched benchmarks sorted by name,
	// then the unmatched stragglers of each side.
	var matched, onlyOld, onlyNew []string
	for name := range oldBy {
		if _, ok := newBy[name]; ok {
			matched = append(matched, name)
		} else {
			onlyOld = append(onlyOld, name)
		}
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(matched)
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)

	fmt.Fprintf(stdout, "benchcmp %s -> %s (fail >%.0f%%, warn >%.0f%%)\n",
		fs.Arg(0), fs.Arg(1), *failAt*100, *warnAt*100)

	fails, warns := 0, 0
	for _, name := range matched {
		o, n := oldBy[name], newBy[name]
		if o.NsPerOp <= 0 {
			// A zero/negative baseline carries no time signal (hand-edited
			// or truncated record); nothing sound to gate on.
			fmt.Fprintf(stdout, "  SKIP  %-40s no usable baseline time\n", name)
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		verdict := "ok"
		switch {
		case delta > *failAt:
			verdict = "FAIL"
			fails++
		case delta > *warnAt:
			verdict = "WARN"
			warns++
		}
		fmt.Fprintf(stdout, "  %-4s  %-40s %12.1f -> %12.1f ns/op  %+6.1f%%\n",
			verdict, name, o.NsPerOp, n.NsPerOp, delta*100)
	}
	for _, name := range onlyOld {
		fmt.Fprintf(stdout, "  only in %s: %s\n", fs.Arg(0), name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(stdout, "  only in %s: %s\n", fs.Arg(1), name)
	}

	fmt.Fprintf(stdout, "%d compared, %d failed, %d warned, %d unmatched\n",
		len(matched), fails, warns, len(onlyOld)+len(onlyNew))
	if fails > 0 {
		return 1
	}
	return 0
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// byName indexes a record's entries; a duplicated name keeps the first
// occurrence, matching the "first wins" discipline the memoizing
// engines use elsewhere.
func byName(entries []entry) map[string]entry {
	m := make(map[string]entry, len(entries))
	for _, e := range entries {
		if _, ok := m[e.Name]; !ok {
			m[e.Name] = e
		}
	}
	return m
}
