package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestGolden pins the full report text and exit code for each gate
// verdict: pass (within noise), warn (advisory, still exit 0), fail
// (exit 1), and a benchmark-set mismatch (unmatched entries listed but
// never gating). The report is consumed by humans reading CI logs, so
// its exact shape is part of the contract. Regenerate with
// `go test ./cmd/benchcmp -update` after an intentional format change.
func TestGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		new  string
		exit int
	}{
		{"pass", "new_pass.json", 0},
		{"warn", "new_warn.json", 0},
		{"fail", "new_fail.json", 1},
		{"mismatch", "new_mismatch.json", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(
				[]string{filepath.Join("testdata", "old.json"), filepath.Join("testdata", tc.new)},
				&stdout, &stderr,
			)
			if code != tc.exit {
				t.Errorf("exit code = %d, want %d (stderr: %s)", code, tc.exit, stderr.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got := stdout.String(); got != string(want) {
				t.Errorf("report differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestThresholdFlags pins that the gate lines are configurable: with a
// loose enough -fail the regression record passes, with a tight one
// even the pass record fails.
func TestThresholdFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fail", "0.50", "testdata/old.json", "testdata/new_fail.json"}, &out, &errb); code != 0 {
		t.Errorf("-fail 0.50 on a +40%% regression: exit %d, want 0\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-fail", "0.01", "testdata/old.json", "testdata/new_pass.json"}, &out, &errb); code != 1 {
		t.Errorf("-fail 0.01 on a +2%% drift: exit %d, want 1\n%s", code, out.String())
	}
}

// TestExitCode2 pins the third exit class: broken invocations and
// broken inputs must be distinguishable from a failed gate (CI treats
// 1 as "perf regressed" and 2 as "the comparison itself is broken").
func TestExitCode2(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"malformed JSON", []string{"testdata/old.json", "testdata/malformed.json"}},
		{"missing file", []string{"testdata/old.json", "testdata/no_such_file.json"}},
		{"too few args", []string{"testdata/old.json"}},
		{"too many args", []string{"a.json", "b.json", "c.json"}},
		{"bad flag", []string{"-frail", "0.2", "a.json", "b.json"}},
	} {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, errb.String())
		}
		if tc.name == "malformed JSON" && !strings.Contains(errb.String(), "malformed.json") {
			t.Errorf("malformed-JSON error does not name the offending file: %s", errb.String())
		}
	}
}
