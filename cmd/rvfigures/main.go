// Command rvfigures regenerates the paper's five figures as SVG files
// drawn from computed geometry and simulated trajectories.
//
// Usage:
//
//	rvfigures -out figures/
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"repro/internal/dist"
	"repro/internal/exps"
	"repro/internal/obs"
)

func main() {
	dist.MaybeServeStdio() // single-binary deploys: -worker re-executes rvfigures itself

	out := flag.String("out", "figures", "output directory")
	workers := flag.Int("workers", 0, "batch-pool size for simulated figures, in-process and per worker process (0 = GOMAXPROCS)")
	procs := flag.Int("worker", 0, "local worker subprocesses for wire-formed jobs (distributed execution)")
	hosts := flag.String("hosts", "", "comma-separated rvworker -listen endpoints, each addr or addr*pool (distributed execution)")
	hostsFile := flag.String("hosts-file", "", "file of rvworker endpoints (-hosts syntax, newline- or comma-separated, '#' comments), watched for edits while the run is live; mutually exclusive with -hosts")
	window := flag.Int("window", 0, "jobs in flight per worker connection (0 = adaptive; 1 = synchronous)")
	maxWindow := flag.Int("max-window", 0, "adaptive window growth cap per connection (0 = default; <0 = fixed default window)")
	stall := flag.Duration("stall", 0, "liveness deadline for a silent worker connection with jobs in flight (0 = 30s default; <0 = disabled)")
	requeues := flag.Int("max-requeues", 0, "distinct workers a job may kill or stall before it is quarantined as a poison job (0 = 2 default; <0 = disabled)")
	compress := flag.Bool("compress", false, "negotiate flate compression with TCP workers (WAN links; output is identical either way)")
	metrics := flag.String("metrics", "", "HTTP address to expose the flight recorder on (/metrics, /statusz; empty: off)")
	pprofOn := flag.Bool("pprof", false, "also expose /debug/pprof/ on the -metrics address")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.Parse()

	if lerr := obs.InitLogging(os.Stderr, *logLevel); lerr != nil {
		fmt.Fprintln(os.Stderr, lerr)
		os.Exit(2)
	}
	if *metrics != "" {
		addr, merr := obs.Serve(*metrics, *pprofOn)
		if merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		slog.Info("rvfigures: metrics listening", "addr", addr.String(), "pprof", *pprofOn)
	}

	if *hosts != "" && *hostsFile != "" {
		fmt.Fprintln(os.Stderr, "rvfigures: -hosts and -hosts-file are mutually exclusive")
		os.Exit(2)
	}
	hostList, err := dist.ParseHosts(*hosts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *hostsFile != "" {
		if hostList, err = dist.LoadHostsFile(*hostsFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	b := exps.DefaultBudgets()
	b.Workers = *workers
	b.Dist = dist.Config{
		Procs: *procs, Hosts: hostList,
		Window: *window, MaxWindow: *maxWindow,
		StallTimeout: *stall, MaxJobRequeues: *requeues,
		Compress: *compress,
	}

	// One fleet session for all figures (see rvtable): dial once, share
	// the connections, close at exit.
	if b.Dist.Enabled() {
		if f, derr := dist.Dial(b.Dist); derr != nil {
			slog.Warn("rvfigures: fleet unavailable (running in-process)", "err", derr)
		} else {
			b.Fleet = f
			defer f.Close()
			if *hostsFile != "" {
				// Live membership: edits to the hosts file grow or shrink
				// the session while figures are still rendering.
				stop, werr := f.WatchHosts(*hostsFile, 0)
				if werr != nil {
					fmt.Fprintln(os.Stderr, werr)
					os.Exit(1)
				}
				defer stop()
			}
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for name, doc := range exps.FiguresDist(b) {
		path := filepath.Join(*out, name+".svg")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
