// Command rvfigures regenerates the paper's five figures as SVG files
// drawn from computed geometry and simulated trajectories.
//
// Usage:
//
//	rvfigures -out figures/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exps"
)

func main() {
	out := flag.String("out", "figures", "output directory")
	workers := flag.Int("workers", 0, "batch-pool size for simulated figures (0 = GOMAXPROCS)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for name, doc := range exps.FiguresWith(*workers) {
		path := filepath.Join(*out, name+".svg")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
