// Command rvfigures regenerates the paper's five figures as SVG files
// drawn from computed geometry and simulated trajectories.
//
// Usage:
//
//	rvfigures -out figures/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dist"
	"repro/internal/exps"
)

func main() {
	dist.MaybeServeStdio() // single-binary deploys: -worker re-executes rvfigures itself

	out := flag.String("out", "figures", "output directory")
	workers := flag.Int("workers", 0, "batch-pool size for simulated figures, in-process and per worker process (0 = GOMAXPROCS)")
	procs := flag.Int("worker", 0, "local worker subprocesses for wire-formed jobs (distributed execution)")
	hosts := flag.String("hosts", "", "comma-separated rvworker -listen endpoints (distributed execution)")
	window := flag.Int("window", 0, "jobs in flight per worker connection (0 = default; 1 = synchronous)")
	flag.Parse()

	b := exps.DefaultBudgets()
	b.Workers = *workers
	b.Dist = dist.Config{Procs: *procs, Hosts: dist.ParseHosts(*hosts), Window: *window}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for name, doc := range exps.FiguresDist(b) {
		path := filepath.Join(*out, name+".svg")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
