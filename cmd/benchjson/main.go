// Command benchjson converts `go test -bench` output (stdin) into a
// machine-readable JSON document (stdout), so benchmark runs can be
// recorded next to the code and diffed across PRs (BENCH_PR2.json is
// the first such record; scripts/bench.sh regenerates it).
//
// Usage:
//
//	go test -run '^$' -bench Kernel -benchmem . | go run ./cmd/benchjson -note "cursor engine" > bench.json
//
// Standard per-op statistics (ns/op, B/op, allocs/op) become fields;
// any custom b.ReportMetric units land in the "metrics" map. Non-bench
// lines (goos/pkg/PASS headers) are echoed to stderr so failures stay
// visible in pipelines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Note       string  `json:"note,omitempty"`
	Go         string  `json:"go,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	note := flag.String("note", "", "free-form note stored in the document")
	flag.Parse()

	doc := Doc{Note: *note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "pkg:"):
			continue
		}
		if e, ok := parseBenchLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, e)
			continue
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkName-8  123  456.7 ns/op  8 B/op
// 2 allocs/op  999 widgets/s" into an Entry.
func parseBenchLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	name := strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", guessProcs(fields[0])))
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = val
		case "allocs/op":
			e.AllocsPerOp = val
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = val
		}
	}
	return e, true
}

// guessProcs extracts the trailing -N GOMAXPROCS suffix of a benchmark
// name (0 when absent).
func guessProcs(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
