// Command rvwanproxy is a WAN emulator for the worker wire protocol: a
// frame-aware TCP proxy that forwards coordinator↔worker traffic
// through a delay line and a bandwidth cap, so the compression and
// pipelining behavior of a real wide-area link can be exercised on
// loopback.
//
//	rvworker -listen 127.0.0.1:9101 &
//	rvwanproxy -listen 127.0.0.1:9102 -target 127.0.0.1:9101 -delay 20ms -bw 1048576 &
//	rvtable -hosts 127.0.0.1:9102 -compress
//
// The delay is propagation (a delay line — pipelined frames overlap,
// a window of W jobs costs one RTT, not W); the bandwidth cap is
// serialization (each frame occupies the link for size/bw after the
// previous frame clears). Compressed frames count at their transported
// size, so negotiated compression genuinely buys throughput through
// the cap. Frames are forwarded bit-exactly — the proxy never changes
// what a run computes, only when its bytes arrive.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/dist"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:9102", "TCP address to accept coordinator connections on")
		target = flag.String("target", "", "rvworker -listen address to forward to (required)")
		delay  = flag.Duration("delay", 0, "one-way propagation delay per frame, both directions (e.g. 20ms)")
		bw     = flag.Int64("bw", 0, "per-direction bandwidth cap in bytes/sec, applied as serialization delay (0 = uncapped)")
	)
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "rvwanproxy: -target is required")
		os.Exit(2)
	}
	if *bw < 0 {
		fmt.Fprintln(os.Stderr, "rvwanproxy: -bw must be >= 0")
		os.Exit(2)
	}

	plan := dist.ChaosPlan{Default: dist.ConnScript{Delay: *delay, Bandwidth: *bw}}
	p, err := dist.ListenChaosProxy(*listen, *target, plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvwanproxy:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rvwanproxy: %s -> %s (delay %s, bw %d B/s)\n", p.Addr(), *target, *delay, *bw)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	p.Close()
}
