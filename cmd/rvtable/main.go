// Command rvtable regenerates the experiment tables T1–T5 of the
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	rvtable                  # all tables
//	rvtable -exp T3 -csv     # one table, CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dist"
	"repro/internal/exps"
	"repro/internal/report"
)

func main() {
	dist.MaybeServeStdio() // single-binary deploys: -worker re-executes rvtable itself

	var (
		exp     = flag.String("exp", "all", "table id: T1..T5 or all")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		seed    = flag.Int64("seed", 1, "base random seed")
		n       = flag.Int("n", 5, "samples per class/type")
		workers = flag.Int("workers", 0, "batch-pool size, in-process and per worker process (0 = GOMAXPROCS); output is identical for every value")
		procs   = flag.Int("worker", 0, "local worker subprocesses for wire-formed jobs (distributed execution)")
		hosts   = flag.String("hosts", "", "comma-separated rvworker -listen endpoints (distributed execution)")
		window  = flag.Int("window", 0, "jobs in flight per worker connection (0 = default; 1 = synchronous)")
	)
	flag.Parse()

	b := exps.DefaultBudgets()
	b.Workers = *workers
	b.Dist = dist.Config{Procs: *procs, Hosts: dist.ParseHosts(*hosts), Window: *window}
	gens := map[string]func() *report.Table{
		"T1": func() *report.Table { return exps.T1(*seed, *n, b) },
		"T2": func() *report.Table { return exps.T2(*seed+1, *n, b) },
		"T3": func() *report.Table { return exps.T3(*seed+2, min(*n, 3), b) },
		"T4": func() *report.Table { return exps.T4(*seed+3, b) },
		"T5": func() *report.Table { return exps.T5(2_000_000, *seed+4, b) },
		"T6": func() *report.Table { return exps.T6(*seed+5, b) },
	}
	order := []string{"T1", "T2", "T3", "T4", "T5", "T6"}

	want := strings.ToUpper(*exp)
	found := false
	for _, id := range order {
		if want != "ALL" && want != id {
			continue
		}
		found = true
		t := gens[id]()
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want T1..T5 or all)\n", *exp)
		os.Exit(2)
	}
}
