// Command rvtable regenerates the experiment tables T1–T5 of the
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	rvtable                  # all tables
//	rvtable -exp T3 -csv     # one table, CSV output
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/internal/dist"
	"repro/internal/exps"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	dist.MaybeServeStdio() // single-binary deploys: -worker re-executes rvtable itself

	var (
		exp       = flag.String("exp", "all", "table id: T1..T6 or all")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		seed      = flag.Int64("seed", 1, "base random seed")
		n         = flag.Int("n", 5, "samples per class/type")
		workers   = flag.Int("workers", 0, "batch-pool size, in-process and per worker process (0 = GOMAXPROCS); output is identical for every value")
		procs     = flag.Int("worker", 0, "local worker subprocesses for wire-formed jobs (distributed execution)")
		hosts     = flag.String("hosts", "", "comma-separated rvworker -listen endpoints, each addr or addr*pool (distributed execution)")
		hostsFile = flag.String("hosts-file", "", "file of rvworker endpoints (-hosts syntax, newline- or comma-separated, '#' comments), watched for edits while the run is live; mutually exclusive with -hosts")
		window    = flag.Int("window", 0, "jobs in flight per worker connection (0 = adaptive; 1 = synchronous)")
		maxWindow = flag.Int("max-window", 0, "adaptive window growth cap per connection (0 = default; <0 = fixed default window)")
		stall     = flag.Duration("stall", 0, "liveness deadline for a silent worker connection with jobs in flight (0 = 30s default; <0 = disabled)")
		requeues  = flag.Int("max-requeues", 0, "distinct workers a job may kill or stall before it is quarantined as a poison job (0 = 2 default; <0 = disabled)")
		compress  = flag.Bool("compress", false, "negotiate flate compression with TCP workers (WAN links; output is identical either way)")
		metrics   = flag.String("metrics", "", "HTTP address to expose the flight recorder on (/metrics, /statusz; empty: off)")
		pprofOn   = flag.Bool("pprof", false, "also expose /debug/pprof/ on the -metrics address")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	if lerr := obs.InitLogging(os.Stderr, *logLevel); lerr != nil {
		fmt.Fprintln(os.Stderr, lerr)
		os.Exit(2)
	}
	if *metrics != "" {
		addr, merr := obs.Serve(*metrics, *pprofOn)
		if merr != nil {
			fmt.Fprintln(os.Stderr, merr)
			os.Exit(1)
		}
		slog.Info("rvtable: metrics listening", "addr", addr.String(), "pprof", *pprofOn)
	}

	if *hosts != "" && *hostsFile != "" {
		fmt.Fprintln(os.Stderr, "rvtable: -hosts and -hosts-file are mutually exclusive")
		os.Exit(2)
	}
	hostList, err := dist.ParseHosts(*hosts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *hostsFile != "" {
		if hostList, err = dist.LoadHostsFile(*hostsFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	b := exps.DefaultBudgets()
	b.Workers = *workers
	b.Dist = dist.Config{
		Procs: *procs, Hosts: hostList,
		Window: *window, MaxWindow: *maxWindow,
		StallTimeout: *stall, MaxJobRequeues: *requeues,
		Compress: *compress,
	}
	gens := map[string]func() *report.Table{
		"T1": func() *report.Table { return exps.T1(*seed, *n, b) },
		"T2": func() *report.Table { return exps.T2(*seed+1, *n, b) },
		"T3": func() *report.Table { return exps.T3(*seed+2, min(*n, 3), b) },
		"T4": func() *report.Table { return exps.T4(*seed+3, b) },
		"T5": func() *report.Table { return exps.T5(2_000_000, *seed+4, b) },
		"T6": func() *report.Table { return exps.T6(*seed+5, b) },
	}
	order := []string{"T1", "T2", "T3", "T4", "T5", "T6"}

	want := strings.ToUpper(*exp)
	if want != "ALL" {
		if _, ok := gens[want]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want T1..T6 or all)\n", *exp)
			os.Exit(2)
		}
	}

	// One fleet session for the whole invocation: the tables share the
	// dialed connections (one handshake per host for all of T1–T6)
	// instead of assembling and tearing down a fleet per table. An
	// unreachable fleet degrades to in-process execution, which
	// determinism makes invisible in the tables.
	if b.Dist.Enabled() {
		if f, derr := dist.Dial(b.Dist); derr != nil {
			slog.Warn("rvtable: fleet unavailable (running in-process)", "err", derr)
		} else {
			b.Fleet = f
			defer f.Close()
			if *hostsFile != "" {
				// Live membership: edits to the hosts file grow or shrink
				// the session while tables are still generating.
				stop, werr := f.WatchHosts(*hostsFile, 0)
				if werr != nil {
					fmt.Fprintln(os.Stderr, werr)
					os.Exit(1)
				}
				defer stop()
			}
		}
	}

	for _, id := range order {
		if want != "ALL" && want != id {
			continue
		}
		t := gens[id]()
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
}
