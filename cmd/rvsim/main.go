// Command rvsim simulates one rendezvous instance under one algorithm and
// prints the outcome, classification and (optionally) a trajectory dump.
//
// Usage:
//
//	rvsim -r 0.8 -x 1.2 -y 0.5 -phi 1.0 -tau 1 -v 1 -t 0.5 -chi 1 \
//	      -alg aurv -max-seg 100000000
//
// Algorithms: aurv (default), aurv-faithful, cgkk, latecomers, dedicated.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/rendezvous"
)

func main() {
	var (
		r    = flag.Float64("r", 0.8, "visibility radius")
		x    = flag.Float64("x", 1.2, "B start x (A frame)")
		y    = flag.Float64("y", 0.5, "B start y (A frame)")
		phi  = flag.Float64("phi", 1.0, "rotation between x-axes [0,2π)")
		tau  = flag.Float64("tau", 1, "B clock period (A units)")
		v    = flag.Float64("v", 1, "B speed (A units)")
		tt   = flag.Float64("t", 0.5, "B wake-up delay (A units)")
		chi  = flag.Int("chi", 1, "chirality agreement ±1")
		alg  = flag.String("alg", "aurv", "algorithm: aurv | aurv-faithful | cgkk | latecomers | dedicated")
		seg  = flag.Int("max-seg", 200_000_000, "segment budget")
		mt   = flag.Float64("max-time", 1e18, "absolute time budget")
		info = flag.Bool("info", false, "print classification only, no simulation")
	)
	flag.Parse()

	in := rendezvous.Instance{R: *r, X: *x, Y: *y, Phi: *phi, Tau: *tau, V: *v, T: *tt, Chi: *chi}
	if err := in.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Println(in)
	fmt.Printf("  synchronous: %v   feasible: %v   type: %v\n",
		in.Synchronous(), in.Feasible(), in.TypeOf())
	fmt.Printf("  d = %.6g   projGap = %.6g   margin = %.6g   S1: %v   S2: %v\n",
		in.Dist(), in.ProjGap(), in.Margin(), in.InS1(), in.InS2())
	if p, ok := rendezvous.PredictPhase(in, rendezvous.CompactSchedule()); ok {
		fmt.Printf("  predicted phase ≤ %d (time bound %.4g)\n", p.Phase, p.TimeBound)
	}
	if *info {
		return
	}

	var algorithm rendezvous.Algorithm
	switch *alg {
	case "aurv":
		algorithm = rendezvous.AlmostUniversalRV()
	case "aurv-faithful":
		algorithm = rendezvous.AlmostUniversalRVWith(rendezvous.FaithfulSchedule())
	case "cgkk":
		algorithm = rendezvous.CGKK()
	case "latecomers":
		algorithm = rendezvous.Latecomers()
	case "dedicated":
		var ok bool
		algorithm, ok = rendezvous.Dedicated(in)
		if !ok {
			fmt.Fprintln(os.Stderr, "no dedicated algorithm: instance is infeasible")
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	set := rendezvous.DefaultSettings()
	set.MaxSegments = *seg
	set.MaxTime = *mt
	res := rendezvous.Simulate(in, algorithm, set)
	fmt.Printf("%s: %v\n", algorithm.Name, res)
	if !res.Met {
		os.Exit(1)
	}
}
