// Command rvworker is the worker half of the distributed batch engine:
// it executes simulation jobs shipped to it by a coordinator
// (rendezvous.SimulateBatch with Settings.Hosts/WorkerProcs, or the
// -hosts/-worker flags of rvsweep/rvtable/rvfigures) and streams the
// results back bit-exactly over the wire codec.
//
// Two transports:
//
//	rvworker                 # serve one coordinator on stdin/stdout
//	rvworker -listen :9101   # serve any number of coordinators over TCP
//
// Jobs on one stream execute on an in-worker pool sized by the jobs'
// forwarded Parallelism setting (cap or force it with -pool), so a
// single worker process saturates its host when the coordinator's send
// window keeps the pool fed; scale further by running more workers (or
// letting the coordinator spawn subprocess workers, which re-execute
// the coordinator binary itself — every cmd/ main of this repo can
// serve as its own worker).
//
// Determinism: a worker computes exactly what the coordinator would
// have computed in-process — algorithms are rebuilt by registered name
// from the same code, inputs and outputs cross the wire bit-for-bit —
// so distributing a batch never changes a single reported number.
//
// Shutdown: SIGTERM or SIGINT drains gracefully — stop accepting new
// streams, let in-flight executors finish, flush the reply batcher,
// exit 0 — so a supervised worker (systemd stop, container rollout)
// never dies mid-frame and its coordinators see a clean EOF, not a
// torn frame.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	var (
		listen   = flag.String("listen", "", "TCP address to serve workers on (empty: serve stdin/stdout)")
		list     = flag.Bool("list", false, "print the registered algorithm names and exit")
		pool     = flag.Int("pool", 0, "in-worker execution pool per connection (0 = honor the stream's pool hint or the jobs' forwarded Parallelism; <0 = serial)")
		compress = flag.Bool("compress", true, "accept per-connection flate compression when the coordinator offers it (-compress=false refuses, forcing raw frames)")
		verbose  = flag.Bool("v", false, "log one line per served stream (peer and job count) to stderr")
		metrics  = flag.String("metrics", "", "HTTP address to expose the flight recorder on (/metrics, /statusz; empty: off)")
		pprofOn  = flag.Bool("pprof", false, "also expose /debug/pprof/ on the -metrics address")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	)
	flag.Parse()

	if err := obs.InitLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "rvworker:", err)
		os.Exit(2)
	}

	if *list {
		for _, name := range wire.Algorithms() {
			fmt.Println(name)
		}
		return
	}
	if *metrics != "" {
		addr, err := obs.Serve(*metrics, *pprofOn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rvworker:", err)
			os.Exit(1)
		}
		slog.Info("rvworker: metrics listening", "addr", addr.String(), "pprof", *pprofOn)
	}
	opts := dist.ServeOptions{Pool: *pool, NoCompress: !*compress}
	if *verbose {
		opts.Log = slog.Default()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	var draining atomic.Bool

	var err error
	if *listen != "" {
		l, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "rvworker:", lerr)
			os.Exit(1)
		}
		slog.Info("rvworker: listening", "addr", l.Addr().String())
		srv := dist.NewServer(opts)
		drained := make(chan struct{})
		go func() {
			<-sigc
			draining.Store(true)
			slog.Info("rvworker: signal received; draining")
			flushed := srv.Shutdown()
			slog.Info("rvworker: drained", "jobs", flushed)
			close(drained)
		}()
		err = srv.Serve(l)
		if draining.Load() {
			// Serve and Shutdown unblock on the same drain barrier;
			// don't let main's return race the drain goroutine's final
			// log line out of existence.
			<-drained
		}
	} else {
		var atSignal atomic.Uint64
		go func() {
			<-sigc
			draining.Store(true)
			atSignal.Store(dist.RepliesFlushed())
			slog.Info("rvworker: signal received; draining")
			// Unblock the pending stdin read; ServeWith's finish path
			// drains the executors and flushes before returning. Works
			// on pipes and terminals on the platforms we serve from;
			// where it doesn't, the fallback is the old behavior (the
			// read stays blocked until the coordinator closes it).
			os.Stdin.SetReadDeadline(time.Now())
		}()
		opts.Name = "stdio"
		err = dist.ServeWith(os.Stdin, os.Stdout, opts)
		if draining.Load() {
			err = nil // the induced read-deadline error is the drain, not a fault
			slog.Info("rvworker: drained", "jobs", dist.RepliesFlushed()-atSignal.Load())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rvworker:", err)
		os.Exit(1)
	}
}
