// Package repro_test is the benchmark harness of the reproduction: one
// benchmark per experiment table (T1–T5) and figure (F1–F5) — each
// regenerates the artifact under `go test -bench` — plus kernel
// micro-benchmarks and the scaling/ablation sweeps called out in
// DESIGN.md §4.
package repro_test

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/cgkk"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dist"
	"repro/internal/exps"
	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/measure"
	"repro/internal/phys"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/walk"
	"repro/internal/wire"
	"repro/rendezvous"
)

// TestMain lets the bench binary serve as its own distributed-worker
// fleet: the coordinator's default WorkerCmd re-executes the current
// executable, and MaybeServeStdio diverts that copy into the worker
// loop (see BenchmarkDistT2Procs*).
func TestMain(m *testing.M) {
	dist.MaybeServeStdio()
	os.Exit(m.Run())
}

// quickBudgets keeps table regeneration fast enough for benchmarking.
func quickBudgets() exps.Budgets {
	return exps.Budgets{MeetSegments: 120_000_000, MissSegments: 500_000}
}

// ---- Table benchmarks: each iteration regenerates the table. ----

func BenchmarkT1Feasibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.T1(1, 2, quickBudgets())
	}
}

func benchT2Type(b *testing.B, c inst.Class) { benchT2TypeMode(b, c, false) }

// benchT2TypeMode runs the T2 kernel either on the cursor fast path or
// (opaque) through the iter.Pull coroutine fallback — the before/after
// pair of the cursor-engine optimization (see BENCH_PR2.json).
func benchT2TypeMode(b *testing.B, c inst.Class, opaque bool) {
	g := inst.NewGen(11)
	ins := g.DrawN(c, 4)
	set := sim.DefaultSettings()
	set.MaxSegments = 120_000_000
	mk := func() prog.Program {
		p := core.Program(core.Compact(), nil)
		if opaque {
			p = prog.Opaque(p)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			a := sim.AgentSpec{Attrs: in.AgentA(), Prog: mk(), Radius: in.R}
			bb := sim.AgentSpec{Attrs: in.AgentB(), Prog: mk(), Radius: in.R}
			if res := sim.Run(a, bb, set); !res.Met {
				b.Fatalf("instance failed to meet: %v", in)
			}
		}
	}
}

func BenchmarkT2Type1Mirror(b *testing.B)     { benchT2Type(b, inst.ClassMirrorInterior) }
func BenchmarkT2Type2Latecomer(b *testing.B)  { benchT2Type(b, inst.ClassLatecomer) }
func BenchmarkT2Type3ClockDrift(b *testing.B) { benchT2Type(b, inst.ClassClockDrift) }
func BenchmarkT2Type4Rotated(b *testing.B)    { benchT2Type(b, inst.ClassRotatedDelayed) }

// Pull-path baselines for the same kernels (iter.Pull forced via
// prog.Opaque): the denominators of the cursor-engine speedup claim.
func BenchmarkT2Type1MirrorPull(b *testing.B) { benchT2TypeMode(b, inst.ClassMirrorInterior, true) }
func BenchmarkT2Type3ClockDriftPull(b *testing.B) {
	benchT2TypeMode(b, inst.ClassClockDrift, true)
}

func BenchmarkT3Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.T3(3, 1, quickBudgets())
	}
}

func BenchmarkT4Boundary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.T4(4, quickBudgets())
	}
}

func BenchmarkT5Measure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.T5(200_000, 5, exps.Budgets{Workers: 1})
	}
}

// ---- Batch benchmarks: T2-style workload at 1/2/N workers. ----
// The figure of merit is wall-clock scaling: the same job list, the
// same (byte-identical) results, fewer seconds.

// batchT2Instances draws the T2-style workload: one batch spanning all
// four instance types.
func batchT2Instances() []rendezvous.Instance {
	g := inst.NewGen(11)
	var ins []rendezvous.Instance
	for _, c := range []inst.Class{
		inst.ClassMirrorInterior, inst.ClassLatecomer,
		inst.ClassClockDrift, inst.ClassRotatedDelayed,
	} {
		ins = append(ins, g.DrawN(c, 4)...)
	}
	return ins
}

func benchBatchT2(b *testing.B, workers int) {
	ins := batchT2Instances()
	set := rendezvous.DefaultSettings()
	set.MaxSegments = 120_000_000
	set.Parallelism = workers
	alg := rendezvous.AlmostUniversalRV()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, res := range rendezvous.SimulateBatch(ins, alg, set) {
			if !res.Met {
				b.Fatalf("instance %d failed to meet: %v", j, ins[j])
			}
		}
	}
	b.ReportMetric(float64(len(ins)*b.N)/b.Elapsed().Seconds(), "sims/s")
}

func BenchmarkBatchT2Workers1(b *testing.B) { benchBatchT2(b, 1) }
func BenchmarkBatchT2Workers2(b *testing.B) { benchBatchT2(b, 2) }
func BenchmarkBatchT2Workers4(b *testing.B) { benchBatchT2(b, 4) }
func BenchmarkBatchT2WorkersMax(b *testing.B) {
	benchBatchT2(b, runtime.GOMAXPROCS(0))
}

// benchDistT2 runs the same T2 batch through the distributed engine
// with `procs` local worker subprocesses (spawned fresh per iteration:
// the measured figure includes the fleet's spawn/handshake cost, which
// is the realistic per-batch overhead of going multi-process). Results
// are byte-identical to the in-process benchmarks above; on a
// single-CPU host the scaling benefit is bounded by the hardware, so
// the cross-machine figure of merit is sims/s at procs=N vs procs=1.
func benchDistT2(b *testing.B, procs int) {
	ins := batchT2Instances()
	set := rendezvous.DefaultSettings()
	set.MaxSegments = 120_000_000
	set.Parallelism = 1
	set.WorkerProcs = procs
	alg := rendezvous.AlmostUniversalRV()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, res := range rendezvous.SimulateBatch(ins, alg, set) {
			if !res.Met {
				b.Fatalf("instance %d failed to meet: %v", j, ins[j])
			}
		}
	}
	b.ReportMetric(float64(len(ins)*b.N)/b.Elapsed().Seconds(), "sims/s")
}

func BenchmarkDistT2Procs1(b *testing.B) { benchDistT2(b, 1) }
func BenchmarkDistT2Procs2(b *testing.B) { benchDistT2(b, 2) }

// BenchmarkDistT2Session is the fleet-session contrast to
// BenchmarkDistT2Procs2: the same batch over the same 2-subprocess
// fleet, but dialed ONCE outside the loop (dist.Dial) and reused per
// iteration — the spawn/handshake amortization rvtable gets by sharing
// one session across T1–T6. The per-iteration delta against
// DistT2Procs2 is the session's savings.
func BenchmarkDistT2Session(b *testing.B) {
	ins := batchT2Instances()
	set := sim.DefaultSettings()
	set.MaxSegments = 120_000_000
	set.Parallelism = 1
	jobs := wireJobs(b, ins, set)
	f, err := dist.Dial(dist.Config{Procs: 2})
	if err != nil {
		b.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := f.Run(jobs, 1)
		if err != nil {
			b.Fatalf("session batch failed: %v", err)
		}
		for j, r := range res {
			if !r.Met {
				b.Fatalf("instance %d failed to meet: %v", j, ins[j])
			}
		}
	}
	b.ReportMetric(float64(len(ins)*b.N)/b.Elapsed().Seconds(), "sims/s")
}

// wireJobs builds wire-formed batch jobs for the compact AURV
// algorithm — what rendezvous.SimulateBatch does before dispatch.
func wireJobs(b *testing.B, ins []inst.Instance, set sim.Settings) []batch.Job {
	b.Helper()
	mk, ok := wire.Algorithm(dist.AlgAURVCompact)
	if !ok {
		b.Fatalf("algorithm %q not registered", dist.AlgAURVCompact)
	}
	jobs := make([]batch.Job, len(ins))
	for i, in := range ins {
		wj := wire.Job{In: in, Alg: dist.AlgAURVCompact, Set: set}
		jobs[i] = batch.Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: mk(in), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: mk(in), Radius: in.R},
			Settings: set,
			Key:      wj,
			Wire:     &wj,
		}
	}
	return jobs
}

// The multi-tenant pair: two single-job dispatches over a 2-connection
// fleet reached through a 5ms-propagation emulated link. Each dispatch
// alone UNDERFILLS the fleet — one job, two connections — so
// serialized, every dispatch pays a full round trip while the second
// connection idles; run concurrently, the shared scheduler puts both
// tenants' jobs in flight at once and the round trips overlap. The
// aggregate-throughput delta is exactly the idle capacity the
// multi-tenant scheduler reclaims (the ≥1.5× acceptance criterion;
// ~2× is the ceiling with two tenants). The link delay, not loopback
// compute, carries the wait — so the figure holds on any host,
// including single-core CI runners.
func multiTenantFleet(b *testing.B) (*dist.Fleet, []batch.Job, []batch.Job) {
	b.Helper()
	ins := batchT2Instances()
	set := sim.DefaultSettings()
	set.MaxSegments = 120_000_000
	set.Parallelism = 1
	jobsA, jobsB := wireJobs(b, ins[:1], set), wireJobs(b, ins[1:2], set)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("worker listen failed: %v", err)
	}
	srv := dist.NewServer(dist.ServeOptions{})
	go srv.Serve(l)
	b.Cleanup(func() { srv.Shutdown() })
	proxy, err := dist.NewChaosProxy(l.Addr().String(), dist.ChaosPlan{
		Default: dist.ConnScript{Delay: 5 * time.Millisecond},
	})
	if err != nil {
		b.Fatalf("proxy start failed: %v", err)
	}
	b.Cleanup(proxy.Close)
	hosts, err := dist.ParseHosts(proxy.Addr() + "," + proxy.Addr())
	if err != nil {
		b.Fatalf("parse hosts: %v", err)
	}
	f, err := dist.Dial(dist.Config{Hosts: hosts})
	if err != nil {
		b.Fatalf("fleet dial failed: %v", err)
	}
	b.Cleanup(func() { f.Close() })
	return f, jobsA, jobsB
}

func runTenantJobs(b *testing.B, f *dist.Fleet, jobs []batch.Job) {
	if _, _, err := f.Run(jobs, 1); err != nil {
		b.Errorf("tenant dispatch failed: %v", err)
	}
}

// BenchmarkDistMultiTenantSerial is the baseline: the two dispatches
// run back-to-back over the shared session, each paying its round
// trip alone while the other connection idles.
func BenchmarkDistMultiTenantSerial(b *testing.B) {
	f, jobsA, jobsB := multiTenantFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTenantJobs(b, f, jobsA)
		runTenantJobs(b, f, jobsB)
	}
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkDistMultiTenant runs the same two dispatches concurrently:
// the multi-tenant scheduler serves both from one fleet, each idle
// connection claiming from whichever tenant has work, so the round
// trips overlap. Compare sims/s against DistMultiTenantSerial.
func BenchmarkDistMultiTenant(b *testing.B) {
	f, jobsA, jobsB := multiTenantFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		go func() { defer close(done); runTenantJobs(b, f, jobsA) }()
		runTenantJobs(b, f, jobsB)
		<-done
	}
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "sims/s")
}

// benchDistT2Window runs the T2 batch through 2 worker subprocesses at
// an explicit send window. On loopback pipes the round trip is cheap,
// so the window's latency-hiding shows up only mildly here — the
// in-test latency differential (TestWindowHidesLatency) is the ≥2×
// witness; this benchmark records the no-latency overhead/benefit of
// pipelining plus the in-worker pool (Parallelism forwarded).
func benchDistT2Window(b *testing.B, window int) {
	ins := batchT2Instances()
	set := rendezvous.DefaultSettings()
	set.MaxSegments = 120_000_000
	set.Parallelism = 2 // forwarded: each worker runs a 2-wide pool
	set.WorkerProcs = 2
	set.Window = window
	alg := rendezvous.AlmostUniversalRV()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, res := range rendezvous.SimulateBatch(ins, alg, set) {
			if !res.Met {
				b.Fatalf("instance %d failed to meet: %v", j, ins[j])
			}
		}
	}
	b.ReportMetric(float64(len(ins)*b.N)/b.Elapsed().Seconds(), "sims/s")
}

func BenchmarkDistT2Window1(b *testing.B) { benchDistT2Window(b, 1) }
func BenchmarkDistT2Window4(b *testing.B) { benchDistT2Window(b, 4) }

// BenchmarkDistT5Chunks ships the T5 Monte-Carlo chunks to 2 worker
// subprocesses (spawned fresh per iteration, so the figure includes
// fleet startup — the realistic per-sweep overhead); the result is
// asserted byte-identical to the in-process chunked sweep.
func BenchmarkDistT5Chunks(b *testing.B) {
	const n = 512_000 // 8 chunks
	eps := []float64{0.25, 0.35, 0.5}
	box := measure.DefaultBox()
	want := measure.SweepParallel(n, eps, box, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := dist.Sweep(n, eps, box, 5, 1, dist.Config{Procs: 2, Window: 2})
		if err != nil {
			b.Fatalf("distributed sweep failed: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			b.Fatal("distributed sweep diverged from in-process")
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// ---- WAN benchmarks: the wire path through an emulated wide-area link. ----

// benchAlgZig is the trace-dense workload of the WAN benchmarks: agents
// zigzag without ever meeting, so every movement segment records a
// trajectory point and each result ships thousands of TraceCap-bounded
// points back over the link. That reply traffic is what a WAN-tuned
// wire path must move well — the regular zigzag coordinates have sparse
// mantissas, so flate sees long byte repeats and negotiated compression
// cuts the transported bytes by well over half, while the chunked trace
// stream keeps individual frames bounded. (The AURV workloads meet
// within a few segments and cannot produce traces like these.)
const benchAlgZig = "bench-wan-zigzag"

func init() {
	wire.RegisterAlgorithm(benchAlgZig, func(inst.Instance) prog.Program {
		zigs := make([]prog.Instr, 0, 6000)
		for i := 0; i < 3000; i++ {
			zigs = append(zigs, prog.Move(prog.North, 1), prog.Move(prog.South, 1))
		}
		return prog.Instrs(zigs...)
	})
}

// wanJobs builds 8 wire-formed zigzag jobs on far-apart instances (the
// agents never meet; the traces run the full program).
func wanJobs(b *testing.B, set sim.Settings) []batch.Job {
	mk, ok := wire.Algorithm(benchAlgZig)
	if !ok {
		b.Fatalf("algorithm %q not registered", benchAlgZig)
	}
	jobs := make([]batch.Job, 0, 8)
	for i := 0; i < 8; i++ {
		chi := 1
		if i%2 == 1 {
			chi = -1
		}
		in := rendezvous.Instance{
			R: 0.1, X: 200 + 10*float64(i), Y: float64(i%3) - 1,
			Phi: float64(i) * 0.3, Tau: 1, V: 1, T: float64(i) * 0.25, Chi: chi,
		}
		wj := wire.Job{In: in, Alg: benchAlgZig, Set: set}
		jobs = append(jobs, batch.Job{
			A:        sim.AgentSpec{Attrs: in.AgentA(), Prog: mk(in), Radius: in.R},
			B:        sim.AgentSpec{Attrs: in.AgentB(), Prog: mk(in), Radius: in.R},
			Settings: set,
			Key:      wj,
			Wire:     &wj,
		})
	}
	return jobs
}

func encodeResults(res []sim.Result) []byte {
	var buf []byte
	for _, r := range res {
		buf = wire.AppendResult(buf, r)
	}
	return buf
}

// benchDistT2WAN runs the trace-heavy batch against one in-process TCP
// worker behind a chaos proxy scripted as a WAN link (2ms propagation,
// 1 MiB/s per direction). The figure of merit is sims/s with
// compression off (raw) versus on (compressed): on a bandwidth-capped
// link the reply traces dominate the wire, so the compressed run's
// throughput gain is the wire path's WAN win — while every byte of the
// results stays identical to the in-process batch.
func benchDistT2WAN(b *testing.B, compress bool) {
	set := sim.DefaultSettings()
	set.MaxSegments = 50_000
	set.TraceCap = 4096
	set.Parallelism = 1
	jobs := wanJobs(b, set)

	want, _ := batch.Run(jobs, 1)
	pts := 0
	for _, r := range want {
		pts += len(r.TraceA) + len(r.TraceB)
	}
	if pts < len(jobs)*4096 {
		b.Fatalf("workload carries only %d trace points; the WAN benchmark would be vacuous", pts)
	}
	wantEnc := encodeResults(want)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("worker listen failed: %v", err)
	}
	srv := dist.NewServer(dist.ServeOptions{})
	go srv.Serve(l)
	defer srv.Shutdown()
	proxy, err := dist.NewChaosProxy(l.Addr().String(), dist.ChaosPlan{
		Default: dist.ConnScript{Delay: 2 * time.Millisecond, Bandwidth: 1 << 20},
	})
	if err != nil {
		b.Fatalf("proxy start failed: %v", err)
	}
	defer proxy.Close()
	hosts, err := dist.ParseHosts(proxy.Addr())
	if err != nil {
		b.Fatalf("parse hosts: %v", err)
	}
	f, err := dist.Dial(dist.Config{Hosts: hosts, Compress: compress, Window: 4})
	if err != nil {
		b.Fatalf("fleet dial failed: %v", err)
	}
	defer f.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := f.Run(jobs, 1)
		if err != nil {
			b.Fatalf("WAN batch failed: %v", err)
		}
		if !bytes.Equal(encodeResults(res), wantEnc) {
			b.Fatal("WAN run diverged from in-process results")
		}
	}
	b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "sims/s")
}

func BenchmarkDistT2WAN(b *testing.B) {
	b.Run("raw", func(b *testing.B) { benchDistT2WAN(b, false) })
	b.Run("compressed", func(b *testing.B) { benchDistT2WAN(b, true) })
}

// benchDistT5WAN ships the T5 Monte-Carlo chunks through the same
// emulated WAN link (dialed fresh per iteration, so the figure includes
// the handshake crossing the delay line). Sweep replies are small
// scalar tallies — the contrast with DistT2WAN shows which workloads
// compression pays on.
func benchDistT5WAN(b *testing.B, compress bool) {
	const n = 256_000
	eps := []float64{0.25, 0.5}
	box := measure.DefaultBox()
	want := measure.SweepParallel(n, eps, box, 5, 1)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("worker listen failed: %v", err)
	}
	srv := dist.NewServer(dist.ServeOptions{})
	go srv.Serve(l)
	defer srv.Shutdown()
	proxy, err := dist.NewChaosProxy(l.Addr().String(), dist.ChaosPlan{
		Default: dist.ConnScript{Delay: 2 * time.Millisecond, Bandwidth: 4 << 20},
	})
	if err != nil {
		b.Fatalf("proxy start failed: %v", err)
	}
	defer proxy.Close()
	hosts, err := dist.ParseHosts(proxy.Addr())
	if err != nil {
		b.Fatalf("parse hosts: %v", err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := dist.Sweep(n, eps, box, 5, 1, dist.Config{Hosts: hosts, Compress: compress, Window: 2})
		if err != nil {
			b.Fatalf("WAN sweep failed: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			b.Fatal("WAN sweep diverged from in-process")
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkDistT5WAN(b *testing.B) {
	b.Run("raw", func(b *testing.B) { benchDistT5WAN(b, false) })
	b.Run("compressed", func(b *testing.B) { benchDistT5WAN(b, true) })
}

// BenchmarkBatchTableT2 regenerates the full T2 table through the pool
// at 1 vs GOMAXPROCS workers — the end-to-end version of the scaling
// claim.
func BenchmarkBatchTableT2(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			bud := quickBudgets()
			bud.Workers = w
			for i := 0; i < b.N; i++ {
				_ = exps.T2(11, 4, bud)
			}
		})
	}
}

// ---- Figure benchmarks. ----

func BenchmarkF1Figure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.Fig1()
	}
}
func BenchmarkF2Figure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.Fig2()
	}
}
func BenchmarkF3Figure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.Fig3()
	}
}
func BenchmarkF4Figure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.Fig4()
	}
}
func BenchmarkF5Figure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exps.Fig5()
	}
}

// ---- Kernel micro-benchmarks. ----

// benchEngineThroughput measures simulator event processing on a long
// non-meeting run (segments/second is the figure of merit), on the
// cursor fast path or (opaque) the iter.Pull fallback.
func benchEngineThroughput(b *testing.B, opaque bool) {
	const segs = 200_000
	set := sim.DefaultSettings()
	set.MaxSegments = segs
	set.SightSlack = 0
	mk := func() prog.Program {
		p := prog.Forever(func(i int) prog.Program {
			return prog.Instrs(prog.Move(prog.North, 1), prog.Move(prog.South, 1))
		})
		if opaque {
			p = prog.Opaque(p)
		}
		return p
	}
	refAt := func(origin geom.Vec2) phys.Attributes {
		a := phys.Reference()
		a.Origin = origin
		return a
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := sim.AgentSpec{Attrs: refAt(geom.V(0, 0)), Prog: mk(), Radius: 0.1}
		bb := sim.AgentSpec{Attrs: refAt(geom.V(100, 0)), Prog: mk(), Radius: 0.1}
		res := sim.Run(a, bb, set)
		if res.Met {
			b.Fatal("unexpected meeting")
		}
	}
	b.ReportMetric(float64(segs*b.N)/b.Elapsed().Seconds(), "segments/s")
}

func BenchmarkEngineThroughput(b *testing.B)     { benchEngineThroughput(b, false) }
func BenchmarkEngineThroughputPull(b *testing.B) { benchEngineThroughput(b, true) }

// benchInstrStream drains a fixed prefix of Algorithm 1's instruction
// stream outside the simulator: the raw cost of program generation on
// the cursor engine versus the iter.Pull coroutine.
func benchInstrStream(b *testing.B, opaque bool) {
	const n = 200_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.Program(core.Compact(), nil)
		if opaque {
			p = prog.Opaque(p)
		}
		cur := prog.NewCursor(p)
		for k := 0; k < n; k++ {
			if _, ok := cur.Next(); !ok {
				b.Fatal("stream ended early")
			}
		}
		cur.Close()
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkInstrStreamCursor(b *testing.B) { benchInstrStream(b, false) }
func BenchmarkInstrStreamPull(b *testing.B)   { benchInstrStream(b, true) }

// BenchmarkClosestApproach measures the analytic sight kernel.
func BenchmarkClosestApproach(b *testing.B) {
	p := geom.Moving{P: geom.V(0, 0), V: geom.V(1, 0.3)}
	q := geom.Moving{P: geom.V(10, 2), V: geom.V(-0.8, 0.1)}
	sum := 0.0
	for i := 0; i < b.N; i++ {
		ap := geom.ClosestApproach(p, q, 50)
		sum += ap.DMin
	}
	_ = sum
}

// BenchmarkFirstWithin measures the sight-crossing root solver.
func BenchmarkFirstWithin(b *testing.B) {
	p := geom.Moving{P: geom.V(0, 0), V: geom.V(1, 0)}
	q := geom.Moving{P: geom.V(100, 1), V: geom.V(-1, 0)}
	n := 0
	for i := 0; i < b.N; i++ {
		if _, ok := geom.FirstWithin(p, q, 200, 2); ok {
			n++
		}
	}
	_ = n
}

// BenchmarkDDAdd measures the double-double clock accumulation against
// the plain float64 baseline BenchmarkFloatAdd.
func BenchmarkDDAdd(b *testing.B) {
	t := dd.FromFloat(math.Ldexp(1, 55))
	for i := 0; i < b.N; i++ {
		t = t.AddFloat(0.1)
	}
	_ = t
}

func BenchmarkFloatAdd(b *testing.B) {
	t := math.Ldexp(1, 55)
	for i := 0; i < b.N; i++ {
		t += 0.1
	}
	_ = t
}

// BenchmarkPlanarWalkGen measures lazy program generation rate.
func BenchmarkPlanarWalkGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 0
		walk.Planar(5)(func(prog.Instr) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty walk")
		}
	}
}

// ---- Scaling sweeps (the figures of merit the paper's bounds imply). ----

// BenchmarkScalingDelay: AURV meeting time as the wake-up delay grows on
// a type-4 family (the paper's bound grows with log t in the phase
// index).
func BenchmarkScalingDelay(b *testing.B) {
	for _, t := range []float64{0.5, 2, 8, 32} {
		b.Run(fmtF("t=%g", t), func(b *testing.B) {
			in := rendezvous.Instance{R: 0.8, X: 0.9, Y: 0.1, Phi: 1.1, Tau: 1, V: 1.5, T: t, Chi: 1}
			set := rendezvous.DefaultSettings()
			set.MaxSegments = 400_000_000
			var meet float64
			for i := 0; i < b.N; i++ {
				res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(), set)
				if !res.Met {
					b.Fatalf("no meet at t=%v", t)
				}
				meet = res.MeetTime.Float64()
			}
			b.ReportMetric(meet, "meet-time")
		})
	}
}

// BenchmarkScalingClockRatio: type-3 meeting time versus the clock ratio
// (closer clocks need later phases — the drift must accumulate).
func BenchmarkScalingClockRatio(b *testing.B) {
	for _, tau := range []float64{4, 2, 1.5, 1.2} {
		b.Run(fmtF("tau=%g", tau), func(b *testing.B) {
			in := rendezvous.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: tau, V: 1 / tau, T: 0.5, Chi: 1}
			set := rendezvous.DefaultSettings()
			set.MaxSegments = 200_000_000
			var meet float64
			for i := 0; i < b.N; i++ {
				res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(), set)
				if !res.Met {
					b.Fatalf("no meet at tau=%v", tau)
				}
				meet = res.MeetTime.Float64()
			}
			b.ReportMetric(meet, "meet-time")
		})
	}
}

// BenchmarkScalingRadius: type-1 meeting time versus the visibility
// radius (smaller r forces finer phases — the phase staircase).
func BenchmarkScalingRadius(b *testing.B) {
	for _, r := range []float64{1.0, 0.7, 0.5} {
		b.Run(fmtF("r=%g", r), func(b *testing.B) {
			in := rendezvous.Instance{R: r, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, Chi: -1}
			in.T = in.ProjGap() - r + 0.5
			set := rendezvous.DefaultSettings()
			set.MaxSegments = 400_000_000
			var meet float64
			for i := 0; i < b.N; i++ {
				res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRV(), set)
				if !res.Met {
					b.Fatalf("no meet at r=%v", r)
				}
				meet = res.MeetTime.Float64()
			}
			b.ReportMetric(meet, "meet-time")
		})
	}
}

// BenchmarkAblationSchedule: compact vs faithful schedule on an instance
// meeting in phase 1 — the design-choice ablation DESIGN.md calls out
// (the faithful schedule is simulable only while the meeting happens
// before its 2^60 phase-2 wait).
func BenchmarkAblationSchedule(b *testing.B) {
	in := rendezvous.Instance{R: 0.8, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: 1}
	for _, sched := range []rendezvous.Schedule{core.Compact(), core.Faithful()} {
		b.Run(sched.Name, func(b *testing.B) {
			set := rendezvous.DefaultSettings()
			set.MaxSegments = 100_000_000
			for i := 0; i < b.N; i++ {
				res := rendezvous.Simulate(in, rendezvous.AlmostUniversalRVWith(sched), set)
				if !res.Met {
					b.Fatal("no meet")
				}
			}
		})
	}
}

// BenchmarkCGKKSolve: the substrate procedure alone on its contract.
func BenchmarkCGKKSolve(b *testing.B) {
	in := rendezvous.Instance{R: 0.6, X: 1.0, Y: 0.2, Phi: 1.2, Tau: 1, V: 1, T: 0, Chi: 1}
	set := rendezvous.DefaultSettings()
	set.MaxSegments = 50_000_000
	for i := 0; i < b.N; i++ {
		res := rendezvous.Simulate(in, rendezvous.CGKK(), set)
		if !res.Met {
			b.Fatal("no meet")
		}
	}
}

// BenchmarkLatecomersSolve: likewise for the latecomer substrate.
func BenchmarkLatecomersSolve(b *testing.B) {
	in := rendezvous.Instance{R: 1.0, X: 1.1, Y: 0, Phi: 0, Tau: 1, V: 1, T: 1.0, Chi: 1}
	set := rendezvous.DefaultSettings()
	set.MaxSegments = 50_000_000
	for i := 0; i < b.N; i++ {
		res := rendezvous.Simulate(in, rendezvous.Latecomers(), set)
		if !res.Met {
			b.Fatal("no meet")
		}
	}
}

// BenchmarkMeasureSweep: the Monte-Carlo kernel of T5.
func BenchmarkMeasureSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = measure.Sweep(100_000, []float64{0.25, 0.5}, measure.DefaultBox(), 9)
	}
}

// BenchmarkPredictPhase: the analytic predictor.
func BenchmarkPredictPhase(b *testing.B) {
	in := rendezvous.Instance{R: 0.5, X: 1.2, Y: 0.6, Phi: 0.8, Tau: 2, V: 0.5, T: 0.5, Chi: 1}
	s := core.Compact()
	for i := 0; i < b.N; i++ {
		if _, ok := core.PredictPhase(in, s); !ok {
			b.Fatal("no prediction")
		}
	}
}

// BenchmarkCGKKFixedPoint: the fixed-point computation kernel.
func BenchmarkCGKKFixedPoint(b *testing.B) {
	in := rendezvous.Instance{R: 0.6, X: 1.0, Y: 0.2, Phi: 1.2, Tau: 1, V: 1.3, T: 0, Chi: 1}
	for i := 0; i < b.N; i++ {
		if _, ok := cgkk.FixedPoint(in); !ok {
			b.Fatal("singular")
		}
	}
}

func fmtF(format string, v float64) string {
	return fmt.Sprintf(format, v)
}
